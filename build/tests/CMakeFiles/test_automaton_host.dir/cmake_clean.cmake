file(REMOVE_RECURSE
  "CMakeFiles/test_automaton_host.dir/test_automaton_host.cpp.o"
  "CMakeFiles/test_automaton_host.dir/test_automaton_host.cpp.o.d"
  "test_automaton_host"
  "test_automaton_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_automaton_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
