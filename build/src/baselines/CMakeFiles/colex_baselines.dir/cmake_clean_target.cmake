file(REMOVE_RECURSE
  "libcolex_baselines.a"
)
