// Fixture: T004 — rt::Transport / rt::PulsePort structural conformance.
//
// A class that implements most-but-not-all of a port surface only fails
// when a template instantiates it — which for a stub backend may be never.
// Parameter counts are matched, so unrelated two-argument recv() overloads
// (e.g. the thread-ring substrate) do not anchor a surface.
namespace fixture_t004 {

void t004_sink(int);

// Four of the five rt::Transport methods: shutdown() is missing.
class T004DriftedTransport {  // colex-lint: expect(T004)
 public:
  bool recv(int port) { return port == 0; }
  void send(int port) { t004_sink(port); }
  int wait() { return 0; }
  bool stopped() const { return false; }
};

// wait_any() without the rest of the rt::PulsePort surface.
class T004HalfPort {  // colex-lint: expect(T004)
 public:
  bool recv(int port) { return port == 0; }
  int wait_any() { return 0; }
};

class T004WaivedStub {  // colex-lint: allow(T004) expect-suppressed(T004) fixture: intentionally partial stub kept as a compile-failure negative
 public:
  bool recv(int port) { return port == 0; }
  void send(int port) { t004_sink(port); }
  int wait() { return 0; }
};

}  // namespace fixture_t004
