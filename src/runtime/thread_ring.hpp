// A real-thread runtime for the fully defective ring: one OS thread per
// node, mutex+condition-variable pulse ports, genuine (hardware/OS-induced)
// asynchrony. The algorithms run here are the *blocking-style* literal
// transcriptions of the paper's pseudocode (blocking_algs.hpp), in contrast
// to the event-driven automata used on the discrete simulator — running the
// same pseudocode through two independent execution models and comparing
// outcomes exactly is one of this repository's main validation tools.
//
// Quiescence detection (for the stabilizing algorithms, which never
// terminate on their own) is performed by the *harness*, not the nodes:
// a monitor thread observes "all threads blocked on empty ports" plus
// "globally sent == consumed" — the standard counter-based distributed
// termination-detection argument, executed with shared-memory atomics. This
// mirrors what the omniscient simulator does and is test instrumentation,
// never part of the algorithms.
//
// Fault hooks (mirroring sim/faults.hpp on real threads):
//  * crash(v) / recover(v): crash-stop a node mid-run and optionally bring
//    it back with *erased* local state. Crashing bumps the node's
//    incarnation epoch; a NodeIo handle is bound to the epoch it was created
//    under and goes permanently dead the moment the epoch moves on, so a
//    worker thread that raced past the crash cannot smuggle pre-crash
//    counters into the recovered node. Deliveries to a crashed node are
//    swallowed (counted sent *and* consumed, so conservation-based
//    quiescence detection stays sound).
//  * inject_pulse(to, p): deposits a spurious pulse — the real-thread
//    analogue of the simulator's FaultKind::spurious. Against Algorithm 1
//    this manufactures a guaranteed livelock (n absorptions cannot cover
//    n+1 pulses), which is how the stall watchdog is exercised.
//  * The monitor already was a stall watchdog; dump() adds the post-mortem:
//    per-node pending queues, per-node sent/consumed, crash flags, and the
//    global counters, so a timed-out run aborts with evidence instead of
//    hanging.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "runtime/progress.hpp"
#include "sim/types.hpp"
#include "util/contracts.hpp"

namespace colex::rt {

class ThreadRing;

/// The port interface a blocking algorithm sees: non-blocking receive,
/// send, and a blocking wait for the next pulse (which the harness can
/// interrupt once global quiescence is certain).
///
/// A NodeIo is one *incarnation* of the node: it is bound to the crash
/// epoch current when ThreadRing::io() created it. If the node crashes, the
/// handle goes dead — recv/wait_any return false, send is suppressed — even
/// after a recover(), which starts a fresh incarnation that must obtain a
/// fresh handle via io().
class NodeIo {
 public:
  /// Consume one pulse from the incoming queue of `p` if available.
  bool recv(sim::Port p);

  /// Send one pulse out of port `p`.
  void send(sim::Port p);

  /// Block until a pulse is available on either port. Returns false when
  /// the harness has signalled stop (global quiescence / timeout) or this
  /// incarnation has been crashed; the algorithm should then return.
  bool wait_any();

  // --- rt::Transport surface (runtime/transport.hpp) --------------------
  //
  // NodeIo is the in-process reference model of the transport concept the
  // socket backend (src/net) implements over real file descriptors: the
  // same blocking wait, the same stop semantics, a no-op teardown (the
  // fabric owns the condvar ports and outlives every handle).

  /// Transport::wait(): the blocking wait under its seam name.
  bool wait() { return wait_any(); }

  /// Transport::stopped(): true once the harness broadcast stop or this
  /// incarnation was crashed — wait()/wait_any() can only return false.
  bool stopped() const;

  /// Transport::shutdown(): idempotent no-op. ThreadRing owns the port
  /// state; a handle holds nothing that needs releasing.
  void shutdown() {}

  /// Pulses delivered to port `p` and not yet consumed.
  std::size_t pending(sim::Port p) const;

  /// Publishes the node's current algorithm phase (one relaxed store on
  /// the node's own state) so watchdog dumps and live per-phase gauges see
  /// where every node is. Dead incarnations stay silent.
  void set_phase(obs::Phase p);

 private:
  friend class ThreadRing;
  NodeIo(ThreadRing& ring, sim::NodeId self, std::uint64_t epoch)
      : ring_(ring), self_(self), epoch_(epoch) {}
  bool dead() const;
  ThreadRing& ring_;
  sim::NodeId self_;
  std::uint64_t epoch_;  // crash epoch this incarnation belongs to
};

/// Shared pulse fabric for an n-node ring (oriented or port-scrambled).
class ThreadRing {
 public:
  explicit ThreadRing(std::size_t n, std::vector<bool> port_flips = {});

  std::size_t size() const { return nodes_.size(); }
  /// Mints an io handle for the node's CURRENT incarnation, and records
  /// that the worker has caught up with it (see acked_epoch below).
  NodeIo io(sim::NodeId v) {
    const std::uint64_t epoch = nodes_[v].crash_epoch.load();
    ack_epoch(v, epoch);
    return NodeIo(*this, v, epoch);
  }

  std::uint64_t total_sent() const { return sent_.load(); }
  std::uint64_t total_consumed() const { return consumed_.load(); }
  bool stopped() const { return stop_.load(); }

  /// Worker bookkeeping: a worker thread calls this when its algorithm
  /// function returns.
  void worker_finished() {
    finished_.fetch_add(1);
    maybe_notify_monitor();
  }

  /// Runs the monitor loop in the calling thread until either all `n`
  /// workers finished naturally, or quiescence is detected / the timeout
  /// expires (then `stop` is broadcast so blocked workers return). Returns
  /// true if stopping was due to quiescence or natural termination, false
  /// on timeout — in which case dump() holds the post-mortem.
  bool monitor(std::uint64_t timeout_ms);

  // --- Fault hooks (harness-side; mirror of sim/faults.hpp) -------------

  /// Crash-stop node `v`: its pending pulses are lost, future deliveries
  /// are swallowed, and its current NodeIo incarnation goes dead. The
  /// worker thread notices (recv/wait_any fail), sees the epoch moved, and
  /// parks in await_recovery(). Must not already be crashed.
  void crash(sim::NodeId v);

  /// Bring a crashed node back with no memory of its past incarnation.
  /// The parked worker wakes and re-runs its algorithm from scratch
  /// through a fresh io(v) handle. Must currently be crashed.
  void recover(sim::NodeId v);

  bool node_crashed(sim::NodeId v) const {
    return nodes_[v].crashed.load();
  }
  /// Incarnation counter for `v`: bumped by every crash().
  std::uint64_t crash_epoch(sim::NodeId v) const {
    return nodes_[v].crash_epoch.load();
  }

  /// Worker-side: park until the node is recovered or the harness stops.
  /// Returns true if the worker should re-run its algorithm (recovered),
  /// false if the run is over (stop while still crashed).
  bool await_recovery(sim::NodeId v);

  /// Deposit one spurious pulse into `to`'s queue for port `p`, as if a
  /// defective channel fired without a send. Counted in sent_ so that
  /// conservation-based quiescence detection still requires the pulse to
  /// be consumed — an unabsorbable injected pulse therefore keeps the ring
  /// non-quiescent until the watchdog trips.
  void inject_pulse(sim::NodeId to, sim::Port p);

  std::uint64_t crashes() const { return crash_count_.load(); }
  std::uint64_t recoveries() const { return recovery_count_.load(); }
  std::uint64_t crash_lost() const { return crash_lost_.load(); }
  std::uint64_t injected() const { return injected_.load(); }

  // --- Telemetry (src/obs) ----------------------------------------------
  //
  // The fabric's metrics are plain per-node atomics written only by their
  // owning worker (wait durations) or under the port mutex (traffic), so
  // attaching a registry adds two clock reads per blocking wait and nothing
  // else. The registry itself is single-threaded: it is only written by
  // publish_metrics(), called from the harness thread after (or instead of)
  // the workers, never concurrently with them.

  /// Attach a caller-owned metrics registry. Must be called before worker
  /// threads start; a null registry (the default) disables the wait-timing
  /// probes entirely. Attaching also arms the flight recorder: two rings
  /// ("monitor" for the watchdog loop, "fabric" for crash/recover/inject
  /// events from the chaos thread), whose merged tail the stall dump
  /// embeds.
  void set_metrics(obs::Registry* registry) {
    metrics_ = registry;
    if (registry != nullptr && flight_ == nullptr) {
      flight_ = std::make_unique<obs::FlightRecorder>();
      flight_monitor_ = &flight_->ring("monitor");
      flight_fabric_ = &flight_->ring("fabric");
    }
  }

  /// The armed flight recorder, or null when metrics are off.
  const obs::FlightRecorder* flight() const { return flight_.get(); }

  /// Publishes per-node pulse counts, blocking-wait durations, and the
  /// global fabric counters into the attached registry. Harness-side: call
  /// after monitor() returns (the watchdog path calls it from dump()).
  void publish_metrics() const;

  /// Human-readable post-mortem of the fabric: global counters plus, per
  /// node, the pending pulses on each port, per-node sent/consumed, and
  /// the crash state — and, when a metrics registry is attached, the
  /// last-N progress samples the monitor recorded plus the full metrics
  /// snapshot. Safe to call at any time; intended for the watchdog path
  /// (monitor() returned false).
  std::string dump() const;

 private:
  friend class NodeIo;

  struct Node {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::uint64_t pending[2] = {0, 0};  // pulses queued per port
    // Wiring: sending out of port p delivers to peer[p] at peer_port[p].
    sim::NodeId peer[2] = {0, 0};
    sim::Port peer_port[2] = {sim::Port::p0, sim::Port::p0};
    // Fault state. `crashed` gates delivery/consumption; `crash_epoch`
    // counts incarnations so stale NodeIo handles can be fenced off.
    // `acked_epoch` is the newest incarnation the worker thread has caught
    // up with (set by io() and await_recovery()). Quiescence detection
    // refuses to fire while any acked_epoch lags crash_epoch: the worker of
    // a freshly crashed/recovered node may still be counted idle (parked on
    // its condvar, not yet rescheduled) even though its restart — and the
    // fresh initial pulse that comes with it — is inevitable.
    std::atomic<bool> crashed{false};
    std::atomic<std::uint64_t> crash_epoch{0};
    std::atomic<std::uint64_t> acked_epoch{0};
    // Per-node traffic counters (for the watchdog dump).
    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> consumed{0};
    // Blocking-wait probes (only written when a metrics registry is
    // attached; owned by the node's worker thread, read by the harness).
    std::atomic<std::uint64_t> wait_count{0};
    std::atomic<std::uint64_t> wait_ns{0};
    std::atomic<std::uint64_t> wait_max_ns{0};
    // Current algorithm phase (obs::Phase index), published by the worker
    // at transitions; read by dumps and the per-phase gauges.
    std::atomic<std::uint8_t> phase{0};
    // The wait probes again, attributed to the phase in force when the
    // wait began (metrics-gated writes, owner thread only).
    std::atomic<std::uint64_t> phase_wait_count[obs::kPhaseCount] = {};
    std::atomic<std::uint64_t> phase_wait_ns[obs::kPhaseCount] = {};
  };

  bool recv(sim::NodeId v, sim::Port p);
  void send(sim::NodeId v, sim::Port p);
  bool wait_any(sim::NodeId v);
  std::size_t pending(sim::NodeId v, sim::Port p) const;
  void set_phase(sim::NodeId v, obs::Phase p) {
    nodes_[v].phase.store(static_cast<std::uint8_t>(obs::index(p)),
                          std::memory_order_relaxed);
  }
  void broadcast_stop();
  void ack_epoch(sim::NodeId v, std::uint64_t epoch);
  bool all_epochs_acked() const;

  /// True iff the fabric currently looks fully quiet: every worker is
  /// accounted for (idle, parked awaiting recovery, or finished), every
  /// pulse sent has been consumed, and no crash epoch is unacknowledged.
  bool candidate_quiescent() const;

  /// Wakes the monitor iff the fabric just became a quiescence (or natural
  /// termination) candidate. Called from the counter-transition sites —
  /// going idle, finishing, parking for recovery, acking an epoch, crash
  /// bookkeeping — so idle detection is event-driven instead of the
  /// monitor polling on a fixed sleep. Cheap checks short-circuit first;
  /// notifying takes the (empty) monitor critical section so a wakeup can
  /// never slip between the monitor's predicate check and its wait.
  void maybe_notify_monitor();

  /// Appends one progress sample (called by the monitor loop) to the
  /// bounded history reported on stall.
  void record_progress_sample(double elapsed_ms);

  std::vector<Node> nodes_;
  obs::Registry* metrics_ = nullptr;
  // Armed together with metrics_ (set_metrics). Ring writers: "monitor" is
  // written only by the monitor() thread, "fabric" only by whichever single
  // thread drives the fault hooks (the chaos thread in run_on_threads).
  std::unique_ptr<obs::FlightRecorder> flight_;
  obs::FlightRing* flight_monitor_ = nullptr;
  obs::FlightRing* flight_fabric_ = nullptr;
  // Monitor wakeup channel: workers notify when the fabric becomes a
  // quiescence candidate; the monitor waits here (bounded by its sampling
  // cadence, so the watchdog and progress history keep their timing).
  std::mutex monitor_mutex_;
  std::condition_variable monitor_cv_;
  // Last-N progress snapshots from the monitor loop, for the stall
  // post-mortem: "was the run dead all along or did it die at t=X?".
  static constexpr std::size_t kProgressSamples = 16;
  ProgressTracker progress_{kProgressSamples};
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> consumed_{0};
  std::atomic<std::size_t> idle_{0};
  std::atomic<std::size_t> awaiting_recovery_{0};
  std::atomic<std::size_t> finished_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> crash_count_{0};
  std::atomic<std::uint64_t> recovery_count_{0};
  std::atomic<std::uint64_t> crash_lost_{0};
  std::atomic<std::uint64_t> injected_{0};
};

}  // namespace colex::rt
