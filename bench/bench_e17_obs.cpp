// E17 — the live telemetry plane: what observability costs, and what it
// proves. Four measurements, all gated in BENCH_E17.json:
//
//  * Zero-overhead-when-off is EXACT, not approximate: the same Algorithm 2
//    election on ThreadRing and on the coroutine executor, with a metrics
//    registry attached and with the nullable gates left null, must land
//    identical outcomes and the identical n(2·IDmax+1) pulse count — the
//    instrumentation may not perturb the algorithms at all.
//  * Telemetry overhead under load: a 256-ring soak under steady churn with
//    the full plane armed (live /metrics server, periodic snapshot file,
//    per-phase counters, flight recorder) vs the same soak with everything
//    off, run as adjacent dark/armed pairs after a discarded warmup. Gate:
//    best paired ratio armed/dark >= 0.97 — the armed configuration must
//    keep within 3% of dark pace in at least one pair, so a scheduler
//    hiccup or boost-clock sag cannot fail the build by itself.
//  * Live scrape mid-soak: while the armed soak runs, an in-process client
//    scrapes 127.0.0.1:<ephemeral>/metrics and must see the headline
//    election counter plus every per-phase pulse series; /healthz and
//    /debug/flight must answer too.
//  * Phase attribution is conservation-exact: on clean churn the merged
//    `pulses{phase=...}` series must sum to the fabric's `svc.pulses`
//    counter — on both the sim and coro backends. (Under loss-y churn the
//    phase sum may legitimately exceed the conservation counter by the
//    dropped count; see svc/supervisor.hpp.)
//
// Flags: --smoke (CI-sized durations), --json <dir> (redirect artifact).
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "coro/run.hpp"
#include "obs/phase.hpp"
#include "obs/serve.hpp"
#include "runtime/blocking_algs.hpp"
#include "svc/soak.hpp"
#include "util/table.hpp"

namespace {

using namespace colex;

// --- exactness: metrics on vs off must be indistinguishable --------------

struct ExactnessRow {
  const char* runtime = "";
  bool ok = false;
  std::uint64_t pulses_off = 0;
  std::uint64_t pulses_on = 0;
  std::uint64_t expected = 0;
};

bool outcomes_identical(const std::vector<rt::BlockingOutcome>& a,
                        const std::vector<rt::BlockingOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].role != b[i].role ||
        a[i].terminated != b[i].terminated ||
        a[i].phase_sends != b[i].phase_sends) {
      return false;
    }
  }
  return true;
}

ExactnessRow threadring_exactness(std::size_t n) {
  std::vector<std::uint64_t> ids(n);
  std::iota(ids.begin(), ids.end(), 1);
  ExactnessRow row;
  row.runtime = "threadring";
  row.expected = static_cast<std::uint64_t>(n) *
                 (2 * static_cast<std::uint64_t>(n) + 1);
  const rt::ThreadRunResult off = rt::run_on_threads(
      ids, {}, rt::ThreadAlg::alg2, /*timeout_ms=*/120'000, {}, nullptr);
  obs::Registry reg;
  const rt::ThreadRunResult on = rt::run_on_threads(
      ids, {}, rt::ThreadAlg::alg2, /*timeout_ms=*/120'000, {}, &reg);
  row.pulses_off = off.pulses;
  row.pulses_on = on.pulses;
  row.ok = off.completed && on.completed && off.pulses == row.expected &&
           on.pulses == row.expected && off.leader == on.leader &&
           outcomes_identical(off.outcomes, on.outcomes) && !reg.empty();
  return row;
}

ExactnessRow coro_exactness(std::size_t n) {
  std::vector<std::uint64_t> ids(n);
  std::iota(ids.begin(), ids.end(), 1);
  ExactnessRow row;
  row.runtime = "coro";
  row.expected = static_cast<std::uint64_t>(n) *
                 (2 * static_cast<std::uint64_t>(n) + 1);
  coro::CoroRunOptions opts;
  opts.workers = 2;
  opts.timeout_ms = 120'000;
  const coro::CoroRunResult off = coro::run_on_coro(ids, {}, rt::ThreadAlg::alg2, opts);
  obs::Registry reg;
  opts.metrics = &reg;
  const coro::CoroRunResult on = coro::run_on_coro(ids, {}, rt::ThreadAlg::alg2, opts);
  row.pulses_off = off.pulses;
  row.pulses_on = on.pulses;
  row.ok = off.completed && on.completed && off.pulses == row.expected &&
           on.pulses == row.expected && off.leader == on.leader &&
           outcomes_identical(off.outcomes, on.outcomes) && !reg.empty();
  return row;
}

// --- soak configurations --------------------------------------------------

svc::SoakOptions base_soak(double duration, std::uint64_t seed) {
  svc::SoakOptions o;
  o.duration_seconds = duration;
  o.rings = 256;
  o.shards = 4;
  o.seed = seed;
  o.churn = svc::ChurnProfile::preset(svc::ChurnPreset::steady);
  return o;
}

/// One throughput sample of `base`; folds the service gate into `all_ok`.
double soak_elections_per_second(const svc::SoakOptions& base,
                                 std::uint64_t seed_offset, bool& all_ok) {
  svc::SoakOptions o = base;
  o.seed = base.seed + seed_offset;
  const svc::SoakReport r = svc::run_soak(o);
  all_ok = all_ok && r.ok();
  return r.elections_per_second;
}

/// Sum of the merged per-phase pulse counters (const-safe: a merged report
/// registry resolves existing series only).
std::uint64_t phase_sum(obs::Registry& reg) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    sum += reg.counter(obs::labeled("pulses", "phase", obs::phase_name(i)))
               .value();
  }
  return sum;
}

struct ScrapeProbe {
  bool served = false;         ///< on_serve fired with a bound port
  bool metrics_ok = false;     ///< /metrics had elections + all phase series
  bool healthz_ok = false;
  bool flight_ok = false;
  std::uint16_t port = 0;
  std::uint64_t scraped_elections = 0;
};

/// Runs an armed soak and scrapes it from this thread mid-run.
ScrapeProbe scrape_probe_soak(svc::SoakOptions options) {
  ScrapeProbe probe;
  std::mutex m;
  std::condition_variable cv;
  options.serve = 0;  // ephemeral port
  options.on_serve = [&probe, &m, &cv](std::uint16_t port) {
    {
      const std::lock_guard<std::mutex> lock(m);
      probe.port = port;
      probe.served = true;
    }
    cv.notify_all();
  };
  std::thread soak([&options] { svc::run_soak(options); });
  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait_for(lock, std::chrono::seconds(10),
                [&probe] { return probe.served; });
  }
  if (probe.served) {
    // Let elections land on every shard, then scrape while the run is hot.
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<int>(options.duration_seconds * 250)));
    int status = 0;
    std::string body;
    if (obs::http_get("127.0.0.1", probe.port, "/metrics", status, body) &&
        status == 200) {
      bool ok = body.find("colex_elections_total ") != std::string::npos;
      for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
        const std::string series = std::string("colex_pulses_total{phase=\"") +
                                   obs::phase_name(i) + "\"} ";
        ok = ok && body.find(series) != std::string::npos;
      }
      probe.metrics_ok = ok;
      const std::size_t at = body.find("\ncolex_elections_total ");
      if (at != std::string::npos) {
        probe.scraped_elections = std::strtoull(
            body.c_str() + at + std::strlen("\ncolex_elections_total "),
            nullptr, 10);
      }
    }
    if (obs::http_get("127.0.0.1", probe.port, "/healthz", status, body)) {
      probe.healthz_ok = status == 200 && body == "ok\n";
    }
    if (obs::http_get("127.0.0.1", probe.port, "/debug/flight", status,
                      body)) {
      probe.flight_ok =
          status == 200 && body.find("flight recorder tail") != std::string::npos;
    }
  }
  soak.join();
  return probe;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::banner(
      "E17 — live telemetry plane: cost and fidelity",
      "phase-aware election metrics served live over /metrics must cost "
      "<=3% soak throughput, cost exactly zero when off, and attribute "
      "every pulse to an algorithm phase with conservation-exact sums");

  bench::JsonReport report("E17", "telemetry overhead and fidelity gates");
  bench::apply_json_flag(report, argc, argv);
  bench::WallTimer total;

  // --- Gate 1: zero-overhead-when-off is exact. -------------------------
  const ExactnessRow tr_exact = threadring_exactness(smoke ? 48 : 96);
  const ExactnessRow co_exact = coro_exactness(smoke ? 1'000 : 4'000);
  util::Table exact_table(
      {"runtime", "pulses(off)", "pulses(on)", "expected", "identical"});
  for (const ExactnessRow& row : {tr_exact, co_exact}) {
    exact_table.add_row({row.runtime, std::to_string(row.pulses_off),
                         std::to_string(row.pulses_on),
                         std::to_string(row.expected),
                         row.ok ? "yes" : "NO"});
  }
  exact_table.print(std::cout);
  const bool exact_ok = tr_exact.ok && co_exact.ok;

  // --- Gate 2: armed-vs-dark soak throughput. ---------------------------
  // Run-to-run soak throughput swings far more than any plausible telemetry
  // cost (CPU boost ramp, cache state — samples in one process climb 2-3x
  // from cold to warm), so one warmup soak is discarded, then dark/armed
  // run as adjacent pairs and the gate asks whether the armed configuration
  // can KEEP PACE with dark in at least one pair: best paired ratio
  // armed/dark >= 0.97, i.e. telemetry overhead <= 3% net of noise.
  const double duration = smoke ? 2.0 : 6.0;
  const std::size_t reps = smoke ? 3 : 4;
  bool soaks_ok = true;
  const svc::SoakOptions dark_opts = base_soak(duration, 21);
  svc::SoakOptions armed_opts = base_soak(duration, 21);
  armed_opts.serve = 0;
  armed_opts.on_serve = [](std::uint16_t) {};
  armed_opts.snapshot_path = "BENCH_E17_snapshot.jsonl";
  soak_elections_per_second(dark_opts, 100, soaks_ok);  // warmup, discarded
  double dark = 0.0, armed = 0.0, best_ratio = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const double d = soak_elections_per_second(dark_opts, rep, soaks_ok);
    const double a = soak_elections_per_second(armed_opts, rep, soaks_ok);
    std::cout << "  rep " << rep << ": dark " << util::Table::fixed(d, 0)
              << " elections/s, armed " << util::Table::fixed(a, 0)
              << " elections/s (ratio "
              << util::Table::fixed(d > 0.0 ? a / d : 0.0, 3) << ")\n";
    dark = std::max(dark, d);
    armed = std::max(armed, a);
    if (d > 0.0) best_ratio = std::max(best_ratio, a / d);
  }
  const double overhead = 1.0 - best_ratio;
  const bool overhead_ok = soaks_ok && overhead <= 0.03;
  std::cout << "\nsoak throughput: dark "
            << util::Table::fixed(dark, 0) << " elections/s best, armed "
            << util::Table::fixed(armed, 0)
            << " elections/s best, paired overhead "
            << util::Table::fixed(overhead * 100.0, 2) << "% (gate <= 3%)\n";

  // --- Gate 3: live scrape mid-soak. ------------------------------------
  const ScrapeProbe probe =
      scrape_probe_soak(base_soak(smoke ? 3.0 : 5.0, 33));
  const bool scrape_ok = probe.served && probe.metrics_ok &&
                         probe.healthz_ok && probe.flight_ok;
  std::cout << "live scrape: " << (scrape_ok ? "ok" : "FAILED") << " (port "
            << probe.port << ", " << probe.scraped_elections
            << " elections on the wire mid-run)\n";

  // --- Gate 4: phase attribution sums to the conservation counter. ------
  bool phase_ok = true;
  std::uint64_t sim_phase_sum = 0, sim_pulses = 0;
  std::uint64_t coro_phase_sum = 0, coro_pulses = 0;
  // calm still churns a little; zero fault_fraction makes every first
  // attempt provably trivial, so no pulse is ever dropped and the phase
  // sums must hit the conservation counter exactly.
  svc::ChurnProfile clean_profile =
      svc::ChurnProfile::preset(svc::ChurnPreset::calm);
  clean_profile.fault_fraction = 0.0;
  {
    svc::SoakOptions clean = base_soak(smoke ? 2.0 : 4.0, 5);
    clean.churn = clean_profile;
    svc::SoakReport r = svc::run_soak(clean);
    sim_phase_sum = phase_sum(r.metrics);
    sim_pulses = r.metrics.counter("svc.pulses").value();
    phase_ok = phase_ok && r.ok() && sim_phase_sum == sim_pulses;
  }
  {
    svc::SoakOptions clean = base_soak(smoke ? 2.0 : 4.0, 6);
    clean.churn = clean_profile;
    clean.policy.backend = svc::SoakBackend::coro;
    svc::SoakReport r = svc::run_soak(clean);
    coro_phase_sum = phase_sum(r.metrics);
    coro_pulses = r.metrics.counter("svc.pulses").value();
    phase_ok = phase_ok && r.ok() && coro_phase_sum == coro_pulses &&
               r.coro_attempts > 0;
  }
  std::cout << "phase sums (clean churn): sim " << sim_phase_sum << " vs "
            << sim_pulses << ", coro " << coro_phase_sum << " vs "
            << coro_pulses << " — "
            << (phase_ok ? "conservation-exact" : "MISMATCH") << "\n";

  // --- Artifact. --------------------------------------------------------
  for (const ExactnessRow& row : {tr_exact, co_exact}) {
    bench::Json j = bench::Json::object();
    j.set("check", "zero_overhead_exact")
        .set("runtime", row.runtime)
        .set("pulses_off", row.pulses_off)
        .set("pulses_on", row.pulses_on)
        .set("expected_pulses", row.expected)
        .set("identical", row.ok);
    report.add_result(std::move(j));
  }
  bench::Json jo = bench::Json::object();
  jo.set("check", "telemetry_overhead")
      .set("dark_elections_per_sec", dark)
      .set("armed_elections_per_sec", armed)
      .set("best_paired_ratio", best_ratio)
      .set("overhead_fraction", overhead)
      .set("max_overhead_fraction", 0.03);
  report.add_result(std::move(jo));
  bench::Json js = bench::Json::object();
  js.set("check", "live_scrape")
      .set("served", probe.served)
      .set("metrics_ok", probe.metrics_ok)
      .set("healthz_ok", probe.healthz_ok)
      .set("flight_ok", probe.flight_ok)
      .set("scraped_elections", probe.scraped_elections);
  report.add_result(std::move(js));
  bench::Json jp = bench::Json::object();
  jp.set("check", "phase_sum")
      .set("sim_phase_sum", sim_phase_sum)
      .set("sim_pulses", sim_pulses)
      .set("coro_phase_sum", coro_phase_sum)
      .set("coro_pulses", coro_pulses);
  report.add_result(std::move(jp));

  const bool ok = exact_ok && overhead_ok && scrape_ok && phase_ok;
  report.root()
      .set("smoke", smoke)
      .set("gate_zero_overhead_exact", exact_ok)
      .set("gate_overhead_ok", overhead_ok)
      .set("gate_live_scrape_ok", scrape_ok)
      .set("gate_phase_sum_ok", phase_ok)
      .set("gate_ok", ok);
  report.finish(total.seconds());

  bench::verdict(
      ok,
      "telemetry cost " + util::Table::fixed(overhead * 100.0, 2) +
          "% of soak throughput when armed and exactly nothing when off, "
          "served live mid-soak, with per-phase pulse series summing to the "
          "fabric's conservation counters on clean churn");
  return ok ? 0 : 1;
}
