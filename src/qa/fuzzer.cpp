#include "qa/fuzzer.hpp"

#include <utility>

namespace colex::qa {

CampaignReport run_campaign(
    const CampaignOptions& options,
    const std::function<void(std::uint64_t, const CaseResult&)>& progress) {
  CampaignReport report;
  std::vector<double> pulses;
  std::vector<double> deliveries;
  pulses.reserve(options.cases);
  deliveries.reserve(options.cases);

  for (std::size_t i = 0; i < options.cases; ++i) {
    const std::uint64_t seed = options.seed_start + i;
    const FuzzCase c = generate_case(seed, options.generator);
    CaseResult result = check_case(c, options.properties);
    ++report.cases_run;
    if (c.clean()) {
      ++report.clean_cases;
    } else {
      ++report.faulty_cases;
    }
    pulses.push_back(static_cast<double>(result.outcome.counters.sent));
    deliveries.push_back(static_cast<double>(result.outcome.report.deliveries));
    if (progress) progress(seed, result);

    if (!result.passed()) {
      Counterexample cx;
      cx.seed = seed;
      cx.original = c;
      if (options.shrink) {
        ShrinkResult shrunk =
            shrink_case(c, result, options.properties, options.shrink_options);
        cx.minimal = std::move(shrunk.minimal);
        cx.result = std::move(shrunk.result);
        cx.shrink_stats = shrunk.stats;
      } else {
        cx.minimal = c;
        cx.result = std::move(result);
      }
      report.counterexamples.push_back(std::move(cx));
      if (options.max_failures != 0 &&
          report.counterexamples.size() >= options.max_failures) {
        break;
      }
    }
  }

  report.pulses = util::summarize(std::move(pulses));
  report.deliveries = util::summarize(std::move(deliveries));
  return report;
}

}  // namespace colex::qa
