// Unit and fuzz tests for the bus frame codec in isolation.
#include <gtest/gtest.h>

#include <deque>

#include "colib/framing.hpp"
#include "util/rng.hpp"

namespace colex::colib {
namespace {

std::vector<Frame> decode_all(const Bits& stream) {
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (const bool bit : stream) {
    if (auto frame = decoder.feed(bit)) frames.push_back(std::move(*frame));
  }
  EXPECT_TRUE(decoder.idle());
  return frames;
}

TEST(Framing, PassRoundTrip) {
  const auto frames = decode_all(encode_pass_frame());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].kind, Frame::Kind::pass);
}

TEST(Framing, HaltRoundTrip) {
  const auto frames = decode_all(encode_halt_frame());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].kind, Frame::Kind::halt);
}

TEST(Framing, DataRoundTripIncludingEmptyPayload) {
  for (const Bits& payload :
       {Bits{}, Bits{true}, Bits{false}, Bits{true, false, true, true},
        Bits(64, true), Bits(64, false)}) {
    const auto frames = decode_all(encode_data_frame(payload));
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].kind, Frame::Kind::data);
    EXPECT_EQ(frames[0].payload, payload);
  }
}

TEST(Framing, EncodedDataLengthFormula) {
  // 2 header bits + (L+1) unary length + L payload bits = 2L + 3.
  for (std::size_t len : {0u, 1u, 5u, 31u}) {
    EXPECT_EQ(encode_data_frame(Bits(len, true)).size(), 2 * len + 3);
  }
}

TEST(Framing, BackToBackFrameSequences) {
  Bits stream;
  append(stream, encode_data_frame(Bits{true, true, false}));
  append(stream, encode_pass_frame());
  append(stream, encode_data_frame(Bits{}));
  append(stream, encode_pass_frame());
  append(stream, encode_halt_frame());
  const auto frames = decode_all(stream);
  ASSERT_EQ(frames.size(), 5u);
  EXPECT_EQ(frames[0].kind, Frame::Kind::data);
  EXPECT_EQ(frames[0].payload, (Bits{true, true, false}));
  EXPECT_EQ(frames[1].kind, Frame::Kind::pass);
  EXPECT_EQ(frames[2].kind, Frame::Kind::data);
  EXPECT_TRUE(frames[2].payload.empty());
  EXPECT_EQ(frames[3].kind, Frame::Kind::pass);
  EXPECT_EQ(frames[4].kind, Frame::Kind::halt);
}

TEST(Framing, DecoderNotIdleMidFrame) {
  FrameDecoder decoder;
  EXPECT_TRUE(decoder.idle());
  EXPECT_FALSE(decoder.feed(true).has_value());  // saw1
  EXPECT_FALSE(decoder.idle());
  EXPECT_FALSE(decoder.feed(true).has_value());  // entering length
  EXPECT_FALSE(decoder.feed(true).has_value());  // L = 1
  EXPECT_FALSE(decoder.feed(false).has_value());  // length terminator
  EXPECT_FALSE(decoder.idle());
  const auto frame = decoder.feed(true);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, Bits{true});
  EXPECT_TRUE(decoder.idle());
}

TEST(Framing, FuzzRandomFrameSequencesRoundTrip) {
  // Encode random frame sequences, decode, and compare — 200 sequences of
  // up to 50 frames with payloads up to 40 bits.
  util::Xoshiro256StarStar rng(12345);
  for (int round = 0; round < 200; ++round) {
    std::deque<Frame> expected;
    Bits stream;
    const std::size_t count = 1 + rng.below(50);
    for (std::size_t i = 0; i < count; ++i) {
      const auto kind = rng.below(3);
      if (kind == 0) {
        expected.push_back(Frame{Frame::Kind::pass, {}});
        append(stream, encode_pass_frame());
      } else if (kind == 1) {
        Bits payload(rng.below(41));
        for (std::size_t b = 0; b < payload.size(); ++b) {
          payload[b] = rng.bernoulli(0.5);
        }
        expected.push_back(Frame{Frame::Kind::data, payload});
        append(stream, encode_data_frame(payload));
      } else {
        expected.push_back(Frame{Frame::Kind::halt, {}});
        append(stream, encode_halt_frame());
      }
    }
    const auto frames = decode_all(stream);
    ASSERT_EQ(frames.size(), expected.size()) << "round " << round;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(frames[i].kind, expected[i].kind) << round << ":" << i;
      EXPECT_EQ(frames[i].payload, expected[i].payload) << round << ":" << i;
    }
  }
}

}  // namespace
}  // namespace colex::colib
