#include "sim/faults.hpp"

namespace colex::sim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::drop: return "drop";
    case FaultKind::duplicate: return "duplicate";
    case FaultKind::spurious: return "spurious";
    case FaultKind::crash: return "crash";
    case FaultKind::recover: return "recover";
    case FaultKind::corrupt: return "corrupt";
  }
  return "?";
}

TraceEvent::Kind trace_kind(FaultKind kind) {
  switch (kind) {
    case FaultKind::drop: return TraceEvent::Kind::fault_drop;
    case FaultKind::duplicate: return TraceEvent::Kind::fault_duplicate;
    case FaultKind::spurious: return TraceEvent::Kind::fault_spurious;
    case FaultKind::crash: return TraceEvent::Kind::fault_crash;
    case FaultKind::recover: return TraceEvent::Kind::fault_recover;
    case FaultKind::corrupt: return TraceEvent::Kind::fault_corrupt;
  }
  return TraceEvent::Kind::fault_corrupt;
}

const char* to_string(FaultOutcome outcome) {
  switch (outcome) {
    case FaultOutcome::recovered_correct: return "recovered-correct";
    case FaultOutcome::stalled: return "stalled";
    case FaultOutcome::diverged: return "diverged";
    case FaultOutcome::safety_violated: return "safety-violated";
  }
  return "?";
}

FaultOutcome classify_outcome(const RunReport& report,
                              const std::string& safety_diag,
                              bool output_correct, std::string* diagnosis) {
  // Safety trumps everything: a violated invariant or unsafe output is the
  // worst possible ending regardless of whether the run settled.
  if (!safety_diag.empty()) {
    if (diagnosis) *diagnosis = "safety: " + safety_diag;
    return FaultOutcome::safety_violated;
  }
  // A run that exhausted its event budget never settled: the fault pushed
  // the system into unbounded activity (e.g. a pulse no node will ever
  // absorb circulating forever).
  if (report.hit_event_limit) {
    if (diagnosis) *diagnosis = "event budget exhausted without settling";
    return FaultOutcome::diverged;
  }
  // The run settled (nothing in flight, nothing more will happen — leftover
  // payloads the algorithms refuse to read are quarantined, not progress).
  if (output_correct) {
    if (diagnosis) {
      *diagnosis = report.quiescent
                       ? "settled quiescent with correct output"
                       : "settled with correct output; unread leftovers "
                         "quarantined in queues";
    }
    return FaultOutcome::recovered_correct;
  }
  if (diagnosis) *diagnosis = "settled in a wrong or incomplete state";
  return FaultOutcome::stalled;
}

}  // namespace colex::sim
