// Election-as-a-service soak harness: a sharded multi-ring driver that
// multiplexes thousands of concurrent independent elections under sustained
// churn and supervises every one of them.
//
// Architecture
// ------------
// `rings` slots are statically partitioned across a fixed pool of `shards`
// worker threads (slot i belongs to shard i % shards — the same fixed-pool
// shape as sim/parallel.hpp, with static instead of work-stealing
// assignment because slots are homogeneous and endless). Each shard loops
// round-robin over its slots; per visit it runs one fully supervised
// election (svc/supervisor.hpp) for that slot's ChurnEngine and records the
// outcome. Rings never outlive an election: every visit respawns a fresh
// ring with a fresh size — ring retirement IS the loop structure.
//
// SupervisorPolicy::backend selects the execution substrate for clean
// attempts: `sim` (default) runs them on the deterministic simulator,
// `coro` runs them as real coroutines on the work-stealing executor
// (src/coro), exercising the production runtime under churn. Faulty
// attempts always run on sim, where fault injection lives.
//
// Ownership and thread-safety follow the obs registry contract: each shard
// owns a private obs::Registry, latency vector, and outcome tallies,
// written only by that shard's thread and merged after the join. The only
// cross-thread state is a handful of relaxed atomics (started/finished
// counters, per-shard finished counts, the stop flag) that the monitor
// samples.
//
// The calling thread is the monitor: it samples per-shard progress into
// runtime::ProgressTracker windows (the ThreadRing watchdog's last-N idea
// lifted to shard granularity — a flat tail flags a stalled shard), and
// periodically rewrites a colex-trace-v1 snapshot file carrying the live
// metrics registry, which `colex-inspect summary` prints. A stalled shard
// cannot wedge the run: every attempt has a hard event budget, so the flag
// is diagnostic, not load-bearing.
//
// The service-level gate a soak must pass (SoakReport::ok()): zero
// safety-violated, zero diverged, zero abandoned elections — with the
// supervisor guaranteeing that every COMPLETED election carried a unique
// max-ID leader within the Theorem 1 pulse bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "svc/churn.hpp"
#include "svc/supervisor.hpp"
#include "util/stats.hpp"

namespace colex::svc {

struct SoakOptions {
  /// Wall-clock duration. The run stops once the duration elapsed AND
  /// min_elections completed; a shard always finishes its in-flight
  /// election, never aborting one mid-run.
  double duration_seconds = 10.0;
  /// Concurrent ring slots (each an independent election stream).
  std::size_t rings = 1024;
  /// Worker threads; 0 = hardware concurrency, capped at `rings`.
  std::size_t shards = 0;
  std::uint64_t seed = 1;
  ChurnProfile churn = ChurnProfile::preset(ChurnPreset::steady);
  SupervisorPolicy policy;
  /// Keep running past the duration until this many elections finished.
  std::uint64_t min_elections = 0;
  /// Stop early once this many elections finished (0 = duration-driven).
  std::uint64_t max_elections = 0;
  /// Shard stall detection: progress-sample cadence, history depth, and the
  /// flat-tail window that flags a shard.
  double sample_every_seconds = 0.25;
  std::size_t progress_depth = 16;
  std::size_t stall_window = 8;
  /// When non-empty, the monitor rewrites this file every
  /// snapshot_every_seconds (and once at the end) as a colex-trace-v1 JSONL
  /// snapshot embedding the current metrics — `colex-inspect summary` on it
  /// prints the live counters of a running soak.
  std::string snapshot_path;
  double snapshot_every_seconds = 1.0;
  /// When >= 0, serve a live Prometheus /metrics endpoint (obs/serve.hpp)
  /// on 127.0.0.1:<serve> for the duration of the soak (0 = pick an
  /// ephemeral port). Each shard publishes a snapshot of its registry
  /// roughly every 200ms; a scrape merges the published snapshots plus the
  /// monitor's liveness gauges — the same families the final snapshot file
  /// renders. -1 (default) spawns no server thread at all.
  int serve = -1;
  /// Called once with the bound port when the server is up (ephemeral port
  /// discovery for tools and tests). Not called if the server failed to
  /// start — the soak then degrades to snapshot-file-only and runs on.
  std::function<void(std::uint16_t)> on_serve;
};

struct ShardStats {
  std::uint64_t elections = 0;  ///< elections finished by this shard
  std::uint64_t attempts = 0;
  double busy_seconds = 0.0;
  double utilization = 0.0;  ///< busy_seconds / wall_seconds
  bool stalled = false;      ///< flat progress tail at some sample point
};

struct SoakReport {
  std::size_t rings = 0;         ///< slots driven
  std::size_t shards_used = 0;   ///< worker threads actually spawned
  std::uint64_t started = 0;
  std::uint64_t completed = 0;  ///< final outcome recovered_correct
  std::uint64_t retried = 0;    ///< completed or not, needed > 1 attempt
  std::uint64_t abandoned = 0;  ///< attempt budget exhausted
  // Final-outcome tallies of the abandoned/fatal elections.
  std::uint64_t stalled = 0;   ///< abandoned with a final stalled attempt
  std::uint64_t diverged = 0;  ///< abandoned with a final diverged attempt
  std::uint64_t safety_violated = 0;
  std::uint64_t attempts = 0;
  std::uint64_t coro_attempts = 0;  ///< attempts run on the coro backend
  std::uint64_t socket_attempts = 0;  ///< attempts run on the socket backend
  std::string backend = "sim";      ///< substrate clean attempts ran on
  std::uint64_t faults_applied = 0;
  double wall_seconds = 0.0;
  double elections_per_second = 0.0;
  util::Summary latency_ms;  ///< per-election wall latency incl. retries
  std::vector<ShardStats> shards;
  std::vector<std::string> progress;    ///< global progress history
  std::vector<std::string> violations;  ///< first few fatal diagnoses
  obs::Registry metrics;                ///< merged across shards
  std::uint64_t snapshots_written = 0;

  /// The service-level gate: every started election completed correctly.
  bool ok() const {
    return safety_violated == 0 && diverged == 0 && abandoned == 0 &&
           started == completed;
  }

  /// One-line machine-readable summary (colex-soak --json prints it;
  /// ci.sh greps the zero-violation keys).
  std::string to_json() const;
};

SoakReport run_soak(const SoakOptions& options);

}  // namespace colex::svc
