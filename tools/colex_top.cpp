// colex-top: terminal scraper for the live /metrics endpoint a running
// soak (colex-soak --serve) or any obs::MetricsServer exposes.
//
//   colex-top [--host H] [--port P] [--once] [--raw] [--interval S]
//             [--path /metrics]
//
// options:
//   --host H      server host (default 127.0.0.1; localhost also accepted)
//   --port P      server port (required)
//   --once        scrape once and exit instead of watching
//   --raw         print the raw exposition body instead of the parsed
//                 summary (with --once this is a plain curl substitute —
//                 ci.sh uses it so the container needs no curl)
//   --interval S  watch-mode refresh cadence in seconds (default 2)
//   --path P      request path (default /metrics; /debug/flight and
//                 /healthz are the other endpoints a server exposes)
//
// Watch mode clears the screen per refresh (ANSI home+clear) and shows the
// headline election/pulse families plus every gauge — enough to see a soak
// breathe without leaving the terminal. Exit status: 0 on a successful
// scrape (the last one in watch mode), 1 on transport/HTTP failure, 2 on
// usage errors.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/serve.hpp"

namespace {

int usage() {
  std::cerr << "usage:\n"
               "  colex-top --port P [--host H] [--once] [--raw]\n"
               "            [--interval S] [--path /metrics]\n";
  return 2;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  out = 0;
  for (const char ch : s) {
    if (ch < '0' || ch > '9') return false;
    out = out * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return true;
}

/// One parsed sample line of the exposition: `name{labels} value`.
struct Sample {
  std::string name;  // family + label block, verbatim
  std::string value;
};

/// Splits the exposition body into samples, skipping comments. No numeric
/// parsing: the tool re-prints what the server rendered.
std::vector<Sample> parse_samples(const std::string& body) {
  std::vector<Sample> out;
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0) continue;
    out.push_back(Sample{line.substr(0, sp), line.substr(sp + 1)});
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

void print_summary(const std::string& host, std::uint16_t port,
                   const std::string& body) {
  const std::vector<Sample> samples = parse_samples(body);
  std::cout << "colex-top " << host << ":" << port << " — " << samples.size()
            << " samples\n\n";
  // Headline counters first: elections and the per-phase pulse series.
  for (const Sample& s : samples) {
    if (starts_with(s.name, "colex_elections_total") ||
        starts_with(s.name, "colex_pulses_total")) {
      std::cout << "  " << s.name << " = " << s.value << "\n";
    }
  }
  std::cout << "\n";
  // Then every gauge-ish liveness series (svc.* / rt.* / coro.* families
  // without the _total suffix), then nothing else: histograms are for the
  // recorded snapshot, not a terminal glance.
  for (const Sample& s : samples) {
    if (s.name.find("_total") != std::string::npos) continue;
    if (s.name.find("_bucket") != std::string::npos) continue;
    if (s.name.find("_sum") != std::string::npos) continue;
    if (s.name.find("_count") != std::string::npos) continue;
    std::cout << "  " << s.name << " = " << s.value << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string path = "/metrics";
  std::uint16_t port = 0;
  bool have_port = false;
  bool once = false;
  bool raw = false;
  double interval_s = 2.0;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const bool has_value = i + 1 < args.size();
    std::uint64_t u = 0;
    if (a == "--once") {
      once = true;
    } else if (a == "--raw") {
      raw = true;
    } else if (a == "--host" && has_value) {
      host = args[++i];
    } else if (a == "--path" && has_value) {
      path = args[++i];
    } else if (a == "--port" && has_value && parse_u64(args[++i], u) &&
               u >= 1 && u <= 65535) {
      port = static_cast<std::uint16_t>(u);
      have_port = true;
    } else if (a == "--interval" && has_value && parse_u64(args[++i], u) &&
               u >= 1) {
      interval_s = static_cast<double>(u);
    } else {
      return usage();
    }
  }
  if (!have_port) return usage();

  for (;;) {
    int status = 0;
    std::string body;
    if (!colex::obs::http_get(host, port, path, status, body)) {
      std::cerr << "colex-top: cannot reach " << host << ":" << port << path
                << "\n";
      return 1;
    }
    if (status != 200) {
      std::cerr << "colex-top: HTTP " << status << " from " << path << "\n";
      return 1;
    }
    if (raw) {
      std::cout << body;
    } else {
      if (!once) std::cout << "\x1b[H\x1b[2J";  // home + clear
      print_summary(host, port, body);
    }
    if (once) return 0;
    std::cout.flush();
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
  }
}
