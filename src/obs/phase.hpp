// The shared phase vocabulary for phase-aware election telemetry.
//
// Every execution substrate attributes its pulses to the algorithm phase
// the sending node was in: the sim automata report it via
// sim::Automaton::phase(), the blocking transcriptions track it in
// BlockingOutcome::phase_sends, and the soak harness publishes the merged
// per-phase counters as `pulses{phase=...}` series. Using one fixed enum
// (instead of free-form strings) keeps the per-send hot path an array
// index and makes recorded and live series directly comparable.
//
// The phases map onto the paper's pseudocode:
//  * probe            — undecided: the Algorithm 1 probe loop (lines 2-7),
//                       Algorithm 2 before any role is fixed, Algorithm 3
//                       before the output block has fired.
//  * elected          — a role (Leader/Non-Leader) has been computed; the
//                       node keeps relaying (stabilizing algorithms) or
//                       drains toward termination (Algorithm 2 lines 9-13).
//  * initiated_wait   — Algorithm 2 lines 14-17: the unique
//                       rho_cw = ID = rho_ccw node sent the termination
//                       pulse and waits for its return.
//  * orientation_flip — Algorithm 3 output with cw_port = Port0: the node
//                       decided its port labels were mounted against the
//                       elected orientation.
//  * done             — past the until in Algorithm 2 line 18 (terminated).
//  * adversary        — not a node phase: the residual bucket for pulses
//                       the fabric carried but no node sent (spurious
//                       injections minus drops), so per-phase series still
//                       sum to the fabric totals under faults.
#pragma once

#include <cstddef>
#include <cstdint>

namespace colex::obs {

enum class Phase : std::uint8_t {
  probe = 0,
  elected,
  initiated_wait,
  orientation_flip,
  done,
  adversary,
};

inline constexpr std::size_t kPhaseCount = 6;

constexpr std::size_t index(Phase p) { return static_cast<std::size_t>(p); }

/// Stable series-label names; these strings appear verbatim as the `phase`
/// label value in the Prometheus exposition and in sim::Automaton::phase().
constexpr const char* to_string(Phase p) {
  switch (p) {
    case Phase::probe: return "probe";
    case Phase::elected: return "elected";
    case Phase::initiated_wait: return "initiated_wait";
    case Phase::orientation_flip: return "orientation_flip";
    case Phase::done: return "done";
    case Phase::adversary: return "adversary";
  }
  return "probe";
}

constexpr const char* phase_name(std::size_t i) {
  return to_string(static_cast<Phase>(i));
}

/// Reverse lookup for phase tags reported as strings (the sim automata's
/// virtual phase()). Unknown tags land in `probe` — a conservative default
/// that keeps per-phase sums equal to the total.
inline Phase phase_from_string(const char* s) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const char* name = phase_name(i);
    std::size_t k = 0;
    while (name[k] != '\0' && s[k] == name[k]) ++k;
    if (name[k] == '\0' && s[k] == '\0') return static_cast<Phase>(i);
  }
  return Phase::probe;
}

}  // namespace colex::obs
