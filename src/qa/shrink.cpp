#include "qa/shrink.hpp"

#include <algorithm>
#include <utility>

#include "util/contracts.hpp"

namespace colex::qa {

namespace {

struct Ctx {
  const PropertyOptions& props;
  std::string target;
  ShrinkOptions opts;
  ShrinkStats stats;

  bool exhausted() const { return stats.attempts >= opts.max_attempts; }
};

/// Accepts `cand` as the new current case iff the anchored property still
/// fails on it.
bool try_candidate(Ctx& ctx, FuzzCase cand, FuzzCase& cur,
                   CaseResult& cur_result) {
  if (ctx.exhausted()) return false;
  ++ctx.stats.attempts;
  CaseResult r = check_case(cand, ctx.props);
  if (r.failed_property != ctx.target) return false;
  cur = std::move(cand);
  cur_result = std::move(r);
  ++ctx.stats.improvements;
  return true;
}

/// Classic ddmin over one list-valued field of the case. `rebuild(base,
/// items)` produces the candidate carrying the reduced list.
template <typename T, typename Rebuild>
void ddmin_list(Ctx& ctx, FuzzCase& cur, CaseResult& cur_result,
                std::vector<T> items, Rebuild&& rebuild) {
  std::size_t granularity = 2;
  while (!items.empty() && !ctx.exhausted()) {
    const std::size_t chunk =
        std::max<std::size_t>(1, items.size() / granularity);
    bool reduced = false;
    for (std::size_t start = 0; start < items.size() && !ctx.exhausted();
         start += chunk) {
      std::vector<T> kept;
      kept.reserve(items.size());
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i < start || i >= start + chunk) kept.push_back(items[i]);
      }
      if (try_candidate(ctx, rebuild(cur, kept), cur, cur_result)) {
        items = std::move(kept);
        granularity = granularity > 2 ? granularity - 1 : 2;
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunk == 1) break;
      granularity = std::min(items.size(), granularity * 2);
    }
  }
}

void shrink_faults(Ctx& ctx, FuzzCase& cur, CaseResult& cur_result) {
  if (cur.corrupt.active) {
    FuzzCase cand = cur;
    cand.corrupt = CorruptSpec{};
    try_candidate(ctx, std::move(cand), cur, cur_result);
  }
  if (cur.faults.all_channels.active() || !cur.faults.channel_overrides.empty()) {
    FuzzCase cand = cur;
    cand.faults.all_channels = sim::ChannelFaultProfile{};
    cand.faults.channel_overrides.clear();
    try_candidate(ctx, std::move(cand), cur, cur_result);
  }
  ddmin_list(ctx, cur, cur_result, cur.faults.script,
             [](const FuzzCase& base, const std::vector<sim::ScriptedFault>& kept) {
               FuzzCase cand = base;
               // A ddmin chunk can remove a crash while keeping its recover;
               // FaultPlan::validate() rejects such orphans, which would
               // abort the whole shrink inside the injector. Pruning them
               // keeps every candidate runnable and is itself a strict
               // shrink of the script.
               cand.faults.script.clear();
               cand.faults.script.reserve(kept.size());
               std::vector<sim::NodeId> crashed;
               for (const sim::ScriptedFault& f : kept) {
                 if (f.kind == sim::FaultKind::crash) {
                   crashed.push_back(f.node);
                 } else if (f.kind == sim::FaultKind::recover &&
                            std::find(crashed.begin(), crashed.end(),
                                      f.node) == crashed.end()) {
                   continue;
                 }
                 cand.faults.script.push_back(f);
               }
               return cand;
             });
  ddmin_list(ctx, cur, cur_result, cur.faults.preseed_channels,
             [](const FuzzCase& base,
                const std::vector<std::pair<std::size_t, std::size_t>>& kept) {
               FuzzCase cand = base;
               cand.faults.preseed_channels = kept;
               return cand;
             });
}

void shrink_tape(Ctx& ctx, FuzzCase& cur, CaseResult& cur_result) {
  ddmin_list(ctx, cur, cur_result, cur.tape,
             [](const FuzzCase& base, const std::vector<std::size_t>& kept) {
               FuzzCase cand = base;
               cand.tape = kept;
               return cand;
             });
}

/// Drops node `v` from the ring, discarding fault references that fall off
/// the smaller topology (channel ids are dense: 2 per node).
FuzzCase without_node(const FuzzCase& base, sim::NodeId v) {
  FuzzCase cand = base;
  cand.ids.erase(cand.ids.begin() + static_cast<std::ptrdiff_t>(v));
  if (!cand.port_flips.empty()) {
    cand.port_flips.erase(cand.port_flips.begin() +
                          static_cast<std::ptrdiff_t>(v));
  }
  const std::size_t channels = 2 * cand.ids.size();
  const std::size_t nodes = cand.ids.size();
  auto& script = cand.faults.script;
  script.erase(std::remove_if(script.begin(), script.end(),
                              [channels, nodes](const sim::ScriptedFault& f) {
                                const bool node_fault =
                                    f.kind == sim::FaultKind::crash ||
                                    f.kind == sim::FaultKind::recover;
                                return node_fault ? f.node >= nodes
                                                  : f.channel >= channels;
                              }),
               script.end());
  auto& preseeds = cand.faults.preseed_channels;
  preseeds.erase(
      std::remove_if(preseeds.begin(), preseeds.end(),
                     [channels](const std::pair<std::size_t, std::size_t>& p) {
                       return p.first >= channels;
                     }),
      preseeds.end());
  auto& overrides = cand.faults.channel_overrides;
  overrides.erase(std::remove_if(
                      overrides.begin(), overrides.end(),
                      [channels](const std::pair<std::size_t,
                                                 sim::ChannelFaultProfile>& o) {
                        return o.first >= channels;
                      }),
                  overrides.end());
  if (cand.corrupt.active && cand.corrupt.node >= nodes) {
    cand.corrupt = CorruptSpec{};
  }
  return cand;
}

/// Rank-compacts the ID assignment toward 1..k (equal IDs stay equal, the
/// order relation is preserved, so the paper's predicates are unchanged in
/// structure while IDmax — and with it every pulse count — gets smaller).
FuzzCase with_compact_ids(const FuzzCase& base) {
  FuzzCase cand = base;
  std::vector<std::uint64_t> sorted = cand.ids;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (auto& id : cand.ids) {
    const auto it = std::lower_bound(sorted.begin(), sorted.end(), id);
    id = static_cast<std::uint64_t>(it - sorted.begin()) + 1;
  }
  return cand;
}

void shrink_config(Ctx& ctx, FuzzCase& cur, CaseResult& cur_result) {
  bool progressed = true;
  while (progressed && cur.n() > 1 && !ctx.exhausted()) {
    progressed = false;
    for (sim::NodeId v = 0; v < cur.n() && cur.n() > 1; ++v) {
      if (try_candidate(ctx, without_node(cur, v), cur, cur_result)) {
        progressed = true;
        break;  // indices shifted; restart the scan
      }
    }
  }
  FuzzCase compact = with_compact_ids(cur);
  if (!(compact == cur)) {
    try_candidate(ctx, std::move(compact), cur, cur_result);
  }
  if (!cur.port_flips.empty()) {
    FuzzCase cand = cur;
    cand.port_flips.clear();
    try_candidate(ctx, std::move(cand), cur, cur_result);
  }
}

}  // namespace

ShrinkResult shrink_case(const FuzzCase& failing, const CaseResult& original,
                         const PropertyOptions& opts,
                         const ShrinkOptions& shrink_opts) {
  COLEX_EXPECTS(!original.failed_property.empty());
  Ctx ctx{opts, original.failed_property, shrink_opts, {}};

  FuzzCase cur = failing;
  CaseResult cur_result = original;
  // Pin the schedule: from here on every candidate is a tape replay. If the
  // pinned replay somehow fails to reproduce (it must, by replay
  // determinism), shrinking just proceeds from the unpinned case.
  if (cur.tape.empty()) {
    FuzzCase pinned = cur;
    pinned.tape = original.outcome.tape;
    try_candidate(ctx, std::move(pinned), cur, cur_result);
  }

  std::size_t last_improvements = static_cast<std::size_t>(-1);
  while (ctx.stats.improvements != last_improvements && !ctx.exhausted()) {
    last_improvements = ctx.stats.improvements;
    shrink_faults(ctx, cur, cur_result);
    shrink_tape(ctx, cur, cur_result);
    shrink_config(ctx, cur, cur_result);
  }

  return ShrinkResult{std::move(cur), std::move(cur_result), ctx.stats};
}

}  // namespace colex::qa
