// Trace playback: runs an election and prints the full pulse timeline —
// every send and delivery in adversarial order — followed by per-node
// totals and the conservation audit. A pedagogical view of how the
// algorithm's counters evolve purely through pulse order.
//
//   ./examples/trace_playback [n] [seed] [max_lines]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "co/alg2.hpp"
#include "co/election.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"
#include "util/ids.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace colex;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 7;
  const std::size_t max_lines =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 60;
  if (n == 0) {
    std::cerr << "ring size must be positive\n";
    return 1;
  }

  const auto ids = util::shuffled(util::dense_ids(n), seed);
  auto net = sim::PulseNetwork::ring(n);
  for (sim::NodeId v = 0; v < n; ++v) {
    net.set_automaton(v, std::make_unique<co::Alg2Terminating>(ids[v]));
  }

  sim::TraceRecorder trace;
  sim::RunOptions opts;
  trace.attach(net, opts);
  sim::RandomScheduler scheduler(seed);
  const auto report = net.run(scheduler, opts);

  std::cout << "Algorithm 2 on a " << n << "-ring, IDs:";
  for (const auto id : ids) std::cout << " " << id;
  std::cout << ", scheduler " << scheduler.name() << "\n\n";

  std::cout << "pulse timeline (" << trace.events().size() << " events";
  if (trace.events().size() > max_lines) {
    std::cout << ", showing first " << max_lines;
  }
  std::cout << "):\n";
  std::size_t shown = 0;
  for (const auto& event : trace.events()) {
    if (shown++ >= max_lines) break;
    std::cout << "  " << to_string(event) << "\n";
  }
  if (trace.events().size() > max_lines) std::cout << "  ...\n";

  std::cout << "\nper-node outcome:\n";
  util::Table table({"node", "ID", "role", "rho_cw", "rho_ccw"});
  for (sim::NodeId v = 0; v < n; ++v) {
    const auto& alg = net.automaton_as<co::Alg2Terminating>(v);
    table.add_row({util::Table::num(static_cast<std::uint64_t>(v)),
                   util::Table::num(alg.id()), co::to_string(alg.role()),
                   util::Table::num(alg.counters().rho_cw),
                   util::Table::num(alg.counters().rho_ccw)});
  }
  table.print(std::cout);

  const auto audit = trace.audit(sim::ring_wiring(n));
  std::cout << "\ntotal pulses       : " << report.sent << "\n";
  std::cout << "conservation audit : " << (audit.empty() ? "clean" : audit)
            << "\n";
  std::cout << "quiescent+terminated: "
            << (report.quiescent && report.all_terminated ? "yes" : "no")
            << "\n";
  return audit.empty() && report.all_terminated ? 0 : 1;
}
