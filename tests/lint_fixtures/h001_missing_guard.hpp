// Fixture: H001 — header without an include guard.  colex-lint: expect(H001)
struct FixtureUnguarded {
  int value = 0;
};
