// Wire format of the socket backend (src/net).
//
// Data plane — pulse frames
// -------------------------
// A pulse carries no content (paper §2), so its wire form is a single byte
// (kPulseByte) with no length prefix: k coalesced pulses are exactly k
// bytes, partial reads are impossible to mis-frame, and batched writes are
// just longer writes. Each ring edge is one full-duplex TCP connection that
// opens with a fixed-size HELLO (magic + sender index + ring size) so both
// ends can verify they were wired into the ring the coordinator intended;
// after the HELLO the stream is pulse bytes only.
//
// Control plane — coordinator frames
// ----------------------------------
// Every node keeps one TCP connection to the coordinator. Frames are a
// 1-byte type followed by a fixed number of little-endian u64 words (the
// ERR frame alone carries a u64 length + that many text bytes). The
// decoders below are incremental: feed() accepts arbitrary byte fragments
// (TCP gives no message boundaries) and emits complete messages only.
//
// The RESULT frame serializes rt::BlockingOutcome plus the endpoint's
// conservation counters, so a multi-process run reassembles exactly the
// same per-node records an in-process run reads from memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/phase.hpp"
#include "runtime/port.hpp"
#include "util/contracts.hpp"

namespace colex::net {

/// The entire data-plane vocabulary: one pulse, one byte.
inline constexpr unsigned char kPulseByte = 0x01;

/// HELLO: 4-byte magic, u32 sender index, u32 ring size (LE).
inline constexpr unsigned char kHelloMagic[4] = {'C', 'L', 'X', 'P'};
inline constexpr std::size_t kHelloSize = 12;

struct Hello {
  std::uint32_t sender = 0;
  std::uint32_t ring_size = 0;
};

inline void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
  }
}

inline void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
  }
}

inline std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline std::vector<unsigned char> encode_hello(std::uint32_t sender,
                                               std::uint32_t ring_size) {
  std::vector<unsigned char> out(kHelloMagic, kHelloMagic + 4);
  put_u32(out, sender);
  put_u32(out, ring_size);
  return out;
}

/// Incremental HELLO decoder: feed bytes until a full frame (or a magic
/// mismatch) materializes. The data stream after the HELLO is pulse bytes,
/// which the caller drains separately.
class HelloParser {
 public:
  /// Consumes up to (kHelloSize - already buffered) bytes from [p, p+len)
  /// and returns how many it took. Check done()/error() afterwards.
  std::size_t feed(const unsigned char* p, std::size_t len) {
    std::size_t used = 0;
    while (used < len && buf_.size() < kHelloSize && error_.empty()) {
      buf_.push_back(p[used++]);
      if (buf_.size() <= 4 && buf_.back() != kHelloMagic[buf_.size() - 1]) {
        error_ = "handshake: bad magic byte at offset " +
                 std::to_string(buf_.size() - 1);
      }
    }
    return used;
  }
  bool done() const { return error_.empty() && buf_.size() == kHelloSize; }
  const std::string& error() const { return error_; }
  Hello hello() const {
    COLEX_EXPECTS(done());
    return Hello{get_u32(buf_.data() + 4), get_u32(buf_.data() + 8)};
  }

 private:
  std::vector<unsigned char> buf_;
  std::string error_;
};

/// Control-plane frame types. Formation: JOIN (node -> coordinator: my
/// index + my data-plane listen port), PEERS (coordinator -> node: ring
/// size + successor's data port), READY (node: ring edges are up), GO
/// (coordinator: start electing). Quiescence: REPORT (node, on entering an
/// idle wait or terminating: state + conservation counters), PROBE /
/// PROBE_ACK (coordinator-driven confirmation rounds), STOP (coordinator:
/// quiescence is certain — unwind). Teardown: RESULT (node: serialized
/// outcome), ERR (node: formation or wire failure, with text).
enum class Ctl : unsigned char {
  join = 1,
  peers = 2,
  ready = 3,
  go = 4,
  report = 5,
  probe = 6,
  probe_ack = 7,
  stop = 8,
  result = 9,
  err = 10,
};

/// REPORT/PROBE_ACK state word.
inline constexpr std::uint64_t kStateIdle = 0;
inline constexpr std::uint64_t kStateDone = 1;

/// RESULT payload layout (u64 words): the full rt::BlockingOutcome plus
/// the endpoint's fabric counters.
inline constexpr std::size_t kResultWords = 27;

/// Fixed word count per control frame type (ERR is variable and handled
/// separately: u64 byte length + text).
inline constexpr std::size_t ctl_words(Ctl t) {
  switch (t) {
    case Ctl::join: return 2;       // index, data_port
    case Ctl::peers: return 2;      // ring_size, succ_data_port
    case Ctl::ready: return 0;
    case Ctl::go: return 0;
    case Ctl::report: return 3;     // state, sent, consumed
    case Ctl::probe: return 1;      // round
    case Ctl::probe_ack: return 4;  // round, state, sent, consumed
    case Ctl::stop: return 0;
    case Ctl::result: return kResultWords;
    case Ctl::err: return 0;  // variable; see CtlParser
  }
  return 0;
}

/// One decoded control message.
struct CtlMsg {
  Ctl type = Ctl::ready;
  std::vector<std::uint64_t> words;
  std::string text;  ///< ERR only
};

inline std::vector<unsigned char> encode_ctl(
    Ctl t, const std::vector<std::uint64_t>& words) {
  COLEX_EXPECTS(words.size() == ctl_words(t));
  std::vector<unsigned char> out;
  out.reserve(1 + 8 * words.size());
  out.push_back(static_cast<unsigned char>(t));
  for (const std::uint64_t w : words) put_u64(out, w);
  return out;
}

inline std::vector<unsigned char> encode_err(const std::string& text) {
  std::vector<unsigned char> out;
  out.reserve(9 + text.size());
  out.push_back(static_cast<unsigned char>(Ctl::err));
  put_u64(out, text.size());
  out.insert(out.end(), text.begin(), text.end());
  return out;
}

/// Serializes one node's outcome (+ endpoint counters) as a RESULT frame.
inline std::vector<unsigned char> encode_result(
    const rt::BlockingOutcome& out, std::uint64_t sent,
    std::uint64_t consumed) {
  std::vector<std::uint64_t> w;
  w.reserve(kResultWords);
  w.push_back(out.id);
  w.push_back(static_cast<std::uint64_t>(out.role));
  w.push_back(out.counters.rho_cw);
  w.push_back(out.counters.sigma_cw);
  w.push_back(out.counters.rho_ccw);
  w.push_back(out.counters.sigma_ccw);
  w.push_back(out.rho_port[0]);
  w.push_back(out.rho_port[1]);
  w.push_back(out.sigma_port[0]);
  w.push_back(out.sigma_port[1]);
  w.push_back(static_cast<std::uint64_t>(sim::index(out.cw_port)));
  w.push_back(out.terminated ? 1 : 0);
  w.push_back(out.stopped ? 1 : 0);
  w.push_back(sent);
  w.push_back(consumed);
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    w.push_back(out.phase_sends[i]);
  }
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    w.push_back(out.phase_waits[i]);
  }
  COLEX_ENSURES(w.size() == kResultWords);
  return encode_ctl(Ctl::result, w);
}

/// Reassembles a RESULT frame's words into the outcome + counters.
struct DecodedResult {
  rt::BlockingOutcome outcome;
  std::uint64_t sent = 0;
  std::uint64_t consumed = 0;
};

inline DecodedResult decode_result(const std::vector<std::uint64_t>& w) {
  COLEX_EXPECTS(w.size() == kResultWords);
  DecodedResult r;
  r.outcome.id = w[0];
  r.outcome.role = static_cast<co::Role>(w[1]);
  r.outcome.counters.rho_cw = w[2];
  r.outcome.counters.sigma_cw = w[3];
  r.outcome.counters.rho_ccw = w[4];
  r.outcome.counters.sigma_ccw = w[5];
  r.outcome.rho_port[0] = w[6];
  r.outcome.rho_port[1] = w[7];
  r.outcome.sigma_port[0] = w[8];
  r.outcome.sigma_port[1] = w[9];
  r.outcome.cw_port = sim::port_from_index(static_cast<int>(w[10]));
  r.outcome.terminated = w[11] != 0;
  r.outcome.stopped = w[12] != 0;
  r.sent = w[13];
  r.consumed = w[14];
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    r.outcome.phase_sends[i] = w[15 + i];
    r.outcome.phase_waits[i] = w[15 + obs::kPhaseCount + i];
  }
  return r;
}

/// Incremental control-stream decoder: buffers fragments, emits complete
/// messages. An unknown type byte is a protocol error (the stream cannot
/// be resynchronized without framing, so the connection must be dropped).
class CtlParser {
 public:
  /// Appends a fragment and moves every now-complete message into `out`.
  /// Returns false on a protocol error (error() explains).
  bool feed(const unsigned char* p, std::size_t len,
            std::vector<CtlMsg>& out) {
    if (!error_.empty()) return false;
    buf_.insert(buf_.end(), p, p + len);
    std::size_t pos = 0;
    while (pos < buf_.size()) {
      const unsigned char type_byte = buf_[pos];
      if (type_byte < static_cast<unsigned char>(Ctl::join) ||
          type_byte > static_cast<unsigned char>(Ctl::err)) {
        error_ = "control stream: unknown frame type " +
                 std::to_string(static_cast<int>(type_byte));
        return false;
      }
      const Ctl type = static_cast<Ctl>(type_byte);
      std::size_t need = 0;
      if (type == Ctl::err) {
        if (buf_.size() - pos < 9) break;  // need the length word
        need = 9 + static_cast<std::size_t>(get_u64(buf_.data() + pos + 1));
      } else {
        need = 1 + 8 * ctl_words(type);
      }
      if (buf_.size() - pos < need) break;
      CtlMsg msg;
      msg.type = type;
      if (type == Ctl::err) {
        msg.text.assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos + 9),
                        buf_.begin() + static_cast<std::ptrdiff_t>(pos + need));
      } else {
        for (std::size_t i = 0; i < ctl_words(type); ++i) {
          msg.words.push_back(get_u64(buf_.data() + pos + 1 + 8 * i));
        }
      }
      out.push_back(std::move(msg));
      pos += need;
    }
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos));
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  std::vector<unsigned char> buf_;
  std::string error_;
};

}  // namespace colex::net
