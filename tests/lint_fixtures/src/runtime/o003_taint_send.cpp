// Fixture: O003 — payload content flowing into send-family calls.
//
// What a node sends (and how many times) must depend on pulse counts only;
// a content-derived send argument leaks payload into the fabric.
namespace fixture_o003 {

void send(int);
void send_pulse(int);

void send_count_tainted(const unsigned char* buf) {
  const int votes = get_u32(buf, 0);
  send(votes);  // colex-lint: expect(O003)
}

void send_inline_tainted(const unsigned char* buf) {
  send_pulse(get_u32(buf, 4));  // colex-lint: expect(O003)
}

void send_waived(const unsigned char* buf) {
  const int votes = get_u32(buf, 8);
  send(votes);  // colex-lint: allow(O003) expect-suppressed(O003) fixture: stands in for a justified content-bearing reply in a decode shim
}

}  // namespace fixture_o003
