#include "svc/supervisor.hpp"

#include <memory>
#include <utility>

#include "co/alg1.hpp"
#include "co/alg2.hpp"
#include "co/roles.hpp"
#include "coro/run.hpp"
#include "net/run.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "util/contracts.hpp"

namespace colex::svc {

const char* to_string(SoakBackend backend) {
  switch (backend) {
    case SoakBackend::coro: return "coro";
    case SoakBackend::socket: return "socket";
    default: return "sim";
  }
}

bool backend_from_string(const std::string& s, SoakBackend& out) {
  if (s == "sim") {
    out = SoakBackend::sim;
    return true;
  }
  if (s == "coro") {
    out = SoakBackend::coro;
    return true;
  }
  if (s == "socket") {
    out = SoakBackend::socket;
    return true;
  }
  return false;
}

namespace {

std::unique_ptr<sim::PulseAutomaton> fresh_node(SoakAlg alg,
                                                std::uint64_t id) {
  if (alg == SoakAlg::alg1) return std::make_unique<co::Alg1Stabilizing>(id);
  return std::make_unique<co::Alg2Terminating>(id);
}

co::Role role_of(const sim::PulseNetwork& net, SoakAlg alg, sim::NodeId v) {
  return alg == SoakAlg::alg1
             ? net.automaton_as<co::Alg1Stabilizing>(v).role()
             : net.automaton_as<co::Alg2Terminating>(v).role();
}

/// Clean-attempt path on the coroutine executor. Outcomes here are
/// schedule-independent — the conserved pulse counters give the exact
/// Theorem 1 / Corollary 13 count and a unique max-ID leader — so the only
/// non-deterministic ending is a wall-clock watchdog timeout, which
/// classifies as `stalled` without the clean-attempt escalation (a loaded
/// machine is not an algorithm bug; the retry ladder absorbs it).
AttemptResult run_attempt_coro(const RingSpec& spec) {
  const std::uint64_t id_max = spec.id_max();
  const rt::ThreadAlg alg =
      spec.alg == SoakAlg::alg1 ? rt::ThreadAlg::alg1 : rt::ThreadAlg::alg2;

  // One worker per election: a soak shard is already one thread of a fixed
  // pool, so fanning each tiny ring across more workers would only
  // oversubscribe the machine.
  coro::CoroRunOptions copts;
  copts.workers = 1;
  copts.timeout_ms = 10'000;
  const coro::CoroRunResult r = coro::run_on_coro(spec.ids, {}, alg, copts);

  AttemptResult a;
  a.on_coro = true;
  for (const rt::BlockingOutcome& out : r.outcomes) {
    for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
      a.phase_pulses[i] += out.phase_sends[i];
    }
  }
  a.pulses = r.pulses;
  a.pulse_bound = spec.pulse_bound();
  a.within_bound = a.pulses <= a.pulse_bound;
  a.unique_leader = r.leader_count == 1;
  a.leader_is_max = r.leader.has_value() && spec.ids[*r.leader] == id_max;
  a.report.sent = r.pulses;
  a.report.deliveries = r.pulses;  // SPSC fabric: every pulse consumed once
  a.report.quiescent = r.completed;

  if (!r.completed) {
    a.outcome = sim::FaultOutcome::stalled;
    a.diagnosis = "coro attempt hit the stall watchdog: " + r.stall_dump;
    return a;
  }
  bool decided = a.unique_leader && a.leader_is_max;
  for (const rt::BlockingOutcome& out : r.outcomes) {
    if (out.role == co::Role::undecided) decided = false;
    if (spec.alg == SoakAlg::alg2 && !out.terminated && !out.stopped) {
      decided = false;
    }
  }
  a.report.all_terminated = decided && spec.alg == SoakAlg::alg2;
  if (!decided) {
    a.outcome = sim::FaultOutcome::safety_violated;
    a.diagnosis = "clean coro attempt settled without a valid election: " +
                  std::to_string(r.leader_count) + " leaders";
  } else if (!a.within_bound) {
    a.outcome = sim::FaultOutcome::safety_violated;
    a.diagnosis = "clean coro run exceeded the Theorem 1 pulse bound: " +
                  std::to_string(a.pulses) + " > " +
                  std::to_string(a.pulse_bound);
  } else {
    a.outcome = sim::FaultOutcome::recovered_correct;
  }
  return a;
}

/// Clean-attempt path on the real-socket backend: the same ring runs as
/// one thread per node over loopback TCP, with quiescence proven by the
/// coordinator's four-counter probe protocol instead of an in-process
/// fabric. Same stall semantics as the coro path — a watchdog expiry is
/// `stalled` without escalation.
AttemptResult run_attempt_socket(const RingSpec& spec) {
  const std::uint64_t id_max = spec.id_max();
  const rt::ThreadAlg alg =
      spec.alg == SoakAlg::alg1 ? rt::ThreadAlg::alg1 : rt::ThreadAlg::alg2;

  net::SocketRunOptions sopts;
  sopts.timeout_ms = 10'000;
  const net::SocketRunResult r = net::run_on_sockets(spec.ids, {}, alg, sopts);

  AttemptResult a;
  a.on_socket = true;
  for (const rt::BlockingOutcome& out : r.outcomes) {
    for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
      a.phase_pulses[i] += out.phase_sends[i];
    }
  }
  a.pulses = r.pulses;
  a.pulse_bound = spec.pulse_bound();
  a.within_bound = a.pulses <= a.pulse_bound;
  a.unique_leader = r.leader_count == 1;
  a.leader_is_max = r.leader.has_value() && spec.ids[*r.leader] == id_max;
  a.report.sent = r.pulses;
  a.report.deliveries = r.consumed;  // wire conservation: sent == consumed
  a.report.quiescent = r.completed;

  if (!r.completed) {
    a.outcome = sim::FaultOutcome::stalled;
    a.diagnosis = "socket attempt hit the stall watchdog: " + r.stall_dump;
    return a;
  }
  bool decided = a.unique_leader && a.leader_is_max;
  for (const rt::BlockingOutcome& out : r.outcomes) {
    if (out.role == co::Role::undecided) decided = false;
    if (spec.alg == SoakAlg::alg2 && !out.terminated && !out.stopped) {
      decided = false;
    }
  }
  a.report.all_terminated = decided && spec.alg == SoakAlg::alg2;
  if (!decided) {
    a.outcome = sim::FaultOutcome::safety_violated;
    a.diagnosis = "clean socket attempt settled without a valid election: " +
                  std::to_string(r.leader_count) + " leaders";
  } else if (!a.within_bound) {
    a.outcome = sim::FaultOutcome::safety_violated;
    a.diagnosis = "clean socket run exceeded the Theorem 1 pulse bound: " +
                  std::to_string(a.pulses) + " > " +
                  std::to_string(a.pulse_bound);
  } else {
    a.outcome = sim::FaultOutcome::recovered_correct;
  }
  return a;
}

}  // namespace

AttemptResult run_attempt(const RingSpec& spec, SoakBackend backend) {
  COLEX_EXPECTS(!spec.ids.empty());
  COLEX_EXPECTS(spec.max_events > 0);
  if (backend == SoakBackend::coro && spec.faults.trivial()) {
    return run_attempt_coro(spec);
  }
  if (backend == SoakBackend::socket && spec.faults.trivial()) {
    return run_attempt_socket(spec);
  }
  const std::size_t n = spec.ids.size();
  const std::uint64_t id_max = spec.id_max();

  sim::PulseNetwork net = sim::PulseNetwork::ring(n);
  for (sim::NodeId v = 0; v < n; ++v) {
    net.set_automaton(v, fresh_node(spec.alg, spec.ids[v]));
  }
  sim::FaultyNetwork faulty(
      std::move(net), spec.faults,
      [alg = spec.alg, &spec](sim::NodeId v) {
        return fresh_node(alg, spec.ids[v]);
      });

  // Phase-attribute every node send (the sender's current phase, resolved
  // through the network so crash/recover automaton swaps stay safe). Plain
  // stack tallies, not a registry: attempts are the soak hot loop, and the
  // shard folds the result into its own registry post-attempt.
  std::array<std::uint64_t, obs::kPhaseCount> phase_pulses{};
  std::uint64_t observed_sends = 0;
  sim::PulseNetwork* const net_ptr = &faulty.network();
  net_ptr->chain_send_observer(
      [net_ptr, &phase_pulses, &observed_sends](sim::NodeId v, sim::Port,
                                                sim::Direction) {
        ++phase_pulses[obs::index(
            obs::phase_from_string(net_ptr->automaton(v).phase()))];
        ++observed_sends;
      });

  // The intended output: exactly one Leader, it holds the max ID, everyone
  // else decided Non-Leader — and for the terminating algorithm, everyone
  // terminated. Per-event invariant predicates are deliberately NOT wired
  // in: under faults the algorithms legitimately traverse states the
  // fault-free invariants forbid (a spurious pulse pushes counters past
  // IDmax), so only the final output is judged; clean-attempt escalation
  // below restores full strictness where the model actually promises it.
  const auto correct = [&spec, n, id_max](const sim::PulseNetwork& final_net) {
    std::size_t leaders = 0;
    bool max_is_leader = false;
    for (sim::NodeId v = 0; v < n; ++v) {
      const co::Role role = role_of(final_net, spec.alg, v);
      if (role == co::Role::undecided) return false;
      if (role == co::Role::leader) {
        ++leaders;
        max_is_leader = max_is_leader || spec.ids[v] == id_max;
      }
      if (spec.alg == SoakAlg::alg2 &&
          !final_net.automaton(v).terminated()) {
        return false;
      }
    }
    return leaders == 1 && max_is_leader;
  };

  sim::RunOptions opts;
  opts.max_events = spec.max_events;
  sim::RandomScheduler scheduler(spec.schedule_seed);
  const bool clean = spec.faults.trivial();
  auto run = faulty.run(scheduler, opts, /*safety=*/{}, correct);

  AttemptResult a;
  a.outcome = run.outcome;
  a.diagnosis = std::move(run.diagnosis);
  a.tallies = run.tallies;
  a.report = run.report;
  a.pulses = run.report.sent;
  a.pulse_bound = spec.pulse_bound();
  a.within_bound = a.pulses <= a.pulse_bound;
  a.phase_pulses = phase_pulses;
  if (a.pulses > observed_sends) {
    // Fabric pulses no node sent (injections, duplicates): the adversary
    // bucket keeps the per-phase series summing to the ground-truth total.
    a.phase_pulses[obs::index(obs::Phase::adversary)] +=
        a.pulses - observed_sends;
  }

  std::size_t leaders = 0;
  for (sim::NodeId v = 0; v < n; ++v) {
    if (role_of(faulty.network(), spec.alg, v) == co::Role::leader) {
      ++leaders;
      a.leader_is_max = a.leader_is_max || spec.ids[v] == id_max;
    }
  }
  a.unique_leader = leaders == 1;

  if (a.outcome == sim::FaultOutcome::recovered_correct && !a.within_bound) {
    // The hard invariant: no election completes past the Theorem 1 bound.
    // Under faults an excess is the adversary's doing (one duplicate breaks
    // Algorithm 2's exact n(2·IDmax+1) budget) — demote and retry. On a
    // clean run the bound is the theorem's promise, so an excess is a bug.
    if (clean) {
      a.outcome = sim::FaultOutcome::safety_violated;
      a.diagnosis = "clean run exceeded the Theorem 1 pulse bound: " +
                    std::to_string(a.pulses) + " > " +
                    std::to_string(a.pulse_bound);
    } else {
      a.outcome = sim::FaultOutcome::stalled;
      a.diagnosis = "correct output but pulse bound exceeded under faults (" +
                    std::to_string(a.pulses) + " > " +
                    std::to_string(a.pulse_bound) + "); retrying";
    }
  } else if (clean && a.outcome == sim::FaultOutcome::stalled) {
    // A clean election settling without the intended output cannot be
    // blamed on any adversary: escalate to fatal.
    a.outcome = sim::FaultOutcome::safety_violated;
    a.diagnosis = "clean attempt settled without a valid election: " +
                  a.diagnosis;
  }
  return a;
}

ElectionReport run_supervised(const ChurnEngine& churn, std::uint64_t election,
                              const SupervisorPolicy& policy) {
  COLEX_EXPECTS(policy.max_attempts >= 1);
  COLEX_EXPECTS(policy.clean_after_attempts < policy.max_attempts);
  ElectionReport out;
  for (unsigned attempt = 0; attempt < policy.max_attempts; ++attempt) {
    const RingSpec spec =
        churn.spec(election, attempt, policy.clean_after_attempts);
    const AttemptResult a = run_attempt(spec, policy.backend);
    out.attempts = attempt + 1;
    out.coro_attempts += a.on_coro ? 1 : 0;
    out.socket_attempts += a.on_socket ? 1 : 0;
    out.final_outcome = a.outcome;
    out.diagnosis = a.diagnosis;
    out.pulses = a.pulses;
    out.pulse_bound = a.pulse_bound;
    out.phase_pulses = a.phase_pulses;
    out.faults_applied += a.tallies.total();
    out.events_consumed += a.report.deliveries;
    if (a.outcome == sim::FaultOutcome::recovered_correct) {
      out.completed = true;
      return out;
    }
    if (a.outcome == sim::FaultOutcome::safety_violated) return out;
    // stalled or diverged: abandon this ring, rebuild, re-elect.
  }
  out.abandoned = true;
  return out;
}

}  // namespace colex::svc
