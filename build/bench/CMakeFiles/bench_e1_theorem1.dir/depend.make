# Empty dependencies file for bench_e1_theorem1.
# This may be replaced when dependencies are built.
