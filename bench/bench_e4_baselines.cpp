// E4 — §1.2 context: the price of content obliviousness. Classical
// content-carrying elections use O(n log n)..O(n^2) messages independent of
// ID magnitude; the content-oblivious algorithms are Theta(n * IDmax) and
// cannot do better (Theorem 4). Two regimes make the contrast sharp:
// dense IDs (IDmax = n, CO costs ~2n^2, comparable to LeLann) and sparse
// IDs (IDmax = 16n, CO costs 32n^2 while the classical counts are
// unchanged — the ID-magnitude dependence is the novelty of this model).
#include <cmath>
#include <iostream>

#include "baselines/baselines.hpp"
#include "bench_common.hpp"
#include "co/election.hpp"
#include "sim/scheduler.hpp"
#include "util/ids.hpp"
#include "util/table.hpp"

int main() {
  using namespace colex;
  bench::banner(
      "E4  Content-oblivious vs classical message complexity "
      "(bench_e4_baselines)",
      "classical: LeLann O(n^2), Chang-Roberts O(n^2)/O(n log n), "
      "HS/Peterson/Franklin O(n log n), all independent of IDmax; "
      "content-oblivious: Theta(n*IDmax) pulses (Theorems 1 and 4)");
  bench::WallTimer total;
  bench::JsonReport report("E4", "content-oblivious vs classical baselines");

  util::Table table({"n", "regime", "IDmax", "co-alg2 (pulses)", "lelann",
                     "chang-roberts", "hirschberg-sinclair", "peterson",
                     "franklin", "co/HS ratio"});
  bool all_ok = true;

  for (const std::size_t n : {4u, 8u, 16u, 32u, 64u, 128u}) {
    struct Regime {
      const char* name;
      std::vector<std::uint64_t> ids;
    };
    std::vector<Regime> regimes;
    regimes.push_back({"dense (IDmax=n)",
                       util::shuffled(util::dense_ids(n), n + 5)});
    regimes.push_back({"sparse (IDmax~16n)",
                       util::sparse_ids(n, 16 * n, 2 * n + 1)});

    for (auto& regime : regimes) {
      std::uint64_t id_max = 0;
      for (const auto id : regime.ids) id_max = std::max(id_max, id);

      sim::GlobalFifoScheduler s0, s1, s2, s3, s4, s5;
      const auto co_result =
          co::elect_oriented_terminating(regime.ids, s0);
      const auto le = baselines::lelann(regime.ids, s1);
      const auto cr = baselines::chang_roberts(regime.ids, s2);
      const auto hs = baselines::hirschberg_sinclair(regime.ids, s3);
      const auto pe = baselines::peterson(regime.ids, s4);
      const auto fr = baselines::franklin(regime.ids, s5);
      const bool ok = co_result.valid_election() && le.ok && cr.ok &&
                      hs.ok && pe.ok && fr.ok;
      all_ok = all_ok && ok;

      table.add_row(
          {util::Table::num(static_cast<std::uint64_t>(n)), regime.name,
           util::Table::num(id_max), util::Table::num(co_result.pulses),
           util::Table::num(le.messages), util::Table::num(cr.messages),
           util::Table::num(hs.messages), util::Table::num(pe.messages),
           util::Table::num(fr.messages),
           util::Table::fixed(static_cast<double>(co_result.pulses) /
                                  static_cast<double>(hs.messages),
                              1)});
    }
  }
  table.print(std::cout);

  std::cout << "\nShape checks (who wins, where the gap grows):\n";
  // With dense IDs and large n, CO ~ 2n^2 sits near LeLann's n^2 and far
  // above the O(n log n) algorithms; the sparse regime multiplies only the
  // CO column. Verify both trends at n = 128.
  const std::size_t n = 128;
  const auto dense = util::shuffled(util::dense_ids(n), 7);
  const auto sparse = util::sparse_ids(n, 16 * n, 11);
  sim::GlobalFifoScheduler t0, t1, t2, t3;
  const auto co_dense = co::elect_oriented_terminating(dense, t0);
  const auto co_sparse = co::elect_oriented_terminating(sparse, t1);
  const auto hs_dense = baselines::hirschberg_sinclair(dense, t2);
  const auto hs_sparse = baselines::hirschberg_sinclair(sparse, t3);
  const bool co_pays_for_ids = co_sparse.pulses > 8 * co_dense.pulses;
  const bool classical_does_not =
      hs_sparse.messages < 2 * hs_dense.messages;
  const bool log_beats_co =
      hs_dense.messages < co_dense.pulses / 4;
  std::cout << "  CO pulses grow ~16x from dense to sparse IDs: "
            << (co_pays_for_ids ? "yes" : "NO") << " ("
            << co_dense.pulses << " -> " << co_sparse.pulses << ")\n";
  std::cout << "  HS messages insensitive to ID magnitude:      "
            << (classical_does_not ? "yes" : "NO") << " ("
            << hs_dense.messages << " -> " << hs_sparse.messages << ")\n";
  std::cout << "  O(n log n) baseline beats CO at n=128:        "
            << (log_beats_co ? "yes" : "NO") << "\n";
  all_ok = all_ok && co_pays_for_ids && classical_does_not && log_beats_co;

  report.root().set("all_ok", all_ok);
  report.finish(total.seconds());

  bench::verdict(all_ok,
                 "content obliviousness costs Theta(n*IDmax): the gap to "
                 "classical algorithms scales with ID magnitude, exactly "
                 "as Theorems 1 and 4 predict");
  return all_ok ? 0 : 1;
}
