// Unit tests for the adversarial scheduler suite, driven directly through
// hand-crafted ChannelView sets plus end-to-end determinism checks.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "co/alg1.hpp"
#include "co/alg2.hpp"
#include "co/election.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"

namespace colex::sim {
namespace {

ChannelView view(std::size_t channel, std::size_t pending,
                 std::uint64_t head_seq, std::uint64_t head_stamp,
                 Direction dir) {
  return ChannelView{channel, pending, head_seq, head_stamp, dir};
}

TEST(Schedulers, GlobalFifoPicksOldestSeq) {
  GlobalFifoScheduler s;
  EXPECT_EQ(s.pick({view(0, 1, 5, 1, Direction::cw),
                    view(1, 1, 3, 1, Direction::ccw),
                    view(2, 2, 9, 2, Direction::cw)}),
            1u);
}

TEST(Schedulers, GlobalLifoPicksNewestSeq) {
  GlobalLifoScheduler s;
  EXPECT_EQ(s.pick({view(0, 1, 5, 1, Direction::cw),
                    view(1, 1, 3, 1, Direction::ccw),
                    view(2, 2, 9, 2, Direction::cw)}),
            2u);
}

TEST(Schedulers, RandomIsDeterministicPerSeed) {
  const std::vector<ChannelView> pending{view(0, 1, 1, 1, Direction::cw),
                                         view(1, 1, 2, 1, Direction::ccw),
                                         view(2, 1, 3, 1, Direction::cw)};
  RandomScheduler a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.pick(pending), b.pick(pending));
  a.reset();
  RandomScheduler c(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.pick(pending), c.pick(pending));
}

TEST(Schedulers, RandomEventuallyPicksEveryChannel) {
  const std::vector<ChannelView> pending{view(0, 1, 1, 1, Direction::cw),
                                         view(1, 1, 2, 1, Direction::ccw),
                                         view(2, 1, 3, 1, Direction::cw)};
  RandomScheduler s(5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(s.pick(pending));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Schedulers, RoundRobinCycles) {
  RoundRobinScheduler s;
  const std::vector<ChannelView> pending{view(0, 1, 1, 1, Direction::cw),
                                         view(2, 1, 2, 1, Direction::ccw),
                                         view(5, 1, 3, 1, Direction::cw)};
  EXPECT_EQ(s.pick(pending), 2u);  // first id greater than initial last_=0
  EXPECT_EQ(s.pick(pending), 5u);
  EXPECT_EQ(s.pick(pending), 0u);  // wraps
  EXPECT_EQ(s.pick(pending), 2u);
}

TEST(Schedulers, DrainChannelSticksUntilEmpty) {
  DrainChannelScheduler s;
  // First call: picks the fullest channel (1).
  EXPECT_EQ(s.pick({view(0, 2, 1, 1, Direction::cw),
                    view(1, 5, 2, 1, Direction::ccw)}),
            1u);
  // Channel 1 still pending: stick with it.
  EXPECT_EQ(s.pick({view(0, 7, 1, 1, Direction::cw),
                    view(1, 1, 2, 1, Direction::ccw)}),
            1u);
  // Channel 1 drained: move to fullest remaining.
  EXPECT_EQ(s.pick({view(0, 7, 1, 1, Direction::cw),
                    view(3, 2, 9, 2, Direction::cw)}),
            0u);
}

TEST(Schedulers, StarveCcwPrefersCwChannels) {
  StarveDirectionScheduler s(Direction::ccw);
  EXPECT_EQ(s.pick({view(0, 1, 1, 1, Direction::ccw),
                    view(1, 1, 9, 3, Direction::cw)}),
            1u);
  // Only starved channels pending: deliver the oldest of them.
  EXPECT_EQ(s.pick({view(0, 1, 4, 1, Direction::ccw),
                    view(2, 1, 2, 1, Direction::ccw)}),
            2u);
}

TEST(Schedulers, StarveCwPrefersCcwChannels) {
  StarveDirectionScheduler s(Direction::cw);
  EXPECT_EQ(s.pick({view(0, 1, 1, 1, Direction::cw),
                    view(1, 1, 9, 3, Direction::ccw)}),
            1u);
}

TEST(Schedulers, SolitudeOrdersByStampThenCwThenSeq) {
  SolitudeScheduler s;
  // Different stamps: earliest stamp wins even with larger seq.
  EXPECT_EQ(s.pick({view(0, 1, 9, 1, Direction::ccw),
                    view(1, 1, 2, 4, Direction::cw)}),
            0u);
  // Same stamp: CW beats CCW.
  EXPECT_EQ(s.pick({view(0, 1, 1, 2, Direction::ccw),
                    view(1, 1, 5, 2, Direction::cw)}),
            1u);
  // Same stamp and direction: lower seq.
  EXPECT_EQ(s.pick({view(0, 1, 8, 2, Direction::cw),
                    view(1, 1, 5, 2, Direction::cw)}),
            1u);
}

TEST(Schedulers, EclipseStarvesItsChannel) {
  EclipseScheduler s(2);
  // Channel 2 is never chosen while anything else is pending.
  EXPECT_EQ(s.pick({view(2, 5, 1, 1, Direction::cw),
                    view(0, 1, 9, 3, Direction::ccw)}),
            0u);
  // ...even if it holds the oldest pulse.
  EXPECT_EQ(s.pick({view(2, 5, 1, 1, Direction::cw),
                    view(1, 1, 7, 2, Direction::cw),
                    view(3, 1, 9, 3, Direction::ccw)}),
            1u);
  // Alone, it finally delivers.
  EXPECT_EQ(s.pick({view(2, 5, 1, 1, Direction::cw)}), 2u);
}

TEST(Schedulers, BurstyIsDeterministicPerSeedAndAlwaysValid) {
  const std::vector<ChannelView> pending{view(0, 3, 1, 1, Direction::cw),
                                         view(4, 2, 2, 1, Direction::ccw),
                                         view(7, 1, 3, 1, Direction::cw)};
  BurstyScheduler a(9), b(9);
  for (int i = 0; i < 200; ++i) {
    const auto pa = a.pick(pending);
    EXPECT_EQ(pa, b.pick(pending));
    EXPECT_TRUE(pa == 0 || pa == 4 || pa == 7);
  }
  a.reset();
  BurstyScheduler c(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.pick(pending), c.pick(pending));
}

TEST(Schedulers, PickOnEmptyViolatesContract) {
  GlobalFifoScheduler s;
  EXPECT_THROW(s.pick({}), util::ContractViolation);
}

TEST(Schedulers, StandardSuiteHasUniqueNames) {
  const auto suite = standard_schedulers(3);
  EXPECT_EQ(suite.size(), 9u + 3u);
  std::set<std::string> names;
  for (const auto& s : suite) {
    EXPECT_EQ(s.name, s.scheduler->name());
    names.insert(s.name);
  }
  EXPECT_EQ(names.size(), suite.size());
}

TEST(Schedulers, IdenticalRunsAreBitReproducible) {
  // The same algorithm + scheduler + seed must produce identical pulse
  // traces; this underpins every exactness claim in the bench harness.
  const std::vector<std::uint64_t> ids{6, 11, 3, 9, 1, 7};
  for (int rep = 0; rep < 2; ++rep) {
    RandomScheduler s1(33), s2(33);
    const auto a = co::elect_oriented_terminating(ids, s1);
    const auto b = co::elect_oriented_terminating(ids, s2);
    EXPECT_EQ(a.pulses, b.pulses);
    EXPECT_EQ(a.report.deliveries, b.report.deliveries);
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    for (std::size_t v = 0; v < a.nodes.size(); ++v) {
      EXPECT_EQ(a.nodes[v].role, b.nodes[v].role);
      EXPECT_EQ(a.nodes[v].rho_cw, b.nodes[v].rho_cw);
      EXPECT_EQ(a.nodes[v].rho_ccw, b.nodes[v].rho_ccw);
    }
  }
}


TEST(Schedulers, RecordAndReplayReproduceARunExactly) {
  const std::vector<std::uint64_t> ids{6, 11, 3, 9, 1, 7};
  RandomScheduler random(77);
  RecordingScheduler recorder(random);
  const auto original = co::elect_oriented_terminating(ids, recorder);
  ASSERT_TRUE(original.valid_election());
  ASSERT_FALSE(recorder.tape().empty());

  ReplayScheduler replay(recorder.tape());
  const auto replayed = co::elect_oriented_terminating(ids, replay);
  EXPECT_EQ(replay.divergences(), 0u);
  EXPECT_EQ(replayed.pulses, original.pulses);
  EXPECT_EQ(replayed.report.deliveries, original.report.deliveries);
  ASSERT_EQ(replayed.nodes.size(), original.nodes.size());
  for (std::size_t v = 0; v < ids.size(); ++v) {
    EXPECT_EQ(replayed.nodes[v].role, original.nodes[v].role);
    EXPECT_EQ(replayed.nodes[v].rho_cw, original.nodes[v].rho_cw);
    EXPECT_EQ(replayed.nodes[v].rho_ccw, original.nodes[v].rho_ccw);
  }
}

TEST(Schedulers, ReplayFallsBackOnDivergentTape) {
  // A tape from a different configuration cannot match; the replay must
  // still complete via the FIFO fallback and count its divergences.
  RandomScheduler random(5);
  RecordingScheduler recorder(random);
  co::elect_oriented_terminating({1, 2}, recorder);

  ReplayScheduler replay(recorder.tape());
  const auto result = co::elect_oriented_terminating({3, 9, 5, 2}, replay);
  EXPECT_TRUE(result.valid_election());
  EXPECT_GT(replay.divergences(), 0u);
}

// ---------------------------------------------------------------------------
// reset() determinism across the whole standard suite. The fault harness
// (sim/faults.hpp) reproduces faulty runs from (plan, seed, scheduler), so
// every scheduler must return to its *initial* state on reset(), not merely
// to some self-consistent one.
// ---------------------------------------------------------------------------

std::vector<TraceEvent> traced_alg2_run(Scheduler& s,
                                        const std::vector<std::uint64_t>& ids) {
  auto net = PulseNetwork::ring(ids.size());
  for (NodeId v = 0; v < ids.size(); ++v) {
    net.set_automaton(v, std::make_unique<co::Alg2Terminating>(ids[v]));
  }
  RunOptions opts;
  TraceRecorder trace;
  trace.attach(net, opts);
  net.run(s, opts);
  return trace.events();
}

TEST(Schedulers, ResetMakesRerunsByteIdentical) {
  // Run, reset, run again on the SAME scheduler instance: the two traces
  // must be byte-identical for every adversary in the standard suite.
  const std::vector<std::uint64_t> ids{4, 9, 2, 7, 5};
  for (auto& entry : standard_schedulers(3)) {
    const auto first = traced_alg2_run(*entry.scheduler, ids);
    ASSERT_FALSE(first.empty()) << entry.name;
    entry.scheduler->reset();
    const auto second = traced_alg2_run(*entry.scheduler, ids);
    EXPECT_EQ(first, second) << entry.name;
  }
}

TEST(Schedulers, ResetRestoresPristineStateAfterUnrelatedRun) {
  // Stronger than rerun-equality: pollute a scheduler's internal state with
  // a run over a DIFFERENT topology, reset, and demand the trace of a
  // pristine twin. Catches resets that only rewind part of the state (e.g.
  // a reseeded RNG but a stale round-robin cursor).
  const std::vector<std::uint64_t> ids{4, 9, 2, 7, 5};
  auto pristine = standard_schedulers(3);
  auto reused = standard_schedulers(3);
  ASSERT_EQ(pristine.size(), reused.size());
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    ASSERT_EQ(pristine[i].name, reused[i].name);
    {
      // Unrelated polluting run: stabilizing Alg 1 on a smaller ring.
      auto net = PulseNetwork::ring(3);
      std::uint64_t small[3] = {5, 1, 3};
      for (NodeId v = 0; v < 3; ++v) {
        net.set_automaton(v, std::make_unique<co::Alg1Stabilizing>(small[v]));
      }
      RunOptions opts;
      net.run(*reused[i].scheduler, opts);
    }
    reused[i].scheduler->reset();
    EXPECT_EQ(traced_alg2_run(*pristine[i].scheduler, ids),
              traced_alg2_run(*reused[i].scheduler, ids))
        << reused[i].name;
  }
}

TEST(Schedulers, RecorderResetClearsTape) {
  GlobalFifoScheduler fifo;
  RecordingScheduler recorder(fifo);
  co::elect_oriented_stabilizing({2, 4}, recorder);
  EXPECT_FALSE(recorder.tape().empty());
  recorder.reset();
  EXPECT_TRUE(recorder.tape().empty());
}

}  // namespace
}  // namespace colex::sim
