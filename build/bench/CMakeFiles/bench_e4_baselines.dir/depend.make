# Empty dependencies file for bench_e4_baselines.
# This may be replaced when dependencies are built.
