// Fixture: O001 — payload content flowing into branch conditions.
//
// The `src/runtime/` subdirectory mirrors the path scoping of the O-rules
// (content-oblivious runtime code; decode is sanctioned only in src/net and
// src/obs). `peek_header` exercises the interprocedural half: it returns a
// decoder result, so calls to it are themselves taint atoms.
namespace fixture_o001 {

void consume(int);

int peek_header(const unsigned char* buf) {
  return get_u32(buf, 0);
}

void direct_branch(const unsigned char* buf) {
  const int tag = get_u32(buf, 4);
  if (tag == 7) {  // colex-lint: expect(O001)
    consume(tag);
  }
}

void transitive_branch(const unsigned char* buf) {
  if (peek_header(buf) != 0) {  // colex-lint: expect(O001)
    consume(1);
  }
}

void waived_branch(const unsigned char* buf) {
  const int tag = get_u32(buf, 8);
  if (tag < 0) {  // colex-lint: allow(O001) expect-suppressed(O001) fixture: stands in for a justified decode hop pending a port refactor
    consume(tag);
  }
}

}  // namespace fixture_o001
