// E15 — Election-as-a-service soak: sustained throughput of the sharded
// multi-ring driver under churn. Thousands of independent ring slots each
// run an endless stream of supervised elections while a seeded churn engine
// crashes nodes, storms channels, and respawns every ring with a fresh size;
// the supervisor retries with exponential backoff and a guaranteed-clean
// final rung. The service-level claim measured here: across every churn
// profile, zero elections end safety-violated, diverged, or abandoned, and
// every completed election carried a unique max-ID leader within the
// Theorem 1 pulse bound — at a sustained elections/sec the harness reports
// alongside p99 latency.
//
// Flags: --smoke (short CI run), --duration S (wall seconds per profile,
// default 20), --rings N (default 1024), --seed S (default 1),
// --json <dir> (redirect BENCH_E15.json).
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "svc/soak.hpp"
#include "util/table.hpp"

namespace {

using namespace colex;

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  double duration = 20.0;
  std::size_t rings = 1024;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--duration") == 0 && i + 1 < argc) {
      duration = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--rings") == 0 && i + 1 < argc) {
      rings = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    }
  }
  if (smoke) {
    duration = 1.0;
    rings = 256;
  }

  bench::banner(
      "E15 — election-as-a-service soak: throughput under sustained churn",
      "a sharded multi-ring driver sustains thousands of concurrent "
      "supervised elections under crash/recover churn and fault storms with "
      "zero safety violations, every completion within the Theorem 1 bound");

  bench::JsonReport report("E15", "soak harness throughput under churn");
  bench::apply_json_flag(report, argc, argv);
  bench::WallTimer total;

  util::Table table({"churn", "rings", "shards", "elections", "retried",
                     "faults", "elections/s", "p50 ms", "p99 ms", "gate"});

  bool all_ok = true;
  double steady_eps = 0.0;
  double steady_p99 = 0.0;
  for (const svc::ChurnPreset preset :
       {svc::ChurnPreset::calm, svc::ChurnPreset::steady,
        svc::ChurnPreset::storm}) {
    svc::SoakOptions options;
    options.duration_seconds = duration;
    options.rings = rings;
    options.seed = seed;
    options.churn = svc::ChurnProfile::preset(preset);
    options.min_elections = smoke ? 100 : 1000;
    const svc::SoakReport r = svc::run_soak(options);
    all_ok = all_ok && r.ok();
    if (preset == svc::ChurnPreset::steady) {
      steady_eps = r.elections_per_second;
      steady_p99 = r.latency_ms.p99;
    }
    table.add_row({svc::to_string(preset), std::to_string(r.rings),
                   std::to_string(r.shards_used), std::to_string(r.completed),
                   std::to_string(r.retried),
                   std::to_string(r.faults_applied),
                   util::Table::fixed(r.elections_per_second, 0),
                   util::Table::fixed(r.latency_ms.p50, 3),
                   util::Table::fixed(r.latency_ms.p99, 3),
                   r.ok() ? "held" : "VIOLATED"});
    for (const std::string& v : r.violations) {
      std::cout << "violation [" << svc::to_string(preset) << "]: " << v
                << "\n";
    }
    bench::Json row = bench::Json::object();
    row.set("churn", std::string(svc::to_string(preset)))
        .set("rings", static_cast<std::uint64_t>(r.rings))
        .set("shards", static_cast<std::uint64_t>(r.shards_used))
        .set("wall_seconds", r.wall_seconds)
        .set("started", r.started)
        .set("completed", r.completed)
        .set("retried", r.retried)
        .set("abandoned", r.abandoned)
        .set("diverged", r.diverged)
        .set("safety_violated", r.safety_violated)
        .set("attempts", r.attempts)
        .set("faults_applied", r.faults_applied)
        .set("elections_per_second", r.elections_per_second)
        .set("latency_ms_p50", r.latency_ms.p50)
        .set("latency_ms_p95", r.latency_ms.p95)
        .set("latency_ms_p99", r.latency_ms.p99)
        .set("latency_ms_max", r.latency_ms.max)
        .set("gate_ok", r.ok());
    report.add_result(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nsteady-churn headline: "
            << util::Table::fixed(steady_eps, 0) << " elections/s, p99 "
            << util::Table::fixed(steady_p99, 3) << " ms\n";

  report.root().set("elections_per_second", steady_eps)
      .set("latency_ms_p99", steady_p99);
  report.finish(total.seconds());

  bench::verdict(all_ok,
                 "every churn profile sustained concurrent elections with "
                 "zero safety-violated, diverged, or abandoned outcomes; "
                 "every completion passed the Theorem 1 pulse-bound check");
  return all_ok ? 0 : 1;
}
