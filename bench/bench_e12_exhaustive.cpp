// E12 — Exhaustive adversary enumeration: for small rings, EVERY possible
// asynchronous delivery order is explored (model checking, not sampling),
// and on every complete execution the paper's claims hold: unique max-ID
// leader, exact pulse formula, quiescent termination (Alg 2) /
// stabilization (Alg 1/3), consistent orientation (Alg 3).
//
// The bench doubles as the exploration-engine regression gate: every
// configuration runs under both the fork-based snapshot engine and the
// legacy replay engine, and BENCH_E12.json records wall time and
// schedules/s for each. With --smoke, only the n=3 sweep runs and the exit
// code enforces snapshot >= 2x replay (wired into ci.sh).
//
// The n=4 ring at the end is the configuration the replay engine could not
// finish in reasonable time; it runs on the parallel snapshot explorer
// only (sim/parallel.hpp).
#include <cstring>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "co/alg1.hpp"
#include "co/alg2.hpp"
#include "co/alg3.hpp"
#include "co/election.hpp"
#include "obs/instrument.hpp"
#include "sim/explore.hpp"
#include "sim/parallel.hpp"
#include "util/table.hpp"

namespace {

using namespace colex;

struct Row {
  std::string config;
  std::string engine;
  sim::ExploreStats stats;
  sim::ExploreTelemetry telemetry;
  std::vector<sim::WorkerStats> workers;
  std::uint64_t violations = 0;
  double seconds = 0;

  double schedules_per_second() const {
    return seconds > 0 ? static_cast<double>(stats.leaves) / seconds : 0;
  }
};

Row timed_explore(const std::string& config,
                  const std::function<sim::PulseNetwork()>& build,
                  const std::function<bool(sim::PulseNetwork&)>& leaf_ok,
                  sim::ExploreEngine engine, std::uint64_t budget) {
  Row row;
  row.config = config;
  row.engine = sim::to_string(engine);
  sim::ExploreOptions options;
  options.budget = budget;
  options.engine = engine;
  options.telemetry = &row.telemetry;
  bench::WallTimer timer;
  row.stats = sim::explore_all_schedules(
      build,
      [&](sim::PulseNetwork& net) {
        if (!leaf_ok(net)) ++row.violations;
      },
      options);
  row.seconds = timer.seconds();
  return row;
}

std::function<sim::PulseNetwork()> alg2_ring(
    const std::vector<std::uint64_t>& ids) {
  return [ids] {
    auto net = sim::PulseNetwork::ring(ids.size());
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      net.set_automaton(v, std::make_unique<co::Alg2Terminating>(ids[v]));
    }
    return net;
  };
}

std::function<bool(sim::PulseNetwork&)> alg2_ok(
    const std::vector<std::uint64_t>& ids) {
  std::uint64_t id_max = 0;
  for (const auto id : ids) id_max = std::max(id_max, id);
  return [ids, id_max](sim::PulseNetwork& net) {
    std::size_t leaders = 0;
    bool ok =
        net.total_sent() == co::theorem1_pulses(ids.size(), id_max);
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      const auto& alg = net.automaton_as<co::Alg2Terminating>(v);
      ok = ok && alg.terminated();
      if (alg.role() == co::Role::leader) {
        ++leaders;
        ok = ok && alg.id() == id_max;
      }
    }
    return ok && leaders == 1;
  };
}

std::function<sim::PulseNetwork()> alg1_ring(
    const std::vector<std::uint64_t>& ids) {
  return [ids] {
    auto net = sim::PulseNetwork::ring(ids.size());
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      net.set_automaton(v, std::make_unique<co::Alg1Stabilizing>(ids[v]));
    }
    return net;
  };
}

std::function<bool(sim::PulseNetwork&)> alg1_ok(
    const std::vector<std::uint64_t>& ids) {
  std::uint64_t id_max = 0;
  for (const auto id : ids) id_max = std::max(id_max, id);
  return [ids, id_max](sim::PulseNetwork& net) {
    bool ok = net.total_sent() == ids.size() * id_max;
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      const auto& alg = net.automaton_as<co::Alg1Stabilizing>(v);
      ok = ok && (alg.role() == co::Role::leader) == (ids[v] == id_max);
      ok = ok && alg.counters().rho_cw == id_max;
    }
    return ok;
  };
}

std::function<sim::PulseNetwork()> alg3_ring(
    const std::vector<std::uint64_t>& ids, const std::vector<bool>& flips) {
  return [ids, flips] {
    auto net = sim::PulseNetwork::ring(ids.size(), flips);
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      net.set_automaton(v, std::make_unique<co::Alg3NonOriented>(
                               ids[v], co::Alg3NonOriented::Options{}));
    }
    return net;
  };
}

std::function<bool(sim::PulseNetwork&)> alg3_ok(
    const std::vector<std::uint64_t>& ids, const std::vector<bool>& flips) {
  std::uint64_t id_max = 0;
  for (const auto id : ids) id_max = std::max(id_max, id);
  return [ids, flips, id_max](sim::PulseNetwork& net) {
    bool ok =
        net.total_sent() == co::theorem1_pulses(ids.size(), id_max);
    std::size_t leaders = 0, physically_cw = 0;
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      const auto& alg = net.automaton_as<co::Alg3NonOriented>(v);
      if (alg.role() == co::Role::leader) {
        ++leaders;
        ok = ok && alg.initial_id() == id_max;
      }
      if (alg.cw_port() == co::physical_cw_port(flips, v)) {
        ++physically_cw;
      }
    }
    return ok && leaders == 1 &&
           (physically_cw == 0 || physically_cw == ids.size());
  };
}

using bench::Json;

Json row_json(const Row& row) {
  auto j = bench::Json::object();
  j.set("config", row.config)
      .set("engine", row.engine)
      .set("leaves", row.stats.leaves)
      .set("max_depth", row.stats.max_depth)
      .set("exhaustive", row.stats.exhaustive())
      .set("violations", row.violations)
      .set("seconds", row.seconds)
      .set("schedules_per_second", row.schedules_per_second())
      // Engine-cost telemetry: clones quantify the snapshot engine's fork
      // cost, replay_events the replay engine's re-execution cost.
      .set("visits", row.telemetry.visits)
      .set("clones", row.telemetry.clones)
      .set("replays", row.telemetry.replays)
      .set("replay_events", row.telemetry.replay_events);
  return j;
}

/// The previously infeasible configuration: an n=4 oriented ring under
/// Algorithm 1, enumerated exhaustively on the parallel snapshot explorer.
Row explore_n4_parallel(const std::vector<std::uint64_t>& ids,
                        std::size_t workers) {
  Row row;
  row.config = "alg1 n=" + std::to_string(ids.size()) + " (parallel x" +
               std::to_string(workers) + ")";
  row.engine = "snapshot";
  const auto ok = alg1_ok(ids);
  sim::ParallelExploreOptions options;
  options.budget = 600'000'000;
  options.workers = workers;
  options.min_subtrees = 256;
  options.telemetry = &row.telemetry;
  options.worker_stats = &row.workers;
  std::uint64_t violations = 0;
  bench::WallTimer timer;
  row.stats = sim::parallel_explore_all_schedules<std::uint64_t>(
      alg1_ring(ids),
      [&ok](std::uint64_t& acc, sim::PulseNetwork& net) {
        if (!ok(net)) ++acc;
      },
      [](std::uint64_t& into, const std::uint64_t& from) { into += from; },
      violations, options);
  row.seconds = timer.seconds();
  row.violations = violations;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::banner(
      "E12  Exhaustive schedule enumeration (bench_e12_exhaustive)",
      "the theorems hold on EVERY asynchronous delivery order, not just "
      "sampled ones — verified by enumerating the adversary's full choice "
      "tree for small rings");

  bench::WallTimer total;
  bench::JsonReport report(
      "E12",
      "exhaustive adversary enumeration; snapshot vs replay engine timings");
  bench::apply_json_flag(report, argc, argv);
  // Cross-config registry: per-engine counters accumulate over the sweep,
  // and the parallel run contributes per-worker utilization.
  obs::Registry metrics;

  struct Config {
    std::string name;
    std::function<sim::PulseNetwork()> build;
    std::function<bool(sim::PulseNetwork&)> ok;
    std::uint64_t budget;
  };
  std::vector<Config> configs;
  if (!smoke) {
    configs.push_back({"alg2 n=1", alg2_ring({3}), alg2_ok({3}), 100'000});
    configs.push_back(
        {"alg2 n=2", alg2_ring({1, 2}), alg2_ok({1, 2}), 8'000'000});
    configs.push_back(
        {"alg2 n=2 sparse", alg2_ring({4, 2}), alg2_ok({4, 2}), 8'000'000});
  }
  configs.push_back({"alg2 n=3", alg2_ring({2, 3, 1}), alg2_ok({2, 3, 1}),
                     8'000'000});
  if (!smoke) {
    configs.push_back({"alg1 n=3", alg1_ring({2, 3, 1}), alg1_ok({2, 3, 1}),
                       8'000'000});
    configs.push_back({"alg1 n=3 sparse", alg1_ring({4, 2, 3}),
                       alg1_ok({4, 2, 3}), 8'000'000});
    configs.push_back({"alg3 n=2 scrambled", alg3_ring({2, 3}, {true, false}),
                       alg3_ok({2, 3}, {true, false}), 8'000'000});
    configs.push_back({"alg3 n=2", alg3_ring({3, 1}, {false, false}),
                       alg3_ok({3, 1}, {false, false}), 8'000'000});
    configs.push_back({"alg1 n=4", alg1_ring({2, 4, 1, 3}),
                       alg1_ok({2, 4, 1, 3}), 60'000'000});
  }

  util::Table table({"configuration", "engine", "distinct schedules",
                     "max depth", "exhaustive", "violations", "seconds",
                     "sched/s"});
  bool all_ok = true;
  double speedup_n3 = 0;
  for (const auto& cfg : configs) {
    Row rows[2];
    for (const auto engine :
         {sim::ExploreEngine::snapshot, sim::ExploreEngine::replay}) {
      const std::size_t e =
          engine == sim::ExploreEngine::snapshot ? 0 : 1;
      rows[e] = timed_explore(cfg.name, cfg.build, cfg.ok, engine,
                              cfg.budget);
      all_ok = all_ok && rows[e].stats.exhaustive() &&
               rows[e].violations == 0;
      table.add_row({rows[e].config, rows[e].engine,
                     util::Table::num(rows[e].stats.leaves),
                     util::Table::num(rows[e].stats.max_depth),
                     rows[e].stats.exhaustive() ? "yes" : "NO",
                     util::Table::num(rows[e].violations),
                     std::to_string(rows[e].seconds),
                     std::to_string(rows[e].schedules_per_second())});
      report.add_result(row_json(rows[e]));
      obs::publish_explore(metrics, "explore." + rows[e].engine,
                           rows[e].stats, rows[e].telemetry);
    }
    // Both engines must see the identical tree.
    all_ok = all_ok && rows[0].stats == rows[1].stats;
    if (cfg.name == "alg2 n=3" && rows[0].seconds > 0) {
      speedup_n3 = rows[1].seconds / rows[0].seconds;
    }
  }

  if (!smoke) {
    // Previously infeasible under replay: n=4 at IDmax=6 — ~700k distinct
    // schedules, depth 24 — exhaustively enumerated on the parallel
    // snapshot explorer.
    const auto row = explore_n4_parallel({2, 6, 1, 5},
                                         sim::default_workers());
    all_ok = all_ok && row.stats.exhaustive() && row.violations == 0;
    table.add_row({row.config, row.engine,
                   util::Table::num(row.stats.leaves),
                   util::Table::num(row.stats.max_depth),
                   row.stats.exhaustive() ? "yes" : "NO",
                   util::Table::num(row.violations),
                   std::to_string(row.seconds),
                   std::to_string(row.schedules_per_second())});
    report.add_result(row_json(row));
    obs::publish_explore(metrics, "explore.parallel", row.stats,
                         row.telemetry);
    obs::publish_worker_stats(metrics, "explore.workers", row.workers);
  }

  table.print(std::cout);
  std::cout << "\nsnapshot speedup over replay on alg2 n=3: " << speedup_n3
            << "x\n";
  report.root().set("speedup_n3_snapshot_over_replay", speedup_n3);
  report.embed_metrics(metrics.to_json());
  report.finish(total.seconds());

  if (smoke && speedup_n3 < 2.0) {
    bench::verdict(false,
                   "snapshot engine must be at least 2x faster than replay "
                   "on the n=3 exhaustive sweep");
    return 1;
  }
  bench::verdict(all_ok,
                 "every enumerated schedule elects the max-ID node with the "
                 "exact pulse formula, on both exploration engines");
  return all_ok ? 0 : 1;
}
