# Empty dependencies file for colex_lb.
# This may be replaced when dependencies are built.
