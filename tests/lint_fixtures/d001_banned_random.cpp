// Fixture: D001 — banned nondeterminism sources.
//
// These files are never compiled; colex-lint --self-test lexes them and
// checks every planted `expect(...)` / `expect-suppressed(...)` marker
// against the findings the rules actually produce, by exact file:line.
#include <cstdlib>
#include <ctime>
#include <random>

int hardware_entropy() {
  std::random_device dev;  // colex-lint: expect(D001)
  return static_cast<int>(dev());
}

unsigned wall_clock_seed() {
  return static_cast<unsigned>(time(nullptr));  // colex-lint: expect(D001)
}

int sanctioned_rand() {
  return rand();  // colex-lint: allow(D001) expect-suppressed(D001) fixture: stands in for the sanctioned core in util/rng.hpp
}
