file(REMOVE_RECURSE
  "libcolex_runtime.a"
)
