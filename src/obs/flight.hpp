// Always-on flight recorder: per-writer fixed-size rings of recent events,
// readable at any moment from any thread without stopping the writers.
//
// Contract
// --------
// * One writer per ring. Rings are created up front (before concurrent
//   writers start) and each is then written by exactly one thread — the
//   same single-writer-by-ownership discipline as obs::Registry. Readers
//   (stall dumps, the /debug/flight endpoint) may snapshot concurrently at
//   any time.
// * Lock-free and wait-free on both sides: every slot is a seqlock (odd
//   version = write in progress); a reader that catches a slot mid-write
//   skips it instead of blocking the writer. All slot fields are atomics,
//   so concurrent snapshots are race-free by construction — tearing is
//   detected, never undefined.
// * Zero overhead when off: every recording site in the tree is gated on a
//   nullable FlightRecorder (or FlightRing) pointer; record() itself is a
//   handful of stores plus one steady-clock read, cheap enough for cold
//   control-path events (phase transitions, parks, crash/recover, election
//   completions) but not meant for per-pulse hot paths.
// * Event tags are static string literals. record() stores the pointer,
//   not the bytes — passing a dynamically built string is a use-after-free
//   waiting to happen and is the caller's bug.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/contracts.hpp"

namespace colex::obs {

/// One recorded event: a writer-local sequence number, a steady-clock
/// timestamp, a static tag, and two free-form operands.
struct FlightEvent {
  std::uint64_t seq = 0;
  std::uint64_t t_ns = 0;  ///< steady-clock nanoseconds at record time
  const char* what = "";   ///< static string literal
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Fixed-size single-writer ring of FlightEvents with per-slot seqlocks.
class FlightRing {
 public:
  explicit FlightRing(std::size_t capacity = 64);
  FlightRing(const FlightRing&) = delete;
  FlightRing& operator=(const FlightRing&) = delete;

  std::size_t capacity() const { return capacity_; }
  /// Events recorded so far (writer-side count; readers may lag).
  std::uint64_t recorded() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

  /// Writer-only. Overwrites the oldest slot once the ring is full.
  void record(const char* what, std::uint64_t a = 0, std::uint64_t b = 0);

  /// Any-thread snapshot of the surviving events, ascending by seq. Slots
  /// caught mid-write are skipped — the snapshot is a consistent sample,
  /// not a guaranteed-complete one.
  std::vector<FlightEvent> snapshot() const;

 private:
  struct Slot {
    // Even = stable, odd = write in progress. Everything seq_cst: the
    // recording sites are cold control-path events, and the single total
    // order makes the torn-read argument airtight (a payload store cannot
    // land between a reader's two matching version loads without the
    // preceding odd-version store landing there too).
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> t_ns{0};
    std::atomic<const char*> what{""};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t capacity_;
  // Writer-owned cursor; atomic only so recorded() can be read elsewhere.
  std::atomic<std::uint64_t> next_seq_{0};
};

/// A named set of rings — one per writer thread (worker, shard, monitor).
/// Create every ring before the writers start; ring addresses are stable
/// for the recorder's lifetime (deque-backed). merged_tail() interleaves
/// all rings by timestamp, which is what stall dumps and /debug/flight
/// want: "what was the whole system doing just before this?".
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t ring_capacity = 64)
      : ring_capacity_(ring_capacity) {}

  /// Create-or-get the ring named `name`. NOT thread-safe: call during
  /// setup, before concurrent writers/readers exist.
  FlightRing& ring(const std::string& name);

  std::size_t ring_count() const { return rings_.size(); }

  /// All rings' surviving events, interleaved by timestamp, capped to the
  /// most recent `max_events` (0 = uncapped). Safe concurrently with
  /// writers.
  std::vector<std::pair<std::string, FlightEvent>> merged_tail(
      std::size_t max_events) const;

  /// Human-readable tail for stall dumps and the /debug/flight endpoint.
  std::string render_tail(std::size_t max_events) const;

 private:
  std::size_t ring_capacity_;
  std::deque<std::pair<std::string, FlightRing>> rings_;
};

}  // namespace colex::obs
