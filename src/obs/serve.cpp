#include "obs/serve.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <sstream>
#include <utility>
#include <vector>

#include "util/contracts.hpp"

namespace colex::obs {

// ---------------------------------------------------------------------------
// Text exposition
// ---------------------------------------------------------------------------

namespace {

bool is_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

std::string sanitize(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) out.push_back(is_name_char(c) ? c : '_');
  return out;
}

void write_escaped_label_value(std::ostream& os, const std::string& v) {
  for (const char c : v) {
    switch (c) {
      case '\\': os << "\\\\"; break;
      case '"': os << "\\\""; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
}

struct ParsedName {
  std::string family;  // sanitized, without the colex_ prefix yet
  std::vector<std::pair<std::string, std::string>> labels;
};

/// Splits a registry name composed by obs::labeled() back into family and
/// label pairs. Names without a '{...}' tail have no labels; a malformed
/// tail is treated as part of the family (sanitize flattens the braces).
ParsedName split_name(const std::string& name) {
  ParsedName p;
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    p.family = sanitize(name);
    return p;
  }
  p.family = sanitize(name.substr(0, brace));
  const std::string inner = name.substr(brace + 1, name.size() - brace - 2);
  std::size_t start = 0;
  while (start <= inner.size()) {
    std::size_t comma = inner.find(',', start);
    if (comma == std::string::npos) comma = inner.size();
    const std::string part = inner.substr(start, comma - start);
    if (!part.empty()) {
      const std::size_t eq = part.find('=');
      if (eq == std::string::npos) {
        p.labels.emplace_back(sanitize(part), std::string());
      } else {
        p.labels.emplace_back(sanitize(part.substr(0, eq)),
                              part.substr(eq + 1));
      }
    }
    start = comma + 1;
  }
  return p;
}

/// Renders `k1="v1",k2="v2"` (no surrounding braces) with an optional
/// trailing `le` pair for histogram bucket lines.
std::string render_labels(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string* le = nullptr) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ",";
    first = false;
    os << k << "=\"";
    write_escaped_label_value(os, v);
    os << "\"";
  }
  if (le != nullptr) {
    if (!first) os << ",";
    os << "le=\"" << *le << "\"";
  }
  return os.str();
}

std::string with_labels(const std::string& family, const std::string& labels) {
  if (labels.empty()) return family;
  return family + "{" + labels + "}";
}

/// One exposition family: a `# TYPE` header plus its contiguous samples.
/// Grouping is required by the format — all samples of a family must be
/// adjacent — and first-registration order is preserved across the merge.
struct Family {
  std::string name;
  const char* type;
  std::vector<std::string> lines;
};

Family& family_of(std::vector<Family>& fams, const std::string& name,
                  const char* type) {
  for (auto& f : fams) {
    if (f.name == name) return f;
  }
  fams.push_back(Family{name, type, {}});
  return fams.back();
}

std::string format_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

void write_prometheus(std::ostream& os, const Registry& reg) {
  std::vector<Family> fams;

  for (const auto& [name, c] : reg.counters()) {
    const ParsedName p = split_name(name);
    Family& f = family_of(fams, "colex_" + p.family + "_total", "counter");
    f.lines.push_back(with_labels(f.name, render_labels(p.labels)) + " " +
                      std::to_string(c->value()));
  }

  for (const auto& [name, g] : reg.gauges()) {
    const ParsedName p = split_name(name);
    Family& f = family_of(fams, "colex_" + p.family, "gauge");
    f.lines.push_back(with_labels(f.name, render_labels(p.labels)) + " " +
                      format_double(g->value()));
  }

  for (const auto& [name, h] : reg.histograms()) {
    const ParsedName p = split_name(name);
    Family& f = family_of(fams, "colex_" + p.family, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      cumulative += h->buckets()[i];
      const std::string le = format_double(h->bounds()[i]);
      f.lines.push_back(f.name + "_bucket{" + render_labels(p.labels, &le) +
                        "} " + std::to_string(cumulative));
    }
    const std::string inf = "+Inf";
    f.lines.push_back(f.name + "_bucket{" + render_labels(p.labels, &inf) +
                      "} " + std::to_string(h->count()));
    f.lines.push_back(with_labels(f.name + "_sum", render_labels(p.labels)) +
                      " " + format_double(h->sum()));
    f.lines.push_back(with_labels(f.name + "_count", render_labels(p.labels)) +
                      " " + std::to_string(h->count()));
  }

  for (const Family& f : fams) {
    os << "# TYPE " << f.name << " " << f.type << "\n";
    for (const std::string& line : f.lines) os << line << "\n";
  }
}

std::string to_prometheus(const Registry& reg) {
  std::ostringstream os;
  write_prometheus(os, reg);
  return os.str();
}

// ---------------------------------------------------------------------------
// Snapshot loader
// ---------------------------------------------------------------------------

namespace {

/// Cursor parser for the exact shape Registry::write_json() emits. Not a
/// general JSON parser — same minimal-and-strict stance as the
/// colex-trace-v1 loader in export.cpp.
class SnapshotParser {
 public:
  explicit SnapshotParser(const std::string& s) : s_(s) {}

  void expect(char c) {
    COLEX_EXPECTS(i_ < s_.size() && s_[i_] == c);
    ++i_;
  }

  bool consume(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  bool peek(char c) const { return i_ < s_.size() && s_[i_] == c; }

  void expect_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) expect(*p);
  }

  /// Quoted string, undoing Registry::write_escaped_name.
  std::string parse_name() {
    expect('"');
    std::string out;
    while (i_ < s_.size() && s_[i_] != '"') {
      char c = s_[i_++];
      if (c == '\\') {
        COLEX_EXPECTS(i_ < s_.size());
        const char e = s_[i_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: c = e;  // \" and \\ (and anything else verbatim)
        }
      }
      out.push_back(c);
    }
    expect('"');
    return out;
  }

  double parse_double() {
    const char* begin = s_.c_str() + i_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    COLEX_EXPECTS(end != begin);
    i_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  std::uint64_t parse_u64() {
    const char* begin = s_.c_str() + i_;
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(begin, &end, 10);
    COLEX_EXPECTS(end != begin);
    i_ += static_cast<std::size_t>(end - begin);
    return v;
  }

 private:
  const std::string& s_;
  std::size_t i_ = 0;
};

}  // namespace

Registry registry_from_json(const std::string& json) {
  Registry reg;
  SnapshotParser p(json);

  p.expect('{');
  p.expect_literal("\"counters\":{");
  while (!p.consume('}')) {
    const std::string name = p.parse_name();
    p.expect(':');
    reg.counter(name).inc(p.parse_u64());
    p.consume(',');
  }
  p.expect(',');
  p.expect_literal("\"gauges\":{");
  while (!p.consume('}')) {
    const std::string name = p.parse_name();
    p.expect(':');
    reg.gauge(name).set(p.parse_double());
    p.consume(',');
  }
  p.expect(',');
  p.expect_literal("\"histograms\":{");
  while (!p.consume('}')) {
    const std::string name = p.parse_name();
    p.expect(':');
    p.expect('{');
    p.expect_literal("\"count\":");
    const std::uint64_t count = p.parse_u64();
    p.expect(',');
    p.expect_literal("\"sum\":");
    const double sum = p.parse_double();
    p.expect(',');
    p.expect_literal("\"max\":");
    const double max = p.parse_double();
    p.expect(',');
    p.expect_literal("\"bounds\":[");
    std::vector<double> bounds;
    while (!p.consume(']')) {
      bounds.push_back(p.parse_double());
      p.consume(',');
    }
    p.expect(',');
    p.expect_literal("\"buckets\":[");
    std::vector<std::uint64_t> buckets;
    while (!p.consume(']')) {
      buckets.push_back(p.parse_u64());
      p.consume(',');
    }
    p.expect('}');
    reg.histogram(name, std::move(bounds))
        .restore(count, sum, max, std::move(buckets));
    p.consume(',');
  }
  p.expect('}');
  return reg;
}

// ---------------------------------------------------------------------------
// HTTP server + client
// ---------------------------------------------------------------------------

namespace {

std::string make_response(int status, const char* reason,
                          const char* content_type, const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << " " << reason << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void set_recv_timeout(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

bool MetricsServer::start() {
  COLEX_EXPECTS(static_cast<bool>(options_.metrics));
  COLEX_EXPECTS(listen_fd_ < 0);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return false;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stop_.store(false);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void MetricsServer::stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

std::string MetricsServer::respond(const std::string& path) const {
  try {
    if (path == "/metrics") {
      return make_response(200, "OK", "text/plain; version=0.0.4",
                           to_prometheus(options_.metrics()));
    }
    if (path == "/healthz") {
      return make_response(200, "OK", "text/plain", "ok\n");
    }
    if (path == "/debug/flight") {
      if (!options_.flight) {
        return make_response(404, "Not Found", "text/plain",
                             "flight recorder not wired\n");
      }
      return make_response(200, "OK", "text/plain", options_.flight());
    }
    return make_response(404, "Not Found", "text/plain", "not found\n");
  } catch (const std::exception& e) {
    return make_response(500, "Internal Server Error", "text/plain",
                         std::string("snapshot failed: ") + e.what() + "\n");
  }
}

void MetricsServer::serve_loop() {
  while (!stop_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 50);  // 50ms tick bounds stop() latency
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    set_recv_timeout(client, 2);  // a stalled scraper must not pin the loop
    std::string request;
    char buf[1024];
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < 8192) {
      const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
      if (n <= 0) break;
      request.append(buf, static_cast<std::size_t>(n));
    }
    const std::size_t method_end = request.find(' ');
    std::string path;
    if (request.compare(0, 4, "GET ") == 0 &&
        method_end != std::string::npos) {
      const std::size_t path_end = request.find(' ', method_end + 1);
      if (path_end != std::string::npos) {
        path = request.substr(method_end + 1, path_end - method_end - 1);
      }
    }
    const std::string response =
        path.empty()
            ? make_response(400, "Bad Request", "text/plain", "bad request\n")
            : respond(path);
    send_all(client, response);
    ::close(client);
  }
}

bool http_get(const std::string& host, std::uint16_t port,
              const std::string& path, int& status, std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  set_recv_timeout(fd, 5);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string ip = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0) {
    ::close(fd);
    return false;
  }
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!send_all(fd, request)) {
    ::close(fd);
    return false;
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t space = response.find(' ');
  const std::size_t header_end = response.find("\r\n\r\n");
  if (space == std::string::npos || header_end == std::string::npos) {
    return false;
  }
  status = static_cast<int>(std::strtol(response.c_str() + space + 1, nullptr, 10));
  body = response.substr(header_end + 4);
  return true;
}

}  // namespace colex::obs
