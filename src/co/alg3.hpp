// Algorithm 3 (paper §4): quiescently stabilizing leader election AND ring
// orientation on non-oriented rings.
//
// Each node picks two virtual IDs and runs, in effect, two parallel
// executions of Algorithm 1 — one per direction of the ring — without
// knowing which of its ports faces which direction: a pulse received at one
// port is forwarded out the opposite port unless the per-port received count
// equals the governing virtual ID. The two executions have distinct maximal
// virtual IDs, so at quiescence every node has received strictly more pulses
// from one direction than from the other; that asymmetry elects the unique
// node of maximal ID and names every node's ports consistently (the port
// receiving more pulses faces the CCW neighbor).
//
// Two virtual-ID schemes are provided:
//  * doubled  (Prop. 15): ID^(i) = 2*ID - 1 + i; total pulses n(4*IDmax - 1).
//  * improved (Thm. 2):   ID^(i) = ID + i;       total pulses n(2*IDmax + 1).
// The improved scheme assigns non-unique virtual IDs across nodes, which is
// sound by Lemma 16/17 as long as each direction's *maximal* ID is unique.
//
// The `resample_ids` option implements Proposition 19: whenever a node
// receives a pulse and min(rho_0, rho_1) exceeds its current ID, it redraws
// its ID uniformly from [1, min(rho_0, rho_1) - 1]; with high probability all
// nodes hold distinct IDs at quiescence (used to bootstrap unique IDs on
// anonymous rings). Resampling only rewrites the node's *stored* ID — the
// virtual IDs driving pulse forwarding are fixed at start, exactly as in the
// paper's modification.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "co/roles.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"

namespace colex::co {

enum class IdScheme {
  doubled,   // Proposition 15
  improved,  // Theorem 2
};

constexpr const char* to_string(IdScheme s) {
  return s == IdScheme::doubled ? "doubled" : "improved";
}

/// Virtual ID pair for `id` under `scheme`; index i governs pulses received
/// at port 1-i and forwarded out port i.
struct VirtualIds {
  std::uint64_t vid[2];
};
VirtualIds virtual_ids(std::uint64_t id, IdScheme scheme);

class Alg3NonOriented final : public sim::PulseAutomaton {
 public:
  struct Options {
    IdScheme scheme = IdScheme::improved;
    /// Enables the Proposition 19 ID-resampling rule, seeded per node.
    std::optional<std::uint64_t> resample_seed;
  };

  Alg3NonOriented(std::uint64_t id, Options options);

  void start(sim::PulseContext& ctx) override;
  void react(sim::PulseContext& ctx) override;
  std::unique_ptr<sim::PulseAutomaton> clone() const override {
    return std::make_unique<Alg3NonOriented>(*this);
  }
  /// Probe until the output block fires; afterwards a node whose ports
  /// turned out to be mounted against the elected orientation (cw_port =
  /// Port0) reports orientation_flip, the rest report elected.
  const char* phase() const override {
    if (role_ == Role::undecided) return "probe";
    return cw_port_ == sim::Port::p0 ? "orientation_flip" : "elected";
  }

  /// The node's current ID: the initial one, or the latest Prop.-19 redraw.
  std::uint64_t id() const { return id_; }
  std::uint64_t initial_id() const { return initial_id_; }
  Role role() const { return role_; }
  std::uint64_t rho(sim::Port p) const { return rho_[sim::index(p)]; }
  std::uint64_t sigma(sim::Port p) const { return sigma_[sim::index(p)]; }
  /// The port this node has named as leading to its CW neighbor. Only
  /// meaningful once max(rho_0, rho_1) >= ID^(1) (undefined before; we
  /// report the latest computed value, initially Port1).
  sim::Port cw_port() const { return cw_port_; }

  /// Fault-injection only (sim/faults.hpp): overwrites the per-port
  /// counters as if a transient memory fault hit the node, so the fault
  /// harness can probe which corrupted states Algorithm 3 stabilizes from.
  /// The virtual IDs are left intact (they are code, not state).
  void load_corrupted_state(const std::uint64_t rho[2],
                            const std::uint64_t sigma[2]) {
    for (const int i : {0, 1}) {
      rho_[i] = rho[i];
      sigma_[i] = sigma[i];
    }
  }

 private:
  void update_output();

  std::uint64_t id_;
  std::uint64_t initial_id_;
  VirtualIds vids_;
  Role role_ = Role::undecided;
  std::uint64_t rho_[2] = {0, 0};
  std::uint64_t sigma_[2] = {0, 0};
  sim::Port cw_port_ = sim::Port::p1;
  std::optional<util::Xoshiro256StarStar> resampler_;
};

}  // namespace colex::co
