# Empty compiler generated dependencies file for colex_util.
# This may be replaced when dependencies are built.
