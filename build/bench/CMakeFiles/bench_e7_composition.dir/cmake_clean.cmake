file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_composition.dir/bench_e7_composition.cpp.o"
  "CMakeFiles/bench_e7_composition.dir/bench_e7_composition.cpp.o.d"
  "bench_e7_composition"
  "bench_e7_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
