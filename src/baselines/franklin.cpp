// Franklin (1982): bidirectional rounds. Each active node exchanges its ID
// with the nearest active node in both directions (passive nodes relay);
// only local maxima stay active, so the active set at least halves per
// round. The global maximum's ID eventually returns to it, making it leader.
// O(n log n) messages.
//
// Asynchrony note: neighbors can be one round ahead, so candidates are
// tagged with their round and buffered per direction until this node's
// current round is served. A node turning passive flushes its buffers in
// arrival order, preserving per-channel FIFO for the nodes beyond it.
#include <deque>
#include <memory>
#include <vector>

#include "baselines/run_ring.hpp"
#include "util/contracts.hpp"

namespace colex::baselines {
namespace {

class FranklinNode final : public BaselineNode {
 public:
  explicit FranklinNode(std::uint64_t id) : id_(id) {}

  std::unique_ptr<MsgAutomaton> clone() const override {
    return std::make_unique<FranklinNode>(*this);
  }

  void start(MsgContext& ctx) override { send_round(ctx); }

  void react(MsgContext& ctx) override {
    bool progress = true;
    while (progress && !terminated()) {
      progress = false;
      for (const sim::Port q : {sim::Port::p0, sim::Port::p1}) {
        auto m = ctx.recv(q);
        if (!m) continue;
        progress = true;
        handle(ctx, q, *m);
        if (terminated()) return;
      }
    }
  }

 private:
  void handle(MsgContext& ctx, sim::Port q, const Msg& m) {
    if (m.kind == Msg::Kind::announce) {
      on_announce(ctx, m);
      return;
    }
    COLEX_ASSERT(m.kind == Msg::Kind::candidate);
    if (is_leader_) return;  // draining while the announcement circulates
    if (!active_) {
      emit(ctx, sim::opposite(q), m);  // passive: relay
      return;
    }
    if (m.value == id_) {
      // Own ID traveled the whole ring: everyone else is passive.
      start_announce(ctx, id_);
      return;
    }
    buffer_[sim::index(q)].push_back(m);
    try_advance(ctx);
  }

  void try_advance(MsgContext& ctx) {
    auto& b0 = buffer_[0];
    auto& b1 = buffer_[1];
    if (b0.empty() || b1.empty()) return;
    COLEX_ASSERT(b0.front().phase == round_ && b1.front().phase == round_);
    const std::uint64_t a = b0.front().value;
    const std::uint64_t b = b1.front().value;
    b0.pop_front();
    b1.pop_front();
    if (a < id_ && b < id_) {
      ++round_;
      send_round(ctx);
      try_advance(ctx);  // both next-round candidates may already be queued
    } else {
      active_ = false;
      // Relay everything that was buffered for future rounds.
      for (const int side : {0, 1}) {
        for (const Msg& queued : buffer_[side]) {
          emit(ctx, sim::opposite(sim::port_from_index(side)), queued);
        }
        buffer_[side].clear();
      }
    }
  }

  void send_round(MsgContext& ctx) {
    Msg m;
    m.kind = Msg::Kind::candidate;
    m.value = id_;
    m.phase = round_;
    emit(ctx, sim::Port::p0, m);
    emit(ctx, sim::Port::p1, m);
  }

  std::uint64_t id_;
  std::uint32_t round_ = 0;
  bool active_ = true;
  std::deque<Msg> buffer_[2];
};

}  // namespace

BaselineResult franklin(const std::vector<std::uint64_t>& ids,
                        sim::Scheduler& scheduler,
                        const MsgRunOptions& opts) {
  COLEX_EXPECTS(!ids.empty());
  return detail::run_ring(
      ids.size(),
      [&ids](sim::NodeId v) { return std::make_unique<FranklinNode>(ids[v]); },
      scheduler, opts);
}

}  // namespace colex::baselines
