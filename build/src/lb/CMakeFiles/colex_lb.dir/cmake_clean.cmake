file(REMOVE_RECURSE
  "CMakeFiles/colex_lb.dir/solitude.cpp.o"
  "CMakeFiles/colex_lb.dir/solitude.cpp.o.d"
  "libcolex_lb.a"
  "libcolex_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colex_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
