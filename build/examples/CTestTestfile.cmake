# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "6" "3")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nonoriented "/root/repo/build/examples/nonoriented_ring" "5" "2")
set_tests_properties(example_nonoriented PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_anonymous "/root/repo/build/examples/anonymous_ring" "6" "1.5" "10" "1")
set_tests_properties(example_anonymous PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compose "/root/repo/build/examples/compose_compute" "5" "2")
set_tests_properties(example_compose PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_threaded "/root/repo/build/examples/threaded_ring" "5" "3")
set_tests_properties(example_threaded PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_colexctl_elect "/root/repo/build/examples/colexctl" "elect" "--alg" "alg2" "--n" "6")
set_tests_properties(example_colexctl_elect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_colexctl_solitude "/root/repo/build/examples/colexctl" "solitude" "--id" "7")
set_tests_properties(example_colexctl_solitude PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_colexctl_baselines "/root/repo/build/examples/colexctl" "baselines" "--n" "8")
set_tests_properties(example_colexctl_baselines PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_colexctl_anonymous "/root/repo/build/examples/colexctl" "anonymous" "--n" "6" "--c" "1.0" "--seed" "3")
set_tests_properties(example_colexctl_anonymous PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_playback "/root/repo/build/examples/trace_playback" "3" "7" "40")
set_tests_properties(example_trace_playback PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_colexctl_explore "/root/repo/build/examples/colexctl" "explore" "--ids" "2,4")
set_tests_properties(example_colexctl_explore PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
