// E11 — Ablations of two design choices called out in DESIGN.md:
//
//  (A) Section 1.1's replication alternative to quiescent termination:
//      running Algorithm 2 in (r+1)-copy mode costs exactly (r+1) times
//      n(2*IDmax+1) pulses — the "undesired r-fold increase" the paper
//      avoids by making termination quiescent.
//
//  (B) The token bus's post-PASS "go" pulse: without it, the new token
//      holder can emit a counterclockwise bit that overtakes the still-
//      circulating pass bit, desynchronizing the shared frame decoders.
//      With the go pulse the bus is correct under every adversary; without
//      it, executions corrupt (wrong results, stalls, or internal contract
//      violations) under most schedulers.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "co/alg2.hpp"
#include "co/election.hpp"
#include "co/replicated.hpp"
#include "colib/apps.hpp"
#include "sim/network.hpp"
#include "util/contracts.hpp"
#include "util/ids.hpp"
#include "util/table.hpp"

namespace {

using namespace colex;

/// Outcome classification for one bus run.
enum class BusOutcome { correct, corrupted, stalled, violated };

BusOutcome run_gather_bus(const std::vector<std::uint64_t>& inputs,
                          sim::Scheduler& sched, bool skip_go) {
  auto net = sim::PulseNetwork::ring(inputs.size());
  colib::BusOptions options;
  options.unsafe_skip_go = skip_go;
  for (sim::NodeId v = 0; v < inputs.size(); ++v) {
    net.set_automaton(
        v, std::make_unique<colib::BusNode>(
               std::make_unique<colib::GatherAllApp>(inputs[v]), v == 0,
               options));
  }
  sim::RunOptions opts;
  opts.max_events = 2'000'000;
  try {
    const auto report = net.run(sched, opts);
    if (!report.all_terminated || report.hit_event_limit ||
        !report.quiescent) {
      return BusOutcome::stalled;
    }
    std::uint64_t expected_sum = 0;
    for (const auto input : inputs) expected_sum += input;
    for (sim::NodeId v = 0; v < inputs.size(); ++v) {
      const auto& app = dynamic_cast<const colib::GatherAllApp&>(
          net.automaton_as<colib::BusNode>(v).app());
      if (!app.complete() || app.sum() != expected_sum) {
        return BusOutcome::corrupted;
      }
    }
    return BusOutcome::correct;
  } catch (const util::ContractViolation&) {
    return BusOutcome::violated;
  }
}

const char* to_string(BusOutcome o) {
  switch (o) {
    case BusOutcome::correct: return "correct";
    case BusOutcome::corrupted: return "CORRUPTED";
    case BusOutcome::stalled: return "STALLED";
    case BusOutcome::violated: return "VIOLATED";
  }
  return "?";
}

}  // namespace

int main() {
  bench::banner(
      "E11  Ablations: replication overhead and the bus go-pulse "
      "(bench_e11_ablation)",
      "(A) composing without quiescent termination costs an (r+1)-fold "
      "pulse blow-up (paper Section 1.1); (B) dropping the bus's "
      "serialization go-pulse corrupts executions under adversarial "
      "schedules");
  bench::WallTimer total;
  bench::JsonReport json_report("E11", "replication overhead and bus go-pulse ablations");

  // --- Part A: replication overhead -----------------------------------
  std::cout << "Part A: Section 1.1 replication overhead (Algorithm 2, "
               "n = 12, IDmax = 12)\n";
  const auto ids = util::shuffled(util::dense_ids(12), 5);
  const std::uint64_t base = co::theorem1_pulses(12, 12);
  util::Table part_a({"r", "copies per pulse", "pulses", "(r+1)*base",
                      "exact", "election ok"});
  bool part_a_ok = true;
  for (const unsigned r : {0u, 1u, 2u, 3u, 4u}) {
    auto net = sim::PulseNetwork::ring(ids.size());
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      net.set_automaton(v, std::make_unique<co::ReplicatedAdapter>(
                               std::make_unique<co::Alg2Terminating>(ids[v]),
                               r));
    }
    sim::RandomScheduler sched(r + 1);
    const auto report = net.run(sched);
    std::size_t leaders = 0;
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      const auto& alg = net.automaton_as<co::ReplicatedAdapter>(v)
                            .inner_as<co::Alg2Terminating>();
      if (alg.role() == co::Role::leader) ++leaders;
    }
    const bool exact = report.sent == (r + 1) * base;
    const bool ok = report.all_terminated && leaders == 1;
    part_a_ok = part_a_ok && exact && ok;
    part_a.add_row({util::Table::num(std::uint64_t{r}),
                    util::Table::num(std::uint64_t{r} + 1),
                    util::Table::num(report.sent),
                    util::Table::num((r + 1) * base), exact ? "yes" : "NO",
                    ok ? "yes" : "NO"});
  }
  part_a.print(std::cout);

  // --- Part B: go-pulse ablation ---------------------------------------
  std::cout << "\nPart B: token-bus PASS handover with and without the "
               "go pulse (gather-all, n = 6)\n";
  const std::vector<std::uint64_t> inputs{3, 14, 7, 1, 9, 5};
  util::Table part_b({"scheduler", "with go pulse", "without go pulse"});
  bool safe_always_ok = true;
  int unsafe_failures = 0, unsafe_runs = 0;
  for (auto& named : sim::standard_schedulers(5)) {
    const auto safe = run_gather_bus(inputs, *named.scheduler, false);
    named.scheduler->reset();
    const auto unsafe = run_gather_bus(inputs, *named.scheduler, true);
    safe_always_ok = safe_always_ok && safe == BusOutcome::correct;
    ++unsafe_runs;
    if (unsafe != BusOutcome::correct) ++unsafe_failures;
    part_b.add_row({named.name, to_string(safe), to_string(unsafe)});
  }
  part_b.print(std::cout);
  std::cout << "\nwithout the go pulse, " << unsafe_failures << "/"
            << unsafe_runs << " adversaries corrupt the run\n";

  const bool all_ok = part_a_ok && safe_always_ok && unsafe_failures > 0;
  json_report.root().set("all_ok", all_ok);
  json_report.finish(total.seconds());

  bench::verdict(all_ok,
                 "replication costs exactly (r+1)x, and the go-pulse "
                 "serialization is load-bearing");
  return all_ok ? 0 : 1;
}
