// Common scaffolding for baseline leader-election nodes.
#pragma once

#include <cstdint>
#include <optional>

#include "baselines/msg.hpp"
#include "sim/types.hpp"

namespace colex::baselines {

/// Port conventions on the oriented rings the baselines run on (identical
/// to the content-oblivious convention): Port1 sends clockwise, clockwise
/// traffic arrives at Port0.
inline constexpr sim::Port kCw = sim::Port::p1;
inline constexpr sim::Port kCcw = sim::Port::p0;

/// Base class providing output fields and bit accounting. Subclasses
/// implement the protocol in start/react.
class BaselineNode : public MsgAutomaton {
 public:
  bool terminated() const override { return done_; }

  bool is_leader() const { return is_leader_; }
  std::optional<std::uint64_t> leader_id() const { return leader_id_; }
  std::uint64_t bits_sent() const { return bits_sent_; }

 protected:
  /// Sends `m` through `p`, accounting for its bit cost.
  void emit(MsgContext& ctx, sim::Port p, const Msg& m) {
    bits_sent_ += m.bit_size();
    ctx.send(p, m);
  }

  /// Standard end-game shared by the baselines: the self-identified leader
  /// circulates an announce message clockwise; every other node records the
  /// leader, forwards it once, and terminates; the leader terminates when
  /// the announcement returns.
  void start_announce(MsgContext& ctx, std::uint64_t own_id) {
    is_leader_ = true;
    leader_id_ = own_id;
    Msg m;
    m.kind = Msg::Kind::announce;
    m.value = own_id;
    emit(ctx, kCw, m);
  }

  /// Handles an announce message; returns true if it consumed the node.
  void on_announce(MsgContext& ctx, const Msg& m) {
    if (is_leader_) {
      // Own announcement came back around: everyone knows; terminate.
      done_ = true;
      return;
    }
    leader_id_ = m.value;
    emit(ctx, kCw, m);
    done_ = true;
  }

  void finish() { done_ = true; }

  bool is_leader_ = false;
  std::optional<std::uint64_t> leader_id_;

 private:
  bool done_ = false;
  std::uint64_t bits_sent_ = 0;
};

}  // namespace colex::baselines
