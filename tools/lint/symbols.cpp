#include "lint/symbols.hpp"

namespace colex::lint {

int count_params(const std::vector<Token>& toks, const FunctionDef& fn) {
  // The parameter list is the first paren group between the signature start
  // and the body (a constructor's member-init parens come after it).
  std::size_t open = fn.body_begin;
  for (std::size_t j = fn.sig_begin; j < fn.body_begin && j < toks.size();
       ++j) {
    if (toks[j].kind == Tok::punct && toks[j].text == "(") {
      open = j;
      break;
    }
  }
  if (open >= fn.body_begin || open >= toks.size()) return -1;
  int parens = 0, brackets = 0, braces = 0, angles = 0;
  int commas = 0;
  bool any_tokens = false;
  bool only_void = true;
  for (std::size_t j = open; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (t.kind == Tok::punct) {
      const char p = t.text[0];
      if (p == '(') ++parens;
      else if (p == ')') {
        --parens;
        if (parens == 0) break;
      } else if (p == '[') ++brackets;
      else if (p == ']') --brackets;
      else if (p == '{') ++braces;
      else if (p == '}') --braces;
      else if (p == '<') {
        // Template-argument heuristic: '<' after an identifier opens an
        // angle group; a bare '<' (comparison in a default argument) does
        // not. Good enough for declared interfaces.
        if (j > open && toks[j - 1].kind == Tok::identifier) ++angles;
      } else if (p == '>') {
        if (angles > 0) --angles;
      } else if (p == ',' && parens == 1 && brackets == 0 && braces == 0 &&
                 angles == 0) {
        ++commas;
      }
      if (parens >= 1 && !(parens == 1 && (p == '(' || p == ')'))) {
        any_tokens = true;
        only_void = false;
      }
    } else if (parens >= 1) {
      any_tokens = true;
      if (!(t.kind == Tok::identifier && t.text == "void" && commas == 0)) {
        only_void = false;
      }
    }
  }
  if (!any_tokens || only_void) return 0;
  return commas + 1;
}

std::size_t match_forward_tok(const std::vector<Token>& toks,
                              std::size_t open, char open_ch, char close_ch) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (toks[j].kind != Tok::punct) continue;
    if (toks[j].text[0] == open_ch) {
      ++depth;
    } else if (toks[j].text[0] == close_ch) {
      --depth;
      if (depth == 0) return j;
    }
  }
  return static_cast<std::size_t>(-1);
}

SymbolTable build_symbol_table(const std::vector<SourceFile>& files,
                               const ProjectIndex& project) {
  SymbolTable table;
  table.by_file_fn.resize(files.size());
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const FileIndex& index = project.files[fi];
    table.by_file_fn[fi].reserve(index.functions.size());
    for (std::size_t k = 0; k < index.functions.size(); ++k) {
      const FunctionDef& fn = index.functions[k];
      FunctionSymbol sym;
      sym.file = fi;
      sym.fn = k;
      sym.name = fn.name;
      sym.owner = fn.owner;
      sym.line = fn.line;
      sym.param_count = count_params(files[fi].tokens, fn);
      table.by_file_fn[fi].push_back(table.symbols.size());
      if (!sym.name.empty()) {
        table.by_name[sym.name].push_back(table.symbols.size());
      }
      table.symbols.push_back(std::move(sym));
    }
  }
  return table;
}

}  // namespace colex::lint
