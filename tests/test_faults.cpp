// Fault-injection suite: probes the boundary of the paper's model (§2).
//
// The fully defective model erases message content but assumes channels
// never lose, duplicate, or invent pulses — and pulse *counts* are exactly
// what Algorithms 1-4 compute with. These tests make that boundary
// executable. The headline facts, each verified exhaustively for n <= 3
// (every injection point x every channel x every fault kind x several
// adversarial schedulers; the grids fan out on sim/parallel.hpp's work
// pool, with per-run event budgets of 20k):
//
//  * Algorithm 1 ignores the CCW direction entirely, so any spurious pulse
//    there is quarantined: the election still settles correctly.
//  * On the load-bearing CW direction Algorithm 1 is fragile to *every*
//    fault class: a dropped pulse leaves the ring settled in a wrong state
//    (the pulse/absorption balance is off by -1), and a duplicated or
//    spurious pulse can never be absorbed (+1 balance), so it circulates
//    forever and even revokes an already-correct election. "Quiescently
//    stabilizing" (paper §3.1) is not self-stabilization.
//  * The paper's own §1.1 replication transformation is a genuine
//    fault-tolerance mechanism: with r = 1, replicated Algorithm 1 survives
//    ANY single pulse insertion (duplicate or spurious) on any channel —
//    but not loss, which §1.1 never promised to mask.
//  * Terminating Algorithm 2 is fragile to a single lost pulse: every
//    applied drop ends in a stall (nodes deadlocked on counts that can no
//    longer arrive) — exhaustively at n <= 3 it never mis-elects, because
//    the drop starves exactly the max node, whose silence also blocks the
//    CCW feed a false termination trigger would need. Corrupted counters,
//    by contrast, DO produce an irrevocable safety violation: termination
//    commits a wrong leader.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "co/alg1.hpp"
#include "co/alg2.hpp"
#include "co/invariants.hpp"
#include "co/replicated.hpp"
#include "helpers.hpp"
#include "sim/faults.hpp"
#include "sim/parallel.hpp"
#include "sim/trace.hpp"

namespace colex {
namespace {

using sim::FaultKind;
using sim::FaultOutcome;
using sim::FaultPlan;
using sim::FaultyNetwork;

std::vector<std::uint64_t> small_ids(std::size_t n) {
  // Unique IDs with the maximum NOT at node 0, so wrong-leader outcomes are
  // distinguishable from "node 0 wins by accident".
  switch (n) {
    case 1: return {2};
    case 2: return {2, 3};
    case 3: return {2, 3, 1};
    default: return test::shuffled(test::dense_ids(n), 7);
  }
}

sim::NodeId max_node(const std::vector<std::uint64_t>& ids) {
  return static_cast<sim::NodeId>(
      std::max_element(ids.begin(), ids.end()) - ids.begin());
}

sim::PulseNetwork alg1_net(const std::vector<std::uint64_t>& ids) {
  auto net = sim::PulseNetwork::ring(ids.size());
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    net.set_automaton(v, std::make_unique<co::Alg1Stabilizing>(ids[v]));
  }
  return net;
}

sim::PulseNetwork alg2_net(const std::vector<std::uint64_t>& ids) {
  auto net = sim::PulseNetwork::ring(ids.size());
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    net.set_automaton(v, std::make_unique<co::Alg2Terminating>(ids[v]));
  }
  return net;
}

sim::PulseNetwork replicated_alg1_net(const std::vector<std::uint64_t>& ids,
                                      unsigned r) {
  auto net = sim::PulseNetwork::ring(ids.size());
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    net.set_automaton(v, std::make_unique<co::ReplicatedAdapter>(
                             std::make_unique<co::Alg1Stabilizing>(ids[v]),
                             r));
  }
  return net;
}

/// Correct Algorithm 1 output: the unique max-ID node is Leader, every
/// other node Non-Leader.
FaultyNetwork::OutputCheck alg1_correct(
    const std::vector<std::uint64_t>& ids) {
  return [ids](const sim::PulseNetwork& net) {
    const sim::NodeId expected = max_node(ids);
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      const auto& alg = net.automaton_as<co::Alg1Stabilizing>(v);
      const co::Role want =
          v == expected ? co::Role::leader : co::Role::non_leader;
      if (alg.role() != want) return false;
    }
    return true;
  };
}

FaultyNetwork::OutputCheck replicated_alg1_correct(
    const std::vector<std::uint64_t>& ids) {
  return [ids](const sim::PulseNetwork& net) {
    const sim::NodeId expected = max_node(ids);
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      const auto& alg = net.automaton_as<co::ReplicatedAdapter>(v)
                            .inner_as<co::Alg1Stabilizing>();
      const co::Role want =
          v == expected ? co::Role::leader : co::Role::non_leader;
      if (alg.role() != want) return false;
    }
    return true;
  };
}

/// Correct Algorithm 2 output: quiescent, all terminated, unique max-ID
/// leader.
FaultyNetwork::OutputCheck alg2_correct(
    const std::vector<std::uint64_t>& ids) {
  return [ids](const sim::PulseNetwork& net) {
    if (!net.quiescent()) return false;
    const sim::NodeId expected = max_node(ids);
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      const auto& alg = net.automaton_as<co::Alg2Terminating>(v);
      if (!alg.terminated()) return false;
      const co::Role want =
          v == expected ? co::Role::leader : co::Role::non_leader;
      if (alg.role() != want) return false;
    }
    return true;
  };
}

/// Algorithm 2 safety: termination is irrevocable, so a terminated node
/// with the wrong role — or a termination wave initiated anywhere but the
/// true maximum — is a committed mis-election, not a transient.
FaultyNetwork::SafetyCheck alg2_safety(
    const std::vector<std::uint64_t>& ids) {
  return [ids](const sim::PulseNetwork& net) -> std::string {
    const sim::NodeId expected = max_node(ids);
    std::size_t terminated_leaders = 0;
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      const auto& alg = net.automaton_as<co::Alg2Terminating>(v);
      if (alg.initiated_termination() && v != expected) {
        return "node " + std::to_string(v) +
               " (not the max) initiated termination";
      }
      if (!alg.terminated()) continue;
      if (alg.role() == co::Role::leader) {
        ++terminated_leaders;
        if (v != expected) {
          return "node " + std::to_string(v) +
                 " terminated as leader but the max is node " +
                 std::to_string(expected);
        }
      }
      if (alg.role() == co::Role::undecided) {
        return "node " + std::to_string(v) + " terminated undecided";
      }
    }
    if (terminated_leaders > 1) return "two terminated leaders";
    return {};
  };
}

using SchedulerFactory = std::function<std::unique_ptr<sim::Scheduler>()>;

std::vector<SchedulerFactory> sweep_schedulers() {
  return {
      [] { return std::make_unique<sim::GlobalFifoScheduler>(); },
      [] { return std::make_unique<sim::RoundRobinScheduler>(); },
      [] { return std::make_unique<sim::RandomScheduler>(5); },
  };
}

struct SingleFaultResult {
  bool applied = false;
  FaultOutcome outcome = FaultOutcome::recovered_correct;
  std::string diagnosis;
  sim::RunReport report;
};

/// Runs `build()` under one scripted single fault and classifies the run.
/// Safe to call concurrently: every run builds its own network, scheduler,
/// and injector. The exhaustive sweeps below fan these calls out with
/// sim::parallel_for and keep all gtest assertions on the main thread.
SingleFaultResult run_single_fault(
    const std::function<sim::PulseNetwork()>& build,
    const SchedulerFactory& make_scheduler, FaultKind kind, std::uint64_t at,
    std::size_t channel, const FaultyNetwork::SafetyCheck& safety,
    const FaultyNetwork::OutputCheck& correct,
    std::uint64_t max_events = 20'000) {
  FaultPlan plan;
  plan.script.push_back(sim::ScriptedFault{kind, at, channel, 0});
  FaultyNetwork faulty(build(), std::move(plan));
  sim::RunOptions opts;
  opts.max_events = max_events;
  auto scheduler = make_scheduler();
  const auto run = faulty.run(*scheduler, opts, safety, correct);
  SingleFaultResult result;
  result.applied = faulty.injector().tallies().total() > 0;
  result.outcome = run.outcome;
  result.diagnosis = run.diagnosis;
  result.report = run.report;
  return result;
}

/// Number of events (starts + deliveries) in the fault-free run, the sweep
/// horizon for scripted faults.
std::uint64_t fault_free_events(
    const std::function<sim::PulseNetwork()>& build,
    const SchedulerFactory& make_scheduler) {
  FaultyNetwork faulty(build(), FaultPlan{});
  auto scheduler = make_scheduler();
  const auto run = faulty.run(*scheduler);
  EXPECT_TRUE(run.report.quiescent);
  return faulty.injector().events_observed();
}

// ---------------------------------------------------------------------------
// Injector is a strict superset of the plain network: no behavioral drift.
// ---------------------------------------------------------------------------

TEST(FaultInjector, ZeroFaultPlanIsTraceIdentical) {
  const auto ids = test::sparse_ids(5, 20, 3);
  for (const auto& make_scheduler : sweep_schedulers()) {
    // Plain run.
    auto plain = alg1_net(ids);
    sim::RunOptions plain_opts;
    sim::TraceRecorder plain_trace;
    plain_trace.attach(plain, plain_opts);
    auto plain_sched = make_scheduler();
    const auto plain_report = plain.run(*plain_sched, plain_opts);

    // Same run through a FaultyNetwork with a trivial plan.
    FaultPlan plan;
    ASSERT_TRUE(plan.trivial());
    FaultyNetwork faulty(alg1_net(ids), plan);
    sim::RunOptions faulty_opts;
    sim::TraceRecorder faulty_trace;
    faulty_trace.attach(faulty.network(), faulty_opts);
    faulty.injector().attach_trace(faulty_trace);
    auto faulty_sched = make_scheduler();
    const auto faulty_run = faulty.run(*faulty_sched, faulty_opts);

    EXPECT_EQ(plain_trace.events(), faulty_trace.events());
    EXPECT_EQ(plain_report.sent, faulty_run.report.sent);
    EXPECT_EQ(plain_report.deliveries, faulty_run.report.deliveries);
    EXPECT_EQ(faulty.injector().tallies().total(), 0u);
    EXPECT_EQ(faulty_run.outcome, FaultOutcome::recovered_correct);
  }
}

TEST(FaultInjector, FaultFreeRunKeepsInvariantsThroughInjector) {
  const auto ids = test::sparse_ids(4, 15, 11);
  const std::uint64_t id_max = *std::max_element(ids.begin(), ids.end());
  FaultyNetwork faulty(alg1_net(ids), FaultPlan{});
  sim::GlobalFifoScheduler scheduler;
  const auto run = faulty.run(
      scheduler, {},
      [&ids, id_max](const sim::PulseNetwork& net) -> std::string {
        for (sim::NodeId v = 0; v < ids.size(); ++v) {
          // Lemma 6 speaks about nodes that have performed their start
          // action; during the staggered start phase the others are exempt.
          if (!net.started(v)) continue;
          if (auto err = co::check_alg1_invariants(
                  net.automaton_as<co::Alg1Stabilizing>(v), id_max);
              !err.empty()) {
            return err;
          }
        }
        return {};
      },
      alg1_correct(ids));
  EXPECT_EQ(run.outcome, FaultOutcome::recovered_correct);
  EXPECT_TRUE(run.report.quiescent);
}

// ---------------------------------------------------------------------------
// Exhaustive single-fault classification, Algorithm 1, n <= 3.
// ---------------------------------------------------------------------------

TEST(FaultSweepAlg1, ExhaustiveSingleChannelFaultClassification) {
  const std::vector<FaultKind> kinds{FaultKind::drop, FaultKind::duplicate,
                                     FaultKind::spurious};
  for (std::size_t n = 1; n <= 3; ++n) {
    const auto ids = small_ids(n);
    const auto build = [&ids] { return alg1_net(ids); };
    const auto correct = alg1_correct(ids);
    for (const auto& make_scheduler : sweep_schedulers()) {
      const std::uint64_t horizon = fault_free_events(build, make_scheduler);
      auto probe = alg1_net(ids);  // channel metadata only
      const std::size_t channels = probe.channel_count();
      // Each (at, channel, kind) cell is an independent run: fan the grid
      // out on the work pool, collect into per-index slots, classify here.
      const std::size_t grid =
          static_cast<std::size_t>(horizon + 1) * channels * kinds.size();
      std::vector<SingleFaultResult> slots(grid);
      sim::parallel_for(grid, sim::default_workers(), [&](std::size_t i) {
        const auto at =
            static_cast<std::uint64_t>(i / (channels * kinds.size()));
        const std::size_t c = (i / kinds.size()) % channels;
        slots[i] = run_single_fault(build, make_scheduler,
                                    kinds[i % kinds.size()], at, c, {},
                                    correct);
      });
      for (std::size_t i = 0; i < grid; ++i) {
        const auto at =
            static_cast<std::uint64_t>(i / (channels * kinds.size()));
        const std::size_t c = (i / kinds.size()) % channels;
        const FaultKind kind = kinds[i % kinds.size()];
        const sim::Direction dir = probe.channel_direction(c);
        const auto& result = slots[i];
        if (!result.applied) {
          // The fault found no payload to act on (e.g. a drop on an
          // empty channel): the run is the fault-free one.
          EXPECT_EQ(result.outcome, FaultOutcome::recovered_correct);
          continue;
        }
        if (dir == sim::Direction::ccw) {
          // Algorithm 1 never reads the CCW direction: an inserted
          // pulse is delivered, never consumed, and quarantined.
          ASSERT_EQ(kind, FaultKind::spurious)
              << "CCW channels carry no pulses to drop or duplicate";
          EXPECT_EQ(result.outcome, FaultOutcome::recovered_correct)
              << "n=" << n << " at=" << at << " c=" << c;
          EXPECT_FALSE(result.report.quiescent);  // quarantined leftover
        } else if (kind == FaultKind::drop) {
          // One pulse too few: the ring settles, but the counting
          // argument (Corollary 13) is broken for good.
          EXPECT_EQ(result.outcome, FaultOutcome::stalled)
              << "n=" << n << " at=" << at << " c=" << c;
        } else {
          // One pulse too many: no node will ever absorb it, so it
          // circulates forever and keeps revoking leaders.
          EXPECT_EQ(result.outcome, FaultOutcome::diverged)
              << "n=" << n << " at=" << at << " c=" << c
              << " kind=" << to_string(kind);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The §1.1 replication transformation as a fault-tolerance mechanism.
// ---------------------------------------------------------------------------

TEST(FaultSweepReplicated, R1SurvivesAnySingleInsertionExhaustively) {
  const std::vector<FaultKind> insertions{FaultKind::duplicate,
                                          FaultKind::spurious};
  for (std::size_t n = 1; n <= 3; ++n) {
    const auto ids = small_ids(n);
    const auto build = [&ids] { return replicated_alg1_net(ids, 1); };
    const auto correct = replicated_alg1_correct(ids);
    bool drop_broke_something = false;
    for (const auto& make_scheduler : sweep_schedulers()) {
      const std::uint64_t horizon = fault_free_events(build, make_scheduler);
      auto probe = replicated_alg1_net(ids, 1);
      const std::size_t channels = probe.channel_count();
      // Per cell: the two insertion kinds plus the contrasting drop.
      const std::size_t per_cell = insertions.size() + 1;
      const std::size_t grid =
          static_cast<std::size_t>(horizon + 1) * channels * per_cell;
      std::vector<SingleFaultResult> slots(grid);
      sim::parallel_for(grid, sim::default_workers(), [&](std::size_t i) {
        const auto at =
            static_cast<std::uint64_t>(i / (channels * per_cell));
        const std::size_t c = (i / per_cell) % channels;
        const std::size_t k = i % per_cell;
        const FaultKind kind =
            k < insertions.size() ? insertions[k] : FaultKind::drop;
        slots[i] =
            run_single_fault(build, make_scheduler, kind, at, c, {}, correct);
      });
      for (std::size_t i = 0; i < grid; ++i) {
        const auto at =
            static_cast<std::uint64_t>(i / (channels * per_cell));
        const std::size_t c = (i / per_cell) % channels;
        const std::size_t k = i % per_cell;
        const auto& result = slots[i];
        if (!result.applied) continue;
        if (k < insertions.size()) {
          // r = 1 masks any single stray pulse, anywhere, at any time
          // (§1.1: groups of r+1 arrivals re-synchronize the stream).
          EXPECT_EQ(result.outcome, FaultOutcome::recovered_correct)
              << "n=" << n << " at=" << at << " c=" << c
              << " kind=" << to_string(insertions[k])
              << " diag=" << result.diagnosis;
        } else if (result.outcome != FaultOutcome::recovered_correct) {
          // Contrast: §1.1 tolerates stray *insertions*, not loss.
          drop_broke_something = true;
        }
      }
    }
    EXPECT_TRUE(drop_broke_something)
        << "replication unexpectedly masked every drop at n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Documented fragility: one lost pulse breaks terminating Algorithm 2.
// ---------------------------------------------------------------------------

TEST(FaultSweepAlg2, SingleDropStallsOrMiselectsExhaustively) {
  std::map<FaultOutcome, std::size_t> outcomes;
  for (std::size_t n = 1; n <= 3; ++n) {
    const auto ids = small_ids(n);
    const auto build = [&ids] { return alg2_net(ids); };
    const auto correct = alg2_correct(ids);
    const auto safety = alg2_safety(ids);
    for (const auto& make_scheduler : sweep_schedulers()) {
      const std::uint64_t horizon = fault_free_events(build, make_scheduler);
      auto probe = alg2_net(ids);
      const std::size_t channels = probe.channel_count();
      const std::size_t grid =
          static_cast<std::size_t>(horizon + 1) * channels;
      std::vector<SingleFaultResult> slots(grid);
      sim::parallel_for(grid, sim::default_workers(), [&](std::size_t i) {
        const auto at = static_cast<std::uint64_t>(i / channels);
        slots[i] = run_single_fault(build, make_scheduler, FaultKind::drop,
                                    at, i % channels, safety, correct);
      });
      for (std::size_t i = 0; i < grid; ++i) {
        const auto& result = slots[i];
        if (!result.applied) continue;
        // Theorem 1's exact-count argument has no slack: a single lost
        // pulse is never recovered from.
        EXPECT_NE(result.outcome, FaultOutcome::recovered_correct)
            << "n=" << n << " at=" << i / channels << " c=" << i % channels;
        ++outcomes[result.outcome];
      }
    }
  }
  // The sweep is exhaustive, so these are small theorems, not samples. A
  // single drop always wedges the exact-count machinery into a stall. It
  // never mis-elects at n <= 3: a false rho_cw = ID = rho_ccw trigger at a
  // non-max node v needs v's CW count frozen at ID_v while CCW pulses still
  // reach v — but the drop starves exactly the max node, which then never
  // starts its CCW instance, and at n <= 3 every candidate v sits directly
  // CCW-downstream of the max, so its CCW feed is blocked too. And it never
  // diverges: a drop only removes pulses, and livelock needs a surplus.
  EXPECT_GT(outcomes[FaultOutcome::stalled], 0u);
  EXPECT_EQ(outcomes[FaultOutcome::safety_violated], 0u);
  EXPECT_EQ(outcomes[FaultOutcome::diverged], 0u);
}

TEST(FaultSweepAlg2, CorruptedCountersCommitToFalseLeader) {
  // The mis-election that channel loss cannot produce (previous test),
  // corrupted memory can: pre-loading a NON-max node with
  // rho_cw = rho_ccw = ID arms the line-14 trigger, so the node initiates
  // the termination wave at its own start event. Termination is
  // irrevocable — unlike stabilizing Algorithm 1, where any wrong state is
  // merely transient roles, Algorithm 2 commits the wrong leader.
  const std::vector<std::uint64_t> ids{2, 5, 3};
  FaultyNetwork faulty(
      alg2_net(ids), FaultPlan{}, {},
      [&ids](sim::PulseNetwork& net) {
        co::PulseCounters corrupted;
        corrupted.rho_cw = ids[0];
        corrupted.rho_ccw = ids[0];
        net.automaton_as<co::Alg2Terminating>(0).load_corrupted_state(
            corrupted, co::Role::leader);
      });
  sim::GlobalFifoScheduler scheduler;
  sim::RunOptions opts;
  opts.max_events = 5'000;
  const auto run =
      faulty.run(scheduler, opts, alg2_safety(ids), alg2_correct(ids));
  EXPECT_EQ(run.tallies.corruptions, 1u);
  EXPECT_EQ(run.outcome, FaultOutcome::safety_violated);
  EXPECT_TRUE(
      faulty.network().automaton_as<co::Alg2Terminating>(0)
          .initiated_termination());
}

// ---------------------------------------------------------------------------
// Crash-stop and crash-recover.
// ---------------------------------------------------------------------------

TEST(FaultCrash, CrashStopSwallowsDeliveriesAndBreaksElection) {
  const std::vector<std::uint64_t> ids{2, 5, 3};
  FaultPlan plan;
  plan.script.push_back(
      sim::ScriptedFault{FaultKind::crash, 4, 0, /*node=*/1});
  FaultyNetwork faulty(alg1_net(ids), plan);
  sim::GlobalFifoScheduler scheduler;
  sim::RunOptions opts;
  opts.max_events = 5'000;
  const auto run = faulty.run(scheduler, opts, {}, alg1_correct(ids));
  EXPECT_EQ(run.tallies.crashes, 1u);
  EXPECT_EQ(run.report.node_crashes, 1u);
  EXPECT_GT(run.report.deliveries_to_crashed, 0u);
  // The crashed node is the max-ID node: nobody can win anymore.
  EXPECT_NE(run.outcome, FaultOutcome::recovered_correct);
}

TEST(FaultCrash, CrashRecoverRestartsFromCleanState) {
  const std::vector<std::uint64_t> ids{2, 5, 3, 4};
  FaultPlan plan;
  plan.script.push_back(
      sim::ScriptedFault{FaultKind::crash, 5, 0, /*node=*/2});
  plan.script.push_back(
      sim::ScriptedFault{FaultKind::recover, 9, 0, /*node=*/2});
  auto factory = [&ids](sim::NodeId v) {
    return std::make_unique<co::Alg1Stabilizing>(ids[v]);
  };
  FaultyNetwork faulty(alg1_net(ids), plan, factory);
  sim::GlobalFifoScheduler scheduler;
  sim::RunOptions opts;
  opts.max_events = 5'000;
  const auto run = faulty.run(scheduler, opts, {}, alg1_correct(ids));
  EXPECT_EQ(run.tallies.crashes, 1u);
  EXPECT_EQ(run.tallies.recoveries, 1u);
  EXPECT_EQ(run.report.node_recoveries, 1u);
  // The recovered node restarted from start(): its counters are fresh (it
  // cannot have received more than it has seen since recovery).
  const auto& recovered = faulty.network().automaton_as<co::Alg1Stabilizing>(2);
  EXPECT_LT(recovered.counters().rho_cw, 5u);
}

TEST(FaultCrash, CrashRecoverRunsAreExactlyReproducible) {
  const std::vector<std::uint64_t> ids{2, 5, 3, 4};
  auto one_run = [&ids](std::vector<sim::TraceEvent>* trace_out) {
    FaultPlan plan;
    plan.all_channels.drop_prob = 0.02;
    plan.all_channels.spurious_prob = 0.01;
    plan.seed = 99;
    plan.script.push_back(
        sim::ScriptedFault{FaultKind::crash, 6, 0, /*node=*/1});
    plan.script.push_back(
        sim::ScriptedFault{FaultKind::recover, 12, 0, /*node=*/1});
    auto factory = [&ids](sim::NodeId v) {
      return std::make_unique<co::Alg1Stabilizing>(ids[v]);
    };
    FaultyNetwork faulty(alg1_net(ids), plan, factory);
    sim::RunOptions opts;
    opts.max_events = 2'000;
    sim::TraceRecorder trace;
    trace.attach(faulty.network(), opts);
    faulty.injector().attach_trace(trace);
    sim::RandomScheduler scheduler(17);
    const auto run = faulty.run(scheduler, opts);
    *trace_out = trace.events();
    return run;
  };
  std::vector<sim::TraceEvent> first_trace, second_trace;
  const auto first = one_run(&first_trace);
  const auto second = one_run(&second_trace);
  EXPECT_EQ(first_trace, second_trace);
  EXPECT_EQ(first.tallies.total(), second.tallies.total());
  EXPECT_EQ(first.outcome, second.outcome);
  EXPECT_EQ(first.report.sent, second.report.sent);
}

// ---------------------------------------------------------------------------
// Corrupted initial state: the self-stabilization question.
// ---------------------------------------------------------------------------

TEST(FaultCorruptState, CorruptedCounterElectsTwoLeaders) {
  // ids {1, 2}; pre-load node 1 (the max) with rho_cw = 1 as if it had
  // already received a pulse. Both nodes then absorb their first real pulse
  // and both end Leader: Algorithm 1 does NOT self-stabilize from corrupted
  // counters, because the corrupted count silently shifts the absorption
  // point.
  const std::vector<std::uint64_t> ids{1, 2};
  FaultyNetwork faulty(
      alg1_net(ids), FaultPlan{}, {},
      [](sim::PulseNetwork& net) {
        co::PulseCounters corrupted;
        corrupted.rho_cw = 1;
        net.automaton_as<co::Alg1Stabilizing>(1).load_corrupted_state(
            corrupted, co::Role::undecided);
      });
  sim::GlobalFifoScheduler scheduler;
  sim::RunOptions opts;
  opts.max_events = 5'000;
  const auto run = faulty.run(scheduler, opts, {}, alg1_correct(ids));
  EXPECT_EQ(run.tallies.corruptions, 1u);
  EXPECT_EQ(run.outcome, FaultOutcome::stalled);
  EXPECT_EQ(faulty.network().automaton_as<co::Alg1Stabilizing>(0).role(),
            co::Role::leader);
  EXPECT_EQ(faulty.network().automaton_as<co::Alg1Stabilizing>(1).role(),
            co::Role::leader);
}

TEST(FaultCorruptState, CorruptedSigmaIsHarmlessBookkeeping) {
  // sigma is pure bookkeeping in Algorithm 1 — control flow reads only rho.
  // A corrupted sigma therefore changes nothing: the run is still correct.
  const std::vector<std::uint64_t> ids{2, 5, 3};
  FaultyNetwork faulty(
      alg1_net(ids), FaultPlan{}, {},
      [](sim::PulseNetwork& net) {
        co::PulseCounters corrupted;
        corrupted.sigma_cw = 1'000;
        net.automaton_as<co::Alg1Stabilizing>(0).load_corrupted_state(
            corrupted, co::Role::undecided);
      });
  sim::GlobalFifoScheduler scheduler;
  const auto run = faulty.run(scheduler, {}, {}, alg1_correct(ids));
  EXPECT_EQ(run.outcome, FaultOutcome::recovered_correct);
  EXPECT_TRUE(run.report.quiescent);
}

TEST(FaultCorruptState, PreseededChannelPulseNeverSettles) {
  // A pulse sitting on a CW channel before the run starts is one pulse too
  // many for the absorption budget: the ring never quiesces again.
  const std::vector<std::uint64_t> ids{2, 3, 1};
  auto probe = alg1_net(ids);
  std::size_t cw_channel = 0;
  for (std::size_t c = 0; c < probe.channel_count(); ++c) {
    if (probe.channel_direction(c) == sim::Direction::cw) {
      cw_channel = c;
      break;
    }
  }
  FaultPlan plan;
  plan.preseed_channels.push_back({cw_channel, 1});
  FaultyNetwork faulty(alg1_net(ids), plan);
  sim::GlobalFifoScheduler scheduler;
  sim::RunOptions opts;
  opts.max_events = 2'000;
  const auto run = faulty.run(scheduler, opts, {}, alg1_correct(ids));
  EXPECT_EQ(run.tallies.spurious, 1u);
  EXPECT_EQ(run.outcome, FaultOutcome::diverged);
}

// ---------------------------------------------------------------------------
// Traces of faulty runs: first-class fault events, self-consistent audits.
// ---------------------------------------------------------------------------

TEST(FaultTrace, RecordedFaultyRunAuditsCleanSilentTamperingDoesNot) {
  const auto ids = test::sparse_ids(5, 12, 4);
  {
    FaultPlan plan;
    plan.seed = 13;
    plan.all_channels.drop_prob = 0.03;
    plan.all_channels.duplicate_prob = 0.03;
    plan.all_channels.spurious_prob = 0.02;
    FaultyNetwork faulty(alg1_net(ids), plan);
    sim::RunOptions opts;
    opts.max_events = 2'000;
    sim::TraceRecorder trace;
    trace.attach(faulty.network(), opts);
    faulty.injector().attach_trace(trace);
    sim::GlobalFifoScheduler scheduler;
    const auto run = faulty.run(scheduler, opts);
    ASSERT_GT(run.tallies.total(), 0u);  // the plan actually fired
    // Recorded tampering is accounted for: the stream is self-consistent.
    EXPECT_EQ(trace.audit(sim::ring_wiring(ids.size())), "");
    EXPECT_EQ(trace.count(sim::TraceEvent::Kind::fault_drop),
              run.tallies.dropped);
    EXPECT_EQ(trace.count(sim::TraceEvent::Kind::fault_spurious),
              run.tallies.spurious);
    EXPECT_EQ(trace.count(sim::TraceEvent::Kind::fault_duplicate),
              run.tallies.duplicated);
  }
  {
    // Silent tampering (no injector, no fault events) still trips the audit.
    auto net = alg1_net(ids);
    sim::RunOptions opts;
    opts.max_events = 2'000;
    sim::TraceRecorder trace;
    trace.attach(net, opts);
    net.inject_fault(0);
    sim::GlobalFifoScheduler scheduler;
    net.run(scheduler, opts);
    EXPECT_NE(trace.audit(sim::ring_wiring(ids.size())), "");
  }
}

TEST(FaultTrace, ProbabilisticPlansAreReproducibleFromSeed) {
  const auto ids = test::sparse_ids(6, 18, 8);
  auto one_run = [&ids](std::uint64_t seed,
                        std::vector<sim::TraceEvent>* trace_out) {
    FaultPlan plan;
    plan.seed = seed;
    plan.all_channels.drop_prob = 0.05;
    plan.all_channels.duplicate_prob = 0.02;
    plan.all_channels.spurious_prob = 0.02;
    FaultyNetwork faulty(alg1_net(ids), plan);
    sim::RunOptions opts;
    opts.max_events = 3'000;
    sim::TraceRecorder trace;
    trace.attach(faulty.network(), opts);
    faulty.injector().attach_trace(trace);
    sim::RandomScheduler scheduler(21);
    const auto run = faulty.run(scheduler, opts);
    *trace_out = trace.events();
    return run.tallies;
  };
  std::vector<sim::TraceEvent> a, b, c;
  const auto tallies_a = one_run(41, &a);
  const auto tallies_b = one_run(41, &b);
  (void)one_run(42, &c);
  EXPECT_GT(tallies_a.total(), 0u);
  EXPECT_EQ(a, b);
  EXPECT_EQ(tallies_a.total(), tallies_b.total());
  EXPECT_NE(a, c);  // a different fault seed is a different execution
}

// --- FaultPlan::validate ---------------------------------------------------
//
// Structural validation, shared by every producer of plans (the soak
// harness's churn engine, qa's generators) and enforced at the injector's
// door: a malformed plan is a loud ContractViolation at construction, never
// a silently ignored script entry mid-run.

TEST(FaultPlanValidate, AcceptsWellFormedPlans) {
  EXPECT_EQ(FaultPlan{}.validate(), "");

  FaultPlan plan;
  plan.all_channels.drop_prob = 0.25;
  sim::ScriptedFault crash;
  crash.kind = FaultKind::crash;
  crash.at_event = 3;
  crash.node = 1;
  sim::ScriptedFault recover;
  recover.kind = FaultKind::recover;
  recover.at_event = 9;
  recover.node = 1;
  plan.script = {crash, recover};
  EXPECT_EQ(plan.validate(), "");

  // Deliberately loose: a second recover of an already-recovered node is a
  // no-op at run time, not a structural error — only a recover with no
  // prior crash AT ALL for that node is rejected.
  plan.script.push_back(recover);
  plan.script.back().at_event = 12;
  EXPECT_EQ(plan.validate(), "");
}

TEST(FaultPlanValidate, RejectsRecoverWithoutPriorCrash) {
  FaultPlan plan;
  sim::ScriptedFault recover;
  recover.kind = FaultKind::recover;
  recover.at_event = 5;
  recover.node = 2;
  plan.script = {recover};
  const std::string diag = plan.validate();
  EXPECT_NE(diag.find("recovers node 2"), std::string::npos) << diag;
  EXPECT_NE(diag.find("no prior crash"), std::string::npos) << diag;

  // The injector refuses the plan outright instead of ignoring the entry.
  const auto ids = small_ids(3);
  EXPECT_THROW(FaultyNetwork(alg1_net(ids), plan,
                             [&ids](sim::NodeId v) {
                               return std::make_unique<co::Alg1Stabilizing>(
                                   ids[v]);
                             }),
               util::ContractViolation);
}

TEST(FaultPlanValidate, RejectsUnsortedScriptAndCorruptEntries) {
  FaultPlan unsorted;
  sim::ScriptedFault early;
  early.kind = FaultKind::drop;
  early.at_event = 2;
  early.channel = 0;
  sim::ScriptedFault late = early;
  late.at_event = 9;
  unsorted.script = {late, early};
  EXPECT_NE(unsorted.validate().find("not sorted"), std::string::npos);
  EXPECT_THROW(FaultyNetwork(alg1_net(small_ids(3)), unsorted),
               util::ContractViolation);

  FaultPlan corrupt;
  sim::ScriptedFault entry;
  entry.kind = FaultKind::corrupt;
  entry.at_event = 1;
  corrupt.script = {entry};
  EXPECT_NE(corrupt.validate().find("not scriptable"), std::string::npos);
}

TEST(FaultPlanValidate, RejectsOutOfRangeProbabilities) {
  FaultPlan plan;
  plan.all_channels.duplicate_prob = 1.5;
  EXPECT_NE(plan.validate(), "");

  FaultPlan override_plan;
  sim::ChannelFaultProfile bad;
  bad.spurious_prob = -0.1;
  override_plan.channel_overrides.emplace_back(0, bad);
  EXPECT_NE(override_plan.validate(), "");
}

}  // namespace
}  // namespace colex
