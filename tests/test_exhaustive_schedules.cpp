// Exhaustive schedule exploration: for small rings, enumerate EVERY
// adversarial delivery order (the full tree of scheduler choices) and
// verify the theorems hold on every leaf — model checking, not sampling.
//
// The default explorer forks live network snapshots at each branch point
// (Network::clone); the legacy engine replays each choice prefix from
// scratch through ReplayScheduler and is kept behind ExploreOptions::engine
// (test_explore_engines.cpp proves the two identical). A leaf is a
// quiescent execution; at every leaf the election must be correct and the
// pulse count exactly the paper's formula.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "co/alg1.hpp"
#include "co/alg2.hpp"
#include "co/alg3.hpp"
#include "co/election.hpp"
#include "sim/explore.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace colex::co {
namespace {

TEST(ExhaustiveSchedules, Alg2TwoNodeRingEverySchedule) {
  const std::vector<std::uint64_t> ids{1, 2};
  const auto build = [&ids] {
    auto net = sim::PulseNetwork::ring(ids.size());
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      net.set_automaton(v, std::make_unique<Alg2Terminating>(ids[v]));
    }
    return net;
  };
  const auto validate = [&ids](sim::PulseNetwork& net) {
    ASSERT_EQ(net.total_sent(), theorem1_pulses(2, 2));
    std::size_t leaders = 0;
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      const auto& alg = net.automaton_as<Alg2Terminating>(v);
      ASSERT_TRUE(alg.terminated());
      if (alg.role() == Role::leader) {
        ++leaders;
        ASSERT_EQ(v, 1u);
      }
    }
    ASSERT_EQ(leaders, 1u);
  };
  const auto stats = sim::explore_all_schedules(build, validate, 2'000'000);
  EXPECT_EQ(stats.truncated, 0u) << "exploration must be exhaustive";
  EXPECT_GT(stats.leaves, 1u);  // genuinely multiple schedules exist
  EXPECT_EQ(stats.max_depth, theorem1_pulses(2, 2));
  std::cout << "alg2 n=2 {1,2}: " << stats.leaves
            << " distinct schedules, all correct\n";
}

TEST(ExhaustiveSchedules, Alg2TwoNodeSparseIdsEverySchedule) {
  const std::vector<std::uint64_t> ids{4, 2};
  const auto build = [&ids] {
    auto net = sim::PulseNetwork::ring(2);
    net.set_automaton(0, std::make_unique<Alg2Terminating>(ids[0]));
    net.set_automaton(1, std::make_unique<Alg2Terminating>(ids[1]));
    return net;
  };
  const auto validate = [](sim::PulseNetwork& net) {
    ASSERT_EQ(net.total_sent(), theorem1_pulses(2, 4));
    ASSERT_EQ(net.automaton_as<Alg2Terminating>(0).role(), Role::leader);
    ASSERT_EQ(net.automaton_as<Alg2Terminating>(1).role(),
              Role::non_leader);
  };
  const auto stats = sim::explore_all_schedules(build, validate, 4'000'000);
  EXPECT_EQ(stats.truncated, 0u);
  std::cout << "alg2 n=2 {4,2}: " << stats.leaves
            << " distinct schedules, all correct\n";
}

TEST(ExhaustiveSchedules, Alg1ThreeNodeRingEverySchedule) {
  const std::vector<std::uint64_t> ids{2, 3, 1};
  const auto build = [&ids] {
    auto net = sim::PulseNetwork::ring(ids.size());
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      net.set_automaton(v, std::make_unique<Alg1Stabilizing>(ids[v]));
    }
    return net;
  };
  const auto validate = [&ids](sim::PulseNetwork& net) {
    ASSERT_EQ(net.total_sent(), 3u * 3u);
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      const auto& alg = net.automaton_as<Alg1Stabilizing>(v);
      ASSERT_EQ(alg.role() == Role::leader, ids[v] == 3) << v;
      ASSERT_EQ(alg.counters().rho_cw, 3u);
    }
  };
  const auto stats = sim::explore_all_schedules(build, validate, 2'000'000);
  EXPECT_EQ(stats.truncated, 0u);
  EXPECT_GT(stats.leaves, 1u);
  std::cout << "alg1 n=3 {2,3,1}: " << stats.leaves
            << " distinct schedules, all correct\n";
}

TEST(ExhaustiveSchedules, Alg3ScrambledTwoNodeEverySchedule) {
  const std::vector<std::uint64_t> ids{2, 3};
  const std::vector<bool> flips{true, false};
  const auto build = [&] {
    auto net = sim::PulseNetwork::ring(2, flips);
    for (sim::NodeId v = 0; v < 2; ++v) {
      Alg3NonOriented::Options options;  // improved scheme
      net.set_automaton(v,
                        std::make_unique<Alg3NonOriented>(ids[v], options));
    }
    return net;
  };
  const auto validate = [&](sim::PulseNetwork& net) {
    ASSERT_EQ(net.total_sent(), theorem1_pulses(2, 3));
    ASSERT_EQ(net.automaton_as<Alg3NonOriented>(0).role(),
              Role::non_leader);
    ASSERT_EQ(net.automaton_as<Alg3NonOriented>(1).role(), Role::leader);
    // Orientation consistent: exactly one of the two declares the
    // physical CW port as CW at node 0 iff node 1 does too.
    const bool node0_cw =
        net.automaton_as<Alg3NonOriented>(0).cw_port() ==
        physical_cw_port(flips, 0);
    const bool node1_cw =
        net.automaton_as<Alg3NonOriented>(1).cw_port() ==
        physical_cw_port(flips, 1);
    ASSERT_EQ(node0_cw, node1_cw);
  };
  const auto stats = sim::explore_all_schedules(build, validate, 4'000'000);
  EXPECT_EQ(stats.truncated, 0u);
  std::cout << "alg3 n=2 scrambled {2,3}: " << stats.leaves
            << " distinct schedules, all correct\n";
}

TEST(ExhaustiveSchedules, SingleNodeHasUniqueSchedule) {
  // n = 1: at most one pulse is in flight at a time for Algorithm 2, so
  // the adversary has no real choices; the tree is a single path.
  const auto build = [] {
    auto net = sim::PulseNetwork::ring(1);
    net.set_automaton(0, std::make_unique<Alg2Terminating>(3));
    return net;
  };
  const auto validate = [](sim::PulseNetwork& net) {
    ASSERT_EQ(net.total_sent(), 7u);
    ASSERT_EQ(net.automaton_as<Alg2Terminating>(0).role(), Role::leader);
  };
  const auto stats = sim::explore_all_schedules(build, validate, 100'000);
  EXPECT_EQ(stats.truncated, 0u);
  EXPECT_EQ(stats.leaves, 1u);
}

}  // namespace
}  // namespace colex::co
