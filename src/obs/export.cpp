#include "obs/export.hpp"

#include <array>
#include <deque>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/contracts.hpp"

namespace colex::obs {

namespace {

constexpr std::array<sim::TraceEvent::Kind, 8> kAllKinds{
    sim::TraceEvent::Kind::send,          sim::TraceEvent::Kind::deliver,
    sim::TraceEvent::Kind::fault_drop,    sim::TraceEvent::Kind::fault_duplicate,
    sim::TraceEvent::Kind::fault_spurious, sim::TraceEvent::Kind::fault_crash,
    sim::TraceEvent::Kind::fault_recover, sim::TraceEvent::Kind::fault_corrupt,
};

bool kind_from_string(const std::string& s, sim::TraceEvent::Kind& out) {
  for (const auto kind : kAllKinds) {
    if (s == sim::to_string(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

// Minimal extraction from one line of OUR OWN JSONL output (flat objects,
// no nesting inside the extracted keys). Not a general JSON parser.
bool find_raw(const std::string& line, const std::string& key,
              std::size_t& value_begin) {
  const std::string needle = "\"" + key + "\":";
  const auto at = line.find(needle);
  if (at == std::string::npos) return false;
  value_begin = at + needle.size();
  return true;
}

bool find_u64(const std::string& line, const std::string& key,
              std::uint64_t& out) {
  std::size_t begin = 0;
  if (!find_raw(line, key, begin)) return false;
  out = 0;
  bool any = false;
  while (begin < line.size() && line[begin] >= '0' && line[begin] <= '9') {
    out = out * 10 + static_cast<std::uint64_t>(line[begin] - '0');
    ++begin;
    any = true;
  }
  return any;
}

bool find_string(const std::string& line, const std::string& key,
                 std::string& out) {
  std::size_t begin = 0;
  if (!find_raw(line, key, begin)) return false;
  if (begin >= line.size() || line[begin] != '"') return false;
  ++begin;
  out.clear();
  while (begin < line.size() && line[begin] != '"') {
    if (line[begin] == '\\' && begin + 1 < line.size()) ++begin;
    out += line[begin];
    ++begin;
  }
  return begin < line.size();
}

void write_event_json(std::ostream& os, const sim::TraceEvent& e) {
  os << "{\"type\":\"event\",\"index\":" << e.index << ",\"kind\":\""
     << sim::to_string(e.kind) << "\",\"node\":" << e.node
     << ",\"port\":" << sim::index(e.port) << ",\"dir\":\""
     << sim::to_string(e.dir) << "\"}";
}

void write_meta_json(std::ostream& os, const TraceMeta& meta) {
  os << "{\"type\":\"meta\",\"format\":\"colex-trace-v1\",\"algorithm\":";
  write_escaped(os, meta.algorithm);
  os << ",\"n\":" << meta.n << ",\"id_max\":" << meta.id_max
     << ",\"pulse_bound\":" << meta.pulse_bound() << ",\"port_flips\":[";
  for (std::size_t v = 0; v < meta.port_flips.size(); ++v) {
    if (v) os << ",";
    os << (meta.port_flips[v] ? 1 : 0);
  }
  os << "]}";
}

}  // namespace

void write_jsonl(std::ostream& os, const std::vector<sim::TraceEvent>& events,
                 const TraceMeta& meta, const Registry* metrics) {
  write_meta_json(os, meta);
  os << "\n";
  for (const auto& e : events) {
    write_event_json(os, e);
    os << "\n";
  }
  if (metrics != nullptr) {
    os << "{\"type\":\"metrics\",\"data\":";
    metrics->write_json(os);
    os << "}\n";
  }
}

std::string to_jsonl(const std::vector<sim::TraceEvent>& events,
                     const TraceMeta& meta, const Registry* metrics) {
  std::ostringstream os;
  write_jsonl(os, events, meta, metrics);
  return os.str();
}

LoadedTrace load_jsonl(std::istream& is) {
  LoadedTrace out;
  std::string line;
  bool have_meta = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::string type;
    COLEX_EXPECTS(find_string(line, "type", type));
    if (type == "meta") {
      COLEX_EXPECTS(!have_meta);
      have_meta = true;
      std::string format;
      COLEX_EXPECTS(find_string(line, "format", format) &&
                    format == "colex-trace-v1");
      find_string(line, "algorithm", out.meta.algorithm);
      std::uint64_t n = 0;
      if (find_u64(line, "n", n)) out.meta.n = static_cast<std::size_t>(n);
      find_u64(line, "id_max", out.meta.id_max);
      std::size_t begin = 0;
      if (find_raw(line, "port_flips", begin) && begin < line.size() &&
          line[begin] == '[') {
        for (++begin; begin < line.size() && line[begin] != ']'; ++begin) {
          if (line[begin] == '0') out.meta.port_flips.push_back(false);
          if (line[begin] == '1') out.meta.port_flips.push_back(true);
        }
      }
    } else if (type == "event") {
      sim::TraceEvent e;
      std::string kind, dir;
      std::uint64_t node = 0, port = 0;
      COLEX_EXPECTS(find_u64(line, "index", e.index));
      COLEX_EXPECTS(find_string(line, "kind", kind) &&
                    kind_from_string(kind, e.kind));
      COLEX_EXPECTS(find_u64(line, "node", node));
      COLEX_EXPECTS(find_u64(line, "port", port) && port <= 1);
      COLEX_EXPECTS(find_string(line, "dir", dir));
      e.node = static_cast<sim::NodeId>(node);
      e.port = sim::port_from_index(static_cast<int>(port));
      e.dir = dir == "cw" ? sim::Direction::cw : sim::Direction::ccw;
      out.events.push_back(e);
    } else if (type == "metrics") {
      std::size_t begin = 0;
      if (find_raw(line, "data", begin)) {
        // The snapshot is the rest of the line minus the closing brace of
        // the wrapper object.
        out.metrics_json = line.substr(begin, line.size() - begin - 1);
      }
    }
    // Unknown line types are skipped: forward compatibility.
  }
  COLEX_EXPECTS(have_meta);
  return out;
}

LoadedTrace load_jsonl_file(const std::string& path) {
  std::ifstream in(path);
  COLEX_EXPECTS(in.good());
  return load_jsonl(in);
}

void write_chrome_trace(std::ostream& os,
                        const std::vector<sim::TraceEvent>& events,
                        const TraceMeta& meta, const Registry* metrics) {
  // Track count: the declared ring size, or (shape unknown) whatever nodes
  // the stream mentions.
  std::size_t n = meta.n;
  if (n == 0) {
    for (const auto& e : events) n = std::max(n, e.node + 1);
  }
  const auto wiring = sim::ring_wiring(n == 0 ? 1 : n, meta.port_flips);
  const bool can_match = meta.n != 0;  // FIFO matching needs true wiring

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&os, &first] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  sep();
  os << "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{"
        "\"name\":\"colex ring";
  if (!meta.algorithm.empty()) os << " (" << meta.algorithm << ")";
  os << "\"}}";
  for (std::size_t v = 0; v < n; ++v) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << v
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"node " << v
       << "\"}}";
  }

  auto instant = [&](const sim::TraceEvent& e, const char* name) {
    sep();
    os << "{\"name\":\"" << name << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
       << e.index << ",\"pid\":0,\"tid\":" << e.node << ",\"cat\":\""
       << sim::to_string(e.dir) << "\"}";
  };

  // FIFO span matching, mirroring the trace audit's channel balances: a
  // pending entry is (ts, label) on the channel keyed by sender node+port.
  struct PendingSend {
    std::uint64_t ts = 0;
    const char* label = "pulse";
  };
  std::vector<std::deque<PendingSend>> channel(2 * n);
  auto slot = [&channel](sim::NodeId node, sim::Port port)
      -> std::deque<PendingSend>& {
    return channel[node * 2 + static_cast<std::size_t>(sim::index(port))];
  };

  for (const auto& e : events) {
    switch (e.kind) {
      case sim::TraceEvent::Kind::send:
        if (can_match) {
          slot(e.node, e.port).push_back({e.index, "pulse"});
        } else {
          instant(e, "send");
        }
        break;
      case sim::TraceEvent::Kind::fault_duplicate:
        instant(e, "fault-duplicate");
        if (can_match) {
          slot(e.node, e.port).push_back({e.index, "pulse (duplicated)"});
        }
        break;
      case sim::TraceEvent::Kind::fault_spurious:
        instant(e, "fault-spurious");
        if (can_match) {
          slot(e.node, e.port).push_back({e.index, "pulse (spurious)"});
        }
        break;
      case sim::TraceEvent::Kind::fault_drop: {
        instant(e, "fault-drop");
        if (can_match) {
          auto& q = slot(e.node, e.port);
          if (!q.empty()) q.pop_front();
        }
        break;
      }
      case sim::TraceEvent::Kind::deliver: {
        if (!can_match) {
          instant(e, "deliver");
          break;
        }
        const auto from = wiring(e.node, e.port);
        auto& q = slot(from.first, from.second);
        if (q.empty()) {
          // Over-delivery (silent tampering): visible as an orphan marker
          // rather than silently skipped.
          instant(e, "deliver (unmatched)");
          break;
        }
        const PendingSend send = q.front();
        q.pop_front();
        sep();
        os << "{\"name\":\"" << send.label << "\",\"ph\":\"X\",\"ts\":"
           << send.ts << ",\"dur\":" << (e.index - send.ts)
           << ",\"pid\":0,\"tid\":" << from.first << ",\"cat\":\""
           << sim::to_string(e.dir) << "\",\"args\":{\"to_node\":" << e.node
           << ",\"send_index\":" << send.ts << ",\"deliver_index\":"
           << e.index << "}}";
        break;
      }
      case sim::TraceEvent::Kind::fault_crash:
        instant(e, "fault-crash");
        break;
      case sim::TraceEvent::Kind::fault_recover:
        instant(e, "fault-recover");
        break;
      case sim::TraceEvent::Kind::fault_corrupt:
        instant(e, "fault-corrupt");
        break;
    }
  }

  // Pulses still in flight at the end of the stream render as zero-length
  // markers so nothing recorded is invisible in the viewer.
  for (std::size_t c = 0; c < channel.size(); ++c) {
    for (const auto& send : channel[c]) {
      sep();
      os << "{\"name\":\"in flight at end\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
         << send.ts << ",\"pid\":0,\"tid\":" << (c / 2) << "}";
    }
  }

  os << "\n]";
  if (metrics != nullptr) {
    os << ",\"otherData\":{\"metrics\":";
    metrics->write_json(os);
    os << "}";
  }
  os << "}\n";
}

std::string to_chrome_trace(const std::vector<sim::TraceEvent>& events,
                            const TraceMeta& meta, const Registry* metrics) {
  std::ostringstream os;
  write_chrome_trace(os, events, meta, metrics);
  return os.str();
}

}  // namespace colex::obs
