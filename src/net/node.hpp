// One ring node over real TCP sockets: ring-formation handshake, the
// poll-based pulse event loop, and the rt::Transport endpoint the blocking
// algorithm transcriptions (runtime/blocking_algs.hpp) run on — unmodified.
//
// Topology
// --------
// Each ring edge is one full-duplex TCP connection between neighbors: a
// node CONNECTS to its successor's data listener and ACCEPTS its
// predecessor. n=1 degenerates to a self-loop (the node connects to its own
// listener and accepts its own connection — two descriptors, one edge);
// n=2 yields two parallel connections to the same peer, exactly the
// multigraph the simulator's two-edge ring models. Each connection opens
// with a HELLO (wire.hpp) so both ends verify index and ring size.
//
// Port labels
// -----------
// Wiring matches sim::Network / ThreadRing / coro::wire_ring exactly: in
// the oriented base, node i's Port1 attaches to node i+1's Port0. A node's
// local label for the successor edge is therefore Port1, or Port0 when its
// labels are flipped (non-oriented rings) — and, because a link delivers to
// the port it is mounted on, the SAME label indexes both directions of that
// connection: bytes written to the successor connection leave the local
// successor port, bytes read from it arrive on that port.
//
// Event loop
// ----------
// recv()/send() never block: recv pops from the per-port arrival queues,
// send batches a pulse byte on the connection's output tally (flushed at
// wait() and whenever a batch fills). wait() flushes, returns immediately
// if arrivals are already queued (ThreadRing's wait_any contract), else
// reports idle to the coordinator and blocks in poll() over {successor,
// predecessor, control} until pulses arrive, the coordinator broadcasts
// STOP (wait returns false), or the watchdog deadline expires. Quiescence
// probes are answered only from a provably idle, fully flushed state; the
// coordinator's two-round confirmation (coordinator.hpp) does the rest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/flight.hpp"
#include "runtime/blocking_algs.hpp"
#include "runtime/transport.hpp"
#include "sim/types.hpp"

namespace colex::net {

/// Always-on event-loop telemetry (plain counters; the harness folds them
/// into an obs registry post-run when one is attached).
struct EndpointCounters {
  std::uint64_t sent = 0;        ///< pulses sent by the algorithm
  std::uint64_t consumed = 0;    ///< pulses consumed (incl. swallowed)
  std::uint64_t waits = 0;       ///< wait() calls
  std::uint64_t polls = 0;       ///< poll() syscalls in the event loop
  std::uint64_t flushes = 0;     ///< batched-write flushes
  std::uint64_t bytes_rx = 0;    ///< data-plane bytes read
  std::uint64_t bytes_tx = 0;    ///< data-plane bytes written
  std::uint64_t reports = 0;     ///< idle/done reports sent
  std::uint64_t probe_acks = 0;  ///< quiescence probes answered

  EndpointCounters& operator+=(const EndpointCounters& o) {
    sent += o.sent;
    consumed += o.consumed;
    waits += o.waits;
    polls += o.polls;
    flushes += o.flushes;
    bytes_rx += o.bytes_rx;
    bytes_tx += o.bytes_tx;
    reports += o.reports;
    probe_acks += o.probe_acks;
    return *this;
  }
};

// --- Handshake (exposed for the framing tests) ---------------------------

/// Writes the HELLO frame on a freshly connected edge.
bool send_hello(int fd, std::uint32_t sender, std::uint32_t ring_size,
                const Deadline& deadline, std::string* err);

/// Reads exactly one HELLO from `fd` (incremental, deadline-bound) and
/// validates sender/ring size. Never over-reads: pulse bytes follow the
/// HELLO on the same stream.
bool expect_hello(int fd, std::uint32_t want_sender, std::uint32_t ring_size,
                  const Deadline& deadline, std::string* err);

/// Accepts on `listener` until a connection completes the predecessor
/// handshake, and returns it. Ephemeral ports are recycled, so on a busy
/// host a stray connect from an unrelated (possibly dying) process can
/// reach a freshly bound listener first; such a connection fails the HELLO
/// check (EOF, bad magic, wrong sender or ring size) and is dropped — the
/// real predecessor's connect waits behind it in the listener backlog.
/// Only accept failure or deadline expiry is fatal (invalid Fd, `err` set).
Fd accept_predecessor(int listener, std::uint32_t want_sender,
                      std::uint32_t ring_size, const Deadline& deadline,
                      std::string* err, obs::FlightRing* flight = nullptr);

/// The per-node rt::Transport over two ring-edge connections plus the
/// coordinator control connection. Constructed with already-connected,
/// handshaken descriptors (run_ring_node forms them; the framing tests use
/// socketpairs). All descriptors are made non-blocking on construction.
class PulseEndpoint {
 public:
  /// `succ_port` is the LOCAL port label of the successor edge (Port1, or
  /// Port0 under a flip); the predecessor edge gets the opposite label.
  /// `ctl` carries the coordinator protocol; `parser`/`pending` carry over
  /// control bytes already read during formation.
  PulseEndpoint(Fd succ, Fd pred, Fd ctl, sim::Port succ_port,
                Deadline deadline, CtlParser parser = {},
                std::vector<CtlMsg> pending = {},
                obs::FlightRing* flight = nullptr);

  PulseEndpoint(const PulseEndpoint&) = delete;
  PulseEndpoint& operator=(const PulseEndpoint&) = delete;

  // --- rt::Transport surface -------------------------------------------
  bool recv(sim::Port p);
  void send(sim::Port p);
  bool wait();
  bool stopped() const { return stop_; }
  /// Idempotent: closes all descriptors (flushing first on the happy
  /// path); later calls are no-ops.
  void shutdown();

  // --- harness-side ----------------------------------------------------
  /// Post-termination service loop (Algorithm 2): keep draining the ring
  /// edges — swallowing arrivals as consumed, re-reporting `done` counters,
  /// answering probes — until the coordinator broadcasts STOP or the
  /// deadline expires. Mirrors the swallow convention of ThreadRing's
  /// crashed nodes and the executor's terminated nodes, so conservation
  /// (sent == consumed at quiescence) holds on this substrate too.
  void drain_until_stop();

  /// Sends a REPORT with the current state and counters (also invoked
  /// internally at every idle entry).
  bool report();

  /// Flushes every batched pulse byte to the kernel.
  bool flush();

  std::uint64_t sent() const { return counters_.sent; }
  std::uint64_t consumed() const { return counters_.consumed; }
  const EndpointCounters& counters() const { return counters_; }
  /// Non-empty once the endpoint failed (peer EOF mid-election, protocol
  /// violation, watchdog expiry); stop() is implied.
  const std::string& error() const { return error_; }
  int ctl_fd() const { return ctl_.get(); }

 private:
  struct Link {
    Fd fd;
    std::uint64_t out_pending = 0;  ///< batched, unflushed pulse bytes
    bool eof = false;
  };

  bool flush_link(Link& link);
  /// Drains one readable link non-blockingly into the arrival queue (or
  /// `swallow`ing straight into consumed_). False on protocol error.
  bool drain_link(int port_idx, bool swallow);
  /// Drains control bytes; handles STOP/PROBE/unexpected frames.
  bool drain_ctl();
  bool handle_ctl(const CtlMsg& msg);
  void answer_pending_probe();
  void fail(const std::string& what);

  Link links_[2];  ///< indexed by the LOCAL port label they carry
  Fd ctl_;
  Deadline deadline_;
  CtlParser ctl_parser_;
  std::uint64_t queue_[2] = {0, 0};  ///< arrived, unconsumed pulses
  EndpointCounters counters_;
  bool stop_ = false;
  bool done_ = false;  ///< algorithm terminated naturally
  bool have_probe_ = false;
  std::uint64_t probe_round_ = 0;
  bool shut_ = false;
  std::string error_;
  obs::FlightRing* flight_ = nullptr;
};

/// Small copyable Transport handle over a PulseEndpoint — what plugs into
/// rt::TransportPort (which holds its transport by value), mirroring how
/// NodeIo and CoroIo are views into fabric-owned state.
class EndpointIo {
 public:
  explicit EndpointIo(PulseEndpoint& e) : e_(&e) {}
  bool recv(sim::Port p) { return e_->recv(p); }
  void send(sim::Port p) { e_->send(p); }
  bool wait() { return e_->wait(); }
  bool stopped() const { return e_->stopped(); }
  void shutdown() { e_->shutdown(); }

 private:
  PulseEndpoint* e_;
};

static_assert(rt::Transport<EndpointIo>);
static_assert(rt::PulsePort<rt::TransportPort<EndpointIo>>);

/// Everything one node needs to join a ring: identity, algorithm, and
/// where the coordinator listens (always on 127.0.0.1).
struct RingNodeConfig {
  std::uint32_t index = 0;
  std::uint32_t ring_size = 0;
  std::uint64_t id = 0;
  bool flip = false;  ///< port labels mounted against the orientation
  rt::ThreadAlg alg = rt::ThreadAlg::alg2;
  std::uint16_t coordinator_port = 0;
  /// Data-plane listen port. 0 = kernel-assigned ephemeral (the JOIN frame
  /// tells the coordinator); non-zero = deterministic assignment (the
  /// colex-ring CLI uses base_port + index).
  std::uint16_t data_port = 0;
  std::uint64_t timeout_ms = 30'000;
  obs::FlightRing* flight = nullptr;  ///< optional (in-process runs)
};

/// One node's completed run.
struct NodeResult {
  bool ok = false;
  std::string error;
  rt::BlockingOutcome outcome;
  EndpointCounters counters;
};

/// Joins the ring, runs the election, reports the RESULT to the
/// coordinator, and tears down gracefully. Synchronous — call it on a
/// dedicated thread (run_on_sockets) or as a whole process (colex-ring).
NodeResult run_ring_node(const RingNodeConfig& config);

}  // namespace colex::net
