// colex-lint: allow(H001) expect-suppressed(H001) fixture: generated-style fragment kept guard-free on purpose
struct FixtureUnguardedAllowed {
  int value = 0;
};
