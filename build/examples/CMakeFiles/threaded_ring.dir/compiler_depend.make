# Empty compiler generated dependencies file for threaded_ring.
# This may be replaced when dependencies are built.
