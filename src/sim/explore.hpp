// Exhaustive schedule exploration ("model checking" the adversary): for
// small configurations, enumerate EVERY delivery order the asynchronous
// adversary could choose and validate each complete execution.
//
// Two engines share one tree definition (branch on every pending channel,
// in ascending channel order; a leaf is a quiescent execution):
//
//  * snapshot (default) — fork-based DFS. The frontier state is a live
//    Network; each branch forks it with Network::clone() and advances the
//    fork one delivery with deliver_step(). Cost per tree node: one clone
//    plus one delivery (the last branch reuses the parent state in place,
//    so chains cost no clone at all). This is the engine that makes n = 4
//    rings and high-budget fault sweeps exhaustively checkable.
//
//  * replay (legacy) — re-runs the entire schedule prefix from the initial
//    state with ReplayScheduler at every tree node, i.e. O(depth) work per
//    node. Kept behind ExploreOptions::engine for the engine-equivalence
//    test (tests/test_explore_engines.cpp) and as the perf baseline that
//    BENCH_E12.json measures the snapshot engine against.
//
// Both engines visit the same states in the same order and therefore
// produce identical ExploreStats and identical per-leaf outcome sequences.
// For multi-threaded exploration of the same tree see sim/parallel.hpp.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "util/contracts.hpp"

namespace colex::sim {

struct ExploreStats {
  std::uint64_t leaves = 0;      ///< complete (quiescent) executions seen
  std::uint64_t truncated = 0;   ///< subtrees skipped when budget ran out
  std::uint64_t max_depth = 0;   ///< deliveries on the deepest path
  bool exhaustive() const { return truncated == 0; }

  friend bool operator==(const ExploreStats&, const ExploreStats&) = default;
};

/// Telemetry an exploration optionally emits (ExploreOptions::telemetry).
/// Plain data, deliberately obs-agnostic: obs/instrument.hpp knows how to
/// publish it into a metrics registry; a null pointer costs the engines one
/// branch per tree node (the zero-overhead-when-disabled contract).
struct ExploreTelemetry {
  std::uint64_t visits = 0;   ///< tree nodes materialized (budget units)
  std::uint64_t clones = 0;   ///< Network::clone forks taken (snapshot)
  std::uint64_t replays = 0;  ///< full prefix re-runs (replay engine)
  std::uint64_t replay_events = 0;  ///< deliveries replayed across prefixes
  double seconds = 0;               ///< wall time of the exploration
  /// Subtree roots handed to the pool by the parallel explorer (its queue
  /// depth when the breadth-first expansion stopped); 0 for sequential runs.
  std::uint64_t frontier_subtrees = 0;

  double schedules_per_second(const ExploreStats& stats) const {
    return seconds > 0 ? static_cast<double>(stats.leaves) / seconds : 0.0;
  }

  void merge(const ExploreTelemetry& other) {
    visits += other.visits;
    clones += other.clones;
    replays += other.replays;
    replay_events += other.replay_events;
    // seconds/frontier are owned by the coordinating caller, not summed:
    // per-worker wall clocks overlap.
  }
};

enum class ExploreEngine {
  snapshot,  ///< fork the frontier state per branch (fast path)
  replay,    ///< re-run the schedule prefix per tree node (legacy baseline)
};

constexpr const char* to_string(ExploreEngine e) {
  return e == ExploreEngine::snapshot ? "snapshot" : "replay";
}

struct ExploreOptions {
  /// Caps the number of tree nodes visited; exceeding it marks subtrees
  /// truncated. (For the replay engine a node visit is one full replay.)
  std::uint64_t budget = 1'000'000;
  ExploreEngine engine = ExploreEngine::snapshot;
  /// Optional telemetry sink; null (the default) keeps the engines on the
  /// uninstrumented fast path.
  ExploreTelemetry* telemetry = nullptr;
};

namespace detail {

/// Fork-based DFS from the state held in `net` (which must already be
/// started). Consumes `net`: the last branch at every level advances it in
/// place. `depth` is the number of deliveries that produced `net`.
inline void snapshot_explore(
    PulseNetwork& net, std::uint64_t depth, std::uint64_t& budget,
    ExploreStats& stats, const std::function<void(PulseNetwork&)>& on_leaf,
    ExploreTelemetry* telemetry = nullptr) {
  if (budget == 0) {
    ++stats.truncated;
    return;
  }
  --budget;
  if (telemetry) ++telemetry->visits;
  const auto pending = net.pending_channels();
  if (pending.empty()) {
    ++stats.leaves;
    stats.max_depth = std::max(stats.max_depth, depth);
    on_leaf(net);
    return;
  }
  for (std::size_t i = 0; i + 1 < pending.size(); ++i) {
    auto fork = net.clone();
    if (telemetry) ++telemetry->clones;
    fork.deliver_step(pending[i]);
    snapshot_explore(fork, depth + 1, budget, stats, on_leaf, telemetry);
    if (budget == 0) return;
  }
  net.deliver_step(pending.back());
  snapshot_explore(net, depth + 1, budget, stats, on_leaf, telemetry);
}

}  // namespace detail

/// Enumerates every schedule of the network produced by `build` and calls
/// `on_leaf` on each quiescent terminal state.
inline ExploreStats explore_all_schedules(
    const std::function<PulseNetwork()>& build,
    const std::function<void(PulseNetwork&)>& on_leaf,
    const ExploreOptions& options) {
  COLEX_EXPECTS(options.budget > 0);
  ExploreStats stats;
  std::uint64_t budget = options.budget;
  const auto wall_start = std::chrono::steady_clock::now();
  auto stamp_seconds = [&] {
    if (options.telemetry) {
      options.telemetry->seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();
    }
  };

  if (options.engine == ExploreEngine::snapshot) {
    auto net = build();
    net.start_all();
    detail::snapshot_explore(net, 0, budget, stats, on_leaf,
                             options.telemetry);
    stamp_seconds();
    return stats;
  }

  // Legacy replay engine: materialize each tree node by re-running its
  // schedule prefix from scratch.
  std::vector<std::size_t> prefix;
  std::function<void()> recurse = [&]() {
    if (budget == 0) {
      ++stats.truncated;
      return;
    }
    --budget;
    if (options.telemetry) {
      ++options.telemetry->visits;
      ++options.telemetry->replays;
      options.telemetry->replay_events += prefix.size();
    }
    auto net = build();
    ReplayScheduler replay(prefix);
    RunOptions opts;
    opts.max_events = prefix.size();
    net.run(replay, opts);
    COLEX_ASSERT(replay.divergences() == 0);

    std::vector<std::size_t> pending;
    for (std::size_t c = 0; c < net.channel_count(); ++c) {
      if (net.channel_pending(c) > 0) pending.push_back(c);
    }
    if (pending.empty()) {
      ++stats.leaves;
      stats.max_depth =
          std::max(stats.max_depth,
                   static_cast<std::uint64_t>(prefix.size()));
      on_leaf(net);
      return;
    }
    for (const std::size_t c : pending) {
      prefix.push_back(c);
      recurse();
      prefix.pop_back();
      if (budget == 0) return;
    }
  };
  recurse();
  stamp_seconds();
  return stats;
}

/// Budget-only overload (snapshot engine), the drop-in signature the test
/// and bench suite grew up with.
inline ExploreStats explore_all_schedules(
    const std::function<PulseNetwork()>& build,
    const std::function<void(PulseNetwork&)>& on_leaf,
    std::uint64_t budget = 1'000'000) {
  ExploreOptions options;
  options.budget = budget;
  return explore_all_schedules(build, on_leaf, options);
}

}  // namespace colex::sim
