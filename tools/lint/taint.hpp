// Interprocedural obliviousness taint pass (rules O001–O003).
//
// The paper's defining invariant is that a node acts on pulse *presence*
// only — message content must never influence control flow (§2). M001
// catches the read itself inside automaton classes; this pass upgrades it to
// a transitive proof sketch: any value derived from payload content (a
// recv() content read, a wire decoder such as get_u32/decode_result, or a
// call to a function whose return value is so derived) is *tainted*, and a
// tainted value flowing into
//
//   O001  a branch condition (`if`/`switch`),
//   O002  a loop bound (`for` condition / `while`), or
//   O003  a send-family call argument (a content-dependent send count)
//
// is reported — but only in the content-oblivious runtime dirs (src/co,
// src/colib, src/runtime, src/coro). The sanctioned decode modules
// (src/net, src/obs) exist precisely to turn wire bytes into control
// decisions for the *fabric* (framing, quiescence), so they are exempt.
//
// Precision notes: taint propagates through `x = expr` assignments within a
// function (to a fixpoint) and through return values across functions (the
// tainted-returning set, a project-wide fixpoint over the symbol table);
// parameter taint is not tracked — flows through a parameter need a
// justified allow or a refactor, which for this tree has so far always been
// the better outcome.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lint/rules.hpp"
#include "lint/symbols.hpp"

namespace colex::lint {

/// Global taint facts, built once (single-threaded) before the per-file
/// sink scans fan out.
struct TaintContext {
  /// Names of functions whose return value derives from payload content.
  std::set<std::string> tainted_returning;
};

TaintContext build_taint_context(const std::vector<SourceFile>& files,
                                 const ProjectIndex& project,
                                 const SymbolTable& symbols);

/// Scans one file's functions for O001–O003 sinks. Only fires in the
/// checked dirs; safe to run from the parallel per-file stage.
void run_taint_rules_on_file(const SourceFile& file, const FileIndex& index,
                             const TaintContext& ctx,
                             std::vector<Finding>& out);

}  // namespace colex::lint
