// Determinism of the parallel explorer (sim/parallel.hpp): stats and
// aggregated leaf outcomes must be a pure function of the configuration,
// independent of the worker count — 1, 2, and 8 workers bit-identical.
// ci.sh runs this test under TSan, which checks the other half of the
// contract: no data races while the subtrees run concurrently.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "co/alg2.hpp"
#include "co/election.hpp"
#include "sim/explore.hpp"
#include "sim/network.hpp"
#include "sim/parallel.hpp"

namespace colex::co {
namespace {

using Leaves = std::vector<std::string>;

std::function<sim::PulseNetwork()> alg2_ring(
    const std::vector<std::uint64_t>& ids) {
  return [ids] {
    auto net = sim::PulseNetwork::ring(ids.size());
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      net.set_automaton(v, std::make_unique<Alg2Terminating>(ids[v]));
    }
    return net;
  };
}

std::string leaf_signature(sim::PulseNetwork& net) {
  std::ostringstream os;
  os << net.total_sent();
  for (sim::NodeId v = 0; v < net.size(); ++v) {
    os << '|' << to_string(net.automaton_as<Alg2Terminating>(v).role());
  }
  return os.str();
}

// NOTE: gtest assertions are not thread-safe, so the on_leaf callback only
// appends to its own Acc; all assertions happen on the main thread.
struct ParallelRun {
  sim::ExploreStats stats;
  Leaves leaves;
};

ParallelRun run_parallel(const std::function<sim::PulseNetwork()>& build,
                         std::uint64_t budget, std::size_t workers,
                         std::size_t min_subtrees) {
  ParallelRun run;
  sim::ParallelExploreOptions options;
  options.budget = budget;
  options.workers = workers;
  options.min_subtrees = min_subtrees;
  run.stats = sim::parallel_explore_all_schedules<Leaves>(
      build,
      [](Leaves& acc, sim::PulseNetwork& net) {
        acc.push_back(leaf_signature(net));
      },
      [](Leaves& into, const Leaves& from) {
        into.insert(into.end(), from.begin(), from.end());
      },
      run.leaves, options);
  return run;
}

TEST(ParallelExplore, WorkerCountDoesNotChangeTheResult) {
  const auto build = alg2_ring({2, 3, 1});
  const auto reference = run_parallel(build, 4'000'000, 1, 16);
  EXPECT_TRUE(reference.stats.exhaustive());
  EXPECT_GT(reference.stats.leaves, 1u);
  for (const std::size_t workers : {2u, 8u}) {
    const auto run = run_parallel(build, 4'000'000, workers, 16);
    EXPECT_EQ(run.stats, reference.stats) << workers << " workers";
    EXPECT_EQ(run.leaves, reference.leaves) << workers << " workers";
  }
}

TEST(ParallelExplore, TruncatedRunsAreStillWorkerCountDeterministic) {
  // Budget far below the tree size: the per-subtree quota split must make
  // even the truncation pattern independent of the worker count.
  const auto build = alg2_ring({2, 3, 1});
  const auto reference = run_parallel(build, 2'000, 1, 16);
  EXPECT_GT(reference.stats.truncated, 0u);
  for (const std::size_t workers : {2u, 8u}) {
    const auto run = run_parallel(build, 2'000, workers, 16);
    EXPECT_EQ(run.stats, reference.stats) << workers << " workers";
    EXPECT_EQ(run.leaves, reference.leaves) << workers << " workers";
  }
}

TEST(ParallelExplore, MatchesTheSequentialEngineLeafForLeaf) {
  // Leaf *order* differs (BFS prefix + per-subtree DFS vs pure DFS), but an
  // exhaustive run must visit exactly the same set of terminal states.
  const auto build = alg2_ring({1, 2});
  Leaves sequential;
  const auto seq_stats = sim::explore_all_schedules(
      build,
      [&sequential](sim::PulseNetwork& net) {
        sequential.push_back(leaf_signature(net));
      },
      2'000'000);
  ASSERT_TRUE(seq_stats.exhaustive());

  auto parallel = run_parallel(build, 2'000'000, 8, 16);
  ASSERT_TRUE(parallel.stats.exhaustive());
  EXPECT_EQ(parallel.stats.leaves, seq_stats.leaves);
  EXPECT_EQ(parallel.stats.max_depth, seq_stats.max_depth);

  std::sort(sequential.begin(), sequential.end());
  std::sort(parallel.leaves.begin(), parallel.leaves.end());
  EXPECT_EQ(parallel.leaves, sequential);
}

TEST(ParallelExplore, SmallTreeFitsEntirelyIntoTheFrontierExpansion) {
  // n = 1 has a single chain of forced deliveries: the BFS expansion never
  // reaches min_subtrees and must handle the tree draining on its own.
  const auto build = alg2_ring({3});
  const auto run = run_parallel(build, 100'000, 8, 64);
  EXPECT_TRUE(run.stats.exhaustive());
  EXPECT_EQ(run.stats.leaves, 1u);
  ASSERT_EQ(run.leaves.size(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t workers : {1u, 2u, 8u}) {
    std::vector<int> hits(1000, 0);
    sim::parallel_for(hits.size(), workers,
                      [&hits](std::size_t i) { ++hits[i]; });
    EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                            [](int h) { return h == 1; }))
        << workers << " workers";
  }
}

}  // namespace
}  // namespace colex::co
