#include "lb/solitude.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/contracts.hpp"

namespace colex::lb {

SolitudePattern solitude_pattern(const AutomatonFactory& factory,
                                 std::uint64_t id, std::uint64_t max_events) {
  SolitudePattern pattern;
  pattern.id = id;

  auto net = sim::PulseNetwork::ring(1);
  net.set_automaton(0, factory(id));

  sim::SolitudeScheduler scheduler;
  sim::RunOptions opts;
  opts.max_events = max_events;
  opts.on_deliver = [&pattern](sim::NodeId, sim::Port, sim::Direction d) {
    pattern.bits.push_back(d == sim::Direction::cw ? '0' : '1');
  };
  const auto report = net.run(scheduler, opts);
  pattern.terminated = report.all_terminated;
  pattern.quiescent = report.quiescent;
  return pattern;
}

std::vector<SolitudePattern> solitude_patterns(const AutomatonFactory& factory,
                                               std::uint64_t lo,
                                               std::uint64_t hi,
                                               std::uint64_t max_events) {
  COLEX_EXPECTS(lo <= hi);
  std::vector<SolitudePattern> out;
  out.reserve(hi - lo + 1);
  for (std::uint64_t id = lo; id <= hi; ++id) {
    out.push_back(solitude_pattern(factory, id, max_events));
  }
  return out;
}

bool all_patterns_distinct(const std::vector<SolitudePattern>& patterns) {
  std::unordered_set<std::string> seen;
  seen.reserve(patterns.size());
  for (const auto& p : patterns) {
    if (!seen.insert(p.bits).second) return false;
  }
  return true;
}

std::size_t common_prefix(const std::string& a, const std::string& b) {
  const std::size_t limit = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < limit && a[i] == b[i]) ++i;
  return i;
}

PrefixGroup best_prefix_group(const std::vector<SolitudePattern>& patterns,
                              std::size_t n) {
  COLEX_EXPECTS(n >= 1 && patterns.size() >= n);
  // Any n strings sharing a prefix are contiguous once sorted, so the best
  // group is a window of n consecutive sorted strings; its shared prefix is
  // the minimum of the adjacent-pair LCPs inside the window.
  std::vector<const SolitudePattern*> sorted;
  sorted.reserve(patterns.size());
  for (const auto& p : patterns) sorted.push_back(&p);
  std::sort(sorted.begin(), sorted.end(),
            [](const SolitudePattern* a, const SolitudePattern* b) {
              return a->bits < b->bits;
            });

  std::vector<std::size_t> adjacent_lcp(sorted.size());
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    adjacent_lcp[i] = common_prefix(sorted[i - 1]->bits, sorted[i]->bits);
  }

  PrefixGroup best;
  for (std::size_t start = 0; start + n <= sorted.size(); ++start) {
    std::size_t lcp = sorted[start]->bits.size();
    for (std::size_t i = start + 1; i < start + n; ++i) {
      lcp = std::min(lcp, adjacent_lcp[i]);
    }
    if (best.ids.empty() || lcp > best.prefix_length) {
      best.prefix_length = lcp;
      best.ids.clear();
      for (std::size_t i = start; i < start + n; ++i) {
        best.ids.push_back(sorted[i]->id);
      }
    }
  }
  return best;
}

TwoNodeObservation two_node_observation(const AutomatonFactory& factory,
                                        std::uint64_t id_a,
                                        std::uint64_t id_b,
                                        std::uint64_t max_events) {
  TwoNodeObservation out;
  auto net = sim::PulseNetwork::ring(2);
  net.set_automaton(0, factory(id_a));
  net.set_automaton(1, factory(id_b));
  sim::SolitudeScheduler scheduler;
  sim::RunOptions opts;
  opts.max_events = max_events;
  opts.on_deliver = [&out](sim::NodeId v, sim::Port, sim::Direction d) {
    (v == 0 ? out.observed_a : out.observed_b)
        .push_back(d == sim::Direction::cw ? '0' : '1');
  };
  const auto report = net.run(scheduler, opts);
  out.quiescent = report.quiescent;
  out.hit_event_limit = report.hit_event_limit;
  return out;
}

}  // namespace colex::lb
