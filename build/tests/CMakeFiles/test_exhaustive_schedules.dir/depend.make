# Empty dependencies file for test_exhaustive_schedules.
# This may be replaced when dependencies are built.
