// Fuzz campaigns: generate -> check -> shrink over a contiguous block of
// seeds, with summary statistics for reports. A campaign is a pure function
// of its options (seeds drive everything), so a CI smoke run and a local
// overnight run differ only in the seed count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "qa/generators.hpp"
#include "qa/properties.hpp"
#include "qa/shrink.hpp"
#include "util/stats.hpp"

namespace colex::qa {

struct CampaignOptions {
  std::uint64_t seed_start = 1;
  std::size_t cases = 100;
  GeneratorOptions generator;
  PropertyOptions properties;
  bool shrink = true;
  ShrinkOptions shrink_options;
  /// Stop the campaign after this many counterexamples (0 = never stop).
  std::size_t max_failures = 1;
};

struct Counterexample {
  std::uint64_t seed = 0;
  FuzzCase original;
  FuzzCase minimal;       ///< == original when shrinking is disabled
  CaseResult result;      ///< check_case outcome on `minimal`
  ShrinkStats shrink_stats;
};

struct CampaignReport {
  std::size_t cases_run = 0;
  std::size_t clean_cases = 0;
  std::size_t faulty_cases = 0;
  std::vector<Counterexample> counterexamples;
  util::Summary pulses;      ///< pulses sent per case
  util::Summary deliveries;  ///< deliveries per case

  bool ok() const { return counterexamples.empty(); }
};

/// Runs the campaign. `progress`, if set, is invoked after every case with
/// (seed, result) — CLI front-ends use it for live output.
CampaignReport run_campaign(
    const CampaignOptions& options,
    const std::function<void(std::uint64_t, const CaseResult&)>& progress = {});

}  // namespace colex::qa
