// Fixture: T001 — unpaired atomic memory orders on class members.
//
// Member names are fixture-unique because the rule aggregates uses by
// member name across the whole scanned tree.
#include <atomic>

namespace fixture_t001 {

// A release store nothing ever acquires: the publish ordering is dead.
class LonelyPublisher {
 public:
  void publish(int v) {
    staged_ = v;
    t001_flag_a_.store(1, std::memory_order_release);  // colex-lint: expect(T001)
  }
  int peek() const { return t001_flag_a_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int> t001_flag_a_{0};
  int staged_ = 0;
};

// An acquire load nothing ever releases into: the acquire orders nothing.
class LonelyConsumer {
 public:
  int consume() {
    return t001_flag_b_.load(std::memory_order_acquire);  // colex-lint: expect(T001)
  }
  void poke() { t001_flag_b_.store(1, std::memory_order_relaxed); }

 private:
  std::atomic<int> t001_flag_b_{0};
};

class WaivedPublisher {
 public:
  void mark() {
    t001_flag_c_.store(1, std::memory_order_release);  // colex-lint: allow(T001) expect-suppressed(T001) fixture: stands in for a flag acquired by a separate binary the linter cannot see
  }

 private:
  std::atomic<int> t001_flag_c_{0};
};

}  // namespace fixture_t001
