// Node layout and ring wiring for the coroutine runtime.
//
// Each ring node is one cache-line-sized block: its two incoming pulse
// channels, the scheduler state word, the wiring (peer index + peer port
// label per port), and the node coroutine's handle. The whole node fits in
// (and is aligned to) a single cache line, so at n=10^6 the node table is
// 64MB of contiguous memory with zero per-node allocation, and two nodes
// never share a line (no false sharing between neighbors' send paths and
// an unrelated node's scheduler word).
//
// Wiring is identical to ThreadRing / sim::Network<P>::ring: edge i
// attaches node i's Port1 to node i+1's Port0 in the oriented base, with
// optional per-node port-label flips for non-oriented rings.
#pragma once

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <vector>

#include "coro/spsc.hpp"
#include "obs/phase.hpp"
#include "sim/types.hpp"
#include "util/contracts.hpp"

namespace colex::coro {

/// Scheduler state of a node coroutine. Transitions:
///   ready -> running        (a worker popped it and resumes it)
///   running -> parked       (wait_any found both channels empty)
///   running -> done         (the coroutine returned)
///   parked -> ready         (a producer's CAS claimed the wakeup; exactly
///                            the claimant pushes the node to a deque)
///   parked -> running       (the parking node reclaimed itself: a pulse
///                            landed between its empty poll and the CAS)
/// `parked -> ready` is the only cross-thread transition and is a CAS, so
/// a wakeup is claimed exactly once no matter how many pulses race in —
/// later pulses find READY and coalesce into the pending wakeup (batching).
enum class NodeState : std::uint32_t { ready = 0, running, parked, done };

struct alignas(kCacheLine) CoroNode {
  PulseChannel in[2];  ///< incoming pulses, indexed by this node's port label
  std::atomic<NodeState> state{NodeState::ready};
  std::uint32_t peer[2] = {0, 0};        ///< node at the far end of port p
  std::uint8_t peer_port[2] = {0, 0};    ///< port label at that peer
  /// Current algorithm phase (obs::Phase index), published by the node
  /// coroutine at transitions — a relaxed store on the node's own line;
  /// read by stall dumps and the per-phase distribution gauges.
  std::atomic<std::uint8_t> phase{0};
  std::coroutine_handle<> handle{};      ///< set once before the run starts

  bool has_pending(std::memory_order order = std::memory_order_seq_cst) const {
    return in[0].pending(order) != 0 || in[1].pending(order) != 0;
  }
};

static_assert(sizeof(CoroNode) == kCacheLine,
              "a node must pack into one cache line");

/// Builds the node table for an n-ring with the given per-node port flips
/// (empty = oriented).
inline std::vector<CoroNode> wire_ring(std::size_t n,
                                       const std::vector<bool>& port_flips) {
  COLEX_EXPECTS(n >= 1);
  COLEX_EXPECTS(port_flips.empty() || port_flips.size() == n);
  COLEX_EXPECTS(n <= UINT32_MAX);
  std::vector<CoroNode> nodes(n);
  auto flipped = [&port_flips](std::size_t v) {
    return !port_flips.empty() && port_flips[v];
  };
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = (i + 1) % n;
    const sim::Port from = flipped(i) ? sim::Port::p0 : sim::Port::p1;
    const sim::Port to = flipped(j) ? sim::Port::p1 : sim::Port::p0;
    nodes[i].peer[sim::index(from)] = static_cast<std::uint32_t>(j);
    nodes[i].peer_port[sim::index(from)] =
        static_cast<std::uint8_t>(sim::index(to));
    nodes[j].peer[sim::index(to)] = static_cast<std::uint32_t>(i);
    nodes[j].peer_port[sim::index(to)] =
        static_cast<std::uint8_t>(sim::index(from));
  }
  return nodes;
}

}  // namespace colex::coro
