// Fixture: D002 — iteration over unordered containers.
#include <string>
#include <unordered_map>
#include <unordered_set>

struct MetricsSink {
  std::unordered_map<std::string, int> counters_;
  std::unordered_set<int> seen_;

  int total() const {
    int sum = 0;
    for (const auto& kv : counters_) {  // colex-lint: expect(D002)
      sum += kv.second;
    }
    return sum;
  }

  bool any() const {
    auto it = seen_.begin();  // colex-lint: allow(D002) expect-suppressed(D002) fixture: only emptiness is observed, never order
    return it != seen_.end();
  }

  // Insert-only use of an unordered container is fine.
  void record(int v) { seen_.insert(v); }
};
