file(REMOVE_RECURSE
  "CMakeFiles/colex_baselines.dir/chang_roberts.cpp.o"
  "CMakeFiles/colex_baselines.dir/chang_roberts.cpp.o.d"
  "CMakeFiles/colex_baselines.dir/franklin.cpp.o"
  "CMakeFiles/colex_baselines.dir/franklin.cpp.o.d"
  "CMakeFiles/colex_baselines.dir/hirschberg_sinclair.cpp.o"
  "CMakeFiles/colex_baselines.dir/hirschberg_sinclair.cpp.o.d"
  "CMakeFiles/colex_baselines.dir/itai_rodeh.cpp.o"
  "CMakeFiles/colex_baselines.dir/itai_rodeh.cpp.o.d"
  "CMakeFiles/colex_baselines.dir/lelann.cpp.o"
  "CMakeFiles/colex_baselines.dir/lelann.cpp.o.d"
  "CMakeFiles/colex_baselines.dir/peterson.cpp.o"
  "CMakeFiles/colex_baselines.dir/peterson.cpp.o.d"
  "libcolex_baselines.a"
  "libcolex_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colex_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
