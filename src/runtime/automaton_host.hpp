// Runs arbitrary event-driven pulse automata (the same objects the discrete
// simulator hosts) on real OS threads: one thread per node, reacting
// whenever a pulse lands on one of its ports. Because sim::Context is an
// abstract interface, the exact same algorithm objects — Algorithm 1/2/3,
// the replication adapter, the token bus, even the full Corollary 5
// composition — execute unmodified on genuine asynchrony.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "runtime/thread_ring.hpp"
#include "sim/network.hpp"

namespace colex::rt {

/// Builds the automaton for ring position v.
using HostFactory =
    std::function<std::unique_ptr<sim::PulseAutomaton>(sim::NodeId v)>;

struct HostRunResult {
  /// The automata after the run, for state extraction (index = ring
  /// position). Typed access via dynamic_cast, as with the simulator.
  std::vector<std::unique_ptr<sim::PulseAutomaton>> automata;
  std::uint64_t pulses = 0;
  bool completed = false;       ///< natural termination or quiescence
  bool all_terminated = false;  ///< every automaton reached terminated()
};

/// Spawns one thread per node and runs the automata until every node
/// terminates, or the fabric reaches quiescence (detected by the harness
/// monitor), or `timeout_ms` expires.
HostRunResult run_automata_on_threads(std::size_t n,
                                      const std::vector<bool>& port_flips,
                                      const HostFactory& factory,
                                      std::uint64_t timeout_ms = 30'000);

}  // namespace colex::rt
