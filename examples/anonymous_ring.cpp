// Anonymous rings (Algorithm 4 + Theorem 3): nodes have no IDs, only
// private randomness. Each samples an ID from a geometric-length bit string
// and the ring then runs Algorithm 3; with high probability the maximal
// sample is unique and a single leader emerges (with a consistent
// orientation). Repeats many trials and reports the success rate.
//
//   ./examples/anonymous_ring [n] [c] [trials] [seed]
#include <cstdlib>
#include <iostream>

#include "co/election.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace colex;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const double c = argc > 2 ? std::strtod(argv[2], nullptr) : 2.0;
  const int trials = argc > 3 ? std::atoi(argv[3]) : 25;
  const std::uint64_t seed0 = argc > 4 ? std::strtoull(argv[4], nullptr, 10)
                                       : 1;
  if (n == 0 || c <= 0.0 || trials <= 0) {
    std::cerr << "usage: anonymous_ring [n>0] [c>0] [trials>0] [seed]\n";
    return 1;
  }

  std::cout << "Anonymous-ring election (Theorem 3), n = " << n
            << ", c = " << c << ", " << trials << " trials\n\n";

  int unique_max = 0, elected = 0, skipped = 0;
  std::uint64_t max_pulses = 0;
  util::Table table({"trial", "IDmax sampled", "unique max", "leader",
                     "oriented", "pulses"});
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(t);
    // Pre-check the sampled IDs: complexity is n(2*IDmax+1), so skip the
    // rare astronomically expensive draws to keep the demo snappy.
    std::uint64_t sampled_max = 0;
    for (const auto& s : co::sample_ids(n, c, seed)) {
      sampled_max = std::max(sampled_max, s.id);
    }
    if (sampled_max > 200'000) {
      ++skipped;
      continue;
    }

    util::Xoshiro256StarStar rng(seed * 31);
    std::vector<bool> flips(n);
    for (std::size_t v = 0; v < n; ++v) flips[v] = rng.bernoulli(0.5);
    sim::RandomScheduler scheduler(seed);
    const auto result = co::anonymous_election(n, flips, c, seed, scheduler);

    const bool ok = result.election.valid_election();
    if (result.sampled_unique_max) ++unique_max;
    if (ok) ++elected;
    max_pulses = std::max(max_pulses, result.election.pulses);
    table.add_row({util::Table::num(static_cast<std::uint64_t>(t)),
                   util::Table::num(sampled_max),
                   result.sampled_unique_max ? "yes" : "no",
                   ok ? "unique" : "none/multiple",
                   result.election.orientation_consistent ? "yes" : "no",
                   util::Table::num(result.election.pulses)});
  }
  table.print(std::cout);

  std::cout << "\nunique-max trials : " << unique_max << "/"
            << trials - skipped << " (election succeeds exactly on these)\n";
  std::cout << "elected trials    : " << elected << "\n";
  std::cout << "skipped (huge ID) : " << skipped << "\n";
  std::cout << "max pulses seen   : " << max_pulses << "\n";
  return unique_max == elected ? 0 : 1;
}
