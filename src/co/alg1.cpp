#include "co/alg1.hpp"

#include "util/contracts.hpp"

namespace colex::co {

Alg1Stabilizing::Alg1Stabilizing(std::uint64_t id) : id_(id) {
  COLEX_EXPECTS(id >= 1);
}

void Alg1Stabilizing::start(sim::PulseContext& ctx) {
  send_cw(ctx, counters_);  // line 1
}

void Alg1Stabilizing::react(sim::PulseContext& ctx) {
  // Lines 2-8: consume every available CW pulse; absorb the one that makes
  // rho_cw equal the own ID, relay all others.
  while (recv_cw(ctx, counters_)) {
    if (counters_.rho_cw == id_) {
      role_ = Role::leader;
    } else {
      role_ = Role::non_leader;
      send_cw(ctx, counters_);
    }
  }
}

}  // namespace colex::co
