// Fixture: M003 — content smuggled into the pulse model.
namespace fixture {

struct Pulse {  // colex-lint: expect(M003)
  int smuggled_bit = 0;
};

struct Frame {
  int payload = 0;
};

template <class P>
struct Network {};

using ContentNet = Network<Frame>;  // colex-lint: expect(M003)
using ShimNet = Network<Frame>;  // colex-lint: allow(M003) expect-suppressed(M003) fixture: instrumentation-only overlay network
using PulseNet = Network<Pulse>;  // payload 'Pulse' is the model: allowed

}  // namespace fixture
