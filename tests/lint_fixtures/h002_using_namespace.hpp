// Fixture: H002 — using-directives in headers.
#pragma once

namespace fixture_h002 {
inline int answer() { return 42; }
}  // namespace fixture_h002

using namespace fixture_h002;  // colex-lint: expect(H002)

namespace fixture_shim {
using namespace fixture_h002;  // colex-lint: allow(H002) expect-suppressed(H002) fixture: transitional shim namespace
}  // namespace fixture_shim
