// Port conventions for algorithms on *oriented* rings (paper §2):
// Port1 is the CW port. CW pulses are sent from CW ports and arrive at CCW
// ports, so sendCW transmits on Port1 while recvCW reads the Port0 queue.
#pragma once

#include "sim/network.hpp"
#include "sim/types.hpp"

namespace colex::co {

inline constexpr sim::Port kCwPort = sim::Port::p1;   // sendCW() port
inline constexpr sim::Port kCcwPort = sim::Port::p0;  // sendCCW() port

/// The rho/sigma counters of paper §3, maintained by the send/recv wrappers.
struct PulseCounters {
  std::uint64_t rho_cw = 0;    ///< received CW pulses
  std::uint64_t sigma_cw = 0;  ///< sent CW pulses
  std::uint64_t rho_ccw = 0;
  std::uint64_t sigma_ccw = 0;
};

/// sendCW(): one pulse over the CW channel; updates sigma_cw.
inline void send_cw(sim::PulseContext& ctx, PulseCounters& k) {
  ctx.send(kCwPort);
  ++k.sigma_cw;
}

/// recvCW(): consume one pulse from the CW incoming queue if available;
/// updates rho_cw. Returns false when the queue is empty (the paper's
/// "returns 0").
inline bool recv_cw(sim::PulseContext& ctx, PulseCounters& k) {
  if (!ctx.recv_pulse(kCcwPort)) return false;
  ++k.rho_cw;
  return true;
}

inline void send_ccw(sim::PulseContext& ctx, PulseCounters& k) {
  ctx.send(kCcwPort);
  ++k.sigma_ccw;
}

inline bool recv_ccw(sim::PulseContext& ctx, PulseCounters& k) {
  if (!ctx.recv_pulse(kCwPort)) return false;
  ++k.rho_ccw;
  return true;
}

}  // namespace colex::co
