// The colex-lint rule catalog (see DESIGN.md §8 for the rationale).
//
// Families:
//   D (determinism)       — D001 banned nondeterminism sources,
//                           D002 unordered-container iteration,
//                           D003 mutable function-local statics
//   M (model conformance) — M001 payload-content reads in automaton code,
//                           M002 neighbor/global network state access,
//                           M003 non-empty Pulse payload / content-carrying
//                                instantiations in content-oblivious code
//   C (clone completeness)— C001 clone()/copy path missing a data member
//   H (hygiene)           — H001 header without include guard,
//                           H002 `using namespace` in a header
#pragma once

#include <string>
#include <vector>

#include "lint/classes.hpp"
#include "lint/source.hpp"

namespace colex::lint {

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
};

struct RuleInfo {
  std::string id;
  std::string summary;
};

/// Stable catalog, ordered by rule id (for --list-rules and the docs).
std::vector<RuleInfo> rule_catalog();

/// Runs every rule over the project. Returned findings are pre-suppression
/// (the driver applies allow markers) and sorted by (file, line, rule).
std::vector<Finding> run_rules(const std::vector<SourceFile>& files,
                               const ProjectIndex& project);

}  // namespace colex::lint
