# Empty compiler generated dependencies file for bench_e9_nonunique.
# This may be replaced when dependencies are built.
