// Tests for the coroutine event-loop runtime (src/coro): the same template
// transcriptions ThreadRing runs must produce identical elections — exact
// Theorem 1 / Corollary 13 pulse counts — when executed as coroutines on a
// work-stealing executor, from n=1 self-loops up to a 10^5-node smoke. The
// lock-free building blocks (SPSC ring, pulse channels, Chase-Lev deque)
// get direct unit and race coverage, which is what the TSan CI stage runs.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "co/election.hpp"
#include "coro/deque.hpp"
#include "coro/executor.hpp"
#include "coro/ring.hpp"
#include "coro/run.hpp"
#include "coro/spsc.hpp"
#include "helpers.hpp"

namespace colex::coro {
namespace {

// --- SPSC ring buffer ------------------------------------------------------

TEST(SpscRing, FillDrainAndWrapAround) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_TRUE(ring.empty());
  for (int round = 0; round < 5; ++round) {  // wrap the indices repeatedly
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(round * 10 + i));
    int overflow = -1;
    EXPECT_FALSE(ring.try_push(99));  // full
    for (int i = 0; i < 4; ++i) {
      int out = -1;
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, round * 10 + i);  // FIFO across the wrap boundary
    }
    EXPECT_FALSE(ring.try_pop(overflow));  // empty again
  }
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
}

TEST(SpscRing, TwoThreadHandoffDeliversEverythingInOrder) {
  // The race TSan cares about: producer and consumer on distinct threads,
  // ring deliberately small so full/empty edges are exercised constantly.
  constexpr std::uint64_t kItems = 20'000;
  SpscRing<std::uint64_t> ring(8);
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  while (expected < kItems) {
    std::uint64_t out = 0;
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);  // order preserved, nothing lost or duped
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// --- Pulse channels --------------------------------------------------------

TEST(PulseChannel, ProduceConsumeCounts) {
  PulseChannel ch;
  EXPECT_EQ(ch.pending(), 0u);
  EXPECT_FALSE(ch.try_consume());
  ch.produce();
  ch.produce();
  EXPECT_EQ(ch.pending(), 2u);
  EXPECT_TRUE(ch.try_consume());
  EXPECT_TRUE(ch.try_consume());
  EXPECT_FALSE(ch.try_consume());
  EXPECT_EQ(ch.pending(), 0u);
}

TEST(PulseChannel, ConcurrentProducerNeverLosesAPulse) {
  PulseChannel ch;
  constexpr std::uint64_t kPulses = 20'000;
  std::thread producer([&ch] {
    for (std::uint64_t i = 0; i < kPulses; ++i) ch.produce();
  });
  std::uint64_t consumed = 0;
  while (consumed < kPulses) {
    if (ch.try_consume()) {
      ++consumed;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(ch.pending(), 0u);
}

// --- Chase-Lev deque -------------------------------------------------------

TEST(WorkDeque, OwnerLifoThiefFifo) {
  WorkDeque d(8);
  for (std::uint32_t v = 0; v < 4; ++v) d.push(v);
  EXPECT_EQ(d.size(), 4u);
  std::uint32_t out = 0;
  ASSERT_TRUE(d.pop(out));
  EXPECT_EQ(out, 3u);  // owner takes the newest
  ASSERT_TRUE(d.steal(out));
  EXPECT_EQ(out, 0u);  // thief takes the oldest
  ASSERT_TRUE(d.pop(out));
  EXPECT_EQ(out, 2u);
  ASSERT_TRUE(d.steal(out));
  EXPECT_EQ(out, 1u);
  EXPECT_FALSE(d.pop(out));
  EXPECT_FALSE(d.steal(out));
}

TEST(WorkDeque, StealStressEveryEntryClaimedExactlyOnce) {
  // Owner pushes and pops while two thieves hammer steal(): every pushed
  // index must be claimed exactly once across the three threads. This is
  // the pop-vs-steal last-entry race that decides executor correctness.
  constexpr std::uint32_t kEntries = 20'000;
  WorkDeque d(kEntries);
  std::vector<std::atomic<std::uint32_t>> claimed(kEntries);
  std::atomic<bool> done{false};
  auto thief = [&] {
    std::uint32_t v = 0;
    while (!done.load(std::memory_order_acquire)) {
      if (!d.steal(v)) {
        std::this_thread::yield();
        continue;
      }
      claimed[v].fetch_add(1, std::memory_order_relaxed);
    }
    while (d.steal(v)) claimed[v].fetch_add(1, std::memory_order_relaxed);
  };
  std::thread t1(thief), t2(thief);
  std::uint32_t v = 0;
  for (std::uint32_t i = 0; i < kEntries; ++i) {
    d.push(i);
    if ((i & 3u) == 0 && d.pop(v)) {  // owner competes at the bottom
      claimed[v].fetch_add(1, std::memory_order_relaxed);
    }
  }
  while (d.pop(v)) claimed[v].fetch_add(1, std::memory_order_relaxed);
  done.store(true, std::memory_order_release);
  t1.join();
  t2.join();
  for (std::uint32_t i = 0; i < kEntries; ++i) {
    ASSERT_EQ(claimed[i].load(), 1u) << "entry " << i;
  }
}

TEST(YieldQueue, FifoOrder) {
  YieldQueue q(4);
  EXPECT_TRUE(q.empty());
  q.push(7);
  q.push(8);
  q.push(9);
  std::uint32_t out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 7u);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 8u);
  q.push(10);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 9u);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 10u);
  EXPECT_FALSE(q.pop(out));
}

// --- Node table ------------------------------------------------------------

TEST(CoroRing, NodePacksIntoOneCacheLine) {
  EXPECT_EQ(sizeof(CoroNode), kCacheLine);
  EXPECT_EQ(alignof(CoroNode), kCacheLine);
}

TEST(CoroRing, WiringMatchesThreadRing) {
  // Edge i: node i's Port1 attaches to node i+1's Port0 (oriented base).
  const auto nodes = wire_ring(3, {});
  EXPECT_EQ(nodes[0].peer[1], 1u);
  EXPECT_EQ(nodes[0].peer_port[1], 0u);
  EXPECT_EQ(nodes[1].peer[0], 0u);
  EXPECT_EQ(nodes[2].peer[1], 0u);  // wraps
  // A flipped node swaps its own labels, exactly like ThreadRing.
  const auto flipped = wire_ring(3, {false, true, false});
  EXPECT_EQ(flipped[0].peer[1], 1u);
  EXPECT_EQ(flipped[0].peer_port[1], 1u);  // node 1 receives on its p1
}

// --- Elections on the executor --------------------------------------------

TEST(CoroAlg2, MatchesTheorem1Exactly) {
  const std::vector<std::uint64_t> ids{6, 11, 3, 9, 1, 7};
  const auto result = run_on_coro(ids, {}, rt::ThreadAlg::alg2);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.pulses, co::theorem1_pulses(ids.size(), 11));
  EXPECT_EQ(result.leader_count, 1u);
  ASSERT_TRUE(result.leader.has_value());
  EXPECT_EQ(*result.leader, 1u);
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    const auto& out = result.outcomes[v];
    EXPECT_TRUE(out.terminated) << v;
    EXPECT_FALSE(out.stopped) << v;
    EXPECT_EQ(out.counters.rho_cw, 11u) << v;
    EXPECT_EQ(out.counters.rho_ccw, 12u) << v;
  }
}

TEST(CoroAlg2, SmallRingsExactAcrossSizes) {
  // n in {1, 2, 3} with dense ids: pulses == n(2n + 1) (Theorem 1).
  for (std::size_t n = 1; n <= 3; ++n) {
    const auto ids = test::shuffled(test::dense_ids(n), n);
    const auto result = run_on_coro(ids, {}, rt::ThreadAlg::alg2);
    ASSERT_TRUE(result.completed) << n;
    EXPECT_EQ(result.pulses, co::theorem1_pulses(n, n)) << n;
    EXPECT_EQ(result.leader_count, 1u) << n;
  }
}

TEST(CoroAlg2, MidSizeRingExact) {
  constexpr std::size_t kN = 257;
  const auto ids = test::shuffled(test::dense_ids(kN), 7);
  const auto result = run_on_coro(ids, {}, rt::ThreadAlg::alg2);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.pulses, co::theorem1_pulses(kN, kN));
  EXPECT_EQ(result.leader_count, 1u);
}

TEST(CoroAlg2, MultiWorkerStaysExact) {
  constexpr std::size_t kN = 257;
  const auto ids = test::shuffled(test::dense_ids(kN), 11);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{4}}) {
    const auto result =
        run_on_coro(ids, {}, rt::ThreadAlg::alg2, {workers, 30'000, nullptr});
    ASSERT_TRUE(result.completed) << workers;
    EXPECT_EQ(result.pulses, co::theorem1_pulses(kN, kN)) << workers;
    EXPECT_EQ(result.leader_count, 1u) << workers;
    EXPECT_EQ(result.stats.workers, workers);
  }
}

TEST(CoroAlg1, QuiescenceDetectionMatchesCorollary13) {
  const std::vector<std::uint64_t> ids{5, 9, 2, 7, 1};
  const auto result = run_on_coro(ids, {}, rt::ThreadAlg::alg1);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.pulses, 5u * 9u);  // Corollary 13
  EXPECT_EQ(result.leader_count, 1u);
  EXPECT_EQ(*result.leader, 1u);
  for (const auto& out : result.outcomes) {
    EXPECT_TRUE(out.stopped);  // ended by counter-based quiescence
    EXPECT_FALSE(out.terminated);
    EXPECT_EQ(out.counters.rho_cw, 9u);
  }
}

TEST(CoroAlg1, DuplicateMaximaAllLead) {
  // Lemma 16: Algorithm 1 tolerates duplicate IDs; every max holder leads.
  const std::vector<std::uint64_t> ids{4, 2, 4, 1};
  const auto result = run_on_coro(ids, {}, rt::ThreadAlg::alg1);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.pulses, 4u * 4u);
  EXPECT_EQ(result.leader_count, 2u);
  EXPECT_EQ(result.outcomes[0].role, co::Role::leader);
  EXPECT_EQ(result.outcomes[2].role, co::Role::leader);
}

TEST(CoroAlg3, ElectsAndOrientsOnScrambledRing) {
  const std::vector<std::uint64_t> ids{6, 11, 3, 9};
  const std::vector<bool> flips{true, false, true, true};
  const auto result = run_on_coro(ids, flips, rt::ThreadAlg::alg3_improved);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.pulses, co::theorem1_pulses(4, 11));
  EXPECT_EQ(result.leader_count, 1u);
  EXPECT_EQ(*result.leader, 1u);
  bool all_cw = true, all_ccw = true;
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    if (result.outcomes[v].cw_port == co::physical_cw_port(flips, v)) {
      all_ccw = false;
    } else {
      all_cw = false;
    }
  }
  EXPECT_TRUE(all_cw || all_ccw);
}

TEST(CoroAlg3, DoubledSchemeAllScramblesSmallRing) {
  const std::vector<std::uint64_t> ids{3, 7, 2};
  for (const auto& flips : test::all_flip_masks(3)) {
    const auto result = run_on_coro(ids, flips, rt::ThreadAlg::alg3_doubled);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.pulses, co::prop15_pulses(3, 7));
    EXPECT_EQ(result.leader_count, 1u);
    EXPECT_EQ(*result.leader, 1u);
  }
}

TEST(CoroAlg2, SingleNodeSelfLoop) {
  const auto result = run_on_coro({5}, {}, rt::ThreadAlg::alg2);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.pulses, 11u);
  EXPECT_EQ(result.leader_count, 1u);
}

TEST(CoroExecutor, SingleWorkerRunsAreDeterministic) {
  // workers=1 has no steals and a fixed pop order, so two runs must agree
  // on every observable: outcomes, counters, and scheduler telemetry.
  const auto ids = test::shuffled(test::dense_ids(23), 5);
  const auto a = run_on_coro(ids, {}, rt::ThreadAlg::alg2);
  const auto b = run_on_coro(ids, {}, rt::ThreadAlg::alg2);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.pulses, b.pulses);
  EXPECT_EQ(a.stats.resumes, b.stats.resumes);
  EXPECT_EQ(a.stats.wakeups, b.stats.wakeups);
  EXPECT_EQ(a.stats.batched, b.stats.batched);
  EXPECT_EQ(a.stats.yields, b.stats.yields);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    EXPECT_EQ(a.outcomes[v].role, b.outcomes[v].role) << v;
    EXPECT_EQ(a.outcomes[v].counters.rho_cw, b.outcomes[v].counters.rho_cw);
    EXPECT_EQ(a.outcomes[v].counters.rho_ccw, b.outcomes[v].counters.rho_ccw);
  }
}

TEST(CoroExecutor, AgreesWithSimulatorAndThreadRing) {
  // Three execution models, one answer: discrete simulator, one-OS-thread-
  // per-node ThreadRing, and the coroutine executor.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto ids = test::sparse_ids(2 + seed % 5, 30, seed);
    sim::RandomScheduler sched(seed);
    const auto simulated = co::elect_oriented_terminating(ids, sched);
    const auto threaded = rt::run_on_threads(ids, {}, rt::ThreadAlg::alg2);
    const auto coro = run_on_coro(ids, {}, rt::ThreadAlg::alg2);
    ASSERT_TRUE(simulated.valid_election());
    ASSERT_TRUE(threaded.completed);
    ASSERT_TRUE(coro.completed);
    EXPECT_EQ(coro.pulses, simulated.pulses) << "seed " << seed;
    EXPECT_EQ(coro.pulses, threaded.pulses) << "seed " << seed;
    ASSERT_TRUE(coro.leader.has_value());
    EXPECT_EQ(*coro.leader, *simulated.leader) << "seed " << seed;
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      EXPECT_EQ(coro.outcomes[v].role, simulated.nodes[v].role);
      EXPECT_EQ(coro.outcomes[v].counters.rho_cw, simulated.nodes[v].rho_cw);
      EXPECT_EQ(coro.outcomes[v].counters.rho_ccw, simulated.nodes[v].rho_ccw);
    }
  }
}

template <rt::PulsePort Io>
rt::ElectionTask pulse_once_then_wait(Io io) {
  rt::BlockingOutcome out;
  io.send(co::kCwPort);
  for (;;) {
    if (!co_await io.wait_any()) {
      out.stopped = true;
      co_return out;
    }
  }
}

template <rt::PulsePort Io>
rt::ElectionTask deaf_node(Io io) {
  rt::BlockingOutcome out;
  for (;;) {  // wakes on every pulse but never consumes one
    if (!co_await io.wait_any()) {
      out.stopped = true;
      co_return out;
    }
  }
}

TEST(CoroExecutor, WatchdogFiresOnUndeliveredPulse) {
  // Node 0 sends one pulse to node 1, which never consumes it: the fabric
  // can neither quiesce (sent != consumed) nor terminate, and node 1 keeps
  // yielding on its pending-but-unread pulse. The watchdog must abort with
  // a stall dump instead of hanging.
  Executor ex(2, {}, ExecutorOptions{1, 300, nullptr});
  auto t0 = pulse_once_then_wait(ex.io(0));
  auto t1 = deaf_node(ex.io(1));
  ex.bind(0, t0.handle());
  ex.bind(1, t1.handle());
  EXPECT_FALSE(ex.run());
  EXPECT_TRUE(ex.timed_out());
  EXPECT_FALSE(ex.quiescent());
  EXPECT_NE(ex.stall_dump().find("coro-executor state"), std::string::npos);
  EXPECT_TRUE(t0.outcome().stopped);
  EXPECT_TRUE(t1.outcome().stopped);
  EXPECT_GT(ex.stats().yields, 0u);  // the deaf node spins via the yield path
}

TEST(CoroExecutor, PublishesMergedMetrics) {
  obs::Registry reg;
  const auto ids = test::shuffled(test::dense_ids(8), 2);
  const auto result =
      run_on_coro(ids, {}, rt::ThreadAlg::alg2, {2, 30'000, &reg});
  ASSERT_TRUE(result.completed);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("coro.sent"), std::string::npos);
  EXPECT_NE(json.find("coro.nodes"), std::string::npos);
  EXPECT_NE(json.find("coro.workers"), std::string::npos);
  // The merged counters must agree with the aggregated stats.
  EXPECT_EQ(result.stats.sent, result.pulses);
}

TEST(CoroExecutor, HundredThousandNodeSmoke) {
  // The capacity point of the runtime: 10^5 nodes in one process, Alg 1
  // with IDmax=2 (ids all 1, one 2), which quiesces after exactly 2n
  // pulses (Corollary 13) — a full double wave around the ring.
  constexpr std::size_t kN = 100'000;
  std::vector<std::uint64_t> ids(kN, 1);
  ids[kN / 2] = 2;
  const auto result =
      run_on_coro(ids, {}, rt::ThreadAlg::alg1, {2, 120'000, nullptr});
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.pulses, 2 * kN);
  EXPECT_EQ(result.leader_count, 1u);
  EXPECT_EQ(*result.leader, kN / 2);
}

}  // namespace
}  // namespace colex::coro
