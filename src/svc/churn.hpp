// Churn engine for the election-as-a-service soak harness (see soak.hpp).
//
// A soak run multiplexes thousands of independent ring elections. Each ring
// SLOT lives an endless retire→respawn cycle: sample a fresh ring (size,
// IDs, algorithm), run one election on it under a seeded fault plan, retire
// the ring, respawn a fresh one. The ChurnEngine is the per-slot adversary:
// it schedules crash/recover cycles, fault storms (a burst of
// drop/duplicate/spurious one-shots landing on a single channel), sustained
// probabilistic channel noise, and corrupted initial channel state
// (preseeded pulses) — exactly the fault classes sim/faults.hpp defines.
//
// Everything is a pure function of (soak seed, slot, election index,
// attempt): a soak finding is reproducible from the soak seed alone, and
// two slots (or two attempts) never share a fault stream.
//
// Retry attempts implement the supervisor's exponential backoff at the plan
// level: attempt k respawns a fresh ring with fault intensities decayed by
// 2^-k and the event-budget deadline doubled k times, and from
// `clean_after` attempts onward the plan is provably trivial(). That last
// rung is what makes "abandon → rebuild → re-elect" self-healing: a clean
// sim election always quiesces within its budget, so a supervised election
// whose policy reaches the clean rung cannot end abandoned.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/faults.hpp"

namespace colex::svc {

/// Named churn intensities for the CLI and CI.
enum class ChurnPreset { calm, steady, storm };

const char* to_string(ChurnPreset preset);
bool preset_from_string(const std::string& s, ChurnPreset& out);

/// Which algorithm a soak election runs. Only the oriented facades are
/// multiplexed: Algorithm 1 exercises the stabilizing path (quiescence
/// without termination), Algorithm 2 the terminating one.
enum class SoakAlg { alg1, alg2 };

const char* to_string(SoakAlg alg);

/// Intensity knobs for the per-slot churn engine.
struct ChurnProfile {
  /// Fraction of first-attempt elections that run under a non-trivial plan.
  double fault_fraction = 0.5;
  /// Probability a faulty plan schedules crash/recover cycles, and at most
  /// how many (each cycle crashes one node and recovers it later).
  double crash_cycle_prob = 0.5;
  std::size_t max_crash_cycles = 2;
  /// Probability of a fault storm: a burst of drop/duplicate/spurious
  /// one-shots on a single channel at closely spaced event indices.
  double storm_prob = 0.4;
  std::size_t max_storm_len = 6;
  /// Probability of sustained low-rate probabilistic noise on all channels.
  double noise_prob = 0.25;
  /// Probability of corrupted initial channel state (preseeded pulses).
  double preseed_prob = 0.15;
  /// Ring-respawn size band (inclusive) and ID cap.
  std::size_t min_n = 2;
  std::size_t max_n = 8;
  std::uint64_t max_id = 12;

  static ChurnProfile preset(ChurnPreset preset);
};

/// One election work order produced by the churn engine.
struct RingSpec {
  SoakAlg alg = SoakAlg::alg2;
  std::vector<std::uint64_t> ids;   ///< unique; IDmax drives the pulse bound
  std::uint64_t schedule_seed = 1;  ///< seeds the adversarial scheduler
  sim::FaultPlan faults;            ///< validate()-clean by construction
  std::uint64_t max_events = 0;     ///< per-attempt deadline (event budget)

  std::uint64_t id_max() const;
  /// Theorem 1/2 pulse bound n(2·IDmax+1) for this ring.
  std::uint64_t pulse_bound() const;
};

class ChurnEngine {
 public:
  ChurnEngine(std::uint64_t soak_seed, std::size_t slot, ChurnProfile profile);

  /// Work order for attempt `attempt` of the slot's `election`-th election.
  /// Attempt 0 is the first try; retries respawn a FRESH ring (new size and
  /// IDs) with decayed fault intensity and a doubled event budget, and any
  /// attempt >= `clean_after` carries a trivial() plan. Pure function of
  /// its arguments — calling it twice yields identical specs.
  RingSpec spec(std::uint64_t election, unsigned attempt,
                unsigned clean_after) const;

  const ChurnProfile& profile() const { return profile_; }
  std::size_t slot() const { return slot_; }

 private:
  std::uint64_t seed_;
  std::size_t slot_;
  ChurnProfile profile_;
};

}  // namespace colex::svc
