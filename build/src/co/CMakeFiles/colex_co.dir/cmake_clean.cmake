file(REMOVE_RECURSE
  "CMakeFiles/colex_co.dir/alg1.cpp.o"
  "CMakeFiles/colex_co.dir/alg1.cpp.o.d"
  "CMakeFiles/colex_co.dir/alg2.cpp.o"
  "CMakeFiles/colex_co.dir/alg2.cpp.o.d"
  "CMakeFiles/colex_co.dir/alg3.cpp.o"
  "CMakeFiles/colex_co.dir/alg3.cpp.o.d"
  "CMakeFiles/colex_co.dir/election.cpp.o"
  "CMakeFiles/colex_co.dir/election.cpp.o.d"
  "CMakeFiles/colex_co.dir/replicated.cpp.o"
  "CMakeFiles/colex_co.dir/replicated.cpp.o.d"
  "CMakeFiles/colex_co.dir/sampling.cpp.o"
  "CMakeFiles/colex_co.dir/sampling.cpp.o.d"
  "libcolex_co.a"
  "libcolex_co.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colex_co.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
