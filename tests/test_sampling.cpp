// Tests for Algorithm 4 (geometric ID sampling) and the Theorem 3
// anonymous-ring election built on top of it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "co/election.hpp"
#include "co/sampling.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace colex::co {
namespace {

TEST(Sampling, IdsArePositive) {
  util::Xoshiro256StarStar rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto s = sample_id(rng, 2.0);
    EXPECT_GE(s.id, 1u);
    EXPECT_GE(s.bit_count, 1u);
    EXPECT_LE(s.bit_count, 62u);
    EXPECT_LE(s.id, (1ULL << s.bit_count));
  }
}

TEST(Sampling, RejectsNonPositiveC) {
  util::Xoshiro256StarStar rng(1);
  EXPECT_THROW(sample_id(rng, 0.0), util::ContractViolation);
  EXPECT_THROW(sample_id(rng, -1.0), util::ContractViolation);
}

TEST(Sampling, Deterministic) {
  const auto a = sample_ids(16, 2.0, 99);
  const auto b = sample_ids(16, 2.0, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].bit_count, b[i].bit_count);
  }
}

TEST(Sampling, NodesSampleIndependently) {
  const auto ids = sample_ids(64, 2.0, 7);
  std::size_t distinct = 0;
  std::vector<std::uint64_t> values;
  for (const auto& s : ids) values.push_back(s.id);
  std::sort(values.begin(), values.end());
  distinct = static_cast<std::size_t>(
      std::unique(values.begin(), values.end()) - values.begin());
  EXPECT_GT(distinct, 1u);
}

TEST(Sampling, BitCountTailMatchesGeometric) {
  // P(BitCount > x) = p^x with p = 2^(-1/(c+2)).
  const double c = 2.0;
  const double p = std::exp2(-1.0 / (c + 2.0));
  util::Xoshiro256StarStar rng(5);
  constexpr int kSamples = 200000;
  const std::uint64_t x = 8;
  int exceed = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (sample_id(rng, c).bit_count > x) ++exceed;
  }
  const double expected = std::pow(p, static_cast<double>(x));
  EXPECT_NEAR(static_cast<double>(exceed) / kSamples, expected,
              0.02);
}

TEST(Sampling, UniqueMaxPredicate) {
  EXPECT_TRUE(unique_max({{3, 5}, {2, 4}, {1, 1}}));
  EXPECT_FALSE(unique_max({{3, 5}, {3, 5}, {1, 1}}));
  EXPECT_TRUE(unique_max({{1, 1}}));
  EXPECT_THROW(unique_max({}), util::ContractViolation);
}

TEST(Sampling, Lemma18UniqueMaxIsHighProbability) {
  // Lemma 18: the maximal sampled ID is unique w.h.p. Measure the empirical
  // frequency over many independent rings; with c = 2 and n = 32 it should
  // be comfortably above 80%.
  constexpr int kTrials = 500;
  int unique = 0;
  for (int t = 0; t < kTrials; ++t) {
    if (unique_max(sample_ids(32, 2.0, 1000 + static_cast<std::uint64_t>(t)))) {
      ++unique;
    }
  }
  EXPECT_GT(unique, kTrials * 8 / 10);
}

TEST(Sampling, LargerCImprovesUniqueness) {
  constexpr int kTrials = 400;
  auto success_rate = [&](double c) {
    int unique = 0;
    for (int t = 0; t < kTrials; ++t) {
      if (unique_max(
              sample_ids(32, c, 5000 + static_cast<std::uint64_t>(t)))) {
        ++unique;
      }
    }
    return unique;
  };
  // Not strictly monotone per-sample, but over 400 trials the ordering
  // c=0.5 < c=3 is extremely reliable.
  EXPECT_LT(success_rate(0.5), success_rate(3.0));
}

TEST(Sampling, MaxIdGrowsPolynomiallyNotExplosively) {
  // Lemma 18: max ID is n^O(c^2) w.h.p. Individual draws have heavy
  // geometric tails, so bound the *median* per-ring maximum: for c=1 and
  // n=64 the max BitCount concentrates near 3*log2(n) ~ 18 bits.
  std::vector<double> maxima;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto ids = sample_ids(64, 1.0, seed);
    std::uint64_t mx = 0;
    for (const auto& s : ids) mx = std::max(mx, s.id);
    EXPECT_GE(mx, 2u);  // not degenerate
    maxima.push_back(static_cast<double>(mx));
  }
  const auto summary = util::summarize(maxima);
  EXPECT_LT(summary.p50, static_cast<double>(1ULL << 25));
  EXPECT_GE(summary.p50, 64.0);  // at least n^Omega(c): beats the ring size
}

TEST(AnonymousElection, SucceedsWheneverSampledMaxIsUnique) {
  // Theorem 3 end-to-end on scrambled anonymous rings. Success of the
  // election must coincide exactly with the Lemma 18 unique-max event.
  int successes = 0, trials = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    util::Xoshiro256StarStar rng(seed);
    const std::size_t n = 2 + rng.below(6);
    // Message complexity scales with the sampled IDmax; skip the rare draws
    // whose simulation would be disproportionately expensive (the sampling
    // distribution itself is validated separately, without a network).
    std::uint64_t sampled_max = 0;
    for (const auto& s : sample_ids(n, 1.5, seed * 7)) {
      sampled_max = std::max(sampled_max, s.id);
    }
    if (sampled_max > 5000) continue;
    std::vector<bool> flips(n);
    for (std::size_t v = 0; v < n; ++v) flips[v] = rng.bernoulli(0.5);
    sim::RandomScheduler sched(seed * 3);
    const auto result = anonymous_election(n, flips, 1.5, seed * 7, sched);
    ++trials;
    EXPECT_TRUE(result.election.quiescent);
    if (result.sampled_unique_max) {
      EXPECT_TRUE(result.election.valid_election()) << "seed " << seed;
      EXPECT_TRUE(result.election.orientation_consistent) << "seed " << seed;
      ++successes;
    } else {
      EXPECT_NE(result.election.leader_count, 1u) << "seed " << seed;
    }
  }
  // The unique-max event is the common case.
  EXPECT_GT(successes, trials / 2);
}

TEST(AnonymousElection, ElectedNodeHoldsTheMaxSample) {
  sim::GlobalFifoScheduler sched;
  const auto result = anonymous_election(8, {}, 2.0, 424242, sched);
  if (result.sampled_unique_max) {
    ASSERT_TRUE(result.election.leader.has_value());
    std::uint64_t mx = 0;
    for (const auto& s : result.sampled) mx = std::max(mx, s.id);
    EXPECT_EQ(result.sampled[*result.election.leader].id, mx);
  }
}

TEST(AnonymousElection, ComplexityTracksSampledMax) {
  sim::GlobalFifoScheduler sched;
  const auto result = anonymous_election(6, {}, 1.0, 7, sched);
  std::uint64_t mx = 0;
  for (const auto& s : result.sampled) mx = std::max(mx, s.id);
  EXPECT_EQ(result.election.pulses, theorem1_pulses(6, mx));
}


TEST(Sampling, BitCountCapIsEnforcedForHugeC) {
  // With c = 50 the geometric tail would regularly exceed 64 bits; the
  // documented cap keeps IDs in range while still reaching the cap.
  util::Xoshiro256StarStar rng(3);
  bool hit_cap = false;
  for (int i = 0; i < 2000; ++i) {
    const auto s = sample_id(rng, 50.0);
    ASSERT_LE(s.bit_count, 62u);
    ASSERT_GE(s.id, 1u);
    if (s.bit_count == 62) hit_cap = true;
  }
  EXPECT_TRUE(hit_cap);
}

TEST(Sampling, SmallCGivesSmallTypicalIds) {
  // c -> 0+ pushes p -> 2^(-1/2): BitCount concentrates near 1-2 and IDs
  // stay tiny in the median.
  std::vector<double> values;
  util::Xoshiro256StarStar rng(8);
  for (int i = 0; i < 4000; ++i) {
    values.push_back(static_cast<double>(sample_id(rng, 0.01).id));
  }
  EXPECT_LE(util::summarize(values).p50, 8.0);
}

}  // namespace
}  // namespace colex::co
