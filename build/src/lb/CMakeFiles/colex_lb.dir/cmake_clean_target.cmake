file(REMOVE_RECURSE
  "libcolex_lb.a"
)
