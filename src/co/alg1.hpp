// Algorithm 1 (paper §3.1): quiescently stabilizing leader election on
// oriented rings, using only clockwise pulses.
//
// Every node starts by sending one CW pulse and then relays every received
// CW pulse, except for the single pulse that makes its received count equal
// its own ID — that pulse is absorbed and the node marks itself Leader (a
// state that any later pulse revokes). The network stabilizes with every
// node having sent and received exactly IDmax pulses (Corollary 13), at
// which point only the node with the maximal ID is Leader. Nodes never
// terminate: they cannot tell locally that quiescence has been reached.
#pragma once

#include <cstdint>
#include <memory>

#include "co/oriented.hpp"
#include "co/roles.hpp"
#include "sim/network.hpp"

namespace colex::co {

class Alg1Stabilizing final : public sim::PulseAutomaton {
 public:
  /// `id` must be a positive integer; IDs need not be contiguous. The
  /// algorithm also behaves correctly under non-unique IDs (Lemma 16), where
  /// all nodes holding the maximal ID end up Leader.
  explicit Alg1Stabilizing(std::uint64_t id);

  void start(sim::PulseContext& ctx) override;
  void react(sim::PulseContext& ctx) override;
  std::unique_ptr<sim::PulseAutomaton> clone() const override {
    return std::make_unique<Alg1Stabilizing>(*this);
  }
  /// Probe loop until the absorbing pulse fixes a (revocable) role.
  const char* phase() const override {
    return role_ == Role::undecided ? "probe" : "elected";
  }

  std::uint64_t id() const { return id_; }
  Role role() const { return role_; }
  const PulseCounters& counters() const { return counters_; }

  /// Fault-injection only (sim/faults.hpp): overwrites the node's local
  /// state as if a transient memory fault hit it. The paper makes no
  /// self-stabilization claim — this API exists so the fault harness can
  /// probe, experimentally, which corrupted states Algorithm 1 does and
  /// does not stabilize from.
  void load_corrupted_state(const PulseCounters& counters, Role role) {
    counters_ = counters;
    role_ = role;
  }

 private:
  std::uint64_t id_;
  Role role_ = Role::undecided;
  PulseCounters counters_;
};

}  // namespace colex::co
