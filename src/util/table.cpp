#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/contracts.hpp"

namespace colex::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  COLEX_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  COLEX_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << " |\n";
  };
  print_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }
std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::fixed(double v, int digits) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(digits) << v;
  return ss.str();
}

}  // namespace colex::util
