file(REMOVE_RECURSE
  "CMakeFiles/test_election_facade.dir/test_election_facade.cpp.o"
  "CMakeFiles/test_election_facade.dir/test_election_facade.cpp.o.d"
  "test_election_facade"
  "test_election_facade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_election_facade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
