// Blocking-style transcriptions of the paper's pseudocode, line for line,
// written once as template coroutines over the PulsePort concept
// (runtime/port.hpp) so the *same* pseudocode runs on two execution models:
//
//  * ThreadRing (one OS thread per node): BlockingPortAdapter's wait_any()
//    blocks inside await_ready() and never suspends, so resuming the
//    coroutine once runs the algorithm to completion — exactly the old
//    blocking functions, which remain available as run_alg*_blocking().
//  * The coroutine runtime (src/coro): CoroIo's wait_any() parks the node
//    coroutine until a pulse arrives, so millions of nodes share a few
//    worker threads.
//
// The bodies are deliberately written as loops over non-blocking recv calls
// — the exact shape of Algorithms 1, 2 and 3 in the paper — with the
// awaitable wait inserted only where a loop iteration made no progress
// (which is where an event-driven node would go back to sleep).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "co/alg3.hpp"
#include "co/oriented.hpp"
#include "co/roles.hpp"
#include "runtime/port.hpp"
#include "runtime/thread_ring.hpp"

namespace colex::rt {

namespace detail {

// Oriented-ring wrappers matching the paper's four methods (§3): sendCW
// transmits on Port1; CW pulses arrive at Port0. The wrapper also carries
// the node's current phase (obs/phase.hpp): every send is attributed to
// the phase in force at the call, mirroring how the sim-side instrumention
// samples Automaton::phase() at each genuine send, and enter() publishes
// transitions to ports that expose the optional set_phase extension.
template <PulsePort Io>
struct OrientedIo {
  Io& io;
  BlockingOutcome& out;
  obs::Phase phase = obs::Phase::probe;

  void enter(obs::Phase p) {
    if (p == phase) return;
    phase = p;
    if constexpr (requires { io.set_phase(p); }) io.set_phase(p);
  }
  void count_wait() { ++out.phase_waits[obs::index(phase)]; }

  void send_cw() {
    io.send(co::kCwPort);
    ++out.counters.sigma_cw;
    ++out.phase_sends[obs::index(phase)];
  }
  bool recv_cw() {
    if (!io.recv(co::kCcwPort)) return false;
    ++out.counters.rho_cw;
    return true;
  }
  void send_ccw() {
    io.send(co::kCcwPort);
    ++out.counters.sigma_ccw;
    ++out.phase_sends[obs::index(phase)];
  }
  bool recv_ccw() {
    if (!io.recv(co::kCwPort)) return false;
    ++out.counters.rho_ccw;
    return true;
  }
};

}  // namespace detail

/// Algorithm 1 on an oriented ring; runs until the harness signals
/// quiescence (the algorithm itself never terminates).
template <PulsePort Io>
ElectionTask run_alg1(Io io, std::uint64_t id) {
  COLEX_EXPECTS(id >= 1);
  BlockingOutcome out;
  out.id = id;
  detail::OrientedIo<Io> ring{io, out};

  ring.send_cw();  // line 1
  for (;;) {       // line 2
    if (ring.recv_cw()) {  // line 3
      if (out.counters.rho_cw == id) {  // line 4
        out.role = co::Role::leader;
        ring.enter(obs::Phase::elected);
      } else {
        out.role = co::Role::non_leader;
        ring.enter(obs::Phase::elected);
        ring.send_cw();
      }
    } else {
      ring.count_wait();
      if (!co_await io.wait_any()) {
        out.stopped = true;  // harness: network is quiescent
        co_return out;
      }
    }
  }
}

/// Algorithm 2 on an oriented ring; returns when the node terminates.
template <PulsePort Io>
ElectionTask run_alg2(Io io, std::uint64_t id) {
  COLEX_EXPECTS(id >= 1);
  BlockingOutcome out;
  out.id = id;
  detail::OrientedIo<Io> ring{io, out};
  auto& k = out.counters;
  bool initiated = false;

  ring.send_cw();  // line 1
  do {             // line 2
    bool progress = false;
    if (ring.recv_cw()) {  // lines 3-8
      if (k.rho_cw == id) {
        out.role = co::Role::leader;
      } else {
        out.role = co::Role::non_leader;
      }
      ring.enter(obs::Phase::elected);
      if (out.role == co::Role::non_leader) ring.send_cw();
      progress = true;
    }
    if (k.rho_cw >= id) {  // lines 9-13
      if (k.sigma_ccw == 0) {
        ring.send_ccw();
        progress = true;
      }
      if (ring.recv_ccw()) {
        if (k.rho_ccw != id) ring.send_ccw();
        progress = true;
      }
    }
    if (k.rho_cw == id && k.rho_ccw == id && !initiated) {  // lines 14-17
      initiated = true;
      // Enter before the send: the termination pulse belongs to the
      // initiated_wait phase (matching Alg2Terminating's ordering).
      ring.enter(obs::Phase::initiated_wait);
      ring.send_ccw();
      while (!ring.recv_ccw()) {
        ring.count_wait();
        if (!co_await io.wait_any()) {
          out.stopped = true;  // should never happen for Algorithm 2
          co_return out;
        }
      }
      progress = true;
    }
    if (!progress && !(k.rho_ccw > k.rho_cw)) {
      ring.count_wait();
      if (!co_await io.wait_any()) {
        out.stopped = true;
        co_return out;
      }
    }
  } while (!(k.rho_ccw > k.rho_cw));  // line 18
  ring.enter(obs::Phase::done);
  out.terminated = true;  // line 19: output state
  co_return out;
}

/// Algorithm 3 on a (possibly scrambled) ring; runs until harness stop.
template <PulsePort Io>
ElectionTask run_alg3(Io io, std::uint64_t id, co::IdScheme scheme) {
  COLEX_EXPECTS(id >= 1);
  BlockingOutcome out;
  out.id = id;
  const co::VirtualIds vids = co::virtual_ids(id, scheme);

  obs::Phase phase = obs::Phase::probe;
  auto enter = [&](obs::Phase p) {
    if (p == phase) return;
    phase = p;
    if constexpr (requires { io.set_phase(p); }) io.set_phase(p);
  };
  auto send_port = [&](int i) {
    io.send(sim::port_from_index(i));
    ++out.sigma_port[i];
    ++out.phase_sends[obs::index(phase)];
  };
  auto recv_port = [&](int i) {
    if (!io.recv(sim::port_from_index(i))) return false;
    ++out.rho_port[i];
    return true;
  };

  for (const int i : {0, 1}) send_port(i);  // lines 1-3
  for (;;) {                                // line 4
    bool progress = false;
    for (const int i : {0, 1}) {  // lines 5-7
      if (recv_port(1 - i)) {
        if (out.rho_port[1 - i] != vids.vid[i]) send_port(i);
        progress = true;
      }
    }
    // Lines 8-16.
    if (std::max(out.rho_port[0], out.rho_port[1]) >= vids.vid[1]) {
      if (out.rho_port[0] == vids.vid[1] && out.rho_port[1] < vids.vid[1]) {
        out.role = co::Role::leader;
      } else {
        out.role = co::Role::non_leader;
      }
      out.cw_port =
          out.rho_port[0] > out.rho_port[1] ? sim::Port::p1 : sim::Port::p0;
      enter(out.cw_port == sim::Port::p0 ? obs::Phase::orientation_flip
                                         : obs::Phase::elected);
    }
    if (!progress) {
      ++out.phase_waits[obs::index(phase)];
      if (!co_await io.wait_any()) {
        out.stopped = true;
        co_return out;
      }
    }
  }
}

/// Which algorithm a run executes (shared by ThreadRing and src/coro).
enum class ThreadAlg { alg1, alg2, alg3_doubled, alg3_improved };

/// Instantiates the template transcription for `alg` over any PulsePort.
template <PulsePort Io>
ElectionTask spawn_alg(ThreadAlg alg, Io io, std::uint64_t id) {
  switch (alg) {
    case ThreadAlg::alg1:
      return run_alg1(std::move(io), id);
    case ThreadAlg::alg2:
      return run_alg2(std::move(io), id);
    case ThreadAlg::alg3_doubled:
      return run_alg3(std::move(io), id, co::IdScheme::doubled);
    case ThreadAlg::alg3_improved:
      return run_alg3(std::move(io), id, co::IdScheme::improved);
  }
  util::contract_fail("precondition", "valid ThreadAlg", __FILE__, __LINE__);
}

/// Algorithm 1 driven synchronously on a ThreadRing node (legacy shape:
/// identical behavior to the pre-coroutine blocking transcription).
BlockingOutcome run_alg1_blocking(NodeIo io, std::uint64_t id);

/// Algorithm 2 driven synchronously on a ThreadRing node.
BlockingOutcome run_alg2_blocking(NodeIo io, std::uint64_t id);

/// Algorithm 3 driven synchronously on a ThreadRing node.
BlockingOutcome run_alg3_blocking(NodeIo io, std::uint64_t id,
                                  co::IdScheme scheme);

/// ThreadRing's run result: the substrate-agnostic TransportRunResult shape
/// (outcomes, pulses, completion, leader tally, stall post-mortem from
/// ThreadRing::dump()) plus the fault-hook counters only this substrate
/// has.
struct ThreadRunResult : TransportRunResult {
  std::uint64_t crashes = 0;      ///< crash() events during the run
  std::uint64_t recoveries = 0;   ///< recover() events during the run
};

/// A fault script run concurrently with the algorithms, in its own thread:
/// it may crash(), recover() and inject_pulse() on the live fabric. It
/// deliberately races the workers — that nondeterminism is the point of
/// exercising faults on real threads (the simulator side, sim/faults.hpp,
/// covers the reproducible-schedule half).
using ChaosScript = std::function<void(ThreadRing&)>;

/// Spawns one thread per node, runs `alg`, monitors for quiescence /
/// termination, joins, and aggregates results. `port_flips` must be empty
/// for the oriented algorithms. `timeout_ms` is the watchdog budget: a run
/// that exceeds it is aborted (never hangs) and `stall_dump` is filled in.
/// A worker whose node crash-stops parks until recover() or stop; on
/// recovery it re-runs the algorithm from scratch with erased state.
/// A non-null `metrics` registry enables the fabric's telemetry probes
/// (per-node pulse counts, blocking-wait durations) and receives the
/// published snapshot after the run; the stall post-mortem embeds it too.
ThreadRunResult run_on_threads(const std::vector<std::uint64_t>& ids,
                               const std::vector<bool>& port_flips,
                               ThreadAlg alg,
                               std::uint64_t timeout_ms = 30'000,
                               ChaosScript chaos = {},
                               obs::Registry* metrics = nullptr);

}  // namespace colex::rt
