// A lexed source file plus its colex-lint control markers.
//
// Markers live in comments so they survive compilation untouched:
//
//   // colex-lint: allow(C001) <justification>      suppress on this line
//                                                   or the line below
//   // colex-lint: allow-file(D002) <justification> suppress for the file
//   // colex-lint: expect(D001)                     fixture: a finding with
//                                                   this rule id must be
//                                                   reported on this line
//   // colex-lint: expect-suppressed(D001)          fixture: a finding must
//                                                   fire here AND be
//                                                   suppressed by an allow
//
// Several directives may share one comment; a directive may list several
// rule ids separated by commas. Block comments anchor their markers at the
// comment's *last* line, so a doc block directly above a declaration
// suppresses that declaration.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace colex::lint {

struct SourceFile {
  std::string path;  // as reported in diagnostics (relative to scan root)
  bool is_header = false;
  std::vector<Token> tokens;
  std::vector<Comment> comments;

  std::map<int, std::set<std::string>> allow;              // line -> rules
  std::set<std::string> allow_file;                        // whole file
  std::map<int, std::vector<std::string>> expect;          // line -> rules
  std::map<int, std::vector<std::string>> expect_suppressed;

  /// True if `rule` is suppressed for a finding on `line`: an allow marker on
  /// the same line, on the line directly above, or file-wide.
  bool suppressed(const std::string& rule, int line) const;
};

/// Lexes `source` and extracts markers. `path` is stored verbatim.
SourceFile make_source_file(std::string path, const std::string& source);

}  // namespace colex::lint
