// Exhaustive schedule exploration ("model checking" the adversary): for
// small configurations, enumerate EVERY delivery order the asynchronous
// adversary could choose and validate each complete execution.
//
// The execution tree is explored by deterministic replay: a schedule prefix
// (sequence of channel choices) is re-run from the initial state with
// ReplayScheduler, the set of pending channels at the frontier is read off,
// and the explorer branches on each choice. A leaf is a quiescent
// execution. Exponential, of course — use it where the tree is small (the
// repository uses it for n <= 3 rings, up to ~10^5 schedules) and rely on
// the seeded-adversary sweeps beyond that.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "util/contracts.hpp"

namespace colex::sim {

struct ExploreStats {
  std::uint64_t leaves = 0;      ///< complete (quiescent) executions seen
  std::uint64_t truncated = 0;   ///< subtrees skipped when budget ran out
  std::uint64_t max_depth = 0;   ///< deliveries on the deepest path
  bool exhaustive() const { return truncated == 0; }
};

/// Enumerates every schedule of the network produced by `build` and calls
/// `on_leaf` on each quiescent terminal state. `budget` caps the number of
/// replays (one per tree node); exceeding it marks subtrees truncated.
inline ExploreStats explore_all_schedules(
    const std::function<PulseNetwork()>& build,
    const std::function<void(PulseNetwork&)>& on_leaf,
    std::uint64_t budget = 1'000'000) {
  COLEX_EXPECTS(budget > 0);
  ExploreStats stats;
  std::vector<std::size_t> prefix;

  std::function<void()> recurse = [&]() {
    if (budget == 0) {
      ++stats.truncated;
      return;
    }
    --budget;
    auto net = build();
    ReplayScheduler replay(prefix);
    RunOptions opts;
    opts.max_events = prefix.size();
    net.run(replay, opts);
    COLEX_ASSERT(replay.divergences() == 0);

    std::vector<std::size_t> pending;
    for (std::size_t c = 0; c < net.channel_count(); ++c) {
      if (net.channel_pending(c) > 0) pending.push_back(c);
    }
    if (pending.empty()) {
      ++stats.leaves;
      stats.max_depth =
          std::max(stats.max_depth,
                   static_cast<std::uint64_t>(prefix.size()));
      on_leaf(net);
      return;
    }
    for (const std::size_t c : pending) {
      prefix.push_back(c);
      recurse();
      prefix.pop_back();
      if (budget == 0) return;
    }
  };
  recurse();
  return stats;
}

}  // namespace colex::sim
