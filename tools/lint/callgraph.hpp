// Name-resolved call graph over the symbol table (symbols.hpp).
//
// Call sites are `identifier(` token pairs inside a function's body extent,
// minus keywords; each resolves to *every* project function definition with
// that unqualified name. Nested lambda bodies overlap their enclosing
// function's extent, so their call sites are attributed to both symbols —
// again the conservative direction (a blocking call inside a lambda created
// by a coroutine is reachable from the coroutine).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "lint/symbols.hpp"

namespace colex::lint {

struct CallSite {
  std::string callee;  // unqualified name at the call site
  std::size_t token = 0;
  int line = 0;
};

struct CallGraph {
  /// calls[s] — raw call sites in symbol s's body, resolved or not.
  std::vector<std::vector<CallSite>> calls;
  /// edges[s] — symbol indices every call site of s may land on
  /// (deduplicated, sorted).
  std::vector<std::vector<std::size_t>> edges;
};

CallGraph build_call_graph(const std::vector<SourceFile>& files,
                           const ProjectIndex& project,
                           const SymbolTable& symbols);

/// BFS over `edges` from `roots`. Roots are always marked reached; an edge
/// is followed only when `expand(callee)` holds, which is how the T002 pass
/// confines traversal to functions defined under src/coro. `origin[s]` (same
/// size as the symbol list) receives the root symbol each reached function
/// was first discovered from.
std::vector<bool> reachable_from(
    const CallGraph& graph, const SymbolTable& symbols,
    const std::vector<std::size_t>& roots,
    const std::function<bool(const FunctionSymbol&)>& expand,
    std::vector<std::size_t>* origin = nullptr);

}  // namespace colex::lint
