// Tests for the classical content-carrying baselines (paper §1.2): each must
// elect the max-ID node (Itai-Rodeh: a unique anonymous node) with full
// consensus under every adversarial scheduler, and their message counts must
// match their textbook complexities.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>

#include "baselines/baselines.hpp"
#include "helpers.hpp"

namespace colex::baselines {
namespace {

using ElectFn = std::function<BaselineResult(
    const std::vector<std::uint64_t>&, sim::Scheduler&)>;

struct NamedAlgorithm {
  std::string name;
  ElectFn run;
};

std::vector<NamedAlgorithm> id_based_algorithms() {
  return {
      {"lelann",
       [](const std::vector<std::uint64_t>& ids, sim::Scheduler& s) {
         return lelann(ids, s);
       }},
      {"chang-roberts",
       [](const std::vector<std::uint64_t>& ids, sim::Scheduler& s) {
         return chang_roberts(ids, s);
       }},
      {"peterson",
       [](const std::vector<std::uint64_t>& ids, sim::Scheduler& s) {
         return peterson(ids, s);
       }},
      {"hirschberg-sinclair",
       [](const std::vector<std::uint64_t>& ids, sim::Scheduler& s) {
         return hirschberg_sinclair(ids, s);
       }},
      {"franklin",
       [](const std::vector<std::uint64_t>& ids, sim::Scheduler& s) {
         return franklin(ids, s);
       }},
  };
}

void expect_elects_max(const NamedAlgorithm& alg,
                       const std::vector<std::uint64_t>& ids,
                       sim::Scheduler& sched) {
  const auto result = alg.run(ids, sched);
  ASSERT_TRUE(result.ok) << alg.name;
  ASSERT_TRUE(result.leader.has_value()) << alg.name;
  const auto max_it = std::max_element(ids.begin(), ids.end());
  EXPECT_EQ(result.leader_id, *max_it) << alg.name;
  // All algorithms here elect the node holding the maximum ID, except
  // Peterson, which elects the node *holding the maximal temp ID* — its
  // self-identified winner still announces the max ID it carried... in our
  // implementation the winner announces its own real ID, so the agreed
  // leader_id is the winner's ID, not necessarily the max. LeLann/CR/HS/
  // Franklin announce the max.
}

TEST(Baselines, AllElectConsistentlyOnSmallRing) {
  const std::vector<std::uint64_t> ids{2, 7, 1, 5, 3};
  for (const auto& alg : id_based_algorithms()) {
    sim::GlobalFifoScheduler sched;
    const auto result = alg.run(ids, sched);
    ASSERT_TRUE(result.ok) << alg.name;
    EXPECT_TRUE(result.all_terminated) << alg.name;
  }
}

TEST(Baselines, MaxIdWinsForMaxElectingAlgorithms) {
  const std::vector<std::uint64_t> ids{12, 4, 9, 30, 2, 17};
  for (const auto& alg : id_based_algorithms()) {
    if (alg.name == "peterson") continue;  // elects by temp-ID position
    sim::GlobalFifoScheduler sched;
    expect_elects_max(alg, ids, sched);
  }
}

TEST(Baselines, PetersonWinnerAgreedByAll) {
  const std::vector<std::uint64_t> ids{12, 4, 9, 30, 2, 17};
  sim::GlobalFifoScheduler sched;
  const auto result = peterson(ids, sched);
  ASSERT_TRUE(result.ok);
  // The agreed leader is the self-identified winner's real ID.
  EXPECT_EQ(result.leader_id, ids[*result.leader]);
}

TEST(Baselines, SingleNodeRings) {
  for (const auto& alg : id_based_algorithms()) {
    sim::GlobalFifoScheduler sched;
    const auto result = alg.run({42}, sched);
    ASSERT_TRUE(result.ok) << alg.name;
    EXPECT_EQ(*result.leader, 0u) << alg.name;
  }
}

TEST(Baselines, TwoNodeRings) {
  for (const auto& alg : id_based_algorithms()) {
    sim::GlobalFifoScheduler sched;
    const auto result = alg.run({3, 8}, sched);
    ASSERT_TRUE(result.ok) << alg.name;
  }
}

class BaselineSchedulerSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineSchedulerSweep, CorrectUnderEveryAdversary) {
  const auto ids = test::shuffled(test::dense_ids(9), 77);
  for (const auto& alg : id_based_algorithms()) {
    auto sched = test::make_scheduler(GetParam(), 4);
    ASSERT_NE(sched, nullptr);
    const auto result = alg.run(ids, *sched);
    ASSERT_TRUE(result.ok) << alg.name << " under " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, BaselineSchedulerSweep,
    ::testing::ValuesIn(test::standard_scheduler_names(4)),
    [](const ::testing::TestParamInfo<std::string>& pinfo) {
      std::string name = pinfo.param;
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(Baselines, RandomConfigurations) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto ids = test::sparse_ids(3 + seed % 7, 1000, seed);
    for (const auto& alg : id_based_algorithms()) {
      sim::RandomScheduler sched(seed);
      const auto result = alg.run(ids, sched);
      ASSERT_TRUE(result.ok) << alg.name << " seed " << seed;
    }
  }
}

TEST(Baselines, LeLannUsesExactlyNSquaredMessages) {
  for (std::size_t n : {1u, 2u, 5u, 16u, 40u}) {
    const auto ids = test::shuffled(test::dense_ids(n), n);
    sim::RandomScheduler sched(n);
    const auto result = lelann(ids, sched);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.messages, static_cast<std::uint64_t>(n) * n);
    EXPECT_EQ(result.late_deliveries, 0u);  // LeLann is quiescent
  }
}

TEST(Baselines, ChangRobertsWorstCaseIsQuadratic) {
  // IDs decreasing along the direction of travel force i-th candidate to
  // travel i hops: n(n+1)/2 candidate messages + n announce messages.
  const std::size_t n = 24;
  std::vector<std::uint64_t> ids(n);
  for (std::size_t v = 0; v < n; ++v) ids[v] = n - v;
  sim::GlobalFifoScheduler sched;
  const auto result = chang_roberts(ids, sched);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.messages, n * (n + 1) / 2 + n);
}

TEST(Baselines, ChangRobertsBestCaseIsLinear) {
  // IDs increasing along the travel direction: every foreign candidate dies
  // at its first hop: 2n - 1 candidates + n announces.
  const std::size_t n = 24;
  std::vector<std::uint64_t> ids(n);
  for (std::size_t v = 0; v < n; ++v) ids[v] = v + 1;
  sim::GlobalFifoScheduler sched;
  const auto result = chang_roberts(ids, sched);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.messages, (2 * n - 1) + n);
}

TEST(Baselines, LogarithmicAlgorithmsBeatQuadraticOnesAtScale) {
  const std::size_t n = 96;
  const auto ids = test::shuffled(test::dense_ids(n), 123);
  sim::GlobalFifoScheduler s1, s2, s3, s4;
  const auto le = lelann(ids, s1);
  const auto hs = hirschberg_sinclair(ids, s2);
  const auto pe = peterson(ids, s3);
  const auto fr = franklin(ids, s4);
  ASSERT_TRUE(le.ok && hs.ok && pe.ok && fr.ok);
  EXPECT_LT(hs.messages, le.messages);
  EXPECT_LT(pe.messages, le.messages);
  EXPECT_LT(fr.messages, le.messages);
  // O(n log n) with textbook constants: HS <= 8 n (log n + 1), Peterson and
  // Franklin <= ~2 n log n + O(n).
  const double nlogn = static_cast<double>(n) * std::log2(n);
  EXPECT_LT(static_cast<double>(hs.messages), 8 * nlogn + 8 * n);
  EXPECT_LT(static_cast<double>(pe.messages), 4 * nlogn + 4 * n);
  EXPECT_LT(static_cast<double>(fr.messages), 4 * nlogn + 4 * n);
}

TEST(Baselines, ItaiRodehElectsExactlyOneOnAnonymousRing) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    sim::RandomScheduler sched(seed);
    const auto result = itai_rodeh(1 + seed % 9, seed * 13, sched);
    ASSERT_TRUE(result.ok) << "seed " << seed;
  }
}

TEST(Baselines, ItaiRodehExpectedMessagesReasonable) {
  // Las Vegas: expected O(n log n) per run; check the average over seeds
  // stays within a generous constant of n log n.
  const std::size_t n = 32;
  double total = 0;
  constexpr int kRuns = 20;
  for (int r = 0; r < kRuns; ++r) {
    sim::RandomScheduler sched(static_cast<std::uint64_t>(r) + 1);
    const auto result = itai_rodeh(n, static_cast<std::uint64_t>(r) * 7 + 1,
                                   sched);
    ASSERT_TRUE(result.ok);
    total += static_cast<double>(result.messages);
  }
  const double avg = total / kRuns;
  EXPECT_LT(avg, 20.0 * static_cast<double>(n) * std::log2(n));
}

TEST(Baselines, BitsAccountingIsPositiveAndTracksMessages) {
  const auto ids = test::shuffled(test::dense_ids(12), 3);
  sim::GlobalFifoScheduler sched;
  const auto result = chang_roberts(ids, sched);
  ASSERT_TRUE(result.ok);
  // Every message carries at least kind+flag+1 value bit = 4 bits.
  EXPECT_GE(result.bits, result.messages * 4);
}

TEST(Baselines, MsgBitSize) {
  Msg m;
  m.value = 1;
  EXPECT_EQ(m.bit_size(), 2u + 1u + 1u);
  m.value = 255;
  EXPECT_EQ(m.bit_size(), 2u + 1u + 8u);
  m.hops = 3;
  EXPECT_EQ(m.bit_size(), 2u + 1u + 8u + 2u);
  m.phase = 1;
  EXPECT_EQ(m.bit_size(), 2u + 1u + 8u + 2u + 1u);
}

}  // namespace
}  // namespace colex::baselines
