# Empty dependencies file for test_election_facade.
# This may be replaced when dependencies are built.
