// Shared output helpers for the experiment harness. Every bench binary
// regenerates one experiment from DESIGN.md's index and prints a banner,
// the paper's claim, and a result table, so `for b in build/bench/*; do $b;
// done` produces a full, self-describing reproduction report.
//
// Besides the human-readable report, each bench writes a machine-readable
// BENCH_<ID>.json next to its working directory (JsonReport below): wall
// times, schedules/s, leaves, pulse counts. These files are the repo's perf
// trajectory — commit them so regressions are diffable (EXPERIMENTS.md).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace colex::bench {

inline void banner(const std::string& experiment, const std::string& claim) {
  std::cout << "\n" << std::string(78, '=') << "\n";
  std::cout << experiment << "\n";
  std::cout << "paper claim: " << claim << "\n";
  std::cout << std::string(78, '=') << "\n\n";
}

inline void verdict(bool ok, const std::string& text) {
  std::cout << "\n[" << (ok ? "REPRODUCED" : "MISMATCH") << "] " << text
            << "\n";
}

/// Wall-clock stopwatch for bench timing (steady clock, seconds).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Minimal JSON value (objects keep insertion order; no external deps).
class Json {
 public:
  Json() = default;

  static Json object() {
    Json j;
    j.kind_ = Kind::object;
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::array;
    return j;
  }
  static Json of(bool v) {
    Json j;
    j.kind_ = Kind::boolean;
    j.scalar_ = v ? "true" : "false";
    return j;
  }
  static Json of(double v) {
    Json j;
    j.kind_ = Kind::number;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    j.scalar_ = buf;
    return j;
  }
  static Json of(std::uint64_t v) {
    Json j;
    j.kind_ = Kind::number;
    j.scalar_ = std::to_string(v);
    return j;
  }
  static Json of(std::int64_t v) {
    Json j;
    j.kind_ = Kind::number;
    j.scalar_ = std::to_string(v);
    return j;
  }
  static Json of(int v) { return of(static_cast<std::int64_t>(v)); }
  static Json of(const std::string& v) {
    Json j;
    j.kind_ = Kind::string;
    j.scalar_ = v;
    return j;
  }
  static Json of(const char* v) { return of(std::string(v)); }

  /// Pre-serialized JSON spliced in verbatim (single line, no re-indent).
  /// This is how an obs::Registry snapshot — already JSON text — lands
  /// inside a report without bench_common depending on the obs layer.
  static Json raw(std::string json_text) {
    Json j;
    j.kind_ = Kind::raw;
    j.scalar_ = std::move(json_text);
    return j;
  }

  /// Object member (insertion-ordered; an existing key is overwritten).
  template <typename T>
  Json& set(const std::string& key, T&& value) {
    return set_json(key, wrap(std::forward<T>(value)));
  }
  Json& set_json(const std::string& key, Json value) {
    for (auto& [k, v] : members_) {
      if (k == key) {
        v = std::move(value);
        return *this;
      }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
  }

  /// Array element.
  template <typename T>
  Json& push(T&& value) {
    elements_.push_back(wrap(std::forward<T>(value)));
    return *this;
  }

  void dump(std::ostream& os, int indent = 0) const {
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    const std::string inner(static_cast<std::size_t>(indent) + 2, ' ');
    switch (kind_) {
      case Kind::null:
        os << "null";
        break;
      case Kind::boolean:
      case Kind::number:
      case Kind::raw:
        os << scalar_;
        break;
      case Kind::string:
        write_escaped(os, scalar_);
        break;
      case Kind::object: {
        if (members_.empty()) {
          os << "{}";
          break;
        }
        os << "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
          os << inner;
          write_escaped(os, members_[i].first);
          os << ": ";
          members_[i].second.dump(os, indent + 2);
          os << (i + 1 < members_.size() ? ",\n" : "\n");
        }
        os << pad << "}";
        break;
      }
      case Kind::array: {
        if (elements_.empty()) {
          os << "[]";
          break;
        }
        os << "[\n";
        for (std::size_t i = 0; i < elements_.size(); ++i) {
          os << inner;
          elements_[i].dump(os, indent + 2);
          os << (i + 1 < elements_.size() ? ",\n" : "\n");
        }
        os << pad << "]";
        break;
      }
    }
  }

 private:
  enum class Kind { null, boolean, number, string, object, array, raw };

  template <typename T>
  static Json wrap(T&& value) {
    if constexpr (std::is_same_v<std::decay_t<T>, Json>) {
      return std::forward<T>(value);
    } else {
      return Json::of(std::forward<T>(value));
    }
  }

  static void write_escaped(std::ostream& os, const std::string& s) {
    os << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(c));
            os << buf;
          } else {
            os << c;
          }
      }
    }
    os << '"';
  }

  Kind kind_ = Kind::null;
  std::string scalar_;
  std::vector<std::pair<std::string, Json>> members_;  // object
  std::vector<Json> elements_;                         // array
};

/// Collects one bench's machine-readable results and writes BENCH_<ID>.json
/// into the current working directory on finish().
class JsonReport {
 public:
  JsonReport(const std::string& id, const std::string& description)
      : id_(id), root_(Json::object()) {
    root_.set("bench", id).set("description", description);
  }

  Json& root() { return root_; }

  /// Directs the artifact into `dir` instead of the current working
  /// directory. An explicit directory (the `--json <dir>` flag) wins over
  /// the COLEX_BENCH_JSON_DIR environment variable, which wins over cwd.
  void set_output_dir(std::string dir) { output_dir_ = std::move(dir); }

  /// Embeds a pre-serialized metrics snapshot (an obs::Registry::to_json()
  /// string) under the report's "metrics" key.
  void embed_metrics(const std::string& metrics_json) {
    root_.set_json("metrics", Json::raw(metrics_json));
  }

  /// Appends one measurement row to the report's "results" array.
  void add_result(Json row) {
    if (!has_results_) {
      root_.set_json("results", Json::array());
      has_results_ = true;
    }
    results_.push_back(std::move(row));
  }

  /// Writes BENCH_<ID>.json; returns the path written. Call once, last.
  std::string finish(double total_wall_seconds) {
    root_.set("wall_seconds", total_wall_seconds);
    if (has_results_) {
      Json arr = Json::array();
      for (auto& r : results_) arr.push(std::move(r));
      root_.set_json("results", std::move(arr));
    }
    std::string dir = output_dir_;
    if (dir.empty()) {
      if (const char* env = std::getenv("COLEX_BENCH_JSON_DIR")) dir = env;
    }
    std::string path = "BENCH_" + id_ + ".json";
    if (!dir.empty()) path = dir + "/" + path;
    std::ofstream out(path);
    root_.dump(out);
    out << "\n";
    std::cout << "\n[json] wrote " << path << "\n";
    return path;
  }

 private:
  std::string id_;
  std::string output_dir_;
  Json root_;
  bool has_results_ = false;
  std::vector<Json> results_;
};

/// Applies the shared bench flags to a report: `--json <dir>` redirects the
/// BENCH_<ID>.json artifact. Unrecognized arguments are left for the bench's
/// own parsing (e.g. --smoke).
inline void apply_json_flag(JsonReport& report, int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      report.set_output_dir(argv[i + 1]);
      return;
    }
  }
}

}  // namespace colex::bench
