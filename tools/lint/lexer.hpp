// Token-level lexer for colex-lint (see tools/lint/README in DESIGN.md §8).
//
// colex-lint deliberately stops at the token level: no clang front-end is
// available in the build image, and every rule we enforce (banned
// identifiers, container iteration, clone completeness, model-conformance
// inside automaton class extents) is decidable from tokens plus light brace
// matching. The lexer therefore only needs to be exact about the things that
// make token scans lie: comments, string/char literals (including raw
// strings), and line numbers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace colex::lint {

enum class Tok {
  identifier,  // keywords are identifiers too; rules match by text
  number,
  string_lit,
  char_lit,
  punct,  // single punctuation character ("<<" is two '<' tokens)
};

struct Token {
  Tok kind;
  std::string text;
  int line;  // 1-based
};

/// A comment, kept out of the token stream but retained for the
/// suppression/expectation markers (// colex-lint: ...).
struct Comment {
  int line;      // line the comment starts on
  int end_line;  // last line (> line for block comments and for // comments
                 // continued across a backslash line splice)
  std::string text;
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Lexes a whole translation unit. Never fails: unterminated literals are
/// closed at end-of-file (a linter must degrade gracefully on odd input).
LexResult lex(const std::string& source);

}  // namespace colex::lint
