#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace colex::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, IsDeterministicAndSeedSensitive) {
  Xoshiro256StarStar a(7), b(7), c(8);
  bool diverged = false;
  for (int i = 0; i < 64; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Xoshiro, BelowStaysInRange) {
  Xoshiro256StarStar rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro, BelowOneIsAlwaysZero) {
  Xoshiro256StarStar rng(3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro, BelowRejectsZeroBound) {
  Xoshiro256StarStar rng(3);
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(Xoshiro, InRangeInclusive) {
  Xoshiro256StarStar rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.in_range(3, 5));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{3, 4, 5}));
}

TEST(Xoshiro, Uniform01Range) {
  Xoshiro256StarStar rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, BelowIsRoughlyUniform) {
  Xoshiro256StarStar rng(13);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::array<int, kBound> bucket{};
  for (int i = 0; i < kSamples; ++i) ++bucket[rng.below(kBound)];
  for (const int b : bucket) {
    EXPECT_NEAR(b, kSamples / kBound, kSamples / kBound * 0.1);
  }
}

TEST(Xoshiro, GeometricTrialsSupportStartsAtOne) {
  Xoshiro256StarStar rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.geometric_trials(0.5), 1u);
}

TEST(Xoshiro, GeometricTrialsSureSuccessIsOne) {
  Xoshiro256StarStar rng(19);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.geometric_trials(1.0), 1u);
}

TEST(Xoshiro, GeometricTrialsMeanMatches) {
  // E[Geo(q)] = 1/q for the trials-until-success convention.
  Xoshiro256StarStar rng(23);
  const double q = 0.25;
  double sum = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.geometric_trials(q));
  }
  EXPECT_NEAR(sum / kSamples, 1.0 / q, 0.05);
}

TEST(Xoshiro, GeometricTrialsTailMatches) {
  // P(X > x) = (1-q)^x.
  Xoshiro256StarStar rng(29);
  const double q = 0.5;
  constexpr int kSamples = 100000;
  int exceed3 = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.geometric_trials(q) > 3) ++exceed3;
  }
  EXPECT_NEAR(static_cast<double>(exceed3) / kSamples, 0.125, 0.01);
}

TEST(Stats, EmptySummaryIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SingleElement) {
  const Summary s = summarize({5.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 5.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, 5.0);
  EXPECT_EQ(s.max, 5.0);
}

TEST(Stats, KnownSample) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_EQ(s.p50, 2.0);
}

TEST(Stats, AllEqualSampleHasZeroSpread) {
  const Summary s = summarize({7.0, 7.0, 7.0, 7.0, 7.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, 7.0);
  EXPECT_EQ(s.max, 7.0);
  EXPECT_EQ(s.p50, 7.0);
  EXPECT_EQ(s.p95, 7.0);
  EXPECT_EQ(s.p99, 7.0);
}

TEST(Stats, P99NearestRankOnHundredSamples) {
  // 1..100: nearest-rank p99 is ceil(0.99 * 100) = rank 99 -> value 99.
  std::vector<double> xs(100);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(i + 1);
  }
  const Summary s = summarize(xs);
  EXPECT_EQ(s.p99, 99.0);
  EXPECT_EQ(s.p95, 95.0);
  EXPECT_EQ(s.p50, 50.0);
}

TEST(Stats, P99IsOrderInsensitive) {
  // summarize sorts internally, so the reported tail is a pure function of
  // the multiset of samples — the property fuzz campaigns rely on when they
  // compare summaries across reruns of the same seed block.
  std::vector<double> fwd, rev;
  Xoshiro256StarStar rng(31);
  for (int i = 0; i < 500; ++i) {
    fwd.push_back(static_cast<double>(rng.below(10'000)));
  }
  rev.assign(fwd.rbegin(), fwd.rend());
  const Summary a = summarize(fwd);
  const Summary b = summarize(rev);
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_EQ(a.p95, b.p95);
  EXPECT_EQ(a.max, b.max);
}

TEST(Stats, SmallSampleP99IsMax) {
  // With fewer than 100 samples the 0.99 nearest rank is the last element.
  const Summary s = summarize({3.0, 1.0, 2.0});
  EXPECT_EQ(s.p99, 3.0);
}

TEST(Stats, NonFiniteSamplesAreDropped) {
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  const Summary s = summarize({1.0, nan, 3.0, inf, -inf, 2.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 3.0);
}

TEST(Stats, AllNonFiniteIsEmptySummary) {
  const Summary s = summarize({std::nan(""), std::nan("")});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(Stats, PercentileSingleElement) {
  const std::vector<double> one{42.0};
  EXPECT_EQ(percentile_sorted(one, 0.0), 42.0);
  EXPECT_EQ(percentile_sorted(one, 0.5), 42.0);
  EXPECT_EQ(percentile_sorted(one, 1.0), 42.0);
}

TEST(Stats, PercentileEmptyIsZero) {
  EXPECT_EQ(percentile_sorted({}, 0.5), 0.0);
}

TEST(Stats, PercentileRejectsOutOfRangeQuantile) {
  const std::vector<double> sorted{1.0, 2.0};
  EXPECT_THROW(percentile_sorted(sorted, -0.1), ContractViolation);
  EXPECT_THROW(percentile_sorted(sorted, 1.1), ContractViolation);
}

TEST(Stats, PercentileNearestRank) {
  const std::vector<double> sorted{10, 20, 30, 40, 50};
  EXPECT_EQ(percentile_sorted(sorted, 0.0), 10.0);
  EXPECT_EQ(percentile_sorted(sorted, 0.5), 30.0);
  EXPECT_EQ(percentile_sorted(sorted, 1.0), 50.0);
  EXPECT_EQ(percentile_sorted(sorted, 0.2), 10.0);
  EXPECT_EQ(percentile_sorted(sorted, 0.21), 20.0);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"a", "long-header"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, FixedFormatsDigits) {
  EXPECT_EQ(Table::fixed(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fixed(2.0, 1), "2.0");
}

TEST(Contracts, ExpectsThrowsWithLocation) {
  try {
    COLEX_EXPECTS(false);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("precondition"), std::string::npos);
  }
}

}  // namespace
}  // namespace colex::util
