file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_schedulers.dir/bench_e6_schedulers.cpp.o"
  "CMakeFiles/bench_e6_schedulers.dir/bench_e6_schedulers.cpp.o.d"
  "bench_e6_schedulers"
  "bench_e6_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
