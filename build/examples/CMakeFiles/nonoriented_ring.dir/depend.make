# Empty dependencies file for nonoriented_ring.
# This may be replaced when dependencies are built.
