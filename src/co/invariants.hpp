// Machine-checkable statements of the paper's invariants, shared by the
// property-test suites and the bench harness. Each checker returns an empty
// string when the invariant holds and a diagnostic otherwise, so tests can
// assert and benches can tally.
#pragma once

#include <string>

#include "co/alg1.hpp"
#include "co/alg2.hpp"
#include "co/alg3.hpp"

namespace colex::co {

/// Lemma 6, per node: while rho_cw < ID the node has sent exactly one more
/// pulse than it received (sigma_cw == rho_cw + 1); afterwards it has sent
/// exactly as many (sigma_cw == rho_cw). Applies to any instance of
/// Algorithm 1's relay discipline, including both directional instances
/// inside Algorithm 2 (the CCW instance counts only after it started).
inline std::string check_lemma6(std::uint64_t id, std::uint64_t rho,
                                std::uint64_t sigma, bool instance_started,
                                const char* what) {
  if (!instance_started) {
    return sigma == 0 ? std::string{}
                      : std::string(what) + ": sent before starting";
  }
  if (rho < id) {
    if (sigma != rho + 1) {
      return std::string(what) + ": expected sigma == rho+1, got sigma=" +
             std::to_string(sigma) + " rho=" + std::to_string(rho);
    }
  } else if (sigma != rho) {
    return std::string(what) + ": expected sigma == rho, got sigma=" +
           std::to_string(sigma) + " rho=" + std::to_string(rho);
  }
  return {};
}

/// All per-event invariants of Algorithm 1 at one node: Lemma 6 plus
/// Corollary 14 (rho_cw never exceeds the network's IDmax).
inline std::string check_alg1_invariants(const Alg1Stabilizing& alg,
                                         std::uint64_t id_max) {
  const auto& k = alg.counters();
  if (auto err = check_lemma6(alg.id(), k.rho_cw, k.sigma_cw, true, "cw");
      !err.empty()) {
    return err;
  }
  if (k.rho_cw > id_max) return "Corollary 14: rho_cw exceeds IDmax";
  return {};
}

/// Per-event invariants of Algorithm 2 at one node:
///  * Lemma 6 on the CW instance;
///  * Lemma 6 on the CCW instance once it has started (gated on
///    rho_cw >= ID; the termination pulse makes sigma_ccw = rho_ccw + 1
///    at the initiator and rho_ccw = sigma_ccw (+1 consumed) elsewhere, so
///    the CCW check must tolerate the +1 from the termination wave);
///  * the CCW instance never leads the CW one by more than the single
///    termination pulse (rho_ccw <= rho_cw + 1);
///  * only a node whose ID equals rho_cw may have initiated termination.
inline std::string check_alg2_invariants(const Alg2Terminating& alg,
                                         std::uint64_t id_max) {
  const auto& k = alg.counters();
  if (auto err = check_lemma6(alg.id(), k.rho_cw, k.sigma_cw, true, "cw");
      !err.empty()) {
    return err;
  }
  if (k.rho_cw > id_max) return "Corollary 14 (cw): rho_cw exceeds IDmax";
  if (k.rho_ccw > id_max + 1) return "rho_ccw exceeds IDmax+1";
  if (k.rho_ccw > k.rho_cw + 1) return "CCW instance overtook CW instance";
  const bool ccw_started = k.sigma_ccw > 0;
  if (!ccw_started && k.rho_cw >= alg.id()) {
    // A started node past its threshold must have launched the CCW
    // instance within the same react.
    return "CCW instance not started despite rho_cw >= ID";
  }
  // Lemma 6 on the CCW instance, modulo the termination pulse: sigma_ccw
  // may exceed the plain-instance prediction by at most 1 (the initiator's
  // extra pulse or a forwarded termination pulse).
  if (ccw_started) {
    const std::uint64_t predicted =
        k.rho_ccw < alg.id() ? k.rho_ccw + 1 : k.rho_ccw;
    if (k.sigma_ccw != predicted && k.sigma_ccw != predicted + 1) {
      return "Lemma 6 (ccw, +termination) violated: sigma_ccw=" +
             std::to_string(k.sigma_ccw) +
             " predicted=" + std::to_string(predicted);
    }
  }
  return {};
}

/// Per-event invariants of Algorithm 3 at one node: Lemma 6 applied to each
/// of the two directional instances (pulses received at port 1-i govern
/// sends out of port i under virtual ID ID^(i)).
inline std::string check_alg3_invariants(const Alg3NonOriented& alg,
                                         IdScheme scheme) {
  const VirtualIds vids = virtual_ids(alg.initial_id(), scheme);
  for (const int i : {0, 1}) {
    const std::uint64_t rho_in = alg.rho(sim::port_from_index(1 - i));
    const std::uint64_t sigma_out = alg.sigma(sim::port_from_index(i));
    // sigma includes the initial pulse from start (line 3): identical
    // bookkeeping to Algorithm 1.
    if (auto err = check_lemma6(vids.vid[i], rho_in, sigma_out, true,
                                i == 0 ? "flow-0" : "flow-1");
        !err.empty()) {
      return err;
    }
  }
  return {};
}

}  // namespace colex::co
