#include "runtime/thread_ring.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

namespace colex::rt {

bool NodeIo::dead() const { return ring_.crash_epoch(self_) != epoch_; }

bool NodeIo::stopped() const { return ring_.stopped() || dead(); }

bool NodeIo::recv(sim::Port p) {
  if (dead()) return false;
  return ring_.recv(self_, p);
}
std::size_t NodeIo::pending(sim::Port p) const {
  return ring_.pending(self_, p);
}
void NodeIo::send(sim::Port p) {
  // A crashed incarnation cannot transmit; the pulse vanishes with the node.
  if (dead()) return;
  ring_.send(self_, p);
}
bool NodeIo::wait_any() {
  if (dead()) return false;
  return ring_.wait_any(self_);
}
void NodeIo::set_phase(obs::Phase p) {
  if (dead()) return;
  ring_.set_phase(self_, p);
}

ThreadRing::ThreadRing(std::size_t n, std::vector<bool> port_flips)
    : nodes_(n) {
  COLEX_EXPECTS(n >= 1);
  COLEX_EXPECTS(port_flips.empty() || port_flips.size() == n);
  auto flipped = [&port_flips](sim::NodeId v) {
    return !port_flips.empty() && port_flips[v];
  };
  // Same layout as sim::Network<P>::ring: edge i attaches node i's Port1 to
  // node i+1's Port0 in the oriented base, with per-node label flips.
  for (sim::NodeId i = 0; i < n; ++i) {
    const sim::NodeId j = (i + 1) % n;
    const sim::Port from = flipped(i) ? sim::Port::p0 : sim::Port::p1;
    const sim::Port to = flipped(j) ? sim::Port::p1 : sim::Port::p0;
    nodes_[i].peer[sim::index(from)] = j;
    nodes_[i].peer_port[sim::index(from)] = to;
    nodes_[j].peer[sim::index(to)] = i;
    nodes_[j].peer_port[sim::index(to)] = from;
  }
}

bool ThreadRing::recv(sim::NodeId v, sim::Port p) {
  auto& node = nodes_[v];
  std::lock_guard<std::mutex> lock(node.mutex);
  if (node.crashed.load()) return false;
  auto& q = node.pending[sim::index(p)];
  if (q == 0) return false;
  --q;
  consumed_.fetch_add(1);
  node.consumed.fetch_add(1);
  return true;
}

void ThreadRing::send(sim::NodeId v, sim::Port p) {
  auto& self = nodes_[v];
  // A crashed node transmits nothing, even if the caller's io handle was
  // minted in the current epoch (crash landed before its first operation).
  if (self.crashed.load()) return;
  const sim::NodeId to = self.peer[sim::index(p)];
  const sim::Port to_port = self.peer_port[sim::index(p)];
  auto& dest = nodes_[to];
  {
    std::lock_guard<std::mutex> lock(dest.mutex);
    // sent_ is incremented inside the destination lock so that any observer
    // seeing sent_ == consumed_ is guaranteed no pulse is pending anywhere.
    sent_.fetch_add(1);
    self.sent.fetch_add(1);
    if (dest.crashed.load()) {
      // Delivery to a crashed node is swallowed. It still counts as
      // consumed so the conservation argument behind quiescence detection
      // stays sound (otherwise a permanently crashed node would read as a
      // forever-in-flight pulse and the run could never complete).
      consumed_.fetch_add(1);
      dest.consumed.fetch_add(1);
      crash_lost_.fetch_add(1);
      return;
    }
    ++dest.pending[sim::index(to_port)];
  }
  dest.cv.notify_all();
}

std::size_t ThreadRing::pending(sim::NodeId v, sim::Port p) const {
  const auto& node = nodes_[v];
  std::lock_guard<std::mutex> lock(node.mutex);
  return static_cast<std::size_t>(node.pending[sim::index(p)]);
}

bool ThreadRing::wait_any(sim::NodeId v) {
  auto& node = nodes_[v];
  std::unique_lock<std::mutex> lock(node.mutex);
  if (node.crashed.load()) return false;
  if (node.pending[0] != 0 || node.pending[1] != 0) return true;
  if (stop_.load()) return false;
  // Wake on any epoch movement, not just `crashed`: a back-to-back
  // crash()+recover() can clear the flag before this thread re-evaluates
  // the predicate, and waiting on `crashed` alone would re-sleep through
  // the whole crash — the incarnation would never notice it died.
  const std::uint64_t e0 = node.crash_epoch.load();
  const bool timed = metrics_ != nullptr;
  const auto wait_start =
      timed ? std::chrono::steady_clock::now()
            : std::chrono::steady_clock::time_point{};
  idle_.fetch_add(1);
  // This idle transition may be the one that completes global quiescence
  // (all accounted + sent==consumed): tell the monitor instead of letting
  // it find out on its next polling tick.
  maybe_notify_monitor();
  node.cv.wait(lock, [&node, this, e0] {
    return node.pending[0] != 0 || node.pending[1] != 0 || stop_.load() ||
           node.crash_epoch.load() != e0;
  });
  idle_.fetch_sub(1);
  if (timed) {
    const auto blocked = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - wait_start)
                             .count();
    const auto ns = static_cast<std::uint64_t>(blocked);
    node.wait_count.fetch_add(1);
    node.wait_ns.fetch_add(ns);
    const std::size_t phase = node.phase.load(std::memory_order_relaxed);
    node.phase_wait_count[phase].fetch_add(1, std::memory_order_relaxed);
    node.phase_wait_ns[phase].fetch_add(ns, std::memory_order_relaxed);
    // Monotonic max; only this node's worker writes, so a plain CAS loop
    // converges immediately.
    std::uint64_t cur = node.wait_max_ns.load();
    while (cur < ns && !node.wait_max_ns.compare_exchange_weak(cur, ns)) {
    }
  }
  return node.pending[0] != 0 || node.pending[1] != 0;
}

void ThreadRing::crash(sim::NodeId v) {
  auto& node = nodes_[v];
  std::uint64_t lost = 0;
  {
    std::lock_guard<std::mutex> lock(node.mutex);
    COLEX_EXPECTS(!node.crashed.load());
    node.crashed.store(true);
    node.crash_epoch.fetch_add(1);
    lost = node.pending[0] + node.pending[1];
    node.pending[0] = 0;
    node.pending[1] = 0;
    // The lost pulses count as consumed: they are gone from the fabric.
    consumed_.fetch_add(lost);
    node.consumed.fetch_add(lost);
  }
  crash_lost_.fetch_add(lost);
  crash_count_.fetch_add(1);
  if (flight_fabric_ != nullptr) flight_fabric_->record("crash", v, lost);
  node.cv.notify_all();
  // Swallowing the pending pulses may have closed the sent==consumed gap.
  maybe_notify_monitor();
}

void ThreadRing::recover(sim::NodeId v) {
  auto& node = nodes_[v];
  {
    std::lock_guard<std::mutex> lock(node.mutex);
    COLEX_EXPECTS(node.crashed.load());
    node.crashed.store(false);
    // The fresh incarnation restarts its algorithm from scratch — reset the
    // published phase with it.
    node.phase.store(0, std::memory_order_relaxed);
  }
  recovery_count_.fetch_add(1);
  if (flight_fabric_ != nullptr) flight_fabric_->record("recover", v);
  node.cv.notify_all();
}

bool ThreadRing::await_recovery(sim::NodeId v) {
  auto& node = nodes_[v];
  std::unique_lock<std::mutex> lock(node.mutex);
  // Parking counts as catching up with the crash: a permanently crashed
  // node must not block quiescence detection forever.
  ack_epoch(v, node.crash_epoch.load());
  awaiting_recovery_.fetch_add(1);
  maybe_notify_monitor();
  node.cv.wait(lock, [&node, this] {
    return !node.crashed.load() || stop_.load();
  });
  awaiting_recovery_.fetch_sub(1);
  return !stop_.load() && !node.crashed.load();
}

void ThreadRing::inject_pulse(sim::NodeId to, sim::Port p) {
  auto& dest = nodes_[to];
  {
    std::lock_guard<std::mutex> lock(dest.mutex);
    COLEX_EXPECTS(!dest.crashed.load());
    sent_.fetch_add(1);
    ++dest.pending[sim::index(p)];
  }
  injected_.fetch_add(1);
  if (flight_fabric_ != nullptr) {
    flight_fabric_->record("inject", to,
                           static_cast<std::uint64_t>(sim::index(p)));
  }
  dest.cv.notify_all();
}

void ThreadRing::ack_epoch(sim::NodeId v, std::uint64_t epoch) {
  // Monotonic max: a stale io() handle minted concurrently with a crash
  // must not roll the acknowledgement backwards.
  auto& acked = nodes_[v].acked_epoch;
  std::uint64_t cur = acked.load();
  while (cur < epoch && !acked.compare_exchange_weak(cur, epoch)) {
  }
  // Catching up with an incarnation can be the last gate quiescence
  // detection was waiting on (all_epochs_acked).
  maybe_notify_monitor();
}

bool ThreadRing::all_epochs_acked() const {
  for (const auto& node : nodes_) {
    if (node.acked_epoch.load() < node.crash_epoch.load()) return false;
  }
  return true;
}

void ThreadRing::broadcast_stop() {
  stop_.store(true);
  for (auto& node : nodes_) {
    std::lock_guard<std::mutex> lock(node.mutex);
    node.cv.notify_all();
  }
}

void ThreadRing::record_progress_sample(double elapsed_ms) {
  const std::uint64_t consumed = consumed_.load();
  std::ostringstream os;
  os << "t=" << static_cast<std::uint64_t>(elapsed_ms)
     << "ms sent=" << sent_.load() << " consumed=" << consumed
     << " idle=" << idle_.load()
     << " awaiting-recovery=" << awaiting_recovery_.load()
     << " finished=" << finished_.load();
  // The consumed count is the progress indicator: it moves on every pulse
  // absorbed anywhere in the fabric, so a flat tail means a genuine stall.
  progress_.record(consumed, os.str());
  if (flight_monitor_ != nullptr) {
    flight_monitor_->record("progress", consumed, idle_.load());
  }
}

void ThreadRing::publish_metrics() const {
  if (metrics_ == nullptr) return;
  obs::Registry& reg = *metrics_;
  reg.counter("rt.sent").inc(sent_.load());
  reg.counter("rt.consumed").inc(consumed_.load());
  reg.counter("rt.crashes").inc(crash_count_.load());
  reg.counter("rt.recoveries").inc(recovery_count_.load());
  reg.counter("rt.crash_lost").inc(crash_lost_.load());
  reg.counter("rt.injected").inc(injected_.load());
  // Blocking-wait durations in milliseconds: bucket edges chosen for the
  // condvar scale (sub-100µs wakeups up to watchdog-length stalls). One
  // record per node of its mean wait — exact per-wait samples would need
  // per-wait registry writes, which the single-writer contract forbids; the
  // per-node counters below carry the exact totals.
  auto& waits = reg.histogram(
      "rt.mean_wait_ms", {0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 1000.0});
  for (sim::NodeId v = 0; v < nodes_.size(); ++v) {
    const auto& node = nodes_[v];
    const std::string id = std::to_string(v);
    reg.counter("rt.node." + id + ".sent").inc(node.sent.load());
    reg.counter("rt.node." + id + ".consumed").inc(node.consumed.load());
    reg.counter("rt.node." + id + ".waits").inc(node.wait_count.load());
    reg.counter("rt.node." + id + ".wait_ns").inc(node.wait_ns.load());
    reg.gauge("rt.node." + id + ".wait_max_ms")
        .track_max(static_cast<double>(node.wait_max_ns.load()) / 1e6);
    const std::uint64_t count = node.wait_count.load();
    if (count > 0) {
      waits.record(static_cast<double>(node.wait_ns.load()) / 1e6 /
                   static_cast<double>(count));
    }
  }
  // Phase telemetry: where every node is right now (one gauge per phase)
  // and the per-node mean blocking wait attributed to the phase in force
  // when the wait began (one histogram per phase, same bounds as above).
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    const char* name = obs::phase_name(i);
    std::uint64_t in_phase = 0;
    auto& phase_waits =
        reg.histogram(obs::labeled("rt.wait_ms", "phase", name),
                      {0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 1000.0});
    std::uint64_t wait_count = 0;
    std::uint64_t wait_ns = 0;
    for (const auto& node : nodes_) {
      if (node.phase.load(std::memory_order_relaxed) == i) ++in_phase;
      const std::uint64_t c =
          node.phase_wait_count[i].load(std::memory_order_relaxed);
      const std::uint64_t ns =
          node.phase_wait_ns[i].load(std::memory_order_relaxed);
      wait_count += c;
      wait_ns += ns;
      if (c > 0) {
        phase_waits.record(static_cast<double>(ns) / 1e6 /
                           static_cast<double>(c));
      }
    }
    reg.gauge(obs::labeled("rt.phase_nodes", "phase", name))
        .set(static_cast<double>(in_phase));
    reg.counter(obs::labeled("rt.waits", "phase", name)).inc(wait_count);
    reg.counter(obs::labeled("rt.wait_ns", "phase", name)).inc(wait_ns);
  }
}

bool ThreadRing::candidate_quiescent() const {
  // Every worker is either blocked on an empty port, parked waiting for
  // its crashed node to be recovered, or done; every pulse sent has been
  // consumed. all_epochs_acked guards the crash-recovery window: right
  // after a crash (or crash+recover) the worker may still be counted idle
  // — parked on its condvar, woken but not yet scheduled — while its
  // restart, and the fresh pulse that comes with it, is inevitable. Until
  // the worker acknowledges the new incarnation (io() or
  // await_recovery()), the fabric only *looks* quiet.
  const std::size_t accounted =
      idle_.load() + awaiting_recovery_.load() + finished_.load();
  return accounted == nodes_.size() &&
         sent_.load() == consumed_.load() && all_epochs_acked();
}

void ThreadRing::maybe_notify_monitor() {
  if (finished_.load() != nodes_.size() && !candidate_quiescent()) return;
  // Lock-then-notify: the monitor evaluates its predicate under
  // monitor_mutex_ before waiting, so taking the (empty) critical section
  // here guarantees the monitor is either pre-check (and will see the new
  // counters) or already waiting (and receives the notify) — a wakeup can
  // never fall into the gap between the two.
  { std::lock_guard<std::mutex> lock(monitor_mutex_); }
  monitor_cv_.notify_one();
}

bool ThreadRing::monitor(std::uint64_t timeout_ms) {
  const auto started = std::chrono::steady_clock::now();
  const auto deadline = started + std::chrono::milliseconds(timeout_ms);
  // Progress history cadence: cover the whole timeout with kProgressSamples
  // samples, but never sample slower than every 50ms on short runs.
  const auto sample_every = std::chrono::milliseconds(
      std::max<std::uint64_t>(timeout_ms / kProgressSamples, 50));
  auto next_sample = started;
  const std::size_t n = nodes_.size();
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= next_sample) {
      record_progress_sample(
          std::chrono::duration<double, std::milli>(now - started).count());
      next_sample = now + sample_every;
    }
    if (finished_.load() == n) {  // natural termination
      if (flight_monitor_ != nullptr) {
        flight_monitor_->record("all-finished", sent_.load());
      }
      return true;
    }
    if (candidate_quiescent()) {
      // Double-scan: re-observe after a pause to ride out races between a
      // send and the receiver waking up.
      std::this_thread::sleep_for(std::chrono::microseconds(300));
      if (candidate_quiescent()) {
        if (flight_monitor_ != nullptr) {
          flight_monitor_->record("quiescent", sent_.load());
        }
        broadcast_stop();
        return true;
      }
    }
    if (std::chrono::steady_clock::now() > deadline) {
      if (flight_monitor_ != nullptr) {
        flight_monitor_->record("timeout", sent_.load(), consumed_.load());
      }
      broadcast_stop();
      return false;
    }
    // Event-driven idle detection: sleep until a worker signals a
    // quiescence candidate (maybe_notify_monitor) instead of polling on a
    // fixed sleep — the old 200µs poll put the scheduling latency of this
    // thread on the critical path of every small-n run. The wait is still
    // bounded by the sampling cadence so the progress history and the
    // deadline keep their timing.
    std::unique_lock<std::mutex> lock(monitor_mutex_);
    if (finished_.load() != n && !candidate_quiescent()) {
      monitor_cv_.wait_until(lock, std::min(next_sample, deadline));
    }
  }
}

std::string ThreadRing::dump() const {
  std::ostringstream os;
  os << "thread-ring state: n=" << nodes_.size() << " sent=" << sent_.load()
     << " consumed=" << consumed_.load() << " idle=" << idle_.load()
     << " awaiting-recovery=" << awaiting_recovery_.load()
     << " finished=" << finished_.load() << " crashes=" << crash_count_.load()
     << " recoveries=" << recovery_count_.load()
     << " crash-lost=" << crash_lost_.load()
     << " injected=" << injected_.load() << "\n";
  for (sim::NodeId v = 0; v < nodes_.size(); ++v) {
    const auto& node = nodes_[v];
    std::uint64_t p0 = 0;
    std::uint64_t p1 = 0;
    std::uint64_t sent = 0;
    std::uint64_t consumed = 0;
    std::uint64_t epoch = 0;
    std::uint64_t acked = 0;
    bool crashed = false;
    // Epoch fence: a watchdog fire can race a crash()/recover() swapping the
    // node's incarnation. Take the epoch before the counter snapshot and
    // re-check it afterwards — a snapshot whose fence moved straddles two
    // incarnations (e.g. pending already cleared, CRASHED not yet visible)
    // and is retried. crash() and recover() flip state under node.mutex, so
    // a snapshot with matching fences is coherent with one incarnation.
    for (;;) {
      const std::uint64_t fence = node.crash_epoch.load();
      {
        std::lock_guard<std::mutex> lock(node.mutex);
        p0 = node.pending[0];
        p1 = node.pending[1];
        sent = node.sent.load();
        consumed = node.consumed.load();
        crashed = node.crashed.load();
        epoch = node.crash_epoch.load();
        acked = node.acked_epoch.load();
      }
      if (epoch == fence) break;
    }
    os << "  node " << v << ": phase="
       << obs::phase_name(node.phase.load(std::memory_order_relaxed))
       << " pending[p0]=" << p0 << " pending[p1]=" << p1 << " sent=" << sent
       << " consumed=" << consumed << (crashed ? " CRASHED" : "")
       << " epoch=" << epoch << " acked=" << acked << "\n";
  }
  // Phase distribution at the moment of the dump: the single most useful
  // stall signal ("everyone is parked in initiated_wait" reads instantly).
  {
    std::uint64_t in_phase[obs::kPhaseCount] = {};
    for (const auto& node : nodes_) {
      ++in_phase[node.phase.load(std::memory_order_relaxed)];
    }
    os << "  phases:";
    for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
      if (in_phase[i] != 0) {
        os << " " << obs::phase_name(i) << "=" << in_phase[i];
      }
    }
    os << "\n";
  }
  {
    const std::vector<std::string> history = progress_.history();
    if (!history.empty()) {
      os << "  progress history (last " << history.size() << " samples):\n";
      for (const auto& sample : history) os << "    " << sample << "\n";
    }
  }
  if (flight_ != nullptr) os << "  " << flight_->render_tail(32);
  if (metrics_ != nullptr) {
    publish_metrics();
    os << "  metrics: " << metrics_->to_json() << "\n";
  }
  return os.str();
}

}  // namespace colex::rt
