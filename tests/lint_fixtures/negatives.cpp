// Fixture: negatives — lookalikes that must stay clean.
//
// This file plants NO violations. The self-test fails on any finding here
// ("unexpected finding with no expect marker"), so it pins down the
// lexer's comment/string handling and the rules' lookalike filtering.
#include <string>

// A comment may mention std::rand(), mt19937, and time(nullptr) freely.
inline const char* doc() {
  return "strings may mention rand(), random_device and "
         "unordered_map iteration without tripping the lexer";
}

// A variable or parameter merely *named* time is not wall-clock seeding.
inline int time_like(int time) { return time + 1; }

inline const char* raw() {
  return R"(for (auto& kv : counters_) { std::rand(); })";
}
