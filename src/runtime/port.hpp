// The execution-model seam shared by ThreadRing, the coroutine runtime
// (src/coro), and the socket backend (src/net): one coroutine task type,
// one per-node outcome record, and one run-result shape, over the
// Transport/PulsePort concepts of runtime/transport.hpp.
//
// The paper's pseudocode is transcribed once, as a template coroutine over a
// `PulsePort` (blocking_algs.hpp). The only operation that can block is
// wait_any(), so it is the only awaitable; recv()/send() are plain calls.
// On the coroutine runtime the awaitable parks the node until a pulse
// arrives. On the blocking substrates (ThreadRing, src/net), TransportPort
// performs the blocking wait inside await_ready() and never suspends — the
// coroutine therefore runs to completion in one resume, byte-for-byte the
// old blocking behavior, on the thread that resumed it.
#pragma once

#include <array>
#include <concepts>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "co/oriented.hpp"
#include "co/roles.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "runtime/thread_ring.hpp"
#include "runtime/transport.hpp"
#include "sim/types.hpp"
#include "util/contracts.hpp"

namespace colex::rt {

/// Per-node outcome of a blocking-style run (either runtime).
struct BlockingOutcome {
  std::uint64_t id = 0;
  co::Role role = co::Role::undecided;
  co::PulseCounters counters;          ///< oriented algorithms
  std::uint64_t rho_port[2] = {0, 0};  ///< Algorithm 3
  std::uint64_t sigma_port[2] = {0, 0};
  sim::Port cw_port = sim::Port::p1;   ///< Algorithm 3 orientation output
  bool terminated = false;  ///< returned via the algorithm's own exit (Alg 2)
  bool stopped = false;     ///< harness stop (quiescence) ended the run
  /// Times this node crash-recovered and re-ran its algorithm from scratch.
  /// A node that crashed and never recovered reports a default outcome with
  /// `stopped` set: its local state died with it.
  std::uint64_t restarts = 0;
  /// Pulses sent and blocking waits entered, attributed to the algorithm
  /// phase the node was in at the time (obs/phase.hpp). Plain coroutine
  /// locals — always-on, deterministic, and free of synchronization; the
  /// harnesses merge them post-join into per-phase registry series.
  std::array<std::uint64_t, obs::kPhaseCount> phase_sends{};
  std::array<std::uint64_t, obs::kPhaseCount> phase_waits{};
};

/// Folds the outcomes' per-phase send tallies into `registry` as
/// `<sends_family>{phase=...}` counter series (and, when `waits_family` is
/// non-null, the per-phase wait tallies too). Post-join only — the
/// registry's single-writer contract.
inline void publish_phase_pulses(obs::Registry& registry,
                                 const std::string& sends_family,
                                 const std::vector<BlockingOutcome>& outcomes,
                                 const char* waits_family = nullptr) {
  std::array<std::uint64_t, obs::kPhaseCount> sends{};
  std::array<std::uint64_t, obs::kPhaseCount> waits{};
  for (const auto& out : outcomes) {
    for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
      sends[i] += out.phase_sends[i];
      waits[i] += out.phase_waits[i];
    }
  }
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    const char* name = obs::phase_name(i);
    registry.counter(obs::labeled(sends_family, "phase", name)).inc(sends[i]);
    if (waits_family != nullptr) {
      registry.counter(obs::labeled(waits_family, "phase", name))
          .inc(waits[i]);
    }
  }
}

/// The substrate-agnostic result of one blocking-style run: every backend
/// that drives the transcriptions to completion (ThreadRing, the coroutine
/// executor, the socket fabric) reports this same shape, which is what
/// makes the cross-substrate conformance suite a field-by-field comparison.
/// Backends extend it with their substrate-specific telemetry
/// (ThreadRunResult adds fault counters, CoroRunResult scheduler stats,
/// net::SocketRunResult wire counters).
struct TransportRunResult {
  std::vector<BlockingOutcome> outcomes;
  std::uint64_t pulses = 0;  ///< total pulses sent on the fabric
  bool completed = false;    ///< quiescence or natural termination
  std::size_t leader_count = 0;
  std::optional<sim::NodeId> leader;
  /// Non-empty iff the run failed to settle (`completed == false`): the
  /// substrate's post-mortem, so a stalled run aborts with evidence.
  std::string stall_dump;
};

/// Folds `outcomes` into the leader tally fields (leader_count and the
/// first leader's index) — identical logic previously repeated per backend.
inline void tally_leaders(TransportRunResult& r) {
  r.leader_count = 0;
  r.leader.reset();
  for (sim::NodeId v = 0; v < r.outcomes.size(); ++v) {
    if (r.outcomes[v].role == co::Role::leader) {
      ++r.leader_count;
      if (!r.leader) r.leader = v;
    }
  }
}

/// Coroutine handle for one node's election run. Lazy-started: the creator
/// decides when (and on which thread) the body first runs. The outcome is
/// stored in the promise and read after completion via outcome().
class ElectionTask {
 public:
  struct promise_type {
    BlockingOutcome outcome;
    std::exception_ptr error;

    ElectionTask get_return_object() {
      return ElectionTask(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_value(BlockingOutcome out) { outcome = out; }
    // Contract violations throw (util/contracts.hpp); park the exception in
    // the promise so the driver rethrows it where the caller can see it.
    void unhandled_exception() { error = std::current_exception(); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  ElectionTask() = default;
  explicit ElectionTask(Handle h) : handle_(h) {}
  ElectionTask(ElectionTask&& other) noexcept
      : handle_(std::exchange(other.handle_, {})) {}
  ElectionTask& operator=(ElectionTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ElectionTask(const ElectionTask&) = delete;
  ElectionTask& operator=(const ElectionTask&) = delete;
  ~ElectionTask() { destroy(); }

  Handle handle() const { return handle_; }
  bool done() const { return handle_ && handle_.done(); }
  /// Rethrows an exception that escaped the algorithm body, if any.
  void rethrow_if_error() const {
    if (handle_ && handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
  }
  /// The node's result; only meaningful once done().
  const BlockingOutcome& outcome() const {
    COLEX_EXPECTS(done());
    rethrow_if_error();
    return handle_.promise().outcome;
  }

 private:
  void destroy() {
    if (handle_) handle_.destroy();
    handle_ = {};
  }
  Handle handle_;
};

// NodeIo models the transport seam natively (wait blocks on the node's
// condition variable; stop/crash make it return false), so the ThreadRing
// PulsePort is just the generic blocking adapter instantiated over it. The
// socket backend (src/net) plugs its endpoint handle into the exact same
// template — that is the whole point of the seam.
static_assert(Transport<NodeIo>);

/// ThreadRing-side PulsePort: TransportPort over a NodeIo, so the template
/// coroutine transcriptions run on it unchanged. The wait_any() awaitable
/// blocks inside await_ready() (on the node's condition variable, via
/// NodeIo::wait) and always reports ready, so the coroutine never actually
/// suspends — resuming it once runs the algorithm to completion exactly as
/// the plain blocking function did.
using BlockingPortAdapter = TransportPort<NodeIo>;

static_assert(PulsePort<BlockingPortAdapter>);

/// Runs a lazily-started ElectionTask whose port never suspends (e.g. over
/// BlockingPortAdapter) to completion on the calling thread and returns the
/// outcome.
inline BlockingOutcome drive_blocking(ElectionTask task) {
  task.handle().resume();
  COLEX_ENSURES(task.done());
  return task.outcome();
}

}  // namespace colex::rt
