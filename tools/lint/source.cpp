#include "lint/source.hpp"

#include <cctype>

namespace colex::lint {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Splits "D001, D002" into trimmed rule ids.
std::vector<std::string> split_rules(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else if (c != ' ' && c != '\t') {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// Parses every `name(args)` directive after a "colex-lint:" introducer.
/// `anchor` is the line the markers attach to: the last line of the
/// contiguous comment block the directive lives in, so a justification may
/// wrap onto further comment lines below the directive.
void parse_markers(SourceFile& file, const Comment& comment, int anchor) {
  const std::string key = "colex-lint:";
  std::size_t at = comment.text.find(key);
  if (at == std::string::npos) return;
  at += key.size();
  while (at < comment.text.size()) {
    // Next directive name.
    while (at < comment.text.size() &&
           !(std::isalpha(static_cast<unsigned char>(comment.text[at])) != 0)) {
      ++at;
    }
    std::size_t name_end = at;
    while (name_end < comment.text.size() &&
           (std::isalnum(static_cast<unsigned char>(comment.text[name_end])) !=
                0 ||
            comment.text[name_end] == '-')) {
      ++name_end;
    }
    if (name_end >= comment.text.size() || comment.text[name_end] != '(') {
      break;  // trailing justification prose, not a directive
    }
    const std::string name = comment.text.substr(at, name_end - at);
    const std::size_t close = comment.text.find(')', name_end);
    if (close == std::string::npos) break;
    const std::vector<std::string> rules =
        split_rules(comment.text.substr(name_end + 1, close - name_end - 1));
    if (name == "allow") {
      for (const auto& r : rules) file.allow[anchor].insert(r);
    } else if (name == "allow-file") {
      for (const auto& r : rules) file.allow_file.insert(r);
    } else if (name == "expect") {
      for (const auto& r : rules) file.expect[anchor].push_back(r);
    } else if (name == "expect-suppressed") {
      for (const auto& r : rules) file.expect_suppressed[anchor].push_back(r);
    }
    at = close + 1;
  }
}

}  // namespace

bool SourceFile::suppressed(const std::string& rule, int line) const {
  if (allow_file.count(rule) != 0) return true;
  for (const int l : {line, line - 1}) {
    const auto it = allow.find(l);
    if (it != allow.end() && it->second.count(rule) != 0) return true;
  }
  return false;
}

SourceFile make_source_file(std::string path, const std::string& source) {
  SourceFile file;
  file.is_header = ends_with(path, ".hpp") || ends_with(path, ".h") ||
                   ends_with(path, ".hh") || ends_with(path, ".hxx");
  file.path = std::move(path);
  LexResult lexed = lex(source);
  file.tokens = std::move(lexed.tokens);
  file.comments = std::move(lexed.comments);
  std::set<int> code_lines;
  for (const Token& t : file.tokens) code_lines.insert(t.line);
  std::set<int> comment_lines;
  for (const Comment& c : file.comments) {
    for (int l = c.line; l <= c.end_line; ++l) comment_lines.insert(l);
  }
  for (const Comment& c : file.comments) {
    int anchor = c.end_line;
    while (comment_lines.count(anchor + 1) != 0 &&
           code_lines.count(anchor + 1) == 0) {
      ++anchor;
    }
    parse_markers(file, c, anchor);
  }
  return file;
}

}  // namespace colex::lint
