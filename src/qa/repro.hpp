// Replayable counterexample files (colex-repro-v1): a FuzzCase plus the
// failure it reproduces, serialized as line-typed JSONL in the same minimal
// dialect as the colex-trace-v1 exporter — flat objects, one per line,
// parseable without a JSON library. A repro file is self-contained: loading
// it and running check_case with the recorded property options must
// reproduce the recorded failed property deterministically (that round trip
// is exactly what `colex-fuzz replay` and the CI regression gate do).
//
// Layout:
//   {"type":"repro","format":"colex-repro-v1",...}   header: config + verdict
//   {"type":"tape","choices":[...]}                   pinned schedule
//   {"type":"fault-plan",...}                         plan seed + baseline probs
//   {"type":"override",...}                           per-channel profile (0+)
//   {"type":"scripted",...}                           scripted one-shot (0+)
//   {"type":"preseed",...}                            pre-seeded channel (0+)
//   {"type":"corrupt",...}                            initial-state corruption
//
// Probabilities are printed with max_digits10 significant digits, which
// round-trips IEEE doubles exactly through strtod.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/export.hpp"
#include "qa/generators.hpp"
#include "qa/properties.hpp"

namespace colex::qa {

struct ReproFile {
  FuzzCase c;
  PropertyOptions props;  ///< the options the failure was found under
  std::string failed_property;
  std::string diagnostic;
};

void write_repro(std::ostream& os, const ReproFile& repro);
std::string to_repro(const ReproFile& repro);

/// Parses a colex-repro-v1 stream. Throws util::ContractViolation on
/// malformed input.
ReproFile load_repro(std::istream& is);
ReproFile load_repro_file(const std::string& path);
void save_repro_file(const std::string& path, const ReproFile& repro);

/// Trace metadata for exporting this case's event stream: uses the
/// *effective* IDmax (2*IDmax-1 for the doubled scheme) so colex-inspect's
/// n(2*id_max+1) bound formula equals the bound that actually applies.
obs::TraceMeta trace_meta_for(const FuzzCase& c);

}  // namespace colex::qa
