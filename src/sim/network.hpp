// The asynchronous ring network of the content-oblivious model (paper §2),
// as a discrete-event simulation.
//
// Design notes
// ------------
// * The network is templated over the channel payload. The paper's fully
//   defective model uses `Pulse` (empty payload: all content erased by
//   noise); the classical baselines in src/baselines reuse the identical
//   machinery with content-carrying payloads, which makes the comparison
//   experiments apples-to-apples.
// * Channels are per-direction FIFO. For indistinguishable pulses this is
//   without loss of generality; cross-channel interleaving is controlled by
//   a Scheduler (see scheduler.hpp), which is where all adversarial
//   asynchrony lives.
// * Nodes are event-driven (paper §2): they act once at start and afterwards
//   only when a pulse is delivered. A delivery pushes the payload into the
//   destination node's per-port incoming queue and triggers `react`, which
//   runs the node's algorithm to local completion (the paper presents
//   algorithms as loops over non-blocking recv calls; `react` executes loop
//   iterations until no further local progress is possible). Unconsumed
//   queued pulses — e.g. CCW pulses that Algorithm 2 refuses to read until
//   rho_cw >= ID — simply wait in the queue; the paper counts them as still
//   "in transit" (footnote 2), and so do we.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/types.hpp"
#include "util/contracts.hpp"

namespace colex::sim {

template <typename P>
class Network;

/// The interface an algorithm uses to talk to the network. Deliberately
/// minimal: non-blocking receive per port, send per port, own id. Content
/// obliviousness is enforced by the payload type, not the interface. The
/// interface is abstract so that adapters (e.g. the Section 1.1 replication
/// transformation, co::ReplicatedAdapter) can interpose on a node's I/O.
template <typename P>
class Context {
 public:
  virtual ~Context() = default;

  virtual NodeId self() const = 0;

  /// Number of delivered-but-unconsumed payloads waiting at `p`.
  virtual std::size_t queued(Port p) const = 0;

  /// Consume one payload from the incoming queue of `p`, if available.
  virtual std::optional<P> recv(Port p) = 0;

  /// Send one payload through port `p`.
  virtual void send(Port p, P payload) = 0;

  /// Whether reactions are serialized with respect to deliveries. True on
  /// the discrete-event simulator: no payload can be enqueued while a
  /// react() is executing, so "my queues right now" is a well-defined
  /// point of the global execution. Concurrent substrates
  /// (rt::ThreadRing's automaton host) return false: a delivery can land
  /// mid-react, so a queue observed non-empty may hold payloads that in
  /// every serialized ordering of the same execution arrive only *after*
  /// this react returns. Invariant checks quantifying over the current
  /// queue contents are only sound when this is true.
  virtual bool serialized_reactions() const { return true; }

  /// Convenience overloads for pulse networks.
  void send(Port p) { send(p, P{}); }
  bool recv_pulse(Port p) { return recv(p).has_value(); }
};

/// The Context implementation backed directly by a Network.
template <typename P>
class NetworkContext final : public Context<P> {
 public:
  NetworkContext(Network<P>& net, NodeId self) : net_(net), self_(self) {}

  NodeId self() const override { return self_; }
  std::size_t queued(Port p) const override {
    return net_.inbox_size(self_, p);
  }
  std::optional<P> recv(Port p) override { return net_.consume(self_, p); }
  using Context<P>::send;
  void send(Port p, P payload) override {
    net_.send_from(self_, p, std::move(payload));
  }

 private:
  Network<P>& net_;
  NodeId self_;
};

/// An event-driven node algorithm.
template <typename P>
class Automaton {
 public:
  virtual ~Automaton() = default;

  /// Called exactly once, before any delivery is reacted to.
  virtual void start(Context<P>& ctx) = 0;

  /// Called after one payload has been enqueued at this node (and at start
  /// time right after `start`). Must run the algorithm until no further
  /// local progress is possible without new input.
  virtual void react(Context<P>& ctx) = 0;

  /// True once the node has entered a terminating state. Terminated nodes
  /// ignore all further deliveries (the runner records such deliveries as
  /// model violations — they never happen for quiescently terminating
  /// algorithms).
  virtual bool terminated() const { return false; }

  /// The algorithm phase this node is currently in, as one of the stable
  /// tags in obs/phase.hpp ("probe", "elected", "initiated_wait",
  /// "orientation_flip", "done"). Phase-aware instrumentation samples this
  /// at each send to attribute pulses to phases; the default covers
  /// automata that never decide anything.
  virtual const char* phase() const { return "probe"; }

  /// Deep copy of the automaton's current state. The fork-based schedule
  /// explorer (sim/explore.hpp) snapshots a frontier network — including
  /// every node's algorithm state — instead of replaying the schedule
  /// prefix, so every automaton must know how to duplicate itself. The
  /// copy must share no mutable state with the original (forks are
  /// explored on different branches, possibly on different threads).
  virtual std::unique_ptr<Automaton<P>> clone() const = 0;
};

/// What happened during a run (see `run_to_quiescence`).
struct RunReport {
  bool quiescent = false;       ///< no pulses in flight nor queued unconsumed
  bool stalled = false;         ///< no pulses in flight, but queued leftovers
  bool all_terminated = false;  ///< every automaton reports terminated()
  bool hit_event_limit = false;
  std::uint64_t sent = 0;        ///< total payloads sent during the run
  std::uint64_t deliveries = 0;  ///< channel->inbox handoffs performed
  std::uint64_t deliveries_to_terminated = 0;  ///< model violations
  // Fault tallies (all zero on fault-free runs; see sim/faults.hpp). The
  // counts are ground truth from the network, not from the injector.
  std::uint64_t faults_injected = 0;    ///< spurious payloads inserted
  std::uint64_t faults_dropped = 0;     ///< payloads deleted from channels
  std::uint64_t faults_duplicated = 0;  ///< payloads doubled on channels
  std::uint64_t node_crashes = 0;
  std::uint64_t node_recoveries = 0;
  std::uint64_t deliveries_to_crashed = 0;  ///< payloads lost at dead nodes
};

/// Options for the runner.
template <typename P>
struct BasicRunOptions {
  std::uint64_t max_events = 50'000'000;
  /// If true, node starts are interleaved (pseudo)randomly with deliveries,
  /// rather than all happening up front. A node that is delivered a payload
  /// before its scheduled spontaneous start is started lazily at that
  /// moment, exactly like an event-driven node waking up on its first event.
  bool interleave_starts = false;
  std::uint64_t interleave_seed = 1;
  /// Invoked after every start/delivery event with the network; property
  /// tests use this to assert invariants at every step, and fault-injection
  /// tests use it to tamper with channels mid-run.
  std::function<void(Network<P>&)> on_event;
  /// Invoked at each delivery, before the destination reacts, with the
  /// destination node and in-port. Used to record delivery traces (e.g.
  /// solitude patterns, Definition 21).
  std::function<void(NodeId, Port, Direction)> on_deliver;
};

/// Runner options for the fully defective (pulse) network.
using RunOptions = BasicRunOptions<Pulse>;

template <typename P>
class Network {
 public:
  /// Builds a ring of `n` nodes. `port_flips[v]` swaps node v's port labels,
  /// producing a non-oriented ring; an empty vector means oriented. Supports
  /// n = 1 (self-loop: a node's Port1 connects to its own Port0) and n = 2
  /// (two parallel edges) as first-class citizens.
  static Network ring(std::size_t n, std::vector<bool> port_flips = {}) {
    COLEX_EXPECTS(n >= 1);
    COLEX_EXPECTS(port_flips.empty() || port_flips.size() == n);
    Network net;
    net.nodes_.resize(n);
    net.channels_.reserve(2 * n);
    auto flipped = [&port_flips](NodeId v) {
      return !port_flips.empty() && port_flips[v];
    };
    for (NodeId i = 0; i < n; ++i) {
      const NodeId j = (i + 1) % n;
      // In the oriented base layout, edge i attaches to node i's Port1 and
      // node j's Port0; a flip swaps the labels at that node.
      const Port from_port = flipped(i) ? Port::p0 : Port::p1;
      const Port to_port = flipped(j) ? Port::p1 : Port::p0;
      net.add_channel(i, from_port, j, to_port, Direction::cw);
      net.add_channel(j, to_port, i, from_port, Direction::ccw);
    }
    return net;
  }

  std::size_t size() const { return nodes_.size(); }

  void set_automaton(NodeId v, std::unique_ptr<Automaton<P>> a) {
    COLEX_EXPECTS(v < nodes_.size());
    nodes_[v].automaton = std::move(a);
  }

  Automaton<P>& automaton(NodeId v) {
    COLEX_EXPECTS(v < nodes_.size() && nodes_[v].automaton != nullptr);
    return *nodes_[v].automaton;
  }

  const Automaton<P>& automaton(NodeId v) const {
    COLEX_EXPECTS(v < nodes_.size() && nodes_[v].automaton != nullptr);
    return *nodes_[v].automaton;
  }

  /// Typed access to a node's algorithm, for tests and result extraction.
  template <typename T>
  T& automaton_as(NodeId v) {
    auto* p = dynamic_cast<T*>(&automaton(v));
    COLEX_EXPECTS(p != nullptr);
    return *p;
  }

  template <typename T>
  const T& automaton_as(NodeId v) const {
    const auto* p = dynamic_cast<const T*>(&automaton(v));
    COLEX_EXPECTS(p != nullptr);
    return *p;
  }

  // --- accounting (ground truth, independent of algorithm counters) ------

  std::uint64_t total_sent() const { return total_sent_; }

  std::uint64_t total_delivered() const { return total_delivered_; }

  std::uint64_t total_consumed() const { return total_consumed_; }

  /// One coherent snapshot of every cumulative counter the network keeps —
  /// the per-step observable the observability layer (src/obs) samples.
  struct Counters {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t consumed = 0;
    std::uint64_t injected = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t crashes = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t crash_lost = 0;
  };

  Counters counters() const {
    return Counters{total_sent_, total_delivered_, total_consumed_,
                    injected_,   dropped_,         duplicated_,
                    crashes_,    recoveries_,      crash_lost_};
  }

  /// Payloads sent but not yet consumed by the destination algorithm;
  /// includes delivered-but-queued payloads (paper footnote 2).
  std::uint64_t in_transit() const { return total_sent_ - total_consumed_; }

  /// In-flight on channels only (sent, not yet handed to an inbox).
  std::uint64_t in_flight() const { return total_sent_ - total_delivered_; }

  std::size_t inbox_size(NodeId v, Port p) const {
    return nodes_[v].inbox[index(p)].size();
  }

  std::uint64_t consumed(NodeId v, Port p) const {
    return nodes_[v].consumed[index(p)];
  }

  /// Whether node v has performed its start action yet (false only while
  /// interleaved starts are pending or other nodes' starts are in flight).
  bool started(NodeId v) const { return nodes_[v].started; }

  std::uint64_t channel_count() const { return channels_.size(); }

  Direction channel_direction(std::size_t c) const {
    return channels_[c].dir;
  }

  /// Pulses currently in flight on channel `c` (used by the exhaustive
  /// schedule explorer to enumerate the adversary's choices).
  std::size_t channel_pending(std::size_t c) const {
    return channels_[c].items.size();
  }

  /// Sending endpoint (node, out-port) of channel `c`.
  std::pair<NodeId, Port> channel_source(std::size_t c) const {
    COLEX_EXPECTS(c < channels_.size());
    return {channels_[c].from_node, channels_[c].from_port};
  }

  /// Receiving endpoint (node, in-port) of channel `c`.
  std::pair<NodeId, Port> channel_target(std::size_t c) const {
    COLEX_EXPECTS(c < channels_.size());
    return {channels_[c].to_node, channels_[c].to_port};
  }

  bool quiescent() const { return in_transit() == 0; }

  // --- snapshot / fork API (the exploration engine's hot path) ------------

  /// Deep snapshot of the whole network: channel contents, inboxes,
  /// counters, and — via Automaton::clone — every node's algorithm state.
  /// The send observer is deliberately NOT copied: forks are exploration
  /// states, not traced runs, and an observer captured by reference would
  /// alias the original. The copy shares no mutable state with the source,
  /// so forks can be explored concurrently.
  // colex-lint: allow(C001) send_observer_ is deliberately not cloned: forks
  // are exploration states, not traced runs (see the doc comment above).
  Network clone() const {
    Network copy;
    copy.channels_ = channels_;
    copy.nonempty_ = nonempty_;
    copy.next_seq_ = next_seq_;
    copy.stamp_ = stamp_;
    copy.total_sent_ = total_sent_;
    copy.total_delivered_ = total_delivered_;
    copy.total_consumed_ = total_consumed_;
    copy.injected_ = injected_;
    copy.dropped_ = dropped_;
    copy.duplicated_ = duplicated_;
    copy.crashes_ = crashes_;
    copy.recoveries_ = recoveries_;
    copy.crash_lost_ = crash_lost_;
    copy.nodes_.resize(nodes_.size());
    for (std::size_t v = 0; v < nodes_.size(); ++v) {
      const auto& src = nodes_[v];
      auto& dst = copy.nodes_[v];
      dst.automaton = src.automaton ? src.automaton->clone() : nullptr;
      dst.out_channel[0] = src.out_channel[0];
      dst.out_channel[1] = src.out_channel[1];
      dst.inbox[0] = src.inbox[0];
      dst.inbox[1] = src.inbox[1];
      dst.consumed[0] = src.consumed[0];
      dst.consumed[1] = src.consumed[1];
      dst.started = src.started;
      dst.crashed = src.crashed;
    }
    return copy;
  }

  /// Performs every pending start action in node-id order — the same order
  /// the runner uses when starts are not interleaved. Materializes the
  /// exploration tree's root state without needing a Scheduler.
  void start_all() {
    for (NodeId v = 0; v < nodes_.size(); ++v) {
      auto& node = nodes_[v];
      if (node.started) continue;
      NetworkContext<P> ctx(*this, v);
      ++stamp_;
      node.started = true;
      node.automaton->start(ctx);
      node.automaton->react(ctx);
    }
  }

  /// Delivers the head payload of channel `c` and runs the destination's
  /// react — one adversary step, without a Scheduler or RunOptions. This is
  /// how the fork-based explorer advances a snapshot; the state transition
  /// is identical to the runner's `deliver` (crashed and terminated
  /// destinations swallow the payload, an unstarted destination performs
  /// its event-driven wake-up first).
  void deliver_step(std::size_t c) {
    COLEX_EXPECTS(c < channels_.size() && !channels_[c].items.empty());
    auto& ch = channels_[c];
    Item item = std::move(ch.items.front());
    ch.items.pop_front();
    unmark_if_empty(c);
    ++total_delivered_;
    const NodeId v = ch.to_node;
    auto& node = nodes_[v];
    if (node.crashed) {
      ++crash_lost_;
      ++total_consumed_;
      return;
    }
    if (node.automaton->terminated()) {
      ++total_consumed_;
      return;
    }
    node.inbox[index(ch.to_port)].push_back(std::move(item.payload));
    NetworkContext<P> ctx(*this, v);
    ++stamp_;
    if (!node.started) {
      node.started = true;
      node.automaton->start(ctx);
    }
    node.automaton->react(ctx);
  }

  /// Ids of channels with payloads in flight, in ascending channel order —
  /// the adversary's current choice set, enumerated deterministically so
  /// both exploration engines branch in the same order.
  std::vector<std::size_t> pending_channels() const {
    std::vector<std::size_t> out(nonempty_.begin(), nonempty_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  // --- model-violation injection (test-only adversary beyond the model) ---

  /// Injects a payload that nobody sent into channel `c`. The paper's model
  /// forbids this; tests use it to show the algorithms' invariants detect it.
  void inject_fault(std::size_t c, P payload = P{}) {
    COLEX_EXPECTS(c < channels_.size());
    channels_[c].items.push_back(Item{std::move(payload), next_seq_++, stamp_});
    mark_nonempty(c);
    ++total_sent_;  // keep conservation accounting consistent for delivery
    ++injected_;
  }

  /// Drops the head payload of channel `c` (model forbids message loss).
  void drop_fault(std::size_t c) {
    COLEX_EXPECTS(c < channels_.size() && !channels_[c].items.empty());
    channels_[c].items.pop_front();
    unmark_if_empty(c);
    ++dropped_;
    // The dropped payload will never be delivered or consumed; account for
    // it so in_transit() reflects what can still move.
    --total_sent_;
  }

  /// Duplicates the head payload of channel `c` (the copy is queued right
  /// behind the original, preserving FIFO plausibility: a flaky link
  /// re-transmits the frame it just carried).
  void duplicate_fault(std::size_t c) {
    COLEX_EXPECTS(c < channels_.size() && !channels_[c].items.empty());
    auto& items = channels_[c].items;
    items.insert(items.begin() + 1,
                 Item{P(items.front().payload), next_seq_++,
                      items.front().stamp});
    ++total_sent_;
    ++duplicated_;
  }

  // --- node lifecycle faults (crash-stop / crash-recover) -----------------

  /// Crash-stops node `v`: its delivered-but-unconsumed queues are lost and
  /// every future delivery to it is swallowed (tallied in the RunReport)
  /// until recover_node. Only started nodes can crash; a crash before the
  /// start event is modeled as a crash at it.
  void crash_node(NodeId v) {
    COLEX_EXPECTS(v < nodes_.size() && nodes_[v].started);
    COLEX_EXPECTS(!nodes_[v].crashed);
    auto& node = nodes_[v];
    node.crashed = true;
    // Queued payloads die with the node; count them consumed so conservation
    // accounting (in_transit) keeps reflecting what can still move.
    for (auto& q : node.inbox) {
      total_consumed_ += q.size();
      crash_lost_ += q.size();
      q.clear();
    }
    ++crashes_;
  }

  bool node_crashed(NodeId v) const {
    COLEX_EXPECTS(v < nodes_.size());
    return nodes_[v].crashed;
  }

  /// Recovers node `v` with a fresh automaton: local state is gone (the
  /// fresh instance starts from scratch) and its start action runs
  /// immediately, exactly like a reboot into the algorithm's initial state.
  void recover_node(NodeId v, std::unique_ptr<Automaton<P>> fresh) {
    COLEX_EXPECTS(v < nodes_.size() && nodes_[v].crashed);
    COLEX_EXPECTS(fresh != nullptr);
    auto& node = nodes_[v];
    node.crashed = false;
    node.automaton = std::move(fresh);
    node.consumed[0] = node.consumed[1] = 0;
    ++recoveries_;
    NetworkContext<P> ctx(*this, v);
    ++stamp_;
    node.automaton->start(ctx);
    node.automaton->react(ctx);
  }

  std::uint64_t injected() const { return injected_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t duplicated() const { return duplicated_; }

  /// Observer invoked at every send with (sender, out-port, direction).
  /// Used by sim::TraceRecorder; injected faults are deliberately NOT
  /// reported (nobody sent them), so trace audits catch them.
  void set_send_observer(
      std::function<void(NodeId, Port, Direction)> observer) {
    send_observer_ = std::move(observer);
  }

  /// Like set_send_observer, but preserves and chains a previously installed
  /// observer (new observer first). Lets tracing and metrics instrumentation
  /// coexist on one run without knowing about each other.
  void chain_send_observer(
      std::function<void(NodeId, Port, Direction)> observer) {
    if (!send_observer_) {
      send_observer_ = std::move(observer);
      return;
    }
    send_observer_ = [added = std::move(observer),
                      previous = std::move(send_observer_)](
                         NodeId v, Port p, Direction d) {
      added(v, p, d);
      previous(v, p, d);
    };
  }

  // --- used by Context ----------------------------------------------------

  void send_from(NodeId v, Port p, P payload) {
    auto& node = nodes_[v];
    const std::size_t c = node.out_channel[index(p)];
    channels_[c].items.push_back(Item{std::move(payload), next_seq_++, stamp_});
    mark_nonempty(c);
    ++total_sent_;
    if (send_observer_) send_observer_(v, p, channels_[c].dir);
  }

  std::optional<P> consume(NodeId v, Port p) {
    auto& q = nodes_[v].inbox[index(p)];
    if (q.empty()) return std::nullopt;
    P payload = std::move(q.front());
    q.pop_front();
    ++nodes_[v].consumed[index(p)];
    ++total_consumed_;
    return payload;
  }

  // --- the runner ----------------------------------------------------------

  RunReport run(Scheduler& scheduler, const BasicRunOptions<P>& opts = {}) {
    RunReport report;
    util::Xoshiro256StarStar interleave_rng(opts.interleave_seed);

    // Unstarted-node bookkeeping: a vector of pending nodes plus a per-node
    // position index, so removal is O(1) swap-and-pop instead of an O(n)
    // scan-and-erase per start event.
    std::vector<NodeId> unstarted;
    std::vector<std::size_t> unstarted_pos(nodes_.size(), kNoPos);
    unstarted.reserve(nodes_.size());
    for (NodeId v = nodes_.size(); v-- > 0;) {
      unstarted_pos[v] = unstarted.size();
      unstarted.push_back(v);
    }
    auto remove_unstarted = [&](std::size_t k) {
      const NodeId victim = unstarted[k];
      const NodeId moved = unstarted.back();
      unstarted[k] = moved;
      unstarted_pos[moved] = k;
      unstarted.pop_back();
      unstarted_pos[victim] = kNoPos;
    };

    auto do_start = [&](NodeId v) {
      NetworkContext<P> ctx(*this, v);
      ++stamp_;
      nodes_[v].started = true;
      nodes_[v].automaton->start(ctx);
      nodes_[v].automaton->react(ctx);
      if (opts.on_event) opts.on_event(*this);
    };
    auto start_specific = [&](NodeId v) {
      const std::size_t k = unstarted_pos[v];
      COLEX_ASSERT(k != kNoPos);  // else: called for a started node
      remove_unstarted(k);
      do_start(v);
    };

    if (!opts.interleave_starts) {
      while (!unstarted.empty()) {
        const NodeId v = unstarted.back();
        remove_unstarted(unstarted.size() - 1);
        do_start(v);
      }
    }

    std::uint64_t events = 0;
    std::vector<ChannelView> pending;
    for (;;) {
      if (events >= opts.max_events) {
        report.hit_event_limit = true;
        break;
      }
      // Optionally interleave a spontaneous node start with deliveries.
      if (!unstarted.empty() &&
          (in_flight() == 0 || interleave_rng.bernoulli(0.5))) {
        const std::size_t k = interleave_rng.below(unstarted.size());
        const NodeId v = unstarted[k];
        remove_unstarted(k);
        do_start(v);
        ++events;
        continue;
      }

      pending.clear();
      for (const std::size_t c : nonempty_) {
        const auto& ch = channels_[c];
        pending.push_back(ChannelView{c, ch.items.size(), ch.items.front().seq,
                                      ch.items.front().stamp, ch.dir});
      }
      if (pending.empty()) break;

      const std::size_t c = scheduler.pick(pending);
      COLEX_ASSERT(c < channels_.size() && !channels_[c].items.empty());
      deliver(c, report, start_specific, unstarted, opts);
      ++events;
    }

    report.sent = total_sent_;
    report.faults_injected = injected_;
    report.faults_dropped = dropped_;
    report.faults_duplicated = duplicated_;
    report.node_crashes = crashes_;
    report.node_recoveries = recoveries_;
    report.quiescent = in_transit() == 0 && !report.hit_event_limit;
    report.stalled = !report.quiescent && in_flight() == 0 &&
                     !report.hit_event_limit && unstarted.empty();
    report.all_terminated = true;
    for (const auto& node : nodes_) {
      if (node.automaton == nullptr || !node.automaton->terminated()) {
        report.all_terminated = false;
        break;
      }
    }
    return report;
  }

 private:
  struct Item {
    P payload;
    std::uint64_t seq;
    std::uint64_t stamp;
  };
  struct ChannelState {
    NodeId from_node{};
    Port from_port{};
    NodeId to_node{};
    Port to_port{};
    Direction dir{};
    std::deque<Item> items;
    std::size_t nonempty_pos = kNoPos;  // index into nonempty_, or kNoPos
  };
  struct NodeState {
    std::unique_ptr<Automaton<P>> automaton;
    std::size_t out_channel[2] = {0, 0};
    std::deque<P> inbox[2];
    std::uint64_t consumed[2] = {0, 0};
    bool started = false;
    bool crashed = false;
  };

  void add_channel(NodeId from, Port fp, NodeId to, Port tp, Direction dir) {
    ChannelState ch;
    ch.from_node = from;
    ch.from_port = fp;
    ch.to_node = to;
    ch.to_port = tp;
    ch.dir = dir;
    nodes_[from].out_channel[index(fp)] = channels_.size();
    channels_.push_back(std::move(ch));
  }

  template <typename StartSpecificFn>
  void deliver(std::size_t c, RunReport& report,
               StartSpecificFn& start_specific, std::vector<NodeId>& unstarted,
               const BasicRunOptions<P>& opts) {
    auto& ch = channels_[c];
    Item item = std::move(ch.items.front());
    ch.items.pop_front();
    unmark_if_empty(c);
    ++total_delivered_;
    ++report.deliveries;
    if (opts.on_deliver) opts.on_deliver(ch.to_node, ch.to_port, ch.dir);

    const NodeId v = ch.to_node;
    auto& node = nodes_[v];
    if (node.crashed) {
      // A dead node swallows the payload: lost exactly like an in-queue
      // payload at crash time.
      ++report.deliveries_to_crashed;
      ++crash_lost_;
      ++total_consumed_;
      if (opts.on_event) opts.on_event(*this);
      return;
    }
    if (node.automaton->terminated()) {
      // Terminated nodes ignore pulses (paper §2). Consume into the void and
      // record the violation: quiescently terminating algorithms never let
      // this happen.
      ++report.deliveries_to_terminated;
      ++total_consumed_;
      if (opts.on_event) opts.on_event(*this);
      return;
    }
    node.inbox[index(ch.to_port)].push_back(std::move(item.payload));
    if (!node.started) {
      // Event-driven wake-up: the node's first event is this delivery, so it
      // performs its start action now, then reacts to the queue.
      COLEX_ASSERT(!unstarted.empty());
      start_specific(v);
      return;  // start_specific already reacted and fired on_event
    }
    NetworkContext<P> ctx(*this, v);
    ++stamp_;
    node.automaton->react(ctx);
    if (opts.on_event) opts.on_event(*this);
  }

  // Incremental index of channels with pulses in flight, so each runner
  // step costs O(#nonempty channels) instead of O(#channels).
  static constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);

  void mark_nonempty(std::size_t c) {
    auto& ch = channels_[c];
    if (ch.nonempty_pos != kNoPos) return;
    ch.nonempty_pos = nonempty_.size();
    nonempty_.push_back(c);
  }

  void unmark_if_empty(std::size_t c) {
    auto& ch = channels_[c];
    if (!ch.items.empty() || ch.nonempty_pos == kNoPos) return;
    const std::size_t pos = ch.nonempty_pos;
    const std::size_t moved = nonempty_.back();
    nonempty_[pos] = moved;
    channels_[moved].nonempty_pos = pos;
    nonempty_.pop_back();
    ch.nonempty_pos = kNoPos;
  }

  std::vector<NodeState> nodes_;
  std::vector<ChannelState> channels_;
  std::vector<std::size_t> nonempty_;
  std::function<void(NodeId, Port, Direction)> send_observer_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t stamp_ = 0;  // event step counter; sends in one react share it
  std::uint64_t total_sent_ = 0;
  std::uint64_t total_delivered_ = 0;
  std::uint64_t total_consumed_ = 0;
  std::uint64_t injected_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t crash_lost_ = 0;
};

/// The fully defective network of the paper: channels carry only pulses.
using PulseNetwork = Network<Pulse>;
using PulseContext = Context<Pulse>;
using PulseAutomaton = Automaton<Pulse>;

}  // namespace colex::sim
