// The ring coordinator: forms the ring (JOIN/PEERS/READY/GO), detects
// distributed quiescence, broadcasts STOP, and collects per-node RESULTs.
// One instance per run; single-threaded, one poll() event loop.
//
// Quiescence detection
// --------------------
// The fabric is quiescent when every node is idle (or terminated) and no
// pulse is in flight — on TCP, "in flight" includes kernel socket buffers,
// so no single observer can see it directly. The coordinator uses a
// Mattern-style four-counter protocol:
//
//  1. Nodes REPORT {state, sent, consumed} every time they enter an idle
//     wait or terminate. When the latest reports are all idle/done and the
//     sent/consumed sums balance, quiescence is *plausible* — but reports
//     are stale snapshots, so this alone is unsound (a pulse consumed after
//     its sender's report can make stale sums balance spuriously).
//  2. The coordinator then runs PROBE rounds. A node acks a probe only from
//     a provably idle state: every send flushed, every arrival consumed
//     (node.cpp defers the ack otherwise). One round therefore yields a
//     consistent-cut-free snapshot S_k/C_k of the counter sums.
//  3. Quiescence is declared only after two consecutive rounds k, k+1 with
//     all nodes idle/done, S_k == S_{k+1}, C_k == C_{k+1} and S == C:
//     round k+1 starts strictly after round k completes, so any pulse that
//     was hiding in a buffer during round k would have bumped a counter by
//     round k+1. Counters are monotone, so equal sums across the gap prove
//     nothing moved — and S == C with nothing moving means nothing is in
//     flight anywhere.
//
// A run that cannot settle (node error, EOF, watchdog expiry) aborts with a
// stall dump of every node's last known report — never a silent hang.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/flight.hpp"

namespace colex::net {

struct CoordinatorOptions {
  std::uint32_t ring_size = 0;
  std::uint64_t timeout_ms = 30'000;
  /// Control-plane listen port (0 = kernel-assigned ephemeral).
  std::uint16_t port = 0;
  obs::FlightRing* flight = nullptr;
};

/// What the coordinator learned from one completed (or aborted) run.
struct CoordinatorResult {
  bool completed = false;
  /// Non-empty iff the run aborted: cause plus per-node post-mortem.
  std::string error;
  /// Index-ordered per-node outcomes (RESULT frames); full iff completed.
  std::vector<DecodedResult> results;
  std::uint64_t total_sent = 0;
  std::uint64_t total_consumed = 0;
  std::uint64_t probe_rounds = 0;  ///< probe rounds run (>= 2 on success)
  std::uint64_t reports = 0;       ///< REPORT frames processed
};

/// Binds its listener at construction — before a multi-process harness
/// forks, so children can connect immediately and inherit no race — then
/// run() drives the whole protocol synchronously.
class Coordinator {
 public:
  explicit Coordinator(const CoordinatorOptions& options);
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  bool ok() const { return init_error_.empty(); }
  const std::string& init_error() const { return init_error_; }
  /// The bound control-plane port (valid when ok()).
  std::uint16_t port() const { return port_; }

  /// Fork hygiene: children inherit the listener descriptor; each child
  /// must drop it so the kernel keeps exactly one acceptor.
  void close_listener_in_child() { listener_.reset(); }

  /// Runs formation, the election, quiescence detection, STOP and RESULT
  /// collection. Returns when all results are in or the watchdog expires.
  CoordinatorResult run();

 private:
  CoordinatorOptions options_;
  Fd listener_;
  std::uint16_t port_ = 0;
  std::string init_error_;
};

}  // namespace colex::net
