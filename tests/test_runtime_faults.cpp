// Fault injection on the real-thread runtime (thread_ring.hpp fault hooks):
// crash-stop, crash-recover-with-erased-state, spurious pulse injection,
// and the stall watchdog. Unlike the simulator-side fault harness
// (sim/faults.hpp, test_faults.cpp), a ChaosScript races the algorithm
// threads for real, so these tests assert properties that hold under EVERY
// interleaving — chiefly "the run always returns, and if it could not
// settle, the watchdog aborts it with a usable post-mortem" — rather than
// one reproducible outcome.
//
// The one timing-independent impossibility these tests lean on: a spurious
// pulse injected into Algorithm 1's CW cycle can never be absorbed once all
// n absorptions are spent (each node absorbs at most one pulse, the one
// making rho_cw == ID), so n+1 pulses guarantee a livelock that only the
// watchdog can end.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "runtime/blocking_algs.hpp"
#include "runtime/progress.hpp"
#include "sim/faults.hpp"
#include "util/contracts.hpp"

namespace colex::rt {
namespace {

const std::vector<std::uint64_t> kIds{6, 11, 3, 9};  // max 11 at node 1

void brief_sleep(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

TEST(ThreadRingFaults, CrashSwallowsDeliveriesAndClearsPending) {
  ThreadRing ring(3);
  auto io0 = ring.io(0);
  io0.send(sim::Port::p1);  // queued at node 1, port p0
  EXPECT_EQ(ring.total_sent(), 1u);
  EXPECT_EQ(ring.total_consumed(), 0u);

  ring.crash(1);
  EXPECT_TRUE(ring.node_crashed(1));
  EXPECT_EQ(ring.crashes(), 1u);
  // The queued pulse died with the node...
  EXPECT_EQ(ring.crash_lost(), 1u);
  EXPECT_EQ(ring.total_consumed(), 1u);  // ...but conservation still holds.
  // A delivery while down is swallowed, again without breaking conservation.
  io0.send(sim::Port::p1);
  EXPECT_EQ(ring.crash_lost(), 2u);
  EXPECT_EQ(ring.total_sent(), 2u);
  EXPECT_EQ(ring.total_consumed(), 2u);
}

TEST(ThreadRingFaults, StaleIoHandleIsDeadAfterRecovery) {
  ThreadRing ring(3);
  auto old_io = ring.io(1);  // incarnation of epoch 0
  ring.crash(1);
  ring.recover(1);
  EXPECT_FALSE(ring.node_crashed(1));
  EXPECT_EQ(ring.crash_epoch(1), 1u);

  // The pre-crash handle must not be able to touch the recovered node:
  // sends are suppressed, receives and waits fail immediately.
  old_io.send(sim::Port::p1);
  EXPECT_EQ(ring.total_sent(), 0u);
  ring.io(0).send(sim::Port::p1);  // a real pulse for node 1
  EXPECT_FALSE(old_io.recv(sim::Port::p0));
  EXPECT_FALSE(old_io.wait_any());

  // A post-recovery handle sees the pulse.
  auto new_io = ring.io(1);
  EXPECT_TRUE(new_io.recv(sim::Port::p0));
}

TEST(ThreadRingFaults, DumpReportsPerNodeState) {
  ThreadRing ring(2);
  ring.io(0).send(sim::Port::p1);
  ring.inject_pulse(0, sim::Port::p0);
  ring.crash(1);
  const std::string dump = ring.dump();
  EXPECT_NE(dump.find("node 0"), std::string::npos);
  EXPECT_NE(dump.find("node 1"), std::string::npos);
  EXPECT_NE(dump.find("CRASHED"), std::string::npos);
  EXPECT_NE(dump.find("injected=1"), std::string::npos);
  EXPECT_NE(dump.find("pending[p0]=1"), std::string::npos);
}

// An injected (spurious) CW pulse makes Algorithm 1's election livelock:
// n+1 pulses chase n absorptions, so the surplus pulse circulates forever.
// The watchdog must abort the run within the configured budget and hand
// back a per-node post-mortem instead of hanging. The ring is driven by
// hand so the pulse is provably in the fabric before any worker runs —
// deterministic under every interleaving and any machine load.
TEST(ThreadRingFaults, InjectedPulseTripsStallWatchdogWithDump) {
  const std::size_t n = kIds.size();
  ThreadRing ring(n);
  ring.inject_pulse(0, sim::Port::p0);  // surplus pulse, pre-start

  std::vector<BlockingOutcome> outs(n);
  std::vector<std::thread> workers;
  for (sim::NodeId v = 0; v < n; ++v) {
    workers.emplace_back([&, v] {
      outs[v] = run_alg1_blocking(ring.io(v), kIds[v]);
      ring.worker_finished();
    });
  }

  EXPECT_FALSE(ring.monitor(/*timeout_ms=*/400));  // watchdog must trip
  for (auto& w : workers) w.join();  // ...and stop must unblock everyone

  const std::string dump = ring.dump();
  EXPECT_NE(dump.find("injected=1"), std::string::npos);
  EXPECT_NE(dump.find("node 0"), std::string::npos);
  EXPECT_NE(dump.find("sent="), std::string::npos);
  // The surplus shows up as exactly one unconsumed pulse.
  EXPECT_EQ(ring.total_sent(), ring.total_consumed() + 1);
}

// The same injection through run_on_threads' ChaosScript. The script races
// the workers (by design), so on a heavily loaded machine the election can
// settle before the injection lands; in every interleaving the run must
// return promptly, and whenever the injection did land pre-quiescence the
// watchdog must report a stall dump.
TEST(ThreadRingFaults, ChaosInjectionNeverHangsAndDumpsOnStall) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = run_on_threads(
      kIds, {}, ThreadAlg::alg1, /*timeout_ms=*/500,
      [](ThreadRing& ring) { ring.inject_pulse(0, sim::Port::p0); });
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  if (!result.completed) {
    EXPECT_FALSE(result.stall_dump.empty());
    EXPECT_NE(result.stall_dump.find("injected=1"), std::string::npos);
  }
  // Aborted promptly either way — the watchdog replaced an infinite hang
  // with a bounded wait (generous margin for loaded CI machines).
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            10'000);
}

// Fault-free sanity: the chaos plumbing itself must not perturb a clean
// run (the no-op script is the thread-side analogue of the simulator's
// trivial FaultPlan, which is trace-identical by construction).
TEST(ThreadRingFaults, NoOpChaosScriptLeavesElectionExact) {
  const auto result =
      run_on_threads(kIds, {}, ThreadAlg::alg1, 30'000, [](ThreadRing&) {});
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.leader_count, 1u);
  ASSERT_TRUE(result.leader.has_value());
  EXPECT_EQ(*result.leader, 1u);
  EXPECT_EQ(result.crashes, 0u);
  EXPECT_EQ(result.stall_dump, "");
  EXPECT_EQ(result.pulses, kIds.size() * 11u);  // Corollary 13
}

// Crash-stop with no recovery. Whenever the crash lands — before, during
// or after the election settles — the run must complete via quiescence
// detection (swallowed deliveries keep sent == consumed, and the parked
// worker is accounted for), never hang, and report the crash.
TEST(ThreadRingFaults, CrashStopAlwaysCompletesViaQuiescence) {
  const auto result = run_on_threads(kIds, {}, ThreadAlg::alg1, 30'000,
                                     [](ThreadRing& ring) {
                                       brief_sleep(1);
                                       ring.crash(2);
                                     });
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.crashes, 1u);
  EXPECT_EQ(result.recoveries, 0u);
  EXPECT_TRUE(result.stall_dump.empty());
  // The crashed node either never produced an outcome (worker parked, then
  // stopped: state erased) or had already stopped with the pre-crash state;
  // in both cases the field is a valid BlockingOutcome.
  EXPECT_EQ(result.outcomes[2].restarts, 0u);
}

// Crash + recover: the worker re-runs the algorithm from scratch. Under a
// stabilizing algorithm this either re-converges (the recovered node's
// fresh initial pulse is eventually absorbed — possibly by the recovered
// node itself, since its rho was erased) or induces a genuine livelock
// (surplus pulse, no absorber left), in which case the watchdog must end
// the run with a post-mortem. Both endings are legitimate; hanging is not.
TEST(ThreadRingFaults, CrashRecoverEitherReconvergesOrTripsWatchdog) {
  const auto result = run_on_threads(kIds, {}, ThreadAlg::alg1,
                                     /*timeout_ms=*/800,
                                     [](ThreadRing& ring) {
                                       brief_sleep(1);
                                       ring.crash(2);
                                       brief_sleep(10);
                                       ring.recover(2);
                                     });
  EXPECT_EQ(result.crashes, 1u);
  EXPECT_EQ(result.recoveries, 1u);
  if (result.completed) {
    EXPECT_TRUE(result.stall_dump.empty());
  } else {
    EXPECT_FALSE(result.stall_dump.empty());
    EXPECT_NE(result.stall_dump.find("crashes=1"), std::string::npos);
  }
}

// The recovered-worker restart path, exercised deterministically by
// driving the ring by hand (no monitor racing the script): let the
// election settle, crash + recover node 2 while the fabric is provably
// quiescent, and only then start the monitor. The recovered node re-runs
// Algorithm 1 from erased state: its fresh initial pulse circulates (every
// settled node has rho > ID and relays) until the recovered node itself
// absorbs it at rho == ID — so the ring re-quiesces with node 2 wrongly
// Leader and the old leader demoted, the threaded twin of the simulator's
// crash-recovery finding in test_faults.cpp.
TEST(ThreadRingFaults, RecoveredWorkerRerunsFromErasedState) {
  const std::size_t n = kIds.size();
  ThreadRing ring(n);
  std::vector<BlockingOutcome> outs(n);
  std::vector<std::uint64_t> restarts(n, 0);
  std::vector<std::thread> workers;
  for (sim::NodeId v = 0; v < n; ++v) {
    workers.emplace_back([&, v] {
      for (;;) {
        const std::uint64_t epoch = ring.crash_epoch(v);
        NodeIo io = ring.io(v);
        outs[v] = run_alg1_blocking(io, kIds[v]);
        if (ring.crash_epoch(v) == epoch) break;
        if (!ring.await_recovery(v)) {
          outs[v] = BlockingOutcome{};
          outs[v].id = kIds[v];
          outs[v].stopped = true;
          break;
        }
        ++restarts[v];
      }
      ring.worker_finished();
    });
  }

  // Corollary 13: the fault-free election settles after exactly n * IDmax
  // consumptions. No monitor is running, so nothing can stop the run early.
  const std::uint64_t settled = n * 11u;
  while (ring.total_consumed() < settled) brief_sleep(1);
  ring.crash(2);
  ring.recover(2);

  ASSERT_TRUE(ring.monitor(30'000)) << ring.dump();
  for (auto& w : workers) w.join();

  EXPECT_EQ(ring.crashes(), 1u);
  EXPECT_EQ(ring.recoveries(), 1u);
  EXPECT_EQ(restarts[2], 1u);
  // The fresh incarnation's counters: it absorbed its own pulse at
  // rho == ID and believes itself Leader; the legitimate leader (node 1,
  // ID 11) was demoted by the extra lap of relayed pulses.
  EXPECT_EQ(outs[2].counters.rho_cw, kIds[2]);
  EXPECT_EQ(outs[2].role, co::Role::leader);
  EXPECT_EQ(outs[1].role, co::Role::non_leader);
}

// --- Telemetry (obs::Registry attached to the fabric) ---------------------

TEST(ThreadRingMetrics, PublishesFabricAndPerNodeCounters) {
  obs::Registry metrics;
  const auto result = run_on_threads(kIds, {}, ThreadAlg::alg2,
                                     /*timeout_ms=*/30'000, {}, &metrics);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(metrics.counter("rt.sent").value(), result.pulses);
  EXPECT_EQ(metrics.counter("rt.consumed").value(), result.pulses);
  EXPECT_EQ(metrics.counter("rt.crashes").value(), 0u);
  // Per-node sends partition the fabric total.
  std::uint64_t per_node = 0;
  for (sim::NodeId v = 0; v < kIds.size(); ++v) {
    per_node +=
        metrics.counter("rt.node." + std::to_string(v) + ".sent").value();
  }
  EXPECT_EQ(per_node, result.pulses);
  // The wait histogram records one mean-wait sample per node that ever
  // blocked (a node kept saturated by its neighbors may never block, so
  // this is an upper bound, not an equality).
  EXPECT_LE(metrics.histogram("rt.mean_wait_ms", {}).count(), kIds.size());
}

TEST(ThreadRingMetrics, DisabledByDefaultRunPublishesNothing) {
  obs::Registry metrics;
  const auto result = run_on_threads(kIds, {}, ThreadAlg::alg2);
  ASSERT_TRUE(result.completed);
  EXPECT_TRUE(metrics.empty());
}

TEST(ThreadRingMetrics, StallDumpEmbedsProgressHistoryAndSnapshot) {
  // Same guaranteed livelock as the watchdog tests above: a surplus pulse
  // Algorithm 1 cannot absorb. The post-mortem must now carry the last-N
  // progress samples and the full metrics snapshot.
  obs::Registry metrics;
  const auto result = run_on_threads(
      kIds, {}, ThreadAlg::alg1, /*timeout_ms=*/400,
      [](ThreadRing& ring) { ring.inject_pulse(0, sim::Port::p0); },
      &metrics);
  if (!result.completed) {
    EXPECT_NE(result.stall_dump.find("progress history"), std::string::npos);
    EXPECT_NE(result.stall_dump.find("t="), std::string::npos);
    EXPECT_NE(result.stall_dump.find("metrics: {"), std::string::npos);
    EXPECT_NE(result.stall_dump.find("rt.sent"), std::string::npos);
    EXPECT_EQ(metrics.counter("rt.injected").value(), 1u);
  }
}

// --- Double-fault interleavings --------------------------------------------
//
// Single faults are covered above; these scripts overlap two faults in time
// and classify each ending through the simulator's shared FaultOutcome
// taxonomy (sim::classify_outcome), so the threaded runtime and the
// discrete-event harness speak the same language about what a fault did.
// The scripts race the workers for real, so the assertions are the
// timing-independent ones: the run always ends (completed or post-mortem),
// the fault ledger balances, and the classification is internally
// consistent — never an unclassifiable ending.

sim::FaultOutcome classify_thread_result(const ThreadRunResult& result,
                                         std::string* diagnosis = nullptr) {
  // Bridge the threaded result into the taxonomy's inputs: a watchdog abort
  // is the thread-side analogue of exhausting the event budget, and the
  // intended output is node 1 (ID 11) as the unique leader.
  sim::RunReport report;
  report.quiescent = result.completed;
  report.hit_event_limit = !result.completed;
  const bool output_correct = result.completed && result.leader_count == 1 &&
                              result.leader.has_value() &&
                              *result.leader == 1u;
  return sim::classify_outcome(report, /*safety_diag=*/"", output_correct,
                               diagnosis);
}

// A second node crashes while the first is mid-recovery. Erased state on
// two nodes can re-converge, settle on a wrong leader, or livelock on a
// surplus pulse; all three classify cleanly, and the crash/recovery ledger
// must record both cycles whatever the interleaving.
TEST(ThreadRingDoubleFaults, CrashDuringAnotherNodesRecovery) {
  const auto result = run_on_threads(kIds, {}, ThreadAlg::alg1,
                                     /*timeout_ms=*/800,
                                     [](ThreadRing& ring) {
                                       brief_sleep(1);
                                       ring.crash(2);
                                       ring.recover(2);
                                       ring.crash(0);  // lands mid-recovery
                                       brief_sleep(5);
                                       ring.recover(0);
                                     });
  EXPECT_EQ(result.crashes, 2u);
  EXPECT_EQ(result.recoveries, 2u);
  std::string diagnosis;
  const sim::FaultOutcome outcome = classify_thread_result(result, &diagnosis);
  EXPECT_NE(outcome, sim::FaultOutcome::safety_violated) << diagnosis;
  if (outcome == sim::FaultOutcome::diverged) {
    EXPECT_FALSE(result.completed);
    EXPECT_FALSE(result.stall_dump.empty());
    EXPECT_NE(result.stall_dump.find("crashes=2"), std::string::npos);
  } else {
    EXPECT_TRUE(result.completed);
    EXPECT_TRUE(result.stall_dump.empty());
  }
}

// The same node crashes and recovers twice back to back. Each recovery
// erases state and re-runs from scratch; the second cycle must behave like
// the first (no stale incarnation leaks through the epoch fence), and the
// ledger counts both.
TEST(ThreadRingDoubleFaults, BackToBackCrashRecoverSameNode) {
  const auto result = run_on_threads(kIds, {}, ThreadAlg::alg1,
                                     /*timeout_ms=*/800,
                                     [](ThreadRing& ring) {
                                       brief_sleep(1);
                                       ring.crash(2);
                                       ring.recover(2);
                                       brief_sleep(2);
                                       ring.crash(2);
                                       ring.recover(2);
                                     });
  EXPECT_EQ(result.crashes, 2u);
  EXPECT_EQ(result.recoveries, 2u);
  std::string diagnosis;
  const sim::FaultOutcome outcome = classify_thread_result(result, &diagnosis);
  EXPECT_NE(outcome, sim::FaultOutcome::safety_violated) << diagnosis;
  if (outcome != sim::FaultOutcome::diverged) {
    // Settled: the twice-recovered worker restarted at most twice, and
    // every node produced a decided outcome.
    EXPECT_LE(result.outcomes[2].restarts, 2u);
  } else {
    EXPECT_NE(result.stall_dump.find("recoveries=2"), std::string::npos);
  }
}

// A storm of spurious pulses concentrated on one channel. With n + 1
// injections the livelock is guaranteed, not probabilistic: each node
// absorbs at most one pulse ever, so at least one surplus pulse circulates
// forever and only the watchdog can end the run — the ending must classify
// as diverged, with the post-mortem recording the full storm.
TEST(ThreadRingDoubleFaults, SpuriousStormOnOneChannelDiverges) {
  const std::size_t storm = kIds.size() + 1;
  const auto result = run_on_threads(
      kIds, {}, ThreadAlg::alg1, /*timeout_ms=*/600,
      [storm](ThreadRing& ring) {
        for (std::size_t i = 0; i < storm; ++i) {
          ring.inject_pulse(0, sim::Port::p0);
        }
      });
  std::string diagnosis;
  const sim::FaultOutcome outcome = classify_thread_result(result, &diagnosis);
  EXPECT_EQ(outcome, sim::FaultOutcome::diverged) << diagnosis;
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.stall_dump.find("injected=5"), std::string::npos);
}

// --- ProgressTracker (the watchdog's history, now reusable) ---------------

TEST(ProgressTracker, KeepsLastDepthSamplesInOrder) {
  ProgressTracker tracker(3);
  EXPECT_EQ(tracker.depth(), 3u);
  EXPECT_EQ(tracker.size(), 0u);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    tracker.record(i, "sample " + std::to_string(i));
  }
  EXPECT_EQ(tracker.size(), 3u);
  const auto history = tracker.history();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0], "sample 3");  // oldest retained first
  EXPECT_EQ(history[2], "sample 5");
}

TEST(ProgressTracker, StalledTailDetectsFlatWindowOnly) {
  ProgressTracker tracker(4);
  tracker.record(7, "a");
  EXPECT_FALSE(tracker.stalled_tail(2));  // not enough samples yet
  tracker.record(7, "b");
  EXPECT_TRUE(tracker.stalled_tail(2));  // two identical values
  tracker.record(8, "c");
  EXPECT_FALSE(tracker.stalled_tail(2));  // progress resumed
  EXPECT_FALSE(tracker.stalled_tail(3));  // window spans the progress step
  tracker.record(8, "d");
  EXPECT_TRUE(tracker.stalled_tail(2));
  EXPECT_FALSE(tracker.stalled_tail(4));
}

TEST(ProgressTracker, RejectsDegenerateDepthAndWindow) {
  EXPECT_THROW(ProgressTracker(0), util::ContractViolation);
  ProgressTracker tracker(2);
  tracker.record(1, "x");
  tracker.record(1, "y");
  EXPECT_THROW(tracker.stalled_tail(0), util::ContractViolation);
  EXPECT_THROW(tracker.stalled_tail(3), util::ContractViolation);
}

}  // namespace
}  // namespace colex::rt
