// Tests for the Section 1.1 replication transformation: r+1 copies per
// logical pulse, grouped consumption, tolerance of up to r stray leading
// pulses per channel, and exactly (r+1)-fold message complexity.
#include <gtest/gtest.h>

#include <memory>

#include "co/alg1.hpp"
#include "co/alg2.hpp"
#include "co/election.hpp"
#include "co/replicated.hpp"
#include "helpers.hpp"
#include "sim/network.hpp"

namespace colex::co {
namespace {

sim::PulseNetwork replicated_alg2_ring(const std::vector<std::uint64_t>& ids,
                                       unsigned r) {
  auto net = sim::PulseNetwork::ring(ids.size());
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    net.set_automaton(v, std::make_unique<ReplicatedAdapter>(
                             std::make_unique<Alg2Terminating>(ids[v]), r));
  }
  return net;
}

void expect_replicated_election(const std::vector<std::uint64_t>& ids,
                                unsigned r, sim::Scheduler& sched,
                                std::uint64_t strays_per_channel = 0,
                                std::uint64_t allowed_late = 0) {
  auto net = replicated_alg2_ring(ids, r);
  std::uint64_t injected = 0;
  if (strays_per_channel > 0) {
    // Strays from a hypothetical preceding protocol: they sit at the head
    // of each channel, before anything this protocol sends (FIFO).
    for (std::size_t c = 0; c < net.channel_count(); ++c) {
      for (std::uint64_t k = 0; k < strays_per_channel; ++k) {
        net.inject_fault(c);
        ++injected;
      }
    }
  }
  const auto report = net.run(sched);
  ASSERT_TRUE(report.quiescent);
  ASSERT_TRUE(report.all_terminated);
  EXPECT_LE(report.deliveries_to_terminated, allowed_late);

  std::uint64_t id_max = 0;
  for (const auto id : ids) id_max = std::max(id_max, id);
  std::size_t leaders = 0;
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    const auto& adapter = net.automaton_as<ReplicatedAdapter>(v);
    const auto& alg = adapter.inner_as<Alg2Terminating>();
    if (alg.role() == Role::leader) {
      ++leaders;
      EXPECT_EQ(alg.id(), id_max);
    }
    // The inner algorithm's logical counters match the unreplicated run.
    EXPECT_EQ(alg.counters().rho_cw, id_max) << "node " << v;
    EXPECT_EQ(alg.counters().rho_ccw, id_max + 1) << "node " << v;
  }
  EXPECT_EQ(leaders, 1u);
  // Message complexity: exactly (r+1) * n(2*IDmax+1) plus the strays.
  EXPECT_EQ(report.sent,
            (r + 1) * theorem1_pulses(ids.size(), id_max) + injected);
}

TEST(Replicated, RZeroIsIdentity) {
  sim::GlobalFifoScheduler sched;
  expect_replicated_election({2, 4, 1, 3}, 0, sched);
}

TEST(Replicated, RFoldOverheadExact) {
  for (const unsigned r : {1u, 2u, 3u}) {
    sim::GlobalFifoScheduler sched;
    expect_replicated_election({2, 4, 1, 3}, r, sched);
  }
}

TEST(Replicated, WorksUnderEveryScheduler) {
  for (auto& named : sim::standard_schedulers(3)) {
    expect_replicated_election({6, 11, 3, 9, 1}, 2, *named.scheduler);
  }
}

TEST(Replicated, ToleratesUpToRStrays) {
  // Up to r stray leading pulses per channel must be absorbed by the
  // grouping. (Strays left over at the end may reach terminated nodes;
  // that is exactly the imperfection Section 1.1 accepts.)
  for (const unsigned r : {1u, 2u, 3u}) {
    for (std::uint64_t strays = 1; strays <= r; ++strays) {
      sim::GlobalFifoScheduler sched;
      const std::vector<std::uint64_t> ids{2, 4, 1, 3};
      expect_replicated_election(ids, r, sched, strays,
                                 /*allowed_late=*/strays * 2 * ids.size());
    }
  }
}

TEST(Replicated, SingleNodeRing) {
  sim::GlobalFifoScheduler sched;
  expect_replicated_election({5}, 2, sched);
  sim::GlobalLifoScheduler lifo;
  expect_replicated_election({5}, 1, lifo, 1, 4);
}

TEST(Replicated, MoreStraysThanRBreaksGrouping) {
  // Negative control: r+1 strays shift a whole spurious logical pulse into
  // the stream; the run can no longer be a faithful replica. Detectable as
  // either a wrong election or inflated logical counters.
  sim::GlobalFifoScheduler sched;
  auto net = replicated_alg2_ring({2, 4, 1, 3}, 1);
  for (std::size_t c = 0; c < net.channel_count(); ++c) {
    net.inject_fault(c);
    net.inject_fault(c);  // 2 strays > r = 1
  }
  sim::RunOptions opts;
  opts.max_events = 200'000;
  const auto report = net.run(sched, opts);
  bool faithful = report.quiescent && !report.hit_event_limit;
  if (faithful) {
    for (sim::NodeId v = 0; v < 4; ++v) {
      const auto& alg = net.automaton_as<ReplicatedAdapter>(v)
                            .inner_as<Alg2Terminating>();
      faithful = faithful && alg.counters().rho_cw == 4u;
    }
  }
  EXPECT_FALSE(faithful);
}

TEST(Replicated, StabilizingAlg1AlsoReplicates) {
  const std::vector<std::uint64_t> ids{5, 9, 2, 7};
  for (const unsigned r : {0u, 2u}) {
    auto net = sim::PulseNetwork::ring(ids.size());
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      net.set_automaton(v, std::make_unique<ReplicatedAdapter>(
                               std::make_unique<Alg1Stabilizing>(ids[v]), r));
    }
    sim::RandomScheduler sched(r + 1);
    const auto report = net.run(sched);
    ASSERT_TRUE(report.quiescent);
    EXPECT_EQ(report.sent, (r + 1) * ids.size() * 9u);
    std::size_t leaders = 0;
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      const auto& alg = net.automaton_as<ReplicatedAdapter>(v)
                            .inner_as<Alg1Stabilizing>();
      if (alg.role() == Role::leader) ++leaders;
      EXPECT_EQ(alg.counters().rho_cw, 9u);
    }
    EXPECT_EQ(leaders, 1u);
  }
}

TEST(Replicated, RejectsNullInner) {
  EXPECT_THROW(ReplicatedAdapter(nullptr, 1), util::ContractViolation);
}

}  // namespace
}  // namespace colex::co
