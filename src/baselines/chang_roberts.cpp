// Chang-Roberts (1979): IDs circulate clockwise; a node forwards only IDs
// larger than its own, so exactly one ID — the maximum — survives a full
// circulation and its owner becomes leader. A final announcement informs the
// others. O(n^2) messages worst case (IDs sorted against the direction of
// travel), O(n log n) expected for random placement.
#include <memory>
#include <vector>

#include "baselines/run_ring.hpp"
#include "util/contracts.hpp"

namespace colex::baselines {
namespace {

class ChangRobertsNode final : public BaselineNode {
 public:
  explicit ChangRobertsNode(std::uint64_t id) : id_(id) {}

  std::unique_ptr<MsgAutomaton> clone() const override {
    return std::make_unique<ChangRobertsNode>(*this);
  }

  void start(MsgContext& ctx) override {
    Msg m;
    m.kind = Msg::Kind::candidate;
    m.value = id_;
    emit(ctx, kCw, m);
  }

  void react(MsgContext& ctx) override {
    while (auto m = ctx.recv(sim::Port::p0)) {
      if (terminated()) return;  // drained between deliveries
      switch (m->kind) {
        case Msg::Kind::announce:
          on_announce(ctx, *m);
          break;
        case Msg::Kind::candidate:
          if (m->value > id_) {
            emit(ctx, kCw, *m);
          } else if (m->value == id_) {
            start_announce(ctx, id_);  // own ID survived the full circle
          }
          // smaller IDs are swallowed
          break;
        default:
          COLEX_ASSERT(false);
      }
    }
  }

 private:
  std::uint64_t id_;
};

}  // namespace

BaselineResult chang_roberts(const std::vector<std::uint64_t>& ids,
                             sim::Scheduler& scheduler,
                             const MsgRunOptions& opts) {
  COLEX_EXPECTS(!ids.empty());
  return detail::run_ring(
      ids.size(),
      [&ids](sim::NodeId v) {
        return std::make_unique<ChangRobertsNode>(ids[v]);
      },
      scheduler, opts);
}

}  // namespace colex::baselines
