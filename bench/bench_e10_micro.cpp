// E10 — Simulator micro-benchmarks (google-benchmark): raw event
// throughput of the discrete-event substrate for the content-oblivious
// algorithms, the token bus, and the content-carrying baselines.
#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/baselines.hpp"
#include "bench_common.hpp"
#include "co/election.hpp"
#include "colib/apps.hpp"
#include "colib/composed.hpp"
#include "sim/scheduler.hpp"
#include "util/ids.hpp"

namespace {

using namespace colex;

void BM_Alg2Election(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto ids = util::shuffled(util::dense_ids(n), 7);
  std::uint64_t pulses = 0;
  for (auto _ : state) {
    sim::GlobalFifoScheduler sched;
    const auto result = co::elect_oriented_terminating(ids, sched);
    pulses = result.pulses;
    benchmark::DoNotOptimize(result.leader);
  }
  state.counters["pulses"] = static_cast<double>(pulses);
  state.counters["pulses/s"] = benchmark::Counter(
      static_cast<double>(pulses) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Alg2Election)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_Alg1Stabilization(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto ids = util::shuffled(util::dense_ids(n), 7);
  for (auto _ : state) {
    sim::GlobalFifoScheduler sched;
    const auto result = co::elect_oriented_stabilizing(ids, sched);
    benchmark::DoNotOptimize(result.pulses);
  }
}
BENCHMARK(BM_Alg1Stabilization)->Arg(16)->Arg(64)->Arg(256);

void BM_Alg3NonOriented(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto ids = util::shuffled(util::dense_ids(n), 7);
  const auto flips = util::random_flips(n, 3);
  for (auto _ : state) {
    sim::GlobalFifoScheduler sched;
    co::Alg3NonOriented::Options options;
    const auto result = co::elect_and_orient(ids, flips, options, sched);
    benchmark::DoNotOptimize(result.pulses);
  }
}
BENCHMARK(BM_Alg3NonOriented)->Arg(16)->Arg(64)->Arg(256);

void BM_RandomSchedulerElection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto ids = util::shuffled(util::dense_ids(n), 7);
  for (auto _ : state) {
    sim::RandomScheduler sched(11);
    const auto result = co::elect_oriented_terminating(ids, sched);
    benchmark::DoNotOptimize(result.pulses);
  }
}
BENCHMARK(BM_RandomSchedulerElection)->Arg(64)->Arg(256);

void BM_ComposedGatherAll(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto ids = util::shuffled(util::dense_ids(n), 7);
  for (auto _ : state) {
    sim::GlobalFifoScheduler sched;
    const auto result = colib::run_composed(
        ids,
        [](sim::NodeId v) {
          return std::make_unique<colib::GatherAllApp>(v + 1);
        },
        sched);
    benchmark::DoNotOptimize(result.total_pulses);
  }
}
BENCHMARK(BM_ComposedGatherAll)->Arg(8)->Arg(16)->Arg(32);

void BM_BaselineHirschbergSinclair(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto ids = util::shuffled(util::dense_ids(n), 7);
  for (auto _ : state) {
    sim::GlobalFifoScheduler sched;
    const auto result = baselines::hirschberg_sinclair(ids, sched);
    benchmark::DoNotOptimize(result.messages);
  }
}
BENCHMARK(BM_BaselineHirschbergSinclair)->Arg(64)->Arg(256)->Arg(1024);

void BM_BaselineChangRoberts(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto ids = util::shuffled(util::dense_ids(n), 7);
  for (auto _ : state) {
    sim::GlobalFifoScheduler sched;
    const auto result = baselines::chang_roberts(ids, sched);
    benchmark::DoNotOptimize(result.messages);
  }
}
BENCHMARK(BM_BaselineChangRoberts)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): google-benchmark already has a
// native JSON reporter, so BENCH_E10.json only records the wall time and
// points at `--benchmark_format=json` for per-benchmark detail.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  colex::bench::WallTimer total;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  colex::bench::JsonReport report(
      "E10",
      "simulator micro-benchmarks; rerun with --benchmark_format=json for "
      "per-benchmark timings");
  report.finish(total.seconds());
  return 0;
}
