// Tests for the lower-bound machinery (paper §6): solitude patterns,
// Lemma 22 uniqueness, Corollary 24 prefix groups, and the Theorem 4 bound.
#include <gtest/gtest.h>

#include <memory>

#include "co/alg2.hpp"
#include "co/election.hpp"
#include "lb/solitude.hpp"
#include "sim/network.hpp"

namespace colex::lb {
namespace {

AutomatonFactory alg2_factory() {
  return [](std::uint64_t id) -> std::unique_ptr<sim::PulseAutomaton> {
    return std::make_unique<co::Alg2Terminating>(id);
  };
}

TEST(Solitude, Alg2PatternHasKnownShape) {
  // In solitude, Algorithm 2 with ID i receives i CW pulses, then i CCW
  // pulses, then its own termination pulse: pattern 0^i 1^(i+1).
  for (std::uint64_t id : {1u, 2u, 5u, 9u}) {
    const auto p = solitude_pattern(alg2_factory(), id);
    EXPECT_TRUE(p.terminated) << "id " << id;
    EXPECT_TRUE(p.quiescent) << "id " << id;
    std::string expected(id, '0');
    expected += std::string(id + 1, '1');
    EXPECT_EQ(p.bits, expected) << "id " << id;
  }
}

TEST(Solitude, Lemma22PatternsAreUniqueOverWideRange) {
  const auto patterns = solitude_patterns(alg2_factory(), 1, 512);
  EXPECT_EQ(patterns.size(), 512u);
  EXPECT_TRUE(all_patterns_distinct(patterns));
}

TEST(Solitude, PatternLengthMatchesSolitudeComplexity) {
  // Pulses received in solitude equal pulses sent: 2*ID + 1 (Theorem 1 with
  // n = 1).
  for (std::uint64_t id = 1; id <= 64; ++id) {
    const auto p = solitude_pattern(alg2_factory(), id);
    EXPECT_EQ(p.bits.size(), 2 * id + 1);
  }
}

TEST(Solitude, CommonPrefixHelper) {
  EXPECT_EQ(common_prefix("0011", "0010"), 3u);
  EXPECT_EQ(common_prefix("", "0010"), 0u);
  EXPECT_EQ(common_prefix("111", "111"), 3u);
  EXPECT_EQ(common_prefix("10", "01"), 0u);
  EXPECT_EQ(common_prefix("01", "0111"), 2u);
}

TEST(Solitude, AllPatternsDistinctDetectsDuplicates) {
  std::vector<SolitudePattern> ps(2);
  ps[0].id = 1;
  ps[0].bits = "0101";
  ps[1].id = 2;
  ps[1].bits = "0101";
  EXPECT_FALSE(all_patterns_distinct(ps));
  ps[1].bits = "0100";
  EXPECT_TRUE(all_patterns_distinct(ps));
}

TEST(Solitude, BestPrefixGroupOnHandmadePatterns) {
  std::vector<SolitudePattern> ps;
  auto add = [&ps](std::uint64_t id, std::string bits) {
    SolitudePattern p;
    p.id = id;
    p.bits = std::move(bits);
    ps.push_back(std::move(p));
  };
  add(1, "0000");
  add(2, "0001");
  add(3, "0011");
  add(4, "1111");
  const auto g2 = best_prefix_group(ps, 2);
  EXPECT_EQ(g2.prefix_length, 3u);  // "000" shared by ids 1 and 2
  EXPECT_EQ(g2.ids.size(), 2u);
  const auto g3 = best_prefix_group(ps, 3);
  EXPECT_EQ(g3.prefix_length, 2u);  // "00" shared by ids 1, 2, 3
  const auto g1 = best_prefix_group(ps, 1);
  EXPECT_EQ(g1.prefix_length, 4u);  // any single full string
}

TEST(Solitude, Corollary24BoundHoldsForAlg2Patterns) {
  // Among k distinct patterns there must be n sharing a prefix of length
  // >= floor(log2(k/n)). Verify constructively for the real algorithm.
  const std::uint64_t k = 256;
  const auto patterns = solitude_patterns(alg2_factory(), 1, k);
  for (std::size_t n : {1u, 2u, 4u, 8u, 32u}) {
    const auto group = best_prefix_group(patterns, n);
    EXPECT_GE(group.prefix_length,
              co::theorem4_lower_bound(n, k) / n)  // = floor(log2(k/n))
        << "n=" << n;
    EXPECT_EQ(group.ids.size(), n);
  }
}

TEST(Solitude, Theorem4BoundFormula) {
  EXPECT_EQ(co::theorem4_lower_bound(1, 1), 0u);
  EXPECT_EQ(co::theorem4_lower_bound(1, 2), 1u);
  EXPECT_EQ(co::theorem4_lower_bound(1, 1024), 10u);
  EXPECT_EQ(co::theorem4_lower_bound(4, 1024), 4u * 8u);
  EXPECT_EQ(co::theorem4_lower_bound(3, 24), 3u * 3u);
  EXPECT_EQ(co::theorem4_lower_bound(5, 5), 0u);
  EXPECT_THROW(co::theorem4_lower_bound(4, 3), util::ContractViolation);
}

TEST(Solitude, AlgorithmComplexityDominatesTheorem4Bound) {
  // Theorem 1's n(2*IDmax+1) always sits above Theorem 4's n*floor(log2(k/n))
  // when k = IDmax IDs are assignable.
  for (std::uint64_t n : {1u, 2u, 8u}) {
    for (std::uint64_t k : {8u, 64u, 4096u}) {
      if (k < n) continue;
      EXPECT_GE(co::theorem1_pulses(n, k), co::theorem4_lower_bound(n, k));
    }
  }
}

TEST(Solitude, SharedPrefixForcesPulsesOnRealRing) {
  // The Theorem 20 argument, executed: place n nodes whose solitude
  // patterns share a prefix of length s on a ring; under the Definition 21
  // scheduler each node individually replays its solitude pattern for at
  // least s deliveries, so >= n*s pulses are forced before any divergence.
  const std::uint64_t k = 64;
  const std::size_t n = 4;
  const auto patterns = solitude_patterns(alg2_factory(), 1, k);
  const auto group = best_prefix_group(patterns, n);
  const std::size_t s = group.prefix_length;
  ASSERT_GE(s, co::theorem4_lower_bound(n, k) / n);

  auto net = sim::PulseNetwork::ring(n);
  for (sim::NodeId v = 0; v < n; ++v) {
    net.set_automaton(v, std::make_unique<co::Alg2Terminating>(group.ids[v]));
  }
  std::vector<std::string> observed(n);
  sim::RunOptions opts;
  opts.on_deliver = [&observed](sim::NodeId v, sim::Port, sim::Direction d) {
    observed[v].push_back(d == sim::Direction::cw ? '0' : '1');
  };
  sim::SolitudeScheduler sched;
  const auto report = net.run(sched, opts);
  ASSERT_TRUE(report.quiescent);
  // Each node's first s observed pulses match its solitude pattern prefix.
  std::uint64_t forced = 0;
  for (sim::NodeId v = 0; v < n; ++v) {
    const auto& full = patterns[group.ids[v] - 1];
    ASSERT_EQ(full.id, group.ids[v]);
    ASSERT_GE(observed[v].size(), s);
    EXPECT_EQ(observed[v].substr(0, s), full.bits.substr(0, s))
        << "node " << v;
    forced += s;
  }
  EXPECT_GE(report.sent, forced);
  EXPECT_GE(report.sent, co::theorem4_lower_bound(n, k));
}


// A deliberately ID-oblivious "election": every node sends one CW pulse,
// relays the next two, then claims leadership and terminates. Its solitude
// pattern is identical for every ID — exactly the situation Lemma 22 rules
// out for correct algorithms.
class BrokenOblivious final : public sim::PulseAutomaton {
 public:
  void start(sim::PulseContext& ctx) override { ctx.send(sim::Port::p1); }
  void react(sim::PulseContext& ctx) override {
    while (!done_ && ctx.recv_pulse(sim::Port::p0)) {
      ++received_;
      if (received_ < 3) {
        ctx.send(sim::Port::p1);
      } else {
        claims_leadership_ = true;
        done_ = true;
      }
    }
  }
  bool terminated() const override { return done_; }
  std::unique_ptr<sim::PulseAutomaton> clone() const override {
    return std::make_unique<BrokenOblivious>(*this);
  }
  bool claims_leadership() const { return claims_leadership_; }

 private:
  int received_ = 0;
  bool done_ = false;
  bool claims_leadership_ = false;
};

AutomatonFactory broken_factory() {
  return [](std::uint64_t) -> std::unique_ptr<sim::PulseAutomaton> {
    return std::make_unique<BrokenOblivious>();
  };
}

TEST(Lemma22, IdObliviousAlgorithmHasCollidingPatterns) {
  const auto patterns = solitude_patterns(broken_factory(), 1, 16);
  EXPECT_FALSE(all_patterns_distinct(patterns));
  for (const auto& p : patterns) EXPECT_EQ(p.bits, "000");
}

TEST(Lemma22, CollidingPatternsMakeBothNodesReplayAndBothWin) {
  // The lemma's contradiction, executed: two nodes whose solitude patterns
  // coincide replay them verbatim on the 2-ring and both claim leadership.
  auto net = sim::PulseNetwork::ring(2);
  net.set_automaton(0, std::make_unique<BrokenOblivious>());
  net.set_automaton(1, std::make_unique<BrokenOblivious>());
  std::string obs[2];
  sim::RunOptions opts;
  opts.on_deliver = [&obs](sim::NodeId v, sim::Port, sim::Direction d) {
    obs[v].push_back(d == sim::Direction::cw ? '0' : '1');
  };
  sim::SolitudeScheduler sched;
  const auto report = net.run(sched, opts);
  ASSERT_TRUE(report.quiescent);
  EXPECT_EQ(obs[0], "000");  // identical to the solitude pattern
  EXPECT_EQ(obs[1], "000");
  EXPECT_TRUE(net.automaton_as<BrokenOblivious>(0).claims_leadership());
  EXPECT_TRUE(net.automaton_as<BrokenOblivious>(1).claims_leadership());
}

TEST(Lemma22, CorrectAlgorithmDivergesAfterSharedPrefix) {
  // For Algorithm 2, distinct IDs mean distinct patterns; on the 2-ring the
  // nodes track their solitude behaviour only up to the shared prefix and
  // the run still elects exactly one leader.
  const std::uint64_t id_a = 5, id_b = 9;
  const auto pa = solitude_pattern(alg2_factory(), id_a);
  const auto pb = solitude_pattern(alg2_factory(), id_b);
  const std::size_t shared = common_prefix(pa.bits, pb.bits);
  EXPECT_EQ(shared, 5u);  // patterns 0^5 1^6 and 0^9 1^10 share 0^5

  const auto obs = two_node_observation(alg2_factory(), id_a, id_b);
  ASSERT_TRUE(obs.quiescent);
  ASSERT_FALSE(obs.hit_event_limit);
  EXPECT_EQ(obs.observed_a.substr(0, shared), pa.bits.substr(0, shared));
  EXPECT_EQ(obs.observed_b.substr(0, shared), pb.bits.substr(0, shared));
  // Total traffic in the 2-ring run follows Theorem 1: each node receives
  // IDmax CW + IDmax+1 CCW pulses.
  EXPECT_EQ(obs.observed_a.size(), 9u + 10u);
  EXPECT_EQ(obs.observed_b.size(), 9u + 10u);
}

TEST(Lemma22, TwoNodeObservationSweep) {
  // Every ID pair behaves like its solitude execution for exactly the
  // shared-prefix length under the Definition 21 scheduler.
  for (std::uint64_t a = 1; a <= 6; ++a) {
    for (std::uint64_t b = a + 1; b <= 7; ++b) {
      const auto pa = solitude_pattern(alg2_factory(), a);
      const auto pb = solitude_pattern(alg2_factory(), b);
      const std::size_t shared = common_prefix(pa.bits, pb.bits);
      const auto obs = two_node_observation(alg2_factory(), a, b);
      ASSERT_TRUE(obs.quiescent) << a << "," << b;
      EXPECT_EQ(obs.observed_a.substr(0, shared),
                pa.bits.substr(0, shared));
      EXPECT_EQ(obs.observed_b.substr(0, shared),
                pb.bits.substr(0, shared));
    }
  }
}

}  // namespace
}  // namespace colex::lb
