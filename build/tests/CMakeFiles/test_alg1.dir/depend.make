# Empty dependencies file for test_alg1.
# This may be replaced when dependencies are built.
