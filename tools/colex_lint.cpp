// colex-lint: model-conformance and determinism static analysis for the
// colex tree (DESIGN.md §8).
//
//   colex-lint [--json] <path>...        scan files/directories
//   colex-lint --self-test <path>...     verify rules against planted
//                                        fixtures (tests/lint_fixtures)
//   colex-lint --list-rules              print the rule catalog
//
// Suppressions (justify them — reviewers read these):
//   // colex-lint: allow(C001) <why this is a false positive>
//   // colex-lint: allow-file(D002) <why, for the whole file>
//
// Exit status mirrors colex-fuzz: 0 clean, 1 findings (or self-test
// mismatch), 2 usage / I-O error.
#include <iostream>
#include <string>
#include <vector>

#include "lint/driver.hpp"

namespace {

int usage() {
  std::cerr << "usage:\n"
               "  colex-lint [--json] <path>...\n"
               "  colex-lint --self-test <path>...\n"
               "  colex-lint --list-rules\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool self_test = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--list-rules") {
      for (const auto& rule : colex::lint::rule_catalog()) {
        std::cout << rule.id << "  " << rule.summary << "\n";
      }
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "colex-lint: unknown option '" << arg << "'\n";
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();

  if (self_test) {
    const auto result = colex::lint::run_self_test(paths);
    for (const std::string& p : result.problems) {
      std::cerr << "colex-lint self-test: " << p << "\n";
    }
    std::cout << "colex-lint self-test: " << result.expectations
              << " expectations, " << result.rules_exercised.size()
              << " rules exercised, "
              << (result.ok ? "all matched" : "MISMATCH") << "\n";
    return result.ok ? 0 : 1;
  }

  const auto outcome = colex::lint::scan_paths(paths);
  if (json) {
    colex::lint::print_json(std::cout, outcome);
  } else {
    colex::lint::print_human(std::cout, outcome);
  }
  return colex::lint::exit_code(outcome);
}
