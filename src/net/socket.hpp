// Thin POSIX socket layer for the src/net backend: RAII file descriptors,
// monotonic deadlines, loopback listen/connect with refused-vs-fatal
// classification, and EAGAIN-safe bulk writes. Everything is
// loopback-oriented (the multi-process harness runs rings on 127.0.0.1)
// but nothing below assumes it except the connect helpers' address.
//
// All blocking operations take an explicit Deadline — the backend has no
// unbounded waits anywhere (the coordinator's watchdog is the only
// authority on giving up), and the tests drive every timeout path with
// short deadlines instead of sleeps.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace colex::net {

/// Move-only owner of one file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  /// Closes the descriptor; safe to call repeatedly (idempotent).
  void reset();

 private:
  int fd_ = -1;
};

/// Monotonic-clock deadline (steady_clock; wall-clock never appears in the
/// backend, so runs cannot be confused by clock steps).
class Deadline {
 public:
  /// A deadline `ms` milliseconds from now.
  static Deadline in_ms(std::uint64_t ms);
  /// Milliseconds until expiry, clamped to [0, cap_ms] for poll().
  int remaining_ms(int cap_ms = 100) const;
  bool expired() const;

 private:
  std::int64_t at_ns_ = 0;  ///< steady-clock nanoseconds at expiry
};

/// Classified outcome of a single non-retried connect attempt.
enum class ConnectStatus {
  ok,
  refused,  ///< ECONNREFUSED: listener not up (yet) — retryable
  error,    ///< anything else — not retryable
};

struct ConnectResult {
  Fd fd;
  ConnectStatus status = ConnectStatus::error;
  std::string error;
};

/// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
/// port). On success the bound port is written to `bound_port`. Failure
/// returns an invalid Fd with `err` set.
Fd listen_on(std::uint16_t port, std::uint16_t* bound_port, std::string* err);

/// One blocking connect attempt to 127.0.0.1:`port`, classified.
ConnectResult connect_once(std::uint16_t port);

/// Connects to 127.0.0.1:`port`, retrying refused attempts (with a short
/// backoff) until the deadline. Returns an invalid Fd with `err` set on a
/// non-retryable error or deadline expiry.
Fd connect_retry(std::uint16_t port, const Deadline& deadline,
                 std::string* err);

/// Accepts one connection, waiting until the deadline. Returns an invalid
/// Fd with `err` set on failure or expiry.
Fd accept_one(int listener, const Deadline& deadline, std::string* err);

/// Writes all `len` bytes (MSG_NOSIGNAL; EAGAIN waits for POLLOUT within
/// the deadline). Returns false with `err` set on failure.
bool send_all(int fd, const unsigned char* data, std::size_t len,
              const Deadline& deadline, std::string* err);

/// Marks the descriptor non-blocking (the per-node event loop reads with
/// O_NONBLOCK and blocks only in poll()).
bool set_nonblocking(int fd, std::string* err);

/// Disables Nagle so single-pulse writes are not delayed behind ACKs; the
/// backend batches writes itself where coalescing is profitable.
void set_nodelay(int fd);

}  // namespace colex::net
