// Brace/scope walker and class indexer for colex-lint.
//
// Produces, per file, the three structural facts the rules need beyond raw
// tokens:
//
//   * class definitions with their body extents, base-specifier tokens, and
//     declared data members (the repo convention: trailing-underscore
//     identifiers declared at class scope),
//   * function definitions with their owning class (in-class definitions and
//     out-of-line `X::f` alike) and body extents,
//   * `static` locals declared mutable inside function bodies (rule D003).
//
// The walker is a heuristic brace classifier, not a parser: it decides for
// every `{` whether it opens a namespace, class, enum, function body,
// control block, or expression (aggregate init / lambda argument), using
// only nearby tokens. That is exact on this codebase's style and degrades
// to "Expr" (ignored) on constructs it does not recognize.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/source.hpp"

namespace colex::lint {

struct ClassDef {
  std::string name;                 // "" for anonymous
  int line = 0;
  std::size_t body_begin = 0;       // token index just after '{'
  std::size_t body_end = 0;         // token index of '}'
  std::vector<std::string> bases;   // identifier tokens of the base clause
  std::vector<std::string> members;          // trailing-underscore members
  std::map<std::string, int> member_lines;   // member -> declaration line
};

struct FunctionDef {
  std::string owner;  // enclosing class, or `X` for out-of-line `X::f`
  std::string name;   // "" when unresolvable (lambda, operator)
  int line = 0;       // line of the name token (or of '{' when unnamed)
  std::size_t sig_begin = 0;  // token index of the name (params + init list
                              // + body follow); == body_begin when unnamed
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

struct FileIndex {
  std::vector<ClassDef> classes;
  std::vector<FunctionDef> functions;
  std::vector<int> mutable_static_local_lines;  // D003 raw hits
};

FileIndex build_file_index(const SourceFile& file);

/// Project-wide aggregate: file indexes plus the facts that need
/// cross-file joins (a class declared in a header, cloned in a .cpp).
struct ProjectIndex {
  // Parallel to the driver's file list.
  std::vector<FileIndex> files;
  // Names of classes whose base clause names an Automaton type. M-rules
  // treat the extents of these classes (and of their out-of-line member
  // functions) as "automaton code".
  std::set<std::string> automaton_classes;
};

ProjectIndex build_project_index(const std::vector<SourceFile>& files);

}  // namespace colex::lint
