// Tests for Algorithm 1 (stabilizing leader election on oriented rings),
// including the paper's Lemma 6 / 7 / 11 / Corollary 13 / 14 invariants and
// the non-unique-ID extension of Lemma 16.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "co/alg1.hpp"
#include "co/election.hpp"
#include "helpers.hpp"
#include "sim/network.hpp"

namespace colex::co {
namespace {

sim::PulseNetwork make_alg1_ring(const std::vector<std::uint64_t>& ids) {
  auto net = sim::PulseNetwork::ring(ids.size());
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    net.set_automaton(v, std::make_unique<Alg1Stabilizing>(ids[v]));
  }
  return net;
}

std::uint64_t id_max(const std::vector<std::uint64_t>& ids) {
  return *std::max_element(ids.begin(), ids.end());
}

TEST(Alg1, ElectsMaxIdOnSmallRing) {
  sim::GlobalFifoScheduler sched;
  const auto result = elect_oriented_stabilizing({2, 4, 1, 3}, sched);
  EXPECT_TRUE(result.quiescent);
  ASSERT_TRUE(result.leader.has_value());
  EXPECT_EQ(*result.leader, 1u);  // node holding ID 4
  EXPECT_EQ(result.leader_count, 1u);
  EXPECT_TRUE(result.valid_election());
}

TEST(Alg1, PulseCountIsExactlyNTimesIdMax) {
  sim::GlobalFifoScheduler sched;
  const std::vector<std::uint64_t> ids{5, 9, 2, 7, 1};
  const auto result = elect_oriented_stabilizing(ids, sched);
  // Corollary 13: every node sends and receives exactly IDmax pulses.
  EXPECT_EQ(result.pulses, ids.size() * id_max(ids));
  for (const auto& n : result.nodes) {
    EXPECT_EQ(n.rho_cw, id_max(ids));
    EXPECT_EQ(n.sigma_cw, id_max(ids));
  }
}

TEST(Alg1, SingleNodeRingElectsItself) {
  sim::GlobalFifoScheduler sched;
  const auto result = elect_oriented_stabilizing({7}, sched);
  EXPECT_TRUE(result.quiescent);
  EXPECT_EQ(result.leader_count, 1u);
  EXPECT_EQ(result.pulses, 7u);
}

TEST(Alg1, TwoNodeRing) {
  sim::GlobalFifoScheduler sched;
  const auto result = elect_oriented_stabilizing({3, 8}, sched);
  EXPECT_TRUE(result.valid_election());
  EXPECT_EQ(*result.leader, 1u);
  EXPECT_EQ(result.pulses, 2u * 8u);
}

TEST(Alg1, DoesNotTerminate) {
  sim::GlobalFifoScheduler sched;
  const auto result = elect_oriented_stabilizing({1, 2, 3}, sched);
  EXPECT_TRUE(result.quiescent);
  EXPECT_FALSE(result.all_terminated);  // stabilizing, not terminating
}

TEST(Alg1, NonUniqueIdsElectAllMaxHolders) {
  // Lemma 16: with non-unique IDs, the guarantees of Corollary 13 persist;
  // every holder of the maximal ID ends in the Leader state.
  sim::GlobalFifoScheduler sched;
  const std::vector<std::uint64_t> ids{4, 2, 4, 1, 4};
  const auto result = elect_oriented_stabilizing(ids, sched);
  EXPECT_TRUE(result.quiescent);
  EXPECT_EQ(result.leader_count, 3u);
  for (std::size_t v = 0; v < ids.size(); ++v) {
    EXPECT_EQ(result.nodes[v].role,
              ids[v] == 4 ? Role::leader : Role::non_leader);
    EXPECT_EQ(result.nodes[v].rho_cw, 4u);
    EXPECT_EQ(result.nodes[v].sigma_cw, 4u);
  }
}

TEST(Alg1, AllNodesSameIdAllBecomeLeaders) {
  sim::GlobalFifoScheduler sched;
  const auto result = elect_oriented_stabilizing({3, 3, 3}, sched);
  EXPECT_TRUE(result.quiescent);
  EXPECT_EQ(result.leader_count, 3u);
  EXPECT_EQ(result.pulses, 9u);
}

TEST(Alg1, RejectsZeroId) {
  EXPECT_THROW(Alg1Stabilizing(0), util::ContractViolation);
}

// Lemma 6 invariants, checked after *every* simulator event:
//  1. rho_cw <  ID  =>  sigma_cw == rho_cw + 1
//  2. rho_cw >= ID  =>  sigma_cw == rho_cw
// plus Corollary 14: rho_cw <= IDmax at all times.
void check_lemma6_everywhere(const std::vector<std::uint64_t>& ids,
                             sim::Scheduler& sched) {
  auto net = make_alg1_ring(ids);
  const std::uint64_t idm = id_max(ids);
  sim::RunOptions opts;
  std::uint64_t checks = 0;
  opts.on_event = [&](sim::PulseNetwork& n) {
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      if (!n.started(v)) continue;  // Lemma 6 speaks about started nodes
      const auto& alg = n.automaton_as<Alg1Stabilizing>(v);
      const auto& k = alg.counters();
      if (k.rho_cw < alg.id()) {
        ASSERT_EQ(k.sigma_cw, k.rho_cw + 1)
            << "Lemma 6.1 violated at node " << v;
      } else {
        ASSERT_EQ(k.sigma_cw, k.rho_cw) << "Lemma 6.2 violated at node " << v;
      }
      ASSERT_LE(k.rho_cw, idm) << "Corollary 14 violated at node " << v;
    }
    ++checks;
  };
  const auto report = net.run(sched, opts);
  EXPECT_TRUE(report.quiescent);
  EXPECT_GT(checks, 0u);
}

class Alg1SchedulerSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(Alg1SchedulerSweep, Lemma6HoldsAtEveryStep) {
  auto sched = test::make_scheduler(GetParam(), 3);
  ASSERT_NE(sched, nullptr);
  check_lemma6_everywhere({6, 11, 3, 9, 1, 7}, *sched);
}

TEST_P(Alg1SchedulerSweep, OutcomeIsSchedulerIndependent) {
  auto sched = test::make_scheduler(GetParam(), 3);
  ASSERT_NE(sched, nullptr);
  const std::vector<std::uint64_t> ids{12, 5, 20, 3, 8};
  const auto result = elect_oriented_stabilizing(ids, *sched);
  EXPECT_TRUE(result.quiescent);
  EXPECT_TRUE(result.valid_election());
  EXPECT_EQ(*result.leader, 2u);
  // Message complexity is an execution invariant: exactly n * IDmax under
  // every adversary.
  EXPECT_EQ(result.pulses, ids.size() * 20u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, Alg1SchedulerSweep,
    ::testing::ValuesIn(test::standard_scheduler_names(3)),
    [](const ::testing::TestParamInfo<std::string>& pinfo) {
      std::string name = pinfo.param;
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(Alg1, Lemma7LeaderCrossesThresholdLast) {
  // Track the order in which nodes first satisfy rho_cw >= ID; the max-ID
  // node must be last (Lemma 7).
  const std::vector<std::uint64_t> ids{4, 9, 2, 6, 1};
  for (auto& named : sim::standard_schedulers(5)) {
    auto net = make_alg1_ring(ids);
    std::vector<bool> crossed(ids.size(), false);
    std::size_t crossings = 0;
    bool leader_crossed_last = true;
    sim::RunOptions opts;
    opts.on_event = [&](sim::PulseNetwork& n) {
      for (sim::NodeId v = 0; v < ids.size(); ++v) {
        const auto& alg = n.automaton_as<Alg1Stabilizing>(v);
        if (!crossed[v] && alg.counters().rho_cw >= alg.id()) {
          crossed[v] = true;
          ++crossings;
          // Node 1 holds the max ID 9; when it crosses, all must have.
          if (v == 1 && crossings != ids.size()) leader_crossed_last = false;
        }
      }
    };
    const auto report = net.run(*named.scheduler, opts);
    EXPECT_TRUE(report.quiescent) << named.name;
    EXPECT_EQ(crossings, ids.size()) << named.name;
    EXPECT_TRUE(leader_crossed_last) << named.name;
  }
}

TEST(Alg1, QuiescenceIffAllCrossedLemma11) {
  // Lemma 11: quiescence <=> rho_cw[v] >= ID_v everywhere <=> all counters
  // equal IDmax. Verify the forward direction at every intermediate step
  // (not quiescent while someone is below threshold) and the final state.
  const std::vector<std::uint64_t> ids{5, 2, 8, 3};
  auto net = make_alg1_ring(ids);
  sim::RunOptions opts;
  opts.on_event = [&](sim::PulseNetwork& n) {
    bool all_crossed = true;
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      const auto& alg = n.automaton_as<Alg1Stabilizing>(v);
      if (alg.counters().rho_cw < alg.id()) all_crossed = false;
    }
    if (!all_crossed) {
      ASSERT_FALSE(n.quiescent());
    } else {
      ASSERT_TRUE(n.quiescent());
      for (sim::NodeId v = 0; v < ids.size(); ++v) {
        const auto& alg = n.automaton_as<Alg1Stabilizing>(v);
        ASSERT_EQ(alg.counters().rho_cw, 8u);
        ASSERT_EQ(alg.counters().sigma_cw, 8u);
      }
    }
  };
  sim::RandomScheduler sched(99);
  EXPECT_TRUE(net.run(sched, opts).quiescent);
}

TEST(Alg1, SparseIdsStillExact) {
  sim::GlobalFifoScheduler sched;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto ids = test::sparse_ids(6, 200, seed);
    const auto result = elect_oriented_stabilizing(ids, sched);
    EXPECT_TRUE(result.quiescent);
    EXPECT_TRUE(result.valid_election());
    EXPECT_EQ(result.pulses, ids.size() * id_max(ids));
  }
}

TEST(Alg1, InterleavedStartsDoNotChangeOutcome) {
  const std::vector<std::uint64_t> ids{10, 4, 7, 2, 6, 1};
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::RandomScheduler sched(seed);
    sim::RunOptions opts;
    opts.interleave_starts = true;
    opts.interleave_seed = seed * 17;
    const auto result = elect_oriented_stabilizing(ids, sched, opts);
    EXPECT_TRUE(result.quiescent);
    EXPECT_TRUE(result.valid_election());
    EXPECT_EQ(*result.leader, 0u);
    EXPECT_EQ(result.pulses, ids.size() * 10u);
  }
}

TEST(Alg1, ExhaustiveSmallRingPermutations) {
  // All placements of IDs {1..4} on a 4-ring, all under two adversaries.
  std::vector<std::uint64_t> ids{1, 2, 3, 4};
  std::sort(ids.begin(), ids.end());
  do {
    for (auto& named : sim::standard_schedulers(1)) {
      const auto result = elect_oriented_stabilizing(ids, *named.scheduler);
      ASSERT_TRUE(result.quiescent);
      ASSERT_TRUE(result.valid_election());
      ASSERT_EQ(ids[*result.leader], 4u) << named.name;
      ASSERT_EQ(result.pulses, 16u);
    }
  } while (std::next_permutation(ids.begin(), ids.end()));
}

// Model-violation detection: dropping or injecting pulses breaks the
// Lemma 6 / Corollary 13 accounting in an observable way, demonstrating
// that the invariants are sharp and that the model's "no drops, no
// injections" assumption is load-bearing.
TEST(Alg1, DroppedPulseBreaksStabilizationAccounting) {
  const std::vector<std::uint64_t> ids{3, 5, 2};
  auto net = make_alg1_ring(ids);
  bool dropped = false;
  int events_seen = 0;
  sim::RunOptions opts;
  // Once all starts have fired, channel 0 (CW out of node 0) holds node 0's
  // start pulse; destroy it.
  opts.on_event = [&](sim::PulseNetwork& n) {
    ++events_seen;
    if (events_seen == static_cast<int>(ids.size()) && !dropped) {
      // All starts done; channel 0 (CW out of node 0) holds one pulse.
      n.drop_fault(0);
      dropped = true;
    }
  };
  sim::GlobalFifoScheduler sched;
  const auto report = net.run(sched, opts);
  EXPECT_TRUE(dropped);
  // With a pulse destroyed, the ring can stabilize only short of IDmax:
  // someone never reaches their ID.
  bool someone_short = false;
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    const auto& alg = net.automaton_as<Alg1Stabilizing>(v);
    if (alg.counters().rho_cw < 5u) someone_short = true;
  }
  EXPECT_TRUE(someone_short);
  EXPECT_EQ(report.deliveries_to_terminated, 0u);
}

TEST(Alg1, InjectedPulseInflatesCountsBeyondIdMax) {
  const std::vector<std::uint64_t> ids{3, 5, 2};
  auto net = make_alg1_ring(ids);
  bool injected = false;
  int events_seen = 0;
  sim::RunOptions opts;
  opts.on_event = [&](sim::PulseNetwork& n) {
    ++events_seen;
    if (events_seen == static_cast<int>(ids.size()) && !injected) {
      n.inject_fault(0);  // a pulse nobody sent
      injected = true;
    }
  };
  // Once every node has crossed its threshold, the surplus pulse circulates
  // forever (all nodes act as relays), so bound the run.
  opts.max_events = 5000;
  sim::GlobalFifoScheduler sched;
  net.run(sched, opts);
  // Corollary 14 (rho_cw <= IDmax) must now fail somewhere.
  bool exceeded = false;
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    if (net.automaton_as<Alg1Stabilizing>(v).counters().rho_cw > 5u) {
      exceeded = true;
    }
  }
  EXPECT_TRUE(exceeded);
}

}  // namespace
}  // namespace colex::co
