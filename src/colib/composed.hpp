// Corollary 5, executable: compose the quiescently terminating leader
// election (Algorithm 2) with the root-based content-oblivious bus. The act
// of termination is replaced by the act of switching to the bus protocol
// (paper §1.1); the leader — last to terminate — becomes the bus root, and
// quiescent termination guarantees message-algorithm attribution: no
// election pulse can ever be mistaken for a bus pulse.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "co/alg2.hpp"
#include "co/election.hpp"
#include "colib/bus.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace colex::colib {

/// One ring node running [ Algorithm 2 ; then ; BusNode(app) ].
class ComposedNode final : public sim::PulseAutomaton {
 public:
  ComposedNode(std::uint64_t id, std::unique_ptr<BusApp> app);

  void start(sim::PulseContext& ctx) override;
  void react(sim::PulseContext& ctx) override;
  bool terminated() const override {
    return bus_ != nullptr && bus_->terminated();
  }
  std::unique_ptr<sim::PulseAutomaton> clone() const override;

  const co::Alg2Terminating& election() const { return election_; }
  /// Null until the election phase has terminated at this node.
  const BusNode* bus() const { return bus_.get(); }
  BusNode* bus() { return bus_.get(); }

 private:
  /// Deep copy for clone(): the election phase copies by value, the app and
  /// bus layers (whichever side of the phase switch the node is on) clone.
  ComposedNode(const ComposedNode& other);

  co::Alg2Terminating election_;
  std::unique_ptr<BusApp> pending_app_;  // handed to the bus at the switch
  std::unique_ptr<BusNode> bus_;
};

/// Result of a full composed run.
struct ComposedResult {
  bool quiescent = false;
  bool all_terminated = false;
  std::uint64_t total_pulses = 0;
  std::uint64_t election_pulses = 0;  ///< sum of Algorithm 2 sigma counters
  std::uint64_t bus_pulses = 0;
  std::optional<sim::NodeId> leader;
  std::size_t ring_size_learned = 0;  ///< n as learned by every bus node
  sim::RunReport report;
};

/// Factory: the application instance node v runs on the bus.
using AppFactory = std::function<std::unique_ptr<BusApp>(sim::NodeId v)>;

/// Builds an oriented ring of ComposedNodes with the given IDs, runs it to
/// quiescence, and verifies the composition's bookkeeping (every node
/// learned the same ring size; the leader served as root). Access the
/// per-node apps through the returned network if richer outputs are needed —
/// see run_composed_with_network.
ComposedResult run_composed(const std::vector<std::uint64_t>& ids,
                            const AppFactory& factory,
                            sim::Scheduler& scheduler,
                            const sim::RunOptions& opts = {});

/// As run_composed, but also hands back the network so callers can inspect
/// per-node application state (network outlives the result extraction).
ComposedResult run_composed_with_network(
    const std::vector<std::uint64_t>& ids, const AppFactory& factory,
    sim::Scheduler& scheduler, const sim::RunOptions& opts,
    sim::PulseNetwork& net_out);

}  // namespace colex::colib
