// Lock-free single-producer/single-consumer channels for the coroutine
// runtime (DESIGN.md "Coroutine runtime").
//
// Two shapes share one idea:
//
//  * SpscRing<T>: a bounded power-of-two ring buffer with cache-line-padded
//    producer/consumer counter pairs and cached remote indices (the producer
//    only re-reads the consumer's head when the ring looks full, and vice
//    versa), so steady-state push/pop touch a single cache line each.
//  * PulseChannel: the model's pulses are fully content-free (paper §2) and
//    therefore fungible — the "ring buffer" for a zero-byte payload
//    degenerates to the produced/consumed counter pair alone. A channel
//    never fills, never allocates, and recv is a counter compare+bump.
//
// Memory ordering: SpscRing uses the classic acquire/release pairing
// (producer publishes the slot with a release store of tail; the consumer's
// acquire load of tail makes the slot write visible, and symmetrically for
// head). PulseChannel's produced counter is written seq_cst because it
// participates in the runtime's Dekker-style sleep/wake protocol with the
// receiving node's state word (see coro/executor.hpp): the producer's
// counter bump must be globally ordered against the consumer's PARKED
// store, or a pulse could slip in unnoticed between the consumer's last
// empty poll and its suspension — the classic lost wakeup. The consumed
// counter is only ever touched by the owning node's coroutine (one thread
// at a time, handed off through the executor's deques), so relaxed loads
// and stores suffice there.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/contracts.hpp"

namespace colex::coro {

inline constexpr std::size_t kCacheLine = 64;

/// Smallest power of two >= `v` (and >= 2).
constexpr std::size_t next_pow2(std::size_t v) {
  std::size_t p = 2;
  while (p < v) p <<= 1;
  return p;
}

/// Bounded lock-free SPSC ring buffer. Exactly one thread may push and one
/// thread may pop at any time (the two may differ and may migrate between
/// OS threads as long as each side's calls are externally ordered —
/// which the executor's happens-before edges guarantee for node
/// coroutines).
template <class T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two, minimum 2.
  explicit SpscRing(std::size_t capacity)
      : buf_(next_pow2(capacity)), mask_(buf_.size() - 1) {}

  std::size_t capacity() const { return buf_.size(); }

  /// Producer side. Returns false when the ring is full.
  bool try_push(const T& value) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - cached_head_ == buf_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (t - cached_head_ == buf_.size()) return false;  // genuinely full
    }
    buf_[t & mask_] = value;
    tail_.store(t + 1, std::memory_order_release);  // publish the slot
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (h == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (h == cached_tail_) return false;  // genuinely empty
    }
    out = buf_[h & mask_];
    head_.store(h + 1, std::memory_order_release);  // release the slot
    return true;
  }

  /// Approximate from the consumer side (exact when called by the consumer
  /// with no concurrent push).
  std::size_t size() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }
  bool empty() const { return size() == 0; }

 private:
  // Producer-owned line: tail plus the producer's cached view of head.
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;
  // Consumer-owned line: head plus the consumer's cached view of tail.
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;
  alignas(kCacheLine) std::vector<T> buf_;
  std::uint64_t mask_;
};

/// One directed pulse channel: the degenerate (zero-byte payload) SPSC ring
/// buffer. Unbounded, allocation-free, 16 bytes. Not individually padded:
/// at n=10^6 nodes per-channel padding alone would cost ~256MB, so false
/// sharing is instead handled one level up — the executor packs a node's
/// two channels, state word, and wiring into a single cache-line-aligned
/// block (neighbors touch it only on send, which is already a coherence
/// miss by nature).
struct PulseChannel {
  std::atomic<std::uint64_t> produced{0};
  std::atomic<std::uint64_t> consumed{0};

  /// Producer: deposit one pulse. seq_cst — see file header.
  void produce() { produced.fetch_add(1, std::memory_order_seq_cst); }

  /// Consumer only. `sync` ordering for the post-PARKED re-check in the
  /// sleep/wake protocol; relaxed-ish acquire everywhere else.
  std::uint64_t pending(
      std::memory_order order = std::memory_order_seq_cst) const {
    // consumed is owned by the caller (the consumer), produced trails it
    // never — the difference is the queue depth.
    return produced.load(order) - consumed.load(std::memory_order_relaxed);
  }

  /// Consumer: take one pulse if available.
  bool try_consume() {
    const std::uint64_t c = consumed.load(std::memory_order_relaxed);
    if (produced.load(std::memory_order_seq_cst) == c) return false;
    consumed.store(c + 1, std::memory_order_relaxed);
    return true;
  }
};

}  // namespace colex::coro
