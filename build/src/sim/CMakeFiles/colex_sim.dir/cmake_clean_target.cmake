file(REMOVE_RECURSE
  "libcolex_sim.a"
)
