// Generators for ring ID assignments, shared by tests, examples, and the
// benchmark harness.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace colex::util {

/// IDs 1..n in ring order.
inline std::vector<std::uint64_t> dense_ids(std::size_t n) {
  std::vector<std::uint64_t> ids(n);
  std::iota(ids.begin(), ids.end(), 1);
  return ids;
}

/// Deterministic Fisher-Yates shuffle of `ids` by `seed`.
inline std::vector<std::uint64_t> shuffled(std::vector<std::uint64_t> ids,
                                           std::uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  for (std::size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.below(i)]);
  }
  return ids;
}

/// `n` distinct IDs drawn uniformly from [1, max_id].
inline std::vector<std::uint64_t> sparse_ids(std::size_t n,
                                             std::uint64_t max_id,
                                             std::uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<std::uint64_t> ids;
  ids.reserve(n);
  while (ids.size() < n) {
    const std::uint64_t candidate = rng.in_range(1, max_id);
    if (std::find(ids.begin(), ids.end(), candidate) == ids.end()) {
      ids.push_back(candidate);
    }
  }
  return ids;
}

/// All 2^n port-flip assignments for an n-node ring.
inline std::vector<std::vector<bool>> all_flip_masks(std::size_t n) {
  std::vector<std::vector<bool>> masks;
  masks.reserve(std::size_t{1} << n);
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    std::vector<bool> flips(n);
    for (std::size_t v = 0; v < n; ++v) flips[v] = (mask >> v) & 1;
    masks.push_back(std::move(flips));
  }
  return masks;
}

/// Random port flips by seed.
inline std::vector<bool> random_flips(std::size_t n, std::uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<bool> flips(n);
  for (std::size_t v = 0; v < n; ++v) flips[v] = rng.bernoulli(0.5);
  return flips;
}

}  // namespace colex::util
