# Empty dependencies file for compose_compute.
# This may be replaced when dependencies are built.
