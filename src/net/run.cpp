#include "net/run.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <thread>

#include "util/contracts.hpp"

namespace colex::net {

namespace {

std::uint64_t pulse_bound(std::size_t n, std::uint64_t id_max,
                          rt::ThreadAlg alg) {
  switch (alg) {
    case rt::ThreadAlg::alg1: return n * id_max;
    case rt::ThreadAlg::alg2: return n * (2 * id_max + 1);
    case rt::ThreadAlg::alg3_doubled: return n * (4 * id_max - 1);
    case rt::ThreadAlg::alg3_improved: return n * (2 * id_max + 1);
  }
  return 0;
}

void publish_metrics(obs::Registry& metrics, const SocketRunResult& result,
                     const std::vector<std::uint64_t>& ids,
                     rt::ThreadAlg alg, const CoordinatorResult& cres) {
  rt::publish_phase_pulses(metrics, "net.pulses", result.outcomes,
                           "net.waits");
  metrics.counter("net.waits_entered").inc(result.wire.waits);
  metrics.counter("net.polls").inc(result.wire.polls);
  metrics.counter("net.flushes").inc(result.wire.flushes);
  metrics.counter("net.bytes_rx").inc(result.wire.bytes_rx);
  metrics.counter("net.bytes_tx").inc(result.wire.bytes_tx);
  metrics.counter("net.reports").inc(result.wire.reports);
  metrics.counter("net.probe_acks").inc(result.wire.probe_acks);
  metrics.counter("net.probe_rounds").inc(cres.probe_rounds);
  const std::uint64_t id_max = *std::max_element(ids.begin(), ids.end());
  const std::uint64_t bound = pulse_bound(ids.size(), id_max, alg);
  metrics.gauge("net.pulse_bound").set(static_cast<double>(bound));
  metrics.gauge("net.pulse_margin")
      .set(static_cast<double>(bound) - static_cast<double>(result.pulses));
}

}  // namespace

SocketRunResult run_on_sockets(const std::vector<std::uint64_t>& ids,
                               const std::vector<bool>& port_flips,
                               rt::ThreadAlg alg,
                               const SocketRunOptions& options) {
  COLEX_EXPECTS(!ids.empty());
  COLEX_EXPECTS(port_flips.empty() || port_flips.size() == ids.size());
  const std::uint32_t n = static_cast<std::uint32_t>(ids.size());
  SocketRunResult result;

  // Flight rings must all exist before any writer thread starts
  // (obs::FlightRecorder's setup-then-write contract).
  obs::FlightRing* coord_ring = nullptr;
  std::vector<obs::FlightRing*> node_rings(n, nullptr);
  if (options.flight != nullptr) {
    coord_ring = &options.flight->ring("net.coordinator");
    for (std::uint32_t v = 0; v < n; ++v) {
      node_rings[v] = &options.flight->ring("net.node." + std::to_string(v));
    }
  }

  Coordinator coordinator(CoordinatorOptions{n, options.timeout_ms, 0,
                                             coord_ring});
  if (!coordinator.ok()) {
    result.stall_dump = coordinator.init_error();
    return result;
  }

  std::vector<NodeResult> node_results(n);
  std::vector<std::thread> workers;
  workers.reserve(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    RingNodeConfig cfg;
    cfg.index = v;
    cfg.ring_size = n;
    cfg.id = ids[v];
    cfg.flip = !port_flips.empty() && port_flips[v];
    cfg.alg = alg;
    cfg.coordinator_port = coordinator.port();
    cfg.data_port =
        options.base_port == 0
            ? std::uint16_t{0}
            : static_cast<std::uint16_t>(options.base_port + v);
    cfg.timeout_ms = options.timeout_ms;
    cfg.flight = node_rings[v];
    workers.emplace_back(
        [&node_results, v, cfg] { node_results[v] = run_ring_node(cfg); });
  }
  CoordinatorResult cres = coordinator.run();
  for (std::thread& w : workers) w.join();

  result.completed = cres.completed;
  result.pulses = cres.total_sent;
  result.consumed = cres.total_consumed;
  result.probe_rounds = cres.probe_rounds;
  result.outcomes.reserve(n);
  std::string node_errors;
  for (std::uint32_t v = 0; v < n; ++v) {
    const NodeResult& nr = node_results[v];
    result.outcomes.push_back(nr.outcome);
    result.wire += nr.counters;
    if (!nr.ok) {
      result.completed = false;
      node_errors += "  " + nr.error + "\n";
    }
  }
  if (!result.completed) {
    result.stall_dump = cres.error.empty()
                            ? "socket run failed:\n" + node_errors
                            : cres.error + node_errors;
    if (options.flight != nullptr) {
      result.stall_dump += options.flight->render_tail(64);
    }
  }
  rt::tally_leaders(result);
  if (options.metrics != nullptr) {
    publish_metrics(*options.metrics, result, ids, alg, cres);
  }
  return result;
}

MultiProcResult run_multiprocess(const std::vector<std::uint64_t>& ids,
                                 const std::vector<bool>& port_flips,
                                 rt::ThreadAlg alg,
                                 const MultiProcOptions& options) {
  COLEX_EXPECTS(!ids.empty());
  COLEX_EXPECTS(port_flips.empty() || port_flips.size() == ids.size());
  const std::uint32_t n = static_cast<std::uint32_t>(ids.size());
  MultiProcResult result;

  Coordinator coordinator(
      CoordinatorOptions{n, options.timeout_ms, 0, nullptr});
  if (!coordinator.ok()) {
    result.stall_dump = coordinator.init_error();
    return result;
  }

  std::vector<pid_t> children;
  children.reserve(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: drop the inherited coordinator listener, become node v.
      coordinator.close_listener_in_child();
      RingNodeConfig cfg;
      cfg.index = v;
      cfg.ring_size = n;
      cfg.id = ids[v];
      cfg.flip = !port_flips.empty() && port_flips[v];
      cfg.alg = alg;
      cfg.coordinator_port = coordinator.port();
      cfg.data_port =
          options.base_port == 0
              ? std::uint16_t{0}
              : static_cast<std::uint16_t>(options.base_port + v);
      cfg.timeout_ms = options.timeout_ms;
      const NodeResult nr = run_ring_node(cfg);
      // _exit, not exit: no atexit handlers, no flushing shared state the
      // parent still owns.
      ::_exit(nr.ok ? 0 : 1);
    }
    if (pid < 0) {
      for (const pid_t child : children) ::kill(child, SIGKILL);
      for (const pid_t child : children) ::waitpid(child, nullptr, 0);
      result.stall_dump = "fork failed for node " + std::to_string(v);
      return result;
    }
    children.push_back(pid);
  }

  const CoordinatorResult cres = coordinator.run();

  result.exit_codes.assign(n, -1);
  for (std::uint32_t v = 0; v < n; ++v) {
    int status = 0;
    if (::waitpid(children[v], &status, 0) == children[v] &&
        WIFEXITED(status)) {
      result.exit_codes[v] = WEXITSTATUS(status);
    }
  }

  result.completed = cres.completed;
  result.pulses = cres.total_sent;
  result.consumed = cres.total_consumed;
  result.probe_rounds = cres.probe_rounds;
  for (const DecodedResult& dr : cres.results) {
    result.outcomes.push_back(dr.outcome);
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    if (result.exit_codes[v] != 0) result.completed = false;
  }
  if (!result.completed && result.stall_dump.empty()) {
    result.stall_dump = cres.error.empty()
                            ? "multi-process run: node exit codes not clean"
                            : cres.error;
  }
  rt::tally_leaders(result);
  return result;
}

}  // namespace colex::net
