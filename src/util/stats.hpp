// Summary statistics used by the benchmark harness.
#pragma once

#include <cstddef>
#include <vector>

namespace colex::util {

/// Online/offline summary of a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Computes a full summary of `samples`. Percentiles use the nearest-rank
/// method. Non-finite samples (NaN, ±inf) are dropped before aggregation;
/// an empty (or all-non-finite) sample yields an all-zero summary.
Summary summarize(std::vector<double> samples);

/// Nearest-rank percentile of a *sorted* sample; `q` in [0, 1].
double percentile_sorted(const std::vector<double>& sorted, double q);

}  // namespace colex::util
