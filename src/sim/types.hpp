// Basic vocabulary of the content-oblivious network model (paper §2).
#pragma once

#include <cstddef>
#include <cstdint>

namespace colex::sim {

using NodeId = std::size_t;

/// Each ring node communicates through two bidirectional ports, Port0 and
/// Port1 (paper §2, "Ring's orientation"). In an *oriented* ring, Port1 leads
/// to the clockwise neighbor; in a non-oriented ring the assignment is
/// arbitrary per node.
enum class Port : int { p0 = 0, p1 = 1 };

constexpr Port opposite(Port p) { return p == Port::p0 ? Port::p1 : Port::p0; }
constexpr int index(Port p) { return static_cast<int>(p); }
constexpr Port port_from_index(int i) { return i == 0 ? Port::p0 : Port::p1; }

/// A fully corrupted message: carries no content whatsoever (paper §2).
struct Pulse {};

/// Physical direction of a directed channel with respect to the underlying
/// cycle 0 -> 1 -> ... -> n-1 -> 0 used to build the ring. Nodes in
/// non-oriented rings cannot observe this; it exists for analysis,
/// scheduling, and ground-truth checks only.
enum class Direction { cw, ccw };

constexpr const char* to_string(Direction d) {
  return d == Direction::cw ? "cw" : "ccw";
}

}  // namespace colex::sim
