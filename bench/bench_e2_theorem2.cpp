// E2 — Proposition 15 vs Theorem 2: Algorithm 3 on non-oriented rings
// elects the max-ID node and consistently orients the ring, with
// n(4*IDmax-1) pulses under the doubled virtual-ID scheme and n(2*IDmax+1)
// under the improved scheme; it stabilizes quiescently but never terminates.
#include <iostream>

#include "bench_common.hpp"
#include "co/election.hpp"
#include "sim/scheduler.hpp"
#include "util/ids.hpp"
#include "util/table.hpp"

int main() {
  using namespace colex;
  bench::banner(
      "E2  Theorem 2 / Proposition 15: non-oriented rings "
      "(bench_e2_theorem2)",
      "doubled scheme: n(4*IDmax-1) pulses; improved scheme: n(2*IDmax+1); "
      "single leader + consistent orientation on every port scramble");
  bench::WallTimer total;
  bench::JsonReport report("E2", "Theorem 2 / Prop. 15 non-oriented rings");

  util::Table table({"n", "IDmax", "scheme", "scrambles", "pulses",
                     "formula", "exact", "oriented", "stabilized"});
  bool all_ok = true;

  auto run_config = [&](std::size_t n, const std::vector<std::uint64_t>& ids,
                        co::IdScheme scheme,
                        const std::vector<std::vector<bool>>& scrambles) {
    std::uint64_t id_max = 0;
    for (const auto id : ids) id_max = std::max(id_max, id);
    const std::uint64_t formula = scheme == co::IdScheme::doubled
                                      ? co::prop15_pulses(n, id_max)
                                      : co::theorem1_pulses(n, id_max);
    bool exact = true, oriented = true, stabilized = true;
    std::uint64_t measured = 0;
    co::Alg3NonOriented::Options options;
    options.scheme = scheme;
    for (const auto& flips : scrambles) {
      sim::RandomScheduler sched(n + flips.size());
      const auto result =
          co::elect_and_orient(ids, flips, options, sched);
      measured = result.pulses;
      exact = exact && result.pulses == formula &&
              result.valid_election() && ids[*result.leader] == id_max;
      oriented = oriented && result.orientation_consistent &&
                 result.orientation_matches_leader_port1;
      stabilized = stabilized && result.quiescent && !result.all_terminated;
    }
    all_ok = all_ok && exact && oriented && stabilized;
    table.add_row(
        {util::Table::num(static_cast<std::uint64_t>(n)),
         util::Table::num(id_max), co::to_string(scheme),
         util::Table::num(static_cast<std::uint64_t>(scrambles.size())),
         util::Table::num(measured), util::Table::num(formula),
         exact ? "yes" : "NO", oriented ? "yes" : "NO",
         stabilized ? "yes" : "NO"});
  };

  // Exhaustive port scrambles for small rings (Figure 1's point: all port
  // assignments must work).
  for (const std::size_t n : {1u, 2u, 4u, 6u, 8u}) {
    const auto ids = util::shuffled(util::dense_ids(n), 3 * n + 1);
    const auto scrambles = util::all_flip_masks(n);
    run_config(n, ids, co::IdScheme::doubled, scrambles);
    run_config(n, ids, co::IdScheme::improved, scrambles);
  }
  // Random scrambles for larger rings.
  for (const std::size_t n : {16u, 32u, 64u, 128u}) {
    const auto ids = util::sparse_ids(n, 8 * n, n);
    std::vector<std::vector<bool>> scrambles;
    for (std::uint64_t s = 1; s <= 8; ++s) {
      scrambles.push_back(util::random_flips(n, s));
    }
    run_config(n, ids, co::IdScheme::doubled, scrambles);
    run_config(n, ids, co::IdScheme::improved, scrambles);
  }
  table.print(std::cout);
  report.root().set("all_ok", all_ok);
  report.finish(total.seconds());

  bench::verdict(all_ok,
                 "both virtual-ID schemes meet their exact pulse formulas "
                 "and orient every scramble consistently");
  return all_ok ? 0 : 1;
}
