// Bit-vector payload helpers for the content-oblivious token bus.
#pragma once

#include <cstdint>
#include <vector>

namespace colex::colib {

using Bits = std::vector<bool>;

/// Minimal-width LSB-first encoding; 0 encodes as the empty vector (frames
/// are length-delimited, so the width is recoverable).
inline Bits encode_u64(std::uint64_t value) {
  Bits out;
  while (value != 0) {
    out.push_back((value & 1) != 0);
    value >>= 1;
  }
  return out;
}

inline std::uint64_t decode_u64(const Bits& bits, std::size_t from = 0,
                                std::size_t count = ~std::size_t{0}) {
  std::uint64_t value = 0;
  std::size_t limit = bits.size() - from;
  if (count < limit) limit = count;
  for (std::size_t i = limit; i-- > 0;) {
    value = (value << 1) | (bits[from + i] ? 1u : 0u);
  }
  return value;
}

/// Appends `more` to `bits`.
inline void append(Bits& bits, const Bits& more) {
  bits.insert(bits.end(), more.begin(), more.end());
}

}  // namespace colex::colib
