# Empty dependencies file for test_automaton_host.
# This may be replaced when dependencies are built.
