// Whole-run facades for the socket backend: the same election the
// simulator, ThreadRing and the coroutine executor run, but over real TCP
// connections — in-process (one thread per node, ephemeral ports) or
// multi-process (one forked process per node, the harness for colex-ring
// and the E18 bench). Both return the substrate-agnostic
// rt::TransportRunResult shape, so the conformance suite compares all four
// substrates field by field.
#pragma once

#include <cstdint>
#include <vector>

#include "net/coordinator.hpp"
#include "net/node.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "runtime/blocking_algs.hpp"

namespace colex::net {

struct SocketRunOptions {
  std::uint64_t timeout_ms = 30'000;
  /// 0: kernel-assigned ephemeral data ports (the default — collision-free
  /// for parallel test runs). Non-zero: node v listens on base_port + v,
  /// the deterministic assignment colex-ring advertises.
  std::uint16_t base_port = 0;
  /// Optional: receives the per-phase pulse/wait series, event-loop wire
  /// counters and the Theorem 1 margin after the run (post-join publishing,
  /// per the registry's single-writer contract).
  obs::Registry* metrics = nullptr;
  /// Optional: one ring per node plus one for the coordinator, recording
  /// formation/report/probe/stop milestones (in-process runs only — a
  /// forked node cannot share the parent's recorder).
  obs::FlightRecorder* flight = nullptr;
};

/// Socket-substrate run result: the cross-substrate core plus the wire
/// telemetry only this backend has.
struct SocketRunResult : rt::TransportRunResult {
  std::uint64_t consumed = 0;      ///< Σ consumed (== pulses at quiescence)
  std::uint64_t probe_rounds = 0;  ///< quiescence confirmation rounds
  EndpointCounters wire;           ///< summed per-node event-loop counters
};

/// Runs `alg` on a real-socket ring with one thread per node, all on
/// 127.0.0.1. Same signature shape as run_on_threads / run_on_coro.
SocketRunResult run_on_sockets(const std::vector<std::uint64_t>& ids,
                               const std::vector<bool>& port_flips,
                               rt::ThreadAlg alg,
                               const SocketRunOptions& options = {});

struct MultiProcOptions {
  std::uint64_t timeout_ms = 30'000;
  std::uint16_t base_port = 0;  ///< as SocketRunOptions::base_port
};

/// Multi-process run result. Outcomes are reassembled from the nodes'
/// RESULT wire frames — the coordinator is the only surviving observer.
struct MultiProcResult : rt::TransportRunResult {
  std::uint64_t consumed = 0;
  std::uint64_t probe_rounds = 0;
  std::vector<int> exit_codes;  ///< per node, index order
};

/// Forks one process per node (the coordinator stays in the caller), runs
/// the election, reaps the children. Call only while the process is still
/// single-threaded — fork() and threads do not mix.
MultiProcResult run_multiprocess(const std::vector<std::uint64_t>& ids,
                                 const std::vector<bool>& port_flips,
                                 rt::ThreadAlg alg,
                                 const MultiProcOptions& options = {});

}  // namespace colex::net
