#include "co/sampling.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace colex::co {

SampledId sample_id(util::Xoshiro256StarStar& rng, double c) {
  COLEX_EXPECTS(c > 0.0);
  const double p = std::exp2(-1.0 / (c + 2.0));  // line 1
  SampledId s;
  s.bit_count = rng.geometric_trials(1.0 - p);  // line 2
  if (s.bit_count > 62) s.bit_count = 62;
  // Line 3: uniform over {0,1}^BitCount, shifted into positive range.
  const std::uint64_t space = 1ULL << s.bit_count;
  s.id = rng.below(space) + 1;
  return s;
}

std::vector<SampledId> sample_ids(std::size_t n, double c,
                                  std::uint64_t seed) {
  std::vector<SampledId> out;
  out.reserve(n);
  util::SplitMix64 seeder(seed);
  for (std::size_t v = 0; v < n; ++v) {
    util::Xoshiro256StarStar rng(seeder.next());
    out.push_back(sample_id(rng, c));
  }
  return out;
}

bool unique_max(const std::vector<SampledId>& ids) {
  COLEX_EXPECTS(!ids.empty());
  std::uint64_t best = 0;
  std::size_t count = 0;
  for (const auto& s : ids) {
    if (s.id > best) {
      best = s.id;
      count = 1;
    } else if (s.id == best) {
      ++count;
    }
  }
  return count == 1;
}

}  // namespace colex::co
