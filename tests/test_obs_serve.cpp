// The live telemetry plane: Prometheus text encoder, snapshot reload,
// the /metrics HTTP server, the flight recorder, and the per-phase pulse
// series on both blocking runtimes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "coro/run.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/serve.hpp"
#include "runtime/blocking_algs.hpp"
#include "util/contracts.hpp"

namespace colex::obs {
namespace {

// --- Prometheus text encoder ---------------------------------------------

TEST(Prometheus, CountersGainPrefixAndTotalSuffix) {
  Registry reg;
  reg.counter("elections").inc(3);
  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE colex_elections_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("colex_elections_total 3\n"), std::string::npos);
}

TEST(Prometheus, LabeledNamesSplitIntoLabelSets) {
  Registry reg;
  reg.counter(labeled("pulses", "phase", "probe")).inc(7);
  reg.counter(labeled("pulses", "phase", "elected")).inc(2);
  const std::string text = to_prometheus(reg);
  // One family, one TYPE line, contiguous samples.
  EXPECT_NE(text.find("# TYPE colex_pulses_total counter\n"
                      "colex_pulses_total{phase=\"probe\"} 7\n"
                      "colex_pulses_total{phase=\"elected\"} 2\n"),
            std::string::npos);
}

TEST(Prometheus, SanitizesInvalidNameCharacters) {
  Registry reg;
  reg.counter("svc.elections.started").inc(1);
  reg.gauge("rt.wait-ms").set(2.0);
  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("colex_svc_elections_started_total 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("colex_rt_wait_ms 2\n"), std::string::npos);
}

TEST(Prometheus, EscapesLabelValues) {
  Registry reg;
  reg.counter(labeled("odd", "k", "a\"b\\c\nd")).inc(1);
  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("colex_odd_total{k=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(Prometheus, HistogramRendersCumulativeBuckets) {
  Registry reg;
  Histogram& h = reg.histogram("lat", {1.0, 10.0});
  h.record(0.5);
  h.record(1.0);   // inclusive edge -> le="1"
  h.record(5.0);
  h.record(100.0); // overflow -> only +Inf
  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE colex_lat histogram\n"), std::string::npos);
  EXPECT_NE(text.find("colex_lat_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("colex_lat_bucket{le=\"10\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("colex_lat_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("colex_lat_sum 106.5\n"), std::string::npos);
  EXPECT_NE(text.find("colex_lat_count 4\n"), std::string::npos);
}

TEST(Prometheus, GaugeTypeLine) {
  Registry reg;
  reg.gauge("uptime").set(1.5);
  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE colex_uptime gauge\ncolex_uptime 1.5\n"),
            std::string::npos);
}

// --- snapshot reload (the recorded view) ----------------------------------

TEST(SnapshotReload, RoundTripsRendersByteIdentically) {
  Registry reg;
  reg.counter("elections").inc(41);
  reg.counter(labeled("pulses", "phase", "probe")).inc(9);
  reg.gauge("svc.uptime_seconds").set(12.25);
  Histogram& h = reg.histogram("svc.election_ms", {0.5, 2.5});
  h.record(0.1);
  h.record(3.0);
  const Registry reloaded = registry_from_json(reg.to_json());
  // One encoder, two views: identical registries render byte-identically.
  EXPECT_EQ(to_prometheus(reg), to_prometheus(reloaded));
  EXPECT_EQ(reloaded.to_json(), reg.to_json());
}

TEST(SnapshotReload, UnescapesNames) {
  Registry reg;
  reg.counter("a\"b\\c").inc(5);
  const Registry reloaded = registry_from_json(reg.to_json());
  EXPECT_EQ(reloaded.to_json(), reg.to_json());
}

TEST(SnapshotReload, RejectsMalformedInput) {
  EXPECT_THROW(registry_from_json("{\"counters\":"),
               util::ContractViolation);
  EXPECT_THROW(registry_from_json("not json"), util::ContractViolation);
}

// --- the HTTP endpoint ----------------------------------------------------

TEST(MetricsServer, ServesMetricsHealthzAndFlight) {
  Registry reg;
  reg.counter("elections").inc(17);
  MetricsServer::Options opts;
  opts.port = 0;  // ephemeral
  opts.metrics = [&reg] { return reg; };
  opts.flight = [] { return std::string("flight tail\n"); };
  MetricsServer server(std::move(opts));
  ASSERT_TRUE(server.start());
  ASSERT_NE(server.port(), 0);

  int status = 0;
  std::string body;
  ASSERT_TRUE(http_get("127.0.0.1", server.port(), "/metrics", status, body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("colex_elections_total 17\n"), std::string::npos);

  ASSERT_TRUE(http_get("localhost", server.port(), "/healthz", status, body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok\n");

  ASSERT_TRUE(
      http_get("127.0.0.1", server.port(), "/debug/flight", status, body));
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "flight tail\n");

  ASSERT_TRUE(http_get("127.0.0.1", server.port(), "/nope", status, body));
  EXPECT_EQ(status, 404);

  // Scrapes see registry updates made between requests.
  reg.counter("elections").inc(3);
  ASSERT_TRUE(http_get("127.0.0.1", server.port(), "/metrics", status, body));
  EXPECT_NE(body.find("colex_elections_total 20\n"), std::string::npos);

  server.stop();
  server.stop();  // idempotent
  EXPECT_FALSE(server.running());
}

TEST(MetricsServer, FlightEndpoint404sWhenUnwired) {
  Registry reg;
  MetricsServer::Options opts;
  opts.metrics = [&reg] { return reg; };
  MetricsServer server(std::move(opts));
  ASSERT_TRUE(server.start());
  int status = 0;
  std::string body;
  ASSERT_TRUE(
      http_get("127.0.0.1", server.port(), "/debug/flight", status, body));
  EXPECT_EQ(status, 404);
}

// --- flight recorder ------------------------------------------------------

TEST(FlightRing, KeepsTheMostRecentEventsAfterWrap) {
  FlightRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) ring.record("event", i);
  EXPECT_EQ(ring.recorded(), 10u);
  const std::vector<FlightEvent> tail = ring.snapshot();
  ASSERT_EQ(tail.size(), 4u);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].seq, 6u + i);  // survivors are the last capacity
    EXPECT_EQ(tail[i].a, 6u + i);
    EXPECT_STREQ(tail[i].what, "event");
  }
}

TEST(FlightRing, SnapshotUnderConcurrentWriterStaysConsistent) {
  FlightRing ring(8);
  std::atomic<bool> stop{false};
  std::thread writer([&ring, &stop] {
    std::uint64_t i = 0;
    while (!stop.load()) {
      ring.record("w", i, i * 2);
      ++i;
    }
  });
  // Every snapshotted event must be internally consistent (b == 2a) and in
  // ascending seq order — torn slots are skipped, never surfaced.
  for (int round = 0; round < 200; ++round) {
    const std::vector<FlightEvent> snap = ring.snapshot();
    for (std::size_t i = 0; i < snap.size(); ++i) {
      EXPECT_EQ(snap[i].b, snap[i].a * 2);
      if (i > 0) {
        EXPECT_LT(snap[i - 1].seq, snap[i].seq);
      }
    }
  }
  stop.store(true);
  writer.join();
}

TEST(FlightRecorder, MergesRingsWrittenByJoinedThreads) {
  FlightRecorder rec(16);
  // Rings created before the writers start (the setup contract).
  FlightRing& r0 = rec.ring("worker.0");
  FlightRing& r1 = rec.ring("worker.1");
  EXPECT_EQ(rec.ring_count(), 2u);
  EXPECT_EQ(&rec.ring("worker.0"), &r0);  // create-or-get is stable
  std::thread t0([&r0] {
    for (std::uint64_t i = 0; i < 5; ++i) r0.record("zero", i);
  });
  std::thread t1([&r1] {
    for (std::uint64_t i = 0; i < 5; ++i) r1.record("one", i);
  });
  t0.join();
  t1.join();
  const auto merged = rec.merged_tail(0);
  ASSERT_EQ(merged.size(), 10u);
  // Interleaved by timestamp: monotone non-decreasing across the merge.
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].second.t_ns, merged[i].second.t_ns);
  }
  const std::string text = rec.render_tail(3);
  EXPECT_NE(text.find("flight recorder tail (3 events, 2 rings):"),
            std::string::npos);
}

TEST(FlightRecorder, MergedTailCapsToTheMostRecent) {
  FlightRecorder rec(8);
  FlightRing& ring = rec.ring("only");
  for (std::uint64_t i = 0; i < 6; ++i) ring.record("e", i);
  const auto tail = rec.merged_tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].second.a, 4u);
  EXPECT_EQ(tail[1].second.a, 5u);
}

// --- per-phase pulse series on the runtimes -------------------------------

std::uint64_t phase_series_sum(obs::Registry& reg, const std::string& family) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    sum += reg.counter(labeled(family, "phase", phase_name(i))).value();
  }
  return sum;
}

TEST(PhaseSeries, ThreadRingPulsesSumToFabricTotal) {
  const std::vector<std::uint64_t> ids = {4, 2, 7, 1, 5};
  Registry reg;
  const rt::ThreadRunResult r = rt::run_on_threads(
      ids, {}, rt::ThreadAlg::alg2, /*timeout_ms=*/30'000, nullptr, &reg);
  ASSERT_TRUE(r.completed);
  // Clean fabric: every pulse was sent by a node in some phase.
  EXPECT_EQ(phase_series_sum(reg, "rt.pulses"), r.pulses);
  // Algorithm 2 completes within the exact Theorem 1 budget, so the margin
  // gauge is non-negative and the bound gauge carries n(2*IDmax+1).
  EXPECT_EQ(reg.gauge("rt.pulse_bound").value(),
            static_cast<double>(ids.size() * (2 * 7 + 1)));
  EXPECT_GE(reg.gauge("rt.pulse_margin").value(), 0.0);
  // The termination pulse is attributed to the initiator's wait phase.
  EXPECT_GT(reg.counter(labeled("rt.pulses", "phase", "initiated_wait"))
                .value(),
            0u);
}

TEST(PhaseSeries, CoroPulsesSumToFabricTotal) {
  const std::vector<std::uint64_t> ids = {3, 9, 6, 2};
  Registry reg;
  coro::CoroRunOptions opts;
  opts.workers = 2;
  opts.metrics = &reg;
  const coro::CoroRunResult r =
      coro::run_on_coro(ids, {}, rt::ThreadAlg::alg2, opts);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(phase_series_sum(reg, "coro.pulses"), r.pulses);
  EXPECT_EQ(reg.gauge("coro.pulse_bound").value(),
            static_cast<double>(ids.size() * (2 * 9 + 1)));
  EXPECT_GE(reg.gauge("coro.pulse_margin").value(), 0.0);
  // Every node ended in the done phase (Algorithm 2 terminates), and the
  // distribution gauges say so.
  EXPECT_EQ(reg.gauge(labeled("coro.phase_nodes", "phase", "done")).value(),
            static_cast<double>(ids.size()));
}

TEST(PhaseSeries, OutcomesCarryAlwaysOnPhaseTallies) {
  // No registry attached: the per-outcome arrays still fill (plain
  // coroutine locals), so zero-overhead-when-off loses no information.
  const std::vector<std::uint64_t> ids = {2, 5, 3};
  const rt::ThreadRunResult r = rt::run_on_threads(
      ids, {}, rt::ThreadAlg::alg2, /*timeout_ms=*/30'000, nullptr, nullptr);
  ASSERT_TRUE(r.completed);
  std::uint64_t total = 0;
  for (const auto& out : r.outcomes) {
    total += std::accumulate(out.phase_sends.begin(), out.phase_sends.end(),
                             std::uint64_t{0});
  }
  EXPECT_EQ(total, r.pulses);
}

}  // namespace
}  // namespace colex::obs
