file(REMOVE_RECURSE
  "CMakeFiles/test_integration_deep.dir/test_integration_deep.cpp.o"
  "CMakeFiles/test_integration_deep.dir/test_integration_deep.cpp.o.d"
  "test_integration_deep"
  "test_integration_deep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_deep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
