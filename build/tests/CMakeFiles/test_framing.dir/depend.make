# Empty dependencies file for test_framing.
# This may be replaced when dependencies are built.
