file(REMOVE_RECURSE
  "CMakeFiles/test_composition_stress.dir/test_composition_stress.cpp.o"
  "CMakeFiles/test_composition_stress.dir/test_composition_stress.cpp.o.d"
  "test_composition_stress"
  "test_composition_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_composition_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
