// Tests for the generic thread host: the *same automaton objects* the
// discrete simulator runs — event-driven Algorithm 2, the replication
// adapter, and the full Corollary 5 composition — executing on real OS
// threads with identical results.
#include <gtest/gtest.h>

#include <memory>

#include "co/alg2.hpp"
#include "co/alg3.hpp"
#include "co/election.hpp"
#include "co/replicated.hpp"
#include "colib/apps.hpp"
#include "colib/composed.hpp"
#include "helpers.hpp"
#include "runtime/automaton_host.hpp"

namespace colex::rt {
namespace {

TEST(AutomatonHost, Alg2MatchesSimulatorExactly) {
  const std::vector<std::uint64_t> ids{6, 11, 3, 9, 1, 7};
  const auto result = run_automata_on_threads(
      ids.size(), {},
      [&ids](sim::NodeId v) {
        return std::make_unique<co::Alg2Terminating>(ids[v]);
      });
  ASSERT_TRUE(result.completed);
  ASSERT_TRUE(result.all_terminated);
  EXPECT_EQ(result.pulses, co::theorem1_pulses(ids.size(), 11));
  std::size_t leaders = 0;
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    const auto& alg =
        dynamic_cast<const co::Alg2Terminating&>(*result.automata[v]);
    if (alg.role() == co::Role::leader) {
      ++leaders;
      EXPECT_EQ(v, 1u);
    }
    EXPECT_EQ(alg.counters().rho_cw, 11u);
    EXPECT_EQ(alg.counters().rho_ccw, 12u);
  }
  EXPECT_EQ(leaders, 1u);
}

TEST(AutomatonHost, Alg3OnScrambledRing) {
  const std::vector<std::uint64_t> ids{6, 11, 3, 9};
  const std::vector<bool> flips{true, false, true, true};
  const auto result = run_automata_on_threads(
      ids.size(), flips, [&ids](sim::NodeId v) {
        co::Alg3NonOriented::Options options;
        return std::make_unique<co::Alg3NonOriented>(ids[v], options);
      });
  ASSERT_TRUE(result.completed);
  EXPECT_FALSE(result.all_terminated);  // stabilizing: harness stopped it
  EXPECT_EQ(result.pulses, co::theorem1_pulses(4, 11));
  std::size_t leaders = 0;
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    const auto& alg =
        dynamic_cast<const co::Alg3NonOriented&>(*result.automata[v]);
    if (alg.role() == co::Role::leader) {
      ++leaders;
      EXPECT_EQ(v, 1u);
    }
  }
  EXPECT_EQ(leaders, 1u);
}

TEST(AutomatonHost, ReplicatedAdapterOnThreads) {
  const std::vector<std::uint64_t> ids{4, 9, 2, 6};
  const unsigned r = 2;
  const auto result = run_automata_on_threads(
      ids.size(), {}, [&ids, r](sim::NodeId v) {
        return std::make_unique<co::ReplicatedAdapter>(
            std::make_unique<co::Alg2Terminating>(ids[v]), r);
      });
  ASSERT_TRUE(result.completed);
  ASSERT_TRUE(result.all_terminated);
  EXPECT_EQ(result.pulses, (r + 1) * co::theorem1_pulses(4, 9));
  std::size_t leaders = 0;
  for (const auto& automaton : result.automata) {
    const auto& adapter =
        dynamic_cast<const co::ReplicatedAdapter&>(*automaton);
    if (adapter.inner_as<co::Alg2Terminating>().role() == co::Role::leader) {
      ++leaders;
    }
  }
  EXPECT_EQ(leaders, 1u);
}

TEST(AutomatonHost, Corollary5CompositionOnRealThreads) {
  // The full stack — Algorithm 2, then the token-bus survey, then a
  // gather-all computation — on genuine asynchrony.
  const std::vector<std::uint64_t> ids{6, 11, 3, 9, 1};
  const std::vector<std::uint64_t> inputs{10, 20, 30, 40, 50};
  const auto result = run_automata_on_threads(
      ids.size(), {}, [&](sim::NodeId v) {
        return std::make_unique<colib::ComposedNode>(
            ids[v], std::make_unique<colib::GatherAllApp>(inputs[v]));
      });
  ASSERT_TRUE(result.completed);
  ASSERT_TRUE(result.all_terminated);
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    const auto& composed =
        dynamic_cast<const colib::ComposedNode&>(*result.automata[v]);
    ASSERT_NE(composed.bus(), nullptr) << v;
    const auto& app =
        dynamic_cast<const colib::GatherAllApp&>(composed.bus()->app());
    ASSERT_TRUE(app.complete()) << v;
    EXPECT_EQ(app.sum(), 150u);
    EXPECT_EQ(app.max_value(), 50u);
    EXPECT_EQ(app.ring_size(), ids.size());
    // Bus offsets are relative to the leader (node 1, ID 11).
    EXPECT_EQ(app.offset(), (v + ids.size() - 1) % ids.size());
  }
}

TEST(AutomatonHost, RepeatedCompositionRunsStayExact) {
  const std::vector<std::uint64_t> ids{4, 9, 2};
  std::uint64_t reference = 0;
  for (int rep = 0; rep < 6; ++rep) {
    const auto result = run_automata_on_threads(
        ids.size(), {}, [&ids](sim::NodeId v) {
          return std::make_unique<colib::ComposedNode>(
              ids[v], std::make_unique<colib::GatherAllApp>(v + 1));
        });
    ASSERT_TRUE(result.all_terminated) << rep;
    if (rep == 0) {
      reference = result.pulses;
    } else {
      // The bus is fully serialized, so even the *total* pulse count is
      // identical across thread schedules.
      EXPECT_EQ(result.pulses, reference) << rep;
    }
  }
}

TEST(AutomatonHost, SingleNode) {
  const auto result = run_automata_on_threads(1, {}, [](sim::NodeId) {
    return std::make_unique<co::Alg2Terminating>(7);
  });
  ASSERT_TRUE(result.all_terminated);
  EXPECT_EQ(result.pulses, 15u);
}

TEST(AutomatonHost, RejectsNullFactoryResult) {
  EXPECT_THROW(run_automata_on_threads(
                   2, {}, [](sim::NodeId) {
                     return std::unique_ptr<sim::PulseAutomaton>{};
                   }),
               util::ContractViolation);
}


/// Relays every pulse forever: the fabric never goes quiescent, so the
/// harness monitor must give up via its timeout.
class EternalRelay final : public sim::PulseAutomaton {
 public:
  void start(sim::PulseContext& ctx) override { ctx.send(sim::Port::p1); }
  void react(sim::PulseContext& ctx) override {
    for (const sim::Port p : {sim::Port::p0, sim::Port::p1}) {
      while (ctx.recv_pulse(p)) ctx.send(sim::opposite(p));
    }
  }
  std::unique_ptr<sim::PulseAutomaton> clone() const override {
    return std::make_unique<EternalRelay>(*this);
  }
};

TEST(AutomatonHost, TimeoutOnNonQuiescentProtocol) {
  const auto result = run_automata_on_threads(
      2, {}, [](sim::NodeId) { return std::make_unique<EternalRelay>(); },
      /*timeout_ms=*/300);
  EXPECT_FALSE(result.completed);  // timed out, not quiescent
  EXPECT_FALSE(result.all_terminated);
  EXPECT_GT(result.pulses, 2u);  // it really was circulating
}

}  // namespace
}  // namespace colex::rt
