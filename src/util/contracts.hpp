// Contract-check macros in the style of the C++ Core Guidelines' Expects/Ensures
// (I.6/I.8). Violations throw so that tests can assert on them; they are active
// in all build types because every use guards a model invariant, not a hot path.
#pragma once

#include <stdexcept>
#include <string>

namespace colex::util {

/// Thrown when a precondition, postcondition, or internal invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}

}  // namespace colex::util

#define COLEX_EXPECTS(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::colex::util::contract_fail("precondition", #cond, __FILE__,          \
                                   __LINE__);                                \
  } while (false)

#define COLEX_ENSURES(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::colex::util::contract_fail("postcondition", #cond, __FILE__,         \
                                   __LINE__);                                \
  } while (false)

#define COLEX_ASSERT(cond)                                                   \
  do {                                                                       \
    if (!(cond))                                                             \
      ::colex::util::contract_fail("invariant", #cond, __FILE__, __LINE__);  \
  } while (false)
