#include "net/coordinator.hpp"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace colex::net {

namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + ::strerror(errno);
}

/// One node's control connection as the coordinator sees it.
struct Conn {
  Fd fd;
  CtlParser parser;
  std::int64_t index = -1;  ///< node index, once the JOIN arrives
  std::uint16_t data_port = 0;
  bool ready = false;
  // Latest REPORT.
  bool have_report = false;
  std::uint64_t state = kStateIdle;
  std::uint64_t sent = 0;
  std::uint64_t consumed = 0;
  // Ack for the probe round in flight.
  bool have_ack = false;
  std::uint64_t ack_state = kStateIdle;
  std::uint64_t ack_sent = 0;
  std::uint64_t ack_consumed = 0;
  bool have_result = false;
  DecodedResult result;
  bool eof = false;
  std::string node_error;  ///< from an ERR frame
};

}  // namespace

Coordinator::Coordinator(const CoordinatorOptions& options)
    : options_(options) {
  listener_ = listen_on(options.port, &port_, &init_error_);
  if (!listener_.valid() && init_error_.empty()) {
    init_error_ = "coordinator: listen failed";
  }
}

CoordinatorResult Coordinator::run() {
  CoordinatorResult res;
  const std::uint32_t n = options_.ring_size;
  if (!ok()) {
    res.error = init_error_;
    return res;
  }
  if (n == 0) {
    res.error = "coordinator: ring_size is zero";
    return res;
  }
  const Deadline deadline = Deadline::in_ms(options_.timeout_ms);
  obs::FlightRing* flight = options_.flight;
  std::string err;
  set_nonblocking(listener_.get(), &err);

  std::vector<Conn> conns;  // accept order
  std::vector<std::int64_t> by_index(n, -1);  // node index -> conns slot

  auto conn_name = [&](std::size_t c) {
    return conns[c].index >= 0 ? "node " + std::to_string(conns[c].index)
                               : "conn " + std::to_string(c);
  };

  // Every abort carries a per-node post-mortem (the run's stall dump) and
  // broadcasts a best-effort STOP so forked node processes exit on their
  // own instead of burning their whole watchdog budget.
  auto post_mortem = [&](const std::string& cause) {
    std::string s = "coordinator: " + cause + "\n";
    for (std::uint32_t v = 0; v < n; ++v) {
      s += "  node " + std::to_string(v) + ": ";
      if (by_index[v] < 0) {
        s += "never joined\n";
        continue;
      }
      const Conn& c = conns[static_cast<std::size_t>(by_index[v])];
      if (c.have_report) {
        s += std::string("state=") + (c.state == kStateDone ? "done" : "idle") +
             " sent=" + std::to_string(c.sent) +
             " consumed=" + std::to_string(c.consumed);
      } else {
        s += "no report";
      }
      if (c.eof) s += " [EOF]";
      if (!c.node_error.empty()) s += " err: " + c.node_error;
      s += "\n";
    }
    return s;
  };

  auto broadcast = [&](const std::vector<unsigned char>& frame,
                       std::string* berr) {
    for (Conn& c : conns) {
      if (!c.fd.valid() || c.eof) continue;
      if (!send_all(c.fd.get(), frame.data(), frame.size(), deadline, berr)) {
        return false;
      }
    }
    return true;
  };

  auto abort_run = [&](const std::string& cause) {
    res.error = post_mortem(cause);
    if (flight != nullptr) flight->record("abort");
    std::string ignored;
    broadcast(encode_ctl(Ctl::stop, {}), &ignored);
    return res;
  };

  // One poll pass: accepts pending connections (while `accepting`) and
  // drains every readable control connection through its parser into
  // `msgs` tagged with the conns slot. EOFs are flagged, not fatal here —
  // each phase decides what an EOF means.
  auto pump = [&](bool accepting,
                  std::vector<std::pair<std::size_t, CtlMsg>>* msgs,
                  std::string* perr) {
    std::vector<pollfd> pfds;
    std::vector<std::ptrdiff_t> who;
    if (accepting && listener_.valid()) {
      pfds.push_back(pollfd{listener_.get(), POLLIN, 0});
      who.push_back(-1);
    }
    for (std::size_t c = 0; c < conns.size(); ++c) {
      if (conns[c].fd.valid() && !conns[c].eof) {
        pfds.push_back(pollfd{conns[c].fd.get(), POLLIN, 0});
        who.push_back(static_cast<std::ptrdiff_t>(c));
      }
    }
    if (pfds.empty()) {
      ::poll(nullptr, 0, deadline.remaining_ms(10));
      return true;
    }
    const int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                          deadline.remaining_ms());
    if (rc < 0 && errno != EINTR) {
      *perr = errno_string("poll(coordinator)");
      return false;
    }
    if (rc <= 0) return true;
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (who[i] < 0) {
        for (;;) {
          const int fd = ::accept(listener_.get(), nullptr, nullptr);
          if (fd < 0) break;  // EAGAIN and friends: drained
          Conn c;
          c.fd = Fd(fd);
          set_nonblocking(fd, perr);
          set_nodelay(fd);
          conns.push_back(std::move(c));
        }
        continue;
      }
      Conn& c = conns[static_cast<std::size_t>(who[i])];
      unsigned char buf[512];
      for (;;) {
        const ssize_t r = ::read(c.fd.get(), buf, sizeof(buf));
        if (r > 0) {
          std::vector<CtlMsg> out;
          if (!c.parser.feed(buf, static_cast<std::size_t>(r), out)) {
            *perr = conn_name(static_cast<std::size_t>(who[i])) + ": " +
                    c.parser.error();
            return false;
          }
          for (CtlMsg& m : out) {
            msgs->emplace_back(static_cast<std::size_t>(who[i]),
                               std::move(m));
          }
          continue;
        }
        if (r == 0) {
          c.eof = true;
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        *perr = errno_string("read(node conn)");
        return false;
      }
    }
    return true;
  };

  // --- Formation: JOINs --------------------------------------------------
  std::uint32_t joined = 0;
  while (joined < n) {
    if (deadline.expired()) return abort_run("deadline waiting for JOINs");
    std::vector<std::pair<std::size_t, CtlMsg>> msgs;
    if (!pump(true, &msgs, &err)) return abort_run(err);
    for (auto& [ci, m] : msgs) {
      if (m.type == Ctl::err) {
        conns[ci].node_error = m.text;
        return abort_run(conn_name(ci) + " failed during formation: " +
                         m.text);
      }
      if (m.type != Ctl::join) {
        return abort_run(conn_name(ci) + ": expected JOIN, got frame type " +
                         std::to_string(static_cast<int>(m.type)));
      }
      const std::uint64_t idx = m.words[0];
      if (idx >= n || m.words[1] > 0xffff) {
        return abort_run("JOIN with invalid index/port from " +
                         conn_name(ci));
      }
      if (by_index[static_cast<std::size_t>(idx)] >= 0) {
        return abort_run("duplicate JOIN for node " + std::to_string(idx));
      }
      conns[ci].index = static_cast<std::int64_t>(idx);
      conns[ci].data_port = static_cast<std::uint16_t>(m.words[1]);
      by_index[static_cast<std::size_t>(idx)] =
          static_cast<std::int64_t>(ci);
      ++joined;
      if (flight != nullptr) flight->record("join", idx, m.words[1]);
    }
    for (std::size_t c = 0; c < conns.size(); ++c) {
      if (conns[c].eof) {
        return abort_run(conn_name(c) + " disconnected during formation");
      }
    }
  }
  listener_.reset();  // all nodes are in; no further connections expected

  // --- PEERS -> READY -> GO ---------------------------------------------
  for (std::uint32_t v = 0; v < n; ++v) {
    Conn& c = conns[static_cast<std::size_t>(by_index[v])];
    const Conn& succ =
        conns[static_cast<std::size_t>(by_index[(v + 1) % n])];
    const std::vector<unsigned char> frame =
        encode_ctl(Ctl::peers, {n, succ.data_port});
    if (!send_all(c.fd.get(), frame.data(), frame.size(), deadline, &err)) {
      return abort_run("PEERS to node " + std::to_string(v) + ": " + err);
    }
  }
  std::uint32_t ready = 0;
  while (ready < n) {
    if (deadline.expired()) return abort_run("deadline waiting for READYs");
    std::vector<std::pair<std::size_t, CtlMsg>> msgs;
    if (!pump(false, &msgs, &err)) return abort_run(err);
    for (auto& [ci, m] : msgs) {
      if (m.type == Ctl::err) {
        conns[ci].node_error = m.text;
        return abort_run(conn_name(ci) + " failed forming ring edges: " +
                         m.text);
      }
      if (m.type != Ctl::ready || conns[ci].ready) {
        return abort_run(conn_name(ci) + ": expected one READY");
      }
      conns[ci].ready = true;
      ++ready;
    }
    for (std::size_t c = 0; c < conns.size(); ++c) {
      if (conns[c].eof) {
        return abort_run(conn_name(c) + " disconnected before READY");
      }
    }
  }
  if (!broadcast(encode_ctl(Ctl::go, {}), &err)) {
    return abort_run("GO broadcast: " + err);
  }
  if (flight != nullptr) flight->record("go", n);

  // --- Election + quiescence detection ----------------------------------
  bool probing = false;
  bool have_prev = false;
  std::uint64_t round = 0;
  std::uint64_t prev_sent = 0;
  std::uint64_t prev_consumed = 0;

  auto tentative = [&]() {
    std::uint64_t sent_sum = 0;
    std::uint64_t consumed_sum = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
      const Conn& c = conns[static_cast<std::size_t>(by_index[v])];
      if (!c.have_report) return false;
      if (c.state != kStateIdle && c.state != kStateDone) return false;
      sent_sum += c.sent;
      consumed_sum += c.consumed;
    }
    return sent_sum == consumed_sum;
  };

  auto start_round = [&](std::string* serr) {
    ++round;
    ++res.probe_rounds;
    probing = true;
    for (Conn& c : conns) c.have_ack = false;
    if (flight != nullptr) flight->record("probe", round);
    return broadcast(encode_ctl(Ctl::probe, {round}), serr);
  };

  bool quiescent = false;
  while (!quiescent) {
    if (deadline.expired()) {
      return abort_run("watchdog expired before quiescence (after " +
                       std::to_string(res.probe_rounds) + " probe rounds)");
    }
    if (!probing && tentative()) {
      if (!start_round(&err)) return abort_run("PROBE broadcast: " + err);
    }
    std::vector<std::pair<std::size_t, CtlMsg>> msgs;
    if (!pump(false, &msgs, &err)) return abort_run(err);
    for (auto& [ci, m] : msgs) {
      Conn& c = conns[ci];
      switch (m.type) {
        case Ctl::report:
          c.have_report = true;
          c.state = m.words[0];
          c.sent = m.words[1];
          c.consumed = m.words[2];
          ++res.reports;
          break;
        case Ctl::probe_ack:
          // Acks for superseded rounds can arrive late; only the round in
          // flight counts.
          if (probing && m.words[0] == round) {
            c.have_ack = true;
            c.ack_state = m.words[1];
            c.ack_sent = m.words[2];
            c.ack_consumed = m.words[3];
          }
          break;
        case Ctl::err:
          c.node_error = m.text;
          return abort_run(conn_name(ci) + " failed: " + m.text);
        default:
          return abort_run(conn_name(ci) +
                           ": unexpected frame type " +
                           std::to_string(static_cast<int>(m.type)) +
                           " during election");
      }
    }
    for (std::size_t c = 0; c < conns.size(); ++c) {
      if (conns[c].eof) {
        return abort_run(conn_name(c) + " disconnected mid-election");
      }
    }
    if (probing) {
      std::uint32_t acks = 0;
      std::uint64_t sent_sum = 0;
      std::uint64_t consumed_sum = 0;
      bool all_idle = true;
      for (const Conn& c : conns) {
        if (!c.have_ack) continue;
        ++acks;
        if (c.ack_state != kStateIdle && c.ack_state != kStateDone) {
          all_idle = false;
        }
        sent_sum += c.ack_sent;
        consumed_sum += c.ack_consumed;
      }
      if (acks == n) {
        const bool stable = all_idle && sent_sum == consumed_sum;
        if (stable && have_prev && sent_sum == prev_sent &&
            consumed_sum == prev_consumed) {
          quiescent = true;  // two identical consecutive rounds: certain
          res.total_sent = sent_sum;
          res.total_consumed = consumed_sum;
        } else if (stable) {
          have_prev = true;
          prev_sent = sent_sum;
          prev_consumed = consumed_sum;
          if (!start_round(&err)) {
            return abort_run("PROBE broadcast: " + err);
          }
        } else {
          probing = false;  // counters moved: wait for fresh reports
          have_prev = false;
        }
      }
    }
  }
  if (flight != nullptr) {
    flight->record("quiescent", res.total_sent, res.probe_rounds);
  }

  // --- STOP -> RESULTs ---------------------------------------------------
  if (!broadcast(encode_ctl(Ctl::stop, {}), &err)) {
    return abort_run("STOP broadcast: " + err);
  }
  std::uint32_t results = 0;
  while (results < n) {
    if (deadline.expired()) return abort_run("deadline collecting RESULTs");
    std::vector<std::pair<std::size_t, CtlMsg>> msgs;
    if (!pump(false, &msgs, &err)) return abort_run(err);
    for (auto& [ci, m] : msgs) {
      Conn& c = conns[ci];
      switch (m.type) {
        case Ctl::result:
          if (c.have_result) {
            return abort_run(conn_name(ci) + ": duplicate RESULT");
          }
          c.have_result = true;
          c.result = decode_result(m.words);
          ++results;
          break;
        case Ctl::report:
        case Ctl::probe_ack:
          break;  // raced the STOP; harmless
        case Ctl::err:
          c.node_error = m.text;
          return abort_run(conn_name(ci) + " failed at teardown: " + m.text);
        default:
          return abort_run(conn_name(ci) + ": unexpected frame type " +
                           std::to_string(static_cast<int>(m.type)) +
                           " at teardown");
      }
    }
    for (std::size_t c = 0; c < conns.size(); ++c) {
      if (conns[c].eof && !conns[c].have_result) {
        return abort_run(conn_name(c) + " disconnected before its RESULT");
      }
    }
  }

  res.results.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    const Conn& c = conns[static_cast<std::size_t>(by_index[v])];
    res.results[static_cast<std::size_t>(v)] = c.result;
  }
  res.completed = true;
  if (flight != nullptr) flight->record("complete", res.total_sent);
  return res;
}

}  // namespace colex::net
