// Umbrella header: the full public API of the colex library.
//
//   #include "colex.hpp"
//
// Namespaces:
//   colex::sim        the fully defective ring network simulator
//   colex::co         the paper's algorithms (Algorithms 1-4 + adapters)
//   colex::lb         lower-bound machinery (solitude patterns)
//   colex::colib      universal content-oblivious computation (token bus)
//   colex::baselines  classical content-carrying elections
//   colex::rt         real-thread runtime + the PulsePort transcription concept
//   colex::coro       C++20-coroutine executor (million-node rings)
//   colex::util       RNG, statistics, ID generators, tables
#pragma once

#include "baselines/baselines.hpp"
#include "co/alg1.hpp"
#include "co/alg2.hpp"
#include "co/alg3.hpp"
#include "co/election.hpp"
#include "co/invariants.hpp"
#include "co/replicated.hpp"
#include "co/sampling.hpp"
#include "colib/apps.hpp"
#include "colib/bus.hpp"
#include "colib/composed.hpp"
#include "colib/framing.hpp"
#include "coro/run.hpp"
#include "lb/solitude.hpp"
#include "runtime/automaton_host.hpp"
#include "runtime/port.hpp"
#include "runtime/blocking_algs.hpp"
#include "runtime/thread_ring.hpp"
#include "sim/network.hpp"
#include "sim/explore.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
