// Tests for Algorithm 3 (non-oriented rings): leader election plus ring
// orientation, under both virtual-ID schemes (Proposition 15 and Theorem 2),
// including exhaustive port-scramble sweeps and the Prop. 19 resampling rule.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "co/alg3.hpp"
#include "co/election.hpp"
#include "helpers.hpp"
#include "sim/network.hpp"

namespace colex::co {
namespace {

std::uint64_t id_max(const std::vector<std::uint64_t>& ids) {
  return *std::max_element(ids.begin(), ids.end());
}

void expect_elects_and_orients(const std::vector<std::uint64_t>& ids,
                               const std::vector<bool>& flips,
                               IdScheme scheme, sim::Scheduler& sched) {
  Alg3NonOriented::Options options;
  options.scheme = scheme;
  const auto result = elect_and_orient(ids, flips, options, sched);
  ASSERT_TRUE(result.quiescent);
  EXPECT_FALSE(result.all_terminated);  // stabilizes, never terminates
  ASSERT_TRUE(result.valid_election()) << "scheme " << to_string(scheme);
  const auto max_it = std::max_element(ids.begin(), ids.end());
  EXPECT_EQ(*result.leader, static_cast<sim::NodeId>(max_it - ids.begin()));
  EXPECT_TRUE(result.orientation_consistent);
  EXPECT_TRUE(result.orientation_matches_leader_port1);
  const std::uint64_t expected =
      scheme == IdScheme::doubled
          ? prop15_pulses(ids.size(), id_max(ids))
          : theorem1_pulses(ids.size(), id_max(ids));
  EXPECT_EQ(result.pulses, expected) << "scheme " << to_string(scheme);
}

TEST(Alg3, OrientedRingBothSchemes) {
  sim::GlobalFifoScheduler sched;
  expect_elects_and_orients({2, 4, 1, 3}, {}, IdScheme::doubled, sched);
  expect_elects_and_orients({2, 4, 1, 3}, {}, IdScheme::improved, sched);
}

TEST(Alg3, ScrambledRingBothSchemes) {
  sim::GlobalFifoScheduler sched;
  const std::vector<bool> flips{true, false, true, true};
  expect_elects_and_orients({2, 4, 1, 3}, flips, IdScheme::doubled, sched);
  expect_elects_and_orients({2, 4, 1, 3}, flips, IdScheme::improved, sched);
}

TEST(Alg3, SingleNodeSelfLoop) {
  sim::GlobalFifoScheduler sched;
  for (const bool flip : {false, true}) {
    expect_elects_and_orients({5}, {flip}, IdScheme::doubled, sched);
    expect_elects_and_orients({5}, {flip}, IdScheme::improved, sched);
  }
}

TEST(Alg3, TwoNodeAllScrambles) {
  sim::GlobalFifoScheduler sched;
  for (const auto& flips : test::all_flip_masks(2)) {
    expect_elects_and_orients({3, 7}, flips, IdScheme::doubled, sched);
    expect_elects_and_orients({3, 7}, flips, IdScheme::improved, sched);
  }
}

TEST(Alg3, ExhaustiveScramblesSmallRing) {
  // Every port assignment of a 6-ring must elect the same leader and agree
  // on an orientation (Figure 1's point: algorithms must work for all
  // assignments of the nodes' ports).
  sim::GlobalFifoScheduler sched;
  const std::vector<std::uint64_t> ids{4, 1, 6, 2, 5, 3};
  for (const auto& flips : test::all_flip_masks(6)) {
    expect_elects_and_orients(ids, flips, IdScheme::improved, sched);
  }
}

TEST(Alg3, ExhaustiveScramblesDoubledScheme) {
  sim::GlobalFifoScheduler sched;
  const std::vector<std::uint64_t> ids{4, 1, 3, 2};
  for (const auto& flips : test::all_flip_masks(4)) {
    expect_elects_and_orients(ids, flips, IdScheme::doubled, sched);
  }
}

class Alg3SchedulerSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(Alg3SchedulerSweep, ScrambledRingUnderEveryAdversary) {
  auto sched = test::make_scheduler(GetParam(), 4);
  ASSERT_NE(sched, nullptr);
  const std::vector<std::uint64_t> ids{6, 11, 3, 9, 1, 7};
  const std::vector<bool> flips{true, true, false, true, false, false};
  expect_elects_and_orients(ids, flips, IdScheme::improved, *sched);
  sched->reset();
  expect_elects_and_orients(ids, flips, IdScheme::doubled, *sched);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, Alg3SchedulerSweep,
    ::testing::ValuesIn(test::standard_scheduler_names(4)),
    [](const ::testing::TestParamInfo<std::string>& pinfo) {
      std::string name = pinfo.param;
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(Alg3, RandomScramblesRandomIdsRandomSchedulers) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    util::Xoshiro256StarStar rng(seed);
    const std::size_t n = 3 + rng.below(6);
    const auto ids = test::sparse_ids(n, 50, seed + 100);
    std::vector<bool> flips(n);
    for (std::size_t v = 0; v < n; ++v) flips[v] = rng.bernoulli(0.5);
    sim::RandomScheduler sched(seed);
    expect_elects_and_orients(ids, flips, IdScheme::improved, sched);
  }
}

TEST(Alg3, PerNodeCountersStabilizeToDirectionalMaxima) {
  // Theorem 2's accounting: with the improved scheme, each node receives
  // IDmax+1 pulses from one direction and IDmax from the other.
  const std::vector<std::uint64_t> ids{5, 9, 2, 7};
  const std::vector<bool> flips{false, true, true, false};
  Alg3NonOriented::Options options;
  options.scheme = IdScheme::improved;
  sim::RandomScheduler sched(3);
  const auto result = elect_and_orient(ids, flips, options, sched);
  ASSERT_TRUE(result.quiescent);
  for (const auto& n : result.nodes) {
    const auto lo = std::min(n.rho_p0, n.rho_p1);
    const auto hi = std::max(n.rho_p0, n.rho_p1);
    EXPECT_EQ(hi, 10u);  // IDmax + 1
    EXPECT_EQ(lo, 9u);   // IDmax
  }
}

TEST(Alg3, DeclaredCwPortIsThePortReceivingFewerPulses) {
  const std::vector<std::uint64_t> ids{5, 9, 2, 7};
  Alg3NonOriented::Options options;
  options.scheme = IdScheme::improved;
  sim::GlobalFifoScheduler sched;
  const auto result = elect_and_orient(ids, {}, options, sched);
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    const auto& n = result.nodes[v];
    const sim::Port busier =
        n.rho_p0 > n.rho_p1 ? sim::Port::p0 : sim::Port::p1;
    EXPECT_EQ(result.cw_ports[v], sim::opposite(busier));
  }
}

TEST(Alg3, NonUniqueIdsWorkWhenMaxIsUnique) {
  // Lemma 16 / §5: the algorithm only needs the *maximal* ID to be unique.
  sim::GlobalFifoScheduler sched;
  const std::vector<std::uint64_t> ids{3, 7, 3, 3, 5, 5};
  Alg3NonOriented::Options options;
  options.scheme = IdScheme::improved;
  const auto result = elect_and_orient(ids, {}, options, sched);
  ASSERT_TRUE(result.quiescent);
  ASSERT_TRUE(result.valid_election());
  EXPECT_EQ(*result.leader, 1u);
  EXPECT_TRUE(result.orientation_consistent);
  EXPECT_EQ(result.pulses, theorem1_pulses(ids.size(), 7));
}

TEST(Alg3, DuplicatedMaxIdYieldsNoUniqueLeader) {
  // Negative control: when the maximal ID is duplicated, the improved
  // scheme's two directions share their maxima and the leader predicate
  // cannot single anyone out. The run still reaches quiescence.
  sim::GlobalFifoScheduler sched;
  const std::vector<std::uint64_t> ids{7, 3, 7};
  Alg3NonOriented::Options options;
  options.scheme = IdScheme::improved;
  const auto result = elect_and_orient(ids, {}, options, sched);
  EXPECT_TRUE(result.quiescent);
  EXPECT_NE(result.leader_count, 1u);
}

TEST(Alg3, VirtualIdSchemes) {
  const auto doubled = virtual_ids(5, IdScheme::doubled);
  EXPECT_EQ(doubled.vid[0], 9u);
  EXPECT_EQ(doubled.vid[1], 10u);
  const auto improved = virtual_ids(5, IdScheme::improved);
  EXPECT_EQ(improved.vid[0], 5u);
  EXPECT_EQ(improved.vid[1], 6u);
  EXPECT_THROW(virtual_ids(0, IdScheme::doubled), util::ContractViolation);
}

TEST(Alg3, DoubledSchemeCostsRoughlyTwiceImproved) {
  const std::vector<std::uint64_t> ids{5, 9, 2, 7, 1};
  sim::GlobalFifoScheduler sched;
  Alg3NonOriented::Options doubled{IdScheme::doubled, std::nullopt};
  Alg3NonOriented::Options improved{IdScheme::improved, std::nullopt};
  const auto r1 = elect_and_orient(ids, {}, doubled, sched);
  const auto r2 = elect_and_orient(ids, {}, improved, sched);
  EXPECT_EQ(r1.pulses, prop15_pulses(5, 9));    // 5 * 35 = 175
  EXPECT_EQ(r2.pulses, theorem1_pulses(5, 9));  // 5 * 19 = 95
  EXPECT_GT(r1.pulses, r2.pulses);
}

TEST(Alg3, Prop19ResamplingYieldsDistinctIds) {
  // Proposition 19: with the resampling rule, all nodes hold distinct IDs
  // at quiescence with high probability. Use IDs with many duplicates and a
  // large unique max so the redraw range is wide.
  std::size_t distinct_runs = 0;
  constexpr std::size_t kRuns = 30;
  for (std::uint64_t seed = 1; seed <= kRuns; ++seed) {
    const std::vector<std::uint64_t> ids{2, 2, 2, 2, 2, 1000};
    Alg3NonOriented::Options options;
    options.scheme = IdScheme::improved;
    options.resample_seed = seed;
    sim::RandomScheduler sched(seed);
    const auto result = elect_and_orient(ids, {}, options, sched);
    ASSERT_TRUE(result.quiescent);
    std::set<std::uint64_t> seen;
    for (const auto& n : result.nodes) seen.insert(n.id);
    if (seen.size() == ids.size()) ++distinct_runs;
  }
  // With redraw range ~[1, 999] and 6 nodes, collisions are rare; demand
  // at least 90% of runs fully distinct.
  EXPECT_GE(distinct_runs, kRuns * 9 / 10);
}

TEST(Alg3, Prop19DoesNotDisturbElectionOrComplexity) {
  const std::vector<std::uint64_t> ids{2, 2, 2, 2, 2, 1000};
  Alg3NonOriented::Options options;
  options.scheme = IdScheme::improved;
  options.resample_seed = 42;
  sim::GlobalFifoScheduler sched;
  const auto result = elect_and_orient(ids, {}, options, sched);
  ASSERT_TRUE(result.valid_election());
  EXPECT_EQ(*result.leader, 5u);
  EXPECT_EQ(result.pulses, theorem1_pulses(6, 1000));
  EXPECT_TRUE(result.orientation_consistent);
}

}  // namespace
}  // namespace colex::co
