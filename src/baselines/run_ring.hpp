// Internal helper: build an oriented message ring, run it, extract results.
#pragma once

#include <optional>
#include <utility>

#include "baselines/baselines.hpp"
#include "baselines/node.hpp"

namespace colex::baselines::detail {

/// `make(v)` returns the automaton for ring position v (as unique_ptr to a
/// BaselineNode subclass).
template <typename MakeNode>
BaselineResult run_ring(std::size_t n, MakeNode&& make,
                        sim::Scheduler& scheduler,
                        const MsgRunOptions& opts) {
  auto net = MsgNetwork::ring(n);
  for (sim::NodeId v = 0; v < n; ++v) net.set_automaton(v, make(v));
  const auto report = net.run(scheduler, opts);

  BaselineResult result;
  result.messages = report.sent;
  result.all_terminated = report.all_terminated;
  result.late_deliveries = report.deliveries_to_terminated;

  std::size_t leaders = 0;
  bool consensus = true;
  std::optional<std::uint64_t> agreed;
  for (sim::NodeId v = 0; v < n; ++v) {
    const auto& node = net.automaton_as<BaselineNode>(v);
    result.bits += node.bits_sent();
    if (node.is_leader()) {
      ++leaders;
      result.leader = v;
    }
    if (!node.leader_id().has_value()) {
      consensus = false;
    } else if (!agreed.has_value()) {
      agreed = *node.leader_id();
    } else if (*agreed != *node.leader_id()) {
      consensus = false;
    }
  }
  result.ok = leaders == 1 && consensus && agreed.has_value() &&
              report.all_terminated && !report.hit_event_limit;
  if (agreed) result.leader_id = *agreed;
  return result;
}

}  // namespace colex::baselines::detail
