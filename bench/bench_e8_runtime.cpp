// E8 — Real-asynchrony validation: the blocking pseudocode transcriptions
// on OS threads (mutex+cv ports, genuine scheduler nondeterminism) must
// reproduce the discrete-event simulator's outputs and exact pulse counts,
// run after run.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "co/election.hpp"
#include "runtime/blocking_algs.hpp"
#include "sim/scheduler.hpp"
#include "util/ids.hpp"
#include "util/table.hpp"

int main() {
  using namespace colex;
  bench::banner(
      "E8  Threaded runtime vs discrete simulator (bench_e8_runtime)",
      "the paper's pseudocode, run on real threads, must match the "
      "event-driven simulator exactly: same leader, same roles, same "
      "n(2*IDmax+1) pulses");
  bench::WallTimer total;
  bench::JsonReport report("E8", "threaded runtime vs discrete simulator");

  util::Table table({"n", "alg", "repeats", "sim pulses", "thread pulses",
                     "all exact", "leader match", "wall ms/run"});
  bool all_ok = true;

  struct Config {
    rt::ThreadAlg alg;
    const char* name;
  };
  const Config configs[] = {
      {rt::ThreadAlg::alg1, "alg1"},
      {rt::ThreadAlg::alg2, "alg2"},
      {rt::ThreadAlg::alg3_improved, "alg3-improved"},
  };

  for (const std::size_t n : {2u, 4u, 8u, 16u, 24u}) {
    const auto ids = util::shuffled(util::dense_ids(n), n * 13 + 2);
    sim::RandomScheduler sched(n);
    const auto simulated = co::elect_oriented_terminating(ids, sched);

    for (const auto& config : configs) {
      const int repeats = 5;
      bool exact = true, leader_match = true;
      std::uint64_t thread_pulses = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        const auto threaded = rt::run_on_threads(ids, {}, config.alg);
        exact = exact && threaded.completed;
        thread_pulses = threaded.pulses;
        // All three algorithms elect the same leader; alg1's pulse count is
        // n*IDmax, alg2 and alg3-improved cost n(2*IDmax+1).
        const std::uint64_t expected =
            config.alg == rt::ThreadAlg::alg1
                ? n * static_cast<std::uint64_t>(n)
                : co::theorem1_pulses(n, n);
        exact = exact && threaded.pulses == expected;
        leader_match = leader_match && threaded.leader == simulated.leader &&
                       threaded.leader_count == 1;
      }
      const auto t1 = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count() /
          repeats;
      all_ok = all_ok && exact && leader_match;
      table.add_row({util::Table::num(static_cast<std::uint64_t>(n)),
                     config.name, util::Table::num(std::uint64_t{repeats}),
                     util::Table::num(simulated.pulses),
                     util::Table::num(thread_pulses), exact ? "yes" : "NO",
                     leader_match ? "yes" : "NO", util::Table::fixed(ms, 2)});
    }
  }
  table.print(std::cout);
  report.root().set("all_ok", all_ok);
  report.finish(total.seconds());

  bench::verdict(all_ok,
                 "two independent execution models (event-driven simulation, "
                 "blocking threads) agree exactly on every run");
  return all_ok ? 0 : 1;
}
