// Drop-in coroutine-runtime counterpart of rt::run_on_threads: same
// algorithms (the template transcriptions in runtime/blocking_algs.hpp),
// same outcome/result shape, executed as n coroutines on a few worker
// threads instead of n OS threads — the difference between rings of a few
// thousand nodes and rings of a million.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "coro/executor.hpp"
#include "runtime/blocking_algs.hpp"

namespace colex::coro {

struct CoroRunOptions {
  std::size_t workers = 1;        ///< executor worker threads
  std::uint64_t timeout_ms = 30'000;  ///< stall watchdog budget
  obs::Registry* metrics = nullptr;   ///< merged per-worker registries
};

/// The substrate-agnostic rt::TransportRunResult shape (no fault-hook
/// counters: the coroutine runtime runs clean fabrics; fault injection
/// lives on sim and ThreadRing) plus the executor's scheduler telemetry.
struct CoroRunResult : rt::TransportRunResult {
  ExecStats stats;               ///< scheduler telemetry (always on)
};

/// Runs one election over n = ids.size() nodes on the coroutine executor.
/// `port_flips` must be empty for the oriented algorithms (same contract
/// as run_on_threads).
CoroRunResult run_on_coro(const std::vector<std::uint64_t>& ids,
                          const std::vector<bool>& port_flips,
                          rt::ThreadAlg alg,
                          const CoroRunOptions& options = {});

}  // namespace colex::coro
