// The colex-lint rule catalog (see DESIGN.md §8 for the rationale).
//
// Three passes feed the catalog:
//   lexical      — per-file token scans over the scope walker's index
//   taint        — interprocedural obliviousness taint (taint.hpp)
//   concurrency  — concurrency discipline over the symbol table + call
//                  graph (concurrency.hpp)
//
// Families:
//   D (determinism)       — D001 banned nondeterminism sources,
//                           D002 unordered-container iteration,
//                           D003 mutable function-local statics
//   M (model conformance) — M001 payload-content reads in automaton code,
//                           M002 neighbor/global network state access,
//                           M003 non-empty Pulse payload / content-carrying
//                                instantiations in content-oblivious code
//   C (clone completeness)— C001 clone()/copy path missing a data member
//   H (hygiene)           — H001 header without include guard,
//                           H002 `using namespace` in a header
//   O (obliviousness)     — O001 taint into a branch condition,
//                           O002 taint into a loop bound,
//                           O003 taint into a send-family call
//   T (concurrency)       — T001 unpaired atomic memory orders,
//                           T002 blocking call reachable from a coroutine,
//                           T003 seqlock writer protocol shape,
//                           T004 Transport/PulsePort conformance drift
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/classes.hpp"
#include "lint/source.hpp"

namespace colex::lint {

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
  std::string pass = "lexical";  // lexical | taint | concurrency
};

struct RuleInfo {
  std::string id;
  std::string pass;  // which analyzer pass produces it
  std::string summary;
};

/// Stable catalog, ordered by rule id (for --list-rules and the docs).
std::vector<RuleInfo> rule_catalog();

/// Runs every rule over the project. Returned findings are pre-suppression
/// (the driver applies allow markers) and sorted by (file, line, rule).
/// `workers` fans the per-file scans (lexical + taint sinks) out over the
/// sim/parallel.hpp pool; the symbol/call-graph build and the global rules
/// (C001, T001–T004) stay single-threaded. The result is identical for any
/// worker count (per-file slots, sequential aggregation).
std::vector<Finding> run_rules(const std::vector<SourceFile>& files,
                               const ProjectIndex& project,
                               std::size_t workers);

std::vector<Finding> run_rules(const std::vector<SourceFile>& files,
                               const ProjectIndex& project);

}  // namespace colex::lint
