#include "co/alg3.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace colex::co {

VirtualIds virtual_ids(std::uint64_t id, IdScheme scheme) {
  COLEX_EXPECTS(id >= 1);
  VirtualIds v{};
  switch (scheme) {
    case IdScheme::doubled:
      v.vid[0] = 2 * id - 1;
      v.vid[1] = 2 * id;
      break;
    case IdScheme::improved:
      v.vid[0] = id;
      v.vid[1] = id + 1;
      break;
  }
  return v;
}

Alg3NonOriented::Alg3NonOriented(std::uint64_t id, Options options)
    : id_(id), initial_id_(id), vids_(virtual_ids(id, options.scheme)) {
  if (options.resample_seed) {
    resampler_.emplace(*options.resample_seed);
  }
}

void Alg3NonOriented::start(sim::PulseContext& ctx) {
  // Lines 1-3: choose virtual IDs (done in the constructor) and send one
  // pulse out of each port.
  for (int i : {0, 1}) {
    ctx.send(sim::port_from_index(i));
    ++sigma_[i];
  }
}

void Alg3NonOriented::react(sim::PulseContext& ctx) {
  bool progress = true;
  while (progress) {
    progress = false;
    // Lines 5-7: pulses received at port 1-i are forwarded out port i unless
    // the count at port 1-i reached the governing virtual ID.
    for (int i : {0, 1}) {
      const int in = 1 - i;
      if (ctx.recv_pulse(sim::port_from_index(in))) {
        ++rho_[in];
        if (rho_[in] != vids_.vid[i]) {
          ctx.send(sim::port_from_index(i));
          ++sigma_[i];
        }
        // Proposition 19: redraw the stored ID when both counters exceed it.
        if (resampler_) {
          const std::uint64_t m = std::min(rho_[0], rho_[1]);
          if (m > id_) {
            COLEX_ASSERT(m >= 2);
            id_ = resampler_->in_range(1, m - 1);
          }
        }
        progress = true;
      }
    }
    // Lines 8-16: recompute the tentative output from the counters.
    update_output();
  }
}

void Alg3NonOriented::update_output() {
  if (std::max(rho_[0], rho_[1]) < vids_.vid[1]) return;  // line 8
  // Lines 9-12.
  if (rho_[0] == vids_.vid[1] && rho_[1] < vids_.vid[1]) {
    role_ = Role::leader;
  } else {
    role_ = Role::non_leader;
  }
  // Lines 13-16: the port that received more pulses faces the CCW neighbor.
  cw_port_ = rho_[0] > rho_[1] ? sim::Port::p1 : sim::Port::p0;
}

}  // namespace colex::co
