# Empty compiler generated dependencies file for test_colib.
# This may be replaced when dependencies are built.
