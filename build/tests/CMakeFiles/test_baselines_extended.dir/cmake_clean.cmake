file(REMOVE_RECURSE
  "CMakeFiles/test_baselines_extended.dir/test_baselines_extended.cpp.o"
  "CMakeFiles/test_baselines_extended.dir/test_baselines_extended.cpp.o.d"
  "test_baselines_extended"
  "test_baselines_extended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
