file(REMOVE_RECURSE
  "CMakeFiles/colex_sim.dir/scheduler.cpp.o"
  "CMakeFiles/colex_sim.dir/scheduler.cpp.o.d"
  "libcolex_sim.a"
  "libcolex_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colex_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
