file(REMOVE_RECURSE
  "CMakeFiles/threaded_ring.dir/threaded_ring.cpp.o"
  "CMakeFiles/threaded_ring.dir/threaded_ring.cpp.o.d"
  "threaded_ring"
  "threaded_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
