// Tests for the content-oblivious token bus (the ring-specialized [8]
// substrate) and its composition with Algorithm 2 (Corollary 5).
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>

#include "colib/apps.hpp"
#include "colib/composed.hpp"
#include "helpers.hpp"
#include "sim/network.hpp"

namespace colex::colib {
namespace {

TEST(Bits, EncodeDecodeRoundTrip) {
  for (std::uint64_t v : {0ull, 1ull, 2ull, 5ull, 255ull, 1ull << 40,
                          ~0ull}) {
    EXPECT_EQ(decode_u64(encode_u64(v)), v);
  }
  EXPECT_TRUE(encode_u64(0).empty());
  EXPECT_EQ(encode_u64(5).size(), 3u);
}

TEST(Bits, DecodeSubrange) {
  Bits b{true, false, true, true};  // LSB-first: value 13
  EXPECT_EQ(decode_u64(b), 13u);
  EXPECT_EQ(decode_u64(b, 1), 6u);     // "011" -> 6
  EXPECT_EQ(decode_u64(b, 1, 2), 2u);  // "01" -> 2
}

/// Builds a bus-only ring (no election phase) with the root at `root`.
sim::PulseNetwork bus_ring(const std::vector<std::uint64_t>& inputs,
                           sim::NodeId root) {
  auto net = sim::PulseNetwork::ring(inputs.size());
  for (sim::NodeId v = 0; v < inputs.size(); ++v) {
    net.set_automaton(v, std::make_unique<BusNode>(
                             std::make_unique<GatherAllApp>(inputs[v]),
                             v == root));
  }
  return net;
}

const GatherAllApp& gather_at(sim::PulseNetwork& net, sim::NodeId v) {
  return dynamic_cast<const GatherAllApp&>(
      net.automaton_as<BusNode>(v).app());
}

TEST(Bus, SurveyTeachesSizeAndOffsets) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 8u}) {
    for (sim::NodeId root = 0; root < n; ++root) {
      std::vector<std::uint64_t> inputs(n, 1);
      auto net = bus_ring(inputs, root);
      sim::GlobalFifoScheduler sched;
      const auto report = net.run(sched);
      ASSERT_TRUE(report.quiescent) << "n=" << n << " root=" << root;
      ASSERT_TRUE(report.all_terminated) << "n=" << n << " root=" << root;
      EXPECT_EQ(report.deliveries_to_terminated, 0u);
      for (sim::NodeId v = 0; v < n; ++v) {
        const auto& app = gather_at(net, v);
        EXPECT_EQ(app.ring_size(), n);
        EXPECT_EQ(app.offset(), (v + n - root) % n)
            << "n=" << n << " root=" << root << " v=" << v;
      }
    }
  }
}

TEST(Bus, GatherAllDeliversEveryInputToEveryNode) {
  const std::vector<std::uint64_t> inputs{7, 0, 19, 3, 42};
  auto net = bus_ring(inputs, 2);
  sim::RandomScheduler sched(5);
  const auto report = net.run(sched);
  ASSERT_TRUE(report.quiescent);
  ASSERT_TRUE(report.all_terminated);
  for (sim::NodeId v = 0; v < inputs.size(); ++v) {
    const auto& app = gather_at(net, v);
    ASSERT_TRUE(app.complete()) << v;
    EXPECT_TRUE(app.halted()) << v;
    EXPECT_EQ(app.max_value(), 42u);
    EXPECT_EQ(app.sum(), 71u);
    // values() are indexed by clockwise offset from the root (node 2).
    for (std::size_t off = 0; off < inputs.size(); ++off) {
      EXPECT_EQ(*app.values()[off], inputs[(2 + off) % inputs.size()]);
    }
  }
}

TEST(Bus, SingleNodeBus) {
  auto net = bus_ring({9}, 0);
  sim::GlobalFifoScheduler sched;
  const auto report = net.run(sched);
  ASSERT_TRUE(report.quiescent);
  ASSERT_TRUE(report.all_terminated);
  const auto& app = gather_at(net, 0);
  EXPECT_EQ(app.ring_size(), 1u);
  EXPECT_EQ(app.sum(), 9u);
}

TEST(Bus, ExactPulseAccounting) {
  // Survey: n^2 + n. Each DATA frame of payload length L: n(2L + 3)
  // pulses. Each PASS: n + 1 (bit circle plus the private go pulse).
  // HALT: 2n. GatherAll: n DATA frames, n PASSes, one HALT.
  const std::vector<std::uint64_t> inputs{7, 0, 19, 3, 42};
  const auto n = static_cast<std::uint64_t>(inputs.size());
  auto net = bus_ring(inputs, 0);
  sim::GlobalFifoScheduler sched;
  const auto report = net.run(sched);
  ASSERT_TRUE(report.all_terminated);
  std::uint64_t expected = n * n + n;  // survey + marker
  for (const std::uint64_t input : inputs) {
    const std::uint64_t len = encode_u64(input).size();
    expected += n * (2 * len + 3);
  }
  expected += n * (n + 1);  // n PASSes
  expected += 2 * n;        // HALT
  EXPECT_EQ(report.sent, expected);
}

TEST(Bus, PulseCountIsSchedulerIndependent) {
  const std::vector<std::uint64_t> inputs{3, 11, 6};
  std::optional<std::uint64_t> reference;
  for (auto& named : sim::standard_schedulers(4)) {
    auto net = bus_ring(inputs, 1);
    const auto report = net.run(*named.scheduler);
    ASSERT_TRUE(report.all_terminated) << named.name;
    if (!reference) {
      reference = report.sent;
    } else {
      EXPECT_EQ(report.sent, *reference) << named.name;
    }
  }
}

TEST(Bus, NonRootHaltIsRejected) {
  // Drive a ctl through an app that tries to halt as non-root.
  class BadApp final : public BusApp {
   public:
    void on_ready(std::size_t, std::size_t, bool) override {}
    void on_frame(std::size_t, const Bits&) override {}
    void on_token(BusCtl& ctl) override { ctl.halt(); }
    std::unique_ptr<BusApp> clone() const override {
      return std::make_unique<BadApp>(*this);
    }
  };
  auto net = sim::PulseNetwork::ring(2);
  net.set_automaton(0, std::make_unique<BusNode>(
                           std::make_unique<GatherAllApp>(1), true));
  net.set_automaton(1, std::make_unique<BusNode>(
                           std::make_unique<BadApp>(), false));
  sim::GlobalFifoScheduler sched;
  EXPECT_THROW(net.run(sched), util::ContractViolation);
}

// --- Corollary 5: election composed with the bus -----------------------

TEST(Composition, ElectThenGatherEndToEnd) {
  const std::vector<std::uint64_t> ids{6, 11, 3, 9, 1, 7};
  const std::vector<std::uint64_t> inputs{100, 200, 300, 400, 500, 600};
  sim::PulseNetwork net;
  sim::RandomScheduler sched(3);
  const auto result = run_composed_with_network(
      ids,
      [&inputs](sim::NodeId v) {
        return std::make_unique<GatherAllApp>(inputs[v]);
      },
      sched, {}, net);

  ASSERT_TRUE(result.quiescent);
  ASSERT_TRUE(result.all_terminated);
  EXPECT_EQ(result.report.deliveries_to_terminated, 0u);
  ASSERT_TRUE(result.leader.has_value());
  EXPECT_EQ(*result.leader, 1u);  // max ID 11
  EXPECT_EQ(result.ring_size_learned, ids.size());
  // The election phase costs exactly Theorem 1's bound.
  EXPECT_EQ(result.election_pulses, co::theorem1_pulses(ids.size(), 11));
  EXPECT_EQ(result.total_pulses,
            result.election_pulses + result.bus_pulses);

  // Every node gathered every input; the leader (bus root) sits at offset 0.
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    const auto& composed = net.automaton_as<ComposedNode>(v);
    ASSERT_NE(composed.bus(), nullptr);
    const auto& app = dynamic_cast<const GatherAllApp&>(composed.bus()->app());
    ASSERT_TRUE(app.complete());
    EXPECT_EQ(app.sum(), 2100u);
    EXPECT_EQ(app.max_value(), 600u);
    EXPECT_EQ(app.offset(), (v + ids.size() - 1) % ids.size());
  }
}

TEST(Composition, WorksUnderEveryScheduler) {
  const std::vector<std::uint64_t> ids{4, 9, 2};
  for (auto& named : sim::standard_schedulers(3)) {
    const auto result = run_composed(
        ids, [](sim::NodeId v) { return std::make_unique<GatherAllApp>(v); },
        *named.scheduler);
    ASSERT_TRUE(result.all_terminated) << named.name;
    EXPECT_EQ(result.election_pulses, co::theorem1_pulses(3, 9))
        << named.name;
    EXPECT_EQ(*result.leader, 1u) << named.name;
    EXPECT_EQ(result.ring_size_learned, 3u) << named.name;
  }
}

TEST(Composition, SingleNode) {
  const auto result = run_composed(
      {5}, [](sim::NodeId) { return std::make_unique<GatherAllApp>(77); },
      *sim::standard_schedulers(1)[0].scheduler);
  ASSERT_TRUE(result.all_terminated);
  EXPECT_EQ(result.election_pulses, 11u);
  EXPECT_EQ(result.ring_size_learned, 1u);
}

// --- Universal simulation (SimulatorApp) -------------------------------

TEST(Simulation, RingSumOverTheBus) {
  const std::vector<std::uint64_t> ids{6, 11, 3, 9};
  const std::vector<std::uint64_t> inputs{10, 20, 30, 40};
  sim::PulseNetwork net;
  sim::GlobalFifoScheduler sched;
  const auto result = run_composed_with_network(
      ids,
      [&inputs](sim::NodeId v) {
        return std::make_unique<SimulatorApp>(
            std::make_unique<RingSumSimNode>(inputs[v]));
      },
      sched, {}, net);

  ASSERT_TRUE(result.all_terminated);
  // Simulated indices are clockwise offsets from the leader (node 1).
  // Simulated node 0 == ring node 1; its input is inputs[1].
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    const auto& composed = net.automaton_as<ComposedNode>(v);
    const auto& app =
        dynamic_cast<const SimulatorApp&>(composed.bus()->app());
    ASSERT_TRUE(app.halted()) << v;
    const auto& sum_node = dynamic_cast<const RingSumSimNode&>(app.node());
    ASSERT_TRUE(sum_node.total().has_value()) << v;
    EXPECT_EQ(*sum_node.total(), 100u) << v;
  }
}

TEST(Simulation, SingleNodeRingSum) {
  sim::GlobalFifoScheduler sched;
  sim::PulseNetwork net;
  const auto result = run_composed_with_network(
      {3},
      [](sim::NodeId) {
        return std::make_unique<SimulatorApp>(
            std::make_unique<RingSumSimNode>(55));
      },
      sched, {}, net);
  ASSERT_TRUE(result.all_terminated);
  const auto& app = dynamic_cast<const SimulatorApp&>(
      net.automaton_as<ComposedNode>(0).bus()->app());
  const auto& node = dynamic_cast<const RingSumSimNode&>(app.node());
  EXPECT_EQ(*node.total(), 55u);
}

TEST(Simulation, ChangRobertsOverFullyDefectiveChannels) {
  const std::vector<std::uint64_t> ids{6, 11, 3, 9, 7};
  sim::PulseNetwork net;
  sim::RandomScheduler sched(9);
  const auto result = run_composed_with_network(
      ids,
      [&ids](sim::NodeId v) {
        return std::make_unique<SimulatorApp>(
            std::make_unique<ChangRobertsSimNode>(ids[v]));
      },
      sched, {}, net);
  ASSERT_TRUE(result.all_terminated);
  std::size_t sim_leaders = 0;
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    const auto& app = dynamic_cast<const SimulatorApp&>(
        net.automaton_as<ComposedNode>(v).bus()->app());
    const auto& cr = dynamic_cast<const ChangRobertsSimNode&>(app.node());
    ASSERT_TRUE(cr.leader().has_value()) << v;
    EXPECT_EQ(*cr.leader(), 11u) << v;
    if (cr.is_leader()) ++sim_leaders;
  }
  EXPECT_EQ(sim_leaders, 1u);
}


TEST(UniqueIds, AssignsCompactDistinctIds) {
  // Section 5 separation discussion: assigning unique IDs is computable
  // once a root exists; the survey alone distinguishes every node.
  const std::vector<std::uint64_t> ids{6, 11, 3, 9, 1};
  sim::PulseNetwork net;
  sim::RandomScheduler sched(4);
  const auto result = run_composed_with_network(
      ids, [](sim::NodeId) { return std::make_unique<UniqueIdsApp>(); },
      sched, {}, net);
  ASSERT_TRUE(result.all_terminated);
  std::set<std::uint64_t> seen;
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    const auto& app = dynamic_cast<const UniqueIdsApp&>(
        net.automaton_as<ComposedNode>(v).bus()->app());
    EXPECT_TRUE(app.halted());
    EXPECT_EQ(app.ring_size(), ids.size());
    EXPECT_GE(app.assigned_id(), 1u);
    EXPECT_LE(app.assigned_id(), ids.size());
    seen.insert(app.assigned_id());
  }
  EXPECT_EQ(seen.size(), ids.size());
  // The leader (bus root) receives ID 1.
  const auto& leader_app = dynamic_cast<const UniqueIdsApp&>(
      net.automaton_as<ComposedNode>(1).bus()->app());
  EXPECT_EQ(leader_app.assigned_id(), 1u);
}

TEST(UniqueIds, CostIsSurveyPlusHalt) {
  const std::vector<std::uint64_t> inputs{1, 1, 1, 1};
  const std::uint64_t n = 4;
  auto net = sim::PulseNetwork::ring(n);
  for (sim::NodeId v = 0; v < n; ++v) {
    net.set_automaton(v, std::make_unique<BusNode>(
                             std::make_unique<UniqueIdsApp>(), v == 0));
  }
  sim::GlobalFifoScheduler sched;
  const auto report = net.run(sched);
  ASSERT_TRUE(report.all_terminated);
  EXPECT_EQ(report.sent, n * n + n + 2 * n);  // survey + marker + HALT
}

TEST(BusAblation, SkipGoCorruptsUnderAdversarialSchedules) {
  // The go pulse is load-bearing: without it at least one standard
  // adversary must corrupt a gather-all run (and the safe configuration
  // must survive them all). See bench_e11_ablation for the full matrix.
  const std::vector<std::uint64_t> inputs{3, 14, 7, 1, 9};
  auto run = [&inputs](sim::Scheduler& sched, bool skip_go) {
    auto net = sim::PulseNetwork::ring(inputs.size());
    BusOptions options;
    options.unsafe_skip_go = skip_go;
    for (sim::NodeId v = 0; v < inputs.size(); ++v) {
      net.set_automaton(v, std::make_unique<BusNode>(
                               std::make_unique<GatherAllApp>(inputs[v]),
                               v == 0, options));
    }
    sim::RunOptions opts;
    opts.max_events = 500'000;
    bool ok = false;
    try {
      const auto report = net.run(sched, opts);
      ok = report.all_terminated && report.quiescent &&
           !report.hit_event_limit;
      for (sim::NodeId v = 0; v < inputs.size() && ok; ++v) {
        const auto& app = dynamic_cast<const GatherAllApp&>(
            net.automaton_as<BusNode>(v).app());
        ok = app.complete() && app.sum() == 34u;
      }
    } catch (const util::ContractViolation&) {
      ok = false;
    }
    return ok;
  };

  bool safe_all_ok = true;
  int unsafe_failures = 0;
  for (auto& named : sim::standard_schedulers(4)) {
    safe_all_ok = safe_all_ok && run(*named.scheduler, false);
    named.scheduler->reset();
    if (!run(*named.scheduler, true)) ++unsafe_failures;
  }
  EXPECT_TRUE(safe_all_ok);
  EXPECT_GT(unsafe_failures, 0);
}

}  // namespace
}  // namespace colex::colib
