#include <gtest/gtest.h>

#include <memory>

#include "colex.hpp"

namespace colex::sim {
namespace {

/// Sends one pulse from `out` at start; counts everything it receives.
class SendOnce final : public PulseAutomaton {
 public:
  explicit SendOnce(Port out) : out_(out) {}
  void start(PulseContext& ctx) override { ctx.send(out_); }
  void react(PulseContext& ctx) override {
    while (ctx.recv_pulse(Port::p0)) ++received_[0];
    while (ctx.recv_pulse(Port::p1)) ++received_[1];
  }
  std::unique_ptr<PulseAutomaton> clone() const override {
    return std::make_unique<SendOnce>(*this);
  }
  int received(Port p) const { return received_[index(p)]; }

 private:
  Port out_;
  int received_[2] = {0, 0};
};

/// Forwards pulses from each port out the opposite port, up to a hop budget.
class Relay final : public PulseAutomaton {
 public:
  explicit Relay(int budget) : budget_(budget) {}
  void start(PulseContext&) override {}
  void react(PulseContext& ctx) override {
    for (Port in : {Port::p0, Port::p1}) {
      while (ctx.recv_pulse(in)) {
        ++consumed_;
        if (budget_ > 0) {
          --budget_;
          ctx.send(opposite(in));
        }
      }
    }
  }
  std::unique_ptr<PulseAutomaton> clone() const override {
    return std::make_unique<Relay>(*this);
  }
  int consumed() const { return consumed_; }

 private:
  int budget_;
  int consumed_ = 0;
};

/// Never consumes anything: its inbox fills up and the run stalls.
class Sink final : public PulseAutomaton {
 public:
  void start(PulseContext&) override {}
  void react(PulseContext&) override {}
  std::unique_ptr<PulseAutomaton> clone() const override {
    return std::make_unique<Sink>(*this);
  }
};

/// Terminates immediately after start (used to exercise the violation
/// accounting for deliveries to terminated nodes).
class InstantTerminator final : public PulseAutomaton {
 public:
  void start(PulseContext&) override { done_ = true; }
  void react(PulseContext&) override {}
  bool terminated() const override { return done_; }
  std::unique_ptr<PulseAutomaton> clone() const override {
    return std::make_unique<InstantTerminator>(*this);
  }

 private:
  bool done_ = false;
};

/// Sends `burst` pulses out of Port1 at start, consumes everything later.
class Burster final : public PulseAutomaton {
 public:
  explicit Burster(int burst) : burst_(burst) {}
  void start(PulseContext& ctx) override {
    for (int i = 0; i < burst_; ++i) ctx.send(Port::p1);
  }
  void react(PulseContext& ctx) override {
    while (ctx.recv_pulse(Port::p0)) ++received_;
    while (ctx.recv_pulse(Port::p1)) ++received_;
  }
  std::unique_ptr<PulseAutomaton> clone() const override {
    return std::make_unique<Burster>(*this);
  }
  int received() const { return received_; }

 private:
  int burst_;
  int received_ = 0;
};

TEST(RingWiring, OrientedPort1ReachesNextNodesPort0) {
  auto net = PulseNetwork::ring(3);
  net.set_automaton(0, std::make_unique<SendOnce>(Port::p1));
  net.set_automaton(1, std::make_unique<SendOnce>(Port::p1));
  net.set_automaton(2, std::make_unique<SendOnce>(Port::p1));
  GlobalFifoScheduler sched;
  const auto report = net.run(sched);
  EXPECT_TRUE(report.quiescent);
  EXPECT_EQ(report.sent, 3u);
  // Each node sent one CW pulse; each node received exactly one at Port0.
  for (NodeId v = 0; v < 3; ++v) {
    const auto& a = net.automaton_as<SendOnce>(v);
    EXPECT_EQ(a.received(Port::p0), 1) << "node " << v;
    EXPECT_EQ(a.received(Port::p1), 0) << "node " << v;
  }
}

TEST(RingWiring, SelfLoopSingleNode) {
  auto net = PulseNetwork::ring(1);
  net.set_automaton(0, std::make_unique<SendOnce>(Port::p1));
  GlobalFifoScheduler sched;
  const auto report = net.run(sched);
  EXPECT_TRUE(report.quiescent);
  // The pulse sent out of Port1 must come back to the node's own Port0.
  EXPECT_EQ(net.automaton_as<SendOnce>(0).received(Port::p0), 1);
  EXPECT_EQ(net.automaton_as<SendOnce>(0).received(Port::p1), 0);
}

TEST(RingWiring, TwoNodeRingHasParallelEdges) {
  auto net = PulseNetwork::ring(2);
  EXPECT_EQ(net.channel_count(), 4u);
  net.set_automaton(0, std::make_unique<SendOnce>(Port::p1));
  net.set_automaton(1, std::make_unique<SendOnce>(Port::p0));
  GlobalFifoScheduler sched;
  net.run(sched);
  // Node 0 sent CW (edge 0) -> node 1's Port0. Node 1 sent out its Port0,
  // which is attached to edge 0 as well -> node 0's Port1.
  EXPECT_EQ(net.automaton_as<SendOnce>(1).received(Port::p0), 1);
  EXPECT_EQ(net.automaton_as<SendOnce>(0).received(Port::p1), 1);
}

TEST(RingWiring, PortFlipSwapsLabels) {
  // Node 1 is flipped: the CW pulse from node 0 arrives at node 1's Port1.
  auto net = PulseNetwork::ring(3, {false, true, false});
  net.set_automaton(0, std::make_unique<SendOnce>(Port::p1));
  net.set_automaton(1, std::make_unique<Sink>());
  net.set_automaton(2, std::make_unique<Sink>());
  GlobalFifoScheduler sched;
  net.run(sched);
  EXPECT_EQ(net.inbox_size(1, Port::p1), 1u);
  EXPECT_EQ(net.inbox_size(1, Port::p0), 0u);
}

TEST(RingWiring, FlippedNodeSendsBackwardsOnPort1) {
  // Node 1 flipped: its Port1 is attached to the edge toward node 0.
  auto net = PulseNetwork::ring(3, {false, true, false});
  net.set_automaton(0, std::make_unique<Sink>());
  net.set_automaton(1, std::make_unique<SendOnce>(Port::p1));
  net.set_automaton(2, std::make_unique<Sink>());
  GlobalFifoScheduler sched;
  net.run(sched);
  EXPECT_EQ(net.inbox_size(0, Port::p1), 1u);  // arrived back at node 0
  EXPECT_EQ(net.inbox_size(2, Port::p0), 0u);
}

TEST(RingWiring, RejectsZeroNodes) {
  EXPECT_THROW(PulseNetwork::ring(0), util::ContractViolation);
}

TEST(RingWiring, RejectsWrongFlipVectorSize) {
  EXPECT_THROW(PulseNetwork::ring(3, {true}), util::ContractViolation);
}

TEST(Accounting, SentInTransitConsumed) {
  auto net = PulseNetwork::ring(2);
  net.set_automaton(0, std::make_unique<Burster>(5));
  net.set_automaton(1, std::make_unique<Sink>());
  GlobalFifoScheduler sched;
  const auto report = net.run(sched);
  EXPECT_EQ(report.sent, 5u);
  EXPECT_EQ(net.total_sent(), 5u);
  EXPECT_EQ(net.in_flight(), 0u);    // all delivered into node 1's inbox
  EXPECT_EQ(net.in_transit(), 5u);   // but never consumed
  EXPECT_FALSE(report.quiescent);
  EXPECT_TRUE(report.stalled);
}

TEST(Accounting, QuiescentWhenAllConsumed) {
  auto net = PulseNetwork::ring(2);
  net.set_automaton(0, std::make_unique<Burster>(3));
  net.set_automaton(1, std::make_unique<Burster>(2));
  GlobalFifoScheduler sched;
  const auto report = net.run(sched);
  EXPECT_TRUE(report.quiescent);
  EXPECT_FALSE(report.stalled);
  EXPECT_EQ(net.in_transit(), 0u);
  EXPECT_EQ(net.automaton_as<Burster>(0).received() +
                net.automaton_as<Burster>(1).received(),
            5);
}

TEST(Accounting, RelayBudgetedForwardingTerminatesQuiescent) {
  auto net = PulseNetwork::ring(4);
  net.set_automaton(0, std::make_unique<Burster>(1));
  for (NodeId v = 1; v < 4; ++v) {
    net.set_automaton(v, std::make_unique<Relay>(10));
  }
  GlobalFifoScheduler sched;
  const auto report = net.run(sched);
  EXPECT_TRUE(report.quiescent);
  // 1 initial + up to 3 relays before returning to node 0 (which consumes).
  EXPECT_EQ(report.sent, 4u);
  EXPECT_EQ(net.automaton_as<Burster>(0).received(), 1);
}

TEST(Violations, DeliveryToTerminatedNodeIsCounted) {
  auto net = PulseNetwork::ring(2);
  net.set_automaton(0, std::make_unique<Burster>(2));
  net.set_automaton(1, std::make_unique<InstantTerminator>());
  GlobalFifoScheduler sched;
  const auto report = net.run(sched);
  EXPECT_EQ(report.deliveries_to_terminated, 2u);
  // Ignored pulses are swallowed, so the network still drains.
  EXPECT_TRUE(report.quiescent);
}

TEST(Violations, InjectFaultAddsForeignPulse) {
  auto net = PulseNetwork::ring(2);
  net.set_automaton(0, std::make_unique<Burster>(0));
  net.set_automaton(1, std::make_unique<Burster>(0));
  net.inject_fault(0);
  GlobalFifoScheduler sched;
  const auto report = net.run(sched);
  EXPECT_EQ(net.injected(), 1u);
  EXPECT_EQ(report.deliveries, 1u);
  EXPECT_EQ(net.automaton_as<Burster>(1).received(), 1);
}

TEST(Violations, DropFaultRemovesPulse) {
  auto net = PulseNetwork::ring(2);
  net.set_automaton(0, std::make_unique<Burster>(1));
  net.set_automaton(1, std::make_unique<Burster>(0));
  // Run manually: start fills channel 0, then drop before delivery.
  // Easiest deterministic route: drop right after sends by running with an
  // on_event hook is racy with starts, so instead drop after construction by
  // pre-loading the channel via inject and dropping it again.
  net.inject_fault(0);
  net.drop_fault(0);
  EXPECT_EQ(net.dropped(), 1u);
  GlobalFifoScheduler sched;
  const auto report = net.run(sched);
  // Only the Burster's own start pulse remains to be delivered.
  EXPECT_EQ(report.deliveries, 1u);
  EXPECT_TRUE(report.quiescent);
}

TEST(Runner, EventLimitIsReported) {
  // Two relays with effectively unbounded budget bounce pulses forever.
  auto net = PulseNetwork::ring(2);
  net.set_automaton(0, std::make_unique<Burster>(1));
  net.set_automaton(1, std::make_unique<Relay>(1 << 30));
  // Node 0 consumes and does not forward, so give node 0 a Relay too.
  net.set_automaton(0, std::make_unique<Relay>(1 << 30));
  net.inject_fault(0);  // seed one circulating pulse
  RunOptions opts;
  opts.max_events = 100;
  GlobalFifoScheduler sched;
  const auto report = net.run(sched, opts);
  EXPECT_TRUE(report.hit_event_limit);
  EXPECT_FALSE(report.quiescent);
}

TEST(Runner, InterleavedStartsStillDeliverEverything) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto net = PulseNetwork::ring(5);
    for (NodeId v = 0; v < 5; ++v) {
      net.set_automaton(v, std::make_unique<SendOnce>(Port::p1));
    }
    RunOptions opts;
    opts.interleave_starts = true;
    opts.interleave_seed = seed;
    GlobalFifoScheduler sched;
    const auto report = net.run(sched, opts);
    EXPECT_TRUE(report.quiescent);
    EXPECT_EQ(report.sent, 5u);
    for (NodeId v = 0; v < 5; ++v) {
      EXPECT_EQ(net.automaton_as<SendOnce>(v).received(Port::p0), 1);
    }
  }
}

TEST(Runner, OnEventFiresPerEvent) {
  auto net = PulseNetwork::ring(3);
  for (NodeId v = 0; v < 3; ++v) {
    net.set_automaton(v, std::make_unique<SendOnce>(Port::p1));
  }
  int events = 0;
  RunOptions opts;
  opts.on_event = [&events](PulseNetwork&) { ++events; };
  GlobalFifoScheduler sched;
  const auto report = net.run(sched, opts);
  EXPECT_EQ(events, 3 + 3);  // 3 starts + 3 deliveries
  EXPECT_EQ(report.deliveries, 3u);
}

TEST(Runner, OnDeliverReportsPortAndDirection) {
  auto net = PulseNetwork::ring(2);
  net.set_automaton(0, std::make_unique<SendOnce>(Port::p1));  // CW
  net.set_automaton(1, std::make_unique<SendOnce>(Port::p0));  // CCW
  std::vector<Direction> dirs;
  RunOptions opts;
  opts.on_deliver = [&dirs](NodeId, Port, Direction d) { dirs.push_back(d); };
  GlobalFifoScheduler sched;
  net.run(sched, opts);
  ASSERT_EQ(dirs.size(), 2u);
  EXPECT_EQ(dirs[0], Direction::cw);
  EXPECT_EQ(dirs[1], Direction::ccw);
}

TEST(Network, AutomatonAsRejectsWrongType) {
  auto net = PulseNetwork::ring(1);
  net.set_automaton(0, std::make_unique<Sink>());
  EXPECT_THROW(net.automaton_as<Relay>(0), util::ContractViolation);
}


// --- payload-generic behaviour (used by the baselines) ------------------

struct NumberedMsg {
  int value = 0;
};

class NumberSink final : public Automaton<NumberedMsg> {
 public:
  void start(Context<NumberedMsg>&) override {}
  void react(Context<NumberedMsg>& ctx) override {
    while (auto m = ctx.recv(Port::p0)) received_.push_back(m->value);
  }
  std::unique_ptr<Automaton<NumberedMsg>> clone() const override {
    return std::make_unique<NumberSink>(*this);
  }
  const std::vector<int>& received() const { return received_; }

 private:
  std::vector<int> received_;
};

class NumberSource final : public Automaton<NumberedMsg> {
 public:
  explicit NumberSource(int count) : count_(count) {}
  void start(Context<NumberedMsg>& ctx) override {
    for (int i = 0; i < count_; ++i) ctx.send(Port::p1, NumberedMsg{i});
  }
  void react(Context<NumberedMsg>& ctx) override {
    while (ctx.recv(Port::p0)) {
    }
  }
  std::unique_ptr<Automaton<NumberedMsg>> clone() const override {
    return std::make_unique<NumberSource>(*this);
  }

 private:
  int count_;
};

TEST(TypedPayloads, ContentSurvivesAndChannelsAreFifo) {
  // The same network machinery with content-carrying payloads: values must
  // arrive intact and in per-channel FIFO order under every scheduler.
  for (auto& named : standard_schedulers(2)) {
    auto net = Network<NumberedMsg>::ring(2);
    net.set_automaton(0, std::make_unique<NumberSource>(10));
    net.set_automaton(1, std::make_unique<NumberSink>());
    const auto report = net.run(*named.scheduler);
    ASSERT_TRUE(report.quiescent) << named.name;
    const auto& got = net.automaton_as<NumberSink>(1).received();
    ASSERT_EQ(got.size(), 10u) << named.name;
    for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i) << named.name;
  }
}

TEST(TypedPayloads, UmbrellaHeaderCompiles) {
  // colex.hpp must pull in the whole public API (checked by the include at
  // the top of this translation unit being replaced transitively; here we
  // just exercise a couple of symbols from distant modules).
  EXPECT_EQ(co::theorem1_pulses(2, 2), 10u);
  EXPECT_EQ(colib::encode_u64(5).size(), 3u);
}

}  // namespace
}  // namespace colex::sim
