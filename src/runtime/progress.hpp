// Bounded progress history for stall watchdogs.
//
// The ThreadRing monitor pioneered the idea: sample a cheap scalar progress
// indicator (global consumed count) on a fixed cadence, keep the last N
// samples with a human-readable annotation, and when a timeout fires the
// retained window answers the first post-mortem question — "was the run dead
// all along or did it die at t=X?". The soak harness reuses the same shape
// per shard, where a flat tail over the observation window flags a shard
// whose elections stopped completing.
//
// ProgressTracker is deliberately tiny and thread-safe: any thread may
// record(), any thread may read. Recording is a mutex-guarded deque push —
// watchdog cadence is tens of milliseconds, so contention is irrelevant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/contracts.hpp"

namespace colex::rt {

class ProgressTracker {
 public:
  /// `depth` is the number of retained samples; older samples fall off.
  explicit ProgressTracker(std::size_t depth = 16) : depth_(depth) {
    COLEX_EXPECTS(depth >= 1);
  }

  std::size_t depth() const { return depth_; }

  /// Appends one sample: `value` is the scalar progress indicator the stall
  /// predicate compares, `text` the annotation history() reports.
  void record(std::uint64_t value, std::string text) {
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.push_back(Sample{value, std::move(text)});
    if (samples_.size() > depth_) samples_.pop_front();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_.size();
  }

  /// Retained sample annotations, oldest first.
  std::vector<std::string> history() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(samples_.size());
    for (const auto& s : samples_) out.push_back(s.text);
    return out;
  }

  /// Stall signal: true iff at least `window` samples are retained and the
  /// last `window` recorded values are all identical — the progress
  /// indicator has been flat across the whole observation window. Requires
  /// 1 <= window <= depth().
  bool stalled_tail(std::size_t window) const {
    COLEX_EXPECTS(window >= 1 && window <= depth_);
    std::lock_guard<std::mutex> lock(mutex_);
    if (samples_.size() < window) return false;
    const std::uint64_t last = samples_.back().value;
    for (std::size_t i = samples_.size() - window; i < samples_.size(); ++i) {
      if (samples_[i].value != last) return false;
    }
    return true;
  }

 private:
  struct Sample {
    std::uint64_t value;
    std::string text;
  };

  mutable std::mutex mutex_;
  std::size_t depth_;
  std::deque<Sample> samples_;
};

}  // namespace colex::rt
