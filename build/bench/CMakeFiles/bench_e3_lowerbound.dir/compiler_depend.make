# Empty compiler generated dependencies file for bench_e3_lowerbound.
# This may be replaced when dependencies are built.
