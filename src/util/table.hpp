// Fixed-width console table printer for the benchmark harness, so every
// bench binary reports its experiment in the same readable format.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace colex::util {

/// Collects rows of string cells and prints them with aligned columns.
/// Usage:
///   Table t({"n", "IDmax", "pulses", "formula"});
///   t.add_row({"8", "20", "328", "328"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

  /// Formatting helpers for cells.
  static std::string num(std::uint64_t v);
  static std::string num(std::int64_t v);
  static std::string fixed(double v, int digits = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace colex::util
