// Trace + metrics export: turn a recorded sim::TraceEvent stream into
// machine-readable artifacts —
//
//  * JSONL (colex-trace-v1): one self-describing JSON object per line; a
//    leading meta line carries the ring shape (n, port flips) and the pulse
//    bound inputs (algorithm, IDmax), an optional trailing metrics line
//    embeds a Registry snapshot. This is the format tools/colex_inspect.cpp
//    loads back, and load_jsonl() below round-trips it.
//
//  * Chrome trace_event JSON: one track (tid) per ring node under a single
//    process, with every pulse rendered as a complete span from its send to
//    its delivery (FIFO-matched per channel, exactly like the trace audit)
//    and faults/crash/recover as instant events. Opens directly in
//    chrome://tracing or Perfetto.
//
// Timestamps are the logical event-stream indices (interpreted as
// microseconds by the viewers): the adversarial simulator has no wall
// clock, and stream position is the only causally meaningful time base.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/trace.hpp"

namespace colex::obs {

/// Run context attached to an exported trace; everything colex-inspect
/// needs to audit the stream and check the paper's pulse bounds. `n == 0`
/// means unknown shape (no audit, no bound check).
struct TraceMeta {
  std::string algorithm;            ///< e.g. "alg2"; free-form
  std::size_t n = 0;                ///< ring size
  std::uint64_t id_max = 0;         ///< max assigned ID (0 = unknown)
  std::vector<bool> port_flips;     ///< per-node port scrambling; empty = oriented

  /// Theorem 1/2 pulse bound n(2*IDmax+1), or 0 when inputs are unknown.
  std::uint64_t pulse_bound() const {
    return (n == 0 || id_max == 0) ? 0 : n * (2 * id_max + 1);
  }
};

// --- JSONL ----------------------------------------------------------------

void write_jsonl(std::ostream& os, const std::vector<sim::TraceEvent>& events,
                 const TraceMeta& meta, const Registry* metrics = nullptr);

std::string to_jsonl(const std::vector<sim::TraceEvent>& events,
                     const TraceMeta& meta, const Registry* metrics = nullptr);

struct LoadedTrace {
  TraceMeta meta;
  std::vector<sim::TraceEvent> events;
  std::string metrics_json;  ///< raw snapshot object, empty if absent
};

/// Parses a colex-trace-v1 JSONL stream back into events + meta. Throws
/// util::ContractViolation on malformed input.
LoadedTrace load_jsonl(std::istream& is);
LoadedTrace load_jsonl_file(const std::string& path);

// --- Chrome trace_event ---------------------------------------------------

void write_chrome_trace(std::ostream& os,
                        const std::vector<sim::TraceEvent>& events,
                        const TraceMeta& meta,
                        const Registry* metrics = nullptr);

std::string to_chrome_trace(const std::vector<sim::TraceEvent>& events,
                            const TraceMeta& meta,
                            const Registry* metrics = nullptr);

}  // namespace colex::obs
