file(REMOVE_RECURSE
  "CMakeFiles/colex_runtime.dir/automaton_host.cpp.o"
  "CMakeFiles/colex_runtime.dir/automaton_host.cpp.o.d"
  "CMakeFiles/colex_runtime.dir/blocking_algs.cpp.o"
  "CMakeFiles/colex_runtime.dir/blocking_algs.cpp.o.d"
  "CMakeFiles/colex_runtime.dir/thread_ring.cpp.o"
  "CMakeFiles/colex_runtime.dir/thread_ring.cpp.o.d"
  "libcolex_runtime.a"
  "libcolex_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colex_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
