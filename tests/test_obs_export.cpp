#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "co/alg2.hpp"
#include "co/election.hpp"
#include "obs/export.hpp"
#include "obs/instrument.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"
#include "util/contracts.hpp"
#include "util/ids.hpp"

namespace colex::obs {
namespace {

using sim::TraceEvent;
using Kind = TraceEvent::Kind;

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (auto at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

TEST(JsonlRoundTrip, EveryEventKindSurvives) {
  std::vector<TraceEvent> events;
  const Kind kinds[] = {Kind::send,          Kind::deliver,
                        Kind::fault_drop,    Kind::fault_duplicate,
                        Kind::fault_spurious, Kind::fault_crash,
                        Kind::fault_recover, Kind::fault_corrupt};
  std::uint64_t index = 0;
  for (const Kind kind : kinds) {
    events.push_back(TraceEvent{kind, index % 3, sim::Port::p1,
                                sim::Direction::ccw, index});
    ++index;
  }
  TraceMeta meta;
  meta.algorithm = "alg2";
  meta.n = 3;
  meta.id_max = 5;
  meta.port_flips = {true, false, true};

  const LoadedTrace loaded = [&] {
    std::istringstream in(to_jsonl(events, meta));
    return load_jsonl(in);
  }();
  EXPECT_EQ(loaded.events, events);
  EXPECT_EQ(loaded.meta.algorithm, "alg2");
  EXPECT_EQ(loaded.meta.n, 3u);
  EXPECT_EQ(loaded.meta.id_max, 5u);
  EXPECT_EQ(loaded.meta.port_flips, meta.port_flips);
  EXPECT_EQ(loaded.meta.pulse_bound(), 3u * (2u * 5u + 1u));
  EXPECT_TRUE(loaded.metrics_json.empty());
}

TEST(JsonlRoundTrip, MetricsLineSurvives) {
  Registry metrics;
  metrics.counter("net.sends").inc(7);
  TraceMeta meta;
  meta.n = 2;
  std::istringstream in(to_jsonl({}, meta, &metrics));
  const LoadedTrace loaded = load_jsonl(in);
  EXPECT_EQ(loaded.metrics_json, metrics.to_json());
}

TEST(JsonlLoad, RequiresMetaLine) {
  std::istringstream in(
      "{\"type\":\"event\",\"index\":0,\"kind\":\"send\",\"node\":0,"
      "\"port\":0,\"dir\":\"cw\"}\n");
  EXPECT_THROW(load_jsonl(in), util::ContractViolation);
}

TEST(JsonlLoad, RejectsWrongFormatTag) {
  std::istringstream in(
      "{\"type\":\"meta\",\"format\":\"not-colex\",\"n\":2}\n");
  EXPECT_THROW(load_jsonl(in), util::ContractViolation);
}

TEST(JsonlLoad, SkipsUnknownLineTypes) {
  std::istringstream in(
      "{\"type\":\"meta\",\"format\":\"colex-trace-v1\",\"n\":1,"
      "\"id_max\":0,\"port_flips\":[]}\n"
      "{\"type\":\"future-extension\",\"whatever\":true}\n");
  const LoadedTrace loaded = load_jsonl(in);
  EXPECT_EQ(loaded.meta.n, 1u);
  EXPECT_TRUE(loaded.events.empty());
}

// Chrome-trace shape on a hand-built 2-ring stream covering every kind.
// Oriented wiring: node0 sends cw out of p1 into node1's p0, and vice versa.
TEST(ChromeTrace, EveryKindRendersOnTheRightTrack) {
  TraceMeta meta;
  meta.algorithm = "unit";
  meta.n = 2;
  std::vector<TraceEvent> events{
      {Kind::send, 0, sim::Port::p1, sim::Direction::cw, 0},
      {Kind::fault_duplicate, 0, sim::Port::p1, sim::Direction::cw, 1},
      {Kind::deliver, 1, sim::Port::p0, sim::Direction::cw, 2},
      {Kind::deliver, 1, sim::Port::p0, sim::Direction::cw, 3},
      {Kind::fault_spurious, 1, sim::Port::p1, sim::Direction::ccw, 4},
      {Kind::fault_drop, 1, sim::Port::p1, sim::Direction::ccw, 5},
      {Kind::fault_crash, 0, sim::Port::p0, sim::Direction::cw, 6},
      {Kind::fault_recover, 0, sim::Port::p0, sim::Direction::cw, 7},
      {Kind::fault_corrupt, 1, sim::Port::p0, sim::Direction::cw, 8},
  };
  const std::string json = to_chrome_trace(events, meta);

  // One process, one named track per node.
  EXPECT_EQ(count_occurrences(json, "\"name\":\"process_name\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"thread_name\""), 2u);
  EXPECT_NE(json.find("\"name\":\"node 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node 1\""), std::string::npos);

  // The send at ts=0 and its duplicate at ts=1 both complete as spans on
  // the SENDER's track (tid 0), with ts/dur from the stream indices.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_NE(json.find("\"name\":\"pulse\",\"ph\":\"X\",\"ts\":0,\"dur\":2,"
                      "\"pid\":0,\"tid\":0"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"pulse (duplicated)\",\"ph\":\"X\",\"ts\":1,"
                      "\"dur\":2,\"pid\":0,\"tid\":0"),
            std::string::npos);
  EXPECT_NE(json.find("\"to_node\":1"), std::string::npos);

  // Faults are instants pinned to their stream position and faulted node.
  EXPECT_NE(json.find("\"name\":\"fault-duplicate\",\"ph\":\"i\",\"s\":\"t\","
                      "\"ts\":1,\"pid\":0,\"tid\":0"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fault-spurious\",\"ph\":\"i\",\"s\":\"t\","
                      "\"ts\":4,\"pid\":0,\"tid\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fault-drop\",\"ph\":\"i\",\"s\":\"t\","
                      "\"ts\":5,\"pid\":0,\"tid\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fault-crash\",\"ph\":\"i\",\"s\":\"t\","
                      "\"ts\":6,\"pid\":0,\"tid\":0"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fault-recover\",\"ph\":\"i\",\"s\":\"t\","
                      "\"ts\":7,\"pid\":0,\"tid\":0"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fault-corrupt\",\"ph\":\"i\",\"s\":\"t\","
                      "\"ts\":8,\"pid\":0,\"tid\":1"),
            std::string::npos);
  // The drop removed the spurious pulse, so nothing is left in flight.
  EXPECT_EQ(json.find("in flight at end"), std::string::npos);
}

TEST(ChromeTrace, UnmatchedDeliveryAndLeftoverSendAreVisible) {
  TraceMeta meta;
  meta.n = 2;
  std::vector<TraceEvent> events{
      {Kind::deliver, 1, sim::Port::p0, sim::Direction::cw, 0},
      {Kind::send, 1, sim::Port::p1, sim::Direction::cw, 1},
  };
  const std::string json = to_chrome_trace(events, meta);
  EXPECT_NE(json.find("deliver (unmatched)"), std::string::npos);
  EXPECT_NE(json.find("in flight at end"), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 0u);
}

TEST(ChromeTrace, UnknownShapeFallsBackToInstants) {
  TraceMeta meta;  // n = 0: no wiring, no span matching
  std::vector<TraceEvent> events{
      {Kind::send, 5, sim::Port::p1, sim::Direction::cw, 0},
      {Kind::deliver, 6, sim::Port::p0, sim::Direction::cw, 1},
  };
  const std::string json = to_chrome_trace(events, meta);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 0u);
  EXPECT_NE(json.find("\"name\":\"send\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"deliver\""), std::string::npos);
  // Tracks were derived from the highest node mentioned.
  EXPECT_NE(json.find("\"name\":\"node 6\""), std::string::npos);
}

// End-to-end acceptance path: an instrumented Algorithm 2 run on n=4 is
// exported, loaded back, and the Theorem 1 pulse bound is checked
// programmatically against the recorded stream.
TEST(ObservedRun, Alg2TraceRespectsTheorem1Bound) {
  constexpr std::size_t n = 4;
  const auto ids = util::shuffled(util::dense_ids(n), 3);
  std::uint64_t id_max = 0;
  for (const auto id : ids) id_max = std::max(id_max, id);

  auto net = sim::PulseNetwork::ring(n);
  for (sim::NodeId v = 0; v < n; ++v) {
    net.set_automaton(v, std::make_unique<co::Alg2Terminating>(ids[v]));
  }
  sim::RunOptions opts;
  sim::TraceRecorder trace;
  trace.attach(net, opts);
  Registry metrics;
  PulseNetworkInstrumentation instr(metrics, ObsOptions{.enabled = true});
  instr.attach(net, opts);
  sim::RandomScheduler scheduler(17);
  const auto report = net.run(scheduler, opts);
  instr.finish(net);
  ASSERT_TRUE(report.quiescent && report.all_terminated);

  TraceMeta meta;
  meta.algorithm = "alg2";
  meta.n = n;
  meta.id_max = id_max;

  std::istringstream in(to_jsonl(trace.events(), meta, &metrics));
  const LoadedTrace loaded = load_jsonl(in);
  EXPECT_EQ(loaded.events, trace.events());

  // Theorem 1: pulses <= n(2*IDmax+1), counted from the loaded stream.
  std::uint64_t sends = 0;
  for (const auto& e : loaded.events) {
    if (e.kind == Kind::send) ++sends;
  }
  ASSERT_NE(loaded.meta.pulse_bound(), 0u);
  EXPECT_LE(sends, loaded.meta.pulse_bound());
  EXPECT_EQ(sends, co::theorem1_pulses(n, id_max));  // Theorem 1 is exact
  EXPECT_EQ(sends, report.sent);

  // The instrumentation agrees with the network's ground truth...
  EXPECT_EQ(metrics.counter("net.sends").value(), report.sent);
  EXPECT_EQ(metrics.counter("net.deliveries").value(), report.sent);
  // ...and the embedded snapshot round-tripped bit-exactly.
  EXPECT_EQ(loaded.metrics_json, metrics.to_json());

  // The Chrome export of the same run completes every pulse as a span.
  const std::string chrome = to_chrome_trace(loaded.events, loaded.meta);
  EXPECT_EQ(count_occurrences(chrome, "\"ph\":\"X\""), sends);
  EXPECT_EQ(count_occurrences(chrome, "\"name\":\"thread_name\""), n);
  EXPECT_EQ(chrome.find("deliver (unmatched)"), std::string::npos);
}

}  // namespace
}  // namespace colex::obs
