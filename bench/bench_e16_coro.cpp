// E16 — coroutine event-loop runtime: million-node rings in one process.
// ThreadRing's one-OS-thread-per-node design caps real-concurrency
// elections at a few thousand nodes; the coroutine executor (src/coro)
// runs each node as a coroutine over lock-free SPSC pulse channels and a
// work-stealing scheduler, lifting the same blocking-style transcriptions
// to rings of 10^5–10^6 nodes. Measured here, head to head:
//
//  * ThreadRing capacity sweep — Algorithm 1 with IDmax=2 (exactly 2n
//    pulses), ring size doubling until thread creation fails or a run
//    blows the per-size time budget. That last completed size is the
//    baseline's max practical ring.
//  * Coroutine sweep — the identical workload at n = 10^4, 10^5, 10^6.
//  * The acceptance election — Algorithm 2, unique dense IDs, at n = 10^4
//    (smoke) or n = 10^5 (full): n(2·IDmax+1) ≈ 2·10^10 pulses for the
//    full run, completed in one process with the exact Theorem 1 count.
//
// Gates (all recorded in BENCH_E16.json): the coroutine runtime reaches
// ≥10× ThreadRing's max ring size (smoke: ≥2×), at ≥2× its nodes/sec, and
// the Algorithm 2 election completes with the exact pulse count and one
// leader. Peak RSS is sampled (getrusage ru_maxrss) after each phase;
// ThreadRing runs first so its peak is unpolluted, and the coro phases
// report the running process maximum (equal to their own peak whenever
// they are the high-water mark).
//
// Flags: --smoke (CI-sized: sweep capped, Alg 2 at 10^4), --workers N
// (executor workers, default 1), --json <dir> (redirect BENCH_E16.json).
#include <sys/resource.h>

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "coro/run.hpp"
#include "runtime/blocking_algs.hpp"
#include "util/table.hpp"

namespace {

using namespace colex;

/// Process peak RSS in MiB (Linux ru_maxrss is KiB).
double peak_rss_mb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

/// IDmax=2 ring for the capacity sweeps: Corollary 13 gives exactly 2n
/// pulses, so the work per node is constant and nodes/sec is comparable
/// across sizes and runtimes.
std::vector<std::uint64_t> sweep_ids(std::size_t n) {
  std::vector<std::uint64_t> ids(n, 1);
  ids[n / 2] = 2;
  return ids;
}

struct SweepRow {
  std::size_t n = 0;
  bool completed = false;
  bool exact = false;  ///< pulses == 2n and exactly one leader
  std::uint64_t pulses = 0;
  double seconds = 0.0;
  double nodes_per_sec = 0.0;
  double pulses_per_sec = 0.0;
};

SweepRow row_from(std::size_t n, bool completed, std::size_t leaders,
                  std::uint64_t pulses, double seconds) {
  SweepRow row;
  row.n = n;
  row.completed = completed;
  row.pulses = pulses;
  row.seconds = seconds;
  row.exact = completed && leaders == 1 && pulses == 2 * n;
  if (completed && seconds > 0.0) {
    row.nodes_per_sec = static_cast<double>(n) / seconds;
    row.pulses_per_sec = static_cast<double>(pulses) / seconds;
  }
  return row;
}

/// True iff the process can hold `count` simultaneous parked threads.
/// ThreadRing spawns one thread per node and cannot survive a failed
/// std::thread constructor (joinable threads unwinding -> std::terminate),
/// so the capacity wall — vm.max_map_count allows ~32k thread stacks here —
/// must be probed where the failure is a catchable exception. The probe
/// threads are all alive at once, then released and joined, so reaching
/// `count` proves the real run's spawn loop will too.
bool can_spawn(std::size_t count) {
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  std::vector<std::thread> pool;
  pool.reserve(count);
  bool ok = true;
  try {
    for (std::size_t i = 0; i < count; ++i) {
      pool.emplace_back([&m, &cv, &release] {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&release] { return release; });
      });
    }
  } catch (const std::exception& e) {
    ok = false;
    std::cout << "threadring capacity probe failed at thread " << pool.size()
              << " of " << count << ": " << e.what() << "\n";
  }
  {
    const std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  for (std::thread& t : pool) t.join();
  return ok;
}

SweepRow threadring_sweep_run(std::size_t n, std::uint64_t timeout_ms) {
  // +4: the monitor thread plus slack for the runtime's own helpers.
  if (!can_spawn(n + 4)) {
    // Thread creation failing IS the capacity measurement.
    return row_from(n, false, 0, 0, 0.0);
  }
  const auto ids = sweep_ids(n);
  bench::WallTimer timer;
  const rt::ThreadRunResult r =
      rt::run_on_threads(ids, {}, rt::ThreadAlg::alg1, timeout_ms);
  return row_from(n, r.completed, r.leader_count, r.pulses, timer.seconds());
}

SweepRow coro_sweep_run(std::size_t n, std::size_t workers,
                        std::uint64_t timeout_ms) {
  const auto ids = sweep_ids(n);
  coro::CoroRunOptions options;
  options.workers = workers;
  options.timeout_ms = timeout_ms;
  bench::WallTimer timer;
  const coro::CoroRunResult r =
      coro::run_on_coro(ids, {}, rt::ThreadAlg::alg1, options);
  return row_from(n, r.completed, r.leader_count, r.pulses, timer.seconds());
}

bench::Json json_row(const char* runtime, const SweepRow& row) {
  bench::Json j = bench::Json::object();
  j.set("runtime", runtime)
      .set("n", static_cast<std::uint64_t>(row.n))
      .set("completed", row.completed)
      .set("exact", row.exact)
      .set("pulses", row.pulses)
      .set("seconds", row.seconds)
      .set("nodes_per_sec", row.nodes_per_sec)
      .set("pulses_per_sec", row.pulses_per_sec);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t workers = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::atoll(argv[++i]));
    }
  }

  bench::banner(
      "E16 — coroutine runtime: million-node rings in one process",
      "each ring node as a coroutine over lock-free SPSC pulse channels "
      "runs the same blocking-style transcriptions as ThreadRing at 10x+ "
      "the ring size with exact Theorem 1 / Corollary 13 pulse counts");

  bench::JsonReport report("E16", "coroutine executor vs ThreadRing");
  bench::apply_json_flag(report, argc, argv);
  bench::WallTimer total;

  util::Table table({"runtime", "n", "pulses", "seconds", "nodes/s",
                     "Mpulses/s", "exact"});
  auto add_table_row = [&table](const char* runtime, const SweepRow& row) {
    table.add_row({runtime, std::to_string(row.n), std::to_string(row.pulses),
                   util::Table::fixed(row.seconds, 3),
                   util::Table::fixed(row.nodes_per_sec, 0),
                   util::Table::fixed(row.pulses_per_sec / 1e6, 2),
                   row.exact ? "yes" : "NO"});
  };

  // --- Phase 1: ThreadRing capacity sweep (runs first so its peak RSS is
  // unpolluted by the million-node coroutine arena). --------------------
  const std::size_t tr_cap = smoke ? 4096 : 32768;
  const double tr_budget_seconds = smoke ? 5.0 : 30.0;
  std::vector<SweepRow> tr_rows;
  SweepRow tr_best;
  for (std::size_t n = 1024; n <= tr_cap; n *= 2) {
    const SweepRow row = threadring_sweep_run(n, /*timeout_ms=*/120'000);
    add_table_row("threadring", row);
    tr_rows.push_back(row);
    if (!row.exact) break;
    tr_best = row;
    if (row.seconds > tr_budget_seconds) break;  // next doubling won't fit
  }
  const double tr_peak_rss = peak_rss_mb();

  // --- Phase 2: coroutine sweep over the same workload. ----------------
  const std::vector<std::size_t> coro_sizes =
      smoke ? std::vector<std::size_t>{10'000}
            : std::vector<std::size_t>{10'000, 100'000, 1'000'000};
  std::vector<SweepRow> coro_rows;
  SweepRow coro_best;
  for (const std::size_t n : coro_sizes) {
    const SweepRow row = coro_sweep_run(n, workers, /*timeout_ms=*/600'000);
    add_table_row("coro", row);
    coro_rows.push_back(row);
    if (row.exact) coro_best = row;
  }
  const double coro_peak_rss = peak_rss_mb();

  // --- Phase 3: the acceptance election — Algorithm 2, unique dense IDs,
  // exactly n(2·IDmax+1) pulses end to end in one process. --------------
  const std::size_t alg2_n = smoke ? 10'000 : 100'000;
  std::vector<std::uint64_t> alg2_ids(alg2_n);
  std::iota(alg2_ids.begin(), alg2_ids.end(), 1);
  const std::uint64_t alg2_expected =
      static_cast<std::uint64_t>(alg2_n) *
      (2 * static_cast<std::uint64_t>(alg2_n) + 1);
  coro::CoroRunOptions alg2_options;
  alg2_options.workers = workers;
  alg2_options.timeout_ms = 3'600'000;
  bench::WallTimer alg2_timer;
  const coro::CoroRunResult alg2 =
      coro::run_on_coro(alg2_ids, {}, rt::ThreadAlg::alg2, alg2_options);
  const double alg2_seconds = alg2_timer.seconds();
  const bool alg2_ok = alg2.completed && alg2.leader_count == 1 &&
                       alg2.leader == alg2_n - 1 &&
                       alg2.pulses == alg2_expected;
  table.add_row({"coro-alg2", std::to_string(alg2_n),
                 std::to_string(alg2.pulses),
                 util::Table::fixed(alg2_seconds, 3),
                 util::Table::fixed(static_cast<double>(alg2_n) / alg2_seconds, 0),
                 util::Table::fixed(static_cast<double>(alg2.pulses) / alg2_seconds / 1e6, 2),
                 alg2_ok ? "yes" : "NO"});
  const double final_peak_rss = peak_rss_mb();
  table.print(std::cout);

  // --- Gates. ----------------------------------------------------------
  const double capacity_factor =
      tr_best.n > 0 ? static_cast<double>(coro_best.n) /
                          static_cast<double>(tr_best.n)
                    : 0.0;
  const double speed_factor =
      tr_best.nodes_per_sec > 0.0
          ? coro_best.nodes_per_sec / tr_best.nodes_per_sec
          : 0.0;
  const double required_capacity = smoke ? 2.0 : 10.0;
  const bool capacity_ok = capacity_factor >= required_capacity;
  const bool speed_ok = speed_factor >= 2.0;
  bool sweeps_exact = coro_best.exact && tr_best.exact;
  for (const SweepRow& row : coro_rows) sweeps_exact = sweeps_exact && row.exact;

  std::cout << "\nthreadring max practical ring: " << tr_best.n << " nodes ("
            << util::Table::fixed(tr_best.nodes_per_sec, 0)
            << " nodes/s, peak RSS " << util::Table::fixed(tr_peak_rss, 1)
            << " MiB)\n"
            << "coro max ring: " << coro_best.n << " nodes ("
            << util::Table::fixed(coro_best.nodes_per_sec, 0)
            << " nodes/s, process peak RSS "
            << util::Table::fixed(coro_peak_rss, 1) << " MiB)\n"
            << "capacity factor: " << util::Table::fixed(capacity_factor, 1)
            << "x (gate >= " << required_capacity << "x), nodes/sec factor: "
            << util::Table::fixed(speed_factor, 1) << "x (gate >= 2x)\n"
            << "alg2 n=" << alg2_n << ": "
            << (alg2_ok ? "completed exactly" : "FAILED") << " ("
            << alg2.pulses << " pulses, "
            << util::Table::fixed(alg2_seconds, 1) << "s)\n";

  for (const SweepRow& row : tr_rows) report.add_result(json_row("threadring", row));
  for (const SweepRow& row : coro_rows) report.add_result(json_row("coro", row));
  bench::Json alg2_row = bench::Json::object();
  alg2_row.set("runtime", "coro")
      .set("algorithm", "alg2")
      .set("n", static_cast<std::uint64_t>(alg2_n))
      .set("completed", alg2.completed)
      .set("exact", alg2_ok)
      .set("pulses", alg2.pulses)
      .set("expected_pulses", alg2_expected)
      .set("seconds", alg2_seconds)
      .set("pulses_per_sec", static_cast<double>(alg2.pulses) / alg2_seconds)
      .set("steals", alg2.stats.steals)
      .set("parks", alg2.stats.parks)
      .set("yields", alg2.stats.yields);
  report.add_result(std::move(alg2_row));

  report.root()
      .set("smoke", smoke)
      .set("workers", static_cast<std::uint64_t>(workers))
      .set("threadring_max_n", static_cast<std::uint64_t>(tr_best.n))
      .set("threadring_nodes_per_sec", tr_best.nodes_per_sec)
      .set("threadring_peak_rss_mb", tr_peak_rss)
      .set("coro_max_n", static_cast<std::uint64_t>(coro_best.n))
      .set("coro_nodes_per_sec", coro_best.nodes_per_sec)
      .set("coro_peak_rss_mb", coro_peak_rss)
      .set("final_peak_rss_mb", final_peak_rss)
      .set("capacity_factor", capacity_factor)
      .set("required_capacity_factor", required_capacity)
      .set("nodes_per_sec_factor", speed_factor)
      .set("alg2_n", static_cast<std::uint64_t>(alg2_n))
      .set("alg2_ok", alg2_ok)
      .set("gate_capacity_ok", capacity_ok)
      .set("gate_speed_ok", speed_ok)
      .set("gate_ok", capacity_ok && speed_ok && sweeps_exact && alg2_ok);
  report.finish(total.seconds());

  const bool ok = capacity_ok && speed_ok && sweeps_exact && alg2_ok;
  bench::verdict(
      ok,
      "the coroutine executor ran the same transcriptions at " +
          util::Table::fixed(capacity_factor, 1) +
          "x ThreadRing's max ring size and " +
          util::Table::fixed(speed_factor, 1) +
          "x its nodes/sec, every election landing the exact paper pulse "
          "count with a unique max-ID leader");
  return ok ? 0 : 1;
}
