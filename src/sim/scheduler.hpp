// Asynchronous delivery schedulers.
//
// The network model allows unbounded-but-finite delays and arbitrary
// interleaving of deliveries across channels (per-channel order is FIFO,
// which is without loss of generality because pulses are indistinguishable).
// A Scheduler embodies one adversary: at every step it inspects the channels
// that have pulses in flight and decides which channel delivers next.
//
// Schedulers are intentionally payload-agnostic: in a fully defective
// network the adversary cannot read message content either.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "util/rng.hpp"

namespace colex::sim {

/// Snapshot of one nonempty channel, offered to the scheduler.
struct ChannelView {
  std::size_t channel = 0;       ///< channel id within the network
  std::size_t pending = 0;       ///< pulses in flight on this channel
  std::uint64_t head_seq = 0;    ///< global send-sequence number of the head
  std::uint64_t head_stamp = 0;  ///< event step at which the head was sent
  Direction dir = Direction::cw; ///< physical direction (analysis-only)
};

/// Strategy interface: choose the channel that delivers next.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// `pending` is nonempty and lists every channel with pulses in flight.
  /// Must return the `channel` id of one of the entries.
  virtual std::size_t pick(const std::vector<ChannelView>& pending) = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;

  /// Reset internal state so the scheduler can drive a fresh run.
  virtual void reset() {}
};

/// Delivers pulses in global send order (the "synchronous-looking" run).
class GlobalFifoScheduler final : public Scheduler {
 public:
  std::size_t pick(const std::vector<ChannelView>& pending) override;
  std::string name() const override { return "global-fifo"; }
};

/// Always delivers the most recently sent pulse first (maximally stale
/// channels elsewhere). Per-channel FIFO still holds.
class GlobalLifoScheduler final : public Scheduler {
 public:
  std::size_t pick(const std::vector<ChannelView>& pending) override;
  std::string name() const override { return "global-lifo"; }
};

/// Picks a uniformly random nonempty channel; reproducible from the seed.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : seed_(seed), rng_(seed) {}
  std::size_t pick(const std::vector<ChannelView>& pending) override;
  std::string name() const override;
  void reset() override { rng_ = util::Xoshiro256StarStar(seed_); }

 private:
  std::uint64_t seed_;
  util::Xoshiro256StarStar rng_;
};

/// Cycles deterministically over channel ids.
class RoundRobinScheduler final : public Scheduler {
 public:
  std::size_t pick(const std::vector<ChannelView>& pending) override;
  std::string name() const override { return "round-robin"; }
  void reset() override { last_ = 0; }

 private:
  std::size_t last_ = 0;
};

/// Keeps delivering from one channel until it drains, then moves to the
/// fullest remaining channel. Produces extreme burstiness.
class DrainChannelScheduler final : public Scheduler {
 public:
  std::size_t pick(const std::vector<ChannelView>& pending) override;
  std::string name() const override { return "drain-channel"; }
  void reset() override { current_ = kNone; }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t current_ = kNone;
};

/// Starves every channel of physical direction `d`: those channels deliver
/// only when nothing else is in flight. Maximally skews one of the two
/// parallel sub-algorithms (e.g. the CCW instance inside Algorithm 2).
class StarveDirectionScheduler final : public Scheduler {
 public:
  explicit StarveDirectionScheduler(Direction d) : starved_(d) {}
  std::size_t pick(const std::vector<ChannelView>& pending) override;
  std::string name() const override;

 private:
  Direction starved_;
};

/// Starves one specific channel: it delivers only when it is the sole
/// nonempty channel. Models a single maximally slow link ("eclipsed" edge).
class EclipseScheduler final : public Scheduler {
 public:
  explicit EclipseScheduler(std::size_t channel) : eclipsed_(channel) {}
  std::size_t pick(const std::vector<ChannelView>& pending) override;
  std::string name() const override;

 private:
  std::size_t eclipsed_;
};

/// Delivers bursts: picks a random channel and drains a random number of
/// its pulses before re-picking. Models jittery links that alternate
/// between stalls and floods.
class BurstyScheduler final : public Scheduler {
 public:
  explicit BurstyScheduler(std::uint64_t seed) : seed_(seed), rng_(seed) {}
  std::size_t pick(const std::vector<ChannelView>& pending) override;
  std::string name() const override;
  void reset() override {
    rng_ = util::Xoshiro256StarStar(seed_);
    current_ = kNone;
    remaining_ = 0;
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::uint64_t seed_;
  util::Xoshiro256StarStar rng_;
  std::size_t current_ = kNone;
  std::size_t remaining_ = 0;
};

/// Seeded biased random walk over the enabled events — the workhorse of the
/// property-based fuzzing harness (src/qa). At every step each pending
/// channel gets an integer weight from the profile (recency/staleness/
/// stickiness/direction biases on top of a uniform base) and the next
/// delivery is drawn categorically. Weights are integers, so a run is
/// bit-reproducible from the seed; with an all-zero-bias profile this is
/// exactly RandomScheduler.
class WalkScheduler final : public Scheduler {
 public:
  struct Profile {
    std::uint32_t base = 4;    ///< uniform weight on every pending channel
    std::uint32_t lifo = 0;    ///< bonus for the most recently sent head
    std::uint32_t fifo = 0;    ///< bonus for the oldest head
    std::uint32_t stick = 0;   ///< bonus for the channel picked last step
    std::uint32_t cw = 0;      ///< bonus for CW channels
    std::uint32_t ccw = 0;     ///< bonus for CCW channels
  };

  WalkScheduler(std::uint64_t seed, Profile profile)
      : seed_(seed), profile_(profile), rng_(seed) {}
  std::size_t pick(const std::vector<ChannelView>& pending) override;
  std::string name() const override;
  void reset() override {
    rng_ = util::Xoshiro256StarStar(seed_);
    last_ = kNone;
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::uint64_t seed_;
  Profile profile_;
  util::Xoshiro256StarStar rng_;
  std::size_t last_ = kNone;
};

/// Swarm-style scheduler mixture: owns a set of sub-schedulers and lets a
/// seeded RNG hand control to one of them for a random burst of steps
/// before re-drawing. Models an adversary that switches strategy mid-run;
/// the fuzzing harness uses it to compose the standard suite with biased
/// walks. Deterministic from (seed, parts).
class MixScheduler final : public Scheduler {
 public:
  MixScheduler(std::uint64_t seed,
               std::vector<std::unique_ptr<Scheduler>> parts)
      : seed_(seed), parts_(std::move(parts)), rng_(seed) {}
  std::size_t pick(const std::vector<ChannelView>& pending) override;
  std::string name() const override;
  void reset() override;

 private:
  std::uint64_t seed_;
  std::vector<std::unique_ptr<Scheduler>> parts_;
  util::Xoshiro256StarStar rng_;
  std::size_t active_ = 0;
  std::size_t remaining_ = 0;
};

/// The scheduler of Definition 21 (solitude patterns) and Lemma 22: delivers
/// pulses one by one in the order they were sent, breaking same-step ties by
/// prioritizing CW pulses.
class SolitudeScheduler final : public Scheduler {
 public:
  std::size_t pick(const std::vector<ChannelView>& pending) override;
  std::string name() const override { return "solitude"; }
};

/// Wraps another scheduler and records every choice it makes, so that an
/// interesting adversarial run (e.g. a failing fuzz case) can be replayed
/// exactly with ReplayScheduler.
class RecordingScheduler final : public Scheduler {
 public:
  explicit RecordingScheduler(Scheduler& inner) : inner_(inner) {}
  std::size_t pick(const std::vector<ChannelView>& pending) override {
    const std::size_t choice = inner_.pick(pending);
    tape_.push_back(choice);
    return choice;
  }
  std::string name() const override { return "recording(" + inner_.name() + ")"; }
  void reset() override {
    inner_.reset();
    tape_.clear();
  }
  const std::vector<std::size_t>& tape() const { return tape_; }

 private:
  Scheduler& inner_;
  std::vector<std::size_t> tape_;
};

/// Replays a recorded tape of channel choices verbatim. If the tape runs
/// out or names a channel that is not pending (i.e. the run being driven
/// diverged from the recorded one), falls back to global-FIFO order.
class ReplayScheduler final : public Scheduler {
 public:
  explicit ReplayScheduler(std::vector<std::size_t> tape)
      : tape_(std::move(tape)) {}
  std::size_t pick(const std::vector<ChannelView>& pending) override;
  std::string name() const override { return "replay"; }
  void reset() override { cursor_ = 0; }
  std::size_t divergences() const { return divergences_; }

 private:
  std::vector<std::size_t> tape_;
  std::size_t cursor_ = 0;
  std::size_t divergences_ = 0;
};

/// A named scheduler instance, for sweeping experiments over adversaries.
struct NamedScheduler {
  std::string name;
  std::unique_ptr<Scheduler> scheduler;
};

/// The standard adversary suite used by tests and benches: fifo, lifo,
/// round-robin, drain-channel, starve-cw, starve-ccw, solitude, and
/// `random_instances` seeded random schedulers.
std::vector<NamedScheduler> standard_schedulers(std::size_t random_instances,
                                                std::uint64_t seed_base = 1);

}  // namespace colex::sim
