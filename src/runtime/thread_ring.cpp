#include "runtime/thread_ring.hpp"

#include <chrono>
#include <thread>

namespace colex::rt {

bool NodeIo::recv(sim::Port p) { return ring_.recv(self_, p); }
std::size_t NodeIo::pending(sim::Port p) const {
  return ring_.pending(self_, p);
}
void NodeIo::send(sim::Port p) { ring_.send(self_, p); }
bool NodeIo::wait_any() { return ring_.wait_any(self_); }

ThreadRing::ThreadRing(std::size_t n, std::vector<bool> port_flips)
    : nodes_(n) {
  COLEX_EXPECTS(n >= 1);
  COLEX_EXPECTS(port_flips.empty() || port_flips.size() == n);
  auto flipped = [&port_flips](sim::NodeId v) {
    return !port_flips.empty() && port_flips[v];
  };
  // Same layout as sim::Network<P>::ring: edge i attaches node i's Port1 to
  // node i+1's Port0 in the oriented base, with per-node label flips.
  for (sim::NodeId i = 0; i < n; ++i) {
    const sim::NodeId j = (i + 1) % n;
    const sim::Port from = flipped(i) ? sim::Port::p0 : sim::Port::p1;
    const sim::Port to = flipped(j) ? sim::Port::p1 : sim::Port::p0;
    nodes_[i].peer[sim::index(from)] = j;
    nodes_[i].peer_port[sim::index(from)] = to;
    nodes_[j].peer[sim::index(to)] = i;
    nodes_[j].peer_port[sim::index(to)] = from;
  }
}

bool ThreadRing::recv(sim::NodeId v, sim::Port p) {
  auto& node = nodes_[v];
  std::lock_guard<std::mutex> lock(node.mutex);
  auto& q = node.pending[sim::index(p)];
  if (q == 0) return false;
  --q;
  consumed_.fetch_add(1);
  return true;
}

void ThreadRing::send(sim::NodeId v, sim::Port p) {
  auto& self = nodes_[v];
  const sim::NodeId to = self.peer[sim::index(p)];
  const sim::Port to_port = self.peer_port[sim::index(p)];
  auto& dest = nodes_[to];
  {
    std::lock_guard<std::mutex> lock(dest.mutex);
    // sent_ is incremented inside the destination lock so that any observer
    // seeing sent_ == consumed_ is guaranteed no pulse is pending anywhere.
    sent_.fetch_add(1);
    ++dest.pending[sim::index(to_port)];
  }
  dest.cv.notify_all();
}

std::size_t ThreadRing::pending(sim::NodeId v, sim::Port p) const {
  const auto& node = nodes_[v];
  std::lock_guard<std::mutex> lock(node.mutex);
  return static_cast<std::size_t>(node.pending[sim::index(p)]);
}

bool ThreadRing::wait_any(sim::NodeId v) {
  auto& node = nodes_[v];
  std::unique_lock<std::mutex> lock(node.mutex);
  if (node.pending[0] != 0 || node.pending[1] != 0) return true;
  if (stop_.load()) return false;
  idle_.fetch_add(1);
  node.cv.wait(lock, [&node, this] {
    return node.pending[0] != 0 || node.pending[1] != 0 || stop_.load();
  });
  idle_.fetch_sub(1);
  return node.pending[0] != 0 || node.pending[1] != 0;
}

void ThreadRing::broadcast_stop() {
  stop_.store(true);
  for (auto& node : nodes_) {
    std::lock_guard<std::mutex> lock(node.mutex);
    node.cv.notify_all();
  }
}

bool ThreadRing::monitor(std::uint64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  const std::size_t n = nodes_.size();
  for (;;) {
    if (finished_.load() == n) return true;  // natural termination
    const bool maybe_quiescent = idle_.load() + finished_.load() == n &&
                                 sent_.load() == consumed_.load();
    if (maybe_quiescent) {
      // Double-scan: re-observe after a pause to ride out races between a
      // send and the receiver waking up.
      std::this_thread::sleep_for(std::chrono::microseconds(300));
      if (idle_.load() + finished_.load() == n &&
          sent_.load() == consumed_.load()) {
        broadcast_stop();
        return true;
      }
    }
    if (std::chrono::steady_clock::now() > deadline) {
      broadcast_stop();
      return false;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

}  // namespace colex::rt
