file(REMOVE_RECURSE
  "CMakeFiles/colex_colib.dir/apps.cpp.o"
  "CMakeFiles/colex_colib.dir/apps.cpp.o.d"
  "CMakeFiles/colex_colib.dir/bus.cpp.o"
  "CMakeFiles/colex_colib.dir/bus.cpp.o.d"
  "CMakeFiles/colex_colib.dir/composed.cpp.o"
  "CMakeFiles/colex_colib.dir/composed.cpp.o.d"
  "libcolex_colib.a"
  "libcolex_colib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colex_colib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
