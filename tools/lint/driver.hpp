// colex-lint driver: file collection, suppression, reporting, self-test.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "lint/rules.hpp"

namespace colex::lint {

struct ScanOutcome {
  std::vector<Finding> findings;    // after suppression
  std::vector<Finding> suppressed;  // matched by an allow marker
  std::vector<std::string> errors;  // unreadable paths / empty scan
  std::size_t files_scanned = 0;
};

/// Scans files and directories (recursively; .cpp/.cc/.cxx/.hpp/.h/.hh/.hxx),
/// in sorted path order so output is deterministic. `workers` fans the
/// per-file rule passes out (see run_rules); the outcome is identical for
/// any worker count.
ScanOutcome scan_paths(const std::vector<std::string>& paths,
                       std::size_t workers);
ScanOutcome scan_paths(const std::vector<std::string>& paths);

/// Fixture self-test: every `expect(R)` marker must produce exactly one
/// reported finding of rule R on that line, every `expect-suppressed(R)` a
/// suppressed one, and no unexpected findings may appear. Guards the rule
/// implementations themselves (wired into ci.sh lint and
/// tests/test_lint_rules.cpp).
struct SelfTestOutcome {
  bool ok = false;
  std::vector<std::string> problems;
  std::size_t expectations = 0;
  std::set<std::string> rules_exercised;
};

SelfTestOutcome run_self_test(const std::vector<std::string>& paths);

void print_human(std::ostream& os, const ScanOutcome& outcome);
void print_json(std::ostream& os, const ScanOutcome& outcome);

/// Exit contract shared with colex-fuzz/colex-inspect:
/// 0 clean, 1 findings, 2 usage or I/O error.
int exit_code(const ScanOutcome& outcome);

}  // namespace colex::lint
