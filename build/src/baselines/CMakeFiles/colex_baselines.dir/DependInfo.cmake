
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/chang_roberts.cpp" "src/baselines/CMakeFiles/colex_baselines.dir/chang_roberts.cpp.o" "gcc" "src/baselines/CMakeFiles/colex_baselines.dir/chang_roberts.cpp.o.d"
  "/root/repo/src/baselines/franklin.cpp" "src/baselines/CMakeFiles/colex_baselines.dir/franklin.cpp.o" "gcc" "src/baselines/CMakeFiles/colex_baselines.dir/franklin.cpp.o.d"
  "/root/repo/src/baselines/hirschberg_sinclair.cpp" "src/baselines/CMakeFiles/colex_baselines.dir/hirschberg_sinclair.cpp.o" "gcc" "src/baselines/CMakeFiles/colex_baselines.dir/hirschberg_sinclair.cpp.o.d"
  "/root/repo/src/baselines/itai_rodeh.cpp" "src/baselines/CMakeFiles/colex_baselines.dir/itai_rodeh.cpp.o" "gcc" "src/baselines/CMakeFiles/colex_baselines.dir/itai_rodeh.cpp.o.d"
  "/root/repo/src/baselines/lelann.cpp" "src/baselines/CMakeFiles/colex_baselines.dir/lelann.cpp.o" "gcc" "src/baselines/CMakeFiles/colex_baselines.dir/lelann.cpp.o.d"
  "/root/repo/src/baselines/peterson.cpp" "src/baselines/CMakeFiles/colex_baselines.dir/peterson.cpp.o" "gcc" "src/baselines/CMakeFiles/colex_baselines.dir/peterson.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/colex_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/colex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
