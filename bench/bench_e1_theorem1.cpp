// E1 — Theorem 1: Algorithm 2 elects the max-ID node on oriented rings with
// quiescent termination and EXACTLY n(2*IDmax + 1) pulses, for every ring
// size, ID pattern, and adversarial schedule.
//
// Besides the sweep, one representative run (n=4, dense-shuffled IDs) is
// recorded with full tracing + metrics and exported as TRACE_E1.jsonl —
// the smoke artifact ci.sh feeds to `colex-inspect check`. Flags:
//   --smoke        cap the sweep at n<=8 (CI smoke path)
//   --json <dir>   redirect BENCH_E1.json (also: COLEX_BENCH_JSON_DIR)
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "co/alg2.hpp"
#include "co/election.hpp"
#include "obs/export.hpp"
#include "obs/instrument.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"
#include "util/ids.hpp"
#include "util/table.hpp"

namespace {

// One fully observed run: trace recording AND metrics instrumentation both
// attached (hook chaining keeps them composable), exported as JSONL.
bool export_observed_run(colex::bench::JsonReport& report) {
  using namespace colex;
  constexpr std::size_t n = 4;
  const auto ids = util::shuffled(util::dense_ids(n), 11);
  std::uint64_t id_max = 0;
  for (const auto id : ids) id_max = std::max(id_max, id);

  auto net = sim::PulseNetwork::ring(n);
  for (sim::NodeId v = 0; v < n; ++v) {
    net.set_automaton(v, std::make_unique<co::Alg2Terminating>(ids[v]));
  }
  sim::RunOptions opts;
  sim::TraceRecorder trace;
  trace.attach(net, opts);
  obs::Registry metrics;
  obs::PulseNetworkInstrumentation instr(metrics, {.enabled = true});
  instr.attach(net, opts);
  sim::RandomScheduler scheduler(11);
  const auto run = net.run(scheduler, opts);
  instr.finish(net);

  obs::TraceMeta meta;
  meta.algorithm = "alg2";
  meta.n = n;
  meta.id_max = id_max;
  const std::string path = "TRACE_E1.jsonl";
  std::ofstream out(path);
  obs::write_jsonl(out, trace.events(), meta, &metrics);
  std::cout << "[trace] wrote " << path << " (" << trace.events().size()
            << " events; inspect with: colex-inspect check " << path
            << ")\n";
  report.embed_metrics(metrics.to_json());

  return run.quiescent && run.all_terminated &&
         run.sent == co::theorem1_pulses(n, id_max) &&
         trace.audit(sim::ring_wiring(n)).empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace colex;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::banner(
      "E1  Theorem 1: quiescently terminating leader election "
      "(bench_e1_theorem1)",
      "message complexity is exactly n(2*IDmax+1); the max-ID node wins; "
      "termination is quiescent under every adversary");
  bench::WallTimer total;
  bench::JsonReport report("E1", "Theorem 1 exact message complexity");
  bench::apply_json_flag(report, argc, argv);

  struct Pattern {
    const char* name;
    std::vector<std::uint64_t> ids;
  };

  util::Table table({"n", "IDmax", "pattern", "schedulers", "pulses",
                     "n(2*IDmax+1)", "exact", "quiescent+terminated"});
  bool all_ok = true;

  for (const std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    if (smoke && n > 8) continue;
    std::vector<Pattern> patterns;
    patterns.push_back({"dense-shuffled",
                        util::shuffled(util::dense_ids(n), n * 7 + 1)});
    patterns.push_back({"sparse-16x", util::sparse_ids(n, 16 * n, n + 3)});
    // Descending along the ring: worst case for Chang-Roberts; Theorem 1's
    // cost must not care.
    std::vector<std::uint64_t> desc(n);
    for (std::size_t v = 0; v < n; ++v) desc[v] = n - v;
    patterns.push_back({"descending", std::move(desc)});

    for (auto& pattern : patterns) {
      std::uint64_t id_max = 0;
      for (const auto id : pattern.ids) id_max = std::max(id_max, id);
      const std::uint64_t formula = co::theorem1_pulses(n, id_max);

      // Large rings get fewer schedulers to keep runtime sane.
      const std::size_t randoms = n <= 64 ? 3 : 1;
      auto schedulers = sim::standard_schedulers(randoms);
      bool exact = true, clean = true;
      std::uint64_t measured = 0;
      for (auto& named : schedulers) {
        const auto result =
            co::elect_oriented_terminating(pattern.ids, *named.scheduler);
        measured = result.pulses;
        exact = exact && result.pulses == formula &&
                result.valid_election() &&
                pattern.ids[*result.leader] == id_max &&
                result.within_pulse_bound() && result.pulse_margin() >= 0;
        clean = clean && result.quiescent && result.all_terminated &&
                result.report.deliveries_to_terminated == 0;
      }
      all_ok = all_ok && exact && clean;
      table.add_row({util::Table::num(static_cast<std::uint64_t>(n)),
                     util::Table::num(id_max), pattern.name,
                     util::Table::num(
                         static_cast<std::uint64_t>(schedulers.size())),
                     util::Table::num(measured), util::Table::num(formula),
                     exact ? "yes" : "NO", clean ? "yes" : "NO"});
    }
  }
  table.print(std::cout);

  const bool observed_ok = export_observed_run(report);
  all_ok = all_ok && observed_ok;

  report.root().set("all_ok", all_ok).set("smoke", smoke);
  report.finish(total.seconds());

  bench::verdict(all_ok,
                 "pulse counts match n(2*IDmax+1) exactly in every "
                 "configuration and under every scheduler");
  return all_ok ? 0 : 1;
}
