#include "lint/lexer.hpp"

namespace colex::lint {

namespace {

bool is_ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool is_ident_char(char c) { return is_ident_start(c) || (c >= '0' && c <= '9'); }

bool is_digit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

LexResult lex(const std::string& src) {
  LexResult out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (src[i] == '\n') ++line;
    }
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
        c == '\f') {
      advance(1);
      continue;
    }
    // Line comment. Phase-2 line splicing happens before comments are
    // recognized, so a backslash immediately before the newline (optionally
    // with a '\r' in between) continues the comment onto the next physical
    // line — the comment ends only at the first un-spliced newline.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const int start = line;
      std::size_t j = i + 2;
      for (;;) {
        while (j < n && src[j] != '\n') ++j;
        std::size_t k = j;
        if (k > i + 2 && src[k - 1] == '\r') --k;  // tolerate CRLF
        if (j >= n || k == i + 2 || src[k - 1] != '\\') break;
        ++j;  // consume the spliced newline and keep scanning
      }
      std::string text = src.substr(i + 2, j - i - 2);
      advance(j - i);  // leaves `line` on the comment's last physical line
      out.comments.push_back(Comment{start, line, std::move(text)});
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) ++j;
      const std::size_t end = (j + 1 < n) ? j + 2 : n;
      std::string text = src.substr(i + 2, j - i - 2);
      advance(end - i);
      out.comments.push_back(Comment{start, line, std::move(text)});
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(' && src[j] != '\n' && delim.size() <= 16) {
        delim.push_back(src[j]);
        ++j;
      }
      if (j < n && src[j] == '(') {
        const std::string closer = ")" + delim + "\"";
        const std::size_t close = src.find(closer, j + 1);
        const std::size_t end = (close == std::string::npos)
                                    ? n
                                    : close + closer.size();
        out.tokens.push_back(Token{Tok::string_lit, src.substr(i, end - i), line});
        advance(end - i);
        continue;
      }
      // Not actually a raw string ("R" followed by an odd quote): fall through
      // and lex the R as an identifier.
    }
    // String / char literal (with escapes).
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start = line;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') break;  // unterminated: stop at the line end
        ++j;
      }
      const std::size_t end = (j < n && src[j] == quote) ? j + 1 : j;
      out.tokens.push_back(Token{quote == '"' ? Tok::string_lit : Tok::char_lit,
                                 src.substr(i, end - i), start});
      advance(end - i);
      continue;
    }
    // Identifier / keyword.
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(src[j])) ++j;
      out.tokens.push_back(Token{Tok::identifier, src.substr(i, j - i), line});
      advance(j - i);
      continue;
    }
    // Number (pp-number: digits, alnum, quotes-as-separators, exponent signs).
    if (is_digit(c) || (c == '.' && i + 1 < n && is_digit(src[i + 1]))) {
      std::size_t j = i + 1;
      while (j < n) {
        const char d = src[j];
        if (is_ident_char(d) || d == '.' || d == '\'') {
          ++j;
          continue;
        }
        if ((d == '+' || d == '-') && j > i) {
          const char prev = src[j - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++j;
            continue;
          }
        }
        break;
      }
      out.tokens.push_back(Token{Tok::number, src.substr(i, j - i), line});
      advance(j - i);
      continue;
    }
    // Backslash-newline (macro continuation): skip silently.
    if (c == '\\') {
      advance(1);
      continue;
    }
    out.tokens.push_back(Token{Tok::punct, std::string(1, c), line});
    advance(1);
  }
  return out;
}

}  // namespace colex::lint
