#include "sim/faults.hpp"

#include <algorithm>

namespace colex::sim {

std::string FaultPlan::validate() const {
  auto prob_ok = [](double p) { return p >= 0.0 && p <= 1.0; };
  auto profile_ok = [&prob_ok](const ChannelFaultProfile& p) {
    return prob_ok(p.drop_prob) && prob_ok(p.duplicate_prob) &&
           prob_ok(p.spurious_prob);
  };
  if (!profile_ok(all_channels)) {
    return "all_channels probability outside [0, 1]";
  }
  for (const auto& [channel, profile] : channel_overrides) {
    if (!profile_ok(profile)) {
      return "override for channel " + std::to_string(channel) +
             ": probability outside [0, 1]";
    }
  }
  std::uint64_t prev_at = 0;
  std::vector<NodeId> crashed;  // nodes with a crash scripted so far
  for (std::size_t i = 0; i < script.size(); ++i) {
    const ScriptedFault& fault = script[i];
    if (fault.at_event < prev_at) {
      return "script entry " + std::to_string(i) +
             " not sorted by at_event (fire_scripted scans once, in order)";
    }
    prev_at = fault.at_event;
    if (fault.kind == FaultKind::corrupt) {
      return "script entry " + std::to_string(i) +
             " uses corrupt, which is not scriptable (use a StateCorruptor "
             "or preseed_channels)";
    }
    if (fault.kind == FaultKind::crash) {
      crashed.push_back(fault.node);
    } else if (fault.kind == FaultKind::recover &&
               std::find(crashed.begin(), crashed.end(), fault.node) ==
                   crashed.end()) {
      return "script entry " + std::to_string(i) + " recovers node " +
             std::to_string(fault.node) +
             " with no prior crash for it in the plan";
    }
  }
  return {};
}

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::drop: return "drop";
    case FaultKind::duplicate: return "duplicate";
    case FaultKind::spurious: return "spurious";
    case FaultKind::crash: return "crash";
    case FaultKind::recover: return "recover";
    case FaultKind::corrupt: return "corrupt";
  }
  return "?";
}

TraceEvent::Kind trace_kind(FaultKind kind) {
  switch (kind) {
    case FaultKind::drop: return TraceEvent::Kind::fault_drop;
    case FaultKind::duplicate: return TraceEvent::Kind::fault_duplicate;
    case FaultKind::spurious: return TraceEvent::Kind::fault_spurious;
    case FaultKind::crash: return TraceEvent::Kind::fault_crash;
    case FaultKind::recover: return TraceEvent::Kind::fault_recover;
    case FaultKind::corrupt: return TraceEvent::Kind::fault_corrupt;
  }
  return TraceEvent::Kind::fault_corrupt;
}

const char* to_string(FaultOutcome outcome) {
  switch (outcome) {
    case FaultOutcome::recovered_correct: return "recovered-correct";
    case FaultOutcome::stalled: return "stalled";
    case FaultOutcome::diverged: return "diverged";
    case FaultOutcome::safety_violated: return "safety-violated";
  }
  return "?";
}

FaultOutcome classify_outcome(const RunReport& report,
                              const std::string& safety_diag,
                              bool output_correct, std::string* diagnosis) {
  // Safety trumps everything: a violated invariant or unsafe output is the
  // worst possible ending regardless of whether the run settled.
  if (!safety_diag.empty()) {
    if (diagnosis) *diagnosis = "safety: " + safety_diag;
    return FaultOutcome::safety_violated;
  }
  // A run that exhausted its event budget never settled: the fault pushed
  // the system into unbounded activity (e.g. a pulse no node will ever
  // absorb circulating forever).
  if (report.hit_event_limit) {
    if (diagnosis) *diagnosis = "event budget exhausted without settling";
    return FaultOutcome::diverged;
  }
  // The run settled (nothing in flight, nothing more will happen — leftover
  // payloads the algorithms refuse to read are quarantined, not progress).
  if (output_correct) {
    if (diagnosis) {
      *diagnosis = report.quiescent
                       ? "settled quiescent with correct output"
                       : "settled with correct output; unread leftovers "
                         "quarantined in queues";
    }
    return FaultOutcome::recovered_correct;
  }
  if (diagnosis) *diagnosis = "settled in a wrong or incomplete state";
  return FaultOutcome::stalled;
}

}  // namespace colex::sim
