#include "qa/repro.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/contracts.hpp"

namespace colex::qa {

namespace {

// Minimal extraction from one line of OUR OWN JSONL output (flat objects,
// no nesting inside the extracted keys) — same dialect as obs/export.cpp.
bool find_raw(const std::string& line, const std::string& key,
              std::size_t& value_begin) {
  const std::string needle = "\"" + key + "\":";
  const auto at = line.find(needle);
  if (at == std::string::npos) return false;
  value_begin = at + needle.size();
  return true;
}

bool find_u64(const std::string& line, const std::string& key,
              std::uint64_t& out) {
  std::size_t begin = 0;
  if (!find_raw(line, key, begin)) return false;
  out = 0;
  bool any = false;
  while (begin < line.size() && line[begin] >= '0' && line[begin] <= '9') {
    out = out * 10 + static_cast<std::uint64_t>(line[begin] - '0');
    ++begin;
    any = true;
  }
  return any;
}

bool find_string(const std::string& line, const std::string& key,
                 std::string& out) {
  std::size_t begin = 0;
  if (!find_raw(line, key, begin)) return false;
  if (begin >= line.size() || line[begin] != '"') return false;
  ++begin;
  out.clear();
  while (begin < line.size() && line[begin] != '"') {
    if (line[begin] == '\\' && begin + 1 < line.size()) {
      ++begin;
      switch (line[begin]) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        default: out += line[begin];
      }
    } else {
      out += line[begin];
    }
    ++begin;
  }
  return begin < line.size();
}

bool find_double(const std::string& line, const std::string& key,
                 double& out) {
  std::size_t begin = 0;
  if (!find_raw(line, key, begin)) return false;
  const char* start = line.c_str() + begin;
  char* end = nullptr;
  out = std::strtod(start, &end);
  return end != start;
}

bool find_u64_array(const std::string& line, const std::string& key,
                    std::vector<std::uint64_t>& out) {
  std::size_t begin = 0;
  if (!find_raw(line, key, begin)) return false;
  if (begin >= line.size() || line[begin] != '[') return false;
  out.clear();
  std::uint64_t value = 0;
  bool in_number = false;
  for (++begin; begin < line.size(); ++begin) {
    const char ch = line[begin];
    if (ch >= '0' && ch <= '9') {
      value = value * 10 + static_cast<std::uint64_t>(ch - '0');
      in_number = true;
    } else {
      if (in_number) out.push_back(value);
      value = 0;
      in_number = false;
      if (ch == ']') return true;
      if (ch != ',') return false;
    }
  }
  return false;
}

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

void write_double(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.*g",
                std::numeric_limits<double>::max_digits10, v);
  os << buf;
}

void write_u64_array(std::ostream& os, const std::vector<std::uint64_t>& xs) {
  os << '[';
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) os << ',';
    os << xs[i];
  }
  os << ']';
}

bool fault_kind_from_string(const std::string& s, sim::FaultKind& out) {
  for (const sim::FaultKind k :
       {sim::FaultKind::drop, sim::FaultKind::duplicate,
        sim::FaultKind::spurious, sim::FaultKind::crash,
        sim::FaultKind::recover, sim::FaultKind::corrupt}) {
    if (s == sim::to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

void write_profile_fields(std::ostream& os,
                          const sim::ChannelFaultProfile& p) {
  os << "\"drop\":";
  write_double(os, p.drop_prob);
  os << ",\"duplicate\":";
  write_double(os, p.duplicate_prob);
  os << ",\"spurious\":";
  write_double(os, p.spurious_prob);
}

sim::ChannelFaultProfile read_profile_fields(const std::string& line) {
  sim::ChannelFaultProfile p;
  find_double(line, "drop", p.drop_prob);
  find_double(line, "duplicate", p.duplicate_prob);
  find_double(line, "spurious", p.spurious_prob);
  return p;
}

}  // namespace

void write_repro(std::ostream& os, const ReproFile& repro) {
  const FuzzCase& c = repro.c;
  os << "{\"type\":\"repro\",\"format\":\"colex-repro-v1\",\"seed\":" << c.seed
     << ",\"algorithm\":\"" << to_string(c.alg) << "\",\"ids\":";
  write_u64_array(os, c.ids);
  os << ",\"port_flips\":[";
  for (std::size_t v = 0; v < c.port_flips.size(); ++v) {
    if (v) os << ',';
    os << (c.port_flips[v] ? 1 : 0);
  }
  os << "],\"schedule_seed\":" << c.schedule_seed
     << ",\"max_events\":" << c.max_events
     << ",\"planted\":" << (repro.props.planted_bound_bug ? 1 : 0)
     << ",\"check_replay\":" << (repro.props.check_replay ? 1 : 0)
     << ",\"failed_property\":";
  write_escaped(os, repro.failed_property);
  os << ",\"diagnostic\":";
  write_escaped(os, repro.diagnostic);
  os << "}\n";

  os << "{\"type\":\"tape\",\"choices\":";
  write_u64_array(
      os, std::vector<std::uint64_t>(c.tape.begin(), c.tape.end()));
  os << "}\n";

  os << "{\"type\":\"fault-plan\",\"plan_seed\":" << c.faults.seed << ",";
  write_profile_fields(os, c.faults.all_channels);
  os << "}\n";
  for (const auto& [channel, profile] : c.faults.channel_overrides) {
    os << "{\"type\":\"override\",\"channel\":" << channel << ",";
    write_profile_fields(os, profile);
    os << "}\n";
  }
  for (const auto& f : c.faults.script) {
    os << "{\"type\":\"scripted\",\"kind\":\"" << sim::to_string(f.kind)
       << "\",\"at_event\":" << f.at_event << ",\"channel\":" << f.channel
       << ",\"node\":" << f.node << "}\n";
  }
  for (const auto& [channel, count] : c.faults.preseed_channels) {
    os << "{\"type\":\"preseed\",\"channel\":" << channel
       << ",\"count\":" << count << "}\n";
  }
  if (c.corrupt.active) {
    os << "{\"type\":\"corrupt\",\"node\":" << c.corrupt.node
       << ",\"counters\":";
    write_u64_array(os, {c.corrupt.counters[0], c.corrupt.counters[1],
                         c.corrupt.counters[2], c.corrupt.counters[3]});
    os << "}\n";
  }
}

std::string to_repro(const ReproFile& repro) {
  std::ostringstream os;
  write_repro(os, repro);
  return os.str();
}

ReproFile load_repro(std::istream& is) {
  ReproFile out;
  std::string line;
  bool have_header = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::string type;
    COLEX_EXPECTS(find_string(line, "type", type));
    if (type == "repro") {
      COLEX_EXPECTS(!have_header);
      have_header = true;
      std::string format;
      COLEX_EXPECTS(find_string(line, "format", format) &&
                    format == "colex-repro-v1");
      find_u64(line, "seed", out.c.seed);
      std::string alg;
      COLEX_EXPECTS(find_string(line, "algorithm", alg) &&
                    algorithm_from_string(alg, out.c.alg));
      COLEX_EXPECTS(find_u64_array(line, "ids", out.c.ids) &&
                    !out.c.ids.empty());
      std::size_t begin = 0;
      if (find_raw(line, "port_flips", begin) && begin < line.size() &&
          line[begin] == '[') {
        for (++begin; begin < line.size() && line[begin] != ']'; ++begin) {
          if (line[begin] == '0') out.c.port_flips.push_back(false);
          if (line[begin] == '1') out.c.port_flips.push_back(true);
        }
      }
      find_u64(line, "schedule_seed", out.c.schedule_seed);
      find_u64(line, "max_events", out.c.max_events);
      std::uint64_t flag = 0;
      if (find_u64(line, "planted", flag)) {
        out.props.planted_bound_bug = flag != 0;
      }
      if (find_u64(line, "check_replay", flag)) {
        out.props.check_replay = flag != 0;
      }
      find_string(line, "failed_property", out.failed_property);
      find_string(line, "diagnostic", out.diagnostic);
    } else if (type == "tape") {
      std::vector<std::uint64_t> choices;
      COLEX_EXPECTS(find_u64_array(line, "choices", choices));
      out.c.tape.assign(choices.begin(), choices.end());
    } else if (type == "fault-plan") {
      find_u64(line, "plan_seed", out.c.faults.seed);
      out.c.faults.all_channels = read_profile_fields(line);
    } else if (type == "override") {
      std::uint64_t channel = 0;
      COLEX_EXPECTS(find_u64(line, "channel", channel));
      out.c.faults.channel_overrides.emplace_back(
          static_cast<std::size_t>(channel), read_profile_fields(line));
    } else if (type == "scripted") {
      sim::ScriptedFault f;
      std::string kind;
      COLEX_EXPECTS(find_string(line, "kind", kind) &&
                    fault_kind_from_string(kind, f.kind));
      find_u64(line, "at_event", f.at_event);
      std::uint64_t channel = 0, node = 0;
      if (find_u64(line, "channel", channel)) {
        f.channel = static_cast<std::size_t>(channel);
      }
      if (find_u64(line, "node", node)) {
        f.node = static_cast<sim::NodeId>(node);
      }
      out.c.faults.script.push_back(f);
    } else if (type == "preseed") {
      std::uint64_t channel = 0, count = 0;
      COLEX_EXPECTS(find_u64(line, "channel", channel) &&
                    find_u64(line, "count", count));
      out.c.faults.preseed_channels.emplace_back(
          static_cast<std::size_t>(channel), static_cast<std::size_t>(count));
    } else if (type == "corrupt") {
      std::uint64_t node = 0;
      std::vector<std::uint64_t> counters;
      COLEX_EXPECTS(find_u64(line, "node", node) &&
                    find_u64_array(line, "counters", counters) &&
                    counters.size() == 4);
      out.c.corrupt.active = true;
      out.c.corrupt.node = static_cast<sim::NodeId>(node);
      for (int i = 0; i < 4; ++i) {
        out.c.corrupt.counters[i] = counters[static_cast<std::size_t>(i)];
      }
    }
    // Unknown line types are skipped: forward compatibility.
  }
  COLEX_EXPECTS(have_header);
  return out;
}

ReproFile load_repro_file(const std::string& path) {
  std::ifstream in(path);
  COLEX_EXPECTS(in.good());
  return load_repro(in);
}

void save_repro_file(const std::string& path, const ReproFile& repro) {
  std::ofstream out(path);
  COLEX_EXPECTS(out.good());
  write_repro(out, repro);
  COLEX_EXPECTS(out.good());
}

obs::TraceMeta trace_meta_for(const FuzzCase& c) {
  obs::TraceMeta meta;
  meta.algorithm = to_string(c.alg);
  meta.n = c.n();
  meta.id_max = c.effective_id_max();
  meta.port_flips = c.port_flips;
  return meta;
}

}  // namespace colex::qa
