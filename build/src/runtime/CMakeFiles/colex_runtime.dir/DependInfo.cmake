
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/automaton_host.cpp" "src/runtime/CMakeFiles/colex_runtime.dir/automaton_host.cpp.o" "gcc" "src/runtime/CMakeFiles/colex_runtime.dir/automaton_host.cpp.o.d"
  "/root/repo/src/runtime/blocking_algs.cpp" "src/runtime/CMakeFiles/colex_runtime.dir/blocking_algs.cpp.o" "gcc" "src/runtime/CMakeFiles/colex_runtime.dir/blocking_algs.cpp.o.d"
  "/root/repo/src/runtime/thread_ring.cpp" "src/runtime/CMakeFiles/colex_runtime.dir/thread_ring.cpp.o" "gcc" "src/runtime/CMakeFiles/colex_runtime.dir/thread_ring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/co/CMakeFiles/colex_co.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/colex_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/colex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
