// End-to-end multi-process elections: forks real `colex-ring` binaries (one
// OS process per ring node, plus a separate coordinator process in the
// split-command test) and checks the merged verdict against the paper —
// the pulse total must equal Theorem 1's exact n(2*IDmax + 1) count and the
// simulator oracle, and the max-ID process must win.
//
// The binary path is injected by CMake as COLEX_RING_BIN. Every subprocess
// gets an explicit --timeout-ms watchdog, so a wedged run fails loudly
// instead of hanging ctest.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "co/election.hpp"
#include "qa/generators.hpp"
#include "qa/properties.hpp"

namespace colex {
namespace {

struct CmdResult {
  std::vector<std::string> lines;
  int exit_code = -1;
};

/// Runs `cmd` via popen, captures stdout lines, and decodes the exit
/// status (-1 if the child died abnormally).
CmdResult run_cmd(const std::string& cmd) {
  CmdResult r;
  FILE* p = ::popen(cmd.c_str(), "r");
  if (p == nullptr) return r;
  char buf[4096];
  std::string line;
  while (std::fgets(buf, sizeof(buf), p) != nullptr) {
    line = buf;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    r.lines.push_back(line);
  }
  const int status = ::pclose(p);
  if (status >= 0 && WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

/// Minimal JSON field scrape: the value after `"key":` (number or null).
std::string json_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return {};
  std::size_t i = at + needle.size();
  std::string out;
  while (i < line.size() && line[i] != ',' && line[i] != '}') {
    out.push_back(line[i]);
    ++i;
  }
  return out;
}

std::string ring_bin() { return std::string(COLEX_RING_BIN); }

TEST(MultiProcess, RunCommandMatchesTheorem1AndSimulator) {
  // The README's demo ring: six processes, IDs 6,11,3,9,1,7, Algorithm 2.
  qa::FuzzCase c;
  c.alg = qa::Algorithm::alg2;
  c.ids = {6, 11, 3, 9, 1, 7};
  const qa::RunOutcome oracle = qa::execute_case(c);
  ASSERT_TRUE(oracle.report.quiescent);

  const CmdResult r = run_cmd(ring_bin() +
                              " run --ids 6,11,3,9,1,7 --alg alg2"
                              " --timeout-ms 30000 --json");
  ASSERT_EQ(r.exit_code, 0) << "colex-ring run failed";
  ASSERT_EQ(r.lines.size(), 1u);
  const std::string& j = r.lines[0];
  EXPECT_EQ(json_field(j, "completed"), "true");
  // Theorem 1: exactly n(2*IDmax + 1) pulses — and the simulator agrees.
  const std::uint64_t want = co::theorem1_pulses(6, 11);
  EXPECT_EQ(json_field(j, "pulses"), std::to_string(want));
  EXPECT_EQ(json_field(j, "pulses"), std::to_string(oracle.counters.sent));
  EXPECT_EQ(json_field(j, "consumed"), std::to_string(want));
  // The max-ID process (index 1, id 11) wins in every substrate.
  EXPECT_EQ(json_field(j, "leader_count"), "1");
  EXPECT_EQ(json_field(j, "leader"), "1");
  ASSERT_EQ(oracle.leader_count, 1u);
  EXPECT_EQ(*oracle.leader, 1u);
  EXPECT_EQ(json_field(j, "exit_codes"), "[0");  // first child exited clean
}

TEST(MultiProcess, NonOrientedRingWithFlipsMatchesExactCount) {
  qa::FuzzCase c;
  c.alg = qa::Algorithm::alg3_improved;
  c.ids = {5, 2, 9, 4};
  c.port_flips = {false, true, false, true};
  const qa::RunOutcome oracle = qa::execute_case(c);
  ASSERT_TRUE(oracle.report.quiescent);

  const CmdResult r = run_cmd(ring_bin() +
                              " run --ids 5,2,9,4 --alg alg3-improved"
                              " --flips 0,1,0,1 --timeout-ms 30000 --json");
  ASSERT_EQ(r.exit_code, 0);
  ASSERT_EQ(r.lines.size(), 1u);
  const std::string& j = r.lines[0];
  EXPECT_EQ(json_field(j, "pulses"), std::to_string(qa::exact_pulses(c)));
  EXPECT_EQ(json_field(j, "pulses"), std::to_string(oracle.counters.sent));
  EXPECT_EQ(json_field(j, "leader"), "2");  // id 9 is the max
}

TEST(MultiProcess, CoordinatorAndNodesAreSeparateBinaries) {
  // The split workflow: one coordinator process, one process per node,
  // all real colex-ring invocations glued only by the control-plane port.
  FILE* coord = ::popen(
      (ring_bin() + " coord --ring-size 3 --timeout-ms 30000 --json").c_str(),
      "r");
  ASSERT_NE(coord, nullptr);
  char buf[4096];
  ASSERT_NE(std::fgets(buf, sizeof(buf), coord), nullptr);
  const std::string announce = buf;
  const std::size_t at = announce.rfind(' ');
  ASSERT_NE(at, std::string::npos) << announce;
  const std::string port = announce.substr(at + 1,
                                           announce.size() - at - 2);
  ASSERT_FALSE(port.empty());

  std::vector<FILE*> nodes;
  for (int v = 0; v < 3; ++v) {
    const std::string cmd = ring_bin() + " node --index " +
                            std::to_string(v) + " --ring-size 3 --id " +
                            std::to_string(v + 4) +
                            " --alg alg2 --coordinator-port " + port +
                            " --timeout-ms 30000";
    FILE* n = ::popen(cmd.c_str(), "r");
    ASSERT_NE(n, nullptr);
    nodes.push_back(n);
  }

  // The coordinator's JSON verdict arrives once the election quiesces.
  ASSERT_NE(std::fgets(buf, sizeof(buf), coord), nullptr);
  const std::string j = buf;
  EXPECT_EQ(json_field(j, "completed"), "true");
  EXPECT_EQ(json_field(j, "pulses"),
            std::to_string(co::theorem1_pulses(3, 6)));
  EXPECT_EQ(json_field(j, "leader"), "2");  // id 6 wins

  for (FILE* n : nodes) {
    // Drain to EOF before pclose: closing the pipe while the child is
    // still printing its summary would SIGPIPE it.
    while (std::fgets(buf, sizeof(buf), n) != nullptr) {
    }
    const int status = ::pclose(n);
    ASSERT_TRUE(status >= 0 && WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }
  const int status = ::pclose(coord);
  ASSERT_TRUE(status >= 0 && WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(MultiProcess, UsageErrorsExitTwo) {
  EXPECT_EQ(run_cmd(ring_bin() + " 2>/dev/null").exit_code, 2);
  EXPECT_EQ(run_cmd(ring_bin() + " run 2>/dev/null").exit_code, 2);
  EXPECT_EQ(run_cmd(ring_bin() + " run --ids 1,2 --alg alg9 2>/dev/null")
                .exit_code,
            2);
  EXPECT_EQ(run_cmd(ring_bin() + " node --index 5 --ring-size 3 --id 1"
                                 " --coordinator-port 1 2>/dev/null")
                .exit_code,
            2);
}

}  // namespace
}  // namespace colex
