#include "svc/soak.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/phase.hpp"
#include "obs/serve.hpp"
#include "runtime/progress.hpp"
#include "sim/parallel.hpp"
#include "util/contracts.hpp"

namespace colex::svc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Latency bucket edges (milliseconds): sim elections are tens of
/// microseconds to a few milliseconds; the long tail catches retry storms.
const std::vector<double> kLatencyBoundsMs = {0.01, 0.025, 0.05, 0.1,  0.25,
                                              0.5,  1.0,   2.5,  5.0,  10.0,
                                              50.0, 250.0};

/// Everything one shard thread owns. Only the two `visible_*` atomics are
/// read by another thread (the monitor); the rest follows the registry
/// ownership contract — written solely by the shard, merged after join.
struct Shard {
  std::vector<ChurnEngine> engines;         // one per owned slot
  std::vector<std::uint64_t> next_election; // per owned slot
  obs::Registry registry;
  std::vector<double> latencies_ms;
  std::vector<std::string> violations;
  double busy_seconds = 0.0;
  std::uint64_t attempts = 0;
  std::atomic<std::uint64_t> visible_finished{0};
  std::atomic<bool> done{false};
  // Double-buffered live view: the shard thread (sole registry writer)
  // copies its registry here roughly every 200ms; scrapes and snapshot
  // writes merge these copies under the mutex instead of ever touching a
  // live registry. Untouched (empty) when no server/snapshot consumer runs.
  std::mutex snapshot_mutex;
  obs::Registry snapshot;
};

struct SharedState {
  std::atomic<std::uint64_t> started{0};
  std::atomic<std::uint64_t> finished{0};
};

void shard_main(Shard& shard, std::size_t shard_index, SharedState& shared,
                const SoakOptions& options, Clock::time_point deadline,
                bool publish_live) {
  obs::Registry& reg = shard.registry;
  // Resolve metric handles once; the loop increments through references.
  // Every family is registered here, before the first election, so even an
  // early scrape of a zero-election shard exposes the full family set (the
  // live scrape and the end-of-run snapshot must render the same `# TYPE`
  // lines).
  obs::Counter& c_elections = reg.counter("elections");
  obs::Counter* c_phase[obs::kPhaseCount];
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    c_phase[i] =
        &reg.counter(obs::labeled("pulses", "phase", obs::phase_name(i)));
  }
  obs::Counter& c_started = reg.counter("svc.elections.started");
  obs::Counter& c_completed = reg.counter("svc.elections.completed");
  obs::Counter& c_retried = reg.counter("svc.elections.retried");
  obs::Counter& c_abandoned = reg.counter("svc.elections.abandoned");
  obs::Counter& c_stalled = reg.counter("svc.elections.stalled");
  obs::Counter& c_diverged = reg.counter("svc.elections.diverged");
  obs::Counter& c_safety = reg.counter("svc.elections.safety_violated");
  obs::Counter& c_attempts = reg.counter("svc.attempts");
  obs::Counter& c_coro_attempts = reg.counter("svc.attempts_coro");
  obs::Counter& c_socket_attempts = reg.counter("svc.attempts_socket");
  obs::Counter& c_retries = reg.counter("svc.retries");
  obs::Counter& c_faults = reg.counter("svc.faults_applied");
  obs::Counter& c_pulses = reg.counter("svc.pulses");
  obs::Counter& c_events = reg.counter("svc.events_delivered");
  obs::Histogram& h_latency =
      reg.histogram("svc.election_ms", kLatencyBoundsMs);
  obs::Gauge& g_util = reg.gauge(obs::labeled(
      "svc.shard_utilization", "shard", std::to_string(shard_index)));

  const auto publish_snapshot = [&shard, &reg] {
    std::lock_guard<std::mutex> lock(shard.snapshot_mutex);
    shard.snapshot = reg;
  };
  const auto publish_every = std::chrono::milliseconds(200);
  auto next_publish = Clock::now();
  const auto t_start = Clock::now();

  auto should_stop = [&shared, &options, deadline] {
    const std::uint64_t finished = shared.finished.load();
    if (options.max_elections != 0 && finished >= options.max_elections) {
      return true;
    }
    return Clock::now() >= deadline && finished >= options.min_elections;
  };

  const std::size_t slots = shard.engines.size();
  for (std::size_t i = 0; !should_stop(); i = (i + 1) % slots) {
    shared.started.fetch_add(1);
    c_started.inc();
    const auto t0 = Clock::now();
    const std::uint64_t election = shard.next_election[i]++;
    const ElectionReport er =
        run_supervised(shard.engines[i], election, options.policy);
    const double elapsed = seconds_since(t0);
    shard.busy_seconds += elapsed;
    const double ms = elapsed * 1e3;
    shard.latencies_ms.push_back(ms);
    h_latency.record(ms);
    shard.attempts += er.attempts;
    c_attempts.inc(er.attempts);
    c_coro_attempts.inc(er.coro_attempts);
    c_socket_attempts.inc(er.socket_attempts);
    if (er.attempts > 1) {
      c_retried.inc();
      c_retries.inc(er.attempts - 1);
    }
    c_faults.inc(er.faults_applied);
    c_pulses.inc(er.pulses);
    c_events.inc(er.events_consumed);
    for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
      c_phase[p]->inc(er.phase_pulses[p]);
    }
    if (er.completed) {
      c_completed.inc();
    } else if (er.final_outcome == sim::FaultOutcome::safety_violated) {
      c_safety.inc();
      if (shard.violations.size() < 8) {
        std::ostringstream os;
        os << "slot " << shard.engines[i].slot() << " election " << election
           << ": " << er.diagnosis;
        shard.violations.push_back(os.str());
      }
    } else {
      c_abandoned.inc();
      if (er.final_outcome == sim::FaultOutcome::diverged) {
        c_diverged.inc();
      } else {
        c_stalled.inc();
      }
      if (shard.violations.size() < 8) {
        std::ostringstream os;
        os << "slot " << shard.engines[i].slot() << " election " << election
           << " abandoned after " << er.attempts << " attempts ("
           << sim::to_string(er.final_outcome) << "): " << er.diagnosis;
        shard.violations.push_back(os.str());
      }
    }
    c_elections.inc();
    shared.finished.fetch_add(1);
    shard.visible_finished.fetch_add(1);
    if (publish_live) {
      const auto now = Clock::now();
      if (now >= next_publish) {
        g_util.set(shard.busy_seconds /
                   std::max(1e-9, std::chrono::duration<double>(now - t_start)
                                      .count()));
        publish_snapshot();
        next_publish = now + publish_every;
      }
    }
  }
  if (publish_live) publish_snapshot();  // final live view before join
  shard.done.store(true);
}

std::uint64_t counter_value(const obs::Registry& reg,
                            const std::string& name) {
  for (const auto& [n, c] : reg.counters()) {
    if (n == name) return c->value();
  }
  return 0;
}

/// Rewrites `path` as a colex-trace-v1 snapshot embedding `metrics`. The
/// meta line says n=0 (no ring shape — a soak is thousands of rings), which
/// colex-inspect treats as "print the metrics, skip the audit".
bool write_snapshot(const std::string& path, const obs::Registry& metrics) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return false;
  obs::TraceMeta meta;
  meta.algorithm = "soak";
  obs::write_jsonl(out, /*events=*/{}, meta, &metrics);
  return out.good();
}

}  // namespace

std::string SoakReport::to_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"colex-soak-v1\""
     << ",\"rings\":" << rings << ",\"shards\":" << shards_used
     << ",\"wall_seconds\":" << wall_seconds << ",\"started\":" << started
     << ",\"completed\":" << completed << ",\"retried\":" << retried
     << ",\"abandoned\":" << abandoned << ",\"stalled\":" << stalled
     << ",\"diverged\":" << diverged
     << ",\"safety_violated\":" << safety_violated
     << ",\"attempts\":" << attempts
     << ",\"coro_attempts\":" << coro_attempts
     << ",\"socket_attempts\":" << socket_attempts
     << ",\"backend\":\"" << backend << "\""
     << ",\"faults_applied\":" << faults_applied
     << ",\"elections_per_second\":" << elections_per_second
     << ",\"latency_ms\":{\"mean\":" << latency_ms.mean
     << ",\"p50\":" << latency_ms.p50 << ",\"p95\":" << latency_ms.p95
     << ",\"p99\":" << latency_ms.p99 << ",\"max\":" << latency_ms.max << "}"
     << ",\"stalled_shards\":";
  std::size_t stalled_shards = 0;
  for (const auto& s : shards) stalled_shards += s.stalled ? 1 : 0;
  os << stalled_shards << ",\"ok\":" << (ok() ? "true" : "false") << "}";
  return os.str();
}

SoakReport run_soak(const SoakOptions& options) {
  COLEX_EXPECTS(options.rings >= 1);
  COLEX_EXPECTS(options.duration_seconds >= 0.0);
  COLEX_EXPECTS(options.progress_depth >= 1);
  COLEX_EXPECTS(options.stall_window >= 1 &&
                options.stall_window <= options.progress_depth);
  const std::size_t shard_count =
      std::min(options.rings, options.shards == 0 ? sim::default_workers()
                                                  : options.shards);

  std::vector<Shard> shards(shard_count);
  for (std::size_t slot = 0; slot < options.rings; ++slot) {
    Shard& shard = shards[slot % shard_count];
    shard.engines.emplace_back(options.seed, slot, options.churn);
    shard.next_election.push_back(0);
  }

  SharedState shared;
  const auto t0 = Clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(options.duration_seconds));

  // Live consumers (the /metrics server and the periodic snapshot file)
  // read shard-published registry copies; shards skip the ~200ms publish
  // entirely when nobody will read it.
  const bool publish_live =
      options.serve >= 0 || !options.snapshot_path.empty();

  // Merged live view: shard-published snapshots plus the monitor's
  // liveness gauges — exactly the families the final report registry
  // carries, so a mid-run scrape and the end-of-run snapshot render the
  // same `# TYPE` set.
  auto merged_live = [&shards, shard_count, &shared, &options, t0] {
    obs::Registry live;
    for (std::size_t s = 0; s < shard_count; ++s) {
      std::lock_guard<std::mutex> lock(shards[s].snapshot_mutex);
      live.merge(shards[s].snapshot);
    }
    const double up = seconds_since(t0);
    live.gauge("svc.uptime_seconds").set(up);
    live.gauge("svc.rings").set(static_cast<double>(options.rings));
    live.gauge("svc.shards").set(static_cast<double>(shard_count));
    live.gauge("svc.elections_per_second")
        .set(up > 0.0 ? static_cast<double>(shared.finished.load()) / up
                      : 0.0);
    return live;
  };

  // Monitor-side flight recorder: one ring, written only by the monitor
  // thread, served live on /debug/flight.
  obs::FlightRecorder flight;
  obs::FlightRing& flight_ring = flight.ring("monitor");

  std::unique_ptr<obs::MetricsServer> server;
  if (options.serve >= 0) {
    obs::MetricsServer::Options so;
    so.port = static_cast<std::uint16_t>(options.serve);
    so.metrics = merged_live;
    so.flight = [&flight] { return flight.render_tail(64); };
    server = std::make_unique<obs::MetricsServer>(std::move(so));
    if (server->start()) {
      if (options.on_serve) options.on_serve(server->port());
    } else {
      server.reset();  // degrade to snapshot-file-only, keep soaking
    }
  }

  std::vector<std::thread> pool;
  pool.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    pool.emplace_back(
        [&shards, &shared, &options, deadline, s, publish_live] {
          shard_main(shards[s], s, shared, options, deadline, publish_live);
        });
  }

  // The calling thread is the monitor: shard-level stall watchdog plus the
  // periodic snapshot file. All its inputs are the visible_* atomics — it
  // never touches a live shard's registry.
  SoakReport report;
  report.rings = options.rings;
  report.shards_used = shard_count;
  rt::ProgressTracker global_progress(options.progress_depth);
  // deque, not vector: ProgressTracker owns a mutex and is immovable.
  std::deque<rt::ProgressTracker> shard_progress;
  std::vector<bool> shard_stalled(shard_count, false);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shard_progress.emplace_back(options.progress_depth);
  }
  auto all_done = [&shards] {
    for (const auto& s : shards) {
      if (!s.done.load()) return false;
    }
    return true;
  };
  auto next_sample = t0;
  auto next_snapshot = t0;
  while (!all_done()) {
    const auto now = Clock::now();
    if (now >= next_sample) {
      const double t_ms = seconds_since(t0) * 1e3;
      for (std::size_t s = 0; s < shard_count; ++s) {
        const std::uint64_t finished = shards[s].visible_finished.load();
        std::ostringstream os;
        os << "t=" << static_cast<std::uint64_t>(t_ms) << "ms shard " << s
           << " finished=" << finished;
        shard_progress[s].record(finished, os.str());
        if (!shards[s].done.load() &&
            shard_progress[s].stalled_tail(options.stall_window)) {
          if (!shard_stalled[s]) flight_ring.record("shard-stalled", s);
          shard_stalled[s] = true;  // sticky: reported post-join
        }
      }
      std::ostringstream os;
      os << "t=" << static_cast<std::uint64_t>(t_ms)
         << "ms started=" << shared.started.load()
         << " finished=" << shared.finished.load();
      global_progress.record(shared.finished.load(), os.str());
      next_sample =
          now + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(options.sample_every_seconds));
    }
    if (!options.snapshot_path.empty() && now >= next_snapshot) {
      if (write_snapshot(options.snapshot_path, merged_live())) {
        ++report.snapshots_written;
        flight_ring.record("snapshot", report.snapshots_written,
                           shared.finished.load());
      }
      next_snapshot =
          now + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        options.snapshot_every_seconds));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (auto& th : pool) th.join();
  flight_ring.record("all-shards-done", shared.finished.load());
  report.wall_seconds = seconds_since(t0);

  // Post-join merge: single-threaded from here on.
  std::vector<double> latencies;
  for (std::size_t s = 0; s < shard_count; ++s) {
    Shard& shard = shards[s];
    report.metrics.merge(shard.registry);
    latencies.insert(latencies.end(), shard.latencies_ms.begin(),
                     shard.latencies_ms.end());
    ShardStats stats;
    stats.elections = shard.visible_finished.load();
    stats.attempts = shard.attempts;
    stats.busy_seconds = shard.busy_seconds;
    stats.utilization = report.wall_seconds > 0.0
                            ? shard.busy_seconds / report.wall_seconds
                            : 0.0;
    stats.stalled = shard_stalled[s];
    report.shards.push_back(stats);
    for (const auto& v : shard.violations) {
      if (report.violations.size() < 16) report.violations.push_back(v);
    }
    // Same family the shard publishes live (gauges merge by max, and a
    // mid-run utilization can exceed the final one): overwrite with the
    // true whole-run value.
    report.metrics
        .gauge(obs::labeled("svc.shard_utilization", "shard",
                            std::to_string(s)))
        .set(stats.utilization);
  }
  report.started = shared.started.load();
  report.completed = counter_value(report.metrics, "svc.elections.completed");
  report.retried = counter_value(report.metrics, "svc.elections.retried");
  report.abandoned = counter_value(report.metrics, "svc.elections.abandoned");
  report.stalled = counter_value(report.metrics, "svc.elections.stalled");
  report.diverged = counter_value(report.metrics, "svc.elections.diverged");
  report.safety_violated =
      counter_value(report.metrics, "svc.elections.safety_violated");
  report.attempts = counter_value(report.metrics, "svc.attempts");
  report.coro_attempts = counter_value(report.metrics, "svc.attempts_coro");
  report.socket_attempts =
      counter_value(report.metrics, "svc.attempts_socket");
  report.backend = to_string(options.policy.backend);
  report.faults_applied =
      counter_value(report.metrics, "svc.faults_applied");
  report.latency_ms = util::summarize(latencies);
  report.elections_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.started) / report.wall_seconds
          : 0.0;
  report.progress = global_progress.history();
  report.metrics.gauge("svc.uptime_seconds").set(report.wall_seconds);
  report.metrics.gauge("svc.rings").set(static_cast<double>(options.rings));
  report.metrics.gauge("svc.shards").set(static_cast<double>(shard_count));
  report.metrics.gauge("svc.elections_per_second")
      .set(report.elections_per_second);

  // Final snapshot carries the full merged registry, not just the atomics.
  if (!options.snapshot_path.empty() &&
      write_snapshot(options.snapshot_path, report.metrics)) {
    ++report.snapshots_written;
  }
  // Stop the server before anything it scrapes goes out of scope.
  if (server) server->stop();
  return report;
}

}  // namespace colex::svc
