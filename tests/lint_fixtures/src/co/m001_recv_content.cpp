// Fixture: M001 — automata reading pulse content.
//
// The `src/co/` subdirectory mirrors the path scoping of the M-rules, and
// the class derives from a name containing "Automaton" so its body falls
// inside the rule's automaton extents.
namespace fixture {

struct Ctx;

struct AutomatonBase {
  virtual ~AutomatonBase() = default;
};

class PeekingNode : public AutomatonBase {
 public:
  void react(Ctx& ctx) {
    if (ctx.recv(0).has_value()) {  // presence-only: allowed
      ++pulses_;
    }
    const int bit = ctx.recv(0).value();  // colex-lint: expect(M001)
    use(bit);
  }

  void shim(Ctx& ctx) {
    const int bit = ctx.recv(1).value();  // colex-lint: allow(M001) expect-suppressed(M001) fixture: legacy adapter scheduled for removal
    use(bit);
  }

  static void use(int) {}

 private:
  int pulses_ = 0;
};

}  // namespace fixture
