// Work-stealing coroutine executor for ring elections (the tentpole of
// DESIGN.md "Coroutine runtime").
//
// Shape
// -----
// Every ring node is one lazily-started coroutine (runtime/port.hpp's
// ElectionTask) over a CoroIo port. recv()/send() are plain calls on the
// node table; wait_any() is the only awaitable. W worker threads each own a
// Chase-Lev deque of ready node indices; a worker pops LIFO from its own
// deque, steals FIFO round-robin from the others, and parks on a condition
// variable when the whole system has no ready work.
//
// Sleep/wake protocol (per node, Dekker-style, all seq_cst)
// ---------------------------------------------------------
//   consumer (the node, in await_suspend):   producer (a neighbor's send):
//     state <- PARKED                          channel.produced += 1
//     re-check channels / stop                 if CAS(state: PARKED->READY):
//     if pulse or stop:                            push node to own deque
//       if CAS(state: PARKED->RUNNING):        // CAS failed: node is READY/
//         resume inline (return false)         // RUNNING/DONE; the pulse
//     stay suspended (return true)             // rides an existing wakeup
//
// seq_cst makes the two stores and two loads a Dekker pair: either the
// consumer's re-check sees the new pulse, or the producer's CAS sees
// PARKED — a pulse can never slip between the consumer's last empty poll
// and its suspension (no lost wakeup). The CAS claims the wakeup exactly
// once, so a node is never double-resumed; pulses that arrive while the
// node is already READY coalesce into the pending wakeup (batched wakeups
// — counted, and harmless to the fault model because pulses are fungible:
// consuming k batched pulses one recv() at a time is indistinguishable
// from k separate wakeups).
//
// A node that calls wait_any() while pulses ARE pending does not park — it
// YIELDS: suspends and requeues itself FIFO on the calling worker. The
// algorithms poll one port at a time, so a pending pulse on the other port
// (Algorithm 2's initiated wait) would otherwise spin the worker inside a
// single resume forever, starving the very neighbor that owes the awaited
// pulse. Yielded nodes count toward ready_count_, so quiescence detection
// is untouched.
//
// Quiescence (counter-based, worker-side)
// ---------------------------------------
// The stabilizing algorithms never terminate on their own; the harness
// stops them when the fabric is provably quiet. The last worker to park
// (idle == W under the park mutex) checks ready_count == 0 and global
// sent == consumed. Per-worker counters are relaxed, but every worker's
// idle transition is a seq_cst RMW on idle_workers_, so the RMW chain
// orders each worker's counter writes before the last parker's check
// (release sequence through the RMWs) — the sums are exact, not racy
// approximations. Natural termination (Algorithm 2) is detected separately
// by done_count == n at the moment the last node returns. A pulse sent to
// an already-terminated node is swallowed but counted consumed (same
// convention as ThreadRing's crashed-node swallow), keeping the
// conservation argument sound.
//
// The driver thread is the stall watchdog: it waits on a completion cv
// with the ThreadRing monitor's sampling cadence, records a ProgressTracker
// history, and on timeout broadcasts stop and snapshots dump(). After the
// workers join, the driver resumes every unfinished coroutine once (with
// stop set, wait_any can no longer suspend), so all outcomes — stopped
// flags included — are collected exactly as run_on_threads reports them.
#pragma once

#include <atomic>
#include <condition_variable>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "coro/deque.hpp"
#include "coro/ring.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "runtime/port.hpp"
#include "runtime/progress.hpp"
#include "sim/types.hpp"
#include "util/contracts.hpp"

namespace colex::coro {

struct ExecutorOptions {
  std::size_t workers = 1;
  std::uint64_t timeout_ms = 30'000;  ///< stall watchdog budget
  /// Optional caller-owned registry: per-worker registries are merged into
  /// it post-join (obs single-writer contract; never written concurrently).
  obs::Registry* metrics = nullptr;
};

/// Aggregated executor telemetry (always on: plain per-worker counters,
/// summed post-run; independent of the obs registry).
struct ExecStats {
  std::uint64_t sent = 0;       ///< pulses deposited on channels
  std::uint64_t consumed = 0;   ///< pulses taken off channels
  std::uint64_t swallowed = 0;  ///< pulses to already-terminated nodes
  std::uint64_t resumes = 0;    ///< coroutine resumptions
  std::uint64_t steals = 0;     ///< successful cross-deque steals
  std::uint64_t parks = 0;      ///< worker condvar parks
  std::uint64_t wakeups = 0;    ///< PARKED->READY transitions claimed
  std::uint64_t batched = 0;    ///< pulses coalesced into a pending wakeup
  std::uint64_t yields = 0;     ///< wait_any with pulses pending (requeue)
  std::size_t workers = 0;
};

class CoroIo;

class Executor {
 public:
  Executor(std::size_t n, const std::vector<bool>& port_flips,
           ExecutorOptions options);

  std::size_t size() const { return nodes_.size(); }
  std::size_t workers() const { return worker_count_; }

  /// Port handle for node `v` (hand to spawn_alg / the template algorithms).
  CoroIo io(std::uint32_t v);

  /// Registers node `v`'s coroutine. All n nodes must be bound before run().
  void bind(std::uint32_t v, std::coroutine_handle<> h) {
    COLEX_EXPECTS(!nodes_[v].handle);
    nodes_[v].handle = h;
  }

  /// Seeds every node ready, drives the run to completion (quiescence,
  /// all-terminated, or watchdog timeout), joins the workers, and finishes
  /// every coroutine. Returns true unless the watchdog fired (then
  /// stall_dump() holds the post-mortem).
  bool run();

  bool timed_out() const { return timed_out_; }
  /// True when the run ended by counter-based quiescence detection (vs
  /// every node terminating on its own).
  bool quiescent() const { return quiescent_.load(); }
  const std::string& stall_dump() const { return stall_dump_; }

  std::uint64_t total_sent() const { return sum(&WorkerStats::sent); }
  std::uint64_t total_consumed() const {
    return sum(&WorkerStats::consumed) + sum(&WorkerStats::swallowed);
  }
  ExecStats stats() const;

  /// Human-readable post-mortem: global counters, scheduler state, any
  /// anomalous nodes (pending pulses / not parked), progress history, and
  /// the metrics snapshot when a registry is attached. Intended post-run
  /// or from the watchdog path.
  std::string dump() const;

  // --- node-side operations (called from coroutine bodies) --------------

  bool recv_pulse(std::uint32_t v, sim::Port p) {
    auto& ch = nodes_[v].in[sim::index(p)];
    if (!ch.try_consume()) return false;
    current_->stats->consumed.store(
        current_->stats->consumed.load(std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    return true;
  }

  void send_pulse(std::uint32_t v, sim::Port p) {
    auto& src = nodes_[v];
    const std::uint32_t to = src.peer[sim::index(p)];
    auto& dst = nodes_[to];
    dst.in[src.peer_port[sim::index(p)]].produce();  // seq_cst deposit
    auto& stats = *current_->stats;
    stats.sent.store(stats.sent.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
    NodeState expected = NodeState::parked;
    if (dst.state.compare_exchange_strong(expected, NodeState::ready,
                                          std::memory_order_seq_cst,
                                          std::memory_order_seq_cst)) {
      // We own the wakeup: exactly one push per PARKED->READY transition.
      ready_count_.fetch_add(1, std::memory_order_seq_cst);
      current_->deque->push(to);
      stats.wakeups.store(stats.wakeups.load(std::memory_order_relaxed) + 1,
                          std::memory_order_relaxed);
      if (idle_workers_.load(std::memory_order_seq_cst) != 0) {
        wake_one_worker();
      }
    } else if (expected == NodeState::done) {
      // Swallowed (receiver terminated): total_consumed() counts these so
      // conservation-based quiescence stays sound — mirror of ThreadRing's
      // crashed-node convention.
      stats.swallowed.store(
          stats.swallowed.load(std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
    } else {
      // READY or RUNNING: the pulse rides the receiver's existing wakeup.
      stats.batched.store(stats.batched.load(std::memory_order_relaxed) + 1,
                          std::memory_order_relaxed);
    }
  }

  /// Publishes node `v`'s current algorithm phase: a relaxed store on the
  /// node's own cache line, read by stall dumps and the per-phase node
  /// distribution gauges. Always cheap enough to leave unconditional.
  void set_node_phase(std::uint32_t v, obs::Phase p) {
    nodes_[v].phase.store(static_cast<std::uint8_t>(obs::index(p)),
                          std::memory_order_relaxed);
  }

  /// Flight recorder (armed iff a metrics registry is attached; nullptr
  /// otherwise — zero-overhead-when-off). One ring per execution context.
  const obs::FlightRecorder* flight() const { return flight_.get(); }

  bool stopping() const { return stop_.load(std::memory_order_seq_cst); }
  bool node_ready_check(std::uint32_t v) const {
    return nodes_[v].has_pending() || stopping();
  }

  /// The awaitable behind CoroIo::wait_any() — see the protocol in the
  /// file header. await_suspend copies its members to locals before any
  /// state publication: the moment a store lands, another thread may resume
  /// (and even finish) the coroutine, destroying this awaiter with it.
  ///
  /// Two suspension flavors:
  ///  * channels empty  -> PARK (Dekker protocol; a producer resumes us)
  ///  * pulses pending  -> YIELD (requeue FIFO on the calling worker).
  /// The yield path exists because the algorithms poll one port at a time:
  /// Algorithm 2's initiated wait loops `recv_ccw / wait_any` while a CW
  /// pulse may sit unconsumed. On preemptive ThreadRing that busy-wait is
  /// harmless; on a cooperative executor, resuming inline would spin the
  /// worker forever without ever scheduling the neighbor that owes the
  /// CCW pulse. Yielding keeps every ready node running in FIFO turns, so
  /// the fabric always makes global progress.
  struct WaitAnyAwaiter {
    Executor* ex;
    std::uint32_t v;

    // Stop short-circuits suspension entirely: the post-join drain relies
    // on wait_any never suspending (and returning false) once stop_ is set.
    bool await_ready() const noexcept { return ex->stopping(); }
    bool await_suspend(std::coroutine_handle<>) noexcept {
      Executor* const e = ex;  // frame (and *this) may die after a store
      const std::uint32_t self = v;
      auto& nd = e->nodes_[self];
      if (nd.has_pending()) {
        // Cooperative yield. We are the running node on this worker, so the
        // yield queue is ours; producers never touch READY nodes (their CAS
        // is PARKED->READY only), so the frame stays ours until we return.
        ExecContext& ctx = *current_;
        ctx.stats->yields.store(
            ctx.stats->yields.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
        nd.state.store(NodeState::ready, std::memory_order_seq_cst);
        e->ready_count_.fetch_add(1, std::memory_order_seq_cst);
        ctx.yields->push(self);
        return true;
      }
      nd.state.store(NodeState::parked, std::memory_order_seq_cst);
      if (e->node_ready_check(self)) {
        NodeState expected = NodeState::parked;
        if (nd.state.compare_exchange_strong(expected, NodeState::running,
                                             std::memory_order_seq_cst,
                                             std::memory_order_seq_cst)) {
          return false;  // reclaimed our own wakeup: resume inline
        }
        // A producer won the CAS and pushed us to a deque; resuming inline
        // here would double-resume the frame.
      }
      return true;
    }
    // False only on stop (ThreadRing's wait_any contract): the algorithms
    // treat false as "stopped, record and co_return", which is exactly how
    // the drain unwinds nodes that still hold unconsumable pulses. True
    // does NOT promise a pulse — wakeups can be spurious: a producer's
    // produce -> CAS window may straddle the consumer's whole
    // reclaim/consume/re-park cycle, landing the CAS on a later park whose
    // channels are already empty. The algorithms re-poll and wait again,
    // exactly as they do after a ThreadRing condvar wake.
    bool await_resume() const noexcept { return !ex->stopping(); }
  };

 private:
  // Per-execution-context (worker or drain driver) counters: written only
  // by the owning thread (relaxed load+store, never RMW), read by others
  // only behind a happens-before edge (idle RMW chain, join).
  struct alignas(kCacheLine) WorkerStats {
    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> consumed{0};
    std::atomic<std::uint64_t> swallowed{0};
    std::atomic<std::uint64_t> resumes{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> wakeups{0};
    std::atomic<std::uint64_t> batched{0};
    std::atomic<std::uint64_t> yields{0};
  };

  /// Thread-local execution context: which deque send_pulse() pushes
  /// wakeups to, which FIFO wait_any yields requeue on, and which stats
  /// slot the thread owns. Workers install one on entry; the driver
  /// installs its own for the post-stop drain.
  struct ExecContext {
    WorkerStats* stats;
    WorkDeque* deque;
    YieldQueue* yields;
    std::size_t index;
  };
  static thread_local ExecContext* current_;

  void worker_main(std::size_t w);
  void run_node(ExecContext& ctx, std::uint32_t v);
  /// Parks the calling worker; the last to park runs quiescence detection.
  void park_worker(ExecContext& ctx);
  void signal_stop();
  void wake_one_worker();
  void drain();
  void record_progress_sample(double elapsed_ms);
  void publish_metrics(const std::vector<obs::Registry>& worker_registries);

  /// Records a cold-path scheduler event on execution context `ctx`'s
  /// flight ring (no-op when the recorder is off). Single-writer per ring:
  /// context i only ever writes flight_rings_[i].
  void flight_record(std::size_t ctx, const char* what, std::uint64_t a = 0,
                     std::uint64_t b = 0) {
    if (flight_ != nullptr) flight_rings_[ctx]->record(what, a, b);
  }

  std::uint64_t sum(std::atomic<std::uint64_t> WorkerStats::*field) const {
    std::uint64_t total = 0;
    for (const auto& s : stats_) {
      total += (s.*field).load(std::memory_order_seq_cst);
    }
    return total;
  }

  std::vector<CoroNode> nodes_;
  ExecutorOptions options_;
  std::size_t worker_count_;
  // One deque per worker plus one for the driver's post-stop drain.
  std::vector<std::unique_ptr<WorkDeque>> deques_;
  // Per-worker cooperative-yield FIFOs (same worker_count_ + 1 layout).
  std::vector<std::unique_ptr<YieldQueue>> yields_;
  std::vector<WorkerStats> stats_;  // worker_count_ + 1 slots
  // Flight recorder: rings "worker.0".."worker.W-1" plus "driver" (watchdog
  // + drain events). Created in the constructor, before any worker spawns.
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::vector<obs::FlightRing*> flight_rings_;  // worker_count_ + 1 slots

  std::atomic<std::uint64_t> ready_count_{0};
  std::atomic<std::size_t> idle_workers_{0};
  std::atomic<std::size_t> done_count_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> quiescent_{false};
  bool timed_out_ = false;  // driver-owned
  std::string stall_dump_;  // driver-owned

  std::mutex park_mutex_;
  std::condition_variable park_cv_;  // workers wait for ready work
  std::condition_variable done_cv_;  // driver waits for completion
  static constexpr std::size_t kProgressSamples = 16;
  rt::ProgressTracker progress_{kProgressSamples};
};

/// The coroutine runtime's PulsePort: a 12-byte handle into the executor's
/// node table. recv/send never block; wait_any parks the node coroutine.
class CoroIo {
 public:
  CoroIo(Executor& ex, std::uint32_t v) : ex_(&ex), v_(v) {}

  bool recv(sim::Port p) { return ex_->recv_pulse(v_, p); }
  void send(sim::Port p) { ex_->send_pulse(v_, p); }
  /// Phase-publication extension (detected by the transcriptions via
  /// `requires { io.set_phase(p); }`, same as BlockingPortAdapter).
  void set_phase(obs::Phase p) { ex_->set_node_phase(v_, p); }
  Executor::WaitAnyAwaiter wait_any() {
    return Executor::WaitAnyAwaiter{ex_, v_};
  }

 private:
  Executor* ex_;
  std::uint32_t v_;
};

static_assert(rt::PulsePort<CoroIo>);

inline CoroIo Executor::io(std::uint32_t v) { return CoroIo(*this, v); }

}  // namespace colex::coro
