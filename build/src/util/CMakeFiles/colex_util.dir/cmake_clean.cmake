file(REMOVE_RECURSE
  "CMakeFiles/colex_util.dir/rng.cpp.o"
  "CMakeFiles/colex_util.dir/rng.cpp.o.d"
  "CMakeFiles/colex_util.dir/stats.cpp.o"
  "CMakeFiles/colex_util.dir/stats.cpp.o.d"
  "CMakeFiles/colex_util.dir/table.cpp.o"
  "CMakeFiles/colex_util.dir/table.cpp.o.d"
  "libcolex_util.a"
  "libcolex_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colex_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
