// Blocking-style transcriptions of the paper's pseudocode, line for line,
// for execution on real threads (thread_ring.hpp). These are deliberately
// written as loops over non-blocking recv calls — the exact shape of
// Algorithms 1, 2 and 3 in the paper — with a blocking wait inserted only
// where a loop iteration made no progress (which is where an event-driven
// node would go back to sleep).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "co/alg3.hpp"
#include "co/oriented.hpp"
#include "co/roles.hpp"
#include "runtime/thread_ring.hpp"

namespace colex::rt {

/// Per-node outcome of a blocking run.
struct BlockingOutcome {
  std::uint64_t id = 0;
  co::Role role = co::Role::undecided;
  co::PulseCounters counters;          ///< oriented algorithms
  std::uint64_t rho_port[2] = {0, 0};  ///< Algorithm 3
  std::uint64_t sigma_port[2] = {0, 0};
  sim::Port cw_port = sim::Port::p1;   ///< Algorithm 3 orientation output
  bool terminated = false;  ///< returned via the algorithm's own exit (Alg 2)
  bool stopped = false;     ///< harness stop (quiescence) ended the run
  /// Times this node crash-recovered and re-ran its algorithm from scratch.
  /// A node that crashed and never recovered reports a default outcome with
  /// `stopped` set: its local state died with it.
  std::uint64_t restarts = 0;
};

/// Algorithm 1 on an oriented ring; runs until the harness signals
/// quiescence (the algorithm itself never terminates).
BlockingOutcome run_alg1_blocking(NodeIo io, std::uint64_t id);

/// Algorithm 2 on an oriented ring; returns when the node terminates.
BlockingOutcome run_alg2_blocking(NodeIo io, std::uint64_t id);

/// Algorithm 3 on a (possibly scrambled) ring; runs until harness stop.
BlockingOutcome run_alg3_blocking(NodeIo io, std::uint64_t id,
                                  co::IdScheme scheme);

/// Which algorithm a threaded run executes.
enum class ThreadAlg { alg1, alg2, alg3_doubled, alg3_improved };

struct ThreadRunResult {
  std::vector<BlockingOutcome> outcomes;
  std::uint64_t pulses = 0;       ///< total pulses sent on the fabric
  bool completed = false;         ///< quiescence or natural termination
  std::size_t leader_count = 0;
  std::optional<sim::NodeId> leader;
  std::uint64_t crashes = 0;      ///< crash() events during the run
  std::uint64_t recoveries = 0;   ///< recover() events during the run
  /// Non-empty iff the run timed out (`completed == false`): the watchdog's
  /// per-node post-mortem (pending ports, sent/consumed counters, crash
  /// flags) from ThreadRing::dump(), so a stalled run aborts with evidence
  /// instead of hanging.
  std::string stall_dump;
};

/// A fault script run concurrently with the algorithms, in its own thread:
/// it may crash(), recover() and inject_pulse() on the live fabric. It
/// deliberately races the workers — that nondeterminism is the point of
/// exercising faults on real threads (the simulator side, sim/faults.hpp,
/// covers the reproducible-schedule half).
using ChaosScript = std::function<void(ThreadRing&)>;

/// Spawns one thread per node, runs `alg`, monitors for quiescence /
/// termination, joins, and aggregates results. `port_flips` must be empty
/// for the oriented algorithms. `timeout_ms` is the watchdog budget: a run
/// that exceeds it is aborted (never hangs) and `stall_dump` is filled in.
/// A worker whose node crash-stops parks until recover() or stop; on
/// recovery it re-runs the algorithm from scratch with erased state.
/// A non-null `metrics` registry enables the fabric's telemetry probes
/// (per-node pulse counts, blocking-wait durations) and receives the
/// published snapshot after the run; the stall post-mortem embeds it too.
ThreadRunResult run_on_threads(const std::vector<std::uint64_t>& ids,
                               const std::vector<bool>& port_flips,
                               ThreadAlg alg,
                               std::uint64_t timeout_ms = 30'000,
                               ChaosScript chaos = {},
                               obs::Registry* metrics = nullptr);

}  // namespace colex::rt
