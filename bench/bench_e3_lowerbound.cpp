// E3 — Theorem 4 / Theorem 20 (lower bound): any terminating
// content-oblivious leader election sends at least n*floor(log2(k/n))
// pulses when k IDs are assignable. Reproduced constructively:
//  (a) Lemma 22 — solitude patterns of Algorithm 2 are pairwise distinct;
//  (b) Corollary 24 — among k patterns, n share a prefix >= floor(log2(k/n));
//  (c) Theorem 20 — placing those n IDs on a ring under the Definition 21
//      scheduler forces every node to replay its solitude prefix, costing at
//      least n*floor(log2(k/n)) pulses before any behavioral divergence;
//  (d) Theorem 1's upper bound always dominates the lower bound.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "co/alg2.hpp"
#include "co/election.hpp"
#include "lb/solitude.hpp"
#include "sim/network.hpp"
#include "util/table.hpp"

int main() {
  using namespace colex;
  bench::banner(
      "E3  Theorem 4 lower bound via solitude patterns (bench_e3_lowerbound)",
      "every terminating content-oblivious election sends >= "
      "n*floor(log2(k/n)) pulses; each ID's solitude pattern is unique");
  bench::WallTimer total;
  bench::JsonReport json_report("E3", "Theorem 4 lower bound via solitude patterns");

  const lb::AutomatonFactory factory =
      [](std::uint64_t id) -> std::unique_ptr<sim::PulseAutomaton> {
    return std::make_unique<co::Alg2Terminating>(id);
  };

  // (a) Lemma 22 at scale.
  const std::uint64_t kMaxId = 2048;
  const auto patterns = lb::solitude_patterns(factory, 1, kMaxId);
  const bool unique = lb::all_patterns_distinct(patterns);
  std::cout << "Lemma 22: " << kMaxId
            << " solitude patterns extracted; pairwise distinct: "
            << (unique ? "yes" : "NO") << "\n\n";

  util::Table table({"n", "k (IDs)", "bound n*floor(log2(k/n))",
                     "shared prefix s", "forced pulses n*s",
                     "replay matched", "algorithm pulses n(2*IDmax+1)"});
  bool all_ok = unique;

  for (const std::size_t n : {1u, 2u, 4u, 8u, 16u}) {
    for (const std::uint64_t k : {64ull, 256ull, 1024ull, 2048ull}) {
      if (k < n) continue;
      const std::uint64_t bound = co::theorem4_lower_bound(n, k);
      std::vector<lb::SolitudePattern> pool(patterns.begin(),
                                            patterns.begin() +
                                                static_cast<std::ptrdiff_t>(k));
      const auto group = lb::best_prefix_group(pool, n);
      const std::size_t s = group.prefix_length;
      const bool prefix_ok = n * s >= bound;

      // (c) Run the n chosen IDs on a real ring under the Definition 21
      // scheduler and verify each node replays its solitude prefix.
      auto net = sim::PulseNetwork::ring(n);
      std::uint64_t id_max = 0;
      for (sim::NodeId v = 0; v < n; ++v) {
        net.set_automaton(
            v, std::make_unique<co::Alg2Terminating>(group.ids[v]));
        id_max = std::max(id_max, group.ids[v]);
      }
      std::vector<std::string> observed(n);
      sim::RunOptions opts;
      opts.on_deliver = [&observed](sim::NodeId v, sim::Port,
                                    sim::Direction d) {
        observed[v].push_back(d == sim::Direction::cw ? '0' : '1');
      };
      sim::SolitudeScheduler sched;
      const auto report = net.run(sched, opts);
      bool replay = report.quiescent;
      for (sim::NodeId v = 0; v < n && replay; ++v) {
        const auto& full = patterns[group.ids[v] - 1].bits;
        replay = observed[v].size() >= s &&
                 observed[v].substr(0, s) == full.substr(0, s);
      }
      const bool dominates = co::theorem1_pulses(n, id_max) >= bound &&
                             report.sent >= bound;
      all_ok = all_ok && prefix_ok && replay && dominates;

      table.add_row({util::Table::num(static_cast<std::uint64_t>(n)),
                     util::Table::num(k), util::Table::num(bound),
                     util::Table::num(static_cast<std::uint64_t>(s)),
                     util::Table::num(n * s), replay ? "yes" : "NO",
                     util::Table::num(co::theorem1_pulses(n, id_max))});
    }
  }
  table.print(std::cout);
  json_report.root().set("all_ok", all_ok);
  json_report.finish(total.seconds());

  bench::verdict(all_ok,
                 "shared solitude prefixes force >= n*floor(log2(k/n)) "
                 "pulses; Theorem 1's cost dominates the bound everywhere");
  return all_ok ? 0 : 1;
}
