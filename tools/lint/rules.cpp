#include "lint/rules.hpp"

#include <algorithm>
#include <iterator>
#include <map>
#include <set>

#include "lint/callgraph.hpp"
#include "lint/concurrency.hpp"
#include "lint/symbols.hpp"
#include "lint/taint.hpp"
#include "sim/parallel.hpp"

namespace colex::lint {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

bool path_contains(const std::string& path, const std::string& needle) {
  return path.find(needle) != std::string::npos;
}

/// True for files the M-rules treat as content-oblivious model code. The
/// check is on the relative path, so fixtures mirror it with a
/// `src/co/...` subdirectory.
bool in_model_dirs(const std::string& path) {
  return path_contains(path, "src/co/") || path_contains(path, "src/colib/");
}

void add(std::vector<Finding>& out, const char* rule, const SourceFile& f,
         int line, std::string message) {
  out.push_back(Finding{rule, f.path, line, std::move(message)});
}

/// Index of the token matching `open` ('(' -> ')', '<' -> '>'), or kNone.
std::size_t match_forward(const std::vector<Token>& toks, std::size_t open,
                          char open_ch, char close_ch) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (toks[j].kind != Tok::punct) continue;
    if (toks[j].text[0] == open_ch) ++depth;
    else if (toks[j].text[0] == close_ch) {
      --depth;
      if (depth == 0) return j;
    }
  }
  return kNone;
}

// --- D001: banned nondeterminism sources --------------------------------

const std::set<std::string>& banned_random_idents() {
  static const std::set<std::string> kBanned = {
      "rand",          "srand",         "rand_r",
      "drand48",       "lrand48",       "random",
      "random_device", "mt19937",       "mt19937_64",
      "minstd_rand",   "minstd_rand0",  "default_random_engine",
      "ranlux24",      "ranlux48",      "knuth_b",
      "getpid",        "gettimeofday",
  };
  return kBanned;
}

void rule_d001(const SourceFile& f, std::vector<Finding>& out) {
  const auto& toks = f.tokens;
  // `#include <random>` mentions a banned *header name*, not a use site.
  std::set<int> include_lines;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text == "#" && toks[i + 1].text == "include") {
      include_lines.insert(toks[i].line);
    }
  }
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::identifier) continue;
    if (include_lines.count(toks[i].line) != 0) continue;
    const std::string& id = toks[i].text;
    if (banned_random_idents().count(id) != 0) {
      add(out, "D001", f, toks[i].line,
          "nondeterministic source '" + id +
              "': all randomness must flow through the seeded generators in "
              "util/rng.hpp");
      continue;
    }
    // `time(nullptr)` / `time(NULL)` / `time(0)` — wall-clock seeding.
    if (id == "time" && i + 3 < toks.size() && toks[i + 1].text == "(" &&
        toks[i + 3].text == ")" &&
        (toks[i + 2].text == "nullptr" || toks[i + 2].text == "NULL" ||
         toks[i + 2].text == "0")) {
      add(out, "D001", f, toks[i].line,
          "wall-clock seed 'time(" + toks[i + 2].text +
              ")': runs must be reproducible from an explicit seed");
    }
  }
}

// --- D002: iteration over unordered containers --------------------------

bool is_unordered_type(const std::string& id) {
  return id == "unordered_map" || id == "unordered_set" ||
         id == "unordered_multimap" || id == "unordered_multiset";
}

void rule_d002(const SourceFile& f, std::vector<Finding>& out) {
  const auto& toks = f.tokens;
  // Pass 1: names declared with an unordered type (members, locals, params).
  std::set<std::string> unordered_vars;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::identifier || !is_unordered_type(toks[i].text))
      continue;
    if (toks[i + 1].text != "<") continue;
    const std::size_t close = match_forward(toks, i + 1, '<', '>');
    if (close == kNone) continue;
    std::size_t j = close + 1;
    while (j < toks.size() && toks[j].kind == Tok::punct &&
           (toks[j].text == "&" || toks[j].text == "*")) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == Tok::identifier) {
      unordered_vars.insert(toks[j].text);
    }
  }
  if (unordered_vars.empty()) return;

  auto flag = [&](std::size_t i, const std::string& var) {
    add(out, "D002", f, toks[i].line,
        "iteration over unordered container '" + var +
            "': the visit order is unspecified and can leak into "
            "trace/metrics/repro output — iterate a sorted snapshot or use "
            "an ordered container");
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // Range-for whose range expression names an unordered variable.
    if (toks[i].kind == Tok::identifier && toks[i].text == "for" &&
        i + 1 < toks.size() && toks[i + 1].text == "(") {
      const std::size_t close = match_forward(toks, i + 1, '(', ')');
      if (close == kNone) continue;
      std::size_t colon = kNone;
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (toks[j].kind != Tok::punct) continue;
        if (toks[j].text == "(") ++depth;
        else if (toks[j].text == ")") --depth;
        else if (toks[j].text == ":" && depth == 1 &&
                 toks[j - 1].text != ":" && toks[j + 1].text != ":") {
          colon = j;
          break;
        }
      }
      if (colon == kNone) continue;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks[j].kind == Tok::identifier &&
            unordered_vars.count(toks[j].text) != 0) {
          flag(i, toks[j].text);
          break;
        }
      }
      continue;
    }
    // Explicit iterator loops: u.begin() / u.cbegin().
    if (toks[i].kind == Tok::identifier &&
        unordered_vars.count(toks[i].text) != 0 && i + 3 < toks.size() &&
        toks[i + 1].text == "." &&
        (toks[i + 2].text == "begin" || toks[i + 2].text == "cbegin") &&
        toks[i + 3].text == "(") {
      flag(i, toks[i].text);
    }
  }
}

// --- D003: mutable function-local statics -------------------------------

void rule_d003(const SourceFile& f, const FileIndex& index,
               std::vector<Finding>& out) {
  for (const int line : index.mutable_static_local_lines) {
    add(out, "D003", f, line,
        "mutable function-local 'static': hidden state survives across "
        "runs and clones, breaking run-to-run determinism and snapshot "
        "exploration — make it a member, a parameter, or const");
  }
}

// --- M-rules: shared extent machinery -----------------------------------

/// Token ranges of "automaton code" in this file: bodies of classes that
/// derive from an Automaton type, plus out-of-line member functions of such
/// classes (`X::f` definitions in a .cpp).
std::vector<std::pair<std::size_t, std::size_t>> automaton_extents(
    const FileIndex& index, const ProjectIndex& project) {
  std::vector<std::pair<std::size_t, std::size_t>> extents;
  for (const ClassDef& cls : index.classes) {
    if (project.automaton_classes.count(cls.name) != 0 &&
        cls.body_end > cls.body_begin) {
      extents.emplace_back(cls.body_begin, cls.body_end);
    }
  }
  for (const FunctionDef& fn : index.functions) {
    if (!fn.owner.empty() &&
        project.automaton_classes.count(fn.owner) != 0 &&
        fn.body_end > fn.body_begin) {
      extents.emplace_back(fn.sig_begin, fn.body_end);
    }
  }
  // Inline member functions sit inside their class-body extent; merge
  // overlaps so each token is scanned (and flagged) at most once.
  std::sort(extents.begin(), extents.end());
  std::vector<std::pair<std::size_t, std::size_t>> merged;
  for (const auto& e : extents) {
    if (!merged.empty() && e.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, e.second);
    } else {
      merged.push_back(e);
    }
  }
  return merged;
}

void rule_m001(const SourceFile& f, const FileIndex& index,
               const ProjectIndex& project, std::vector<Finding>& out) {
  if (!in_model_dirs(f.path)) return;
  const auto& toks = f.tokens;
  for (const auto& [begin, end] : automaton_extents(index, project)) {
    for (std::size_t i = begin; i < end; ++i) {
      if (toks[i].kind != Tok::identifier || toks[i].text != "recv") continue;
      if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
      const std::size_t close = match_forward(toks, i + 1, '(', ')');
      if (close == kNone || close + 1 >= toks.size()) continue;
      const Token& after = toks[close + 1];
      bool content_read = false;
      if (after.kind == Tok::punct && after.text == "." &&
          close + 2 < toks.size() && toks[close + 2].text != "has_value") {
        content_read = true;  // recv(p).value() / recv(p).payload ...
      }
      if (after.kind == Tok::punct && after.text == "-" &&
          close + 2 < toks.size() && toks[close + 2].text == ">") {
        content_read = true;  // recv(p)->field
      }
      // *ctx.recv(p) — leading dereference of the optional's payload.
      if (i >= 3 && toks[i - 1].text == "." &&
          toks[i - 2].kind == Tok::identifier && toks[i - 3].text == "*") {
        content_read = true;
      }
      if (content_read) {
        add(out, "M001", f, toks[i].line,
            "automaton reads message *content* from recv(): in the fully "
            "defective model a pulse carries no payload — only its presence "
            "and arrival port may be used (recv_pulse/has_value)");
      }
    }
  }
}

const std::set<std::string>& network_global_idents() {
  static const std::set<std::string> kBanned = {
      "automaton",      "automaton_as",   "set_automaton",
      "inbox_size",     "node_crashed",   "pending_channels",
      "channel_pending", "channel_source", "channel_target",
      "in_transit",     "in_flight",      "total_sent",
      "total_delivered", "total_consumed", "Network",
  };
  return kBanned;
}

void rule_m002(const SourceFile& f, const FileIndex& index,
               const ProjectIndex& project, std::vector<Finding>& out) {
  if (!in_model_dirs(f.path)) return;
  const auto& toks = f.tokens;
  for (const auto& [begin, end] : automaton_extents(index, project)) {
    for (std::size_t i = begin; i < end; ++i) {
      if (toks[i].kind != Tok::identifier) continue;
      if (network_global_idents().count(toks[i].text) == 0) continue;
      add(out, "M002", f, toks[i].line,
          "automaton code touches global network state ('" + toks[i].text +
              "'): a node may depend only on its own port identity and "
              "pulse counts (paper §2) — route everything through Context");
    }
  }
}

void rule_m003(const SourceFile& f, const FileIndex& index,
               std::vector<Finding>& out) {
  // (a) The Pulse payload must stay empty, everywhere.
  for (const ClassDef& cls : index.classes) {
    if (cls.name == "Pulse" && cls.body_end > cls.body_begin) {
      add(out, "M003", f, cls.line,
          "'Pulse' must stay an empty struct: any member smuggles content "
          "through the fully defective channel (paper §2)");
    }
  }
  // (b) Content-carrying payload instantiations inside model code.
  if (!in_model_dirs(f.path)) return;
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != Tok::identifier) continue;
    const std::string& id = toks[i].text;
    if (id != "Network" && id != "Context" && id != "Automaton") continue;
    if (toks[i + 1].text != "<") continue;
    std::size_t j = i + 2;
    while (j + 1 < toks.size() && toks[j].kind == Tok::identifier &&
           toks[j + 1].text == ":" && j + 2 < toks.size() &&
           toks[j + 2].text == ":") {
      j += 3;  // skip namespace qualifiers (sim::Pulse)
    }
    if (j >= toks.size() || toks[j].kind != Tok::identifier) continue;
    const std::string& payload = toks[j].text;
    if (payload == "Pulse" || payload == "P") continue;
    add(out, "M003", f, toks[i].line,
        "content-carrying payload '" + payload + "' in " + id +
            "<>: src/co and src/colib are content-oblivious — only "
            "Network<Pulse> instantiations belong here");
  }
}

// --- C001: clone completeness -------------------------------------------

struct CloneRecord {
  // Members aggregated from every definition of the class (header).
  std::map<std::string, std::pair<std::string, int>> members;  // -> file,line
  // Every clone() definition: anchor + mentioned token texts.
  struct Def {
    std::string file;
    int line = 0;
    std::set<std::string> mentions;
    bool has_this = false;
  };
  std::vector<Def> clone_defs;
  bool has_user_copy_ctor = false;
  bool copy_ctor_defaulted = false;
  std::set<std::string> copy_mentions;
};

bool signature_is_copy_ctor(const std::vector<Token>& toks,
                            const FunctionDef& fn) {
  // Look for `const <Owner> &` between the name and the body.
  for (std::size_t j = fn.sig_begin; j + 2 < fn.body_begin; ++j) {
    if (toks[j].text == "const" && toks[j + 1].text == fn.owner &&
        toks[j + 2].text == "&") {
      return true;
    }
  }
  return false;
}

void scan_defaulted_copy(const std::vector<Token>& toks, const ClassDef& cls,
                         CloneRecord& rec) {
  for (std::size_t j = cls.body_begin; j + 4 < cls.body_end; ++j) {
    if (toks[j].text != cls.name || toks[j + 1].text != "(" ||
        toks[j + 2].text != "const" || toks[j + 3].text != cls.name ||
        toks[j + 4].text != "&") {
      continue;
    }
    const std::size_t close = match_forward(toks, j + 1, '(', ')');
    if (close == kNone || close + 2 >= cls.body_end) continue;
    if (toks[close + 1].text == "=" && toks[close + 2].text == "default") {
      rec.copy_ctor_defaulted = true;
    }
  }
}

void rule_c001(const std::vector<SourceFile>& files,
               const ProjectIndex& project, std::vector<Finding>& out) {
  std::map<std::string, CloneRecord> records;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const auto& toks = files[fi].tokens;
    const FileIndex& index = project.files[fi];
    for (const ClassDef& cls : index.classes) {
      if (cls.name.empty()) continue;
      CloneRecord& rec = records[cls.name];
      for (const std::string& m : cls.members) {
        rec.members.emplace(m,
                            std::make_pair(files[fi].path,
                                           cls.member_lines.at(m)));
      }
      scan_defaulted_copy(toks, cls, rec);
    }
    for (const FunctionDef& fn : index.functions) {
      if (fn.owner.empty() || fn.name.empty()) continue;
      if (fn.name == "clone") {
        CloneRecord::Def def;
        def.file = files[fi].path;
        def.line = fn.line;
        for (std::size_t j = fn.sig_begin; j < fn.body_end; ++j) {
          def.mentions.insert(toks[j].text);
          if (toks[j].text == "this") def.has_this = true;
        }
        records[fn.owner].clone_defs.push_back(std::move(def));
      } else if (fn.name == fn.owner &&
                 signature_is_copy_ctor(toks, fn)) {
        CloneRecord& rec = records[fn.owner];
        rec.has_user_copy_ctor = true;
        for (std::size_t j = fn.sig_begin; j < fn.body_end; ++j) {
          rec.copy_mentions.insert(toks[j].text);
        }
      }
    }
  }

  for (const auto& [name, rec] : records) {
    if (rec.clone_defs.empty() || rec.members.empty()) continue;
    std::set<std::string> mentions = rec.copy_mentions;
    bool any_this = false;
    for (const auto& def : rec.clone_defs) {
      mentions.insert(def.mentions.begin(), def.mentions.end());
      any_this = any_this || def.has_this;
    }
    // `return make_unique<X>(*this)` with the implicit (or defaulted) copy
    // constructor copies every member by construction.
    if (any_this && (!rec.has_user_copy_ctor || rec.copy_ctor_defaulted)) {
      continue;
    }
    std::string missing;
    for (const auto& member : rec.members) {
      if (mentions.count(member.first) != 0) continue;
      if (!missing.empty()) missing += ", ";
      missing += member.first;
    }
    if (missing.empty()) continue;
    const auto& def = rec.clone_defs.front();
    out.push_back(Finding{
        "C001", def.file, def.line,
        "clone() of '" + name + "' never mentions data member(s): " +
            missing +
            " — a forgotten member silently desynchronizes snapshot "
            "exploration forks; copy it or allow(C001) with a reason"});
  }
}

// --- H-rules: hygiene ---------------------------------------------------

void rule_h001(const SourceFile& f, std::vector<Finding>& out) {
  if (!f.is_header) return;
  const auto& toks = f.tokens;
  const std::size_t limit = std::min<std::size_t>(toks.size(), 100);
  bool guarded = false;
  for (std::size_t i = 0; i + 2 < limit; ++i) {
    if (toks[i].text != "#") continue;
    if (toks[i + 1].text == "pragma" && toks[i + 2].text == "once") {
      guarded = true;
      break;
    }
    if (toks[i + 1].text == "ifndef") {
      guarded = true;  // classic guard; trust the matching #define
      break;
    }
  }
  if (!guarded) {
    add(out, "H001", f, 1,
        "header has no include guard: add '#pragma once' as the first "
        "non-comment line");
  }
}

void rule_h002(const SourceFile& f, std::vector<Finding>& out) {
  if (!f.is_header) return;
  const auto& toks = f.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text == "using" && toks[i + 1].text == "namespace") {
      add(out, "H002", f, toks[i].line,
          "'using namespace' in a header leaks into every includer — "
          "qualify names or move the directive into a .cpp");
    }
  }
}

}  // namespace

std::vector<RuleInfo> rule_catalog() {
  return {
      {"D001", "lexical",
       "banned nondeterminism source (std::rand, random_device, "
       "mt19937, wall-clock seeding) outside util/rng.hpp"},
      {"D002", "lexical",
       "iteration over an unordered container (order can leak into "
       "trace/metrics/repro output)"},
      {"D003", "lexical",
       "mutable function-local static (hidden cross-run, "
       "cross-clone state)"},
      {"M001", "lexical",
       "automaton reads pulse content from recv() (model allows "
       "only presence + port)"},
      {"M002", "lexical",
       "automaton touches global network state (neighbor state, "
       "channel contents, totals)"},
      {"M003", "lexical",
       "non-empty Pulse payload, or content-carrying "
       "Network/Context/Automaton instantiation in src/co|src/colib"},
      {"C001", "lexical",
       "Automaton clone()/copy path never mentions a declared data "
       "member"},
      {"H001", "lexical", "header without include guard / #pragma once"},
      {"H002", "lexical", "'using namespace' in a header"},
      {"O001", "taint",
       "payload-derived value (recv content, wire decoder, tainted-returning "
       "call) flows into an if/switch condition outside src/net|src/obs"},
      {"O002", "taint",
       "payload-derived value flows into a for/while loop bound outside "
       "src/net|src/obs"},
      {"O003", "taint",
       "payload-derived value flows into a send-family call (content-"
       "dependent send count) outside src/net|src/obs"},
      {"T001", "concurrency",
       "unpaired atomic memory order on a class member: release store with "
       "no acquire/seq_cst load anywhere, or acquire load with no "
       "release/seq_cst store"},
      {"T002", "concurrency",
       "blocking call (mutex lock, condvar wait, sleep, join, socket "
       "send_all/recv_byte) reachable on the call graph from a coroutine "
       "body through src/coro"},
      {"T003", "concurrency",
       "seqlock writer stores payload atomics without the odd/even version "
       "bracket (obs/flight protocol shape)"},
      {"T004", "concurrency",
       "partial rt::Transport / rt::PulsePort surface (method name + arity "
       "match): signature drift a never-instantiated template won't catch"},
  };
}

std::vector<Finding> run_rules(const std::vector<SourceFile>& files,
                               const ProjectIndex& project,
                               std::size_t workers) {
  // Single-threaded prologue: the cross-file joins every interprocedural
  // rule reads from.
  const SymbolTable symbols = build_symbol_table(files, project);
  const CallGraph graph = build_call_graph(files, project, symbols);
  const TaintContext taint = build_taint_context(files, project, symbols);

  // Per-file fan-out over the sim/parallel.hpp pool: each task writes only
  // its own file's slot, so the merged result is worker-count oblivious.
  std::vector<std::vector<Finding>> slots(files.size());
  sim::parallel_for(files.size(), workers, [&](std::size_t fi) {
    const SourceFile& f = files[fi];
    const FileIndex& index = project.files[fi];
    std::vector<Finding>& slot = slots[fi];
    rule_d001(f, slot);
    rule_d002(f, slot);
    rule_d003(f, index, slot);
    rule_m001(f, index, project, slot);
    rule_m002(f, index, project, slot);
    rule_m003(f, index, slot);
    rule_h001(f, slot);
    rule_h002(f, slot);
    run_taint_rules_on_file(f, index, taint, slot);
  });
  std::vector<Finding> out;
  for (std::vector<Finding>& slot : slots) {
    out.insert(out.end(), std::make_move_iterator(slot.begin()),
               std::make_move_iterator(slot.end()));
  }

  // Sequential epilogue: rules that aggregate across the whole project.
  rule_c001(files, project, out);
  run_concurrency_rules(files, project, symbols, graph, out);

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return out;
}

std::vector<Finding> run_rules(const std::vector<SourceFile>& files,
                               const ProjectIndex& project) {
  return run_rules(files, project, 1);
}

}  // namespace colex::lint
