file(REMOVE_RECURSE
  "CMakeFiles/test_replicated.dir/test_replicated.cpp.o"
  "CMakeFiles/test_replicated.dir/test_replicated.cpp.o.d"
  "test_replicated"
  "test_replicated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replicated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
