#include "obs/flight.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace colex::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

FlightRing::FlightRing(std::size_t capacity)
    : slots_(new Slot[capacity == 0 ? 1 : capacity]),
      capacity_(capacity == 0 ? 1 : capacity) {}

void FlightRing::record(const char* what, std::uint64_t a, std::uint64_t b) {
  const std::uint64_t seq = next_seq_.load(std::memory_order_relaxed);
  Slot& s = slots_[seq % capacity_];
  const std::uint64_t v = s.version.load(std::memory_order_relaxed);
  s.version.store(v + 1);  // odd: write in progress
  s.seq.store(seq);
  s.t_ns.store(steady_now_ns());
  s.what.store(what);
  s.a.store(a);
  s.b.store(b);
  s.version.store(v + 2);  // even again: slot stable
  next_seq_.store(seq + 1, std::memory_order_relaxed);
}

std::vector<FlightEvent> FlightRing::snapshot() const {
  std::vector<FlightEvent> out;
  out.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    const Slot& s = slots_[i];
    const std::uint64_t v1 = s.version.load();
    if (v1 == 0 || (v1 & 1) != 0) continue;  // never written, or mid-write
    FlightEvent e;
    e.seq = s.seq.load();
    e.t_ns = s.t_ns.load();
    e.what = s.what.load();
    e.a = s.a.load();
    e.b = s.b.load();
    const std::uint64_t v2 = s.version.load();
    if (v1 != v2) continue;  // torn: writer lapped us mid-read
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

FlightRing& FlightRecorder::ring(const std::string& name) {
  for (auto& [n, r] : rings_) {
    if (n == name) return r;
  }
  rings_.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                      std::forward_as_tuple(ring_capacity_));
  return rings_.back().second;
}

std::vector<std::pair<std::string, FlightEvent>> FlightRecorder::merged_tail(
    std::size_t max_events) const {
  std::vector<std::pair<std::string, FlightEvent>> all;
  for (const auto& [name, r] : rings_) {
    for (const FlightEvent& e : r.snapshot()) {
      all.emplace_back(name, e);
    }
  }
  std::sort(all.begin(), all.end(), [](const auto& x, const auto& y) {
    if (x.second.t_ns != y.second.t_ns) return x.second.t_ns < y.second.t_ns;
    return x.second.seq < y.second.seq;
  });
  if (max_events != 0 && all.size() > max_events) {
    all.erase(all.begin(),
              all.begin() + static_cast<std::ptrdiff_t>(all.size() - max_events));
  }
  return all;
}

std::string FlightRecorder::render_tail(std::size_t max_events) const {
  const auto tail = merged_tail(max_events);
  std::ostringstream os;
  os << "flight recorder tail (" << tail.size() << " events, " << rings_.size()
     << " rings):\n";
  if (tail.empty()) return os.str();
  // Relative timestamps read better than raw steady-clock nanos: the tail
  // is about ordering and gaps, not absolute time.
  const std::uint64_t t0 = tail.front().second.t_ns;
  for (const auto& [name, e] : tail) {
    const double dt_ms = static_cast<double>(e.t_ns - t0) / 1e6;
    os << "  +" << dt_ms << "ms [" << name << "] #" << e.seq << " " << e.what
       << " a=" << e.a << " b=" << e.b << "\n";
  }
  return os.str();
}

}  // namespace colex::obs
