file(REMOVE_RECURSE
  "CMakeFiles/test_sim_schedulers.dir/test_sim_schedulers.cpp.o"
  "CMakeFiles/test_sim_schedulers.dir/test_sim_schedulers.cpp.o.d"
  "test_sim_schedulers"
  "test_sim_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
