// Deep integration tests that cross module boundaries:
//  * the §1.1 replication adapter wrapped around the ENTIRE Corollary 5
//    stack (election + bus + application) — the transformation must be
//    transparent to arbitrary inner protocols;
//  * the conservation audit running over the composed stack;
//  * explorer budget/truncation semantics.
#include <gtest/gtest.h>

#include <memory>

#include "colex.hpp"
#include "helpers.hpp"

namespace colex {
namespace {

TEST(DeepIntegration, ReplicatedCorollary5StackIsTransparent) {
  // Wrap ComposedNode (Algorithm 2 -> token bus -> gather-all) in the
  // r-copies adapter: the logical execution must be identical, at exactly
  // (r+1) times the pulse cost.
  const std::vector<std::uint64_t> ids{6, 11, 3, 9};
  const std::vector<std::uint64_t> inputs{10, 20, 30, 40};

  // Reference: unreplicated composed run.
  sim::GlobalFifoScheduler ref_sched;
  const auto reference = colib::run_composed(
      ids,
      [&inputs](sim::NodeId v) {
        return std::make_unique<colib::GatherAllApp>(inputs[v]);
      },
      ref_sched);
  ASSERT_TRUE(reference.all_terminated);

  for (const unsigned r : {1u, 2u}) {
    auto net = sim::PulseNetwork::ring(ids.size());
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      net.set_automaton(
          v, std::make_unique<co::ReplicatedAdapter>(
                 std::make_unique<colib::ComposedNode>(
                     ids[v],
                     std::make_unique<colib::GatherAllApp>(inputs[v])),
                 r));
    }
    sim::RandomScheduler sched(r);
    const auto report = net.run(sched);
    ASSERT_TRUE(report.quiescent) << "r=" << r;
    ASSERT_TRUE(report.all_terminated) << "r=" << r;
    EXPECT_EQ(report.sent, (r + 1) * reference.total_pulses) << "r=" << r;
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      const auto& adapter = net.automaton_as<co::ReplicatedAdapter>(v);
      const auto& composed =
          dynamic_cast<const colib::ComposedNode&>(adapter.inner());
      ASSERT_NE(composed.bus(), nullptr) << "r=" << r << " v=" << v;
      const auto& app =
          dynamic_cast<const colib::GatherAllApp&>(composed.bus()->app());
      ASSERT_TRUE(app.complete()) << "r=" << r << " v=" << v;
      EXPECT_EQ(app.sum(), 100u);
      EXPECT_EQ(app.ring_size(), ids.size());
    }
  }
}

TEST(DeepIntegration, ConservationAuditOverComposedStack) {
  const std::vector<std::uint64_t> ids{4, 9, 2, 7, 5};
  auto net = sim::PulseNetwork::ring(ids.size());
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    net.set_automaton(v, std::make_unique<colib::ComposedNode>(
                             ids[v], std::make_unique<colib::GatherAllApp>(
                                         v * 3 + 1)));
  }
  sim::TraceRecorder trace;
  sim::RunOptions opts;
  trace.attach(net, opts);
  sim::RandomScheduler sched(17);
  const auto report = net.run(sched, opts);
  ASSERT_TRUE(report.all_terminated);
  EXPECT_EQ(trace.sends(), report.sent);
  EXPECT_EQ(trace.audit(sim::ring_wiring(ids.size())), "");
}

TEST(DeepIntegration, ExplorerRespectsBudget) {
  // A tiny budget must truncate without crashing and report it.
  const auto build = [] {
    auto net = sim::PulseNetwork::ring(3);
    for (sim::NodeId v = 0; v < 3; ++v) {
      net.set_automaton(v, std::make_unique<co::Alg1Stabilizing>(v + 1));
    }
    return net;
  };
  std::uint64_t leaves_seen = 0;
  const auto stats = sim::explore_all_schedules(
      build, [&leaves_seen](sim::PulseNetwork&) { ++leaves_seen; }, 5);
  EXPECT_FALSE(stats.exhaustive());
  EXPECT_GT(stats.truncated, 0u);
  EXPECT_EQ(stats.leaves, leaves_seen);
}

TEST(DeepIntegration, ExplorerRejectsZeroBudget) {
  EXPECT_THROW(sim::explore_all_schedules(
                   [] { return sim::PulseNetwork::ring(1); },
                   [](sim::PulseNetwork&) {}, 0),
               util::ContractViolation);
}

TEST(DeepIntegration, ExplorerFindsAllSchedulesOfReplicatedRun) {
  // Model-check the replication adapter itself: every schedule of a 1-node
  // replicated election (r = 1) is correct at exactly twice the cost.
  const auto build = [] {
    auto net = sim::PulseNetwork::ring(1);
    net.set_automaton(0, std::make_unique<co::ReplicatedAdapter>(
                             std::make_unique<co::Alg2Terminating>(2), 1));
    return net;
  };
  std::uint64_t violations = 0;
  const auto stats = sim::explore_all_schedules(
      build,
      [&violations](sim::PulseNetwork& net) {
        const auto& adapter = net.automaton_as<co::ReplicatedAdapter>(0);
        if (net.total_sent() != 2 * co::theorem1_pulses(1, 2) ||
            adapter.inner_as<co::Alg2Terminating>().role() !=
                co::Role::leader) {
          ++violations;
        }
      },
      500'000);
  EXPECT_TRUE(stats.exhaustive());
  EXPECT_EQ(violations, 0u);
  EXPECT_GE(stats.leaves, 1u);
}

TEST(DeepIntegration, ThreadedReplicatedComposedStack) {
  // The triple stack on real threads: replication adapter over composition
  // over election over the thread fabric.
  const std::vector<std::uint64_t> ids{4, 9, 2};
  const auto result = rt::run_automata_on_threads(
      ids.size(), {}, [&ids](sim::NodeId v) {
        return std::make_unique<co::ReplicatedAdapter>(
            std::make_unique<colib::ComposedNode>(
                ids[v], std::make_unique<colib::BroadcastApp>(321)),
            1);
      });
  ASSERT_TRUE(result.completed);
  ASSERT_TRUE(result.all_terminated);
  for (const auto& automaton : result.automata) {
    const auto& adapter =
        dynamic_cast<const co::ReplicatedAdapter&>(*automaton);
    const auto& composed =
        dynamic_cast<const colib::ComposedNode&>(adapter.inner());
    const auto& app =
        dynamic_cast<const colib::BroadcastApp&>(composed.bus()->app());
    ASSERT_TRUE(app.received().has_value());
    EXPECT_EQ(*app.received(), 321u);
  }
}

}  // namespace
}  // namespace colex
