// Seeded case generators for the property-based fuzzing harness.
//
// A FuzzCase is plain data: everything needed to re-execute one adversarial
// run bit-for-bit — ring shape (n, IDs incl. duplicates and extremes, port
// orientation), the algorithm under test, the schedule (either a seed for a
// generated biased-walk/mixture scheduler or an explicit recorded tape of
// channel choices), and a sim::FaultPlan within the documented fault
// boundaries (DESIGN.md §12) plus an optional declarative state corruption.
// generate_case(seed) is a pure function of (seed, options): the same seed
// always yields the same case, which is what makes fuzz campaigns, shrinking
// and committed repro files reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/faults.hpp"
#include "sim/scheduler.hpp"
#include "sim/types.hpp"

namespace colex::qa {

/// Algorithms the fuzzer can drive. alg4 is the paper's anonymous pipeline:
/// IDs sampled by Algorithm 4 (clamped to the generator's ID cap so runs
/// stay bounded), then Algorithm 3 with the improved scheme.
enum class Algorithm {
  alg1,
  alg2,
  alg3_doubled,
  alg3_improved,
  alg4,
};

const char* to_string(Algorithm a);
bool algorithm_from_string(const std::string& s, Algorithm& out);

/// Declarative analogue of sim::FaultInjector's StateCorruptor: overwrite
/// one node's counters before the run starts. Serializable, unlike the
/// std::function form. Counter slots map to (rho_cw, sigma_cw, rho_ccw,
/// sigma_ccw) for the oriented algorithms and (rho[0], sigma[0], rho[1],
/// sigma[1]) for Algorithm 3.
struct CorruptSpec {
  bool active = false;
  sim::NodeId node = 0;
  std::uint64_t counters[4] = {0, 0, 0, 0};

  friend bool operator==(const CorruptSpec& a, const CorruptSpec& b) {
    return a.active == b.active && a.node == b.node &&
           a.counters[0] == b.counters[0] && a.counters[1] == b.counters[1] &&
           a.counters[2] == b.counters[2] && a.counters[3] == b.counters[3];
  }
};

/// One reproducible fuzzing input. `tape` empty means "drive with the
/// scheduler derived from schedule_seed"; non-empty means "replay these
/// channel choices verbatim" (ReplayScheduler semantics: a choice that is
/// not pending falls back to global-FIFO deterministically).
struct FuzzCase {
  std::uint64_t seed = 0;  ///< generator seed that produced this case
  Algorithm alg = Algorithm::alg2;
  std::vector<std::uint64_t> ids;
  std::vector<bool> port_flips;  ///< empty = oriented
  std::uint64_t schedule_seed = 1;
  std::vector<std::size_t> tape;
  sim::FaultPlan faults;
  CorruptSpec corrupt;
  std::uint64_t max_events = 50'000;  ///< livelock guard

  std::size_t n() const { return ids.size(); }
  std::uint64_t id_max() const;
  /// Largest virtual ID in play — the IDmax the paper's n(2*IDmax+1) bound
  /// formula sees (2*IDmax-1 for the doubled scheme, IDmax otherwise).
  std::uint64_t effective_id_max() const;
  /// The paper's exact pulse bound for this configuration (Theorem 1/2 for
  /// the oriented algorithms and the improved scheme, Proposition 15 for
  /// the doubled scheme); 0 when no bound applies.
  std::uint64_t pulse_bound() const;
  /// True iff the fault plan and corruption spec can provably never act.
  bool clean() const { return faults.trivial() && !corrupt.active; }

  friend bool operator==(const FuzzCase& a, const FuzzCase& b);
};

struct GeneratorOptions {
  std::size_t min_n = 1;
  std::size_t max_n = 6;
  std::uint64_t max_id = 12;
  /// Algorithms drawn from; empty = all five.
  std::vector<Algorithm> algorithms;
  /// Fraction of cases that carry a non-trivial fault plan (0 = clean-only).
  double fault_fraction = 0.0;
  std::uint64_t max_events = 50'000;
};

/// Pure function of (seed, options): deterministic, collision-heavy around
/// the boundaries (n=1 self-loops, n=2 multi-edge rings, duplicate IDs for
/// Algorithm 1, all 2^n-ish port scrambles for Algorithm 3).
FuzzCase generate_case(std::uint64_t seed, const GeneratorOptions& options);

/// The schedule adversary a case runs under when its tape is empty: a
/// biased WalkScheduler or a MixScheduler swarm over walks and the standard
/// suite, chosen and seeded by case.schedule_seed. Deterministic.
std::unique_ptr<sim::Scheduler> make_case_scheduler(const FuzzCase& c);

}  // namespace colex::qa
