// Shared helpers for the test suites.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/ids.hpp"

namespace colex::test {

using util::all_flip_masks;
using util::dense_ids;
using util::random_flips;
using util::shuffled;
using util::sparse_ids;

/// Name list of the standard scheduler suite, for parameterized tests.
inline std::vector<std::string> standard_scheduler_names(
    std::size_t random_instances) {
  std::vector<std::string> names;
  for (auto& s : sim::standard_schedulers(random_instances)) {
    names.push_back(s.name);
  }
  return names;
}

/// Builds a fresh scheduler by name from the standard suite.
inline std::unique_ptr<sim::Scheduler> make_scheduler(
    const std::string& name, std::size_t random_instances) {
  for (auto& s : sim::standard_schedulers(random_instances)) {
    if (s.name == name) return std::move(s.scheduler);
  }
  return nullptr;
}

}  // namespace colex::test
