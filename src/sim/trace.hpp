// Execution tracing: records every send and delivery of a run as a
// structured event stream, and audits the stream against the model's
// conservation laws (every delivery is preceded by a matching send on the
// same channel; per-channel FIFO order; no channel ever over-delivers).
// The audit is deliberately independent of the Network's own counters, so
// it cross-checks the simulator itself.
#pragma once

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/network.hpp"

namespace colex::sim {

struct TraceEvent {
  enum class Kind { send, deliver };
  Kind kind = Kind::send;
  NodeId node = 0;  ///< sender (send) or receiver (deliver)
  Port port = Port::p0;
  Direction dir = Direction::cw;  ///< physical direction of travel
  std::uint64_t index = 0;        ///< position in the event stream
};

inline std::string to_string(const TraceEvent& e) {
  std::ostringstream os;
  os << "#" << e.index << " "
     << (e.kind == TraceEvent::Kind::send ? "send" : "deliver") << " node="
     << e.node << " port=" << sim::index(e.port) << " dir="
     << to_string(e.dir);
  return os.str();
}

/// Hooks into a run's options and collects the event stream.
///
///   TraceRecorder trace;
///   sim::RunOptions opts;
///   trace.attach(net, opts);         // chains any hooks already set
///   net.run(scheduler, opts);
///   trace.audit();                   // empty string == clean
template <typename P>
class BasicTraceRecorder {
 public:
  /// Wires this recorder into `net` and `opts`. Previously installed
  /// on_deliver hooks (and the network's send observer) are preserved and
  /// chained.
  void attach(Network<P>& net, BasicRunOptions<P>& opts) {
    auto previous_deliver = opts.on_deliver;
    opts.on_deliver = [this, previous_deliver](NodeId v, Port p,
                                               Direction d) {
      events_.push_back(TraceEvent{TraceEvent::Kind::deliver, v, p, d,
                                   static_cast<std::uint64_t>(
                                       events_.size())});
      if (previous_deliver) previous_deliver(v, p, d);
    };
    net.set_send_observer([this](NodeId v, Port p, Direction d) {
      events_.push_back(TraceEvent{TraceEvent::Kind::send, v, p, d,
                                   static_cast<std::uint64_t>(
                                       events_.size())});
    });
  }

  const std::vector<TraceEvent>& events() const { return events_; }

  std::uint64_t sends() const {
    std::uint64_t count = 0;
    for (const auto& e : events_) {
      if (e.kind == TraceEvent::Kind::send) ++count;
    }
    return count;
  }

  std::uint64_t deliveries() const {
    return static_cast<std::uint64_t>(events_.size()) - sends();
  }

  /// Audits the stream against the model: at no point may a channel
  /// (identified by sender node+port) have delivered more pulses than were
  /// sent on it. Returns an empty string when clean, else a diagnostic.
  /// `wiring(recv_node, recv_port)` must map a delivery endpoint back to
  /// the sending endpoint; for the standard ring use `ring_wiring(net)`.
  template <typename Wiring>
  std::string audit(Wiring&& wiring) const {
    std::map<std::pair<NodeId, int>, std::int64_t> balance;
    for (const auto& e : events_) {
      if (e.kind == TraceEvent::Kind::send) {
        ++balance[{e.node, sim::index(e.port)}];
      } else {
        const auto from = wiring(e.node, e.port);
        auto& b = balance[{from.first, sim::index(from.second)}];
        if (b <= 0) {
          return "channel from node " + std::to_string(from.first) +
                 " port " + std::to_string(sim::index(from.second)) +
                 " delivered more than it sent (event " +
                 std::to_string(e.index) + ")";
        }
        --b;
      }
    }
    return {};
  }

 private:
  std::vector<TraceEvent> events_;
};

using TraceRecorder = BasicTraceRecorder<Pulse>;

/// Wiring function for the standard ring builder: maps a delivery endpoint
/// (receiver node+port) to the sender endpoint on the same edge.
inline auto ring_wiring(std::size_t n, const std::vector<bool>& flips = {}) {
  return [n, flips](NodeId v, Port p) -> std::pair<NodeId, Port> {
    auto flipped = [&flips](NodeId u) {
      return !flips.empty() && flips[u];
    };
    // In the builder's layout, node v's "toward v+1" attachment is Port1
    // unless flipped; receiving there means the sender is v+1 on its
    // "toward v" attachment, and vice versa.
    const Port toward_next = flipped(v) ? Port::p0 : Port::p1;
    if (p == toward_next) {
      const NodeId sender = (v + 1) % n;
      return {sender, flipped(sender) ? Port::p1 : Port::p0};
    }
    const NodeId sender = (v + n - 1) % n;
    return {sender, flipped(sender) ? Port::p0 : Port::p1};
  };
}

}  // namespace colex::sim
