// Cross-substrate conformance suite for the transport seam
// (runtime/transport.hpp): the same blocking transcriptions must produce
// IDENTICAL election results and IDENTICAL exact pulse counts on every
// substrate — the discrete simulator (the oracle), ThreadRing, the
// coroutine executor, and the real-socket backend — for every algorithm and
// ring size in the battery. Plus direct contract checks of the PulsePort
// surface TransportPort exposes: spurious-wakeup tolerance,
// quiescence-after-done, and shutdown idempotence.
#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <vector>

#include <sys/socket.h>

#include "co/oriented.hpp"
#include "coro/run.hpp"
#include "net/node.hpp"
#include "net/run.hpp"
#include "qa/generators.hpp"
#include "qa/properties.hpp"
#include "runtime/blocking_algs.hpp"
#include "runtime/transport.hpp"

namespace colex {
namespace {

struct BatteryCase {
  qa::Algorithm alg;
  std::size_t n;
};

std::string case_name(const BatteryCase& c) {
  std::string name(qa::to_string(c.alg));
  for (char& ch : name) {
    if (ch == '-') ch = '_';  // gtest names must be identifiers
  }
  return name + "_n" + std::to_string(c.n);
}

/// The battery ring: a 7-step permutation of 1..n (unique for every n in
/// the battery since gcd(7, n) == 1), flips on every third node for the
/// non-oriented algorithms.
qa::FuzzCase battery_case(const BatteryCase& bc) {
  qa::FuzzCase c;
  c.alg = bc.alg;
  for (std::size_t v = 0; v < bc.n; ++v) {
    c.ids.push_back((v * 7) % bc.n + 1);
  }
  const bool oriented =
      bc.alg == qa::Algorithm::alg1 || bc.alg == qa::Algorithm::alg2;
  if (!oriented) {
    for (std::size_t v = 0; v < bc.n; ++v) c.port_flips.push_back(v % 3 == 1);
  }
  EXPECT_TRUE(c.clean());
  return c;
}

rt::ThreadAlg thread_alg(qa::Algorithm a) {
  switch (a) {
    case qa::Algorithm::alg1: return rt::ThreadAlg::alg1;
    case qa::Algorithm::alg2: return rt::ThreadAlg::alg2;
    case qa::Algorithm::alg3_doubled: return rt::ThreadAlg::alg3_doubled;
    default: return rt::ThreadAlg::alg3_improved;
  }
}

/// Asserts one transcription backend agrees with the simulator's run of
/// the same case: completion, leader set, per-node roles, and the exact
/// paper-predicted pulse count.
void expect_matches_sim(const std::string& what, const qa::FuzzCase& c,
                        const qa::RunOutcome& oracle,
                        const rt::TransportRunResult& run) {
  ASSERT_TRUE(run.completed) << what << ": " << run.stall_dump;
  EXPECT_EQ(run.leader_count, oracle.leader_count) << what;
  EXPECT_EQ(run.leader, oracle.leader) << what;
  EXPECT_EQ(run.pulses, qa::exact_pulses(c)) << what;
  ASSERT_EQ(run.outcomes.size(), oracle.roles.size()) << what;
  for (std::size_t v = 0; v < oracle.roles.size(); ++v) {
    EXPECT_EQ(run.outcomes[v].role, oracle.roles[v])
        << what << ": node " << v;
  }
}

class TransportConformance : public ::testing::TestWithParam<BatteryCase> {};

TEST_P(TransportConformance, AllSubstratesMatchSimulatorExactly) {
  const qa::FuzzCase c = battery_case(GetParam());
  const qa::RunOutcome oracle = qa::execute_case(c);
  ASSERT_TRUE(oracle.report.quiescent);
  ASSERT_EQ(oracle.counters.sent, qa::exact_pulses(c))
      << "simulator itself missed the paper's exact count";
  const rt::ThreadAlg alg = thread_alg(c.alg);

  expect_matches_sim("threads", c, oracle,
                     rt::run_on_threads(c.ids, c.port_flips, alg));
  expect_matches_sim("coro", c, oracle,
                     coro::run_on_coro(c.ids, c.port_flips, alg, {2}));

  const net::SocketRunResult sockets =
      net::run_on_sockets(c.ids, c.port_flips, alg);
  expect_matches_sim("sockets", c, oracle, sockets);
  // The socket fabric proves quiescence with real counters: every pulse
  // sent over TCP was consumed, and the wire moved exactly one byte per
  // pulse in each direction.
  EXPECT_EQ(sockets.consumed, sockets.pulses);
  EXPECT_EQ(sockets.wire.bytes_tx, sockets.pulses);
  EXPECT_EQ(sockets.wire.bytes_rx, sockets.pulses);
  EXPECT_GE(sockets.probe_rounds, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Battery, TransportConformance,
    ::testing::Values(BatteryCase{qa::Algorithm::alg1, 1},
                      BatteryCase{qa::Algorithm::alg1, 2},
                      BatteryCase{qa::Algorithm::alg1, 3},
                      BatteryCase{qa::Algorithm::alg1, 8},
                      BatteryCase{qa::Algorithm::alg1, 32},
                      BatteryCase{qa::Algorithm::alg2, 1},
                      BatteryCase{qa::Algorithm::alg2, 2},
                      BatteryCase{qa::Algorithm::alg2, 3},
                      BatteryCase{qa::Algorithm::alg2, 8},
                      BatteryCase{qa::Algorithm::alg2, 32},
                      BatteryCase{qa::Algorithm::alg3_improved, 1},
                      BatteryCase{qa::Algorithm::alg3_improved, 2},
                      BatteryCase{qa::Algorithm::alg3_improved, 3},
                      BatteryCase{qa::Algorithm::alg3_improved, 8},
                      BatteryCase{qa::Algorithm::alg3_improved, 32},
                      BatteryCase{qa::Algorithm::alg3_doubled, 1},
                      BatteryCase{qa::Algorithm::alg3_doubled, 2},
                      BatteryCase{qa::Algorithm::alg3_doubled, 3},
                      BatteryCase{qa::Algorithm::alg3_doubled, 8},
                      BatteryCase{qa::Algorithm::alg3_doubled, 32}),
    [](const ::testing::TestParamInfo<BatteryCase>& param_info) {
      return case_name(param_info.param);
    });

// --- PulsePort contract checks (scripted mock transport) -----------------

/// Scripted Transport: arrivals are handed out per recv port, wait()
/// returns a scripted sequence of values (true entries may deliver nothing
/// — the legal spurious wakeup), and the script running dry means "harness
/// stop". MockIo is the copyable handle TransportPort holds by value.
struct MockState {
  std::deque<sim::Port> arrivals;           ///< consumable pulses, in order
  std::deque<std::deque<sim::Port>> waits;  ///< per-wait deliveries
  std::uint64_t wait_calls = 0;
  std::uint64_t sends = 0;
  std::uint64_t shutdowns = 0;
  bool stop = false;
};

struct MockIo {
  MockState* s;
  bool recv(sim::Port p) {
    if (s->arrivals.empty() || s->arrivals.front() != p) return false;
    s->arrivals.pop_front();
    return true;
  }
  void send(sim::Port) { ++s->sends; }
  bool wait() {
    ++s->wait_calls;
    if (s->stop) return false;
    if (s->waits.empty()) {
      s->stop = true;  // script exhausted: quiescence stop
      return false;
    }
    for (const sim::Port p : s->waits.front()) s->arrivals.push_back(p);
    s->waits.pop_front();
    return true;
  }
  bool stopped() const { return s->stop; }
  void shutdown() { ++s->shutdowns; }
};

static_assert(rt::Transport<MockIo>);
static_assert(rt::PulsePort<rt::TransportPort<MockIo>>);

TEST(TransportPortContract, SpuriousWakeupsAreTolerated) {
  // Algorithm 1, id 2: needs two CW arrivals (port p0). The script yields
  // three empty wakeups before each delivery — the transcription must
  // re-poll and re-wait without miscounting.
  MockState s;
  for (int arrival = 0; arrival < 2; ++arrival) {
    for (int spurious = 0; spurious < 3; ++spurious) s.waits.push_back({});
    s.waits.push_back({co::kCcwPort});
  }
  const rt::BlockingOutcome out = rt::drive_blocking(
      rt::spawn_alg(rt::ThreadAlg::alg1, rt::TransportPort<MockIo>(MockIo{&s}),
                    2));
  EXPECT_EQ(out.role, co::Role::leader);
  EXPECT_EQ(out.counters.rho_cw, 2u);
  EXPECT_TRUE(out.stopped);       // script ran dry after the election
  EXPECT_FALSE(out.terminated);   // Algorithm 1 never terminates on its own
  EXPECT_GE(s.wait_calls, 8u);    // all scripted wakeups were consumed
  EXPECT_TRUE(s.arrivals.empty());
}

TEST(TransportPortContract, WaitFalseMeansQuiescenceStop) {
  // A wait() that immediately reports stop must surface as a stopped (not
  // terminated) outcome, with the node's sends still accounted.
  MockState s;  // empty script: first wait returns false
  const rt::BlockingOutcome out = rt::drive_blocking(
      rt::spawn_alg(rt::ThreadAlg::alg1, rt::TransportPort<MockIo>(MockIo{&s}),
                    7));
  EXPECT_TRUE(out.stopped);
  EXPECT_EQ(out.counters.sigma_cw, 1u);  // the line-1 send happened
  EXPECT_EQ(s.sends, 1u);
  EXPECT_TRUE(s.stop);
}

TEST(TransportPortContract, WaitAnyAwaiterNeverSuspends) {
  MockState s;
  s.waits.push_back({co::kCcwPort});
  rt::TransportPort<MockIo> port(MockIo{&s});
  auto awaiter = port.wait_any();
  // Blocking-flavor contract: the wait happens inside await_ready, which
  // always reports ready — the coroutine machinery never parks.
  EXPECT_TRUE(awaiter.await_ready());
  EXPECT_TRUE(awaiter.await_resume());
  EXPECT_TRUE(port.recv(co::kCcwPort));
  auto stopping = port.wait_any();
  EXPECT_TRUE(stopping.await_ready());
  EXPECT_FALSE(stopping.await_resume());  // script dry: stop
  EXPECT_TRUE(port.transport().stopped());
}

TEST(TransportPortContract, ShutdownIsIdempotent) {
  MockState s;
  rt::TransportPort<MockIo> port(MockIo{&s});
  port.transport().shutdown();
  port.transport().shutdown();
  EXPECT_EQ(s.shutdowns, 2u);  // the mock counts; real transports no-op

  // The real socket endpoint: double shutdown must not double-close
  // descriptors (the second call is a no-op by contract).
  int ring[2];
  int ctl[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, ring), 0);
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, ctl), 0);
  net::PulseEndpoint ep(net::Fd{ring[0]}, net::Fd{ring[1]}, net::Fd{ctl[0]},
                        sim::Port::p1, net::Deadline::in_ms(1000));
  net::EndpointIo io(ep);
  io.shutdown();
  io.shutdown();
  EXPECT_FALSE(ep.stopped() && !ep.error().empty());
  ::close(ctl[1]);  // the peer halves are ours to close exactly once
}

TEST(TransportPortContract, ThreadRingNodeIoModelsTransport) {
  // The seam's origin story: NodeIo satisfies Transport directly, and its
  // shutdown is an idempotent no-op (the fabric owns teardown).
  rt::ThreadRing fabric(2);
  auto io = fabric.io(0);
  io.shutdown();
  io.shutdown();
  io.send(sim::Port::p1);
  EXPECT_TRUE(fabric.io(1).recv(sim::Port::p0));
  EXPECT_FALSE(io.stopped());
  fabric.crash(0);  // the io handle's incarnation dies with the node
  EXPECT_TRUE(io.stopped());
}

}  // namespace
}  // namespace colex
