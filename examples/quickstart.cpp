// Quickstart: content-oblivious leader election on an oriented ring
// (Algorithm 2 / Theorem 1 of "Content-Oblivious Leader Election on Rings").
//
//   ./examples/quickstart [n] [seed]
//
// Builds a ring of n nodes with random sparse IDs, runs the quiescently
// terminating election under a random adversarial scheduler, and prints the
// outcome together with the paper's exact message-complexity formula.
#include <cstdlib>
#include <iostream>

#include "co/election.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace colex;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 42;
  if (n == 0) {
    std::cerr << "ring size must be positive\n";
    return 1;
  }

  // Assign unique random IDs (any distinct positive integers work; the
  // message complexity depends on the largest one).
  util::Xoshiro256StarStar rng(seed);
  std::vector<std::uint64_t> ids;
  while (ids.size() < n) {
    const std::uint64_t candidate = rng.in_range(1, 4 * n);
    bool fresh = true;
    for (const auto existing : ids) fresh = fresh && existing != candidate;
    if (fresh) ids.push_back(candidate);
  }

  // Run Algorithm 2 under an adversarial (seeded random) pulse scheduler.
  sim::RandomScheduler scheduler(seed);
  const auto result = co::elect_oriented_terminating(ids, scheduler);

  std::cout << "Content-oblivious leader election (Algorithm 2, Theorem 1)\n";
  std::cout << "ring size n = " << n << ", scheduler = " << scheduler.name()
            << "\n\n";

  util::Table table({"node", "ID", "role", "rho_cw", "rho_ccw"});
  for (std::size_t v = 0; v < n; ++v) {
    const auto& node = result.nodes[v];
    table.add_row({util::Table::num(static_cast<std::uint64_t>(v)),
                   util::Table::num(node.id), co::to_string(node.role),
                   util::Table::num(node.rho_cw),
                   util::Table::num(node.rho_ccw)});
  }
  table.print(std::cout);

  std::uint64_t id_max = 0;
  for (const auto id : ids) id_max = std::max(id_max, id);
  std::cout << "\nelected leader : node " << *result.leader << " (ID "
            << ids[*result.leader] << ")\n";
  std::cout << "pulses sent    : " << result.pulses << "\n";
  std::cout << "n(2*IDmax + 1) : " << co::theorem1_pulses(n, id_max) << "\n";
  std::cout << "quiescent      : " << (result.quiescent ? "yes" : "no")
            << ", all terminated: "
            << (result.all_terminated ? "yes" : "no") << "\n";
  return result.valid_election() ? 0 : 1;
}
