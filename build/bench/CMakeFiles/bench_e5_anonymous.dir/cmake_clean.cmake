file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_anonymous.dir/bench_e5_anonymous.cpp.o"
  "CMakeFiles/bench_e5_anonymous.dir/bench_e5_anonymous.cpp.o.d"
  "bench_e5_anonymous"
  "bench_e5_anonymous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_anonymous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
