// Algorithm 4 (paper §5): message-free random ID sampling for anonymous
// rings. Each node samples a bit-length from a geometric distribution and
// then that many uniform bits; with high probability the maximal resulting
// ID is unique and of order n^O(c^2) (Lemma 18), which reduces the anonymous
// setting to the non-unique-ID setting handled by Lemma 16 / Theorem 2.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace colex::co {

struct SampledId {
  std::uint64_t bit_count = 0;  ///< BitCount ~ Geo(1 - p), p = 2^(-1/(c+2))
  std::uint64_t id = 0;         ///< uniform BitCount-bit value, shifted by +1
};

/// Runs Algorithm 4 for one node with parameter c > 0.
///
/// Faithfulness note: the paper samples ID_v uniformly from {0,1}^BitCount,
/// which can yield 0, while the model requires positive IDs; we therefore
/// return (value + 1). The shift is uniform across nodes, so the
/// distribution of collisions and of the argmax — everything Lemma 18
/// reasons about — is unchanged. BitCount is capped at 62 so IDs fit in
/// 64 bits; for every parameterization this library can simulate, the cap
/// is hit with negligible probability.
SampledId sample_id(util::Xoshiro256StarStar& rng, double c);

/// Samples IDs for all n nodes of an anonymous ring (each node conceptually
/// uses its own randomness source; we model that as one deterministic stream
/// per node derived from `seed`).
std::vector<SampledId> sample_ids(std::size_t n, double c,
                                  std::uint64_t seed);

/// True iff the maximum of `ids` is attained by exactly one node — the
/// success event of Lemma 18 that makes the downstream election single-leader.
bool unique_max(const std::vector<SampledId>& ids);

}  // namespace colex::co
