#include "coro/executor.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

namespace colex::coro {

thread_local Executor::ExecContext* Executor::current_ = nullptr;

Executor::Executor(std::size_t n, const std::vector<bool>& port_flips,
                   ExecutorOptions options)
    : nodes_(wire_ring(n, port_flips)),
      options_(options),
      worker_count_(std::max<std::size_t>(1, options.workers)),
      stats_(worker_count_ + 1) {
  // Each deque is sized for the worst case (every node simultaneously
  // ready in one deque), which removes overflow handling entirely: 4 bytes
  // per slot, so even n=10^6 with 4 workers is 16MB of deque.
  deques_.reserve(worker_count_ + 1);
  yields_.reserve(worker_count_ + 1);
  for (std::size_t w = 0; w <= worker_count_; ++w) {
    deques_.push_back(std::make_unique<WorkDeque>(n));
    yields_.push_back(std::make_unique<YieldQueue>(n));
  }
  if (options_.metrics != nullptr) {
    // Arm the flight recorder while still single-threaded: ring creation is
    // setup-only, and each execution context then owns exactly one ring.
    flight_ = std::make_unique<obs::FlightRecorder>();
    flight_rings_.reserve(worker_count_ + 1);
    for (std::size_t w = 0; w < worker_count_; ++w) {
      flight_rings_.push_back(&flight_->ring("worker." + std::to_string(w)));
    }
    flight_rings_.push_back(&flight_->ring("driver"));
  }
}

void Executor::wake_one_worker() {
  // Empty-critical-section handshake: park_worker evaluates its predicate
  // under park_mutex_, so locking (even briefly) after the ready_count_
  // bump guarantees the parked worker either saw the bump pre-sleep or is
  // already waiting and receives this notify — never the gap between.
  // colex-lint: allow(T002) empty critical section: the guard is the wake
  // handshake itself and is never held across a park or any other wait
  { std::lock_guard<std::mutex> lock(park_mutex_); }
  park_cv_.notify_one();
}

void Executor::signal_stop() {
  stop_.store(true, std::memory_order_seq_cst);
  { std::lock_guard<std::mutex> lock(park_mutex_); }
  park_cv_.notify_all();
  done_cv_.notify_all();
}

void Executor::run_node(ExecContext& ctx, std::uint32_t v) {
  auto& nd = nodes_[v];
  nd.state.store(NodeState::running, std::memory_order_seq_cst);
  nd.handle.resume();
  ctx.stats->resumes.store(
      ctx.stats->resumes.load(std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  if (nd.handle.done()) {
    nd.state.store(NodeState::done, std::memory_order_seq_cst);
    if (done_count_.fetch_add(1, std::memory_order_seq_cst) + 1 ==
        nodes_.size()) {
      flight_record(ctx.index, "all-done", nodes_.size());
      signal_stop();  // natural termination: every node returned (Alg 2)
    }
  }
  // Otherwise the coroutine parked itself (state PARKED), or a producer
  // already re-readied it and owns its next resume.
}

void Executor::park_worker(ExecContext& ctx) {
  std::unique_lock<std::mutex> lock(park_mutex_);
  idle_workers_.fetch_add(1, std::memory_order_seq_cst);
  if (ready_count_.load(std::memory_order_seq_cst) != 0 ||
      stop_.load(std::memory_order_seq_cst)) {
    idle_workers_.fetch_sub(1, std::memory_order_seq_cst);
    return;  // work appeared (or stop) between our last scan and the lock
  }
  if (idle_workers_.load(std::memory_order_seq_cst) == worker_count_) {
    // Last worker in: quiescence detection. Every other worker's counter
    // writes are ordered before its idle_workers_ RMW, and that RMW chain
    // is ordered before ours (release sequence on idle_workers_), so the
    // sums below are exact. ready_count_ == 0 (checked above, and no
    // worker is running to push) means every node is PARKED or DONE;
    // sent == consumed(+swallowed) then proves no pulse is in flight or
    // pending — the fabric can never move again.
    if (total_sent() == total_consumed()) {
      quiescent_.store(true, std::memory_order_seq_cst);
      idle_workers_.fetch_sub(1, std::memory_order_seq_cst);
      lock.unlock();
      flight_record(ctx.index, "quiescent", total_sent(),
                    done_count_.load(std::memory_order_seq_cst));
      signal_stop();
      return;
    }
    // Counters disagree with an all-parked fabric: pulses bound for nodes
    // that terminated mid-delivery race (Alg 2 tail) or a genuine stall —
    // the done==n path or the watchdog decides; we just go to sleep.
  }
  ctx.stats->parks.store(ctx.stats->parks.load(std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
  flight_record(ctx.index, "park",
                idle_workers_.load(std::memory_order_seq_cst),
                done_count_.load(std::memory_order_seq_cst));
  park_cv_.wait(lock, [this] {
    return ready_count_.load(std::memory_order_seq_cst) != 0 ||
           stop_.load(std::memory_order_seq_cst);
  });
  idle_workers_.fetch_sub(1, std::memory_order_seq_cst);
}

void Executor::worker_main(std::size_t w) {
  ExecContext ctx{&stats_[w], deques_[w].get(), yields_[w].get(), w};
  current_ = &ctx;
  WorkDeque& own = *deques_[w];
  YieldQueue& yielded = *yields_[w];
  std::uint32_t v = 0;
  while (!stop_.load(std::memory_order_seq_cst)) {
    if (own.pop(v)) {
      ready_count_.fetch_sub(1, std::memory_order_seq_cst);
      run_node(ctx, v);
      continue;
    }
    // Wakeups first (LIFO, cache-warm), then the yield FIFO: a yielded node
    // reruns only after everything it was waiting behind has had a turn.
    if (yielded.pop(v)) {
      ready_count_.fetch_sub(1, std::memory_order_seq_cst);
      run_node(ctx, v);
      continue;
    }
    bool stole = false;
    // Deterministic round-robin victim order (no randomness: colex-lint
    // D001, and workers=1 runs must be bit-reproducible).
    for (std::size_t k = 1; k < worker_count_; ++k) {
      if (deques_[(w + k) % worker_count_]->steal(v)) {
        ready_count_.fetch_sub(1, std::memory_order_seq_cst);
        ctx.stats->steals.store(
            ctx.stats->steals.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
        run_node(ctx, v);
        stole = true;
        break;
      }
    }
    if (stole) continue;
    park_worker(ctx);
  }
  current_ = nullptr;
}

void Executor::drain() {
  // Post-join, single-threaded: with stop_ set, wait_any() can no longer
  // suspend (await_ready short-circuits), so one resume runs any
  // unfinished coroutine to its co_return — collecting the stopped=true
  // outcomes exactly as ThreadRing's broadcast_stop wake-up does. Sends
  // performed on the way out land in the driver's own context.
  ExecContext ctx{&stats_[worker_count_], deques_[worker_count_].get(),
                  yields_[worker_count_].get(), worker_count_};
  current_ = &ctx;
  std::uint64_t drained = 0;
  for (std::uint32_t v = 0; v < nodes_.size(); ++v) {
    auto& nd = nodes_[v];
    if (nd.handle.done()) continue;
    nd.state.store(NodeState::running, std::memory_order_seq_cst);
    nd.handle.resume();
    COLEX_ASSERT(nd.handle.done());
    nd.state.store(NodeState::done, std::memory_order_seq_cst);
    done_count_.fetch_add(1, std::memory_order_seq_cst);
    ++drained;
  }
  flight_record(worker_count_, "drain", drained);
  current_ = nullptr;
}

void Executor::record_progress_sample(double elapsed_ms) {
  const std::uint64_t consumed = total_consumed();
  std::ostringstream os;
  os << "t=" << static_cast<std::uint64_t>(elapsed_ms)
     << "ms sent=" << total_sent() << " consumed=" << consumed
     << " ready=" << ready_count_.load()
     << " idle=" << idle_workers_.load() << " done=" << done_count_.load();
  // Consumed moves on every pulse absorbed anywhere: flat tail == stall.
  progress_.record(consumed, os.str());
  flight_record(worker_count_, "progress", consumed,
                ready_count_.load(std::memory_order_seq_cst));
}

bool Executor::run() {
  const std::size_t n = nodes_.size();
  for (std::uint32_t v = 0; v < n; ++v) {
    COLEX_EXPECTS(nodes_[v].handle);  // every node bound
    deques_[v % worker_count_]->push(v);
  }
  ready_count_.store(n, std::memory_order_seq_cst);

  std::vector<std::thread> threads;
  threads.reserve(worker_count_);
  for (std::size_t w = 0; w < worker_count_; ++w) {
    threads.emplace_back([this, w] { worker_main(w); });
  }

  // Watchdog + progress history, with the ThreadRing monitor's cadence:
  // cover the timeout with kProgressSamples samples, floor 50ms.
  const auto started = std::chrono::steady_clock::now();
  const auto deadline =
      started + std::chrono::milliseconds(options_.timeout_ms);
  const auto sample_every = std::chrono::milliseconds(
      std::max<std::uint64_t>(options_.timeout_ms / kProgressSamples, 50));
  auto next_sample = started;
  {
    std::unique_lock<std::mutex> lock(park_mutex_);
    while (!stop_.load(std::memory_order_seq_cst)) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= next_sample) {
        record_progress_sample(
            std::chrono::duration<double, std::milli>(now - started).count());
        next_sample = now + sample_every;
      }
      if (now > deadline) {
        timed_out_ = true;
        break;
      }
      done_cv_.wait_until(lock, std::min(next_sample, deadline));
    }
  }
  if (timed_out_) {
    flight_record(worker_count_, "timeout", options_.timeout_ms,
                  total_consumed());
    signal_stop();
  }
  for (auto& t : threads) t.join();
  if (timed_out_) stall_dump_ = dump();  // snapshot before the drain mutates
  drain();

  if (options_.metrics != nullptr) {
    // Per-worker registries, merged post-join (obs ownership contract).
    std::vector<obs::Registry> regs(worker_count_ + 1);
    for (std::size_t w = 0; w <= worker_count_; ++w) {
      const auto& s = stats_[w];
      obs::Registry& r = regs[w];
      const bool driver = w == worker_count_;
      const std::string who =
          driver ? std::string("drain") : "worker." + std::to_string(w);
      r.counter("coro.sent").inc(s.sent.load());
      r.counter("coro.consumed").inc(s.consumed.load());
      r.counter("coro.swallowed").inc(s.swallowed.load());
      r.counter("coro.resumes").inc(s.resumes.load());
      r.counter("coro.steals").inc(s.steals.load());
      r.counter("coro.parks").inc(s.parks.load());
      r.counter("coro.wakeups").inc(s.wakeups.load());
      r.counter("coro.batched_wakeups").inc(s.batched.load());
      r.counter("coro.yields").inc(s.yields.load());
      r.counter("coro." + who + ".resumes").inc(s.resumes.load());
      r.counter("coro." + who + ".steals").inc(s.steals.load());
      r.counter("coro." + who + ".parks").inc(s.parks.load());
    }
    publish_metrics(regs);
  }
  return !timed_out_;
}

void Executor::publish_metrics(
    const std::vector<obs::Registry>& worker_registries) {
  obs::Registry& reg = *options_.metrics;
  for (const auto& r : worker_registries) reg.merge(r);
  reg.counter("coro.nodes").inc(nodes_.size());
  reg.counter("coro.workers").inc(worker_count_);
  reg.counter("coro.done").inc(done_count_.load());
  if (quiescent_.load()) reg.counter("coro.quiescent").inc();
  if (timed_out_) reg.counter("coro.timed_out").inc();
  // Final per-phase node distribution (where every node ended up). During
  // a watchdog dump the same scan runs live in dump().
  std::size_t by_phase[obs::kPhaseCount] = {};
  for (const auto& nd : nodes_) {
    const std::size_t i = nd.phase.load(std::memory_order_relaxed);
    ++by_phase[i < obs::kPhaseCount ? i : 0];
  }
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    reg.gauge(obs::labeled("coro.phase_nodes", "phase", obs::phase_name(i)))
        .set(static_cast<double>(by_phase[i]));
  }
}

ExecStats Executor::stats() const {
  ExecStats out;
  out.sent = sum(&WorkerStats::sent);
  out.consumed = sum(&WorkerStats::consumed);
  out.swallowed = sum(&WorkerStats::swallowed);
  out.resumes = sum(&WorkerStats::resumes);
  out.steals = sum(&WorkerStats::steals);
  out.parks = sum(&WorkerStats::parks);
  out.wakeups = sum(&WorkerStats::wakeups);
  out.batched = sum(&WorkerStats::batched);
  out.yields = sum(&WorkerStats::yields);
  out.workers = worker_count_;
  return out;
}

std::string Executor::dump() const {
  std::ostringstream os;
  const ExecStats s = stats();
  os << "coro-executor state: n=" << nodes_.size()
     << " workers=" << worker_count_ << " sent=" << s.sent
     << " consumed=" << s.consumed << " swallowed=" << s.swallowed
     << " ready=" << ready_count_.load() << " idle=" << idle_workers_.load()
     << " done=" << done_count_.load() << " resumes=" << s.resumes
     << " steals=" << s.steals << " parks=" << s.parks
     << " wakeups=" << s.wakeups << " batched=" << s.batched
     << " yields=" << s.yields << "\n";
  // Per-node listing capped to the anomalies: at n=10^6 a full dump is
  // useless; what the post-mortem needs is which nodes still hold pulses
  // or are not parked.
  constexpr std::size_t kMaxListed = 32;
  std::size_t anomalies = 0;
  for (std::uint32_t v = 0; v < nodes_.size(); ++v) {
    const auto& nd = nodes_[v];
    const std::uint64_t p0 = nd.in[0].pending();
    const std::uint64_t p1 = nd.in[1].pending();
    const NodeState st = nd.state.load();
    if (p0 == 0 && p1 == 0 && st == NodeState::parked) continue;
    ++anomalies;
    if (anomalies > kMaxListed) continue;
    static constexpr const char* kStates[] = {"ready", "running", "parked",
                                              "done"};
    const std::size_t ph = nd.phase.load(std::memory_order_relaxed);
    os << "  node " << v << ": pending[p0]=" << p0 << " pending[p1]=" << p1
       << " state=" << kStates[static_cast<std::uint32_t>(st)]
       << " phase=" << obs::phase_name(ph < obs::kPhaseCount ? ph : 0)
       << "\n";
  }
  if (anomalies > kMaxListed) {
    os << "  ... " << (anomalies - kMaxListed)
       << " more nodes with pulses pending or not parked\n";
  }
  // Phase distribution: where the ring's nodes are in the algorithm right
  // now — the first thing a stall post-mortem needs.
  std::size_t by_phase[obs::kPhaseCount] = {};
  for (const auto& nd : nodes_) {
    const std::size_t i = nd.phase.load(std::memory_order_relaxed);
    ++by_phase[i < obs::kPhaseCount ? i : 0];
  }
  os << "  phases:";
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    if (by_phase[i] != 0) {
      os << " " << obs::phase_name(i) << "=" << by_phase[i];
    }
  }
  os << "\n";
  const std::vector<std::string> history = progress_.history();
  if (!history.empty()) {
    os << "  progress history (last " << history.size() << " samples):\n";
    for (const auto& sample : history) os << "    " << sample << "\n";
  }
  if (flight_ != nullptr) os << "  " << flight_->render_tail(32);
  if (options_.metrics != nullptr) {
    os << "  metrics: " << options_.metrics->to_json() << "\n";
  }
  return os.str();
}

}  // namespace colex::coro
