// Parallel sweep harness: a minimal work-stealing pool plus a parallel
// version of the exhaustive schedule explorer (sim/explore.hpp).
//
// Determinism contract
// --------------------
// Every parallel primitive here is *worker-count oblivious*: the result is
// a pure function of the inputs, identical for 1, 2, or N workers, because
//  * tasks write only to their own index's slot of caller-owned storage
//    (no shared accumulators, no locks on the hot path), and
//  * aggregation happens sequentially, in task-index order, after the pool
//    has joined.
// The pool itself is a single atomic cursor over the task range: idle
// workers "steal" the next unclaimed index, so uneven subtrees load-balance
// without any per-task queueing machinery. tests/test_parallel_explore.cpp
// asserts the 1-vs-N equivalence and runs under TSan in ci.sh.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "sim/explore.hpp"
#include "sim/network.hpp"
#include "util/contracts.hpp"

namespace colex::sim {

/// Default worker count for sweeps: hardware concurrency, at least 1.
inline std::size_t default_workers() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

/// Runs `count` independent tasks on up to `workers` threads; `fn(i)` is
/// invoked exactly once for every i in [0, count). With workers <= 1 the
/// tasks run inline on the calling thread — the zero-thread degenerate case
/// the determinism tests compare against. `fn` must confine its writes to
/// per-index state; it must not throw (a worker-thread exception would
/// terminate the process).
inline void parallel_for(std::size_t count, std::size_t workers,
                         const std::function<void(std::size_t)>& fn) {
  if (workers <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> cursor{0};
  auto drain = [&cursor, count, &fn] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  const std::size_t spawned = std::min(workers, count) - 1;
  pool.reserve(spawned);
  for (std::size_t t = 0; t < spawned; ++t) pool.emplace_back(drain);
  drain();  // the calling thread works too
  for (auto& th : pool) th.join();
}

/// Per-worker utilization telemetry for an instrumented parallel_for run.
/// Worker 0 is the calling thread. NOTE: unlike everything else in this
/// header, these numbers are inherently worker-count *dependent* — they
/// describe the machine, not the computation — so they live strictly on the
/// observability side and never feed back into results.
struct WorkerStats {
  std::uint64_t tasks = 0;      ///< task indices this worker claimed
  double busy_seconds = 0.0;    ///< wall time spent inside fn
};

/// parallel_for variant that reports which worker ran each task and how
/// long each worker stayed busy. `fn(worker, task)`; the returned vector
/// has one entry per worker slot (min(workers, count), at least 1). Each
/// worker writes only its own slot, so the collection is race-free.
inline std::vector<WorkerStats> parallel_for_instrumented(
    std::size_t count, std::size_t workers,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  const std::size_t slots =
      count == 0 ? 1 : std::min(workers <= 1 ? 1 : workers, count);
  std::vector<WorkerStats> stats(slots);
  if (slots <= 1) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < count; ++i) fn(0, i);
    stats[0].tasks = count;
    stats[0].busy_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return stats;
  }
  std::atomic<std::size_t> cursor{0};
  auto drain = [&cursor, count, &fn, &stats](std::size_t worker) {
    WorkerStats& mine = stats[worker];
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      const auto t0 = std::chrono::steady_clock::now();
      fn(worker, i);
      mine.busy_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      ++mine.tasks;
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(slots - 1);
  for (std::size_t t = 1; t < slots; ++t) {
    pool.emplace_back(drain, t);
  }
  drain(0);  // the calling thread works too
  for (auto& th : pool) th.join();
  return stats;
}

struct ParallelExploreOptions {
  /// Caps tree nodes visited, split deterministically across subtrees (the
  /// frontier split below), so truncation does not depend on worker count.
  std::uint64_t budget = 1'000'000;
  std::size_t workers = 1;
  /// The explorer first expands the tree breadth-first (sequentially) until
  /// at least this many independent frontier subtrees exist, then fans the
  /// subtrees out to the pool. More subtrees = better load balancing at the
  /// price of a longer sequential prefix.
  std::size_t min_subtrees = 64;
  /// Optional telemetry sink (visits/clones summed across subtrees, wall
  /// seconds, frontier depth); null keeps the uninstrumented fast path.
  ExploreTelemetry* telemetry = nullptr;
  /// Optional per-worker utilization sink. When set, subtrees are dispatched
  /// through parallel_for_instrumented and the vector is replaced with one
  /// WorkerStats per worker slot. Purely observational — results remain
  /// worker-count oblivious either way.
  std::vector<WorkerStats>* worker_stats = nullptr;
};

/// Parallel exhaustive exploration with deterministic aggregation. Each
/// frontier subtree explores into its own ExploreStats and its own `Acc`
/// (copied from the neutral value in `acc`); after the pool joins, the
/// per-subtree results are folded into `acc` in subtree order with
/// `merge(acc, subtree_acc)`, and the summed stats are returned. `on_leaf`
/// may freely mutate its Acc — it owns it exclusively — but must not touch
/// anything shared.
///
/// Exhaustive runs produce exactly the leaves of the sequential snapshot
/// engine (leaf *order* differs: breadth-first prefix, then depth-first per
/// subtree — but identically so for every worker count).
template <typename Acc>
ExploreStats parallel_explore_all_schedules(
    const std::function<PulseNetwork()>& build,
    const std::function<void(Acc&, PulseNetwork&)>& on_leaf,
    const std::function<void(Acc&, const Acc&)>& merge, Acc& acc,
    const ParallelExploreOptions& options) {
  COLEX_EXPECTS(options.budget > 0);
  ExploreStats stats;
  std::uint64_t budget = options.budget;
  const auto wall_start = std::chrono::steady_clock::now();
  auto stamp_seconds = [&] {
    if (options.telemetry) {
      options.telemetry->seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();
    }
  };

  struct Frontier {
    PulseNetwork net;
    std::uint64_t depth = 0;
  };
  std::deque<Frontier> queue;
  {
    Frontier root;
    root.net = build();
    root.net.start_all();
    queue.push_back(std::move(root));
  }

  // Sequential breadth-first expansion into independent subtree roots.
  // Each expansion is one tree-node visit (same budget unit as the DFS).
  const std::size_t want = options.min_subtrees == 0 ? 1 : options.min_subtrees;
  while (!queue.empty() && queue.size() < want && budget > 0) {
    Frontier f = std::move(queue.front());
    queue.pop_front();
    --budget;
    if (options.telemetry) ++options.telemetry->visits;
    const auto pending = f.net.pending_channels();
    if (pending.empty()) {
      ++stats.leaves;
      stats.max_depth = std::max(stats.max_depth, f.depth);
      on_leaf(acc, f.net);
      continue;
    }
    for (std::size_t i = 0; i + 1 < pending.size(); ++i) {
      Frontier child;
      child.net = f.net.clone();
      if (options.telemetry) ++options.telemetry->clones;
      child.net.deliver_step(pending[i]);
      child.depth = f.depth + 1;
      queue.push_back(std::move(child));
    }
    f.net.deliver_step(pending.back());
    ++f.depth;
    queue.push_back(std::move(f));
  }
  if (queue.empty()) {
    stamp_seconds();
    return stats;  // whole tree fit into the expansion
  }

  // Deterministic budget split: subtree i gets an equal share, the first
  // (budget mod subtrees) subtrees one unit more. Independent of workers.
  const std::size_t subtrees = queue.size();
  if (options.telemetry) {
    options.telemetry->frontier_subtrees = subtrees;
  }
  std::vector<Frontier> roots(std::make_move_iterator(queue.begin()),
                              std::make_move_iterator(queue.end()));
  std::vector<std::uint64_t> quota(subtrees, budget / subtrees);
  for (std::size_t i = 0; i < budget % subtrees; ++i) ++quota[i];

  std::vector<ExploreStats> sub_stats(subtrees);
  std::vector<Acc> sub_acc(subtrees, acc);
  // Per-subtree telemetry: each worker writes only its own subtree's slot
  // (same ownership discipline as sub_acc), merged sequentially after join.
  std::vector<ExploreTelemetry> sub_telemetry(
      options.telemetry ? subtrees : 0);
  auto explore_subtree = [&](std::size_t i) {
    Acc& local = sub_acc[i];
    const std::function<void(PulseNetwork&)> leaf =
        [&local, &on_leaf](PulseNetwork& net) { on_leaf(local, net); };
    detail::snapshot_explore(roots[i].net, roots[i].depth, quota[i],
                             sub_stats[i], leaf,
                             options.telemetry ? &sub_telemetry[i] : nullptr);
  };
  if (options.worker_stats) {
    *options.worker_stats = parallel_for_instrumented(
        subtrees, options.workers,
        [&](std::size_t, std::size_t i) { explore_subtree(i); });
  } else {
    parallel_for(subtrees, options.workers, explore_subtree);
  }

  for (std::size_t i = 0; i < subtrees; ++i) {
    stats.leaves += sub_stats[i].leaves;
    stats.truncated += sub_stats[i].truncated;
    stats.max_depth = std::max(stats.max_depth, sub_stats[i].max_depth);
    merge(acc, sub_acc[i]);
    if (options.telemetry) options.telemetry->merge(sub_telemetry[i]);
  }
  stamp_seconds();
  return stats;
}

}  // namespace colex::sim
