#include "lint/classes.hpp"

namespace colex::lint {

namespace {

enum class ScopeKind { namespace_, class_, enum_, function, block, expr };

struct Scope {
  ScopeKind kind;
  std::size_t class_index = static_cast<std::size_t>(-1);  // into classes
  std::size_t func_index = static_cast<std::size_t>(-1);   // into functions
  int paren_depth_at_open = 0;
};

bool is_control_keyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch";
}

bool is_qualifier(const std::string& s) {
  return s == "const" || s == "override" || s == "final" || s == "noexcept" ||
         s == "mutable";
}

class Walker {
 public:
  explicit Walker(const SourceFile& file) : file_(file), toks_(file.tokens) {}

  FileIndex run() {
    for (i_ = 0; i_ < toks_.size(); ++i_) {
      const Token& t = toks_[i_];
      if (t.kind == Tok::punct) {
        if (t.text == "(") ++paren_depth_;
        else if (t.text == ")" && paren_depth_ > 0) --paren_depth_;
        else if (t.text == "{") open_brace();
        else if (t.text == "}") close_brace();
        continue;
      }
      if (t.kind != Tok::identifier) continue;
      if (t.text == "static") check_static_local();
      if (in_class_body() && paren_depth_ == scopes_.back().paren_depth_at_open)
        maybe_member();
    }
    return std::move(out_);
  }

 private:
  bool in_class_body() const {
    return !scopes_.empty() && scopes_.back().kind == ScopeKind::class_;
  }

  bool inside_function() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == ScopeKind::function) return true;
      if (it->kind == ScopeKind::class_ || it->kind == ScopeKind::namespace_)
        return false;
    }
    return false;
  }

  /// D003 candidate: `static` inside a function body, not const-qualified.
  void check_static_local() {
    if (!inside_function()) return;
    for (std::size_t j = i_ + 1; j < toks_.size() && j <= i_ + 3; ++j) {
      const std::string& s = toks_[j].text;
      if (s == "const" || s == "constexpr" || s == "constinit") return;
      if (toks_[j].kind != Tok::identifier) break;
    }
    out_.mutable_static_local_lines.push_back(toks_[i_].line);
  }

  /// Trailing-underscore identifier declared at class scope => data member.
  void maybe_member() {
    const Token& t = toks_[i_];
    if (t.text.size() < 2 || t.text.back() != '_') return;
    if (i_ + 1 >= toks_.size()) return;
    const Token& next = toks_[i_ + 1];
    if (next.kind != Tok::punct) return;
    if (next.text != ";" && next.text != "=" && next.text != "{" &&
        next.text != "[" && next.text != ",")
      return;
    if (i_ > 0 && toks_[i_ - 1].kind == Tok::punct &&
        (toks_[i_ - 1].text == ":" || toks_[i_ - 1].text == "."))
      return;
    ClassDef& cls = out_.classes[scopes_.back().class_index];
    if (cls.member_lines.count(t.text) == 0) {
      cls.members.push_back(t.text);
      cls.member_lines[t.text] = t.line;
    }
  }

  /// Index of the '(' matching the ')' at `close`, or npos.
  std::size_t match_paren_back(std::size_t close) const {
    int depth = 0;
    for (std::size_t j = close + 1; j-- > 0;) {
      const Token& t = toks_[j];
      if (t.kind != Tok::punct) continue;
      if (t.text == ")") ++depth;
      if (t.text == "(") {
        --depth;
        if (depth == 0) return j;
      }
    }
    return static_cast<std::size_t>(-1);
  }

  /// Given the ')' ending a parenthesized group right before a '{', decide
  /// control-block vs function body, walking leftwards through constructor
  /// initializer lists.
  void classify_after_paren(std::size_t close, Scope& scope) {
    for (int hops = 0; hops < 64; ++hops) {
      const std::size_t open = match_paren_back(close);
      if (open == static_cast<std::size_t>(-1) || open == 0) {
        scope.kind = ScopeKind::block;
        return;
      }
      const Token& before = toks_[open - 1];
      if (before.kind != Tok::identifier) {
        // `](...)` lambda, `operator()(..)`, or an expression: treat any
        // brace following a non-identifier paren group as a function body —
        // for our rules only the "inside a function" property matters.
        scope.kind = before.text == "]" ? ScopeKind::function
                                        : ScopeKind::expr;
        return;
      }
      if (is_control_keyword(before.text)) {
        scope.kind = ScopeKind::block;
        return;
      }
      if (before.text == "constexpr" && open >= 2 &&
          toks_[open - 2].text == "if") {
        scope.kind = ScopeKind::block;
        return;
      }
      // Identifier before '(' — but it may be a member initializer inside a
      // constructor init list: `X::X(..) : a_(v), b_(w) {`. Step over it.
      if (open >= 2 && toks_[open - 2].kind == Tok::punct &&
          (toks_[open - 2].text == "," || toks_[open - 2].text == ":")) {
        const std::size_t sep = open - 2;
        if (toks_[sep].text == ":" &&
            !(sep >= 1 && toks_[sep - 1].text == ":")) {
          // Init-list ':' — the real signature's ')' sits right before it.
          if (sep >= 1 && toks_[sep - 1].text == ")") {
            close = sep - 1;
            continue;
          }
        }
        if (toks_[sep].text == ",") {
          // Previous initializer group ends just before the ','.
          if (sep >= 1 &&
              (toks_[sep - 1].text == ")" || toks_[sep - 1].text == "}")) {
            if (toks_[sep - 1].text == ")") {
              close = sep - 1;
              continue;
            }
            scope.kind = ScopeKind::function;  // brace-init member; give up
            return;                            // on naming, keep the kind
          }
        }
      }
      // Found the function name.
      scope.kind = ScopeKind::function;
      FunctionDef fn;
      fn.name = before.text;
      fn.line = before.line;
      fn.sig_begin = open - 1;
      // Owner: `X :: name` qualification, else the enclosing class.
      if (open >= 4 && toks_[open - 2].text == ":" &&
          toks_[open - 3].text == ":" &&
          toks_[open - 4].kind == Tok::identifier) {
        fn.owner = toks_[open - 4].text;
        fn.sig_begin = open - 4;
      } else {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
          if (it->kind == ScopeKind::class_) {
            fn.owner = out_.classes[it->class_index].name;
            break;
          }
          if (it->kind != ScopeKind::block && it->kind != ScopeKind::expr)
            break;
        }
      }
      scope.func_index = out_.functions.size();
      out_.functions.push_back(fn);
      return;
    }
    scope.kind = ScopeKind::block;
  }

  /// Scan the declaration head leftwards for class/enum/namespace keywords.
  bool classify_from_head(Scope& scope) {
    bool saw_enum = false;
    std::size_t keyword_at = static_cast<std::size_t>(-1);
    for (std::size_t j = i_, steps = 0; j-- > 0 && steps < 64; ++steps) {
      const Token& t = toks_[j];
      if (t.kind == Tok::punct &&
          (t.text == ";" || t.text == "{" || t.text == "}" || t.text == ")" ||
           t.text == "=")) {
        break;
      }
      if (t.text == "enum") saw_enum = true;
      if (t.text == "class" || t.text == "struct" || t.text == "union" ||
          t.text == "namespace") {
        keyword_at = j;
        if (t.text == "namespace") {
          scope.kind = ScopeKind::namespace_;
          return true;
        }
        // keep scanning left in case this is `enum class`
      }
    }
    if (keyword_at == static_cast<std::size_t>(-1)) return false;
    if (saw_enum) {
      scope.kind = ScopeKind::enum_;
      return true;
    }
    scope.kind = ScopeKind::class_;
    ClassDef cls;
    cls.line = toks_[i_].line;
    cls.body_begin = i_ + 1;
    // Head: NAME [final] [: base-clause] up to '{'.
    bool in_bases = false;
    for (std::size_t j = keyword_at + 1; j < i_; ++j) {
      const Token& t = toks_[j];
      if (t.kind == Tok::punct && t.text == ":" &&
          !(j + 1 < i_ && toks_[j + 1].text == ":") &&
          !(j >= 1 && toks_[j - 1].text == ":")) {
        in_bases = true;
        continue;
      }
      if (t.kind != Tok::identifier) continue;
      if (in_bases) {
        if (t.text != "public" && t.text != "private" &&
            t.text != "protected" && t.text != "virtual") {
          cls.bases.push_back(t.text);
        }
      } else if (cls.name.empty() && t.text != "final" && t.text != "alignas") {
        cls.name = t.text;
      }
    }
    scope.class_index = out_.classes.size();
    out_.classes.push_back(std::move(cls));
    return true;
  }

  void open_brace() {
    Scope scope;
    scope.kind = ScopeKind::block;
    scope.paren_depth_at_open = paren_depth_;
    do {
      if (i_ == 0) break;
      const Token& prev = toks_[i_ - 1];
      if (prev.text == "try" || prev.text == "else" || prev.text == "do") {
        scope.kind = ScopeKind::block;
        break;
      }
      if (prev.kind == Tok::punct &&
          (prev.text == "=" || prev.text == "," || prev.text == "(" ||
           prev.text == "[" || prev.text == "<")) {
        scope.kind = ScopeKind::expr;
        break;
      }
      if (prev.text == "]") {  // captureless lambda: `[..] {`
        scope.kind = ScopeKind::function;
        break;
      }
      if (prev.kind == Tok::string_lit) {  // extern "C" {
        scope.kind = ScopeKind::namespace_;
        break;
      }
      // Skip trailing cv/ref/exception qualifiers, then look for ')'.
      std::size_t j = i_ - 1;
      while (j > 0 && toks_[j].kind == Tok::identifier &&
             is_qualifier(toks_[j].text)) {
        --j;
      }
      // Trailing return type chain `) -> T...`.
      for (int steps = 0; steps < 32 && j > 0; ++steps) {
        const Token& t = toks_[j];
        if (t.kind == Tok::punct && t.text == ")") break;
        if (t.kind == Tok::identifier || t.kind == Tok::number ||
            (t.kind == Tok::punct &&
             (t.text == "<" || t.text == ">" || t.text == ":" ||
              t.text == "*" || t.text == "&" || t.text == ","))) {
          if (t.text == ">" && j >= 1 && toks_[j - 1].text == "-") {
            --j;  // part of '->'
          }
          --j;
          continue;
        }
        break;
      }
      if (toks_[j].kind == Tok::punct && toks_[j].text == ")") {
        classify_after_paren(j, scope);
        break;
      }
      if (classify_from_head(scope)) break;
      // `Type{...}` aggregate init or an unrecognized construct.
      scope.kind = ScopeKind::expr;
    } while (false);

    if (scope.kind == ScopeKind::function &&
        scope.func_index == static_cast<std::size_t>(-1)) {
      FunctionDef fn;  // unnamed (lambda): body still counts as a function
      fn.line = toks_[i_].line;
      fn.sig_begin = i_ + 1;
      scope.func_index = out_.functions.size();
      out_.functions.push_back(fn);
    }
    if (scope.func_index != static_cast<std::size_t>(-1)) {
      out_.functions[scope.func_index].body_begin = i_ + 1;
    }
    scopes_.push_back(scope);
  }

  void close_brace() {
    if (scopes_.empty()) return;  // tolerate unbalanced input
    const Scope scope = scopes_.back();
    scopes_.pop_back();
    if (scope.class_index != static_cast<std::size_t>(-1)) {
      out_.classes[scope.class_index].body_end = i_;
    }
    if (scope.func_index != static_cast<std::size_t>(-1)) {
      out_.functions[scope.func_index].body_end = i_;
    }
  }

  const SourceFile& file_;
  const std::vector<Token>& toks_;
  std::size_t i_ = 0;
  int paren_depth_ = 0;
  std::vector<Scope> scopes_;
  FileIndex out_;
};

}  // namespace

FileIndex build_file_index(const SourceFile& file) {
  return Walker(file).run();
}

ProjectIndex build_project_index(const std::vector<SourceFile>& files) {
  ProjectIndex project;
  project.files.reserve(files.size());
  for (const SourceFile& f : files) {
    project.files.push_back(build_file_index(f));
  }
  for (const FileIndex& fi : project.files) {
    for (const ClassDef& cls : fi.classes) {
      if (cls.name.empty()) continue;
      for (const std::string& base : cls.bases) {
        if (base.find("Automaton") != std::string::npos) {
          project.automaton_classes.insert(cls.name);
          break;
        }
      }
    }
  }
  return project;
}

}  // namespace colex::lint
