// E18 — real-socket transport: the same elections over actual TCP.
// The transport seam (runtime/transport.hpp) promises that the blocking
// transcriptions are substrate-blind; src/net cashes that in with 1-byte
// pulse frames over loopback TCP, per-neighbor sessions, and a coordinator
// that proves quiescence with a four-counter probe protocol. Measured
// here:
//
//  * Multi-process election FIRST (fork() is only safe while the process
//    is single-threaded): one OS process per node via net::run_multiprocess
//    — the paper's setting taken literally, n processes sharing nothing
//    but TCP connections. Algorithm 2, unique dense IDs: exactly
//    n(2·IDmax+1) pulses merged across processes.
//  * In-process socket sweep vs the coroutine executor on the identical
//    workload (Algorithm 1, IDmax=2, exactly 2n pulses): nodes/sec and
//    pulses/sec head to head at n = 8, 32, 128 (smoke: 8, 32).
//  * A socket Algorithm 2 run at the largest sweep size for a heavier
//    cross-validation point (n(2n+1) pulses through real kernel buffers).
//
// Gates (recorded in BENCH_E18.json): every run completes with the exact
// paper-predicted pulse count and a unique max-ID leader; the multi-process
// merged total equals Theorem 1 AND every wire-level consumed count equals
// the sent count (nothing lost or duplicated by TCP framing). There is no
// socket-vs-coro speed gate — syscalls per pulse make sockets slower by
// design; the recorded factor is the cost of real I/O, not a regression.
//
// Flags: --smoke (CI-sized sweep), --json <dir> (redirect BENCH_E18.json).
#include <cstdint>
#include <cstring>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "co/election.hpp"
#include "coro/run.hpp"
#include "net/run.hpp"
#include "runtime/blocking_algs.hpp"
#include "util/table.hpp"

namespace {

using namespace colex;

/// IDmax=2 ring: Corollary 13 gives exactly 2n pulses, so the work per
/// node is constant and nodes/sec is comparable across substrates.
std::vector<std::uint64_t> sweep_ids(std::size_t n) {
  std::vector<std::uint64_t> ids(n, 1);
  ids[n / 2] = 2;
  return ids;
}

struct Row {
  std::string runtime;
  std::string algorithm;
  std::size_t n = 0;
  bool completed = false;
  bool exact = false;  ///< pulses == expected and exactly one leader
  std::uint64_t pulses = 0;
  std::uint64_t expected = 0;
  double seconds = 0.0;
  double nodes_per_sec = 0.0;
  double pulses_per_sec = 0.0;
};

Row make_row(const char* runtime, const char* algorithm, std::size_t n,
             bool completed, std::size_t leaders, std::uint64_t pulses,
             std::uint64_t expected, double seconds) {
  Row row;
  row.runtime = runtime;
  row.algorithm = algorithm;
  row.n = n;
  row.completed = completed;
  row.pulses = pulses;
  row.expected = expected;
  row.seconds = seconds;
  row.exact = completed && leaders == 1 && pulses == expected;
  if (completed && seconds > 0.0) {
    row.nodes_per_sec = static_cast<double>(n) / seconds;
    row.pulses_per_sec = static_cast<double>(pulses) / seconds;
  }
  return row;
}

bench::Json json_row(const Row& row) {
  bench::Json j = bench::Json::object();
  j.set("runtime", row.runtime)
      .set("algorithm", row.algorithm)
      .set("n", static_cast<std::uint64_t>(row.n))
      .set("completed", row.completed)
      .set("exact", row.exact)
      .set("pulses", row.pulses)
      .set("expected_pulses", row.expected)
      .set("seconds", row.seconds)
      .set("nodes_per_sec", row.nodes_per_sec)
      .set("pulses_per_sec", row.pulses_per_sec);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::banner(
      "E18 — real-socket transport: the same elections over actual TCP",
      "the blocking transcriptions are substrate-blind: one-byte pulse "
      "frames over loopback TCP (threads in one process, or one OS process "
      "per node) land the exact Theorem 1 / Corollary 13 pulse counts with "
      "a unique max-ID leader, with quiescence proven from wire counters");

  bench::JsonReport report("E18", "socket transport vs coroutine executor");
  bench::apply_json_flag(report, argc, argv);
  bench::WallTimer total;

  util::Table table({"runtime", "alg", "n", "pulses", "seconds", "nodes/s",
                     "pulses/s", "exact"});
  auto add_table_row = [&table](const Row& row) {
    table.add_row({row.runtime, row.algorithm, std::to_string(row.n),
                   std::to_string(row.pulses),
                   util::Table::fixed(row.seconds, 3),
                   util::Table::fixed(row.nodes_per_sec, 0),
                   util::Table::fixed(row.pulses_per_sec, 0),
                   row.exact ? "yes" : "NO"});
  };
  std::vector<Row> rows;

  // --- Phase 1: multi-process election (must run before any std::thread
  // exists in this process — fork() of a multi-threaded process is UB-
  // adjacent; run_multiprocess documents the same requirement). ----------
  const std::size_t mp_n = smoke ? 6 : 12;
  std::vector<std::uint64_t> mp_ids(mp_n);
  std::iota(mp_ids.begin(), mp_ids.end(), 1);
  const std::uint64_t mp_expected =
      co::theorem1_pulses(mp_n, static_cast<std::uint64_t>(mp_n));
  bench::WallTimer mp_timer;
  const net::MultiProcResult mp =
      net::run_multiprocess(mp_ids, {}, rt::ThreadAlg::alg2);
  const double mp_seconds = mp_timer.seconds();
  Row mp_row = make_row("multiproc", "alg2", mp_n, mp.completed,
                        mp.leader_count, mp.pulses, mp_expected, mp_seconds);
  const bool mp_conserved = mp.consumed == mp.pulses;
  add_table_row(mp_row);
  rows.push_back(mp_row);
  if (!mp.completed) {
    std::cout << "multi-process election failed:\n" << mp.stall_dump << "\n";
  }

  // --- Phase 2: in-process socket sweep vs coro, identical workload. ----
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{8, 32}
            : std::vector<std::size_t>{8, 32, 128};
  bool sweep_exact = true;
  bool wire_conserved = mp_conserved;
  double socket_best_nps = 0.0;
  double coro_best_nps = 0.0;
  for (const std::size_t n : sizes) {
    const auto ids = sweep_ids(n);
    const std::uint64_t expected = 2 * static_cast<std::uint64_t>(n);

    net::SocketRunOptions sopts;
    sopts.timeout_ms = 120'000;
    bench::WallTimer s_timer;
    const net::SocketRunResult s =
        net::run_on_sockets(ids, {}, rt::ThreadAlg::alg1, sopts);
    const Row s_row = make_row("socket", "alg1", n, s.completed,
                               s.leader_count, s.pulses, expected,
                               s_timer.seconds());
    add_table_row(s_row);
    rows.push_back(s_row);
    sweep_exact = sweep_exact && s_row.exact;
    wire_conserved = wire_conserved && s.consumed == s.pulses &&
                     s.wire.bytes_tx == s.pulses &&
                     s.wire.bytes_rx == s.pulses;
    socket_best_nps = std::max(socket_best_nps, s_row.nodes_per_sec);

    coro::CoroRunOptions copts;
    copts.workers = 2;
    copts.timeout_ms = 120'000;
    bench::WallTimer c_timer;
    const coro::CoroRunResult c =
        coro::run_on_coro(ids, {}, rt::ThreadAlg::alg1, copts);
    const Row c_row = make_row("coro", "alg1", n, c.completed,
                               c.leader_count, c.pulses, expected,
                               c_timer.seconds());
    add_table_row(c_row);
    rows.push_back(c_row);
    sweep_exact = sweep_exact && c_row.exact;
    coro_best_nps = std::max(coro_best_nps, c_row.nodes_per_sec);

    // Cross-validation: both substrates landed the identical count.
    sweep_exact = sweep_exact && s.pulses == c.pulses;
  }

  // --- Phase 3: socket Algorithm 2 at the largest sweep size. -----------
  const std::size_t alg2_n = sizes.back();
  std::vector<std::uint64_t> alg2_ids(alg2_n);
  std::iota(alg2_ids.begin(), alg2_ids.end(), 1);
  const std::uint64_t alg2_expected =
      co::theorem1_pulses(alg2_n, static_cast<std::uint64_t>(alg2_n));
  net::SocketRunOptions alg2_opts;
  alg2_opts.timeout_ms = 300'000;
  bench::WallTimer alg2_timer;
  const net::SocketRunResult alg2 =
      net::run_on_sockets(alg2_ids, {}, rt::ThreadAlg::alg2, alg2_opts);
  const Row alg2_row = make_row("socket", "alg2", alg2_n, alg2.completed,
                                alg2.leader_count, alg2.pulses, alg2_expected,
                                alg2_timer.seconds());
  add_table_row(alg2_row);
  rows.push_back(alg2_row);
  wire_conserved = wire_conserved && alg2.consumed == alg2.pulses;
  table.print(std::cout);

  // --- Gates. -----------------------------------------------------------
  const bool all_exact = mp_row.exact && sweep_exact && alg2_row.exact;
  const double io_cost_factor =
      socket_best_nps > 0.0 ? coro_best_nps / socket_best_nps : 0.0;

  std::cout << "\nmulti-process: " << mp_n << " OS processes, " << mp.pulses
            << " pulses merged (" << mp.probe_rounds
            << " probe rounds to prove quiescence, "
            << util::Table::fixed(mp_seconds, 3) << "s)\n"
            << "socket peak: " << util::Table::fixed(socket_best_nps, 0)
            << " nodes/s; coro peak: "
            << util::Table::fixed(coro_best_nps, 0)
            << " nodes/s; real-I/O cost factor: "
            << util::Table::fixed(io_cost_factor, 1) << "x\n"
            << "wire conservation (sent == consumed == bytes each way): "
            << (wire_conserved ? "held" : "VIOLATED") << "\n";

  for (const Row& row : rows) report.add_result(json_row(row));
  report.root()
      .set("smoke", smoke)
      .set("multiproc_n", static_cast<std::uint64_t>(mp_n))
      .set("multiproc_pulses", mp.pulses)
      .set("multiproc_expected_pulses", mp_expected)
      .set("multiproc_probe_rounds", mp.probe_rounds)
      .set("socket_nodes_per_sec", socket_best_nps)
      .set("coro_nodes_per_sec", coro_best_nps)
      .set("io_cost_factor", io_cost_factor)
      .set("gate_multiproc_ok", mp_row.exact && mp_conserved)
      .set("gate_wire_conserved", wire_conserved)
      .set("gate_all_exact", all_exact)
      .set("gate_ok", all_exact && wire_conserved);
  report.finish(total.seconds());

  const bool ok = all_exact && wire_conserved;
  bench::verdict(
      ok, "the socket transport ran every election to the exact paper "
          "pulse count — including " +
              std::to_string(mp_n) +
              " single-node OS processes whose merged Theorem 1 total and "
              "wire counters prove quiescence over real TCP");
  return ok ? 0 : 1;
}
