// Glue between the execution layers and the metrics registry: attaches
// registry-backed counters to a Network run (TraceRecorder-style hook
// chaining) and publishes the sim layer's plain telemetry structs
// (ExploreTelemetry, WorkerStats) as named metrics.
//
// Layering note: sim/ deliberately knows nothing about obs/ — its hooks are
// generic std::function observers and plain structs. This header is where
// the two meet, so only code that opts into telemetry pays the include.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "sim/explore.hpp"
#include "sim/network.hpp"
#include "sim/parallel.hpp"

namespace colex::obs {

/// Attaches per-node / per-direction pulse counters and quiescence-latency
/// gauges to one network run. Disabled options make attach() a strict
/// no-op, leaving the run bit-identical and hook-free.
///
///   obs::Registry reg;
///   obs::NetworkInstrumentation<sim::Pulse> instr(reg, {.enabled = true});
///   instr.attach(net, opts);          // chains existing hooks
///   net.run(scheduler, opts);
///   instr.finish(net);                // latch end-of-run gauges
template <typename P>
class NetworkInstrumentation {
 public:
  explicit NetworkInstrumentation(Registry& registry, ObsOptions options)
      : registry_(registry), options_(options) {}

  /// `net` must already sit in its final storage location: the phase
  /// observer samples `net.automaton(v).phase()` through a captured
  /// pointer, so moving the network after attach() would dangle it
  /// (re-resolving through the network — not caching automaton pointers —
  /// is what keeps crash/recover automaton replacement safe).
  void attach(sim::Network<P>& net, sim::BasicRunOptions<P>& opts) {
    if (!options_.enabled) return;
    const std::size_t n = net.size();
    // Resolve every handle up front: the hooks below touch no strings.
    sends_ = &registry_.counter("net.sends");
    sends_cw_ = &registry_.counter("net.sends.cw");
    sends_ccw_ = &registry_.counter("net.sends.ccw");
    deliveries_ = &registry_.counter("net.deliveries");
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      phase_pulses_[i] =
          &registry_.counter(labeled("pulses", "phase", phase_name(i)));
    }
    node_sends_.reserve(n);
    node_deliveries_.reserve(n);
    for (std::size_t v = 0; v < n; ++v) {
      const std::string id = std::to_string(v);
      node_sends_.push_back(&registry_.counter("node." + id + ".sends"));
      node_deliveries_.push_back(
          &registry_.counter("node." + id + ".deliveries"));
    }
    net.chain_send_observer(
        [this, net_ptr = &net](sim::NodeId v, sim::Port, sim::Direction d) {
          sends_->inc();
          (d == sim::Direction::cw ? sends_cw_ : sends_ccw_)->inc();
          node_sends_[v]->inc();
          phase_pulses_[index(phase_from_string(net_ptr->automaton(v).phase()))]
              ->inc();
          ++observed_sends_;
          last_send_event_ = events_;
        });
    auto previous_deliver = opts.on_deliver;
    opts.on_deliver = [this, previous_deliver](sim::NodeId v, sim::Port p,
                                               sim::Direction d) {
      deliveries_->inc();
      node_deliveries_[v]->inc();
      if (previous_deliver) previous_deliver(v, p, d);
    };
    auto previous_event = opts.on_event;
    opts.on_event = [this, previous_event](sim::Network<P>& running) {
      ++events_;
      // Quiescence-detection latency: the first step at which the network
      // is observed quiescent, minus the step of the last send — how long
      // the run keeps churning after the final pulse leaves a node.
      if (quiescent_at_ == kUnset && running.quiescent()) {
        quiescent_at_ = events_;
      }
      if (previous_event) previous_event(running);
    };
  }

  /// Publishes the end-of-run gauges from the network's ground-truth
  /// counters. Call after net.run(); no-op when disabled. Pass the
  /// Theorem 1 pulse bound (n(2*IDmax+1), 0 = unknown) to also latch the
  /// bound and the remaining margin as gauges — the same numbers
  /// colex-inspect recomputes from a recorded trace.
  void finish(const sim::Network<P>& net, std::uint64_t pulse_bound = 0) {
    if (!options_.enabled) return;
    const auto counters = net.counters();
    // The fabric can carry pulses no node sent (spurious injections) and
    // lose pulses nodes did send (drops). Attribute the positive residual
    // to the adversary phase so the per-phase series still sum to the
    // fabric's ground-truth total on injection-heavy runs.
    if (counters.sent > observed_sends_) {
      phase_pulses_[index(Phase::adversary)]->inc(counters.sent -
                                                  observed_sends_);
    }
    registry_.gauge("net.in_transit_at_end")
        .set(static_cast<double>(counters.sent - counters.consumed));
    registry_.counter("net.faults.spurious").inc(counters.injected);
    registry_.counter("net.faults.dropped").inc(counters.dropped);
    registry_.counter("net.faults.duplicated").inc(counters.duplicated);
    registry_.counter("net.faults.crashes").inc(counters.crashes);
    registry_.counter("net.faults.recoveries").inc(counters.recoveries);
    registry_.gauge("net.events").set(static_cast<double>(events_));
    if (pulse_bound != 0) {
      registry_.gauge("net.pulse_bound").set(static_cast<double>(pulse_bound));
      registry_.gauge("net.pulse_margin")
          .set(static_cast<double>(pulse_bound) -
               static_cast<double>(counters.sent));
    }
    if (quiescent_at_ != kUnset) {
      registry_.gauge("net.quiescence_latency_events")
          .set(static_cast<double>(quiescent_at_ - last_send_event_));
    }
  }

 private:
  static constexpr std::uint64_t kUnset = static_cast<std::uint64_t>(-1);

  Registry& registry_;
  ObsOptions options_;
  Counter* sends_ = nullptr;
  Counter* sends_cw_ = nullptr;
  Counter* sends_ccw_ = nullptr;
  Counter* deliveries_ = nullptr;
  Counter* phase_pulses_[kPhaseCount] = {};
  std::vector<Counter*> node_sends_;
  std::vector<Counter*> node_deliveries_;
  std::uint64_t observed_sends_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t last_send_event_ = 0;
  std::uint64_t quiescent_at_ = kUnset;
};

using PulseNetworkInstrumentation = NetworkInstrumentation<sim::Pulse>;

/// Publishes an exploration's stats + telemetry under `prefix` (e.g.
/// "explore.snapshot"): schedules/sec, visit/clone/replay counts, frontier
/// queue depth.
inline void publish_explore(Registry& registry, const std::string& prefix,
                            const sim::ExploreStats& stats,
                            const sim::ExploreTelemetry& telemetry) {
  registry.counter(prefix + ".leaves").inc(stats.leaves);
  registry.counter(prefix + ".truncated").inc(stats.truncated);
  registry.gauge(prefix + ".max_depth")
      .track_max(static_cast<double>(stats.max_depth));
  registry.counter(prefix + ".visits").inc(telemetry.visits);
  registry.counter(prefix + ".clones").inc(telemetry.clones);
  registry.counter(prefix + ".replays").inc(telemetry.replays);
  registry.counter(prefix + ".replay_events").inc(telemetry.replay_events);
  registry.gauge(prefix + ".seconds").set(telemetry.seconds);
  registry.gauge(prefix + ".schedules_per_second")
      .set(telemetry.schedules_per_second(stats));
  if (telemetry.frontier_subtrees != 0) {
    registry.gauge(prefix + ".frontier_subtrees")
        .set(static_cast<double>(telemetry.frontier_subtrees));
  }
}

/// Publishes per-worker pool utilization under `prefix` (e.g.
/// "explore.workers"): task counts and busy time per worker, plus the
/// utilization spread (min/max busy seconds) that tells a skewed pool from
/// a balanced one.
inline void publish_worker_stats(Registry& registry, const std::string& prefix,
                                 const std::vector<sim::WorkerStats>& stats) {
  if (stats.empty()) return;
  double busy_min = stats[0].busy_seconds;
  double busy_max = stats[0].busy_seconds;
  for (std::size_t w = 0; w < stats.size(); ++w) {
    const std::string id = std::to_string(w);
    registry.counter(prefix + "." + id + ".tasks").inc(stats[w].tasks);
    registry.gauge(prefix + "." + id + ".busy_seconds")
        .set(stats[w].busy_seconds);
    busy_min = std::min(busy_min, stats[w].busy_seconds);
    busy_max = std::max(busy_max, stats[w].busy_seconds);
  }
  registry.gauge(prefix + ".count").set(static_cast<double>(stats.size()));
  registry.gauge(prefix + ".busy_seconds.min").set(busy_min);
  registry.gauge(prefix + ".busy_seconds.max").set(busy_max);
}

}  // namespace colex::obs
