// Fault injection for the discrete-event simulator.
//
// The paper's fully defective model (§2) erases all message *content* but
// still assumes channels never lose, duplicate, or invent pulses — and pulse
// counts are exactly what Algorithms 1-4 compute with. This layer makes that
// assumption an experimental variable: a declarative, seeded FaultPlan
// drives an injector that interposes on channel delivery and node lifecycle,
// so every theorem's boundary ("what happens one fault outside the model?")
// becomes a reproducible run.
//
// Fault classes
// -------------
//  * drop       — a payload in flight is deleted (channel loss)
//  * duplicate  — the head payload of a channel is doubled (link retransmit)
//  * spurious   — a payload nobody sent is inserted (noise burst that looks
//                 like a pulse; the one fault the §1.1 replication
//                 transformation is designed to absorb)
//  * crash      — a node crash-stops: queued payloads are lost, future
//                 deliveries to it are swallowed
//  * recover    — a crashed node reboots into a *fresh* automaton built by
//                 the injector's node factory: start() runs again, all local
//                 state is gone
//  * corrupt    — adversarially overwritten initial state (pre-seeded
//                 channels and/or node counters), the self-stabilization
//                 question for the stabilizing Algorithms 1 and 3
//
// Faults come in two forms: per-channel probabilities evaluated after every
// event step with the plan's own seeded RNG, and scripted one-shots pinned
// to an event index. Either way, a run is exactly reproducible from
// (FaultPlan, seed, scheduler): the injector draws randomness in a fixed
// order and never consumes a draw for an inactive fault class, so a plan
// with no faults configured is guaranteed a no-op (trace-identical to a
// plain Network run).
//
// Every applied fault is recorded as a FaultRecord, published to an optional
// observer (wired into the trace.hpp event stream by attach_trace), and
// tallied. BasicFaultyNetwork bundles network + injector + classification:
// its run() returns a FaultRunReport whose outcome field classifies the run
// as recovered-correct / stalled / diverged / safety-violated, using
// caller-supplied predicates (the co/invariants.hpp checkers slot in here —
// the sim layer itself stays algorithm-agnostic).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace colex::sim {

enum class FaultKind { drop, duplicate, spurious, crash, recover, corrupt };

const char* to_string(FaultKind kind);

/// Maps a FaultKind to its trace-stream event kind.
TraceEvent::Kind trace_kind(FaultKind kind);

/// Per-channel fault probabilities, evaluated once per event step. drop and
/// duplicate act on the channel head and are only drawn while the channel
/// has payloads in flight; spurious insertion is drawn unconditionally.
struct ChannelFaultProfile {
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double spurious_prob = 0.0;

  bool active() const {
    return drop_prob > 0.0 || duplicate_prob > 0.0 || spurious_prob > 0.0;
  }
};

/// A one-shot fault pinned to a point in the event stream. `at_event` is
/// the number of completed events (starts + deliveries) after which the
/// fault fires; 0 fires before the first event. Channel faults that find
/// their channel empty are silent no-ops (sweep harnesses rely on this),
/// as are crash/recover requests in the wrong lifecycle state.
struct ScriptedFault {
  FaultKind kind = FaultKind::drop;
  std::uint64_t at_event = 0;
  std::size_t channel = 0;  ///< drop / duplicate / spurious
  NodeId node = 0;          ///< crash / recover
};

/// Declarative description of everything the fault adversary may do.
/// Deliberately plain data: a plan plus a seed plus a scheduler pins down
/// the whole faulty execution.
struct FaultPlan {
  std::uint64_t seed = 1;
  /// Baseline profile applied to every channel.
  ChannelFaultProfile all_channels;
  /// Per-channel overrides (channel id, profile); replace the baseline.
  std::vector<std::pair<std::size_t, ChannelFaultProfile>> channel_overrides;
  /// Scripted one-shots, fired in at_event order (ties: script order).
  std::vector<ScriptedFault> script;
  /// Corrupted initial channel state: (channel, count) spurious payloads
  /// pre-seeded before the run starts.
  std::vector<std::pair<std::size_t, std::size_t>> preseed_channels;

  /// Structural validation, independent of any network. A plan is valid iff
  /// the script is sorted by at_event (fire_scripted requires it), every
  /// probability lies in [0, 1], no scripted entry names the un-scriptable
  /// FaultKind::corrupt, and every scripted recover targets a node with a
  /// prior scripted crash — a recover that cannot possibly match a crash is
  /// a plan construction bug, not an adversary choice (wrong-*lifecycle*
  /// requests at runtime remain documented no-ops). Returns an empty string
  /// when valid, else a one-line diagnostic. FaultInjector refuses invalid
  /// plans with util::ContractViolation; the soak churn engine and the fuzz
  /// generators assert validity at construction time.
  std::string validate() const;

  /// True iff the plan can provably never act: the injector then guarantees
  /// a run bit-identical to one without it.
  bool trivial() const {
    if (all_channels.active() || !script.empty() ||
        !preseed_channels.empty()) {
      return false;
    }
    for (const auto& [channel, profile] : channel_overrides) {
      (void)channel;
      if (profile.active()) return false;
    }
    return true;
  }
};

/// One applied fault, in application order.
struct FaultRecord {
  static constexpr std::size_t kNoChannel = static_cast<std::size_t>(-1);

  FaultKind kind = FaultKind::drop;
  std::uint64_t at_event = 0;     ///< events completed when it fired
  std::size_t channel = kNoChannel;  ///< kNoChannel for node/state faults
  NodeId node = 0;  ///< channel source node, or the faulted node
  Port port = Port::p0;
  Direction dir = Direction::cw;
};

struct FaultTallies {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t spurious = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t corruptions = 0;

  std::uint64_t total() const {
    return dropped + duplicated + spurious + crashes + recoveries +
           corruptions;
  }
};

/// How a faulty run ended, judged against caller-supplied correctness
/// predicates (see classify_outcome).
enum class FaultOutcome {
  recovered_correct,  ///< settled with the correct election output
  stalled,            ///< settled, but in a wrong or incomplete state
  diverged,           ///< never settled (event budget exhausted: livelock)
  safety_violated,    ///< an invariant broke or the output is unsafe
};

const char* to_string(FaultOutcome outcome);

/// Classifies a finished run. `safety_diag` is the first invariant
/// diagnostic observed during or after the run (empty = safety held);
/// `output_correct` says whether the final stable output is the intended
/// one. If `diagnosis` is non-null a one-line human-readable explanation is
/// stored there.
FaultOutcome classify_outcome(const RunReport& report,
                              const std::string& safety_diag,
                              bool output_correct,
                              std::string* diagnosis = nullptr);

/// Interposes a FaultPlan on a network run, TraceRecorder-style:
///
///   FaultInjector<P> injector(plan, factory);
///   injector.attach(net, opts);       // chains any hooks already set
///   net.run(scheduler, opts);
///   injector.tallies();               // what was actually applied
template <typename P>
class FaultInjector {
 public:
  /// Builds the fresh automaton a node reboots into on recovery. Required
  /// only when the plan scripts FaultKind::recover.
  using NodeFactory = std::function<std::unique_ptr<Automaton<P>>(NodeId)>;
  /// Arbitrary state corruption applied once before the run (e.g. loading
  /// adversarial counters into an automaton); counted as one corruption.
  using StateCorruptor = std::function<void(Network<P>&)>;

  explicit FaultInjector(FaultPlan plan, NodeFactory recover_factory = {},
                         StateCorruptor corrupt_state = {})
      : plan_(std::move(plan)),
        recover_factory_(std::move(recover_factory)),
        corrupt_state_(std::move(corrupt_state)),
        rng_(plan_.seed) {
    const std::string diag = plan_.validate();
    if (!diag.empty()) {
      throw util::ContractViolation("FaultPlan rejected: " + diag);
    }
    for (const auto& fault : plan_.script) {
      if (fault.kind == FaultKind::recover) {
        COLEX_EXPECTS(recover_factory_ != nullptr);
      }
    }
  }

  /// Observer for applied faults; attach_trace wires this into a recorder.
  void set_fault_observer(std::function<void(const FaultRecord&)> observer) {
    observer_ = std::move(observer);
  }

  /// Records every applied fault as a first-class event in `trace`
  /// (chaining a previously set observer).
  void attach_trace(BasicTraceRecorder<P>& trace) {
    auto previous = observer_;
    observer_ = [&trace, previous](const FaultRecord& record) {
      trace.record_fault(trace_kind(record.kind), record.node, record.port,
                         record.dir);
      if (previous) previous(record);
    };
  }

  /// Wires the injector into `net` and `opts` and applies the plan's
  /// initial-state corruption (preseeded channels, state corruptor). Call
  /// once, right before net.run().
  void attach(Network<P>& net, BasicRunOptions<P>& opts) {
    COLEX_EXPECTS(!attached_);
    attached_ = true;
    // Resolve per-channel profiles once.
    profiles_.assign(net.channel_count(), plan_.all_channels);
    any_probabilistic_ = plan_.all_channels.active();
    for (const auto& [channel, profile] : plan_.channel_overrides) {
      COLEX_EXPECTS(channel < net.channel_count());
      profiles_[channel] = profile;
      any_probabilistic_ = any_probabilistic_ || profile.active();
    }

    if (corrupt_state_) {
      corrupt_state_(net);
      ++tallies_.corruptions;
      publish(FaultRecord{FaultKind::corrupt, 0, FaultRecord::kNoChannel, 0,
                          Port::p0, Direction::cw});
    }
    for (const auto& [channel, count] : plan_.preseed_channels) {
      for (std::size_t i = 0; i < count; ++i) {
        apply_channel_fault(net, FaultKind::spurious, channel);
      }
    }
    fire_scripted(net);  // at_event == 0 entries

    auto previous = opts.on_event;
    opts.on_event = [this, previous](Network<P>& n) {
      // User hooks (per-event invariant checks, tracing) observe the state
      // the algorithms produced, *then* the adversary tampers with it.
      if (previous) previous(n);
      ++events_;
      fire_scripted(n);
      if (any_probabilistic_) apply_probabilistic(n);
    };
  }

  const FaultTallies& tallies() const { return tallies_; }
  const std::vector<FaultRecord>& records() const { return records_; }
  std::uint64_t events_observed() const { return events_; }

 private:
  void publish(FaultRecord record) {
    records_.push_back(record);
    if (observer_) observer_(records_.back());
  }

  /// Applies one channel fault if possible; returns whether it acted.
  bool apply_channel_fault(Network<P>& net, FaultKind kind,
                           std::size_t channel) {
    COLEX_EXPECTS(channel < net.channel_count());
    switch (kind) {
      case FaultKind::drop:
        if (net.channel_pending(channel) == 0) return false;
        net.drop_fault(channel);
        ++tallies_.dropped;
        break;
      case FaultKind::duplicate:
        if (net.channel_pending(channel) == 0) return false;
        net.duplicate_fault(channel);
        ++tallies_.duplicated;
        break;
      case FaultKind::spurious:
        net.inject_fault(channel);
        ++tallies_.spurious;
        break;
      default:
        COLEX_ASSERT(false);
    }
    const auto [node, port] = net.channel_source(channel);
    publish(FaultRecord{kind, events_, channel, node, port,
                        net.channel_direction(channel)});
    return true;
  }

  bool apply_node_fault(Network<P>& net, FaultKind kind, NodeId node) {
    COLEX_EXPECTS(node < net.size());
    if (kind == FaultKind::crash) {
      if (net.node_crashed(node) || !net.started(node)) return false;
      net.crash_node(node);
      ++tallies_.crashes;
    } else {
      COLEX_ASSERT(kind == FaultKind::recover);
      if (!net.node_crashed(node)) return false;
      net.recover_node(node, recover_factory_(node));
      ++tallies_.recoveries;
    }
    publish(FaultRecord{kind, events_, FaultRecord::kNoChannel, node,
                        Port::p0, Direction::cw});
    return true;
  }

  void fire_scripted(Network<P>& net) {
    // The script is scanned in order; entries for earlier events have
    // already fired (script_cursor_ advances monotonically), so the plan
    // must list faults in at_event order.
    while (script_cursor_ < plan_.script.size() &&
           plan_.script[script_cursor_].at_event <= events_) {
      const ScriptedFault& fault = plan_.script[script_cursor_];
      COLEX_EXPECTS(fault.at_event == events_);  // sorted plan
      ++script_cursor_;
      if (fault.kind == FaultKind::crash || fault.kind == FaultKind::recover) {
        apply_node_fault(net, fault.kind, fault.node);
      } else {
        COLEX_EXPECTS(fault.kind != FaultKind::corrupt);
        apply_channel_fault(net, fault.kind, fault.channel);
      }
    }
  }

  void apply_probabilistic(Network<P>& net) {
    // Fixed draw order (channel id, then drop/duplicate/spurious) so a run
    // is reproducible from (plan, seed, scheduler). Draws are skipped — not
    // burned — for inactive classes, keeping sparse plans cheap.
    for (std::size_t c = 0; c < profiles_.size(); ++c) {
      const ChannelFaultProfile& profile = profiles_[c];
      if (!profile.active()) continue;
      if (profile.drop_prob > 0.0 && net.channel_pending(c) > 0 &&
          rng_.bernoulli(profile.drop_prob)) {
        apply_channel_fault(net, FaultKind::drop, c);
      }
      if (profile.duplicate_prob > 0.0 && net.channel_pending(c) > 0 &&
          rng_.bernoulli(profile.duplicate_prob)) {
        apply_channel_fault(net, FaultKind::duplicate, c);
      }
      if (profile.spurious_prob > 0.0 &&
          rng_.bernoulli(profile.spurious_prob)) {
        apply_channel_fault(net, FaultKind::spurious, c);
      }
    }
  }

  FaultPlan plan_;
  NodeFactory recover_factory_;
  StateCorruptor corrupt_state_;
  util::Xoshiro256StarStar rng_;
  std::vector<ChannelFaultProfile> profiles_;
  bool any_probabilistic_ = false;
  bool attached_ = false;
  std::uint64_t events_ = 0;
  std::size_t script_cursor_ = 0;
  FaultTallies tallies_;
  std::vector<FaultRecord> records_;
  std::function<void(const FaultRecord&)> observer_;
};

/// A network bundled with a fault injector and outcome classification: the
/// one-stop entry point for fault experiments. Single-shot: build, run
/// once, inspect. With a trivial() plan, run() is trace-identical to
/// running the wrapped network directly.
template <typename P>
class BasicFaultyNetwork {
 public:
  using SafetyCheck = std::function<std::string(const Network<P>&)>;
  using OutputCheck = std::function<bool(const Network<P>&)>;

  BasicFaultyNetwork(Network<P> net, FaultPlan plan,
                     typename FaultInjector<P>::NodeFactory factory = {},
                     typename FaultInjector<P>::StateCorruptor corrupt = {})
      : net_(std::move(net)),
        injector_(std::move(plan), std::move(factory), std::move(corrupt)) {}

  Network<P>& network() { return net_; }
  const Network<P>& network() const { return net_; }
  FaultInjector<P>& injector() { return injector_; }

  struct FaultRunReport {
    RunReport report;
    FaultTallies tallies;
    FaultOutcome outcome = FaultOutcome::recovered_correct;
    std::string diagnosis;
  };

  /// Runs to quiescence under the plan. `safety` is evaluated after every
  /// event on the pre-tampering state and once on the final state (first
  /// non-empty diagnostic wins); `output_correct` judges the final state.
  /// Without predicates, safety is vacuously true and correctness means
  /// quiescence.
  FaultRunReport run(Scheduler& scheduler, BasicRunOptions<P> opts = {},
                     const SafetyCheck& safety = {},
                     const OutputCheck& output_correct = {}) {
    std::string first_violation;
    if (safety) {
      auto previous = opts.on_event;
      opts.on_event = [&first_violation, &safety, previous](Network<P>& n) {
        if (previous) previous(n);
        if (first_violation.empty()) first_violation = safety(n);
      };
    }
    injector_.attach(net_, opts);
    FaultRunReport out;
    out.report = net_.run(scheduler, opts);
    if (safety && first_violation.empty()) first_violation = safety(net_);
    out.tallies = injector_.tallies();
    const bool correct =
        output_correct ? output_correct(net_) : out.report.quiescent;
    out.outcome = classify_outcome(out.report, first_violation, correct,
                                   &out.diagnosis);
    return out;
  }

 private:
  Network<P> net_;
  FaultInjector<P> injector_;
};

using FaultyNetwork = BasicFaultyNetwork<Pulse>;
using PulseFaultInjector = FaultInjector<Pulse>;

}  // namespace colex::sim
