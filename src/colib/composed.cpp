#include "colib/composed.hpp"

#include "util/contracts.hpp"

namespace colex::colib {

ComposedNode::ComposedNode(std::uint64_t id, std::unique_ptr<BusApp> app)
    : election_(id), pending_app_(std::move(app)) {
  COLEX_EXPECTS(pending_app_ != nullptr);
}

ComposedNode::ComposedNode(const ComposedNode& other)
    : election_(other.election_),
      pending_app_(other.pending_app_ ? other.pending_app_->clone()
                                      : nullptr),
      bus_(other.bus_ ? other.bus_->clone_bus() : nullptr) {}

std::unique_ptr<sim::PulseAutomaton> ComposedNode::clone() const {
  return std::unique_ptr<ComposedNode>(new ComposedNode(*this));
}

void ComposedNode::start(sim::PulseContext& ctx) { election_.start(ctx); }

void ComposedNode::react(sim::PulseContext& ctx) {
  if (bus_ == nullptr) {
    election_.react(ctx);
    if (!election_.terminated()) return;
    // The switch (paper §1.1): instead of halting, the node begins the
    // second protocol. Quiescent termination guarantees its queues are
    // empty and nothing addressed to the election is still in flight.
    // Only checkable where reactions are serialized: on the threaded host
    // a first *bus* pulse can already sit in the queue, delivered
    // concurrently while this react was consuming the final election pulse
    // (equivalent to a serialized schedule delivering it just after).
    COLEX_ASSERT(!ctx.serialized_reactions() ||
                 (ctx.queued(sim::Port::p0) == 0 &&
                  ctx.queued(sim::Port::p1) == 0));
    bus_ = std::make_unique<BusNode>(std::move(pending_app_),
                                     election_.role() == co::Role::leader);
    bus_->begin(ctx);
    return;
  }
  bus_->react(ctx);
}

ComposedResult run_composed_with_network(
    const std::vector<std::uint64_t>& ids, const AppFactory& factory,
    sim::Scheduler& scheduler, const sim::RunOptions& opts,
    sim::PulseNetwork& net_out) {
  COLEX_EXPECTS(!ids.empty());
  net_out = sim::PulseNetwork::ring(ids.size());
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    net_out.set_automaton(v,
                          std::make_unique<ComposedNode>(ids[v], factory(v)));
  }

  ComposedResult result;
  result.report = net_out.run(scheduler, opts);
  result.quiescent = result.report.quiescent;
  result.all_terminated = result.report.all_terminated;
  result.total_pulses = result.report.sent;

  bool ring_size_consistent = true;
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    const auto& node = net_out.automaton_as<ComposedNode>(v);
    const auto& k = node.election().counters();
    result.election_pulses += k.sigma_cw + k.sigma_ccw;
    if (node.election().role() == co::Role::leader && !result.leader) {
      result.leader = v;
    }
    if (node.bus() != nullptr) {
      result.bus_pulses += node.bus()->pulses_sent();
      if (result.ring_size_learned == 0) {
        result.ring_size_learned = node.bus()->ring_size();
      } else if (result.ring_size_learned != node.bus()->ring_size()) {
        ring_size_consistent = false;
      }
    }
  }
  if (!ring_size_consistent) result.ring_size_learned = 0;
  COLEX_ENSURES(result.election_pulses + result.bus_pulses ==
                result.total_pulses);
  return result;
}

ComposedResult run_composed(const std::vector<std::uint64_t>& ids,
                            const AppFactory& factory,
                            sim::Scheduler& scheduler,
                            const sim::RunOptions& opts) {
  sim::PulseNetwork net;
  return run_composed_with_network(ids, factory, scheduler, opts, net);
}

}  // namespace colex::colib
