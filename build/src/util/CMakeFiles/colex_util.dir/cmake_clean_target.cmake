file(REMOVE_RECURSE
  "libcolex_util.a"
)
