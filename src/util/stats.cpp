#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace colex::util {

double percentile_sorted(const std::vector<double>& sorted, double q) {
  COLEX_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted.empty()) return 0.0;
  const auto n = sorted.size();
  auto rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  // Non-finite samples (NaN, ±inf) are dropped before aggregation: one NaN
  // would otherwise poison every derived statistic and break the sort
  // (NaN violates strict weak ordering).
  samples.erase(std::remove_if(samples.begin(), samples.end(),
                               [](double v) { return !std::isfinite(v); }),
                samples.end());
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  double var = 0.0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = s.count > 1
                 ? std::sqrt(var / static_cast<double>(s.count - 1))
                 : 0.0;
  s.p50 = percentile_sorted(samples, 0.50);
  s.p95 = percentile_sorted(samples, 0.95);
  s.p99 = percentile_sorted(samples, 0.99);
  return s;
}

}  // namespace colex::util
