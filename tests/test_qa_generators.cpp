#include <gtest/gtest.h>

#include <set>

#include "qa/generators.hpp"
#include "qa/properties.hpp"

namespace colex::qa {
namespace {

GeneratorOptions defaults() { return {}; }

TEST(Generators, SameSeedSameCase) {
  const GeneratorOptions opts = defaults();
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const FuzzCase a = generate_case(seed, opts);
    const FuzzCase b = generate_case(seed, opts);
    EXPECT_TRUE(a == b) << "seed " << seed << " is not deterministic";
  }
}

TEST(Generators, SameSeedSameFaultPlan) {
  GeneratorOptions opts;
  opts.fault_fraction = 1.0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const FuzzCase a = generate_case(seed, opts);
    const FuzzCase b = generate_case(seed, opts);
    EXPECT_TRUE(a == b) << "faulty seed " << seed << " is not deterministic";
    EXPECT_FALSE(a.clean());
  }
}

TEST(Generators, DifferentSeedsDiverge) {
  const GeneratorOptions opts = defaults();
  bool any_diff = false;
  const FuzzCase first = generate_case(1, opts);
  for (std::uint64_t seed = 2; seed <= 20 && !any_diff; ++seed) {
    if (!(generate_case(seed, opts) == first)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generators, CasesAreWellFormed) {
  GeneratorOptions opts;
  opts.fault_fraction = 0.3;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    const FuzzCase c = generate_case(seed, opts);
    ASSERT_GE(c.n(), opts.min_n) << "seed " << seed;
    ASSERT_LE(c.n(), opts.max_n) << "seed " << seed;
    for (const std::uint64_t id : c.ids) {
      ASSERT_GE(id, 1u) << "seed " << seed;
      ASSERT_LE(id, opts.max_id) << "seed " << seed;
    }
    // Port flips only appear for the non-oriented algorithms, and then the
    // vector spans the whole ring.
    if (!c.port_flips.empty()) {
      EXPECT_TRUE(c.alg == Algorithm::alg3_doubled ||
                  c.alg == Algorithm::alg3_improved ||
                  c.alg == Algorithm::alg4);
      EXPECT_EQ(c.port_flips.size(), c.n());
    }
    // Scripted faults must satisfy the injector's sortedness contract.
    for (std::size_t i = 1; i < c.faults.script.size(); ++i) {
      EXPECT_LE(c.faults.script[i - 1].at_event, c.faults.script[i].at_event);
    }
    EXPECT_GT(c.pulse_bound(), 0u);
  }
}

TEST(Generators, BoundaryCoverage) {
  // The boundary bias must actually surface the degenerate rings the paper's
  // proofs quantify over: the n=1 self-loop, the n=2 multi-edge ring, and
  // duplicate IDs (legal for the stabilizing Algorithm 1).
  const GeneratorOptions opts = defaults();
  bool saw_n1 = false, saw_n2 = false, saw_dup_ids = false;
  bool saw_all_equal = false, saw_id_at_cap = false, saw_flip = false;
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    const FuzzCase c = generate_case(seed, opts);
    if (c.n() == 1) saw_n1 = true;
    if (c.n() == 2) saw_n2 = true;
    if (c.id_max() == opts.max_id) saw_id_at_cap = true;
    const std::set<std::uint64_t> uniq(c.ids.begin(), c.ids.end());
    if (c.alg == Algorithm::alg1 && uniq.size() < c.n()) {
      saw_dup_ids = true;
      if (uniq.size() == 1 && c.n() > 1) saw_all_equal = true;
    }
    for (const bool f : c.port_flips) {
      if (f) saw_flip = true;
    }
  }
  EXPECT_TRUE(saw_n1);
  EXPECT_TRUE(saw_n2);
  EXPECT_TRUE(saw_dup_ids);
  EXPECT_TRUE(saw_all_equal);
  EXPECT_TRUE(saw_id_at_cap);
  EXPECT_TRUE(saw_flip);
}

TEST(Generators, AlgorithmFilterIsRespected) {
  GeneratorOptions opts;
  opts.algorithms = {Algorithm::alg1, Algorithm::alg3_improved};
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const FuzzCase c = generate_case(seed, opts);
    EXPECT_TRUE(c.alg == Algorithm::alg1 ||
                c.alg == Algorithm::alg3_improved);
  }
}

TEST(Generators, AllAlgorithmsCovered) {
  const GeneratorOptions opts = defaults();
  std::set<Algorithm> seen;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    seen.insert(generate_case(seed, opts).alg);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Generators, UniqueIdsOutsideAlg1) {
  const GeneratorOptions opts = defaults();
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    const FuzzCase c = generate_case(seed, opts);
    if (c.alg == Algorithm::alg1 || c.alg == Algorithm::alg4) continue;
    const std::set<std::uint64_t> uniq(c.ids.begin(), c.ids.end());
    EXPECT_EQ(uniq.size(), c.n()) << "seed " << seed << " duplicated IDs for "
                                  << to_string(c.alg);
  }
}

TEST(Generators, EffectiveIdMaxDoublesForDoubledScheme) {
  FuzzCase c;
  c.alg = Algorithm::alg3_doubled;
  c.ids = {3, 5};
  // Virtual IDs run to 2*IDmax-1, so pulse_bound() == n(4*IDmax-1)
  // (Proposition 15) expressed through the shared n(2*eff+1) formula.
  EXPECT_EQ(c.effective_id_max(), 9u);
  EXPECT_EQ(c.pulse_bound(), 2 * (4 * 5 - 1));
  c.alg = Algorithm::alg3_improved;
  EXPECT_EQ(c.effective_id_max(), 5u);
  EXPECT_EQ(c.pulse_bound(), 2 * (2 * 5 + 1));
}

TEST(Generators, SchedulerIsDeterministicPerCase) {
  const GeneratorOptions opts = defaults();
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const FuzzCase c = generate_case(seed, opts);
    auto a = make_case_scheduler(c);
    auto b = make_case_scheduler(c);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->name(), b->name());
    // Same scheduler => same executed tape. execute_case records the
    // choices, so two runs of the same case must agree choice-for-choice.
    const RunOutcome ra = execute_case(c);
    const RunOutcome rb = execute_case(c);
    EXPECT_EQ(ra.tape, rb.tape) << "seed " << seed;
    EXPECT_EQ(ra.counters.sent, rb.counters.sent) << "seed " << seed;
  }
}

TEST(Generators, RoundTripsThroughStringNames) {
  for (const Algorithm a :
       {Algorithm::alg1, Algorithm::alg2, Algorithm::alg3_doubled,
        Algorithm::alg3_improved, Algorithm::alg4}) {
    Algorithm back{};
    ASSERT_TRUE(algorithm_from_string(to_string(a), back));
    EXPECT_EQ(back, a);
  }
  Algorithm out{};
  EXPECT_FALSE(algorithm_from_string("alg9", out));
}

}  // namespace
}  // namespace colex::qa
