# Empty compiler generated dependencies file for colex_runtime.
# This may be replaced when dependencies are built.
