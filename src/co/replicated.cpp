#include "co/replicated.hpp"

#include "util/contracts.hpp"

namespace colex::co {

ReplicatedAdapter::ReplicatedAdapter(
    std::unique_ptr<sim::PulseAutomaton> inner, unsigned r)
    : inner_(std::move(inner)), r_(r) {
  COLEX_EXPECTS(inner_ != nullptr);
}

std::unique_ptr<sim::PulseAutomaton> ReplicatedAdapter::clone() const {
  auto copy = std::make_unique<ReplicatedAdapter>(inner_->clone(), r_);
  for (const int i : {0, 1}) {
    copy->physical_received_[i] = physical_received_[i];
    copy->logical_consumed_[i] = logical_consumed_[i];
  }
  return copy;
}

void ReplicatedAdapter::absorb_physical(sim::PulseContext& ctx) {
  for (const sim::Port p : {sim::Port::p0, sim::Port::p1}) {
    while (ctx.recv_pulse(p)) ++physical_received_[sim::index(p)];
  }
}

void ReplicatedAdapter::start(sim::PulseContext& ctx) {
  GroupContext grouped(ctx, *this);
  inner_->start(grouped);
}

void ReplicatedAdapter::react(sim::PulseContext& ctx) {
  absorb_physical(ctx);
  if (inner_->terminated()) return;  // trailing strays are discarded
  GroupContext grouped(ctx, *this);
  inner_->react(grouped);
}

}  // namespace colex::co
