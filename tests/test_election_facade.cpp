// Tests for the public façade (co/election.hpp): result predicates, the
// exact-formula helpers, ground-truth port geometry, and precondition
// enforcement.
#include <gtest/gtest.h>

#include "co/election.hpp"
#include "helpers.hpp"

namespace colex::co {
namespace {

TEST(Facade, FormulaHelpers) {
  EXPECT_EQ(theorem1_pulses(1, 1), 3u);
  EXPECT_EQ(theorem1_pulses(8, 20), 8u * 41u);
  EXPECT_EQ(prop15_pulses(1, 1), 3u);
  EXPECT_EQ(prop15_pulses(8, 20), 8u * 79u);
  // The improved scheme always wins for IDmax > 1.
  for (std::uint64_t idm = 2; idm < 40; ++idm) {
    EXPECT_LT(theorem1_pulses(5, idm), prop15_pulses(5, idm));
  }
  EXPECT_EQ(theorem1_pulses(1, 1), prop15_pulses(1, 1));
}

TEST(Facade, ValidElectionPredicate) {
  ElectionResult result;
  result.nodes.resize(3);
  result.nodes[0].role = Role::non_leader;
  result.nodes[1].role = Role::leader;
  result.nodes[2].role = Role::non_leader;
  result.leader = 1;
  result.leader_count = 1;
  EXPECT_TRUE(result.valid_election());

  result.leader_count = 2;
  EXPECT_FALSE(result.valid_election());

  result.leader_count = 1;
  result.nodes[2].role = Role::undecided;
  EXPECT_FALSE(result.valid_election());
}

TEST(Facade, PhysicalCwPortGeometry) {
  EXPECT_EQ(physical_cw_port({}, 0), sim::Port::p1);
  EXPECT_EQ(physical_cw_port({}, 5), sim::Port::p1);
  EXPECT_EQ(physical_cw_port({false, true}, 0), sim::Port::p1);
  EXPECT_EQ(physical_cw_port({false, true}, 1), sim::Port::p0);
}

TEST(Facade, RejectsEmptyIdVector) {
  sim::GlobalFifoScheduler sched;
  EXPECT_THROW(elect_oriented_terminating({}, sched),
               util::ContractViolation);
  EXPECT_THROW(elect_oriented_stabilizing({}, sched),
               util::ContractViolation);
  Alg3NonOriented::Options options;
  EXPECT_THROW(elect_and_orient({}, {}, options, sched),
               util::ContractViolation);
}

TEST(Facade, RejectsMismatchedFlipVector) {
  sim::GlobalFifoScheduler sched;
  Alg3NonOriented::Options options;
  EXPECT_THROW(elect_and_orient({1, 2, 3}, {true}, options, sched),
               util::ContractViolation);
}

TEST(Facade, NodeOutcomeSnapshotsMatchAlgorithmCounters) {
  const std::vector<std::uint64_t> ids{5, 9, 2};
  sim::GlobalFifoScheduler sched;
  const auto result = elect_oriented_terminating(ids, sched);
  ASSERT_EQ(result.nodes.size(), 3u);
  for (std::size_t v = 0; v < 3; ++v) {
    EXPECT_EQ(result.nodes[v].id, ids[v]);
    EXPECT_EQ(result.nodes[v].sigma_cw, result.nodes[v].rho_cw);
    EXPECT_EQ(result.nodes[v].sigma_ccw, result.nodes[v].rho_ccw);
  }
  EXPECT_EQ(result.pulses,
            3 * 9 + 3 * 10u);  // n*IDmax CW + n*(IDmax+1) CCW
}

TEST(Facade, StabilizingAndTerminatingAgree) {
  // Same ring, both algorithms: identical leader, and alg2's CW-phase
  // counters coincide with alg1's totals.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto ids = test::sparse_ids(4 + seed % 4, 60, seed);
    sim::RandomScheduler s1(seed), s2(seed + 100);
    const auto stab = elect_oriented_stabilizing(ids, s1);
    const auto term = elect_oriented_terminating(ids, s2);
    ASSERT_TRUE(stab.valid_election());
    ASSERT_TRUE(term.valid_election());
    EXPECT_EQ(*stab.leader, *term.leader);
    for (std::size_t v = 0; v < ids.size(); ++v) {
      EXPECT_EQ(stab.nodes[v].rho_cw, term.nodes[v].rho_cw);
    }
  }
}

TEST(Facade, OrientationAgreesBetweenAlg3AndGroundTruth) {
  // On an ORIENTED ring (no flips), every node's declared CW port must be
  // the physical Port1.
  const std::vector<std::uint64_t> ids{5, 9, 2, 7};
  Alg3NonOriented::Options options;
  sim::GlobalFifoScheduler sched;
  const auto result = elect_and_orient(ids, {}, options, sched);
  ASSERT_TRUE(result.orientation_consistent);
  for (std::size_t v = 0; v < ids.size(); ++v) {
    EXPECT_EQ(result.cw_ports[v], sim::Port::p1);
  }
}

TEST(Facade, ReportExposedForDiagnostics) {
  const std::vector<std::uint64_t> ids{3, 6};
  sim::GlobalFifoScheduler sched;
  const auto result = elect_oriented_terminating(ids, sched);
  EXPECT_EQ(result.report.sent, result.pulses);
  EXPECT_GT(result.report.deliveries, 0u);
  EXPECT_FALSE(result.report.hit_event_limit);
  EXPECT_FALSE(result.report.stalled);
}

TEST(Facade, EventLimitSurfacesInResult) {
  const std::vector<std::uint64_t> ids{1000, 2, 1};
  sim::GlobalFifoScheduler sched;
  sim::RunOptions opts;
  opts.max_events = 50;  // far below the ~6000 needed
  const auto result = elect_oriented_terminating(ids, sched, opts);
  EXPECT_TRUE(result.report.hit_event_limit);
  EXPECT_FALSE(result.quiescent);
  EXPECT_FALSE(result.all_terminated);
}

}  // namespace
}  // namespace colex::co
