#include "qa/properties.hpp"

#include <algorithm>
#include <utility>

#include "co/alg1.hpp"
#include "co/alg2.hpp"
#include "co/alg3.hpp"
#include "co/election.hpp"
#include "co/invariants.hpp"
#include "co/oriented.hpp"
#include "coro/run.hpp"
#include "net/run.hpp"
#include "runtime/blocking_algs.hpp"
#include "sim/explore.hpp"
#include "sim/faults.hpp"
#include "util/contracts.hpp"

namespace colex::qa {

namespace {

co::IdScheme scheme_of(Algorithm alg) {
  return alg == Algorithm::alg3_doubled ? co::IdScheme::doubled
                                        : co::IdScheme::improved;
}

bool oriented(Algorithm alg) {
  return alg == Algorithm::alg1 || alg == Algorithm::alg2;
}

co::Role role_of(const FuzzCase& c, const sim::PulseNetwork& net,
                 sim::NodeId v) {
  switch (c.alg) {
    case Algorithm::alg1:
      return net.automaton_as<co::Alg1Stabilizing>(v).role();
    case Algorithm::alg2:
      return net.automaton_as<co::Alg2Terminating>(v).role();
    default:
      return net.automaton_as<co::Alg3NonOriented>(v).role();
  }
}

/// First per-event invariant violation across started, live nodes.
std::string invariants_now(const FuzzCase& c, const sim::PulseNetwork& net) {
  const std::uint64_t id_max = c.id_max();
  for (sim::NodeId v = 0; v < net.size(); ++v) {
    if (!net.started(v) || net.node_crashed(v)) continue;
    std::string err;
    switch (c.alg) {
      case Algorithm::alg1:
        err = co::check_alg1_invariants(
            net.automaton_as<co::Alg1Stabilizing>(v), id_max);
        break;
      case Algorithm::alg2:
        err = co::check_alg2_invariants(
            net.automaton_as<co::Alg2Terminating>(v), id_max);
        break;
      default:
        err = co::check_alg3_invariants(
            net.automaton_as<co::Alg3NonOriented>(v), scheme_of(c.alg));
        break;
    }
    if (!err.empty()) return "node " + std::to_string(v) + ": " + err;
  }
  return {};
}

sim::PulseFaultInjector::StateCorruptor make_corruptor(const FuzzCase& c) {
  if (!c.corrupt.active) return {};
  return [c](sim::PulseNetwork& net) {
    const CorruptSpec& spec = c.corrupt;
    COLEX_EXPECTS(spec.node < net.size());
    if (oriented(c.alg)) {
      const co::PulseCounters k{spec.counters[0], spec.counters[1],
                                spec.counters[2], spec.counters[3]};
      if (c.alg == Algorithm::alg1) {
        net.automaton_as<co::Alg1Stabilizing>(spec.node).load_corrupted_state(
            k, co::Role::undecided);
      } else {
        net.automaton_as<co::Alg2Terminating>(spec.node).load_corrupted_state(
            k, co::Role::undecided);
      }
    } else {
      const std::uint64_t rho[2] = {spec.counters[0], spec.counters[2]};
      const std::uint64_t sigma[2] = {spec.counters[1], spec.counters[3]};
      net.automaton_as<co::Alg3NonOriented>(spec.node).load_corrupted_state(
          rho, sigma);
    }
  };
}

/// Digest of one terminal state, for cross-engine leaf comparison.
std::uint64_t leaf_digest(const FuzzCase& c, const sim::PulseNetwork& net) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h = (h ^ v) * 1099511628211ULL;
  };
  mix(net.counters().sent);
  for (sim::NodeId v = 0; v < net.size(); ++v) {
    mix(static_cast<std::uint64_t>(role_of(c, net, v)));
  }
  return h;
}

}  // namespace

std::unique_ptr<sim::PulseAutomaton> make_automaton(const FuzzCase& c,
                                                    sim::NodeId v) {
  COLEX_EXPECTS(v < c.n());
  switch (c.alg) {
    case Algorithm::alg1:
      return std::make_unique<co::Alg1Stabilizing>(c.ids[v]);
    case Algorithm::alg2:
      return std::make_unique<co::Alg2Terminating>(c.ids[v]);
    default:
      return std::make_unique<co::Alg3NonOriented>(
          c.ids[v], co::Alg3NonOriented::Options{scheme_of(c.alg), {}});
  }
}

sim::PulseNetwork build_case_network(const FuzzCase& c) {
  COLEX_EXPECTS(c.n() >= 1);
  auto net = sim::PulseNetwork::ring(c.n(), c.port_flips);
  for (sim::NodeId v = 0; v < c.n(); ++v) {
    net.set_automaton(v, make_automaton(c, v));
  }
  return net;
}

std::uint64_t exact_pulses(const FuzzCase& c) {
  // Corollary 13: Algorithm 1 quiesces with every node having sent exactly
  // IDmax pulses; the terminating and non-oriented algorithms meet their
  // n(2*IDmax+1)-shaped bounds with equality (Theorems 1-2, Prop. 15).
  return c.alg == Algorithm::alg1 ? c.n() * c.id_max() : c.pulse_bound();
}

RunOutcome execute_case(const FuzzCase& c) {
  auto net = build_case_network(c);
  sim::RunOptions opts;
  opts.max_events = c.max_events;

  RunOutcome out;
  const bool clean = c.clean();
  if (clean) {
    // Per-event oracle. Installed before any injector would attach, so a
    // (hypothetical) fault plan tampers only after the check observed the
    // algorithm-produced state.
    opts.on_event = [&out, &c](sim::PulseNetwork& n) {
      if (out.invariant_diag.empty()) out.invariant_diag = invariants_now(c, n);
    };
  }

  sim::TraceRecorder trace;
  trace.attach(net, opts);

  std::optional<sim::PulseFaultInjector> injector;
  if (!clean) {
    injector.emplace(
        c.faults,
        [&c](sim::NodeId v) { return make_automaton(c, v); },
        make_corruptor(c));
    injector->attach_trace(trace);
    injector->attach(net, opts);
  }

  std::unique_ptr<sim::Scheduler> driver;
  if (c.tape.empty()) {
    driver = make_case_scheduler(c);
  } else {
    driver = std::make_unique<sim::ReplayScheduler>(c.tape);
  }
  sim::RecordingScheduler recording(*driver);
  out.report = net.run(recording, opts);

  out.counters = net.counters();
  out.tape = recording.tape();
  out.trace = trace.events();
  out.audit_diag = trace.audit(sim::ring_wiring(c.n(), c.port_flips));
  out.roles.reserve(c.n());
  for (sim::NodeId v = 0; v < c.n(); ++v) {
    const co::Role r = role_of(c, net, v);
    out.roles.push_back(r);
    if (r == co::Role::leader) {
      ++out.leader_count;
      if (!out.leader) out.leader = v;
    }
    if (!oriented(c.alg)) {
      out.cw_ports.push_back(
          net.automaton_as<co::Alg3NonOriented>(v).cw_port());
    }
  }
  return out;
}

std::vector<std::string> property_names(const FuzzCase& c,
                                        const PropertyOptions& opts) {
  std::vector<std::string> names;
  if (c.clean()) {
    names.emplace_back("invariants");
    names.emplace_back("quiescence");
    if (c.alg == Algorithm::alg2) names.emplace_back("termination");
    names.emplace_back("valid-election");
    if (!oriented(c.alg)) names.emplace_back("orientation");
    names.emplace_back("pulse-bound");
  }
  names.emplace_back("trace-audit");
  if (opts.planted_bound_bug && c.clean()) {
    names.emplace_back("planted-bound-off-by-one");
  }
  if (opts.check_replay) names.emplace_back("replay-agreement");
  return names;
}

CaseResult check_case(const FuzzCase& c, const PropertyOptions& opts) {
  CaseResult r;
  r.outcome = execute_case(c);
  auto fail = [&r](const char* prop, std::string diag) {
    if (r.failed_property.empty()) {
      r.failed_property = prop;
      r.diagnostic = std::move(diag);
    }
  };

  const bool clean = c.clean();
  const bool settled = r.outcome.report.quiescent;
  if (clean) {
    if (!r.outcome.invariant_diag.empty()) {
      fail("invariants", r.outcome.invariant_diag);
    }
    if (!settled) {
      fail("quiescence",
           r.outcome.report.hit_event_limit
               ? "event limit hit with pulses still in transit"
               : "stalled with unconsumed queued pulses");
    }
    if (c.alg == Algorithm::alg2 && settled &&
        !r.outcome.report.all_terminated) {
      fail("termination", "quiescent but not all nodes terminated");
    }
    if (settled) {
      // Election outcome. Lemma 16 semantics for Algorithm 1 (every holder
      // of the maximal ID is Leader); single-leader for the others, gated
      // on the unique-max applicability condition (Lemma 18 for the
      // Algorithm 4 pipeline, guaranteed-unique IDs otherwise).
      const std::uint64_t id_max = c.id_max();
      const std::size_t max_holders = static_cast<std::size_t>(
          std::count(c.ids.begin(), c.ids.end(), id_max));
      if (c.alg == Algorithm::alg1 || max_holders == 1) {
        std::string diag;
        for (sim::NodeId v = 0; v < c.n(); ++v) {
          const co::Role expected =
              c.ids[v] == id_max ? co::Role::leader : co::Role::non_leader;
          if (r.outcome.roles[v] != expected) {
            diag = "node " + std::to_string(v) + " (id " +
                   std::to_string(c.ids[v]) + ") is " +
                   co::to_string(r.outcome.roles[v]) + ", expected " +
                   co::to_string(expected);
            break;
          }
        }
        if (!diag.empty()) fail("valid-election", diag);
      }
      if (!oriented(c.alg) && max_holders == 1) {
        // Proposition 15: all declared CW ports point the same way around
        // the physical cycle. Which way is the algorithm's to choose, so
        // only consistency is checked. A node's port toward node v+1 is
        // Port1 unless its labels are flipped; declaring that port as CW
        // means the node's notion of clockwise follows the builder's.
        std::string diag;
        bool first_follows = false;
        for (sim::NodeId v = 0; v < c.n(); ++v) {
          const bool flipped = !c.port_flips.empty() && c.port_flips[v];
          const sim::Port toward_next = flipped ? sim::Port::p0 : sim::Port::p1;
          const bool follows = r.outcome.cw_ports[v] == toward_next;
          if (v == 0) {
            first_follows = follows;
          } else if (follows != first_follows) {
            diag = "node " + std::to_string(v) +
                   " orients against node 0's declared direction";
            break;
          }
        }
        if (!diag.empty()) fail("orientation", diag);
      }
      // Exact pulse-count claims. Algorithm 1's n*IDmax holds for arbitrary
      // multisets (Lemma 16); the n(2*IDmax+1) family needs the unique-max
      // applicability condition — Algorithm 4's clamped sampling can mint
      // duplicate maxima, and a duplicated max genuinely overshoots (two
      // competing flows both climb to IDmax before colliding).
      if (c.alg == Algorithm::alg1 || max_holders == 1) {
        const std::uint64_t expected = exact_pulses(c);
        if (r.outcome.counters.sent != expected) {
          fail("pulse-bound",
               "pulses=" + std::to_string(r.outcome.counters.sent) +
                   " expected exactly " + std::to_string(expected) +
                   " (bound " + std::to_string(c.pulse_bound()) + ")");
        }
      }
    }
  }

  if (!r.outcome.audit_diag.empty()) {
    fail("trace-audit", r.outcome.audit_diag);
  }

  if (opts.planted_bound_bug && clean && settled && c.pulse_bound() > 0 &&
      r.outcome.counters.sent > c.pulse_bound() - 1) {
    fail("planted-bound-off-by-one",
         "pulses=" + std::to_string(r.outcome.counters.sent) +
             " exceeds bound-1=" + std::to_string(c.pulse_bound() - 1));
  }

  if (opts.check_replay) {
    FuzzCase pinned = c;
    pinned.tape = r.outcome.tape;
    const RunOutcome again = execute_case(pinned);
    auto counters_eq = [](const sim::PulseNetwork::Counters& a,
                          const sim::PulseNetwork::Counters& b) {
      return a.sent == b.sent && a.delivered == b.delivered &&
             a.consumed == b.consumed && a.injected == b.injected &&
             a.dropped == b.dropped && a.duplicated == b.duplicated &&
             a.crashes == b.crashes && a.recoveries == b.recoveries &&
             a.crash_lost == b.crash_lost;
    };
    if (!counters_eq(again.counters, r.outcome.counters) ||
        again.roles != r.outcome.roles ||
        again.report.quiescent != r.outcome.report.quiescent) {
      fail("replay-agreement",
           "tape replay diverged: pulses " +
               std::to_string(again.counters.sent) + " vs " +
               std::to_string(r.outcome.counters.sent));
    }
  }
  return r;
}

std::string check_engine_agreement(const FuzzCase& c, std::uint64_t budget) {
  COLEX_EXPECTS(c.clean());
  auto build = [&c]() { return build_case_network(c); };
  sim::ExploreStats stats[2];
  std::vector<std::uint64_t> digests[2];
  const sim::ExploreEngine engines[2] = {sim::ExploreEngine::snapshot,
                                         sim::ExploreEngine::replay};
  for (int i = 0; i < 2; ++i) {
    sim::ExploreOptions options;
    options.budget = budget;
    options.engine = engines[i];
    auto& sink = digests[i];
    stats[i] = sim::explore_all_schedules(
        build,
        [&sink, &c](sim::PulseNetwork& net) {
          sink.push_back(leaf_digest(c, net));
        },
        options);
  }
  if (!(stats[0] == stats[1])) {
    return "engine stats diverge: snapshot leaves=" +
           std::to_string(stats[0].leaves) +
           " truncated=" + std::to_string(stats[0].truncated) +
           ", replay leaves=" + std::to_string(stats[1].leaves) +
           " truncated=" + std::to_string(stats[1].truncated);
  }
  if (digests[0] != digests[1]) {
    return "engines visit identical stats but different leaf outcomes";
  }
  return {};
}

std::string check_runtime_agreement(const FuzzCase& c,
                                    std::uint64_t timeout_ms) {
  COLEX_EXPECTS(c.clean());
  rt::ThreadAlg alg = rt::ThreadAlg::alg3_improved;
  switch (c.alg) {
    case Algorithm::alg1: alg = rt::ThreadAlg::alg1; break;
    case Algorithm::alg2: alg = rt::ThreadAlg::alg2; break;
    case Algorithm::alg3_doubled: alg = rt::ThreadAlg::alg3_doubled; break;
    case Algorithm::alg3_improved:
    case Algorithm::alg4: alg = rt::ThreadAlg::alg3_improved; break;
  }
  const RunOutcome sim_run = execute_case(c);
  const rt::ThreadRunResult threaded =
      rt::run_on_threads(c.ids, c.port_flips, alg, timeout_ms);
  if (!threaded.completed) {
    return "thread runtime did not settle: " + threaded.stall_dump;
  }
  if (threaded.leader_count != sim_run.leader_count) {
    return "leader count: runtime " + std::to_string(threaded.leader_count) +
           " vs sim " + std::to_string(sim_run.leader_count);
  }
  if (threaded.leader != sim_run.leader) {
    return "leader identity differs between runtime and sim";
  }
  if (threaded.pulses != exact_pulses(c) ||
      sim_run.counters.sent != exact_pulses(c)) {
    return "pulse counts: runtime " + std::to_string(threaded.pulses) +
           ", sim " + std::to_string(sim_run.counters.sent) +
           ", paper predicts " + std::to_string(exact_pulses(c));
  }
  // Third substrate: the coroutine executor, with two workers so the
  // work-stealing and sleep/wake paths are actually exercised.
  const coro::CoroRunResult coroed =
      coro::run_on_coro(c.ids, c.port_flips, alg, {2, timeout_ms, nullptr});
  if (!coroed.completed) {
    return "coro runtime did not settle: " + coroed.stall_dump;
  }
  if (coroed.leader_count != sim_run.leader_count) {
    return "leader count: coro " + std::to_string(coroed.leader_count) +
           " vs sim " + std::to_string(sim_run.leader_count);
  }
  if (coroed.leader != sim_run.leader) {
    return "leader identity differs between coro runtime and sim";
  }
  if (coroed.pulses != exact_pulses(c)) {
    return "pulse count: coro runtime " + std::to_string(coroed.pulses) +
           ", paper predicts " + std::to_string(exact_pulses(c));
  }
  // Fourth substrate: real TCP sockets on loopback — small rings only (each
  // node costs a thread plus four descriptors, and the oracle runs inside
  // fuzz campaigns).
  if (c.n() <= 8) {
    net::SocketRunOptions sopts;
    sopts.timeout_ms = timeout_ms;
    const net::SocketRunResult socketed =
        net::run_on_sockets(c.ids, c.port_flips, alg, sopts);
    if (!socketed.completed) {
      return "socket runtime did not settle: " + socketed.stall_dump;
    }
    if (socketed.leader_count != sim_run.leader_count) {
      return "leader count: socket " + std::to_string(socketed.leader_count) +
             " vs sim " + std::to_string(sim_run.leader_count);
    }
    if (socketed.leader != sim_run.leader) {
      return "leader identity differs between socket runtime and sim";
    }
    if (socketed.pulses != exact_pulses(c)) {
      return "pulse count: socket runtime " +
             std::to_string(socketed.pulses) + ", paper predicts " +
             std::to_string(exact_pulses(c));
    }
    if (socketed.consumed != socketed.pulses) {
      return "socket runtime conservation: sent " +
             std::to_string(socketed.pulses) + " != consumed " +
             std::to_string(socketed.consumed);
    }
  }
  return {};
}

}  // namespace colex::qa
