file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_nonunique.dir/bench_e9_nonunique.cpp.o"
  "CMakeFiles/bench_e9_nonunique.dir/bench_e9_nonunique.cpp.o.d"
  "bench_e9_nonunique"
  "bench_e9_nonunique.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_nonunique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
