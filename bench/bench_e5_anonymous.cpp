// E5 — Theorem 3 / Lemma 18: anonymous rings. Algorithm 4's sampled IDs
// have a unique maximum with probability >= 1 - O(n^-c); the maximum is
// n^Theta(c) .. n^O(c^2); and the end-to-end election (sampling + Algorithm
// 3 improved) succeeds exactly when the unique-max event holds.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "co/election.hpp"
#include "sim/scheduler.hpp"
#include "util/ids.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace colex;
  bench::banner(
      "E5  Theorem 3: anonymous rings with private randomness "
      "(bench_e5_anonymous)",
      "unique max sampled ID w.p. >= 1 - O(n^-c); IDmax = n^O(c^2) w.h.p.; "
      "election succeeds iff the unique-max event holds; complexity n^O(1)");
  bench::WallTimer total;
  bench::JsonReport report("E5", "Theorem 3 anonymous rings with randomness");

  // Part 1: sampling statistics (no network needed).
  util::Table stats({"n", "c", "trials", "unique-max rate", "median IDmax",
                     "p95 IDmax", "median log_n(IDmax)"});
  constexpr int kTrials = 400;
  for (const std::size_t n : {8u, 32u, 128u, 512u}) {
    for (const double c : {0.5, 1.0, 2.0, 3.0}) {
      int unique = 0;
      std::vector<double> maxima;
      for (int t = 0; t < kTrials; ++t) {
        const auto ids = co::sample_ids(
            n, c, 1000 * static_cast<std::uint64_t>(n) +
                      static_cast<std::uint64_t>(t) +
                      static_cast<std::uint64_t>(c * 7919));
        if (co::unique_max(ids)) ++unique;
        std::uint64_t mx = 0;
        for (const auto& s : ids) mx = std::max(mx, s.id);
        maxima.push_back(static_cast<double>(mx));
      }
      const auto summary = util::summarize(maxima);
      stats.add_row(
          {util::Table::num(static_cast<std::uint64_t>(n)),
           util::Table::fixed(c, 1), util::Table::num(std::uint64_t{kTrials}),
           util::Table::fixed(static_cast<double>(unique) / kTrials, 3),
           util::Table::num(static_cast<std::uint64_t>(summary.p50)),
           util::Table::num(static_cast<std::uint64_t>(summary.p95)),
           util::Table::fixed(std::log(summary.p50) /
                                  std::log(static_cast<double>(n)),
                              2)});
    }
  }
  stats.print(std::cout);

  // Part 2: end-to-end elections on scrambled anonymous rings. Success must
  // coincide exactly with the unique-max event (Lemma 18 -> Lemma 16).
  std::cout << "\nEnd-to-end anonymous elections (n in 2..9, c = 1.5):\n";
  int trials = 0, unique = 0, elected = 0, coincide = 0, skipped = 0;
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    util::Xoshiro256StarStar rng(seed);
    const std::size_t n = 2 + rng.below(8);
    std::uint64_t sampled_max = 0;
    for (const auto& s : co::sample_ids(n, 1.5, seed * 7)) {
      sampled_max = std::max(sampled_max, s.id);
    }
    if (sampled_max > 20'000) {  // skip disproportionately expensive runs
      ++skipped;
      continue;
    }
    const auto flips = util::random_flips(n, seed * 3);
    sim::RandomScheduler sched(seed);
    const auto result =
        co::anonymous_election(n, flips, 1.5, seed * 7, sched);
    ++trials;
    if (result.sampled_unique_max) ++unique;
    const bool ok = result.election.valid_election() &&
                    result.election.orientation_consistent;
    if (ok) ++elected;
    if (ok == result.sampled_unique_max) ++coincide;
  }
  std::cout << "  trials run       : " << trials << " (skipped " << skipped
            << " oversized draws)\n";
  std::cout << "  unique-max       : " << unique << "\n";
  std::cout << "  elected+oriented : " << elected << "\n";
  std::cout << "  success == unique-max in " << coincide << "/" << trials
            << " trials\n";

  const bool all_ok = coincide == trials && trials > 50;
  report.root().set("all_ok", all_ok);
  report.finish(total.seconds());

  bench::verdict(all_ok,
                 "anonymous election succeeds exactly on the Lemma 18 "
                 "unique-max event; sampled maxima scale polynomially in n");
  return all_ok ? 0 : 1;
}
