# Empty dependencies file for anonymous_ring.
# This may be replaced when dependencies are built.
