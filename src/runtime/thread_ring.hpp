// A real-thread runtime for the fully defective ring: one OS thread per
// node, mutex+condition-variable pulse ports, genuine (hardware/OS-induced)
// asynchrony. The algorithms run here are the *blocking-style* literal
// transcriptions of the paper's pseudocode (blocking_algs.hpp), in contrast
// to the event-driven automata used on the discrete simulator — running the
// same pseudocode through two independent execution models and comparing
// outcomes exactly is one of this repository's main validation tools.
//
// Quiescence detection (for the stabilizing algorithms, which never
// terminate on their own) is performed by the *harness*, not the nodes:
// a monitor thread observes "all threads blocked on empty ports" plus
// "globally sent == consumed" — the standard counter-based distributed
// termination-detection argument, executed with shared-memory atomics. This
// mirrors what the omniscient simulator does and is test instrumentation,
// never part of the algorithms.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/types.hpp"
#include "util/contracts.hpp"

namespace colex::rt {

class ThreadRing;

/// The port interface a blocking algorithm sees: non-blocking receive,
/// send, and a blocking wait for the next pulse (which the harness can
/// interrupt once global quiescence is certain).
class NodeIo {
 public:
  /// Consume one pulse from the incoming queue of `p` if available.
  bool recv(sim::Port p);

  /// Send one pulse out of port `p`.
  void send(sim::Port p);

  /// Block until a pulse is available on either port. Returns false when
  /// the harness has signalled stop (global quiescence / timeout); the
  /// algorithm should then finalize its current state.
  bool wait_any();

  /// Pulses delivered to port `p` and not yet consumed.
  std::size_t pending(sim::Port p) const;

 private:
  friend class ThreadRing;
  NodeIo(ThreadRing& ring, sim::NodeId self) : ring_(ring), self_(self) {}
  ThreadRing& ring_;
  sim::NodeId self_;
};

/// Shared pulse fabric for an n-node ring (oriented or port-scrambled).
class ThreadRing {
 public:
  explicit ThreadRing(std::size_t n, std::vector<bool> port_flips = {});

  std::size_t size() const { return nodes_.size(); }
  NodeIo io(sim::NodeId v) { return NodeIo(*this, v); }

  std::uint64_t total_sent() const { return sent_.load(); }
  std::uint64_t total_consumed() const { return consumed_.load(); }
  bool stopped() const { return stop_.load(); }

  /// Worker bookkeeping: a worker thread calls this when its algorithm
  /// function returns.
  void worker_finished() { finished_.fetch_add(1); }

  /// Runs the monitor loop in the calling thread until either all `n`
  /// workers finished naturally, or quiescence is detected / the timeout
  /// expires (then `stop` is broadcast so blocked workers return). Returns
  /// true if stopping was due to quiescence or natural termination, false
  /// on timeout.
  bool monitor(std::uint64_t timeout_ms);

 private:
  friend class NodeIo;

  struct Node {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::uint64_t pending[2] = {0, 0};  // pulses queued per port
    // Wiring: sending out of port p delivers to peer[p] at peer_port[p].
    sim::NodeId peer[2] = {0, 0};
    sim::Port peer_port[2] = {sim::Port::p0, sim::Port::p0};
  };

  bool recv(sim::NodeId v, sim::Port p);
  void send(sim::NodeId v, sim::Port p);
  bool wait_any(sim::NodeId v);
  std::size_t pending(sim::NodeId v, sim::Port p) const;
  void broadcast_stop();

  std::vector<Node> nodes_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> consumed_{0};
  std::atomic<std::size_t> idle_{0};
  std::atomic<std::size_t> finished_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace colex::rt
