// Fixture: O002 — payload content flowing into loop bounds.
//
// `frame_len` returns a tainted local, so the while-loop case checks the
// local-variable fixpoint *and* the tainted-returning fixpoint at once.
namespace fixture_o002 {

void step();

int frame_len(const unsigned char* buf) {
  const int n = get_u32(buf, 0);
  return n;
}

void loop_classic(const unsigned char* buf) {
  const int n = get_u32(buf, 0);
  for (int i = 0; i < n; ++i) {  // colex-lint: expect(O002)
    step();
  }
}

void loop_while(const unsigned char* buf) {
  int left = frame_len(buf);
  while (left > 0) {  // colex-lint: expect(O002)
    --left;
  }
}

void loop_waived(const unsigned char* buf) {
  const int n = frame_len(buf);
  for (int i = 0; i < n; ++i) {  // colex-lint: allow(O002) expect-suppressed(O002) fixture: stands in for a justified replay of a decoded length
    step();
  }
}

}  // namespace fixture_o002
