# Empty dependencies file for test_sim_schedulers.
# This may be replaced when dependencies are built.
