// colex-inspect: offline trace forensics for colex-trace-v1 JSONL files
// (written by obs::write_jsonl — see bench_e1_theorem1 and the examples).
//
//   colex-inspect summary <trace.jsonl>          per-node traffic breakdown
//   colex-inspect check   <trace.jsonl>          audit + paper pulse bounds
//   colex-inspect chrome  <trace.jsonl> <out>    convert to Chrome trace JSON
//   colex-inspect diff    <a.jsonl> <b.jsonl>    structural trace comparison
//   colex-inspect metrics <trace.jsonl>          Prometheus text exposition
//
// Exit status: 0 clean, 1 check failed / traces differ, 2 usage or load
// error. `check` prints one "theorem1-bound: ..." line that ci.sh greps.
// `metrics` renders the embedded registry snapshot through the same
// encoder the live /metrics endpoint uses, so a recorded snapshot and a
// live scrape of identical registries are byte-comparable.
#include <array>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/serve.hpp"
#include "sim/trace.hpp"
#include "util/contracts.hpp"

namespace {

using colex::obs::LoadedTrace;
using colex::sim::TraceEvent;

constexpr std::array<TraceEvent::Kind, 8> kAllKinds{
    TraceEvent::Kind::send,          TraceEvent::Kind::deliver,
    TraceEvent::Kind::fault_drop,    TraceEvent::Kind::fault_duplicate,
    TraceEvent::Kind::fault_spurious, TraceEvent::Kind::fault_crash,
    TraceEvent::Kind::fault_recover, TraceEvent::Kind::fault_corrupt,
};

std::size_t kind_slot(TraceEvent::Kind kind) {
  for (std::size_t i = 0; i < kAllKinds.size(); ++i) {
    if (kAllKinds[i] == kind) return i;
  }
  return 0;  // unreachable: kAllKinds is exhaustive
}

std::size_t node_span(const LoadedTrace& trace) {
  std::size_t n = trace.meta.n;
  for (const auto& e : trace.events) n = std::max(n, e.node + 1);
  return n;
}

/// Per-node event counts, one row per node, one column per kind.
std::vector<std::array<std::uint64_t, 8>> per_node_counts(
    const LoadedTrace& trace) {
  std::vector<std::array<std::uint64_t, 8>> counts(
      node_span(trace), std::array<std::uint64_t, 8>{});
  for (const auto& e : trace.events) {
    ++counts[e.node][kind_slot(e.kind)];
  }
  return counts;
}

std::uint64_t total(const LoadedTrace& trace, TraceEvent::Kind kind) {
  std::uint64_t n = 0;
  for (const auto& e : trace.events) {
    if (e.kind == kind) ++n;
  }
  return n;
}

void print_meta(const LoadedTrace& trace) {
  std::cout << "trace: algorithm="
            << (trace.meta.algorithm.empty() ? "?" : trace.meta.algorithm)
            << " n=" << trace.meta.n << " id_max=" << trace.meta.id_max
            << " port_flips=";
  if (trace.meta.port_flips.empty()) {
    std::cout << "none";
  } else {
    for (const bool f : trace.meta.port_flips) std::cout << (f ? '1' : '0');
  }
  std::cout << " events=" << trace.events.size() << "\n";
}

int cmd_summary(const LoadedTrace& trace) {
  print_meta(trace);
  const auto counts = per_node_counts(trace);
  for (std::size_t v = 0; v < counts.size(); ++v) {
    std::cout << "node " << v << ":";
    for (std::size_t k = 0; k < kAllKinds.size(); ++k) {
      if (counts[v][k] == 0) continue;
      std::cout << " " << colex::sim::to_string(kAllKinds[k]) << "="
                << counts[v][k];
    }
    std::cout << "\n";
  }
  const std::uint64_t sends = total(trace, TraceEvent::Kind::send);
  const std::uint64_t delivered = total(trace, TraceEvent::Kind::deliver);
  std::cout << "totals: sends=" << sends << " deliveries=" << delivered
            << " in-flight-at-end=" << (sends >= delivered ? sends - delivered : 0)
            << "\n";
  if (!trace.metrics_json.empty()) {
    std::cout << "metrics: " << trace.metrics_json << "\n";
  }
  return 0;
}

/// Replays the stream through the same channel-balance audit the simulator
/// tests use, then checks the paper's pulse bound from the meta line.
int cmd_check(const LoadedTrace& trace) {
  print_meta(trace);
  bool ok = true;

  if (trace.meta.n == 0) {
    std::cout << "audit: SKIPPED (ring shape unknown; meta has n=0)\n";
  } else {
    colex::sim::TraceRecorder recorder;
    for (const auto& e : trace.events) {
      recorder.record_fault(e.kind, e.node, e.port, e.dir);
    }
    const std::string report = recorder.audit(
        colex::sim::ring_wiring(trace.meta.n, trace.meta.port_flips));
    if (report.empty()) {
      std::cout << "audit: clean (per-channel conservation holds)\n";
    } else {
      std::cout << "audit: FAILED: " << report << "\n";
      ok = false;
    }
  }

  const std::uint64_t bound = trace.meta.pulse_bound();
  const std::uint64_t sends = total(trace, TraceEvent::Kind::send);
  if (bound == 0) {
    std::cout << "theorem1-bound: SKIPPED (meta lacks n or id_max)\n";
  } else if (sends <= bound) {
    std::cout << "theorem1-bound: OK (pulses=" << sends
              << " <= n(2*id_max+1)=" << bound
              << ", margin=" << (bound - sends) << ")\n";
  } else {
    std::cout << "theorem1-bound: VIOLATED (pulses=" << sends
              << " > n(2*id_max+1)=" << bound << ")\n";
    ok = false;
  }
  return ok ? 0 : 1;
}

int cmd_chrome(const LoadedTrace& trace, const std::string& out_path) {
  std::ofstream out(out_path);
  if (!out.good()) {
    std::cerr << "colex-inspect: cannot write " << out_path << "\n";
    return 2;
  }
  colex::obs::write_chrome_trace(out, trace.events, trace.meta);
  std::cout << "wrote " << out_path
            << " (open in chrome://tracing or ui.perfetto.dev)\n";
  return 0;
}

int cmd_diff(const LoadedTrace& a, const LoadedTrace& b) {
  bool same = true;
  if (a.meta.n != b.meta.n || a.meta.id_max != b.meta.id_max ||
      a.meta.algorithm != b.meta.algorithm ||
      a.meta.port_flips != b.meta.port_flips) {
    std::cout << "meta differs:\n  a: ";
    print_meta(a);
    std::cout << "  b: ";
    print_meta(b);
    same = false;
  }
  // Aggregate view first (order-insensitive): which kinds moved, per node.
  const auto ca = per_node_counts(a);
  const auto cb = per_node_counts(b);
  const std::size_t nodes = std::max(ca.size(), cb.size());
  for (std::size_t v = 0; v < nodes; ++v) {
    const std::array<std::uint64_t, 8> za{};
    const auto& ra = v < ca.size() ? ca[v] : za;
    const auto& rb = v < cb.size() ? cb[v] : za;
    for (std::size_t k = 0; k < kAllKinds.size(); ++k) {
      if (ra[k] != rb[k]) {
        std::cout << "node " << v << " " << colex::sim::to_string(kAllKinds[k])
                  << ": " << ra[k] << " vs " << rb[k] << "\n";
        same = false;
      }
    }
  }
  // Then the first point of divergence in stream order, which is what you
  // actually chase when two supposedly deterministic runs disagree.
  const std::size_t common = std::min(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (!(a.events[i] == b.events[i])) {
      std::cout << "first divergence at event " << i << ":\n  a: "
                << colex::sim::to_string(a.events[i]) << "\n  b: "
                << colex::sim::to_string(b.events[i]) << "\n";
      same = false;
      break;
    }
  }
  if (a.events.size() != b.events.size()) {
    std::cout << "length differs: " << a.events.size() << " vs "
              << b.events.size() << " events\n";
    same = false;
  }
  std::cout << (same ? "traces identical\n" : "traces differ\n");
  return same ? 0 : 1;
}

int cmd_metrics(const LoadedTrace& trace) {
  if (trace.metrics_json.empty()) {
    std::cerr << "colex-inspect: trace carries no metrics line\n";
    return 2;
  }
  try {
    const colex::obs::Registry reg =
        colex::obs::registry_from_json(trace.metrics_json);
    colex::obs::write_prometheus(std::cout, reg);
  } catch (const std::exception& e) {
    std::cerr << "colex-inspect: malformed metrics snapshot: " << e.what()
              << "\n";
    return 2;
  }
  return 0;
}

int usage() {
  std::cerr
      << "usage:\n"
         "  colex-inspect summary <trace.jsonl>\n"
         "  colex-inspect check   <trace.jsonl>\n"
         "  colex-inspect chrome  <trace.jsonl> <out.json>\n"
         "  colex-inspect diff    <a.jsonl> <b.jsonl>\n"
         "  colex-inspect metrics <trace.jsonl>\n";
  return 2;
}

LoadedTrace load_or_exit(const std::string& path) {
  try {
    return colex::obs::load_jsonl_file(path);
  } catch (const std::exception& e) {
    std::cerr << "colex-inspect: failed to load " << path << ": " << e.what()
              << "\n";
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd == "summary" && argc == 3) {
    return cmd_summary(load_or_exit(argv[2]));
  }
  if (cmd == "check" && argc == 3) {
    return cmd_check(load_or_exit(argv[2]));
  }
  if (cmd == "chrome" && argc == 4) {
    return cmd_chrome(load_or_exit(argv[2]), argv[3]);
  }
  if (cmd == "diff" && argc == 4) {
    return cmd_diff(load_or_exit(argv[2]), load_or_exit(argv[3]));
  }
  if (cmd == "metrics" && argc == 3) {
    return cmd_metrics(load_or_exit(argv[2]));
  }
  return usage();
}
