// Tests for Algorithm 2 (Theorem 1): quiescently terminating leader election
// on oriented rings with exactly n(2*IDmax + 1) pulses.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "co/alg2.hpp"
#include "co/election.hpp"
#include "helpers.hpp"
#include "sim/network.hpp"

namespace colex::co {
namespace {

std::uint64_t id_max(const std::vector<std::uint64_t>& ids) {
  return *std::max_element(ids.begin(), ids.end());
}

void expect_theorem1(const std::vector<std::uint64_t>& ids,
                     sim::Scheduler& sched, const sim::RunOptions& opts = {}) {
  const auto result = elect_oriented_terminating(ids, sched, opts);
  ASSERT_TRUE(result.quiescent);
  ASSERT_TRUE(result.all_terminated);
  ASSERT_TRUE(result.valid_election());
  const auto max_it = std::max_element(ids.begin(), ids.end());
  EXPECT_EQ(*result.leader, static_cast<sim::NodeId>(max_it - ids.begin()));
  EXPECT_EQ(result.pulses, theorem1_pulses(ids.size(), id_max(ids)));
  EXPECT_EQ(result.report.deliveries_to_terminated, 0u)
      << "quiescent termination violated: a pulse reached a terminated node";
}

TEST(Alg2, Theorem1OnSmallRing) {
  sim::GlobalFifoScheduler sched;
  expect_theorem1({2, 4, 1, 3}, sched);
}

TEST(Alg2, SingleNodeRing) {
  sim::GlobalFifoScheduler sched;
  expect_theorem1({1}, sched);
  expect_theorem1({5}, sched);
  expect_theorem1({23}, sched);
}

TEST(Alg2, TwoNodeRing) {
  sim::GlobalFifoScheduler sched;
  expect_theorem1({1, 2}, sched);
  expect_theorem1({9, 4}, sched);
}

TEST(Alg2, RejectsZeroId) {
  EXPECT_THROW(Alg2Terminating(0), util::ContractViolation);
}

class Alg2SchedulerSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(Alg2SchedulerSweep, Theorem1HoldsUnderEveryAdversary) {
  auto sched = test::make_scheduler(GetParam(), 4);
  ASSERT_NE(sched, nullptr);
  expect_theorem1({6, 11, 3, 9, 1, 7}, *sched);
}

TEST_P(Alg2SchedulerSweep, SparseIdsAndInterleavedStarts) {
  auto sched = test::make_scheduler(GetParam(), 4);
  ASSERT_NE(sched, nullptr);
  sim::RunOptions opts;
  opts.interleave_starts = true;
  opts.interleave_seed = 1234;
  expect_theorem1(test::sparse_ids(5, 60, 3), *sched, opts);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, Alg2SchedulerSweep,
    ::testing::ValuesIn(test::standard_scheduler_names(4)),
    [](const ::testing::TestParamInfo<std::string>& pinfo) {
      std::string name = pinfo.param;
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(Alg2, ExhaustiveSmallRingPermutations) {
  std::vector<std::uint64_t> ids{1, 2, 3, 4, 5};
  std::sort(ids.begin(), ids.end());
  sim::GlobalFifoScheduler fifo;
  sim::GlobalLifoScheduler lifo;
  do {
    expect_theorem1(ids, fifo);
    expect_theorem1(ids, lifo);
  } while (std::next_permutation(ids.begin(), ids.end()));
}

TEST(Alg2, ManyRandomConfigurations) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::RandomScheduler sched(seed);
    const auto ids = test::shuffled(test::sparse_ids(4 + seed % 5, 40, seed),
                                    seed * 31);
    expect_theorem1(ids, sched);
  }
}

TEST(Alg2, OnlyLeaderInitiatesTermination) {
  // The rho_cw = ID = rho_ccw event (lines 14-17) must fire at the max-ID
  // node and nowhere else; this is the paper's central uniqueness claim.
  const std::vector<std::uint64_t> ids{4, 9, 2, 6, 1};
  for (auto& named : sim::standard_schedulers(6)) {
    auto net = sim::PulseNetwork::ring(ids.size());
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      net.set_automaton(v, std::make_unique<Alg2Terminating>(ids[v]));
    }
    const auto report = net.run(*named.scheduler);
    ASSERT_TRUE(report.quiescent) << named.name;
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      const auto& alg = net.automaton_as<Alg2Terminating>(v);
      EXPECT_EQ(alg.initiated_termination(), v == 1)
          << named.name << " node " << v;
    }
  }
}

TEST(Alg2, LeaderTerminatesLast) {
  // §1.1: nodes terminate in order with the leader last, which is what
  // makes the algorithm composable with the scheme of [8].
  const std::vector<std::uint64_t> ids{4, 9, 2, 6, 1};
  for (auto& named : sim::standard_schedulers(6)) {
    auto net = sim::PulseNetwork::ring(ids.size());
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      net.set_automaton(v, std::make_unique<Alg2Terminating>(ids[v]));
    }
    std::vector<sim::NodeId> termination_order;
    std::vector<bool> down(ids.size(), false);
    sim::RunOptions opts;
    opts.on_event = [&](sim::PulseNetwork& n) {
      for (sim::NodeId v = 0; v < ids.size(); ++v) {
        if (!down[v] && n.automaton_as<Alg2Terminating>(v).terminated()) {
          down[v] = true;
          termination_order.push_back(v);
        }
      }
    };
    const auto report = net.run(*named.scheduler, opts);
    ASSERT_TRUE(report.all_terminated) << named.name;
    ASSERT_EQ(termination_order.size(), ids.size()) << named.name;
    EXPECT_EQ(termination_order.back(), 1u) << named.name;
  }
}

TEST(Alg2, CcwNeverOvertakesCwBeforeTermination) {
  // The CCW instance must lag the CW one: before the termination pulse, no
  // node may observe rho_ccw > rho_cw (otherwise it would terminate
  // prematurely). Assert at every event across adversaries.
  const std::vector<std::uint64_t> ids{6, 11, 3, 9, 1, 7};
  for (auto& named : sim::standard_schedulers(6)) {
    auto net = sim::PulseNetwork::ring(ids.size());
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      net.set_automaton(v, std::make_unique<Alg2Terminating>(ids[v]));
    }
    sim::RunOptions opts;
    opts.on_event = [&](sim::PulseNetwork& n) {
      for (sim::NodeId v = 0; v < ids.size(); ++v) {
        const auto& alg = n.automaton_as<Alg2Terminating>(v);
        const auto& k = alg.counters();
        if (!alg.terminated()) {
          // rho_ccw can exceed rho_cw only via the termination pulse, at
          // which point the node's next react terminates it; what must
          // never happen is an excess of 2 or more.
          ASSERT_LE(k.rho_ccw, k.rho_cw + 1) << named.name << " node " << v;
        }
      }
    };
    const auto report = net.run(*named.scheduler, opts);
    ASSERT_TRUE(report.all_terminated) << named.name;
  }
}

TEST(Alg2, CountersAtTerminationMatchCorollary13BothDirections) {
  const std::vector<std::uint64_t> ids{5, 9, 2, 7, 1};
  sim::RandomScheduler sched(7);
  const auto result = elect_oriented_terminating(ids, sched);
  ASSERT_TRUE(result.all_terminated);
  const std::uint64_t idm = id_max(ids);
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    const auto& n = result.nodes[v];
    // CW instance: everyone sent/received exactly IDmax.
    EXPECT_EQ(n.rho_cw, idm);
    EXPECT_EQ(n.sigma_cw, idm);
    // CCW instance: IDmax plus the termination pulse that passed everyone.
    EXPECT_EQ(n.rho_ccw, idm + 1);
    EXPECT_EQ(n.sigma_ccw, idm + 1);
  }
}

TEST(Alg2, LargeRingExactComplexity) {
  const auto ids = test::shuffled(test::dense_ids(64), 5);
  sim::RandomScheduler sched(11);
  const auto result = elect_oriented_terminating(ids, sched);
  ASSERT_TRUE(result.valid_election());
  EXPECT_EQ(result.pulses, theorem1_pulses(64, 64));
}

TEST(Alg2, HugeSingleIdDominatesComplexity) {
  // Theorem 4's point: complexity scales with IDmax, not n. A 3-ring with a
  // huge ID pays for it.
  const std::vector<std::uint64_t> ids{1000, 2, 1};
  sim::GlobalFifoScheduler sched;
  const auto result = elect_oriented_terminating(ids, sched);
  ASSERT_TRUE(result.valid_election());
  EXPECT_EQ(result.pulses, 3u * 2001u);
}

TEST(Alg2, RolesAreExactlyOneLeaderRestFollowers) {
  const auto ids = test::shuffled(test::dense_ids(12), 3);
  sim::RandomScheduler sched(3);
  const auto result = elect_oriented_terminating(ids, sched);
  std::size_t leaders = 0, followers = 0;
  for (const auto& n : result.nodes) {
    if (n.role == Role::leader) ++leaders;
    if (n.role == Role::non_leader) ++followers;
  }
  EXPECT_EQ(leaders, 1u);
  EXPECT_EQ(followers, 11u);
}


TEST(Alg2, EveryChannelEclipsedStillExact) {
  // Sweep the eclipsed edge over all 2n channels: a single maximally slow
  // link never changes the outcome or the count.
  const std::vector<std::uint64_t> ids{4, 9, 2, 6};
  for (std::size_t c = 0; c < 2 * ids.size(); ++c) {
    sim::EclipseScheduler sched(c);
    expect_theorem1(ids, sched);
  }
}

TEST(Alg2, BurstySchedulerSeedsSweep) {
  const std::vector<std::uint64_t> ids{6, 11, 3, 9, 1};
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::BurstyScheduler sched(seed);
    expect_theorem1(ids, sched);
  }
}

}  // namespace
}  // namespace colex::co
