#include "lint/taint.hpp"

#include <utility>

namespace colex::lint {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

bool path_contains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

/// The content-oblivious runtime dirs the O-rules police. src/net and
/// src/obs are the sanctioned decode modules (fabric framing / telemetry):
/// their whole purpose is turning wire bytes into fabric control decisions.
bool in_checked_dirs(const std::string& path) {
  return path_contains(path, "src/co/") || path_contains(path, "src/colib/") ||
         path_contains(path, "src/runtime/") ||
         path_contains(path, "src/coro/");
}

/// Wire decoders whose return value IS payload content by definition.
const std::set<std::string>& decoder_names() {
  static const std::set<std::string> kDecoders = {
      "get_u32",     "get_u64",       "recv_byte",  "decode_result",
      "read_payload", "frame_payload", "payload_of",
  };
  return kDecoders;
}

/// PulsePort-surface functions whose return value is *presence*, which the
/// model sanctions (blocking on / branching on pulse arrival is the whole
/// algorithm). Content reads on these are M001's job, and the recv-content
/// atom below catches them as taint sources too.
bool presence_semantics_name(const std::string& name) {
  return name == "recv" || name == "recv_pulse" || name == "wait_any";
}

/// M001-shaped content read anchored at token `i` (`recv`): recv(...)
/// followed by `.member` (not has_value), `->`, or dereferenced as
/// `*x.recv(...)`.
bool recv_content_read_at(const std::vector<Token>& toks, std::size_t i) {
  if (toks[i].kind != Tok::identifier || toks[i].text != "recv") return false;
  if (i + 1 >= toks.size() || toks[i + 1].text != "(") return false;
  const std::size_t close = match_forward_tok(toks, i + 1, '(', ')');
  if (close == kNone) return false;
  if (close + 1 < toks.size()) {
    const Token& after = toks[close + 1];
    if (after.kind == Tok::punct && after.text == "." &&
        close + 2 < toks.size() && toks[close + 2].text != "has_value") {
      return true;
    }
    if (after.kind == Tok::punct && after.text == "-" &&
        close + 2 < toks.size() && toks[close + 2].text == ">") {
      return true;
    }
  }
  if (i >= 3 && toks[i - 1].text == "." &&
      toks[i - 2].kind == Tok::identifier && toks[i - 3].text == "*") {
    return true;
  }
  return false;
}

struct Atom {
  bool found = false;
  std::string what;
};

/// First taint atom in [begin, end): a tainted local, a decoder call, a
/// call to a tainted-returning function, or a direct recv() content read.
Atom find_atom(const std::vector<Token>& toks, std::size_t begin,
               std::size_t end, const std::set<std::string>& tainted_vars,
               const TaintContext& ctx) {
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (toks[i].kind != Tok::identifier) continue;
    const std::string& id = toks[i].text;
    if (tainted_vars.count(id) != 0) {
      return {true, "tainted value '" + id + "'"};
    }
    if (i + 1 < toks.size() && toks[i + 1].text == "(") {
      if (decoder_names().count(id) != 0) {
        return {true, "payload decoder '" + id + "()'"};
      }
      if (ctx.tainted_returning.count(id) != 0 &&
          !presence_semantics_name(id)) {
        return {true, "content-derived call '" + id + "()'"};
      }
    }
    if (recv_content_read_at(toks, i)) {
      return {true, "recv() content read"};
    }
  }
  return {};
}

/// End of the statement starting at `begin`: the first ';' at the entry
/// nesting depth, capped at `end`.
std::size_t statement_end(const std::vector<Token>& toks, std::size_t begin,
                          std::size_t end) {
  int depth = 0;
  for (std::size_t j = begin; j < end && j < toks.size(); ++j) {
    if (toks[j].kind != Tok::punct) continue;
    const char p = toks[j].text[0];
    if (p == '(' || p == '[' || p == '{') ++depth;
    else if (p == ')' || p == ']' || p == '}') --depth;
    else if (p == ';' && depth <= 0) return j;
  }
  return end;
}

/// Is toks[i] the left-hand side of a plain assignment `x = expr`? Excludes
/// `==` (and, via the identifier-then-'=' shape, all compound and relational
/// operators, which lex as their own first character).
bool is_assignment_lhs(const std::vector<Token>& toks, std::size_t i,
                       std::size_t end) {
  if (toks[i].kind != Tok::identifier) return false;
  if (i + 1 >= end || toks[i + 1].text != "=") return false;
  if (i + 2 < end && toks[i + 2].text == "=") return false;  // ==
  if (i > 0 && toks[i - 1].kind == Tok::punct) {
    const char p = toks[i - 1].text[0];
    if (p == '=' || p == '!' || p == '<' || p == '>') return false;
  }
  return true;
}

/// Locals of `fn` that hold payload-derived values, to a fixpoint: `x =
/// expr` (including declarations with `=` initializers) taints x when expr
/// contains an atom.
std::set<std::string> function_tainted_vars(const std::vector<Token>& toks,
                                            const FunctionDef& fn,
                                            const TaintContext& ctx) {
  std::set<std::string> tainted;
  for (int pass = 0; pass < 8; ++pass) {
    bool changed = false;
    for (std::size_t i = fn.body_begin;
         i < fn.body_end && i < toks.size(); ++i) {
      if (!is_assignment_lhs(toks, i, fn.body_end)) continue;
      if (tainted.count(toks[i].text) != 0) continue;
      const std::size_t stop = statement_end(toks, i + 2, fn.body_end);
      if (find_atom(toks, i + 2, stop, tainted, ctx).found) {
        tainted.insert(toks[i].text);
        changed = true;
      }
    }
    if (!changed) break;
  }
  return tainted;
}

bool returns_taint(const std::vector<Token>& toks, const FunctionDef& fn,
                   const std::set<std::string>& tainted,
                   const TaintContext& ctx) {
  for (std::size_t i = fn.body_begin; i < fn.body_end && i < toks.size();
       ++i) {
    if (toks[i].kind != Tok::identifier || toks[i].text != "return") continue;
    const std::size_t stop = statement_end(toks, i + 1, fn.body_end);
    if (find_atom(toks, i + 1, stop, tainted, ctx).found) return true;
  }
  return false;
}

}  // namespace

TaintContext build_taint_context(const std::vector<SourceFile>& files,
                                 const ProjectIndex& project,
                                 const SymbolTable& symbols) {
  TaintContext ctx;
  // Project-wide fixpoint: a function joins the tainted-returning set when
  // any of its return statements contains an atom under the *current* set,
  // so taint flows through arbitrarily long call chains (decoder -> helper
  // -> caller). Membership only grows, so 8 rounds bound any real chain.
  for (int pass = 0; pass < 8; ++pass) {
    bool changed = false;
    for (const FunctionSymbol& sym : symbols.symbols) {
      if (sym.name.empty() || presence_semantics_name(sym.name)) continue;
      if (ctx.tainted_returning.count(sym.name) != 0) continue;
      const FunctionDef& fn = project.files[sym.file].functions[sym.fn];
      if (fn.body_end <= fn.body_begin) continue;
      const auto& toks = files[sym.file].tokens;
      const std::set<std::string> tainted =
          function_tainted_vars(toks, fn, ctx);
      if (returns_taint(toks, fn, tainted, ctx)) {
        ctx.tainted_returning.insert(sym.name);
        changed = true;
      }
    }
    if (!changed) break;
  }
  return ctx;
}

void run_taint_rules_on_file(const SourceFile& file, const FileIndex& index,
                             const TaintContext& ctx,
                             std::vector<Finding>& out) {
  if (!in_checked_dirs(file.path)) return;
  const auto& toks = file.tokens;
  // Lambda bodies are separate FunctionDefs nested inside their enclosing
  // function's extent, so a sink inside one is scanned twice; dedup by
  // (rule, line).
  std::set<std::pair<std::string, int>> seen;
  auto add = [&](const char* rule, int line, std::string message) {
    if (!seen.insert({rule, line}).second) return;
    out.push_back(Finding{rule, file.path, line, std::move(message), "taint"});
  };

  for (const FunctionDef& fn : index.functions) {
    if (fn.body_end <= fn.body_begin) continue;
    const std::set<std::string> tainted =
        function_tainted_vars(toks, fn, ctx);
    for (std::size_t i = fn.body_begin;
         i < fn.body_end && i < toks.size(); ++i) {
      if (toks[i].kind != Tok::identifier) continue;
      const std::string& id = toks[i].text;
      // O001: branch conditions.
      if (id == "if" || id == "switch") {
        std::size_t j = i + 1;
        if (j < toks.size() && toks[j].text == "constexpr") ++j;
        if (j >= toks.size() || toks[j].text != "(") continue;
        const std::size_t close = match_forward_tok(toks, j, '(', ')');
        if (close == kNone) continue;
        const Atom atom = find_atom(toks, j + 1, close, tainted, ctx);
        if (atom.found) {
          add("O001", toks[i].line,
              "payload content flows into a '" + id + "' condition (" +
                  atom.what +
                  "): content-oblivious code may branch on pulse presence "
                  "and ports only (paper §2) — decode belongs in src/net");
        }
        continue;
      }
      // O002: loop bounds.
      if (id == "while" || id == "for") {
        if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
        const std::size_t close = match_forward_tok(toks, i + 1, '(', ')');
        if (close == kNone) continue;
        std::size_t cond_begin = i + 2, cond_end = close;
        if (id == "for") {
          // Classic for: the condition sits between the first and second
          // top-level ';'. A range-for has no ';'; scan the whole interior.
          const std::size_t semi1 = statement_end(toks, i + 2, close);
          if (semi1 < close) {
            cond_begin = semi1 + 1;
            cond_end = statement_end(toks, semi1 + 1, close);
          }
        }
        const Atom atom = find_atom(toks, cond_begin, cond_end, tainted, ctx);
        if (atom.found) {
          add("O002", toks[i].line,
              "payload content flows into a loop bound (" + atom.what +
                  "): iteration counts in content-oblivious code may depend "
                  "on pulse counts only (paper §2)");
        }
        continue;
      }
      // O003: send counts / arguments.
      if ((id == "send" || id == "send_pulse" || id == "send_all" ||
           id == "send_ctl") &&
          i + 1 < toks.size() && toks[i + 1].text == "(") {
        const std::size_t close = match_forward_tok(toks, i + 1, '(', ')');
        if (close == kNone) continue;
        const Atom atom = find_atom(toks, i + 2, close, tainted, ctx);
        if (atom.found) {
          add("O003", toks[i].line,
              "payload content flows into '" + id + "()' (" + atom.what +
                  "): what and how much a node sends must depend on pulse "
                  "counts only, never on message content (paper §2)");
        }
      }
    }
  }
}

}  // namespace colex::lint
