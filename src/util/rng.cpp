#include "util/rng.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace colex::util {

std::uint64_t Xoshiro256StarStar::below(std::uint64_t bound) {
  COLEX_EXPECTS(bound != 0);
  // Classic unbiased rejection sampling: draw until the value falls below
  // the largest multiple of `bound`. At most one retry in expectation.
  const std::uint64_t limit = ~0ULL - (~0ULL % bound + 1) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r <= limit) return r % bound;
  }
}

std::uint64_t Xoshiro256StarStar::in_range(std::uint64_t lo, std::uint64_t hi) {
  COLEX_EXPECTS(lo <= hi);
  return lo + below(hi - lo + 1);
}

double Xoshiro256StarStar::uniform01() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256StarStar::geometric_trials(double q) {
  COLEX_EXPECTS(q > 0.0 && q <= 1.0);
  if (q == 1.0) return 1;
  // Inversion: X = ceil(ln(U) / ln(1-q)), U uniform in (0,1].
  double u = 1.0 - uniform01();  // (0, 1]
  double x = std::ceil(std::log(u) / std::log(1.0 - q));
  if (x < 1.0) x = 1.0;
  return static_cast<std::uint64_t>(x);
}

}  // namespace colex::util
