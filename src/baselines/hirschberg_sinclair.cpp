// Hirschberg-Sinclair (1980): bidirectional doubling. In phase k an active
// node probes 2^k hops in both directions; probes are swallowed by any node
// with a larger ID, turned around into replies at the hop limit, and a node
// that collects both replies enters the next phase. The maximum ID's probe
// eventually circumnavigates and returns to its owner, who becomes leader.
// O(n log n) messages.
//
// Note on termination: stray probes/replies of defeated nodes may still be
// in flight when the announcement circulates; they arrive at terminated
// nodes and are discarded (content-carrying messages can be recognized as
// stale — exactly the luxury content-oblivious algorithms lack, §1.1).
#include <memory>
#include <vector>

#include "baselines/run_ring.hpp"
#include "util/contracts.hpp"

namespace colex::baselines {
namespace {

class HsNode final : public BaselineNode {
 public:
  explicit HsNode(std::uint64_t id) : id_(id) {}

  std::unique_ptr<MsgAutomaton> clone() const override {
    return std::make_unique<HsNode>(*this);
  }

  void start(MsgContext& ctx) override { send_probes(ctx); }

  void react(MsgContext& ctx) override {
    bool progress = true;
    while (progress && !terminated()) {
      progress = false;
      for (const sim::Port q : {sim::Port::p0, sim::Port::p1}) {
        auto m = ctx.recv(q);
        if (!m) continue;
        progress = true;
        handle(ctx, q, *m);
        if (terminated()) return;
      }
    }
  }

 private:
  void handle(MsgContext& ctx, sim::Port q, const Msg& m) {
    switch (m.kind) {
      case Msg::Kind::announce:
        on_announce(ctx, m);
        return;
      case Msg::Kind::probe:
        if (is_leader_) return;  // draining strays while announce circulates
        if (m.value == id_) {
          // Own probe circumnavigated: no larger ID exists.
          if (!is_leader_) start_announce(ctx, id_);
          return;
        }
        if (m.value < id_) return;  // swallowed: the prober is defeated here
        defeated_ = true;           // a larger ID exists: stop initiating
        if (m.hops > 1) {
          Msg fwd = m;
          fwd.hops = m.hops - 1;
          emit(ctx, sim::opposite(q), fwd);  // continue outward
        } else {
          Msg reply;
          reply.kind = Msg::Kind::reply;
          reply.value = m.value;
          reply.phase = m.phase;
          emit(ctx, q, reply);  // turn around, back toward the prober
        }
        return;
      case Msg::Kind::reply:
        if (is_leader_) return;
        if (m.value != id_) {
          emit(ctx, sim::opposite(q), m);  // keep traveling toward its owner
          return;
        }
        COLEX_ASSERT(replies_pending_ > 0);
        if (--replies_pending_ == 0 && !defeated_) {
          ++phase_;
          send_probes(ctx);
        }
        return;
      default:
        COLEX_ASSERT(false);
    }
  }

  void send_probes(MsgContext& ctx) {
    replies_pending_ = 2;
    Msg m;
    m.kind = Msg::Kind::probe;
    m.value = id_;
    m.phase = phase_;
    m.hops = 1u << phase_;
    emit(ctx, sim::Port::p0, m);
    emit(ctx, sim::Port::p1, m);
  }

  std::uint64_t id_;
  std::uint32_t phase_ = 0;
  int replies_pending_ = 0;
  bool defeated_ = false;
};

}  // namespace

BaselineResult hirschberg_sinclair(const std::vector<std::uint64_t>& ids,
                                   sim::Scheduler& scheduler,
                                   const MsgRunOptions& opts) {
  COLEX_EXPECTS(!ids.empty());
  return detail::run_ring(
      ids.size(),
      [&ids](sim::NodeId v) { return std::make_unique<HsNode>(ids[v]); },
      scheduler, opts);
}

}  // namespace colex::baselines
