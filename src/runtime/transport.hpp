// The transport seam extracted from the three original pulse-plumbing
// stacks (sim::Network's delivery queues, ThreadRing's condvar ports, the
// coroutine executor's SPSC channels), so a fourth substrate — real sockets
// (src/net) — can host the very same algorithm transcriptions without
// touching them.
//
// Two layers:
//
//  * `Transport` — what a substrate must provide per node: non-blocking
//    recv/send on the node's two ports, a *blocking* wait() for the next
//    pulse (false means the harness stopped the run: global quiescence was
//    detected, the watchdog fired, or the endpoint failed), a stopped()
//    probe, and an idempotent shutdown() hook for teardown. ThreadRing's
//    NodeIo models it natively; src/net's socket endpoint models it by
//    pumping its file descriptors inside wait().
//
//  * `PulsePort` — what an algorithm transcription compiles against
//    (runtime/blocking_algs.hpp): recv/send plus an *awaitable* wait_any().
//    TransportPort<T> turns any Transport into a PulsePort by performing
//    the blocking wait inside await_ready() and never suspending — the
//    coroutine runs to completion in one resume on whatever thread drives
//    it, byte-for-byte the plain blocking behavior. The coroutine executor's
//    CoroIo is the other PulsePort flavor: its wait_any() genuinely
//    suspends, which is what lets a million nodes share a few workers.
//
// wait()/wait_any() share one contract: a false result means "stopped —
// record your outcome and return"; true does NOT promise a pulse (wakeups
// may be spurious: a condvar wake on ThreadRing, a stale producer CAS on
// the executor, a control-plane message on sockets), so transcriptions
// re-poll recv() and wait again.
#pragma once

#include <concepts>
#include <coroutine>
#include <utility>

#include "obs/phase.hpp"
#include "sim/types.hpp"

namespace colex::rt {

/// Per-node endpoint contract of an execution substrate. recv/send never
/// block; wait() blocks until a pulse may be available or the harness
/// stopped the run (false). shutdown() releases the endpoint's resources
/// and must be idempotent — harness teardown paths may race a node's own
/// exit, so calling it twice (or after a failed formation) is legal.
template <class T>
concept Transport = requires(T t, sim::Port p) {
  { t.recv(p) } -> std::convertible_to<bool>;
  t.send(p);
  { t.wait() } -> std::convertible_to<bool>;
  { t.stopped() } -> std::convertible_to<bool>;
  t.shutdown();
};

/// The port interface an algorithm transcription compiles against:
/// non-blocking receive, send, and an *awaitable* wait for the next pulse
/// (which the harness can interrupt once global quiescence is certain).
/// wait_any()'s awaitable must resume with `bool`: false when the harness
/// stopped the run, true otherwise. True does NOT promise a pulse —
/// wakeups may be spurious, so transcriptions re-poll recv() and wait
/// again.
template <class Io>
concept PulsePort = requires(Io io, sim::Port p) {
  { io.recv(p) } -> std::convertible_to<bool>;
  io.send(p);
  io.wait_any();  // awaitable; resumes with bool
};

/// Adapts any Transport into a blocking-flavor PulsePort: the wait_any()
/// awaitable performs the blocking Transport::wait() inside await_ready()
/// and always reports ready, so the coroutine never actually suspends —
/// resuming it once runs the algorithm to completion exactly as a plain
/// blocking function would, on the thread that resumed it.
///
/// T is held by value: substrate handles (NodeIo, src/net's EndpointIo)
/// are small copyable views into fabric-owned state, mirroring CoroIo.
template <Transport T>
class TransportPort {
 public:
  explicit TransportPort(T t) : t_(std::move(t)) {}

  bool recv(sim::Port p) { return t_.recv(p); }
  void send(sim::Port p) { t_.send(p); }
  /// Publishes the node's current algorithm phase when the underlying
  /// transport supports it. Transcriptions detect this extension via
  /// `requires { io.set_phase(p); }` — transports without it still satisfy
  /// Transport, and the constrained member simply drops out.
  void set_phase(obs::Phase p)
    requires requires(T& t) { t.set_phase(p); }
  {
    t_.set_phase(p);
  }

  struct WaitAnyAwaiter {
    T& t;
    bool result = false;
    bool await_ready() {
      result = t.wait();  // the blocking wait happens here
      return true;        // never suspend
    }
    void await_suspend(std::coroutine_handle<>) {}
    bool await_resume() const { return result; }
  };
  WaitAnyAwaiter wait_any() { return WaitAnyAwaiter{t_}; }

  /// The wrapped transport (harness-side access to counters/teardown).
  T& transport() { return t_; }

 private:
  T t_;
};

}  // namespace colex::rt
