// The token bus's frame codec, factored out of BusNode so the grammar can
// be tested (and fuzzed) in isolation from pulse transport.
//
// Stream grammar (one frame at a time, bits arrive in order):
//     0                        PASS
//     1 0                      HALT
//     1 1 1^L 0 b_1..b_L       DATA with L payload bits
#pragma once

#include <optional>

#include "colib/bits.hpp"
#include "util/contracts.hpp"

namespace colex::colib {

/// A decoded frame event.
struct Frame {
  enum class Kind { pass, halt, data };
  Kind kind = Kind::pass;
  Bits payload;  ///< data frames only
};

/// Encodes one frame into the bit stream representation.
inline Bits encode_pass_frame() { return Bits{false}; }

inline Bits encode_halt_frame() { return Bits{true, false}; }

inline Bits encode_data_frame(const Bits& payload) {
  Bits out{true, true};
  out.insert(out.end(), payload.size(), true);
  out.push_back(false);
  append(out, payload);
  return out;
}

/// Incremental decoder: feed bits one at a time; a completed frame is
/// returned (and the decoder resets) exactly when the grammar closes.
class FrameDecoder {
 public:
  /// Consumes one bit; returns a frame when one completes.
  std::optional<Frame> feed(bool bit) {
    switch (state_) {
      case State::idle:
        if (!bit) return Frame{Frame::Kind::pass, {}};
        state_ = State::saw1;
        return std::nullopt;
      case State::saw1:
        if (!bit) {
          state_ = State::idle;
          return Frame{Frame::Kind::halt, {}};
        }
        state_ = State::length;
        length_ = 0;
        return std::nullopt;
      case State::length:
        if (bit) {
          ++length_;
          return std::nullopt;
        }
        if (length_ == 0) {
          state_ = State::idle;
          return Frame{Frame::Kind::data, {}};
        }
        state_ = State::payload;
        payload_.clear();
        return std::nullopt;
      case State::payload:
        payload_.push_back(bit);
        if (payload_.size() < length_) return std::nullopt;
        state_ = State::idle;
        Frame frame{Frame::Kind::data, {}};
        frame.payload.swap(payload_);
        return frame;
    }
    COLEX_ASSERT(false);
    return std::nullopt;
  }

  /// True iff the decoder is between frames.
  bool idle() const { return state_ == State::idle; }

 private:
  enum class State { idle, saw1, length, payload };
  State state_ = State::idle;
  std::size_t length_ = 0;
  Bits payload_;
};

}  // namespace colex::colib
