// Chase-Lev work-stealing deque (Chase & Lev, SPAA'05; memory orderings
// after Lê et al., PPoPP'13) specialized for the coroutine executor:
//
//  * Entries are node indices (uint32), not pointers — the executor's node
//    table is the single source of truth, and atomic 32-bit slots make the
//    buffer trivially data-race-free under TSan.
//  * Fixed capacity, no growth: a node is enqueued at most once per
//    PARKED->READY transition and is popped before it can transition again,
//    so a deque can never hold more than n live entries. The executor sizes
//    each deque to next_pow2(n + 1) up front (4 bytes per slot), trading a
//    few MB at n=10^6 for the removal of the entire growth/ABA machinery.
//  * Orderings are seq_cst at the top/bottom races instead of the paper's
//    standalone fences: TSan does not model atomic_thread_fence, and the
//    executor's throughput is bounded by pulse hand-offs, not deque ops.
//
// Owner calls push()/pop() (LIFO end); any other thread may steal() (FIFO
// end). All three are lock-free; steal() may spuriously fail under
// contention, which callers treat as "try the next victim".
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "coro/spsc.hpp"  // next_pow2, kCacheLine
#include "util/contracts.hpp"

namespace colex::coro {

class WorkDeque {
 public:
  /// `capacity` is the maximum number of simultaneously queued entries the
  /// caller guarantees; rounded up to a power of two (+1 slot of slack so a
  /// thief's pre-CAS slot read can never be overwritten by a same-index
  /// wraparound push).
  explicit WorkDeque(std::size_t capacity)
      : buf_(next_pow2(capacity + 1)), mask_(static_cast<std::int64_t>(
                                           buf_.size() - 1)) {}

  /// Owner: enqueue at the bottom. The capacity contract makes overflow a
  /// logic error, not a runtime condition.
  void push(std::uint32_t v) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    COLEX_ASSERT(b - t <= mask_);  // capacity contract (see ctor)
    buf_[static_cast<std::size_t>(b & mask_)].store(
        v, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_seq_cst);  // publish to thieves
  }

  /// Owner: take from the bottom (LIFO). Returns false when empty.
  bool pop(std::uint32_t& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);  // reserve before reading top
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t < b) {  // more than one entry: no race possible
      out = buf_[static_cast<std::size_t>(b & mask_)].load(
          std::memory_order_relaxed);
      return true;
    }
    bool won = false;
    if (t == b) {  // last entry: race the thieves for it via top
      won = top_.compare_exchange_strong(t, t + 1,
                                         std::memory_order_seq_cst,
                                         std::memory_order_seq_cst);
      if (won) {
        out = buf_[static_cast<std::size_t>(b & mask_)].load(
            std::memory_order_relaxed);
      }
    }
    bottom_.store(b + 1, std::memory_order_relaxed);  // restore canonical form
    return won;
  }

  /// Thief: take from the top (FIFO). May spuriously fail under contention
  /// (lost CAS) — callers just move on to the next victim.
  bool steal(std::uint32_t& out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;  // empty
    // Read the slot before claiming it: a successful CAS proves the owner
    // had not popped past t, and the +1 capacity slack proves no concurrent
    // push wrapped onto this slot.
    const std::uint32_t v = buf_[static_cast<std::size_t>(t & mask_)].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      return false;
    }
    out = v;
    return true;
  }

  /// Approximate occupancy (exact when quiescent).
  std::size_t size() const {
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  alignas(kCacheLine) std::atomic<std::int64_t> top_{0};
  alignas(kCacheLine) std::atomic<std::int64_t> bottom_{0};
  alignas(kCacheLine) std::vector<std::atomic<std::uint32_t>> buf_;
  std::int64_t mask_;
};

/// Owner-only FIFO of node indices for cooperative yields (wait_any with
/// pulses pending). Strictly single-threaded — only the owning worker ever
/// touches it — so no atomics. FIFO order is load-bearing: a yielded node
/// must requeue *behind* every other ready node, or a node polling the
/// wrong port (Algorithm 2's initiated wait) would be re-popped immediately
/// and spin the worker without ever scheduling the neighbor it waits on.
class YieldQueue {
 public:
  /// `capacity` = ring size: a node is in at most one yield queue (yield is
  /// a RUNNING->READY transition by the running node itself), so n slots
  /// can never overflow.
  explicit YieldQueue(std::size_t capacity)
      : buf_(next_pow2(capacity + 1)), mask_(buf_.size() - 1) {}

  bool empty() const { return head_ == tail_; }

  void push(std::uint32_t v) {
    COLEX_ASSERT(tail_ - head_ <= mask_);  // capacity contract (see ctor)
    buf_[tail_ & mask_] = v;
    ++tail_;
  }

  bool pop(std::uint32_t& out) {
    if (head_ == tail_) return false;
    out = buf_[head_ & mask_];
    ++head_;
    return true;
  }

 private:
  std::vector<std::uint32_t> buf_;
  std::size_t mask_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

}  // namespace colex::coro
