#include "colib/apps.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace colex::colib {

void GatherAllApp::on_ready(std::size_t my_offset, std::size_t ring_size,
                            bool is_root) {
  my_offset_ = my_offset;
  n_ = ring_size;
  is_root_ = is_root;
  values_.assign(n_, std::nullopt);
}

void GatherAllApp::on_frame(std::size_t from, const Bits& payload) {
  COLEX_ASSERT(from < values_.size());
  values_[from] = decode_u64(payload);
}

void GatherAllApp::on_token(BusCtl& ctl) {
  if (!sent_) {
    sent_ = true;
    ctl.send_frame(encode_u64(input_));
    return;
  }
  if (is_root_ && complete()) {
    ctl.halt();
    return;
  }
  ctl.pass();
}

bool GatherAllApp::complete() const {
  if (values_.empty()) return false;
  return std::all_of(values_.begin(), values_.end(),
                     [](const std::optional<std::uint64_t>& v) {
                       return v.has_value();
                     });
}

std::uint64_t GatherAllApp::max_value() const {
  COLEX_EXPECTS(complete());
  std::uint64_t best = 0;
  for (const auto& v : values_) best = std::max(best, *v);
  return best;
}

std::uint64_t GatherAllApp::sum() const {
  COLEX_EXPECTS(complete());
  std::uint64_t total = 0;
  for (const auto& v : values_) total += *v;
  return total;
}

void SimContext::send(bool to_cw, Bits payload) {
  outbox_.push_back(Outgoing{to_cw, std::move(payload)});
}

void SimulatorApp::on_ready(std::size_t my_offset, std::size_t ring_size,
                            bool is_root) {
  my_offset_ = my_offset;
  n_ = ring_size;
  is_root_ = is_root;
  SimContext ctx(my_offset_, n_, outbox_);
  node_->on_start(ctx);
}

void SimulatorApp::on_frame(std::size_t from, const Bits& payload) {
  ++frames_seen_;
  COLEX_ASSERT(!payload.empty());  // at least the direction bit
  const bool to_cw = payload[0];
  const std::size_t dest = to_cw ? (from + 1) % n_ : (from + n_ - 1) % n_;
  if (dest != my_offset_) return;
  Bits msg(payload.begin() + 1, payload.end());
  SimContext ctx(my_offset_, n_, outbox_);
  ++delivered_;
  // A message sent clockwise arrives from the counterclockwise neighbor.
  node_->on_message(ctx, /*from_cw=*/!to_cw, msg);
}

void SimulatorApp::on_token(BusCtl& ctl) {
  if (!outbox_.empty()) {
    auto out = std::move(outbox_.front());
    outbox_.pop_front();
    Bits frame;
    frame.push_back(out.to_cw);
    append(frame, out.payload);
    ctl.send_frame(std::move(frame));
    return;
  }
  if (is_root_) {
    // A full rotation with no DATA frame and nothing pending here means
    // every node passed with an empty outbox: the simulated algorithm is
    // globally passive.
    if (had_token_before_ && frames_seen_ == frames_at_last_token_) {
      ctl.halt();
      return;
    }
    had_token_before_ = true;
    frames_at_last_token_ = frames_seen_;
  }
  ctl.pass();
}

void RingSumSimNode::on_start(SimContext& ctx) {
  if (ctx.my_index() != 0) return;
  if (ctx.ring_size() == 1) {
    total_ = input_;
    return;
  }
  Bits m{false};  // kind bit 0: accumulating
  append(m, encode_u64(input_));
  ctx.send(/*to_cw=*/true, m);
}

void RingSumSimNode::on_message(SimContext& ctx, bool, const Bits& payload) {
  const bool is_total = payload[0];
  const std::uint64_t value = decode_u64(payload, 1);
  if (is_total) {
    total_ = value;
    if (ctx.my_index() != 0) ctx.send(true, payload);  // keep broadcasting
    return;
  }
  if (ctx.my_index() == 0) {
    total_ = value;  // the accumulator came home
    Bits m{true};
    append(m, encode_u64(value));
    ctx.send(true, m);
    return;
  }
  Bits m{false};
  append(m, encode_u64(value + input_));
  ctx.send(true, m);
}

void ChangRobertsSimNode::on_start(SimContext& ctx) {
  if (ctx.ring_size() == 1) {
    leader_ = id_;
    is_leader_ = true;
    return;
  }
  Bits m{false};  // kind 0: candidate
  append(m, encode_u64(id_));
  ctx.send(true, m);
}

void ChangRobertsSimNode::on_message(SimContext& ctx, bool,
                                     const Bits& payload) {
  const bool is_announce = payload[0];
  const std::uint64_t value = decode_u64(payload, 1);
  if (is_announce) {
    leader_ = value;
    if (value != id_) ctx.send(true, payload);
    return;
  }
  if (value > id_) {
    ctx.send(true, payload);
  } else if (value == id_) {
    is_leader_ = true;
    leader_ = id_;
    Bits m{true};
    append(m, encode_u64(id_));
    ctx.send(true, m);
  }
}

}  // namespace colex::colib
