// Tests for colex-lint (tools/lint): the lexer, the suppression markers,
// each rule against the planted fixtures under tests/lint_fixtures/, and
// the repo-tree gate itself (src/tools/bench must scan clean).
//
// COLEX_LINT_FIXTURE_DIR and COLEX_LINT_SOURCE_DIR are injected by
// tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/classes.hpp"
#include "lint/driver.hpp"
#include "lint/lexer.hpp"
#include "lint/rules.hpp"
#include "lint/source.hpp"

namespace lint = colex::lint;

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// True if `findings` holds exactly one finding of `rule` at
/// `file_suffix:line`.
bool has_one(const std::vector<lint::Finding>& findings,
             const std::string& rule, const std::string& file_suffix,
             int line) {
  int count = 0;
  for (const lint::Finding& f : findings) {
    if (f.rule == rule && f.line == line && ends_with(f.file, file_suffix)) {
      ++count;
    }
  }
  return count == 1;
}

lint::ScanOutcome scan_fixtures() {
  return lint::scan_paths({COLEX_LINT_FIXTURE_DIR});
}

}  // namespace

// --- fixture self-test ---------------------------------------------------

TEST(LintSelfTest, EveryPlantedExpectationMatches) {
  const lint::SelfTestOutcome result =
      lint::run_self_test({COLEX_LINT_FIXTURE_DIR});
  for (const std::string& p : result.problems) {
    ADD_FAILURE() << "self-test problem: " << p;
  }
  EXPECT_TRUE(result.ok);
  // One positive + one suppressed case per rule, plus the extra D001 and
  // M003 positives and the second positive each O/T rule plants.
  EXPECT_EQ(result.expectations, 41u);
  EXPECT_EQ(result.rules_exercised.size(), 16u);  // all rules in the catalog
  std::set<std::string> ids;
  for (const lint::RuleInfo& rule : lint::rule_catalog()) ids.insert(rule.id);
  EXPECT_EQ(result.rules_exercised, ids);
}

// --- exact rule ids and line numbers over the fixtures -------------------

TEST(LintFixtures, ReportedFindingsHaveExactRuleIdsAndLines) {
  const lint::ScanOutcome outcome = scan_fixtures();
  ASSERT_TRUE(outcome.errors.empty());
  EXPECT_TRUE(has_one(outcome.findings, "D001", "d001_banned_random.cpp", 11));
  EXPECT_TRUE(has_one(outcome.findings, "D001", "d001_banned_random.cpp", 16));
  EXPECT_TRUE(
      has_one(outcome.findings, "D002", "d002_unordered_iteration.cpp", 12));
  EXPECT_TRUE(has_one(outcome.findings, "D003", "d003_static_local.cpp", 4));
  EXPECT_TRUE(has_one(outcome.findings, "C001", "c001_clone_members.cpp", 8));
  EXPECT_TRUE(has_one(outcome.findings, "H001", "h001_missing_guard.hpp", 1));
  EXPECT_TRUE(
      has_one(outcome.findings, "H002", "h002_using_namespace.hpp", 8));
  EXPECT_TRUE(
      has_one(outcome.findings, "M001", "src/co/m001_recv_content.cpp", 20));
  EXPECT_TRUE(
      has_one(outcome.findings, "M002", "src/co/m002_network_state.cpp", 15));
  EXPECT_TRUE(has_one(outcome.findings, "M003", "src/co/m003_payload.cpp", 4));
  EXPECT_TRUE(
      has_one(outcome.findings, "M003", "src/co/m003_payload.cpp", 15));
  // Taint pass (O-rules) fixtures under src/runtime/.
  EXPECT_TRUE(has_one(outcome.findings, "O001",
                      "src/runtime/o001_taint_branch.cpp", 17));
  EXPECT_TRUE(has_one(outcome.findings, "O001",
                      "src/runtime/o001_taint_branch.cpp", 23));
  EXPECT_TRUE(has_one(outcome.findings, "O002",
                      "src/runtime/o002_taint_loop.cpp", 16));
  EXPECT_TRUE(has_one(outcome.findings, "O002",
                      "src/runtime/o002_taint_loop.cpp", 23));
  EXPECT_TRUE(has_one(outcome.findings, "O003",
                      "src/runtime/o003_taint_send.cpp", 12));
  EXPECT_TRUE(has_one(outcome.findings, "O003",
                      "src/runtime/o003_taint_send.cpp", 16));
  // Concurrency pass (T-rules) fixtures.
  EXPECT_TRUE(
      has_one(outcome.findings, "T001", "t001_memory_order.cpp", 14));
  EXPECT_TRUE(
      has_one(outcome.findings, "T001", "t001_memory_order.cpp", 27));
  EXPECT_TRUE(
      has_one(outcome.findings, "T002", "src/coro/t002_blocking.cpp", 17));
  EXPECT_TRUE(
      has_one(outcome.findings, "T002", "src/coro/t002_blocking.cpp", 21));
  EXPECT_TRUE(has_one(outcome.findings, "T003", "t003_seqlock.cpp", 14));
  EXPECT_TRUE(has_one(outcome.findings, "T003", "t003_seqlock.cpp", 27));
  EXPECT_TRUE(
      has_one(outcome.findings, "T004", "t004_transport_shape.cpp", 12));
  EXPECT_TRUE(
      has_one(outcome.findings, "T004", "t004_transport_shape.cpp", 21));
  EXPECT_EQ(outcome.findings.size(), 25u);
  EXPECT_EQ(lint::exit_code(outcome), 1);
}

TEST(LintFixtures, FindingsCarryTheirProducingPass) {
  const lint::ScanOutcome outcome = scan_fixtures();
  for (const lint::Finding& f : outcome.findings) {
    const char letter = f.rule[0];
    if (letter == 'O') {
      EXPECT_EQ(f.pass, "taint") << f.rule;
    } else if (letter == 'T') {
      EXPECT_EQ(f.pass, "concurrency") << f.rule;
    } else {
      EXPECT_EQ(f.pass, "lexical") << f.rule;
    }
  }
}

TEST(LintFixtures, SuppressedFindingsHaveExactRuleIdsAndLines) {
  const lint::ScanOutcome outcome = scan_fixtures();
  EXPECT_TRUE(
      has_one(outcome.suppressed, "D001", "d001_banned_random.cpp", 20));
  EXPECT_TRUE(
      has_one(outcome.suppressed, "D002", "d002_unordered_iteration.cpp", 19));
  EXPECT_TRUE(has_one(outcome.suppressed, "D003", "d003_static_local.cpp", 14));
  EXPECT_TRUE(
      has_one(outcome.suppressed, "C001", "c001_clone_members.cpp", 22));
  EXPECT_TRUE(
      has_one(outcome.suppressed, "H001", "h001_allowed_generated.hpp", 1));
  EXPECT_TRUE(
      has_one(outcome.suppressed, "H002", "h002_using_namespace.hpp", 11));
  EXPECT_TRUE(
      has_one(outcome.suppressed, "M001", "src/co/m001_recv_content.cpp", 25));
  EXPECT_TRUE(
      has_one(outcome.suppressed, "M002", "src/co/m002_network_state.cpp", 19));
  EXPECT_TRUE(
      has_one(outcome.suppressed, "M003", "src/co/m003_payload.cpp", 16));
  EXPECT_TRUE(has_one(outcome.suppressed, "O001",
                      "src/runtime/o001_taint_branch.cpp", 30));
  EXPECT_TRUE(has_one(outcome.suppressed, "O002",
                      "src/runtime/o002_taint_loop.cpp", 30));
  EXPECT_TRUE(has_one(outcome.suppressed, "O003",
                      "src/runtime/o003_taint_send.cpp", 21));
  EXPECT_TRUE(
      has_one(outcome.suppressed, "T001", "t001_memory_order.cpp", 38));
  EXPECT_TRUE(
      has_one(outcome.suppressed, "T002", "src/coro/t002_blocking.cpp", 25));
  EXPECT_TRUE(has_one(outcome.suppressed, "T003", "t003_seqlock.cpp", 44));
  EXPECT_TRUE(
      has_one(outcome.suppressed, "T004", "t004_transport_shape.cpp", 27));
  EXPECT_EQ(outcome.suppressed.size(), 16u);
}

// --- parallel scan determinism -------------------------------------------

TEST(LintParallel, FindingOrderIsIdenticalForAnyWorkerCount) {
  const lint::ScanOutcome one = lint::scan_paths({COLEX_LINT_FIXTURE_DIR}, 1);
  for (const std::size_t workers : {2u, 4u, 7u}) {
    const lint::ScanOutcome many =
        lint::scan_paths({COLEX_LINT_FIXTURE_DIR}, workers);
    ASSERT_EQ(many.findings.size(), one.findings.size()) << workers;
    for (std::size_t i = 0; i < one.findings.size(); ++i) {
      EXPECT_EQ(many.findings[i].rule, one.findings[i].rule);
      EXPECT_EQ(many.findings[i].file, one.findings[i].file);
      EXPECT_EQ(many.findings[i].line, one.findings[i].line);
      EXPECT_EQ(many.findings[i].message, one.findings[i].message);
      EXPECT_EQ(many.findings[i].pass, one.findings[i].pass);
    }
    EXPECT_EQ(many.suppressed.size(), one.suppressed.size());
  }
}

// --- the real tree gates clean -------------------------------------------

TEST(LintTree, SrcToolsBenchScanClean) {
  const lint::ScanOutcome outcome =
      lint::scan_paths({std::string(COLEX_LINT_SOURCE_DIR) + "/src",
                        std::string(COLEX_LINT_SOURCE_DIR) + "/tools",
                        std::string(COLEX_LINT_SOURCE_DIR) + "/bench"});
  EXPECT_TRUE(outcome.errors.empty());
  for (const lint::Finding& f : outcome.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
  EXPECT_EQ(lint::exit_code(outcome), 0);
  // The two justified suppressions: Network::clone() deliberately does not
  // copy send_observer_ (forks are exploration states, not traced runs),
  // and the executor's wake handshake locks park_mutex_ with an empty
  // critical section (never held across a park).
  ASSERT_EQ(outcome.suppressed.size(), 2u);  // sorted by (file, line, rule)
  EXPECT_TRUE(
      has_one(outcome.suppressed, "T002", "src/coro/executor.cpp", 46));
  EXPECT_EQ(outcome.suppressed[1].rule, "C001");
  EXPECT_TRUE(ends_with(outcome.suppressed[1].file, "src/sim/network.hpp"));
}

// --- lexer ---------------------------------------------------------------

TEST(LintLexer, CommentsAndStringsDoNotLeakTokens) {
  const lint::LexResult lexed = lint::lex(
      "// rand() in a comment\n"
      "/* mt19937 in a block\n   comment */\n"
      "const char* s = \"random_device\";\n"
      "const char* r = R\"(time(nullptr))\";\n"
      "char c = 'x';\n");
  for (const lint::Token& t : lexed.tokens) {
    if (t.kind != lint::Tok::identifier) continue;
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "mt19937");
    EXPECT_NE(t.text, "random_device");
    EXPECT_NE(t.text, "time");
  }
  ASSERT_EQ(lexed.comments.size(), 2u);
  EXPECT_EQ(lexed.comments[0].line, 1);
  EXPECT_EQ(lexed.comments[1].line, 2);
  EXPECT_EQ(lexed.comments[1].end_line, 3);
}

TEST(LintLexer, LineCommentContinuesAcrossBackslashNewline) {
  // A backslash at the end of a `//` line splices the next physical line
  // into the comment (phase-2 line splicing), so `rand()` on the spliced
  // line must not lex as code — and the comment's extent must cover both
  // lines so a marker inside it anchors correctly.
  const lint::LexResult lexed = lint::lex(
      "// spliced comment \\\n"
      "rand(); still the same comment\n"
      "int live = 1;\n");
  for (const lint::Token& t : lexed.tokens) {
    EXPECT_NE(t.text, "rand");
  }
  ASSERT_EQ(lexed.comments.size(), 1u);
  EXPECT_EQ(lexed.comments[0].line, 1);
  EXPECT_EQ(lexed.comments[0].end_line, 2);
  EXPECT_NE(lexed.comments[0].text.find("still the same comment"),
            std::string::npos);
  // The code after the spliced comment still lexes, on the right line.
  ASSERT_FALSE(lexed.tokens.empty());
  EXPECT_EQ(lexed.tokens[0].text, "int");
  EXPECT_EQ(lexed.tokens[0].line, 3);

  // CRLF endings: the backslash still precedes the (logical) newline.
  const lint::LexResult crlf = lint::lex("// one \\\r\ntwo\r\nint x;\r\n");
  ASSERT_EQ(crlf.comments.size(), 1u);
  EXPECT_EQ(crlf.comments[0].end_line, 2);
}

TEST(LintLexer, TokensCarryOneBasedLineNumbers) {
  const lint::LexResult lexed = lint::lex("int a;\n\nint b;\n");
  ASSERT_EQ(lexed.tokens.size(), 6u);
  EXPECT_EQ(lexed.tokens[0].line, 1);  // int
  EXPECT_EQ(lexed.tokens[3].line, 3);  // int (second)
}

// --- suppression markers -------------------------------------------------

TEST(LintSuppression, AllowCoversSameAndNextLine) {
  const lint::SourceFile f = lint::make_source_file(
      "x.cpp",
      "int f() {\n"
      "  // colex-lint: allow(D003) reason\n"
      "  static int s = 0;\n"
      "  return s;\n"
      "}\n");
  EXPECT_TRUE(f.suppressed("D003", 3));   // line below the marker
  EXPECT_TRUE(f.suppressed("D003", 2));   // the marker line itself
  EXPECT_FALSE(f.suppressed("D003", 4));  // two lines below
  EXPECT_FALSE(f.suppressed("D001", 3));  // a different rule
}

TEST(LintSuppression, WrappedJustificationAnchorsAtLastCommentLine) {
  const lint::SourceFile f = lint::make_source_file(
      "x.cpp",
      "// colex-lint: allow(C001) the justification wraps onto a\n"
      "// second comment line; the marker anchors at the last one.\n"
      "int target() { return 0; }\n");
  EXPECT_TRUE(f.suppressed("C001", 3));
}

TEST(LintSuppression, AllowFileCoversEveryLine) {
  const lint::SourceFile f = lint::make_source_file(
      "x.cpp", "// colex-lint: allow-file(D002) fixture\nint x = 0;\n");
  EXPECT_TRUE(f.suppressed("D002", 1));
  EXPECT_TRUE(f.suppressed("D002", 999));
  EXPECT_FALSE(f.suppressed("D001", 1));
}

// --- rules over in-memory sources ----------------------------------------

TEST(LintRules, PathScopingActivatesModelRulesOnlyUnderModelDirs) {
  const std::string body =
      "struct AutomatonBase {};\n"
      "struct Node : AutomatonBase {\n"
      "  void react() { total_sent(); }\n"
      "};\n";
  for (const auto& [path, expect_m002] :
       std::vector<std::pair<std::string, bool>>{
           {"src/co/node.cpp", true},
           {"src/colib/node.cpp", true},
           {"src/lb/node.cpp", false}}) {
    std::vector<lint::SourceFile> files;
    files.push_back(lint::make_source_file(path, body));
    const lint::ProjectIndex project = lint::build_project_index(files);
    const std::vector<lint::Finding> findings =
        lint::run_rules(files, project);
    EXPECT_EQ(has_one(findings, "M002", path, 3), expect_m002) << path;
  }
}

TEST(LintRules, CloneMembersAggregateAcrossHeaderAndSource) {
  // Members in the header, clone() out of line in the .cpp — the record is
  // aggregated project-wide by class name.
  std::vector<lint::SourceFile> files;
  files.push_back(lint::make_source_file(
      "src/x/split.hpp",
      "#pragma once\n"
      "struct Split {\n"
      "  Split* clone() const;\n"
      "  int kept_ = 0;\n"
      "  int dropped_ = 0;\n"
      "};\n"));
  files.push_back(lint::make_source_file(
      "src/x/split.cpp",
      "#include \"split.hpp\"\n"
      "Split* Split::clone() const {\n"
      "  auto* copy = new Split();\n"
      "  copy->kept_ = kept_;\n"
      "  return copy;\n"
      "}\n"));
  const lint::ProjectIndex project = lint::build_project_index(files);
  const std::vector<lint::Finding> findings = lint::run_rules(files, project);
  ASSERT_TRUE(has_one(findings, "C001", "src/x/split.cpp", 2));
  for (const lint::Finding& f : findings) {
    if (f.rule != "C001") continue;
    EXPECT_NE(f.message.find("dropped_"), std::string::npos);
    EXPECT_EQ(f.message.find("kept_"), std::string::npos);
  }
}

TEST(LintRules, CloneViaThisAndImplicitCopyIsComplete) {
  std::vector<lint::SourceFile> files;
  files.push_back(lint::make_source_file(
      "src/x/whole.hpp",
      "#pragma once\n"
      "struct Whole {\n"
      "  Whole* clone() const { return new Whole(*this); }\n"
      "  int a_ = 0;\n"
      "  int b_ = 0;\n"
      "};\n"));
  const lint::ProjectIndex project = lint::build_project_index(files);
  for (const lint::Finding& f : lint::run_rules(files, project)) {
    EXPECT_NE(f.rule, "C001") << f.message;
  }
}

// --- output and exit contract --------------------------------------------

TEST(LintDriver, ExitContractMirrorsColexFuzz) {
  lint::ScanOutcome clean;
  clean.files_scanned = 1;
  EXPECT_EQ(lint::exit_code(clean), 0);

  lint::ScanOutcome dirty;
  dirty.findings.push_back(lint::Finding{"D001", "x.cpp", 1, "m"});
  EXPECT_EQ(lint::exit_code(dirty), 1);

  lint::ScanOutcome broken;
  broken.errors.push_back("missing: cannot open");
  EXPECT_EQ(lint::exit_code(broken), 2);

  const lint::ScanOutcome missing = lint::scan_paths({"/nonexistent-colex"});
  EXPECT_EQ(lint::exit_code(missing), 2);
}

TEST(LintDriver, JsonOutputEscapesAndListsFindings) {
  lint::ScanOutcome outcome;
  outcome.files_scanned = 2;
  outcome.findings.push_back(
      lint::Finding{"D001", "a\"b.cpp", 7, "line one\nline two"});
  std::ostringstream os;
  lint::print_json(os, outcome);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"tool\": \"colex-lint\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"D001\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":7"), std::string::npos);
  EXPECT_NE(json.find("a\\\"b.cpp"), std::string::npos);
  EXPECT_NE(json.find("line one\\nline two"), std::string::npos);
  // v2 additions are additive: schema marker plus a per-finding pass field,
  // with the v1 "tool"/"version" keys untouched.
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"schema\": \"colex-lint-v2\""), std::string::npos);
  EXPECT_NE(json.find("\"pass\":\"lexical\""), std::string::npos);
}

TEST(LintDriver, JsonTagsFindingsWithTheirPass) {
  lint::ScanOutcome outcome;
  outcome.files_scanned = 1;
  outcome.findings.push_back(
      lint::Finding{"O001", "x.cpp", 3, "m", "taint"});
  outcome.findings.push_back(
      lint::Finding{"T002", "y.cpp", 9, "m", "concurrency"});
  std::ostringstream os;
  lint::print_json(os, outcome);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"rule\":\"O001\",\"pass\":\"taint\""),
            std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"T002\",\"pass\":\"concurrency\""),
            std::string::npos);
}

TEST(LintDriver, RuleCatalogIsStableAndComplete) {
  const std::vector<lint::RuleInfo> catalog = lint::rule_catalog();
  ASSERT_EQ(catalog.size(), 16u);
  std::set<std::string> ids;
  for (const lint::RuleInfo& rule : catalog) {
    ASSERT_FALSE(rule.id.empty());
    EXPECT_TRUE(rule.id[0] == 'D' || rule.id[0] == 'M' || rule.id[0] == 'C' ||
                rule.id[0] == 'H' || rule.id[0] == 'O' || rule.id[0] == 'T')
        << rule.id;
    EXPECT_FALSE(rule.summary.empty());
    EXPECT_TRUE(rule.pass == "lexical" || rule.pass == "taint" ||
                rule.pass == "concurrency")
        << rule.id << " pass=" << rule.pass;
    ids.insert(rule.id);
  }
  EXPECT_EQ(ids.size(), catalog.size()) << "duplicate rule ids";
}
