
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/co/alg1.cpp" "src/co/CMakeFiles/colex_co.dir/alg1.cpp.o" "gcc" "src/co/CMakeFiles/colex_co.dir/alg1.cpp.o.d"
  "/root/repo/src/co/alg2.cpp" "src/co/CMakeFiles/colex_co.dir/alg2.cpp.o" "gcc" "src/co/CMakeFiles/colex_co.dir/alg2.cpp.o.d"
  "/root/repo/src/co/alg3.cpp" "src/co/CMakeFiles/colex_co.dir/alg3.cpp.o" "gcc" "src/co/CMakeFiles/colex_co.dir/alg3.cpp.o.d"
  "/root/repo/src/co/election.cpp" "src/co/CMakeFiles/colex_co.dir/election.cpp.o" "gcc" "src/co/CMakeFiles/colex_co.dir/election.cpp.o.d"
  "/root/repo/src/co/replicated.cpp" "src/co/CMakeFiles/colex_co.dir/replicated.cpp.o" "gcc" "src/co/CMakeFiles/colex_co.dir/replicated.cpp.o.d"
  "/root/repo/src/co/sampling.cpp" "src/co/CMakeFiles/colex_co.dir/sampling.cpp.o" "gcc" "src/co/CMakeFiles/colex_co.dir/sampling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/colex_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/colex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
