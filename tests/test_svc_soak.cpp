// Soak-harness suite (src/svc): the churn engine's determinism and
// validity, the supervisor's service-level contract (unique max-ID leader
// within the Theorem 1 pulse bound on every completed election, with the
// guaranteed-clean final rung making the retry loop self-healing), and a
// bounded end-to-end soak whose report, merged metrics, and snapshot file
// must all tell the same story.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "svc/churn.hpp"
#include "svc/soak.hpp"
#include "svc/supervisor.hpp"
#include "util/contracts.hpp"

namespace colex {
namespace {

using svc::ChurnEngine;
using svc::ChurnPreset;
using svc::ChurnProfile;
using svc::RingSpec;
using svc::SoakAlg;

// --- ChurnEngine -----------------------------------------------------------

TEST(ChurnEngine, SpecIsAPureFunctionOfItsCoordinates) {
  const ChurnEngine a(42, 7, ChurnProfile::preset(ChurnPreset::storm));
  const ChurnEngine b(42, 7, ChurnProfile::preset(ChurnPreset::storm));
  for (std::uint64_t election = 0; election < 20; ++election) {
    for (unsigned attempt = 0; attempt < 3; ++attempt) {
      const RingSpec x = a.spec(election, attempt, 2);
      const RingSpec y = b.spec(election, attempt, 2);
      EXPECT_EQ(x.ids, y.ids);
      EXPECT_EQ(x.alg, y.alg);
      EXPECT_EQ(x.schedule_seed, y.schedule_seed);
      EXPECT_EQ(x.max_events, y.max_events);
      EXPECT_EQ(x.faults.script.size(), y.faults.script.size());
      EXPECT_EQ(x.faults.seed, y.faults.seed);
    }
  }
}

TEST(ChurnEngine, DistinctSlotsAndElectionsDecorrelate) {
  const ChurnProfile profile = ChurnProfile::preset(ChurnPreset::steady);
  const ChurnEngine slot0(1, 0, profile);
  const ChurnEngine slot1(1, 1, profile);
  std::size_t identical = 0;
  const std::size_t trials = 50;
  for (std::uint64_t e = 0; e < trials; ++e) {
    if (slot0.spec(e, 0, 2).schedule_seed == slot1.spec(e, 0, 2).schedule_seed) {
      ++identical;
    }
    if (slot0.spec(e, 0, 2).schedule_seed ==
        slot0.spec(e + 1, 0, 2).schedule_seed) {
      ++identical;
    }
  }
  EXPECT_EQ(identical, 0u);
}

TEST(ChurnEngine, SpecsAreValidAndCleanAfterTheCleanRung) {
  for (const ChurnPreset preset :
       {ChurnPreset::calm, ChurnPreset::steady, ChurnPreset::storm}) {
    const ChurnEngine engine(9, 3, ChurnProfile::preset(preset));
    std::size_t faulty_specs = 0;
    for (std::uint64_t e = 0; e < 60; ++e) {
      for (unsigned attempt = 0; attempt < 4; ++attempt) {
        const RingSpec spec = engine.spec(e, attempt, /*clean_after=*/2);
        EXPECT_EQ(spec.faults.validate(), "");
        EXPECT_GE(spec.ids.size(), engine.profile().min_n);
        EXPECT_LE(spec.ids.size(), engine.profile().max_n);
        EXPECT_GT(spec.max_events, 0u);
        if (attempt >= 2) {
          // The backoff ladder's final rung: provably fault-free.
          EXPECT_TRUE(spec.faults.trivial());
        } else if (!spec.faults.trivial()) {
          ++faulty_specs;
        }
      }
    }
    // The storm preset must actually storm; even calm churns sometimes.
    EXPECT_GT(faulty_specs, 0u) << svc::to_string(preset);
  }
}

TEST(ChurnEngine, EventBudgetDoublesPerAttempt) {
  const ChurnEngine engine(5, 0, ChurnProfile::preset(ChurnPreset::calm));
  // Budgets across retry attempts for a fixed election grow monotonically
  // (ring size varies per attempt, so compare against the clean-run scale).
  for (std::uint64_t e = 0; e < 10; ++e) {
    const RingSpec first = engine.spec(e, 0, 2);
    EXPECT_GE(first.max_events, 4 * first.pulse_bound());
    const RingSpec retry = engine.spec(e, 3, 2);
    EXPECT_GE(retry.max_events, 8 * retry.pulse_bound());
  }
}

// --- run_attempt: the paper's exact budgets, re-proved per attempt --------

RingSpec clean_spec(SoakAlg alg, std::vector<std::uint64_t> ids) {
  RingSpec spec;
  spec.alg = alg;
  spec.ids = std::move(ids);
  spec.schedule_seed = 11;
  spec.max_events = 100'000;
  return spec;
}

TEST(RunAttempt, CleanAlg2UsesExactlyTheTheorem1Budget) {
  const auto spec = clean_spec(SoakAlg::alg2, {3, 7, 2, 5});
  const svc::AttemptResult a = svc::run_attempt(spec);
  EXPECT_EQ(a.outcome, sim::FaultOutcome::recovered_correct) << a.diagnosis;
  // Theorem 1: exactly n(2 * IDmax + 1) pulses, which is also the bound.
  EXPECT_EQ(a.pulses, 4u * (2u * 7u + 1u));
  EXPECT_EQ(a.pulse_bound, a.pulses);
  EXPECT_TRUE(a.within_bound);
  EXPECT_TRUE(a.unique_leader);
  EXPECT_TRUE(a.leader_is_max);
}

TEST(RunAttempt, CleanAlg1UsesCorollary13Pulses) {
  const auto spec = clean_spec(SoakAlg::alg1, {4, 9, 1});
  const svc::AttemptResult a = svc::run_attempt(spec);
  EXPECT_EQ(a.outcome, sim::FaultOutcome::recovered_correct) << a.diagnosis;
  EXPECT_EQ(a.pulses, 3u * 9u);  // Corollary 13: n * IDmax
  EXPECT_TRUE(a.within_bound);
  EXPECT_TRUE(a.unique_leader);
  EXPECT_TRUE(a.leader_is_max);
}

TEST(RunAttempt, CoroBackendMatchesSimOnCleanRings) {
  // The same clean specs, re-run on the coroutine executor: identical
  // classification and the identical exact pulse budgets. Pulse counts are
  // schedule-independent on both substrates, so these must agree bit-for-bit
  // with the sim expectations above.
  const auto alg2 = clean_spec(SoakAlg::alg2, {3, 7, 2, 5});
  const svc::AttemptResult a2 =
      svc::run_attempt(alg2, svc::SoakBackend::coro);
  EXPECT_EQ(a2.outcome, sim::FaultOutcome::recovered_correct) << a2.diagnosis;
  EXPECT_TRUE(a2.on_coro);
  EXPECT_EQ(a2.pulses, 4u * (2u * 7u + 1u));
  EXPECT_TRUE(a2.unique_leader);
  EXPECT_TRUE(a2.leader_is_max);

  const auto alg1 = clean_spec(SoakAlg::alg1, {4, 9, 1});
  const svc::AttemptResult a1 =
      svc::run_attempt(alg1, svc::SoakBackend::coro);
  EXPECT_EQ(a1.outcome, sim::FaultOutcome::recovered_correct) << a1.diagnosis;
  EXPECT_TRUE(a1.on_coro);
  EXPECT_EQ(a1.pulses, 3u * 9u);
  EXPECT_TRUE(a1.unique_leader);
  EXPECT_TRUE(a1.leader_is_max);
}

TEST(RunAttempt, SocketBackendMatchesSimOnCleanRings) {
  // The same clean specs once more, now over real loopback TCP (src/net):
  // identical classification and the identical exact pulse budgets, with
  // the quiescence coordinator proving sent == consumed on the wire.
  const auto alg2 = clean_spec(SoakAlg::alg2, {3, 7, 2, 5});
  const svc::AttemptResult a2 =
      svc::run_attempt(alg2, svc::SoakBackend::socket);
  EXPECT_EQ(a2.outcome, sim::FaultOutcome::recovered_correct) << a2.diagnosis;
  EXPECT_TRUE(a2.on_socket);
  EXPECT_EQ(a2.pulses, 4u * (2u * 7u + 1u));
  EXPECT_EQ(a2.report.deliveries, a2.pulses);  // wire conservation
  EXPECT_TRUE(a2.unique_leader);
  EXPECT_TRUE(a2.leader_is_max);

  const auto alg1 = clean_spec(SoakAlg::alg1, {4, 9, 1});
  const svc::AttemptResult a1 =
      svc::run_attempt(alg1, svc::SoakBackend::socket);
  EXPECT_EQ(a1.outcome, sim::FaultOutcome::recovered_correct) << a1.diagnosis;
  EXPECT_TRUE(a1.on_socket);
  EXPECT_EQ(a1.pulses, 3u * 9u);
  EXPECT_EQ(a1.report.deliveries, a1.pulses);
  EXPECT_TRUE(a1.unique_leader);
  EXPECT_TRUE(a1.leader_is_max);
}

TEST(RunAttempt, CoroBackendLeavesFaultyAttemptsOnSim) {
  // Fault injection lives on the simulator: a non-trivial plan must run
  // there even when the policy selects the coro backend.
  RingSpec spec = clean_spec(SoakAlg::alg2, {3, 7, 2, 5});
  spec.faults.preseed_channels.push_back({0, 1});
  ASSERT_FALSE(spec.faults.trivial());
  const svc::AttemptResult a =
      svc::run_attempt(spec, svc::SoakBackend::coro);
  EXPECT_FALSE(a.on_coro);
}

// --- run_supervised: the self-healing guarantee ---------------------------

TEST(RunSupervised, StormChurnAlwaysCompletesWithinPolicy) {
  // clean_after_attempts < max_attempts guarantees a fault-free final rung,
  // so every election must end recovered_correct — never abandoned, never
  // safety-violated — even under the heaviest churn preset.
  const ChurnEngine engine(123, 0, ChurnProfile::preset(ChurnPreset::storm));
  svc::SupervisorPolicy policy;
  std::uint64_t retried = 0;
  for (std::uint64_t election = 0; election < 120; ++election) {
    const svc::ElectionReport report =
        svc::run_supervised(engine, election, policy);
    ASSERT_TRUE(report.completed)
        << "election " << election << ": " << report.diagnosis;
    EXPECT_FALSE(report.abandoned);
    EXPECT_LE(report.attempts, policy.max_attempts);
    EXPECT_LE(report.pulses, report.pulse_bound);
    if (report.attempts > 1) ++retried;
  }
  // The storm preset must have forced at least some retries, or the test
  // proves nothing about the retry path.
  EXPECT_GT(retried, 0u);
}

TEST(RunSupervised, RejectsPolicyWithoutACleanRung) {
  const ChurnEngine engine(1, 0, ChurnProfile::preset(ChurnPreset::calm));
  svc::SupervisorPolicy policy;
  policy.max_attempts = 2;
  policy.clean_after_attempts = 2;  // clean rung unreachable
  EXPECT_THROW(svc::run_supervised(engine, 0, policy),
               util::ContractViolation);
}

// --- run_soak: end-to-end, bounded by election count ----------------------

TEST(RunSoak, BoundedSoakCompletesEveryElectionAndReportsConsistently) {
  const std::string snapshot = "test_svc_soak_snapshot.jsonl";
  svc::SoakOptions options;
  options.duration_seconds = 0.0;  // stop as soon as min_elections is met
  options.rings = 64;
  options.shards = 4;
  options.seed = 77;
  options.min_elections = 150;
  options.snapshot_path = snapshot;
  const svc::SoakReport report = svc::run_soak(options);

  EXPECT_TRUE(report.ok()) << report.to_json();
  EXPECT_GE(report.started, 150u);
  EXPECT_EQ(report.started, report.completed);
  EXPECT_EQ(report.safety_violated, 0u);
  EXPECT_EQ(report.diverged, 0u);
  EXPECT_EQ(report.abandoned, 0u);
  EXPECT_GE(report.attempts, report.started);
  EXPECT_EQ(report.rings, 64u);
  EXPECT_EQ(report.shards_used, 4u);
  ASSERT_EQ(report.shards.size(), 4u);
  std::uint64_t shard_sum = 0;
  for (const auto& shard : report.shards) shard_sum += shard.elections;
  EXPECT_EQ(shard_sum, report.started);
  EXPECT_EQ(report.latency_ms.count, report.started);

  // The merged registry and the report must agree.
  for (const auto& [name, counter] : report.metrics.counters()) {
    if (name == "svc.elections.started") {
      EXPECT_EQ(counter->value(), report.started);
    } else if (name == "svc.elections.completed") {
      EXPECT_EQ(counter->value(), report.completed);
    } else if (name == "svc.attempts") {
      EXPECT_EQ(counter->value(), report.attempts);
    }
  }

  // The one-line JSON carries the keys ci.sh gates on.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema\":\"colex-soak-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"safety_violated\":0"), std::string::npos);
  EXPECT_NE(json.find("\"diverged\":0"), std::string::npos);
  EXPECT_NE(json.find("\"abandoned\":0"), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);

  // The snapshot file is a loadable colex-trace-v1 metrics carrier (the
  // final rewrite embeds the fully merged registry).
  ASSERT_GE(report.snapshots_written, 1u);
  const obs::LoadedTrace trace = obs::load_jsonl_file(snapshot);
  EXPECT_EQ(trace.meta.algorithm, "soak");
  EXPECT_EQ(trace.meta.n, 0u);  // no single ring shape: audit is skipped
  EXPECT_NE(trace.metrics_json.find("svc.elections.started"),
            std::string::npos);
  std::remove(snapshot.c_str());
}

TEST(RunSoak, CoroBackendHoldsTheServiceGate) {
  // A bounded soak with clean attempts on the coroutine executor: the
  // service-level gate must hold exactly as on sim, and the attempt tally
  // must show the coro path actually ran.
  svc::SoakOptions options;
  options.duration_seconds = 0.0;
  options.rings = 16;
  options.shards = 2;
  options.seed = 91;
  options.min_elections = 40;
  options.policy.backend = svc::SoakBackend::coro;
  const svc::SoakReport report = svc::run_soak(options);

  EXPECT_TRUE(report.ok()) << report.to_json();
  EXPECT_EQ(report.backend, "coro");
  EXPECT_GT(report.coro_attempts, 0u);
  EXPECT_LE(report.coro_attempts, report.attempts);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"backend\":\"coro\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
}

TEST(RunSoak, SocketBackendHoldsTheServiceGate) {
  // A bounded soak with clean attempts on real loopback TCP rings: same
  // gate, and the tally must show the socket path actually ran.
  svc::SoakOptions options;
  options.duration_seconds = 0.0;
  options.rings = 8;
  options.shards = 2;
  options.seed = 92;
  options.min_elections = 16;
  options.policy.backend = svc::SoakBackend::socket;
  const svc::SoakReport report = svc::run_soak(options);

  EXPECT_TRUE(report.ok()) << report.to_json();
  EXPECT_EQ(report.backend, "socket");
  EXPECT_GT(report.socket_attempts, 0u);
  EXPECT_LE(report.socket_attempts, report.attempts);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"backend\":\"socket\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
}

TEST(RunSoak, MaxElectionsStopsTheRunEarly) {
  svc::SoakOptions options;
  options.duration_seconds = 30.0;  // would run far longer than the cap
  options.rings = 8;
  options.shards = 2;
  options.seed = 5;
  options.max_elections = 40;
  const svc::SoakReport report = svc::run_soak(options);
  EXPECT_TRUE(report.ok()) << report.to_json();
  EXPECT_GE(report.started, 40u);
  // Each shard overshoots by at most its in-flight election.
  EXPECT_LE(report.started, 40u + report.shards_used);
  EXPECT_LT(report.wall_seconds, 25.0);
}

}  // namespace
}  // namespace colex
