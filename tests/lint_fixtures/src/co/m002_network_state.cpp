// Fixture: M002 — automata touching global network state.
namespace fixture {

struct World;

struct AutomatonBase2 {
  virtual ~AutomatonBase2() = default;
};

class NosyNode : public AutomatonBase2 {
 public:
  explicit NosyNode(World& world) : world_(world) {}

  void react() {
    peeked_ = inbox_size(world_);  // colex-lint: expect(M002)
  }

  int shim() const {
    return in_transit(world_);  // colex-lint: allow(M002) expect-suppressed(M002) fixture: legacy metric bridge, read-only
  }

 private:
  World& world_;
  int peeked_ = 0;
};

}  // namespace fixture
